// Hybrid demonstrates §7.8: an expression too large for the deployed
// circuit is split at a wildcard; the FPGA pre-filters every tuple and the
// CPU post-processes only the matches. The sweep over selectivities shows
// Figure 13's declining throughput curve.
package main

import (
	"context"
	"fmt"
	"log"

	"doppiodb/internal/config"
	"doppiodb/internal/core"
	"doppiodb/internal/fpga"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

func main() {
	// Deploy a small device (8 states, 24 character matchers) so the
	// query QH cannot be mapped in one piece.
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	sys, err := core.NewSystem(core.Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", sys.Device)

	prog, err := token.CompilePattern(workload.QH, token.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QH = %s needs %d states / %d chars: %v\n\n",
		workload.QH, prog.NumStates(), prog.NumChars(),
		config.Fits(prog, dep.Limits))

	fmt.Printf("%-12s %10s %14s %16s\n", "selectivity", "matches", "post-processed", "simulated time")
	for _, sel := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		rows, hits := workload.NewGenerator(int64(sel*100)+1, 80).Table(40_000, workload.HitQH, sel)
		tbl, err := sys.DB.LoadAddressTable(fmt.Sprintf("t%.0f", sel*100), rows)
		if err != nil {
			log.Fatal(err)
		}
		col, _ := tbl.Column("address_string")
		res, err := sys.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Hybrid {
			log.Fatal("expected hybrid execution")
		}
		if res.MatchCount != hits {
			log.Fatalf("matched %d, expected %d", res.MatchCount, hits)
		}
		fmt.Printf("%-12.2f %10d %14d %16v\n",
			sel, res.MatchCount, res.Work.RegexRows, res.Total())
	}
	fmt.Println("\nonly FPGA-selected tuples reach the CPU: at selectivity 0 the CPU does nothing.")
}
