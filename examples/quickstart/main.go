// Quickstart: boot the simulated Xeon+FPGA platform, load a table, and run
// the same predicate three ways — software LIKE, software REGEXP_LIKE, and
// the hardware REGEXP_FPGA UDF — through plain SQL.
package main

import (
	"fmt"
	"log"

	"doppiodb/internal/core"
	"doppiodb/internal/sql"
	"doppiodb/internal/workload"
)

func main() {
	// Boot the platform: programs the default 4x16 FPGA deployment, maps
	// the CPU-FPGA shared region, starts the HAL, registers the HUDF.
	sys, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device:", sys.Device)

	// Load 100k of the paper's address strings; every fifth row carries
	// a Q2 hit (a Strasse/Str. street with an 8xxxx zip code).
	rows, hits := workload.NewGenerator(1, 64).Table(100_000, workload.HitQ2, 0.2)
	if _, err := sys.DB.LoadAddressTable("address_table", rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d hits by construction)\n\n", len(rows), hits)

	engine := sql.NewEngine(sys.DB)
	queries := []string{
		`SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`,
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`,
		`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('(Strasse|Str\.).*(8[0-9]{4})', address_string) <> 0`,
	}
	for _, q := range queries {
		res, err := engine.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  -> count = %v (path: %s)\n", q, res.Rows[0][0], res.FastPath)
		if res.UDF != nil {
			fmt.Printf("  -> offloaded to FPGA: hardware time %.3f ms\n", res.UDF.HWSeconds*1e3)
		}
		fmt.Println()
	}
}
