// Loganalytics is the "increasing amount of text enriching relational
// data" scenario of the paper's introduction: ad-hoc regular-expression
// queries over a log table, where no index exists and queries are not
// known beforehand — exactly where the FPGA scan shines. It also shows the
// runtime parametrization: five different patterns run back to back with
// no reconfiguration of the device.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"doppiodb/internal/core"
	"doppiodb/internal/token"
)

var (
	services = []string{"auth", "billing", "checkout", "search", "gateway"}
	verbs    = []string{"GET", "POST", "PUT", "DELETE"}
	msgs     = []string{
		"request completed", "cache miss", "retrying upstream",
		"connection reset by peer", "slow query detected",
		"timeout waiting for lock", "payment declined",
	}
)

func logLine(r *rand.Rand) string {
	return fmt.Sprintf("2026-07-%02d %02d:%02d:%02d %s %s /api/v%d/%s %d %s",
		1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60),
		services[r.Intn(len(services))],
		verbs[r.Intn(len(verbs))],
		1+r.Intn(3),
		services[r.Intn(len(services))],
		[]int{200, 200, 200, 201, 301, 404, 500, 503}[r.Intn(8)],
		msgs[r.Intn(len(msgs))])
}

func main() {
	sys, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(2026))
	rows := make([]string, 80_000)
	for i := range rows {
		rows[i] = logLine(r)
	}
	tbl, err := sys.DB.LoadAddressTable("logs", rows)
	if err != nil {
		log.Fatal(err)
	}
	col, _ := tbl.Column("address_string")

	// Five ad-hoc investigations, each a fresh configuration vector on
	// the same bitstream — the FPGA is never reprogrammed (§3).
	patterns := []struct{ what, re string }{
		{"5xx errors", ` 5[0-9]{2} `},
		{"timeouts in auth or gateway", `(auth|gateway).*timeout`},
		{"mutating calls that failed", `(POST|PUT|DELETE).*(4[0-9]{2}|5[0-9]{2})`},
		{"payment issues", `billing.*declined`},
		{"night-time slow queries", ` 0[0-5]:[0-9]{2}:[0-9]{2}.*slow query`},
	}
	for _, p := range patterns {
		prog, err := token.CompilePattern(p.re, token.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Exec(context.Background(), col.Strs, p.re, token.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %-46s %6d hits  (%d states/%d chars, hw %v)\n",
			p.what, p.re, res.MatchCount, prog.NumStates(), prog.NumChars(),
			res.Breakdown.Get(core.PhaseHardware))
	}
}
