// Addressbook runs the paper's four evaluation queries (Q1–Q4, §7.1.1)
// over the shipment-address workload and compares the simulated response
// times of MonetDB, DBx and the FPGA operator — a miniature of Figure 9's
// 2.5M-record column.
package main

import (
	"context"
	"fmt"
	"log"

	"doppiodb/internal/core"
	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

func main() {
	const rows = 50_000
	sys, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	model := perf.Default()

	queries := []struct {
		name    string
		kind    workload.HitKind
		pattern string
		like    string
	}{
		{"Q1", workload.HitQ1, workload.Q1Regex, workload.Q1Like},
		{"Q2", workload.HitQ2, workload.Q2, ""},
		{"Q3", workload.HitQ3, workload.Q3, ""},
		{"Q4", workload.HitQ4, workload.Q4, ""},
	}
	fmt.Printf("%-4s %-38s %10s %12s %12s %12s\n",
		"Q", "pattern", "matches", "MonetDB", "DBx(1thr)", "FPGA")
	for i, q := range queries {
		rowsData, hits := workload.NewGenerator(int64(i+1), 64).Table(rows, q.kind, 0.2)
		tname := fmt.Sprintf("addr_%s", q.name)
		tbl, err := sys.DB.LoadAddressTable(tname, rowsData)
		if err != nil {
			log.Fatal(err)
		}
		col, _ := tbl.Column("address_string")

		// Software scans (the DB runs sequential_pipe next to the
		// HUDF; measure the parallel pipeline explicitly).
		sys.DB.Mode = mdb.Parallel
		var sel *mdb.Selection
		if q.like != "" {
			sel, err = sys.DB.SelectLike(tbl, "address_string", q.like, false)
		} else {
			sel, err = sys.DB.SelectRegexp(tbl, "address_string", q.pattern, false)
		}
		if err != nil {
			log.Fatal(err)
		}
		sys.DB.Mode = mdb.SequentialPipe

		// Hardware.
		res, err := sys.Exec(context.Background(), col.Strs, q.pattern, token.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if res.MatchCount != hits || sel.Count() != hits {
			log.Fatalf("%s: FPGA %d, software %d, expected %d",
				q.name, res.MatchCount, sel.Count(), hits)
		}
		fmt.Printf("%-4s %-38s %10d %12v %12v %12v\n",
			q.name, q.pattern, res.MatchCount,
			model.MonetDBScan(sel.Work, true),
			model.DBXScan(sel.Work),
			res.Total())
	}
	fmt.Println("\nFPGA response time is identical across Q1-Q4: complexity independent.")
}
