// Tpch13 runs TPC-H Query 13 (§7.7) through the SQL engine, in the three
// variants of Figure 12: LIKE, ILIKE, and the comment filter offloaded to
// the FPGA via REGEXP_FPGA. All three must produce the identical customer
// distribution.
package main

import (
	"fmt"
	"log"

	"doppiodb/internal/core"
	"doppiodb/internal/mdb"
	"doppiodb/internal/sql"
	"doppiodb/internal/workload"
)

const q13 = `
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON c_custkey = o_custkey AND %s
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
LIMIT 8`

func main() {
	sys, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	tp := workload.GenerateTPCH(7, 0.02, 0.01)
	cust, err := sys.DB.CreateTable("customer",
		mdb.ColSpec{Name: "c_custkey", Kind: mdb.KindInt})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range tp.Customers {
		cust.AppendRow(c.CustKey)
	}
	ord, err := sys.DB.CreateTable("orders",
		mdb.ColSpec{Name: "o_orderkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_custkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_comment", Kind: mdb.KindString})
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range tp.Orders {
		ord.AppendRow(o.OrderKey, o.CustKey, o.Comment)
	}
	fmt.Printf("loaded %d customers, %d orders\n\n", len(tp.Customers), len(tp.Orders))

	engine := sql.NewEngine(sys.DB)
	variants := []struct{ name, filter string }{
		{"LIKE", `o_comment NOT LIKE '%special%requests%'`},
		{"ILIKE", `NOT o_comment ILIKE '%special%requests%'`},
		{"REGEXP_FPGA", `REGEXP_FPGA('special.*requests', o_comment) = 0`},
	}
	var first []string
	for _, v := range variants {
		res, err := engine.Query(fmt.Sprintf(q13, v.filter))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q13 with %s (top groups):\n", v.name)
		fmt.Printf("  %8s %8s\n", "c_count", "custdist")
		var lines []string
		for _, row := range res.Rows {
			lines = append(lines, fmt.Sprintf("  %8d %8d", row[0], row[1]))
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Println()
		if first == nil {
			first = lines
		} else {
			for i := range lines {
				if lines[i] != first[i] {
					log.Fatalf("%s disagrees with LIKE at row %d", v.name, i)
				}
			}
		}
	}
	fmt.Println("all three variants produce the identical distribution.")
}
