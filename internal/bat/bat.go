// Package bat implements MonetDB's storage layout (§2.3.1): Binary
// Association Tables with a void (implicit, dense) OID head, fixed-width
// value tails for integers and shorts, and — for variable-length strings —
// an offset tail pointing into a string heap. The heap stores each string
// null-terminated with per-entry metadata and alignment padding, exactly
// the layout the FPGA's String Reader walks (Figure 2).
//
// Columns are optionally backed by the CPU-FPGA shared-memory region
// (internal/shmem): the paper modifies MonetDB so that every BAT — however
// small — lives in that region (§4.2.1), which is what makes zero-copy
// offload possible. Without a region, columns fall back to ordinary Go
// memory and remain usable for pure-software engines.
package bat

import (
	"encoding/binary"
	"fmt"

	"doppiodb/internal/shmem"
)

// Heap layout constants (Figure 2's meta and padding).
const (
	// HeapHeader is the heap's leading metadata block.
	HeapHeader = 16
	// EntryMeta is the per-string metadata preceding the bytes (the
	// string length). Together with the NUL terminator and 8-byte
	// alignment this gives a 64 B string a 72 B heap entry; adding the
	// 4 B offset reproduces the paper's §7.3 accounting (4.7 GB/s useful
	// vs 5.89 GB/s raw is a factor of ~1.25 = 80 B / 64 B).
	EntryMeta = 4
	// EntryAlign pads every heap entry to this boundary.
	EntryAlign = 8
	// OffsetWidth is the width of one offset in the offset tail. The
	// paper passes the width to the FPGA as a job parameter; 32 bits
	// covers the 4 GB shareable region.
	OffsetWidth = 4
)

// EntryStride returns the heap bytes occupied by one string of length n:
// metadata, the bytes, the NUL terminator, and alignment padding.
func EntryStride(n int) int {
	return (EntryMeta + n + 1 + EntryAlign - 1) / EntryAlign * EntryAlign
}

// mem is a growable allocation, either inside a shared region or in plain
// Go memory.
type mem struct {
	region *shmem.Region
	addr   shmem.Addr
	buf    []byte
}

func allocMem(region *shmem.Region, size int) (mem, error) {
	if size < shmem.MinSlab {
		size = shmem.MinSlab
	}
	if region == nil {
		return mem{buf: make([]byte, size)}, nil
	}
	a, err := region.Alloc(size)
	if err != nil {
		return mem{}, err
	}
	buf, err := region.Bytes(a)
	if err != nil {
		return mem{}, err
	}
	return mem{region: region, addr: a, buf: buf}, nil
}

// grow reallocates to at least want bytes, copying used bytes.
func (m *mem) grow(used, want int) error {
	if want <= len(m.buf) {
		return nil
	}
	size := len(m.buf) * 2
	if size < want {
		size = want
	}
	nm, err := allocMem(m.region, size)
	if err != nil {
		return err
	}
	copy(nm.buf, m.buf[:used])
	if m.region != nil {
		if err := m.region.Free(m.addr); err != nil {
			return err
		}
	}
	*m = nm
	return nil
}

func (m *mem) free() {
	if m.region != nil && m.addr != 0 {
		_ = m.region.Free(m.addr)
		m.addr = 0
	}
	m.buf = nil
}

// Strings is a string column: a void-headed offset BAT plus a string heap.
type Strings struct {
	offs     mem
	heap     mem
	count    int
	heapUsed int
	// HeapBytesRead pads the heap header on first use.
}

// NewStrings creates a string column, optionally inside a shared region,
// with capacity hints (rows, total payload bytes).
func NewStrings(region *shmem.Region, rowHint, byteHint int) (*Strings, error) {
	if rowHint < 1 {
		rowHint = 1
	}
	if byteHint < 1 {
		byteHint = 1
	}
	offs, err := allocMem(region, rowHint*OffsetWidth)
	if err != nil {
		return nil, err
	}
	heap, err := allocMem(region, HeapHeader+byteHint)
	if err != nil {
		offs.free()
		return nil, err
	}
	s := &Strings{offs: offs, heap: heap, heapUsed: HeapHeader}
	return s, nil
}

// Append adds a string to the column.
func (s *Strings) Append(v string) error {
	stride := EntryStride(len(v))
	if err := s.heap.grow(s.heapUsed, s.heapUsed+stride); err != nil {
		return err
	}
	if err := s.offs.grow(s.count*OffsetWidth, (s.count+1)*OffsetWidth); err != nil {
		return err
	}
	entry := s.heap.buf[s.heapUsed : s.heapUsed+stride]
	// Per-entry metadata: the string length, mirroring MonetDB's heap
	// bookkeeping. The FPGA ignores it (strings are null-terminated).
	binary.LittleEndian.PutUint32(entry[:EntryMeta], uint32(len(v)))
	copy(entry[EntryMeta:], v)
	entry[EntryMeta+len(v)] = 0
	for i := EntryMeta + len(v) + 1; i < stride; i++ {
		entry[i] = 0
	}
	off := uint32(s.heapUsed + EntryMeta)
	binary.LittleEndian.PutUint32(s.offs.buf[s.count*OffsetWidth:], off)
	s.heapUsed += stride
	s.count++
	return nil
}

// Count returns the number of rows.
func (s *Strings) Count() int { return s.count }

// Get returns row i as a byte slice aliasing the heap (valid until the next
// Append). It panics on out-of-range i, matching slice semantics.
func (s *Strings) Get(i int) []byte {
	if i < 0 || i >= s.count {
		panic(fmt.Sprintf("bat: Strings.Get(%d) of %d rows", i, s.count))
	}
	off := binary.LittleEndian.Uint32(s.offs.buf[i*OffsetWidth:])
	b := s.heap.buf[off:]
	// Strings are null-terminated; length metadata makes this O(1).
	n := binary.LittleEndian.Uint32(s.heap.buf[off-EntryMeta:])
	return b[:n:n]
}

// GetString returns row i as a string.
func (s *Strings) GetString(i int) string { return string(s.Get(i)) }

// HeapBytes returns the raw heap, as mapped for the FPGA.
func (s *Strings) HeapBytes() []byte { return s.heap.buf[:s.heapUsed] }

// OffsetBytes returns the raw offset tail, as mapped for the FPGA.
func (s *Strings) OffsetBytes() []byte { return s.offs.buf[:s.count*OffsetWidth] }

// HeapAddr and OffsetAddr return the shared-memory addresses of the two
// allocations (zero when the column is not region-backed).
func (s *Strings) HeapAddr() shmem.Addr   { return s.heap.addr }
func (s *Strings) OffsetAddr() shmem.Addr { return s.offs.addr }

// HeapUsed returns the heap bytes in use, including header, metadata and
// padding — the volume the FPGA actually reads.
func (s *Strings) HeapUsed() int { return s.heapUsed }

// PayloadBytes returns the useful string bytes (excluding metadata,
// padding, offsets), the numerator of the paper's "useful throughput".
func (s *Strings) PayloadBytes() int {
	total := 0
	for i := 0; i < s.count; i++ {
		off := binary.LittleEndian.Uint32(s.offs.buf[i*OffsetWidth:])
		total += int(binary.LittleEndian.Uint32(s.heap.buf[off-EntryMeta:]))
	}
	return total
}

// Free releases region-backed allocations.
func (s *Strings) Free() {
	s.offs.free()
	s.heap.free()
	s.count, s.heapUsed = 0, 0
}

// Shorts is a BAT with a void head and a 16-bit value tail — the result
// type of the HUDF (§4.1: "the return type is short").
type Shorts struct {
	m     mem
	count int
}

// NewShorts creates a short column with a row-capacity hint.
func NewShorts(region *shmem.Region, rowHint int) (*Shorts, error) {
	if rowHint < 1 {
		rowHint = 1
	}
	m, err := allocMem(region, rowHint*2)
	if err != nil {
		return nil, err
	}
	return &Shorts{m: m}, nil
}

// Append adds a value.
func (c *Shorts) Append(v uint16) error {
	if err := c.m.grow(c.count*2, (c.count+1)*2); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(c.m.buf[c.count*2:], v)
	c.count++
	return nil
}

// SetLen presizes the column to n rows (zero-filled), for engines that
// write results by index.
func (c *Shorts) SetLen(n int) error {
	if err := c.m.grow(c.count*2, n*2); err != nil {
		return err
	}
	if n > c.count {
		clear(c.m.buf[c.count*2 : n*2])
	}
	c.count = n
	return nil
}

// Set writes row i.
func (c *Shorts) Set(i int, v uint16) {
	binary.LittleEndian.PutUint16(c.m.buf[i*2:], v)
}

// Get returns row i.
func (c *Shorts) Get(i int) uint16 {
	if i < 0 || i >= c.count {
		panic(fmt.Sprintf("bat: Shorts.Get(%d) of %d rows", i, c.count))
	}
	return binary.LittleEndian.Uint16(c.m.buf[i*2:])
}

// Count returns the number of rows.
func (c *Shorts) Count() int { return c.count }

// Bytes returns the raw tail.
func (c *Shorts) Bytes() []byte { return c.m.buf[:c.count*2] }

// Addr returns the shared-memory address (zero when not region-backed).
func (c *Shorts) Addr() shmem.Addr { return c.m.addr }

// Free releases region-backed allocations.
func (c *Shorts) Free() { c.m.free(); c.count = 0 }

// Ints is a BAT with a void head and a 32-bit integer tail.
type Ints struct {
	m     mem
	count int
}

// NewInts creates an int column with a row-capacity hint.
func NewInts(region *shmem.Region, rowHint int) (*Ints, error) {
	if rowHint < 1 {
		rowHint = 1
	}
	m, err := allocMem(region, rowHint*4)
	if err != nil {
		return nil, err
	}
	return &Ints{m: m}, nil
}

// Append adds a value.
func (c *Ints) Append(v int32) error {
	if err := c.m.grow(c.count*4, (c.count+1)*4); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(c.m.buf[c.count*4:], uint32(v))
	c.count++
	return nil
}

// Get returns row i.
func (c *Ints) Get(i int) int32 {
	if i < 0 || i >= c.count {
		panic(fmt.Sprintf("bat: Ints.Get(%d) of %d rows", i, c.count))
	}
	return int32(binary.LittleEndian.Uint32(c.m.buf[i*4:]))
}

// Count returns the number of rows.
func (c *Ints) Count() int { return c.count }

// Bytes returns the raw tail.
func (c *Ints) Bytes() []byte { return c.m.buf[:c.count*4] }

// Addr returns the shared-memory address (zero when not region-backed).
func (c *Ints) Addr() shmem.Addr { return c.m.addr }

// Free releases region-backed allocations.
func (c *Ints) Free() { c.m.free(); c.count = 0 }
