package bat

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"doppiodb/internal/shmem"
)

func TestEntryStride(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 8},   // meta 4 + NUL 1 -> 8
		{3, 8},   // 4+3+1 = 8
		{4, 16},  // 4+4+1 = 9 -> 16
		{64, 72}, // the paper's 64 B strings: 4+64+1 = 69 -> 72
	}
	for _, c := range cases {
		if got := EntryStride(c.n); got != c.want {
			t.Errorf("EntryStride(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStringsAppendGet(t *testing.T) {
	for _, region := range []*shmem.Region{nil, shmem.NewRegion(64 << 20)} {
		s, err := NewStrings(region, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		vals := []string{
			"John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
			"",
			"x",
			strings.Repeat("long", 100),
		}
		for _, v := range vals {
			if err := s.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		if s.Count() != len(vals) {
			t.Fatalf("Count = %d", s.Count())
		}
		for i, v := range vals {
			if got := s.GetString(i); got != v {
				t.Errorf("Get(%d) = %q, want %q", i, got, v)
			}
		}
		if region != nil && (s.HeapAddr() == 0 || s.OffsetAddr() == 0) {
			t.Error("region-backed column has zero addresses")
		}
		s.Free()
	}
}

func TestStringsHeapLayout(t *testing.T) {
	s, err := NewStrings(nil, 2, 128)
	if err != nil {
		t.Fatal(err)
	}
	s.Append("abc")
	s.Append("de")
	heap := s.HeapBytes()
	offs := s.OffsetBytes()
	if len(offs) != 2*OffsetWidth {
		t.Fatalf("offsets len %d", len(offs))
	}
	// First string sits after header + meta; entries are null-terminated
	// and aligned.
	off0 := int(uint32(offs[0]) | uint32(offs[1])<<8 | uint32(offs[2])<<16 | uint32(offs[3])<<24)
	if off0 != HeapHeader+EntryMeta {
		t.Errorf("first offset = %d, want %d", off0, HeapHeader+EntryMeta)
	}
	if string(heap[off0:off0+3]) != "abc" || heap[off0+3] != 0 {
		t.Error("heap entry not null-terminated at offset")
	}
	if s.HeapUsed() != HeapHeader+EntryStride(3)+EntryStride(2) {
		t.Errorf("HeapUsed = %d", s.HeapUsed())
	}
	if s.PayloadBytes() != 5 {
		t.Errorf("PayloadBytes = %d, want 5", s.PayloadBytes())
	}
}

func TestStringsGrowthPreservesData(t *testing.T) {
	region := shmem.NewRegion(256 << 20)
	s, err := NewStrings(region, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Append(fmt.Sprintf("row-%06d-%s", i, strings.Repeat("p", i%50))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 97 {
		want := fmt.Sprintf("row-%06d-%s", i, strings.Repeat("p", i%50))
		if got := s.GetString(i); got != want {
			t.Fatalf("Get(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestStringsGetPanics(t *testing.T) {
	s, _ := NewStrings(nil, 1, 1)
	s.Append("x")
	defer func() {
		if recover() == nil {
			t.Error("Get out of range did not panic")
		}
	}()
	s.Get(1)
}

func TestShorts(t *testing.T) {
	c, err := NewShorts(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Append(uint16(i * 3))
	}
	if c.Count() != 100 || c.Get(50) != 150 {
		t.Errorf("Shorts: count=%d get=%d", c.Count(), c.Get(50))
	}
	if err := c.SetLen(200); err != nil {
		t.Fatal(err)
	}
	if c.Get(150) != 0 {
		t.Error("SetLen did not zero-fill")
	}
	c.Set(150, 7)
	if c.Get(150) != 7 {
		t.Error("Set/Get roundtrip failed")
	}
	if len(c.Bytes()) != 400 {
		t.Errorf("Bytes len %d", len(c.Bytes()))
	}
}

func TestInts(t *testing.T) {
	region := shmem.NewRegion(32 << 20)
	c, err := NewInts(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		c.Append(int32(i - 5000))
	}
	if c.Get(0) != -5000 || c.Get(9999) != 4999 {
		t.Errorf("Ints ends: %d %d", c.Get(0), c.Get(9999))
	}
	if c.Addr() == 0 {
		t.Error("region-backed Ints has zero address")
	}
	c.Free()
	if c.Count() != 0 {
		t.Error("Free did not reset count")
	}
}

func TestStringsRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	s, err := NewStrings(nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 2000; i++ {
		n := r.Intn(100)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(r.Intn(255) + 1) // avoid NUL inside strings
		}
		v := string(b)
		want = append(want, v)
		if err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		if got := s.GetString(i); got != w {
			t.Fatalf("row %d: %q != %q", i, got, w)
		}
	}
	// Payload accounting must equal the sum of lengths.
	total := 0
	for _, w := range want {
		total += len(w)
	}
	if got := s.PayloadBytes(); got != total {
		t.Errorf("PayloadBytes = %d, want %d", got, total)
	}
}

func TestShortsIntsAccessors(t *testing.T) {
	region := shmem.NewRegion(64 << 20)
	s, err := NewShorts(region, 0) // hint clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	s.Append(7)
	if s.Addr() == 0 {
		t.Error("Shorts.Addr zero for region-backed column")
	}
	s.Free()
	if s.Count() != 0 {
		t.Error("Shorts.Free did not reset")
	}
	c, err := NewInts(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Append(1)
	c.Append(2)
	if len(c.Bytes()) != 8 {
		t.Errorf("Ints.Bytes len %d", len(c.Bytes()))
	}
	if c.Addr() != 0 {
		t.Error("plain-memory Ints has nonzero address")
	}
}

func TestColumnsFailWhenRegionExhausted(t *testing.T) {
	region := shmem.NewRegion(4 << 20) // 2MB usable after the reserved page
	// Exhaust the region.
	var ok bool
	for i := 0; i < 64; i++ {
		if _, err := region.Alloc(1 << 20); err != nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("region never filled")
	}
	if _, err := NewStrings(region, 10, 1<<20); err == nil {
		t.Error("NewStrings in full region succeeded")
	}
	if _, err := NewShorts(region, 1<<20); err == nil {
		t.Error("NewShorts in full region succeeded")
	}
	if _, err := NewInts(region, 1<<20); err == nil {
		t.Error("NewInts in full region succeeded")
	}
}

func TestShortsIntsGetPanics(t *testing.T) {
	s, _ := NewShorts(nil, 1)
	s.Append(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Shorts.Get OOB did not panic")
			}
		}()
		s.Get(5)
	}()
	c, _ := NewInts(nil, 1)
	c.Append(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ints.Get OOB did not panic")
			}
		}()
		c.Get(-1)
	}()
}
