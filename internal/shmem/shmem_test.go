package shmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	r := NewRegion(64 << 20)
	a, err := r.Alloc(100 << 10)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if a == 0 {
		t.Fatal("Alloc returned nil address")
	}
	buf, err := r.Bytes(a)
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if len(buf) < 100<<10 {
		t.Fatalf("slab too small: %d", len(buf))
	}
	buf[0], buf[len(buf)-1] = 0xAB, 0xCD
	buf2, _ := r.Bytes(a)
	if buf2[0] != 0xAB || buf2[len(buf2)-1] != 0xCD {
		t.Error("backing memory not stable across Bytes calls")
	}
}

func TestAllocTooSmallGoesToMalloc(t *testing.T) {
	r := NewRegion(64 << 20)
	if _, err := r.Alloc(8 << 10); err != ErrTooSmall {
		t.Errorf("Alloc(8KB) err = %v, want ErrTooSmall", err)
	}
	if _, err := r.Alloc(0); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := r.Alloc(-5); err == nil {
		t.Error("Alloc(-5) should fail")
	}
}

func TestSizeClasses(t *testing.T) {
	cases := []struct {
		n, want uint64
	}{
		{16 << 10, 16 << 10},
		{(16 << 10) + 1, 32 << 10},
		{1 << 20, 1 << 20},
		{(32 << 20), 32 << 20},
		{(32 << 20) + 1, 0}, // huge
	}
	for _, c := range cases {
		if got := sizeClass(c.n); got != c.want {
			t.Errorf("sizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	r := NewRegion(64 << 20)
	a1, err := r.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Free(a1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	a2, err := r.Alloc(60 << 10) // same 64 KB class
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("freed slab not reused: %#x then %#x", a1, a2)
	}
	if err := r.Free(a1); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(a1); err != ErrBadFree {
		t.Errorf("double free err = %v, want ErrBadFree", err)
	}
	if err := r.Free(Addr(12345)); err != ErrBadFree {
		t.Errorf("bogus free err = %v, want ErrBadFree", err)
	}
}

func TestSmallSlabsPackWithinPage(t *testing.T) {
	r := NewRegion(64 << 20)
	// 128 slabs of 16 KB fit in one 2 MB page.
	for i := 0; i < 128; i++ {
		if _, err := r.Alloc(16 << 10); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if got := r.Stats().PinnedPages; got != 1 {
		t.Errorf("PinnedPages = %d, want 1 (16KB slabs must pack)", got)
	}
}

func TestHugeAllocation(t *testing.T) {
	r := NewRegion(256 << 20)
	a, err := r.Alloc(100 << 20) // > MaxSlab
	if err != nil {
		t.Fatal(err)
	}
	buf, err := r.Bytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 100<<20 {
		t.Fatalf("huge slab len %d", len(buf))
	}
	buf[99<<20] = 7 // touch deep into the run
}

func TestOutOfMemory(t *testing.T) {
	r := NewRegion(8 << 20) // 4 usable pages minus reserved page 0
	var addrs []Addr
	for {
		a, err := r.Alloc(2 << 20)
		if err == ErrOutOfMemory {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		t.Fatal("no allocations succeeded")
	}
	if uint64(len(addrs))*(2<<20) > r.Capacity() {
		t.Error("allocated beyond capacity")
	}
}

func TestNilAddressNeverAllocated(t *testing.T) {
	r := NewRegion(16 << 20)
	for i := 0; i < 4; i++ {
		a, err := r.Alloc(1 << 20)
		if err != nil {
			break
		}
		if a == 0 {
			t.Fatal("allocator returned the reserved nil address")
		}
	}
}

func TestTranslate(t *testing.T) {
	r := NewRegion(16 << 20)
	a, err := r.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Translate(a) {
		t.Error("Translate of allocated address failed")
	}
	if r.Translate(Addr(r.Capacity() - 1)) {
		t.Error("Translate of unmapped address succeeded")
	}
	if got := r.Stats().PageFaults; got != 1 {
		t.Errorf("PageFaults = %d, want 1", got)
	}
}

func TestBytesOfUnallocated(t *testing.T) {
	r := NewRegion(16 << 20)
	if _, err := r.Bytes(Addr(PageSize)); err == nil {
		t.Error("Bytes of unallocated address should fail")
	}
}

func TestStats(t *testing.T) {
	r := NewRegion(0)
	if r.Capacity() != DefaultCapacity {
		t.Errorf("default capacity = %d", r.Capacity())
	}
	a, _ := r.Alloc(1 << 20)
	s := r.Stats()
	if s.Live != 1<<20 || s.LiveSlabs != 1 {
		t.Errorf("stats after alloc: %+v", s)
	}
	r.Free(a)
	s = r.Stats()
	if s.Live != 0 || s.LiveSlabs != 0 {
		t.Errorf("stats after free: %+v", s)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	r := NewRegion(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a, err := r.Alloc(64 << 10)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				buf, err := r.Bytes(a)
				if err != nil {
					t.Errorf("bytes: %v", err)
					return
				}
				buf[0] = byte(i)
				if err := r.Free(a); err != nil {
					t.Errorf("free: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Stats().LiveSlabs; got != 0 {
		t.Errorf("LiveSlabs after all frees = %d", got)
	}
}

func TestAllocDistinctProperty(t *testing.T) {
	// Any sequence of live allocations must return pairwise
	// non-overlapping slabs.
	r := NewRegion(1 << 30)
	type span struct{ lo, hi uint64 }
	var spans []span
	f := func(kb uint8) bool {
		size := (int(kb)%512 + 16) << 10
		a, err := r.Alloc(size)
		if err != nil {
			return true // capacity exhaustion is fine
		}
		lo := uint64(a)
		hi := lo + uint64(sizeClass(uint64(size)))
		for _, s := range spans {
			if lo < s.hi && s.lo < hi {
				return false
			}
		}
		spans = append(spans, span{lo, hi})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
