// Package shmem models the pinned CPU-FPGA shared memory region of the Intel
// Xeon+FPGA prototype (§2.2, §4.2.1 of the paper).
//
// On the real platform, Intel's AAL library allocates memory in 2 MB chunks,
// pins them to contiguous physical regions (the FPGA cannot take page
// faults), and records them in a pagetable that lives in FPGA BRAM. The
// libraries cap the shareable region at 4 GB. The paper's HAL layers a slab
// allocator on top so that MonetDB can place every BAT — even tiny ones —
// inside the shared region.
//
// This package reproduces that stack in software: a Region hands out
// addresses inside a bounded virtual space, backs them with real Go memory
// (allocated lazily, chunk by chunk, so a 4 GB region costs only what is
// actually touched), maintains the pagetable, and implements the HAL's slab
// allocator with per-size-class free lists.
package shmem

import (
	"errors"
	"fmt"
	"sync"

	"doppiodb/internal/telemetry"
)

// Platform constants from the paper.
const (
	// PageSize is the AAL pinning granularity: 2 MB.
	PageSize = 2 << 20
	// DefaultCapacity is the shared-region limit after the authors' kernel
	// module change (4 GB; the stock libraries allowed 2 GB).
	DefaultCapacity = 4 << 30
	// MinSlab is the smallest slab class. The paper routes allocations
	// under 16 KB to plain malloc because they are metadata the FPGA never
	// touches; Region mirrors that by rejecting them (callers fall back to
	// ordinary Go allocation).
	MinSlab = 16 << 10
	// MaxSlab is the largest slab class; bigger allocations get a
	// dedicated contiguous run of pages.
	MaxSlab = 32 << 20
)

// Addr is a virtual address inside the shared region. Address 0 is reserved
// as the nil address so that cleared job parameters are detectably invalid.
type Addr uint64

// ErrTooSmall is returned for allocations below MinSlab, which the paper's
// allocator deliberately leaves to malloc.
var ErrTooSmall = errors.New("shmem: allocation below 16 KB belongs to malloc, not the shared region")

// ErrOutOfMemory is returned when the region's capacity (default 4 GB) is
// exhausted, mirroring the prototype's hard pagetable limit.
var ErrOutOfMemory = errors.New("shmem: shared region capacity exhausted")

// ErrBadFree is returned when freeing an address that is not currently
// allocated.
var ErrBadFree = errors.New("shmem: free of unallocated address")

// Region is a simulated pinned shared-memory region with a slab allocator.
// It is safe for concurrent use: MonetDB worker threads and the UDF allocate
// from it concurrently in the throughput experiments.
type Region struct {
	mu       sync.Mutex
	capacity uint64
	next     uint64 // bump pointer for fresh chunks (virtual space)
	chunks   map[uint64][]byte
	free     map[uint64][]Addr // size class -> free slab addresses
	live     map[Addr]uint64   // allocated address -> size class (or raw size for huge)
	pt       pageTable
	met      regionMetrics
}

// regionMetrics is the allocator state as detached telemetry instances —
// the primary store; Stats() is a view over it. AttachTelemetry publishes
// them under the shmem.* names.
type regionMetrics struct {
	reserved    *telemetry.Gauge   // virtual bytes handed to slab chunks / huge runs
	live        *telemetry.Gauge   // bytes in currently allocated slabs
	liveSlabs   *telemetry.Gauge   // number of live allocations
	pinnedPages *telemetry.Gauge   // 2 MB pages pinned (backed by real memory)
	pageFaults  *telemetry.Counter // pagetable misses (always 0 in correct runs)
	allocs      *telemetry.Counter // successful Alloc calls
	frees       *telemetry.Counter // successful Free calls
}

// Stats reports allocator state, used by tests and the doctor-style CLI.
// It is a snapshot view over the Region's telemetry metrics.
type Stats struct {
	Capacity    uint64 // region capacity in bytes
	Reserved    uint64 // virtual bytes handed to slab chunks / huge runs
	Live        uint64 // bytes in currently allocated slabs
	LiveSlabs   int    // number of live allocations
	PinnedPages int    // 2 MB pages pinned (backed by real memory)
	PageFaults  uint64 // translations that missed the pagetable (always 0 in correct runs)
}

// pageTable maps virtual page numbers to backing chunks. On the prototype it
// lives in FPGA BRAM with a fixed entry budget; translation cost is constant
// (§2.2), which the engine model accounts for as part of steady-state
// bandwidth.
type pageTable struct {
	entries map[uint64]struct{}
	limit   int
}

// NewRegion creates a shared region with the given capacity in bytes. A
// capacity of 0 selects DefaultCapacity (4 GB).
func NewRegion(capacity uint64) *Region {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	capacity = roundUp(capacity, PageSize)
	return &Region{
		capacity: capacity,
		next:     PageSize, // keep Addr 0 (page 0) unused: nil address
		chunks:   make(map[uint64][]byte),
		free:     make(map[uint64][]Addr),
		live:     make(map[Addr]uint64),
		pt: pageTable{
			entries: make(map[uint64]struct{}),
			limit:   int(capacity / PageSize),
		},
		met: regionMetrics{
			reserved:    telemetry.NewGauge(),
			live:        telemetry.NewGauge(),
			liveSlabs:   telemetry.NewGauge(),
			pinnedPages: telemetry.NewGauge(),
			pageFaults:  telemetry.NewCounter(),
			allocs:      telemetry.NewCounter(),
			frees:       telemetry.NewCounter(),
		},
	}
}

// AttachTelemetry publishes the region's allocator metrics in reg under the
// shmem.* names (slab usage, pinned pages, pagetable faults).
func (r *Region) AttachTelemetry(reg *telemetry.Registry) {
	reg.AttachGauge("shmem.reserved_bytes", r.met.reserved)
	reg.AttachGauge("shmem.live_bytes", r.met.live)
	reg.AttachGauge("shmem.live_slabs", r.met.liveSlabs)
	reg.AttachGauge("shmem.pinned_pages", r.met.pinnedPages)
	reg.AttachCounter("shmem.page_faults", r.met.pageFaults)
	reg.AttachCounter("shmem.allocs", r.met.allocs)
	reg.AttachCounter("shmem.frees", r.met.frees)
}

// Capacity returns the region capacity in bytes.
func (r *Region) Capacity() uint64 { return r.capacity }

// sizeClass returns the slab class for n bytes: the smallest power of two
// ≥ n within [MinSlab, MaxSlab], or 0 if n needs a dedicated huge run.
func sizeClass(n uint64) uint64 {
	if n > MaxSlab {
		return 0
	}
	c := uint64(MinSlab)
	for c < n {
		c <<= 1
	}
	return c
}

func roundUp(n, to uint64) uint64 { return (n + to - 1) / to * to }

// Alloc reserves size bytes in the shared region and returns its address.
// The paper's best-fit slab policy is approximated by power-of-two classes:
// the returned slab is the smallest class that fits.
func (r *Region) Alloc(size int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("shmem: invalid allocation size %d", size)
	}
	if size < MinSlab {
		return 0, ErrTooSmall
	}
	n := uint64(size)
	r.mu.Lock()
	defer r.mu.Unlock()

	class := sizeClass(n)
	if class != 0 {
		if fl := r.free[class]; len(fl) > 0 {
			a := fl[len(fl)-1]
			r.free[class] = fl[:len(fl)-1]
			r.live[a] = class
			r.met.live.Add(int64(class))
			r.met.liveSlabs.Add(1)
			r.met.allocs.Inc()
			return a, nil
		}
		a, err := r.reserve(class)
		if err != nil {
			return 0, err
		}
		r.live[a] = class
		r.met.live.Add(int64(class))
		r.met.liveSlabs.Add(1)
		r.met.allocs.Inc()
		return a, nil
	}
	// Huge allocation: dedicated page run, freed back as raw pages are
	// not reused (matches the prototype, where huge runs stay pinned for
	// the process lifetime).
	run := roundUp(n, PageSize)
	a, err := r.reserve(run)
	if err != nil {
		return 0, err
	}
	r.live[a] = run
	r.met.live.Add(int64(run))
	r.met.liveSlabs.Add(1)
	r.met.allocs.Inc()
	return a, nil
}

// reserve carves a fresh aligned run out of the virtual space and backs it
// with real memory. Caller holds r.mu.
func (r *Region) reserve(n uint64) (Addr, error) {
	run := roundUp(n, PageSize)
	if r.next+run > r.capacity {
		return 0, ErrOutOfMemory
	}
	base := r.next
	r.next += run
	r.chunks[base] = make([]byte, run)
	r.met.reserved.Add(int64(run))
	pages := int(run / PageSize)
	r.met.pinnedPages.Add(int64(pages))
	for p := base / PageSize; p < (base+run)/PageSize; p++ {
		r.pt.entries[p] = struct{}{}
	}
	// reserve never splits a run across chunks, so slabs smaller than the
	// run would leave a tail; return tail slabs of the same class to the
	// free list so power-of-two classes below PageSize pack densely.
	if n < run {
		for off := n; off+n <= run; off += n {
			r.free[n] = append(r.free[n], Addr(base+off))
		}
	}
	return Addr(base), nil
}

// Free returns an allocation to its slab free list.
func (r *Region) Free(a Addr) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	size, ok := r.live[a]
	if !ok {
		return ErrBadFree
	}
	delete(r.live, a)
	r.met.live.Add(-int64(size))
	r.met.liveSlabs.Add(-1)
	r.met.frees.Inc()
	if size <= MaxSlab && sizeClass(size) == size {
		r.free[size] = append(r.free[size], a)
	}
	return nil
}

// Bytes returns the backing slice for an allocation made at a. The slice is
// the full slab, which is at least as large as the requested size; callers
// track their own logical lengths (as MonetDB's BATs do).
func (r *Region) Bytes(a Addr) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	size, ok := r.live[a]
	if !ok {
		return nil, fmt.Errorf("shmem: Bytes of unallocated address %#x", uint64(a))
	}
	base, buf, ok := r.chunkFor(uint64(a))
	if !ok {
		return nil, fmt.Errorf("shmem: no backing chunk for %#x", uint64(a))
	}
	off := uint64(a) - base
	return buf[off : off+size : off+size], nil
}

// chunkFor finds the backing chunk containing virtual address v. Caller
// holds r.mu.
func (r *Region) chunkFor(v uint64) (base uint64, buf []byte, ok bool) {
	// Chunks are aligned to PageSize and contiguous runs, so walk down
	// page by page until a chunk base matches. Runs are at most
	// MaxSlab-rounded, bounding the walk.
	for p := v / PageSize * PageSize; ; p -= PageSize {
		if b, found := r.chunks[p]; found {
			if v < p+uint64(len(b)) {
				return p, b, true
			}
			return 0, nil, false
		}
		if p == 0 {
			return 0, nil, false
		}
	}
}

// Translate checks that address a is mapped in the pagetable, as the FPGA
// does before every memory access. It returns false — a simulated access
// fault — for unmapped addresses; the engines treat that as a fatal job
// error, because the real hardware cannot recover from a fault (§4.2.1).
func (r *Region) Translate(a Addr) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.pt.entries[uint64(a)/PageSize]
	if !ok {
		r.met.pageFaults.Inc()
	}
	return ok
}

// Stats returns a snapshot of allocator statistics (a view over the
// region's telemetry metrics).
func (r *Region) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Capacity:    r.capacity,
		Reserved:    uint64(r.met.reserved.Value()),
		Live:        uint64(r.met.live.Value()),
		LiveSlabs:   int(r.met.liveSlabs.Value()),
		PinnedPages: int(r.met.pinnedPages.Value()),
		PageFaults:  uint64(r.met.pageFaults.Value()),
	}
}
