// Package invindex implements the word-level inverted index behind the
// CONTAINS operator (§1, §7.2). CONTAINS answers conjunctive keyword
// queries ('Alan & Turing & Cheshire') with posting-list intersection —
// fast at query time (Table 1's 0.033 s) but requiring the index to be
// built ahead of time, kept up to date (a rebuild takes >20 minutes for
// 2.5 M tuples in DBx), and it occupies memory that often exceeds the
// indexed text itself. Those costs, which motivate the paper's index-free
// FPGA scan, are exposed through Stats and Stale.
package invindex

import (
	"errors"
	"sort"
	"strings"

	"doppiodb/internal/telemetry"
)

// Index is an inverted index over a string column. The zero value is not
// usable; call Build.
type Index struct {
	postings map[string][]uint32
	indexed  int  // rows covered by the index
	appended int  // rows added since the last (re)build
	fold     bool // case-insensitive indexing

	// Query/maintenance counters (detached telemetry instances; Stats and
	// Search's lookups return value are views over them).
	searches *telemetry.Counter // Search calls
	probes   *telemetry.Counter // posting-list probes
	rebuilds *telemetry.Counter // full rebuilds
}

// Stats describes the index footprint.
type Stats struct {
	Rows       int // rows covered
	Words      int // distinct words
	Postings   int // total posting entries
	FootprintB int // approximate memory footprint in bytes
	StaleRows  int // rows not yet covered (need rebuild)
}

// ErrEmptyQuery is returned for a CONTAINS query with no words.
var ErrEmptyQuery = errors.New("invindex: empty CONTAINS query")

// Build constructs the index over the given rows. Row i gets OID uint32(i).
func Build(rows []string, foldCase bool) *Index {
	ix := &Index{
		postings: make(map[string][]uint32),
		fold:     foldCase,
		searches: telemetry.NewCounter(),
		probes:   telemetry.NewCounter(),
		rebuilds: telemetry.NewCounter(),
	}
	for i, s := range rows {
		ix.addRow(uint32(i), s)
	}
	ix.indexed = len(rows)
	return ix
}

func (ix *Index) addRow(oid uint32, s string) {
	for _, w := range Tokenize(s, ix.fold) {
		pl := ix.postings[w]
		if n := len(pl); n > 0 && pl[n-1] == oid {
			continue // duplicate word in the same row
		}
		ix.postings[w] = append(ix.postings[w], oid)
	}
}

// Append records that rows were added to the base table without updating
// the index — the staleness the paper calls out. The new rows become
// visible only after Rebuild.
func (ix *Index) Append(n int) { ix.appended += n }

// Stale reports whether the index lags the base table.
func (ix *Index) Stale() bool { return ix.appended > 0 }

// Rebuild re-indexes the full table (existing rows plus rows provided for
// the appended tail) and returns the number of rows indexed.
func (ix *Index) Rebuild(allRows []string) int {
	fresh := Build(allRows, ix.fold)
	ix.postings = fresh.postings
	ix.indexed = fresh.indexed
	ix.appended = 0
	ix.rebuilds.Inc()
	return ix.indexed
}

// AttachTelemetry publishes the index's query/maintenance counters in reg
// under the invindex.* names.
func (ix *Index) AttachTelemetry(reg *telemetry.Registry) {
	reg.AttachCounter("invindex.searches", ix.searches)
	reg.AttachCounter("invindex.probes", ix.probes)
	reg.AttachCounter("invindex.rebuilds", ix.rebuilds)
}

// Stats returns the index footprint.
func (ix *Index) Stats() Stats {
	st := Stats{Rows: ix.indexed, Words: len(ix.postings), StaleRows: ix.appended}
	for w, pl := range ix.postings {
		st.Postings += len(pl)
		st.FootprintB += len(w) + 4*len(pl) + 48 // entry overhead estimate
	}
	return st
}

// Tokenize splits s into indexable words: maximal runs of ASCII letters and
// digits, lowercased when foldCase is set.
func Tokenize(s string, foldCase bool) []string {
	var words []string
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		w := s[start:end]
		if foldCase {
			w = strings.ToLower(w)
		}
		words = append(words, w)
		start = -1
	}
	for i := 0; i < len(s); i++ {
		if isWordByte(s[i]) {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(s))
	return words
}

func isWordByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'A' && b <= 'Z' || b >= 'a' && b <= 'z'
}

// ParseQuery parses a CONTAINS query of `&`-separated words.
func ParseQuery(q string, foldCase bool) ([]string, error) {
	var words []string
	for _, part := range strings.Split(q, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if foldCase {
			part = strings.ToLower(part)
		}
		words = append(words, part)
	}
	if len(words) == 0 {
		return nil, ErrEmptyQuery
	}
	return words, nil
}

// Search answers a conjunctive CONTAINS query, returning the sorted OIDs of
// rows containing every word. Lookups counts the posting-list probes
// performed (the paper notes several patterns require repeated lookups).
func (ix *Index) Search(q string) (oids []uint32, lookups int, err error) {
	words, err := ParseQuery(q, ix.fold)
	if err != nil {
		return nil, 0, err
	}
	ix.searches.Inc()
	defer func() { ix.probes.Add(int64(lookups)) }()
	// Intersect smallest-first for efficiency.
	lists := make([][]uint32, 0, len(words))
	for _, w := range words {
		lookups++
		pl, ok := ix.postings[w]
		if !ok {
			return nil, lookups, nil
		}
		lists = append(lists, pl)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, pl := range lists[1:] {
		out = intersect(out, pl)
		if len(out) == 0 {
			return nil, lookups, nil
		}
	}
	// Copy so callers cannot alias the postings.
	res := make([]uint32, len(out))
	copy(res, out)
	return res, lookups, nil
}

func intersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
