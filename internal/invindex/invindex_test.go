package invindex

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

var rows = []string{
	"Alan Turing visited the Cheshire cat",      // 0
	"Turing and Church in Cheshire",             // 1
	"Alan in Cheshire without Turing? no, with", // 2
	"nothing relevant here",                     // 3
	"Alan Turing Turing Alan",                   // 4
	"cheshire lowercase alan turing",            // 5
}

func TestSearchConjunction(t *testing.T) {
	ix := Build(rows, false)
	got, lookups, err := ix.Search("Alan & Turing & Cheshire")
	if err != nil {
		t.Fatal(err)
	}
	if lookups != 3 {
		t.Errorf("lookups = %d, want 3", lookups)
	}
	want := []uint32{0, 2}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Search = %v, want %v", got, want)
	}
}

func TestSearchFoldCase(t *testing.T) {
	ix := Build(rows, true)
	got, _, err := ix.Search("ALAN & turing & Cheshire")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0, 2, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("folded Search = %v, want %v", got, want)
	}
}

func TestSearchMissingWord(t *testing.T) {
	ix := Build(rows, false)
	got, _, err := ix.Search("Alan & Nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Search = %v, want empty", got)
	}
}

func TestSearchSingleWord(t *testing.T) {
	ix := Build(rows, false)
	got, _, err := ix.Search("Church")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Search = %v, want [1]", got)
	}
}

func TestEmptyQuery(t *testing.T) {
	ix := Build(rows, false)
	if _, _, err := ix.Search("  &  & "); err != ErrEmptyQuery {
		t.Errorf("err = %v, want ErrEmptyQuery", err)
	}
}

func TestDuplicateWordsOnePosting(t *testing.T) {
	ix := Build(rows, false)
	st := ix.Stats()
	// Row 4 repeats Alan and Turing; postings must stay deduplicated.
	got, _, _ := ix.Search("Turing")
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate OID in postings: %v", got)
		}
	}
	if st.Rows != len(rows) {
		t.Errorf("Stats.Rows = %d", st.Rows)
	}
	if st.Words == 0 || st.Postings == 0 || st.FootprintB == 0 {
		t.Errorf("Stats empty: %+v", st)
	}
}

func TestStaleAndRebuild(t *testing.T) {
	ix := Build(rows, false)
	if ix.Stale() {
		t.Error("fresh index reported stale")
	}
	ix.Append(2)
	if !ix.Stale() {
		t.Error("index not stale after Append")
	}
	if got := ix.Stats().StaleRows; got != 2 {
		t.Errorf("StaleRows = %d", got)
	}
	all := append(append([]string{}, rows...), "Cheshire Alan Turing new", "another")
	n := ix.Rebuild(all)
	if n != len(all) || ix.Stale() {
		t.Errorf("Rebuild: n=%d stale=%v", n, ix.Stale())
	}
	got, _, _ := ix.Search("Alan & Turing & Cheshire")
	if len(got) != 3 || got[2] != 6 {
		t.Errorf("post-rebuild Search = %v", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("John|Smith|44 Koblenzer Strasse|60327|Frankfurt", false)
	want := []string{"John", "Smith", "44", "Koblenzer", "Strasse", "60327", "Frankfurt"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Tokenize = %v", got)
	}
	if got := Tokenize("", false); len(got) != 0 {
		t.Errorf("Tokenize(empty) = %v", got)
	}
	if got := Tokenize("Hello", true); got[0] != "hello" {
		t.Errorf("folded Tokenize = %v", got)
	}
}

func TestSearchMatchesScanProperty(t *testing.T) {
	// Index search must return exactly the rows a naive scan finds.
	r := rand.New(rand.NewSource(31))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var data []string
	for i := 0; i < 300; i++ {
		var parts []string
		for w := 0; w < r.Intn(5); w++ {
			parts = append(parts, vocab[r.Intn(len(vocab))])
		}
		data = append(data, strings.Join(parts, " "))
	}
	ix := Build(data, false)
	for trial := 0; trial < 100; trial++ {
		k := r.Intn(3) + 1
		var qs []string
		for i := 0; i < k; i++ {
			qs = append(qs, vocab[r.Intn(len(vocab))])
		}
		got, _, err := ix.Search(strings.Join(qs, " & "))
		if err != nil {
			t.Fatal(err)
		}
		var want []uint32
	scan:
		for i, row := range data {
			words := map[string]bool{}
			for _, w := range Tokenize(row, false) {
				words[w] = true
			}
			for _, q := range qs {
				if !words[q] {
					continue scan
				}
			}
			want = append(want, uint32(i))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %v: index=%v scan=%v", qs, got, want)
		}
	}
}
