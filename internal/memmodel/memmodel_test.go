package memmodel

import (
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/sim"
)

// q1Job is the Figure 8 workload: 2.5 M strings of 64 B payload.
func q1Job() Job {
	return JobForStrings(2_500_000, 64, bat.OffsetWidth, bat.EntryStride(64), 2)
}

// queriesPerSecond runs `jobs` identical jobs spread over `engines` engines
// and returns the aggregate throughput.
func queriesPerSecond(t *testing.T, engines, jobs int) float64 {
	t.Helper()
	queues := make([][]Job, engines)
	for i := 0; i < jobs; i++ {
		queues[i%engines] = append(queues[i%engines], q1Job())
	}
	res := Simulate(Default(), queues)
	if res.Finish <= 0 {
		t.Fatal("no progress")
	}
	return float64(jobs) / res.Finish.Seconds()
}

func TestFigure8SingleEngine(t *testing.T) {
	// §7.3: a single engine achieves 30.7 queries/s (≈5.89 GB/s raw).
	qps := queriesPerSecond(t, 1, 20)
	if qps < 28 || qps > 33 {
		t.Errorf("single-engine throughput = %.1f q/s, want ≈30.7", qps)
	}
	raw := qps * float64(q1Job().TotalBytes())
	if raw < 5.5e9 || raw > 6.2e9 {
		t.Errorf("single-engine raw bandwidth = %.2f GB/s, want ≈5.89", raw/1e9)
	}
}

func TestFigure8Scaling(t *testing.T) {
	// 1 → 2 engines: slight improvement (latency hiding); 2 → 4: flat,
	// QPI-bound.
	q1 := queriesPerSecond(t, 1, 20)
	q2 := queriesPerSecond(t, 2, 20)
	q3 := queriesPerSecond(t, 3, 21)
	q4 := queriesPerSecond(t, 4, 20)
	if q2 <= q1 {
		t.Errorf("2 engines (%.1f) not faster than 1 (%.1f)", q2, q1)
	}
	if q2-q1 > 6 {
		t.Errorf("2-engine gain too large: %.1f -> %.1f", q1, q2)
	}
	if diff := q4 - q2; diff > 1.5 || diff < -1.5 {
		t.Errorf("4 engines (%.1f) should be flat vs 2 (%.1f)", q4, q2)
	}
	if diff := q3 - q2; diff > 1.5 || diff < -1.5 {
		t.Errorf("3 engines (%.1f) should be flat vs 2 (%.1f)", q3, q2)
	}
	// With 2+ engines the link saturates near 6.5 GB/s.
	raw := q4 * float64(q1Job().TotalBytes())
	if raw < 6.2e9 || raw > 6.55e9 {
		t.Errorf("saturated bandwidth = %.2f GB/s, want ≈6.5", raw/1e9)
	}
}

func TestPartitionedResponseTime(t *testing.T) {
	// A single query partitioned across 4 engines: response time is the
	// QPI-bound transfer time of the whole volume plus small overheads.
	whole := q1Job()
	part := JobForStrings(whole.Strings/4, 64, bat.OffsetWidth, bat.EntryStride(64), 2)
	res := Simulate(Default(), [][]Job{{part}, {part}, {part}, {part}})
	want := float64(whole.TotalBytes()) / 6.5e9
	got := res.Finish.Seconds()
	if got < want || got > want*1.15 {
		t.Errorf("partitioned response = %.4fs, want ≈%.4fs (QPI-bound)", got, want)
	}
}

func TestLinearInVolume(t *testing.T) {
	// FPGA response time scales linearly with input size (Figure 9's
	// FPGA lines).
	mk := func(n int) sim.Time {
		j := JobForStrings(n, 64, bat.OffsetWidth, bat.EntryStride(64), 2)
		res := Simulate(Default(), [][]Job{{j}})
		return res.Finish
	}
	t1 := mk(320_000)
	t2 := mk(640_000)
	t3 := mk(1_280_000)
	r12 := float64(t2) / float64(t1)
	r23 := float64(t3) / float64(t2)
	if r12 < 1.85 || r12 > 2.15 || r23 < 1.85 || r23 > 2.15 {
		t.Errorf("scaling not linear: %v %v %v (ratios %.2f %.2f)", t1, t2, t3, r12, r23)
	}
}

func TestUtilization(t *testing.T) {
	res := Simulate(Default(), [][]Job{{q1Job()}, {q1Job()}})
	u := res.Utilization()
	if u < 0.9 || u > 1.0 {
		t.Errorf("2-engine utilization = %.3f, want ≈1", u)
	}
	res1 := Simulate(Default(), [][]Job{{q1Job()}})
	u1 := res1.Utilization()
	if u1 >= u {
		t.Errorf("single-engine utilization %.3f should trail multi %.3f", u1, u)
	}
}

func TestEmptyAndTinyJobs(t *testing.T) {
	res := Simulate(Default(), [][]Job{})
	if res.Finish != 0 || res.BytesMoved != 0 {
		t.Errorf("empty simulation moved data: %+v", res)
	}
	res = Simulate(Default(), [][]Job{{Job{}}})
	if len(res.Done[0]) != 1 {
		t.Error("zero-volume job did not complete")
	}
	res = Simulate(Default(), [][]Job{{JobForStrings(1, 64, 4, 72, 2)}})
	if len(res.Done[0]) != 1 || res.Finish <= 0 {
		t.Error("tiny job did not complete")
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	j := JobForStrings(10_000, 64, bat.OffsetWidth, bat.EntryStride(64), 2)
	res := Simulate(Default(), [][]Job{{j}})
	// Moved bytes are the job volume rounded up to cache lines.
	min := int64(j.TotalBytes())
	max := min + 3*64
	if res.BytesMoved < min || res.BytesMoved > max {
		t.Errorf("BytesMoved = %d, want within [%d,%d]", res.BytesMoved, min, max)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		return Simulate(Default(), [][]Job{
			{q1Job(), q1Job()}, {q1Job()}, {q1Job(), q1Job(), q1Job()},
		})
	}
	a, b := mk(), mk()
	if a.Finish != b.Finish || a.BytesMoved != b.BytesMoved || a.BusyTime != b.BusyTime {
		t.Error("simulation not deterministic")
	}
}
