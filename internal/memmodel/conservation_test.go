package memmodel

import (
	"math/rand"
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/sim"
)

// The topdown accounting's hard invariant: every simulated engine cycle
// lands in exactly one bucket, so per-engine buckets sum *exactly* to the
// batch wall — no epsilon — and the link ledger does the same. The sweep
// below exercises random multi-engine queues across three seeds, including
// skewed engines, empty queues and single-line jobs.
func TestCycleConservationProperty(t *testing.T) {
	p := Default()
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 25; trial++ {
			engines := 1 + rng.Intn(4)
			queues := make([][]Job, engines)
			for e := range queues {
				for k, n := 0, rng.Intn(4); k < n; k++ {
					rows := 1 + rng.Intn(30_000)
					queues[e] = append(queues[e],
						JobForStrings(rows, 64, bat.OffsetWidth, bat.EntryStride(64), 2))
				}
			}
			res := Simulate(p, queues)
			checkConservation(t, p, queues, res)
		}
	}
}

func checkConservation(t *testing.T, p Params, queues [][]Job, res Result) {
	t.Helper()
	if got, want := len(res.Engines), len(queues); got != want {
		t.Fatalf("ledger count = %d, want %d", got, want)
	}
	if !res.Link.Conserved() {
		t.Errorf("link ledger not conserved: busy %v + arb %v + idle %v = %v, wall %v",
			res.Link.Busy, res.Link.Arbitration, res.Link.Idle, res.Link.Sum(), res.Link.Wall)
	}
	for e, led := range res.Engines {
		if !led.Conserved() {
			t.Errorf("engine %d ledger not conserved: sum %v, wall %v", e, led.Sum(), led.Wall)
		}
		if led.Wall != res.Link.Wall {
			t.Errorf("engine %d wall %v != link wall %v", e, led.Wall, res.Link.Wall)
		}
		// Per-job buckets partition the engine's active (non-idle) time:
		// their sums must telescope exactly back to the engine ledger.
		var busy, in, sw, out sim.Time
		var bytes int64
		for _, jb := range res.PerJob[e] {
			busy += jb.Busy
			in += jb.StallInput
			sw += jb.StallSwitch
			out += jb.StallOutput
			bytes += jb.Bytes
		}
		if busy != led.Busy || in != led.StallInput || sw != led.StallSwitch || out != led.StallOutput {
			t.Errorf("engine %d per-job sums (busy %v, in %v, sw %v, out %v) != ledger (%v, %v, %v, %v)",
				e, busy, in, sw, out, led.Busy, led.StallInput, led.StallSwitch, led.StallOutput)
		}
		var want int64
		for _, j := range queues[e] {
			want += (p.lines(j.OffsetBytes) + p.lines(j.HeapBytes) + p.lines(j.ResultBytes)) *
				int64(p.LineBytes)
		}
		if bytes != want {
			t.Errorf("engine %d per-job bytes %d != line-rounded queue volume %d", e, bytes, want)
		}
	}
}

// Empty batches and empty engines conserve trivially (walls of zero).
func TestCycleConservationEdges(t *testing.T) {
	p := Default()
	for _, queues := range [][][]Job{
		{},
		{nil, nil},
		{nil, {JobForStrings(1, 64, 4, 72, 2)}},
	} {
		checkConservation(t, p, queues, Simulate(p, queues))
	}
}
