// Package memmodel simulates the memory system of the Xeon+FPGA prototype:
// the QPI link between the FPGA and the CPU-socket DRAM, the HAL's
// round-robin data arbiter (batches of 16 cache lines, §4.2.2), and the
// String Reader's two-phase access pattern (512 cache lines of offsets,
// then the corresponding heap lines, §5.1).
//
// The model reproduces the paper's measured behaviour:
//
//   - the QPI endpoint sustains ~6.5 GB/s of reads (§2.2);
//   - one Regex Engine consumes at most 6.4 GB/s (16 PUs × 400 MB/s), and
//     the offset↔heap phase switches leave latency a single engine cannot
//     hide, landing it at ~5.89 GB/s of raw bandwidth (§7.3);
//   - a second engine fills those gaps and saturates the link; further
//     engines add nothing (Figure 8's 30.7 → 34.4 → flat shape).
//
// The simulation is event-driven and fully deterministic.
package memmodel

import (
	"doppiodb/internal/sim"
)

// Params are the platform constants. All bandwidths are bytes/second.
type Params struct {
	// QPIBandwidth is the effective FPGA-side read bandwidth over QPI.
	QPIBandwidth float64
	// CPUBandwidth is the CPU-side read bandwidth (for reference and the
	// software cost model; the paper measured 25 GB/s).
	CPUBandwidth float64
	// EngineBandwidth is one Regex Engine's consumption rate.
	EngineBandwidth float64
	// LineBytes is the cache-line transfer granularity (512 bits).
	LineBytes int
	// GrantLines is the arbiter batch size: "the batch size of 16 is
	// small enough to ensure good throughput without increasing memory
	// access latency too much".
	GrantLines int
	// OffsetBatchLines is the String Reader's offset-phase depth (the
	// depth of a BRAM FIFO): 512 cache lines.
	OffsetBatchLines int
	// SwitchLatency is the stall when the String Reader turns from the
	// offset column to the string heap (and back). It aggregates the
	// prototype's memory latency and QPI-endpoint inefficiencies and is
	// calibrated so a lone engine lands at the measured 5.89 GB/s.
	SwitchLatency sim.Time
	// Trace, when non-nil, receives timeline callbacks from Simulate
	// (grant service windows, phase switches, job start/completion). The
	// flight recorder's MemObserver satisfies it; nil costs nothing.
	Trace Observer
}

// Observer receives the simulated timeline as Simulate advances it. Times
// are batch-local (relative to the Simulate call's zero). Callbacks arrive
// single-threaded in simulation order.
type Observer interface {
	// JobStart fires when the arbiter first considers engine's job-th job.
	JobStart(engine, job int, at sim.Time)
	// JobDone fires when engine's job-th job completes.
	JobDone(engine, job int, at sim.Time)
	// Grant reports one arbiter grant of lines cache lines to engine,
	// serviced over [start, end).
	Grant(engine int, lines int64, start, end sim.Time)
	// PhaseSwitch reports an offset↔heap turn of engine's String Reader
	// charging the switch stall.
	PhaseSwitch(engine int, at sim.Time)
}

// Default returns the prototype's parameters.
func Default() Params {
	return Params{
		QPIBandwidth:     6.5e9,
		CPUBandwidth:     25e9,
		EngineBandwidth:  6.4e9,
		LineBytes:        64,
		GrantLines:       16,
		OffsetBatchLines: 512,
		SwitchLatency:    4200 * sim.Nanosecond,
	}
}

// Job is the data volume of one engine job (one partition of a query).
type Job struct {
	Strings     int // number of input strings
	OffsetBytes int // offset-column bytes to read
	HeapBytes   int // string-heap bytes to read
	ResultBytes int // result-column bytes to write
}

// TotalBytes returns the full QPI transfer volume of the job.
func (j Job) TotalBytes() int { return j.OffsetBytes + j.HeapBytes + j.ResultBytes }

// lines rounds a byte count up to whole cache lines.
func (p Params) lines(bytes int) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64((bytes + p.LineBytes - 1) / p.LineBytes)
}

func (p Params) lineTime(rate float64) sim.Time {
	return sim.FromSeconds(float64(p.LineBytes) / rate)
}

// phase is one contiguous access burst of an engine.
type phase struct {
	lines int64
}

// engineState walks an engine through its job queue. readyAt doubles as
// the engine's accounting cursor: every advance of it is classified into
// exactly one EngineLedger bucket, so the ledger telescopes to the wall.
type engineState struct {
	jobs      []Job
	jobIdx    int
	phases    []phase
	phIdx     int
	readyAt   sim.Time
	done      []sim.Time
	started   bool  // current job reported to the observer
	linesLeft int64 // remaining lines of the current job (incl. result lines)
	resLines  int64 // result write-back lines of the current job
}

// buildPhases expands a job into its offset/heap burst sequence. Each
// offset batch of 512 lines covers OffsetBatchLines*LineBytes/4 strings;
// the matching heap burst carries those strings' share of the heap. The
// result write-back rides on the final burst (results are written
// sequentially as cache lines fill, §5.1).
func (p Params) buildPhases(j Job) []phase {
	offLines := p.lines(j.OffsetBytes)
	heapLines := p.lines(j.HeapBytes)
	resLines := p.lines(j.ResultBytes)
	var out []phase
	batch := int64(p.OffsetBatchLines)
	for offLines > 0 {
		ob := min64(offLines, batch)
		offLines -= ob
		// Heap lines proportional to this offset batch.
		hb := heapLines
		if offLines > 0 {
			hb = heapLines * ob / (offLines + ob)
		}
		heapLines -= hb
		out = append(out, phase{lines: ob}, phase{lines: hb})
	}
	if len(out) == 0 {
		out = append(out, phase{lines: 0})
	}
	out[len(out)-1].lines += resLines
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// EngineLedger classifies every picosecond of one engine's simulated span
// into exactly one bucket. The buckets telescope out of the engine's
// ready-time cursor as Simulate advances it, so the conservation invariant
//
//	Busy + StallInput + StallSwitch + StallOutput + Idle == Wall
//
// holds exactly (no epsilon) by construction.
type EngineLedger struct {
	// Busy is time spent draining granted input lines (PU compute).
	Busy sim.Time
	// StallInput is time the engine sat ready while the arbiter serviced
	// other engines (waiting on QPI grants).
	StallInput sim.Time
	// StallSwitch is the offset↔heap turnaround stalls (SwitchLatency).
	StallSwitch sim.Time
	// StallOutput is time draining result write-back lines through the
	// link (the Output Collector's share of the final burst, §5.1).
	StallOutput sim.Time
	// Idle is time after the engine's last job (or the whole span for an
	// engine with no jobs).
	Idle sim.Time
	// Wall is the common span all buckets sum to: the later of the link's
	// finish time and the slowest engine's drain.
	Wall sim.Time
}

// Sum returns the bucket total; Conserved checks it equals Wall exactly.
func (l EngineLedger) Sum() sim.Time {
	return l.Busy + l.StallInput + l.StallSwitch + l.StallOutput + l.Idle
}

// Conserved reports whether the ledger's buckets sum exactly to its wall.
func (l EngineLedger) Conserved() bool { return l.Sum() == l.Wall }

// LinkLedger is the QPI link's parallel accounting: transferring (Busy),
// waiting for any engine to turn around while work is pending
// (Arbitration), or past the last service (Idle). Busy + Arbitration +
// Idle == Wall exactly.
type LinkLedger struct {
	Busy        sim.Time
	Arbitration sim.Time
	Idle        sim.Time
	Wall        sim.Time
}

// Sum returns the bucket total; Conserved checks it equals Wall exactly.
func (l LinkLedger) Sum() sim.Time { return l.Busy + l.Arbitration + l.Idle }

// Conserved reports whether the ledger's buckets sum exactly to its wall.
func (l LinkLedger) Conserved() bool { return l.Sum() == l.Wall }

// JobBuckets is one job's share of its engine's ledger (no idle: jobs do
// not own the post-completion tail). Summed over an engine's jobs the
// fields equal the engine ledger's corresponding buckets exactly.
type JobBuckets struct {
	Busy        sim.Time
	StallInput  sim.Time
	StallSwitch sim.Time
	StallOutput sim.Time
	// Bytes is the QPI traffic granted to this job (line-rounded).
	Bytes int64
}

// Result of a simulation.
type Result struct {
	// Done[e][k] is the completion time of engine e's k-th job.
	Done [][]sim.Time
	// Finish is the time the last job completed.
	Finish sim.Time
	// BytesMoved is the total QPI traffic.
	BytesMoved int64
	// BusyTime is the time the QPI link spent transferring.
	BusyTime sim.Time
	// Grants counts arbiter grants issued (telemetry: batch efficiency is
	// lines moved vs. Grants×GrantLines).
	Grants int64
	// Switches counts offset↔heap phase turns that charged SwitchLatency
	// — the stall events a lone engine cannot hide (§7.3).
	Switches int64
	// Engines[e] is engine e's cycle-conservation ledger over the span.
	Engines []EngineLedger
	// PerJob[e][k] classifies engine e's k-th job's cycles. Boundary
	// activity (the inter-job switch) is charged to the entering job,
	// matching the HAL's per-job attribution.
	PerJob [][]JobBuckets
	// Link is the QPI link's busy/arbitration/idle ledger.
	Link LinkLedger
}

// Utilization returns the QPI link utilization over the simulated span.
func (r Result) Utilization() float64 {
	if r.Finish == 0 {
		return 0
	}
	return r.BusyTime.Seconds() / r.Finish.Seconds()
}

// Simulate runs the given per-engine job queues to completion and returns
// per-job completion times. Engines contend for the QPI link through the
// arbiter; each engine consumes at EngineBandwidth and stalls for
// SwitchLatency between access phases.
func Simulate(p Params, queues [][]Job) Result {
	engines := make([]*engineState, len(queues))
	for i, q := range queues {
		es := &engineState{jobs: q}
		es.loadJob(p)
		engines[i] = es
	}
	qpiLine := p.lineTime(p.QPIBandwidth)
	engLine := p.lineTime(p.EngineBandwidth)

	var now, busy, arb sim.Time
	var moved int64
	res := Result{
		Done:    make([][]sim.Time, len(queues)),
		Engines: make([]EngineLedger, len(queues)),
		PerJob:  make([][]JobBuckets, len(queues)),
	}
	for i, q := range queues {
		res.PerJob[i] = make([]JobBuckets, len(q))
	}
	rr := 0 // round-robin arbiter pointer
	for {
		// Find the next engine (round-robin from rr) that has pending
		// lines and is ready.
		var pick *engineState
		pickIdx := -1
		var soonest sim.Time = -1
		anyPending := false
		for k := 0; k < len(engines); k++ {
			i := (rr + k) % len(engines)
			es := engines[i]
			if es.jobIdx >= len(es.jobs) {
				continue
			}
			anyPending = true
			if es.readyAt <= now {
				if pick == nil {
					pick, pickIdx = es, i
				}
			}
			if soonest < 0 || es.readyAt < soonest {
				soonest = es.readyAt
			}
		}
		if !anyPending {
			break
		}
		if pick == nil {
			// Work is pending but every engine is mid-drain or mid-turn:
			// the link waits on arbitration, not true idleness.
			arb += soonest - now
			now = soonest
			continue
		}
		// Grant up to GrantLines from the engine's current phase.
		if !pick.started {
			pick.started = true
			if p.Trace != nil {
				p.Trace.JobStart(pickIdx, pick.jobIdx, now)
			}
		}
		ph := &pick.phases[pick.phIdx]
		g := min64(ph.lines, int64(p.GrantLines))
		if g > 0 {
			service := qpiLine * sim.Time(g)
			consume := engLine * sim.Time(g)
			if p.Trace != nil {
				p.Trace.Grant(pickIdx, g, now, now+service)
			}
			led := &res.Engines[pickIdx]
			jb := res.jobAcct(pickIdx, pick.jobIdx)
			// Time the engine sat ready before this grant was its turn.
			if gap := now - pick.readyAt; gap > 0 {
				led.StallInput += gap
				if jb != nil {
					jb.StallInput += gap
				}
			}
			// The job's trailing result lines are write-back drain
			// (stall-output), everything before them is PU compute.
			pick.linesLeft -= g
			var outLines int64
			if pick.linesLeft < pick.resLines {
				outLines = min64(g, pick.resLines-pick.linesLeft)
			}
			busyT := engLine * sim.Time(g-outLines)
			outT := engLine * sim.Time(outLines)
			led.Busy += busyT
			led.StallOutput += outT
			if jb != nil {
				jb.Busy += busyT
				jb.StallOutput += outT
				jb.Bytes += g * int64(p.LineBytes)
			}
			now += service
			busy += service
			moved += g * int64(p.LineBytes)
			res.Grants++
			ph.lines -= g
			// The engine is busy consuming; it cannot take the
			// next grant before it drains this one.
			pick.readyAt = now + (consume - service)
		}
		if ph.lines == 0 {
			pick.advancePhase(p, pickIdx, now, &res)
		}
		rr = (pickIdx + 1) % len(engines)
	}
	res.Finish = now
	res.BytesMoved = moved
	res.BusyTime = busy
	// The wall every ledger sums to: the last engine may still be
	// draining its final grant past the link's last service.
	wall := now
	for _, es := range engines {
		if es.readyAt > wall {
			wall = es.readyAt
		}
	}
	for i, es := range engines {
		res.Done[i] = es.done
		led := &res.Engines[i]
		led.Idle = wall - es.readyAt
		led.Wall = wall
	}
	res.Link = LinkLedger{Busy: busy, Arbitration: arb, Idle: wall - now, Wall: wall}
	return res
}

// jobAcct returns the accounting bucket of engine e's jobIdx-th job,
// clamped to the last job so boundary events past the queue still land
// somewhere (mirroring the HAL attribution's clamp).
func (r *Result) jobAcct(e, jobIdx int) *JobBuckets {
	pj := r.PerJob[e]
	if len(pj) == 0 {
		return nil
	}
	if jobIdx >= len(pj) {
		jobIdx = len(pj) - 1
	}
	return &pj[jobIdx]
}

func (es *engineState) loadJob(p Params) {
	if es.jobIdx < len(es.jobs) {
		es.phases = p.buildPhases(es.jobs[es.jobIdx])
		es.phIdx = 0
		es.linesLeft = 0
		for _, ph := range es.phases {
			es.linesLeft += ph.lines
		}
		es.resLines = p.lines(es.jobs[es.jobIdx].ResultBytes)
	}
}

// advancePhase moves engine e to its next burst, charging the switch
// stall; at the end of the job it records completion and loads the next.
func (es *engineState) advancePhase(p Params, e int, now sim.Time, res *Result) {
	es.phIdx++
	if es.phIdx < len(es.phases) {
		es.chargeSwitch(p, e, now, res)
		if p.Trace != nil {
			p.Trace.PhaseSwitch(e, now)
		}
		return
	}
	if p.Trace != nil {
		p.Trace.JobDone(e, es.jobIdx, now)
	}
	es.done = append(es.done, now)
	es.jobIdx++
	es.loadJob(p)
	es.started = false
	if es.jobIdx < len(es.jobs) {
		es.chargeSwitch(p, e, now, res)
		if p.Trace != nil {
			p.Trace.PhaseSwitch(e, now)
		}
	}
}

// chargeSwitch advances the engine cursor across one SwitchLatency stall,
// classifying any ready-but-unserved gap before it as stall-input. The
// charge lands on the engine's current job — for the inter-job turn that
// is the entering job, matching the HAL's per-job attribution.
func (es *engineState) chargeSwitch(p Params, e int, now sim.Time, res *Result) {
	led := &res.Engines[e]
	jb := res.jobAcct(e, es.jobIdx)
	if gap := now - es.readyAt; gap > 0 {
		led.StallInput += gap
		if jb != nil {
			jb.StallInput += gap
		}
		es.readyAt = now
	}
	led.StallSwitch += p.SwitchLatency
	if jb != nil {
		jb.StallSwitch += p.SwitchLatency
	}
	es.readyAt += p.SwitchLatency
	res.Switches++
}

// JobForStrings builds a Job for n strings of the given payload length
// using the BAT heap layout (4 B offsets, 72 B heap entries for 64 B
// strings, 2 B results).
func JobForStrings(n, strLen, offsetWidth, entryStride, resultWidth int) Job {
	return Job{
		Strings:     n,
		OffsetBytes: n * offsetWidth,
		HeapBytes:   n * entryStride,
		ResultBytes: n * resultWidth,
	}
}
