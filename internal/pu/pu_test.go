package pu

import (
	"math/rand"
	"strings"
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/token"
)

func mustUnit(t *testing.T, pat string, opts token.Options) *Unit {
	t.Helper()
	prog, err := token.CompilePattern(pat, opts)
	if err != nil {
		t.Fatalf("compile %q: %v", pat, err)
	}
	u, err := New(prog)
	if err != nil {
		t.Fatalf("New(%q): %v", pat, err)
	}
	return u
}

func TestMatchPaperQueries(t *testing.T) {
	cases := []struct {
		pat, in string
		want    uint16
	}{
		{`Strasse`, "John|Smith|44 Koblenzer Strasse|60327|Frankfurt", 31},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Meier|Str. 5|80331|Muenchen", 18},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Meier|Weg 5|80331|Muenchen", 0},
		{`[0-9]+(USD|EUR|GBP)`, "invoice 250EUR due", 14},
		{`[A-Za-z]{3}\:[0-9]{4}`, "code XYZ:9911 sent", 13},
		{`(a|b).*c`, "zzazzc", 6},
		{`(a|b).*c`, "zczz", 0},
	}
	for _, c := range cases {
		u := mustUnit(t, c.pat, token.Options{})
		if got := u.MatchString(c.in); got != c.want {
			t.Errorf("PU %q on %q = %d, want %d", c.pat, c.in, got, c.want)
		}
	}
}

func TestBitParallelMatchesReference(t *testing.T) {
	// The bit-parallel circuit model must agree byte-for-byte with the
	// slow reference interpreter on random patterns and inputs.
	r := rand.New(rand.NewSource(5))
	atoms := []string{"a", "b", "[ab]", "c", "."}
	var build func(d int) string
	build = func(d int) string {
		if d == 0 {
			return atoms[r.Intn(len(atoms))]
		}
		switch r.Intn(7) {
		case 0:
			return build(d-1) + build(d-1)
		case 1:
			return "(" + build(d-1) + "|" + build(d-1) + ")"
		case 2:
			return "(" + build(d-1) + ")+"
		case 3:
			return build(d-1) + ".*" + build(d-1)
		case 4:
			return "(" + build(d-1) + ")?" + build(d-1)
		default:
			return build(d - 1)
		}
	}
	tested := 0
	for i := 0; i < 500; i++ {
		pat := build(3)
		if r.Intn(4) == 0 {
			pat = "^" + pat
		}
		if r.Intn(4) == 0 {
			pat = pat + "$"
		}
		prog, err := token.CompilePattern(pat, token.Options{FoldCase: r.Intn(2) == 0})
		if err != nil {
			continue
		}
		u, err := New(prog)
		if err != nil {
			continue
		}
		tested++
		for k := 0; k < 25; k++ {
			var b strings.Builder
			for j := 0; j < r.Intn(18); j++ {
				b.WriteByte("abcxA"[r.Intn(5)])
			}
			in := b.String()
			want := prog.MatchString(in)
			got := int(u.MatchString(in))
			if got != want {
				t.Fatalf("pattern %q input %q: pu=%d reference=%d", pat, in, got, want)
			}
		}
	}
	if tested < 200 {
		t.Fatalf("only %d patterns tested", tested)
	}
}

func TestConfigVectorToUnit(t *testing.T) {
	// Full path: pattern -> config vector -> decode -> PU, as the HAL
	// does in step 7 of Figure 3.
	prog, err := token.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := config.Encode(prog, config.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := config.Decode(vec)
	if err != nil {
		t.Fatal(err)
	}
	u, err := New(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.MatchString("Haupt Strasse 81000"); got != 19 {
		t.Errorf("decoded PU match = %d, want 19", got)
	}
}

func TestStats(t *testing.T) {
	u := mustUnit(t, `abc`, token.Options{})
	u.MatchString("xxabc")   // match at 5, consumes 5 bytes
	u.MatchString("zzzz")    // no match, 4 bytes
	u.MatchString("abcdefg") // match at 3, early exit after 3 bytes
	s := u.Stats()
	if s.Strings != 3 {
		t.Errorf("Strings = %d", s.Strings)
	}
	if s.Matches != 2 {
		t.Errorf("Matches = %d", s.Matches)
	}
	if s.Bytes != 5+4+3 {
		t.Errorf("Bytes = %d, want 12", s.Bytes)
	}
	u.ResetStats()
	if u.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestCapacityErrors(t *testing.T) {
	// 33 alternation branches exceed MaxTokens.
	parts := make([]string, 33)
	for i := range parts {
		parts[i] = strings.Repeat(string(rune('a'+i%26)), 1)
	}
	prog, err := token.CompilePattern("("+strings.Join(parts, "|")+")x", token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog); err != ErrTooManyTokens {
		t.Errorf("want ErrTooManyTokens, got %v", err)
	}
	// One token of 70 chained matchers exceeds the chain capacity.
	prog, err = token.CompilePattern(strings.Repeat("a", 70), token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog); err != ErrChainTooLong {
		t.Errorf("want ErrChainTooLong, got %v", err)
	}
}

func TestSaturatedPosition(t *testing.T) {
	u := mustUnit(t, `zq`, token.Options{})
	in := strings.Repeat("x", 70000) + "zq"
	if got := u.Match([]byte(in)); got != 0xFFFF {
		t.Errorf("saturated position = %d, want 65535", got)
	}
}

func TestFoldCaseCollation(t *testing.T) {
	// §6.4: collation has no effect on performance, only on the hit
	// table, and must match case-insensitively.
	u := mustUnit(t, `(blue|gray).*skies`, token.Options{FoldCase: true})
	if got := u.MatchString("GRAY autumn SKIES"); got != 17 {
		t.Errorf("collation match = %d, want 17", got)
	}
	u2 := mustUnit(t, `(blue|gray).*skies`, token.Options{})
	if got := u2.MatchString("GRAY autumn SKIES"); got != 0 {
		t.Errorf("case-sensitive matched %d", got)
	}
}

func BenchmarkPUMatch64B(b *testing.B) {
	prog, _ := token.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, token.Options{})
	u, _ := New(prog)
	in := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Match(in)
	}
}
