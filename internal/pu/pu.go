// Package pu implements the Processing Unit (§6): a runtime-parameterizable
// NFA circuit consisting of chained Character Matchers and a fully connected
// State Graph. A PU consumes exactly one input byte per 400 MHz cycle
// regardless of pattern complexity — the property that gives the paper its
// complexity-independent performance — and reports the match index (the
// 1-based position of the match's last character) as a 16-bit unsigned
// integer, or zero for no match.
//
// The software model is bit-parallel: all chain shift registers live in one
// 64-bit word and all state bits in one 32-bit word, mirroring how the
// synchronous circuit updates every flip-flop in a single clock edge. Its
// observable behaviour is cross-checked against the slow reference
// interpreter in internal/token.
package pu

import (
	"errors"
	"fmt"

	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
)

// Circuit capacity of the software model, matching the largest deployment
// the paper synthesizes (Fig. 15 explores up to 32 states / 64 characters).
const (
	// MaxTokens bounds the token states of one expression (the end state
	// is implicit in the accept signal).
	MaxTokens = 32
	// MaxChainPositions bounds the total matcher chain positions.
	MaxChainPositions = 64
)

// Capacity errors.
var (
	ErrTooManyTokens = errors.New("pu: expression exceeds the state-graph capacity")
	ErrChainTooLong  = errors.New("pu: expression exceeds the character-matcher capacity")
)

// Unit is one configured Processing Unit.
type Unit struct {
	prog    *token.Program
	nTokens int

	// hit[b] has chain-position bit k set when the matcher at chain
	// position k accepts byte b (collation registers folded in).
	hit [256]uint64

	firstPos []uint // chain bit index of each token's first matcher
	lastPos  []uint // chain bit index of each token's last matcher

	firstBits   uint64 // bits at all first positions
	entryAlways uint64 // chain entries armed on every cycle
	entryAtZero uint64 // chain entries armed only at offset 0 (^ anchor)

	predMask   []uint32 // token-state predecessor sets
	withPreds  []int    // tokens with a non-empty predecessor set
	holdMask   uint32
	acceptMask uint32

	// Work counters accumulate across Match calls. They are detached
	// telemetry instances — the DSM-style hardware counters of this PU —
	// and Stats() is a thin view over them.
	strings, bytes, matches *telemetry.Counter
}

// Stats counts the work a Unit has performed; the engine model uses Cycles
// for timing (one byte per 400 MHz cycle). It is a snapshot view over the
// Unit's telemetry counters.
type Stats struct {
	Strings uint64 // strings processed
	Bytes   uint64 // bytes consumed = PU cycles
	Matches uint64 // strings that matched
}

// New builds a Unit from a compiled token program, the software analogue of
// loading the configuration vector into the PU's parameter registers.
func New(prog *token.Program) (*Unit, error) {
	n := len(prog.Tokens)
	if n == 0 {
		return nil, errors.New("pu: empty program")
	}
	if n > MaxTokens {
		return nil, ErrTooManyTokens
	}
	u := &Unit{
		prog:     prog,
		nTokens:  n,
		firstPos: make([]uint, n),
		lastPos:  make([]uint, n),
		predMask: make([]uint32, n),
		strings:  telemetry.NewCounter(),
		bytes:    telemetry.NewCounter(),
		matches:  telemetry.NewCounter(),
	}
	pos := uint(0)
	for j := 0; j < n; j++ {
		tok := &prog.Tokens[j]
		if int(pos)+tok.Len() > MaxChainPositions {
			return nil, ErrChainTooLong
		}
		u.firstPos[j] = pos
		u.lastPos[j] = pos + uint(tok.Len()) - 1
		u.firstBits |= 1 << pos
		for k := 0; k < tok.Len(); k++ {
			m := &tok.Matchers[k]
			for b := 0; b < 256; b++ {
				if m.Matches(byte(b), prog.FoldCase) {
					u.hit[b] |= 1 << (pos + uint(k))
				}
			}
		}
		pos += uint(tok.Len())
	}
	for j := 0; j < n; j++ {
		fb := uint64(1) << u.firstPos[j]
		if prog.Start[j] {
			if !prog.Anchored || prog.StartGapped[j] {
				u.entryAlways |= fb
			} else {
				u.entryAtZero |= fb
			}
		}
		for _, p := range prog.Preds[j] {
			u.predMask[j] |= 1 << uint(p)
		}
		if u.predMask[j] != 0 {
			u.withPreds = append(u.withPreds, j)
		}
		if prog.Hold[j] {
			u.holdMask |= 1 << uint(j)
		}
		if prog.Accept[j] {
			u.acceptMask |= 1 << uint(j)
		}
	}
	return u, nil
}

// Program returns the configured token program.
func (u *Unit) Program() *token.Program { return u.prog }

// Stats returns a snapshot of the accumulated work counters.
func (u *Unit) Stats() Stats {
	return Stats{
		Strings: uint64(u.strings.Value()),
		Bytes:   uint64(u.bytes.Value()),
		Matches: uint64(u.matches.Value()),
	}
}

// ResetStats clears the work counters (per-job accounting).
func (u *Unit) ResetStats() {
	u.strings.Reset()
	u.bytes.Reset()
	u.matches.Reset()
}

// AttachTelemetry publishes this Unit's counters in a registry under the
// given prefix (e.g. "pu.0"), as the hardware exposes per-PU counters in
// the status structure.
func (u *Unit) AttachTelemetry(reg *telemetry.Registry, prefix string) {
	reg.AttachCounter(prefix+".strings", u.strings)
	reg.AttachCounter(prefix+".cycles", u.bytes)
	reg.AttachCounter(prefix+".matches", u.matches)
}

// Match feeds s through the PU one byte per cycle and returns the match
// index per the HUDF encoding: 0 for no match, else the 1-based position of
// the first match's last character, saturating at 65535.
func (u *Unit) Match(s []byte) uint16 {
	u.strings.Inc()
	var chain uint64
	var active uint32
	endAnchored := u.prog.EndAnchored
	accept := u.acceptMask
	hold := u.holdMask
	n := u.nTokens

	for i := 0; i < len(s); i++ {
		entry := u.entryAlways
		if i == 0 {
			entry |= u.entryAtZero
		}
		if active != 0 {
			for _, j := range u.withPreds {
				if u.predMask[j]&active != 0 {
					entry |= 1 << u.firstPos[j]
				}
			}
		}
		chain = ((chain << 1) &^ u.firstBits) | entry
		chain &= u.hit[s[i]]

		var fired uint32
		for j := 0; j < n; j++ {
			fired |= uint32(chain>>u.lastPos[j]&1) << uint(j)
		}
		active = fired | (hold & active)

		if fired&accept != 0 {
			if !endAnchored {
				u.bytes.Add(int64(i + 1))
				u.matches.Inc()
				return satPos(i + 1)
			}
			if i == len(s)-1 {
				u.bytes.Add(int64(len(s)))
				u.matches.Inc()
				return satPos(len(s))
			}
		}
	}
	u.bytes.Add(int64(len(s)))
	if endAnchored && active&accept&hold != 0 {
		// A held accept position (e.g. `a.*$`) is still active when
		// the string ends.
		u.matches.Inc()
		return satPos(len(s))
	}
	return 0
}

// MatchString is Match over a string.
func (u *Unit) MatchString(s string) uint16 {
	return u.Match([]byte(s))
}

func satPos(p int) uint16 {
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

func (u *Unit) String() string {
	return fmt.Sprintf("PU{states=%d chars=%d chain=%d}",
		u.prog.NumStates(), u.prog.NumChars(), u.lastPos[u.nTokens-1]+1)
}
