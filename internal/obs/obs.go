// Package obs is the per-query observability layer of the reproduction:
// a wide-event query log (one canonical structured record per query, in a
// bounded tail-biased ring, exportable as JSONL), a windowed SLO engine
// (sliding-window latency and availability SLIs on the simulated timebase
// with multi-window burn-rate alerts), and the perf-regression comparator
// doppiobench's -baseline gate runs in CI. An Observer bundles the log
// and the SLO engine behind one ObserveQuery call; core.Exec feeds it at
// every query completion — success or error — so every outcome of the
// overload taxonomy (completed, degraded, shed, deadline, canceled,
// failed) lands in both views.
package obs

import (
	"context"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/telemetry"
)

// Options configure an Observer; zero values select the defaults.
type Options struct {
	Log LogOptions
	SLO SLOOptions
}

// Observer bundles the query log and the SLO engine.
type Observer struct {
	Log *Log
	SLO *SLO
}

// New builds an Observer. The log's always-keep latency threshold defaults
// to the SLO latency target, so every SLO-violating query survives
// sampling.
func New(opts Options) *Observer {
	o := &Observer{Log: NewLog(opts.Log), SLO: NewSLO(opts.SLO)}
	if opts.Log.SlowNS <= 0 {
		o.Log.setSlowNS(o.SLO.Targets().LatencyP99NS)
	}
	return o
}

// defaultObserver is the process-wide observer every System feeds unless
// explicitly rewired (tests and the soak experiment use private ones).
var defaultObserver = New(Options{})

// Default returns the process-wide observer.
func Default() *Observer { return defaultObserver }

// SetTelemetry mirrors both components' accounting into the registry.
func (o *Observer) SetTelemetry(tel *telemetry.Registry) {
	if o == nil {
		return
	}
	o.Log.SetTelemetry(tel)
	o.SLO.SetTelemetry(tel)
}

// SetRecorder wires the flight recorder the SLO burn alert latches into.
func (o *Observer) SetRecorder(rec *flightrec.Recorder) {
	if o == nil {
		return
	}
	o.SLO.SetRecorder(rec)
}

// ObserveQuery records one finished query in the log and the SLO engine.
func (o *Observer) ObserveQuery(ev Event) {
	if o == nil {
		return
	}
	o.Log.Record(ev)
	o.SLO.Observe(ev)
}

// Alerting reports whether the SLO burn-rate alert is latched (the bit
// /health flips on).
func (o *Observer) Alerting() bool {
	if o == nil {
		return false
	}
	return o.SLO.Alerting()
}

// queryInfoKey carries the session/query identity through a context.
type queryInfoKey struct{}

type queryInfo struct{ session, query string }

// WithQueryInfo attaches the SQL layer's session and query ids to ctx so
// the wide event emitted at completion can identify the caller.
func WithQueryInfo(ctx context.Context, session, query string) context.Context {
	return context.WithValue(ctx, queryInfoKey{}, queryInfo{session, query})
}

// QueryInfoFrom returns the identity attached by WithQueryInfo ("" when
// the query came from a direct library caller).
func QueryInfoFrom(ctx context.Context) (session, query string) {
	if ctx == nil {
		return "", ""
	}
	qi, _ := ctx.Value(queryInfoKey{}).(queryInfo)
	return qi.session, qi.query
}
