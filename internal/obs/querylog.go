// The wide-event query log: one canonical structured record per query —
// who ran it, where the planner placed it, how every simulated phase
// priced out, how much data moved, and how it ended (completed, degraded,
// shed, deadline, canceled, failed). The log is a bounded ring with
// tail-biased sampling: notable events (anything but a fast clean
// completion) are always kept, the fast happy path is kept one-in-N so a
// high-throughput run cannot wash the interesting tail out of the window.
// Sampling decisions derive from deterministic event counters — never the
// wall clock — so identical runs keep identical events and the exported
// JSONL is bit-identical, per the repo's simulation contract.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"doppiodb/internal/telemetry"
	"doppiodb/internal/topdown"
)

// Outcome classifies how a query ended. Exactly one outcome per query.
type Outcome string

const (
	// OutcomeCompleted is a clean hardware/hybrid/software completion.
	OutcomeCompleted Outcome = "completed"
	// OutcomeDegraded completed, but on the software fallback after the
	// hardware path faulted beyond its retries.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeShed was rejected by the admission layer at a backlog cap.
	OutcomeShed Outcome = "shed"
	// OutcomeDeadline was refused or aborted by the deadline machinery
	// (simulated budget or context deadline).
	OutcomeDeadline Outcome = "deadline"
	// OutcomeCanceled was aborted by its caller's context.
	OutcomeCanceled Outcome = "canceled"
	// OutcomeFailed is any other error (compile errors, closed runtime).
	OutcomeFailed Outcome = "failed"
)

// IsError reports whether the outcome counts against the availability SLI
// (degraded + shed + deadline + failed over submitted; a caller canceling
// its own query is not the system's error).
func (o Outcome) IsError() bool {
	switch o {
	case OutcomeDegraded, OutcomeShed, OutcomeDeadline, OutcomeFailed:
		return true
	}
	return false
}

// Event is the wide query record. Every duration is simulated nanoseconds;
// SimNS stamps the completion on the device runtime's continuous timeline.
// There is deliberately no wall-clock field: two identical runs must
// produce byte-identical JSONL.
type Event struct {
	// Seq is the log-assigned submission sequence number (1-based).
	Seq uint64 `json:"seq"`
	// SimNS is the simulated completion timestamp.
	SimNS int64 `json:"sim_ns"`
	// Session and Query identify the issuing SQL session and its query
	// counter (empty for direct core.Exec callers).
	Session string `json:"session,omitempty"`
	Query   string `json:"query,omitempty"`
	// Pattern is the regex/LIKE predicate the query evaluated.
	Pattern string `json:"pattern"`
	// Placement is the plan that ran: fpga, hybrid, or software.
	Placement string `json:"placement"`
	// Outcome says how the query ended; Cause names the fault or error
	// behind a non-completed outcome.
	Outcome Outcome `json:"outcome"`
	Cause   string  `json:"cause,omitempty"`
	// Rows and Matches size the scan and its result.
	Rows    int `json:"rows"`
	Matches int `json:"matches"`
	// Bytes is the QPI traffic attributed to this query's jobs alone.
	Bytes int64 `json:"bytes_scanned"`
	// Jobs is the engine set: how many partitions the runtime dispatched.
	Jobs int `json:"jobs,omitempty"`
	// Hybrid marks split execution (FPGA prefix + software tail).
	Hybrid bool `json:"hybrid,omitempty"`
	// PlanCached marks a query answered from a plan-cache hit (compiled
	// config vector reused, config-gen skipped).
	PlanCached bool `json:"plan_cache_hit,omitempty"`
	// Shared marks a follower query whose scan rode a coalesced job group.
	Shared bool `json:"shared_scan,omitempty"`
	// Retries and BackoffNS account the query-level retry loop.
	Retries   int   `json:"retries,omitempty"`
	BackoffNS int64 `json:"retry_backoff_ns,omitempty"`
	// BudgetNS is the simulated deadline budget the query carried.
	BudgetNS int64 `json:"budget_ns,omitempty"`
	// QueueNS is the backlog wait, TotalNS the full simulated response
	// time, Phases the per-phase breakdown (Figure 10's buckets).
	QueueNS int64            `json:"queue_wait_ns,omitempty"`
	TotalNS int64            `json:"total_ns"`
	Phases  map[string]int64 `json:"phases,omitempty"`
	// Topdown is the query's bottleneck attribution (verdict plus the
	// cycle buckets behind it), when the core layer produced one.
	Topdown *topdown.Attribution `json:"topdown,omitempty"`
	// Sampled marks a fast happy-path event kept by the one-in-N sampler
	// (notable events are always kept and leave this false).
	Sampled bool `json:"sampled,omitempty"`
}

// LogOptions tune the ring and its sampler.
type LogOptions struct {
	// Capacity bounds the ring (default 4096 events).
	Capacity int
	// SampleEvery keeps one in N fast happy-path events (default 16;
	// 1 keeps everything).
	SampleEvery int
	// SlowNS marks a completion as notable (always kept) when its total
	// simulated time reaches this threshold. Default: the SLO latency
	// target when the log is wired through an Observer, else unset.
	SlowNS int64
}

func (o LogOptions) withDefaults() LogOptions {
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	return o
}

// LogStats summarizes the log's admission accounting.
type LogStats struct {
	// Submitted counts every event offered to the log; Kept the events
	// admitted to the ring (notable + sampled); SampledOut the fast
	// happy-path events the sampler dropped; Evicted the admitted events
	// the ring has since overwritten.
	Submitted  uint64 `json:"submitted"`
	Kept       uint64 `json:"kept"`
	Notable    uint64 `json:"notable"`
	SampledOut uint64 `json:"sampled_out"`
	Evicted    uint64 `json:"evicted"`
	// ByOutcome counts every submitted event per outcome (pre-sampling).
	ByOutcome map[Outcome]uint64 `json:"by_outcome"`
}

// Log is the bounded wide-event ring. All methods are nil-safe.
type Log struct {
	mu   sync.Mutex
	opts LogOptions
	buf  []Event
	next int // ring write cursor
	full bool

	seq        uint64 // submission counter (assigns Event.Seq)
	fastSeen   uint64 // fast happy-path events seen, drives the sampler
	kept       uint64
	notable    uint64
	sampledOut uint64
	byOutcome  map[Outcome]uint64

	tel *telemetry.Registry
}

// NewLog builds a query log.
func NewLog(opts LogOptions) *Log {
	opts = opts.withDefaults()
	return &Log{
		opts:      opts,
		buf:       make([]Event, opts.Capacity),
		byOutcome: make(map[Outcome]uint64),
	}
}

// SetTelemetry mirrors the admission accounting into querylog.* counters.
func (l *Log) SetTelemetry(tel *telemetry.Registry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.tel = tel
	l.mu.Unlock()
}

// setSlowNS wires the always-keep latency threshold (Observer binds it to
// the SLO latency target so every SLO-violating query survives sampling).
func (l *Log) setSlowNS(ns int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.opts.SlowNS = ns
	l.mu.Unlock()
}

// notableEvent reports whether ev must bypass sampling: every outcome but
// a clean completion, any retried or hybrid query, and completions at or
// over the slow threshold.
func (l *Log) notableEvent(ev *Event) bool {
	if ev.Outcome != OutcomeCompleted || ev.Retries > 0 || ev.Hybrid {
		return true
	}
	return l.opts.SlowNS > 0 && ev.TotalNS >= l.opts.SlowNS
}

// Record offers one event to the log. The log assigns Seq (submission
// order); tail-biased sampling decides whether the event enters the ring.
func (l *Log) Record(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	l.byOutcome[ev.Outcome]++
	l.tel.Counter("querylog.submitted").Inc()
	switch {
	case l.notableEvent(&ev):
		l.notable++
	default:
		l.fastSeen++
		if (l.fastSeen-1)%uint64(l.opts.SampleEvery) != 0 {
			l.sampledOut++
			l.tel.Counter("querylog.sampled_out").Inc()
			return
		}
		ev.Sampled = true
	}
	l.kept++
	l.tel.Counter("querylog.kept").Inc()
	l.buf[l.next] = ev
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
}

// Stats returns the admission accounting.
func (l *Log) Stats() LogStats {
	if l == nil {
		return LogStats{ByOutcome: map[Outcome]uint64{}}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := LogStats{
		Submitted:  l.seq,
		Kept:       l.kept,
		Notable:    l.notable,
		SampledOut: l.sampledOut,
		ByOutcome:  make(map[Outcome]uint64, len(l.byOutcome)),
	}
	n := uint64(len(l.buf))
	if l.kept > n {
		s.Evicted = l.kept - n
	}
	for k, v := range l.byOutcome {
		s.ByOutcome[k] = v
	}
	return s
}

// Window returns up to n of the most recent retained events, oldest first
// (n ≤ 0: the whole window).
func (l *Log) Window(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	start := 0
	if l.full {
		size = len(l.buf)
		start = l.next
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := size - n; i < size; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// WriteJSONL exports up to n of the most recent retained events as JSON
// Lines, oldest first (n ≤ 0: the whole window). Output is deterministic:
// map keys are sorted by encoding/json and no field carries wall time.
func (l *Log) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, ev := range l.Window(n) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders up to n recent events as the compact one-line-per-
// query table \querylog prints.
func (l *Log) WriteText(w io.Writer, n int) {
	evs := l.Window(n)
	if len(evs) == 0 {
		fmt.Fprintln(w, "query log: no events retained")
		return
	}
	st := l.Stats()
	fmt.Fprintf(w, "query log: %d submitted, %d kept (%d notable, %d sampled out, %d evicted)\n",
		st.Submitted, st.Kept, st.Notable, st.SampledOut, st.Evicted)
	fmt.Fprintf(w, "%6s  %-10s  %-9s  %-9s  %8s  %12s  %10s  %s\n",
		"seq", "session", "placement", "outcome", "rows", "total", "bytes", "pattern")
	for _, ev := range evs {
		sess := ev.Session
		if sess == "" {
			sess = "-"
		} else if ev.Query != "" {
			sess = ev.Session + "#" + ev.Query
		}
		note := ""
		if ev.Retries > 0 {
			note = fmt.Sprintf(" [retries %d]", ev.Retries)
		}
		if ev.Sampled {
			note += " [sampled]"
		}
		pat := ev.Pattern
		if len(pat) > 32 {
			pat = pat[:29] + "..."
		}
		fmt.Fprintf(w, "%6d  %-10s  %-9s  %-9s  %8d  %10.3fms  %10d  %s%s\n",
			ev.Seq, sess, ev.Placement, ev.Outcome, ev.Rows,
			float64(ev.TotalNS)/1e6, ev.Bytes, pat, note)
	}
}
