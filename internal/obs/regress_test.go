package obs

import (
	"bytes"
	"strings"
	"testing"
)

const benchDocA = `{
  "experiments": [
    {"experiment": "figure8", "result": {
      "MeasuredRawGBs": 5.8,
      "Points": [
        {"Engines": 1, "Measured": 29.9, "Paper": 30.0},
        {"Engines": 2, "Measured": 32.1, "Paper": 32.0}
      ]
    }},
    {"experiment": "throughput", "result": {
      "Rates": [{"Clients": 8, "PaperQPS": 110.0, "RawGBs": 5.5, "Rows": 12000}]
    }}
  ],
  "metrics": {"counters": {"ignored": 1}}
}`

// Self-comparison: every gated metric matches itself, zero regressions.
func TestCompareBaselineSelf(t *testing.T) {
	rep, err := CompareBaseline([]byte(benchDocA), []byte(benchDocA), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("self-comparison failed: %+v", rep)
	}
	// Gated: MeasuredRawGBs, 2× Points/N/Measured, PaperQPS, RawGBs = 5.
	// Paper reference values, Engines, Clients, Rows are not throughput
	// metrics of this run and must not be gated.
	if rep.Checked != 5 {
		t.Fatalf("checked: got %d, want 5", rep.Checked)
	}
	if len(rep.Regressions) != 0 || len(rep.Improvements) != 0 || len(rep.MissingInCurrent) != 0 {
		t.Fatalf("self-comparison not clean: %+v", rep)
	}
}

// A halved throughput metric fails the gate; one inside the tolerance and
// the non-gated fields do not.
func TestCompareBaselineRegression(t *testing.T) {
	current := strings.Replace(benchDocA, `"MeasuredRawGBs": 5.8`, `"MeasuredRawGBs": 2.9`, 1)
	// -5% on one point: inside the 10% tolerance.
	current = strings.Replace(current, `"Measured": 32.1`, `"Measured": 30.5`, 1)
	rep, err := CompareBaseline([]byte(benchDocA), []byte(current), 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("50% throughput drop passed the gate")
	}
	if len(rep.Regressions) != 1 {
		t.Fatalf("regressions: got %+v, want exactly the halved metric", rep.Regressions)
	}
	d := rep.Regressions[0]
	if d.Metric != "figure8/MeasuredRawGBs" || d.DeltaPct > -49 {
		t.Fatalf("wrong regression: %+v", d)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("text report: %s", buf.String())
	}
}

// Improvements are informational; missing metrics don't fail the gate.
func TestCompareBaselineImprovementAndMissing(t *testing.T) {
	current := strings.Replace(benchDocA, `"MeasuredRawGBs": 5.8`, `"MeasuredRawGBs": 9.9`, 1)
	current = strings.Replace(current,
		`{"experiment": "throughput", "result": {
      "Rates": [{"Clients": 8, "PaperQPS": 110.0, "RawGBs": 5.5, "Rows": 12000}]
    }}`,
		`{"experiment": "throughput", "result": {"Rates": []}}`, 1)
	rep, err := CompareBaseline([]byte(benchDocA), []byte(current), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("improvement+missing must still pass: %+v", rep)
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Metric != "figure8/MeasuredRawGBs" {
		t.Fatalf("improvements: %+v", rep.Improvements)
	}
	if len(rep.MissingInCurrent) != 2 {
		t.Fatalf("missing: got %v, want the two dropped throughput leaves", rep.MissingInCurrent)
	}
}

func TestCompareBaselineBadInput(t *testing.T) {
	if _, err := CompareBaseline([]byte("not json"), []byte(benchDocA), 10); err == nil {
		t.Fatal("bad baseline accepted")
	}
	if _, err := CompareBaseline([]byte(benchDocA), []byte("not json"), 10); err == nil {
		t.Fatal("bad current accepted")
	}
}
