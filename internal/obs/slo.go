// The windowed SLO engine: sliding-window service-level indicators over
// the simulated timebase. Per placement class it keeps a rotating-slot
// latency histogram (p50/p95/p99 by interpolation, exact to one bucket)
// and, across all classes, availability counters over two windows — fast
// (5 s of simulated time) and slow (60 s) — from which it computes the
// error-budget burn rate: observed error rate over the budget the
// availability target leaves. The multi-window alert fires only when BOTH
// windows burn over the threshold (the SRE-workbook shape: the slow
// window proves it is not a blip, the fast window proves it is still
// happening), latches a flightrec slo-burn event, and is surfaced by
// /health and /slo. Everything advances on event timestamps — never the
// wall clock — so identical runs alert identically.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// SLOTargets are the configurable objectives.
type SLOTargets struct {
	// AvailabilityPct is the fraction of submitted queries that must not
	// end in an error outcome (degraded/shed/deadline/failed), e.g. 99.0.
	// The error budget is what it leaves: 1%.
	AvailabilityPct float64 `json:"availability_pct"`
	// LatencyP99NS is the per-class p99 latency objective in simulated
	// nanoseconds.
	LatencyP99NS int64 `json:"latency_p99_ns"`
}

// SLOOptions configure the engine; the zero value selects the defaults.
type SLOOptions struct {
	Targets SLOTargets
	// FastWindowNS/SlowWindowNS are the two burn-rate windows on the
	// simulated timeline (defaults 5 s and 60 s).
	FastWindowNS int64
	SlowWindowNS int64
	// Slots is the rotating sub-window count per window (default 16).
	Slots int
	// BurnThreshold is the burn-rate multiple both windows must exceed to
	// alert (default 2: the budget is burning at least twice as fast as it
	// can sustainably be spent — the SRE workbook's "ticket" class).
	BurnThreshold float64
	// MinSamples gates the alert until the fast window has seen this many
	// queries (default 8), so a lone early error cannot page.
	MinSamples int64
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Targets.AvailabilityPct <= 0 || o.Targets.AvailabilityPct >= 100 {
		o.Targets.AvailabilityPct = 99.0
	}
	if o.Targets.LatencyP99NS <= 0 {
		o.Targets.LatencyP99NS = int64(100 * sim.Millisecond / sim.Nanosecond)
	}
	if o.FastWindowNS <= 0 {
		o.FastWindowNS = int64(5 * sim.Second / sim.Nanosecond)
	}
	if o.SlowWindowNS <= 0 {
		o.SlowWindowNS = int64(60 * sim.Second / sim.Nanosecond)
	}
	if o.Slots <= 0 {
		o.Slots = 16
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 2
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	return o
}

// latencyBounds are the shared log₂-spaced bucket bounds of the windowed
// latency histograms: 1 µs up to ~8.6 s of simulated time, so a quantile
// estimate is never more than a factor-of-two bucket off.
func latencyBounds() []int64 {
	bounds := make([]int64, 0, 24)
	for b := int64(1000); b <= int64(8.6e9); b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// windowCounts is a rotating-slot availability counter pair (submitted and
// errors) over one window of the simulated timeline.
type windowCounts struct {
	width int64
	slots []wcSlot
}

type wcSlot struct {
	start     int64
	submitted int64
	errors    int64
}

func newWindowCounts(window int64, slots int) *windowCounts {
	if window < int64(slots) {
		window = int64(slots)
	}
	w := &windowCounts{width: window / int64(slots), slots: make([]wcSlot, slots)}
	for i := range w.slots {
		w.slots[i].start = -1
	}
	return w
}

// add records one query at timeline position now. Caller synchronizes.
func (w *windowCounts) add(now int64, isErr bool) {
	if now < 0 {
		now = 0
	}
	start := now - now%w.width
	s := &w.slots[(now/w.width)%int64(len(w.slots))]
	if s.start != start {
		*s = wcSlot{start: start}
	}
	s.submitted++
	if isErr {
		s.errors++
	}
}

// rates sums the live slots at now. Caller synchronizes.
func (w *windowCounts) rates(now int64) (submitted, errors int64) {
	if now < 0 {
		now = 0
	}
	oldest := now - now%w.width - int64(len(w.slots)-1)*w.width
	for i := range w.slots {
		s := &w.slots[i]
		if s.start < 0 || s.start < oldest || s.start > now {
			continue
		}
		submitted += s.submitted
		errors += s.errors
	}
	return submitted, errors
}

// SLO is the windowed SLO engine. All methods are nil-safe.
type SLO struct {
	mu   sync.Mutex
	opts SLOOptions
	// lat holds one slow-window latency histogram per placement class.
	lat        map[string]*telemetry.WindowedHistogram
	fast, slow *windowCounts
	lastNS     int64 // latest event timestamp seen (the engine's "now")

	alert       bool
	alertsFired int64
	submitted   int64
	errors      int64
	byOutcome   map[Outcome]int64

	tel *telemetry.Registry
	rec *flightrec.Recorder
}

// NewSLO builds an engine with the given options.
func NewSLO(opts SLOOptions) *SLO {
	opts = opts.withDefaults()
	return &SLO{
		opts:      opts,
		lat:       make(map[string]*telemetry.WindowedHistogram),
		fast:      newWindowCounts(opts.FastWindowNS, opts.Slots),
		slow:      newWindowCounts(opts.SlowWindowNS, opts.Slots),
		byOutcome: make(map[Outcome]int64),
	}
}

// SetTelemetry mirrors the SLIs into slo.* gauges and counters.
func (s *SLO) SetTelemetry(tel *telemetry.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tel = tel
	s.mu.Unlock()
}

// SetRecorder wires the flight recorder the burn alert latches into.
func (s *SLO) SetRecorder(rec *flightrec.Recorder) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

// Targets returns the configured objectives.
func (s *SLO) Targets() SLOTargets {
	if s == nil {
		return SLOOptions{}.withDefaults().Targets
	}
	return s.opts.Targets
}

// Alerting reports whether the burn-rate alert is currently latched.
func (s *SLO) Alerting() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alert
}

// Observe feeds one finished query into the SLIs and re-evaluates the
// burn-rate alert at the event's simulated timestamp.
func (s *SLO) Observe(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := ev.SimNS
	if now > s.lastNS {
		s.lastNS = now
	}
	s.submitted++
	s.byOutcome[ev.Outcome]++
	isErr := ev.Outcome.IsError()
	if isErr {
		s.errors++
	}
	s.fast.add(now, isErr)
	s.slow.add(now, isErr)
	// Latency SLIs track queries that actually produced a result; a shed
	// or refused query has no service time to speak of.
	if ev.Outcome == OutcomeCompleted || ev.Outcome == OutcomeDegraded {
		class := ev.Placement
		if class == "" {
			class = "unknown"
		}
		h, ok := s.lat[class]
		if !ok {
			h = telemetry.NewWindowedHistogram(s.opts.SlowWindowNS, s.opts.Slots, latencyBounds()...)
			s.lat[class] = h
		}
		h.Observe(now, ev.TotalNS)
	}
	s.evaluateLocked(now)
}

// burnLocked computes one window's burn rate: the observed error rate over
// the error budget the availability target leaves.
func (s *SLO) burnLocked(w *windowCounts, now int64) (rate, burn float64, submitted int64) {
	sub, errs := w.rates(now)
	if sub == 0 {
		return 0, 0, 0
	}
	rate = float64(errs) / float64(sub)
	budget := 1 - s.opts.Targets.AvailabilityPct/100
	return rate, rate / budget, sub
}

// evaluateLocked re-computes both windows' burn and drives the alert's
// latch/clear transitions. Caller holds s.mu.
func (s *SLO) evaluateLocked(now int64) {
	_, fastBurn, fastSub := s.burnLocked(s.fast, now)
	_, slowBurn, _ := s.burnLocked(s.slow, now)
	s.tel.Gauge("slo.burn.fast_bp").Set(int64(fastBurn * 10000))
	s.tel.Gauge("slo.burn.slow_bp").Set(int64(slowBurn * 10000))
	active := fastSub >= s.opts.MinSamples &&
		fastBurn >= s.opts.BurnThreshold && slowBurn >= s.opts.BurnThreshold
	switch {
	case active && !s.alert:
		s.alert = true
		s.alertsFired++
		s.tel.Counter("slo.alerts_fired").Inc()
		s.tel.Gauge("slo.alert").Set(1)
		s.rec.Record(flightrec.Event{
			Type:   flightrec.EvSLOBurn,
			Sim:    sim.Time(now) * sim.Nanosecond,
			Engine: -1,
			Unit:   -1,
			Arg:    1,
			Note: fmt.Sprintf("error budget burning %.1fx fast / %.1fx slow (threshold %.1fx)",
				fastBurn, slowBurn, s.opts.BurnThreshold),
		})
	case !active && s.alert:
		s.alert = false
		s.tel.Gauge("slo.alert").Set(0)
		s.rec.Record(flightrec.Event{
			Type:   flightrec.EvSLOBurn,
			Sim:    sim.Time(now) * sim.Nanosecond,
			Engine: -1,
			Unit:   -1,
			Arg:    0,
			Note: fmt.Sprintf("burn-rate alert cleared (%.1fx fast / %.1fx slow)",
				fastBurn, slowBurn),
		})
	}
}

// ClassSLI is one placement class's windowed latency view.
type ClassSLI struct {
	Class string `json:"class"`
	// Count is the completions inside the slow window.
	Count int64 `json:"count"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
	// LatencyOK reports the class against the p99 objective.
	LatencyOK bool `json:"latency_ok"`
}

// SLOReport is the engine's full rendered state (the /slo document).
type SLOReport struct {
	SimNowNS      int64      `json:"sim_now_ns"`
	Targets       SLOTargets `json:"targets"`
	ErrorBudget   float64    `json:"error_budget"`
	FastWindowNS  int64      `json:"fast_window_ns"`
	SlowWindowNS  int64      `json:"slow_window_ns"`
	BurnThreshold float64    `json:"burn_threshold"`

	// Totals since start, plus the per-outcome split.
	Submitted int64             `json:"submitted"`
	Errors    int64             `json:"errors"`
	ByOutcome map[Outcome]int64 `json:"by_outcome"`

	// Windowed availability SLIs and their burn rates.
	FastRate float64 `json:"fast_error_rate"`
	SlowRate float64 `json:"slow_error_rate"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`

	AlertActive bool  `json:"alert_active"`
	AlertsFired int64 `json:"alerts_fired"`

	Classes []ClassSLI `json:"classes"`
}

// Report renders the engine's state at the latest observed simulated time.
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{Targets: SLOOptions{}.withDefaults().Targets, ByOutcome: map[Outcome]int64{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.lastNS
	rep := SLOReport{
		SimNowNS:      now,
		Targets:       s.opts.Targets,
		ErrorBudget:   1 - s.opts.Targets.AvailabilityPct/100,
		FastWindowNS:  s.opts.FastWindowNS,
		SlowWindowNS:  s.opts.SlowWindowNS,
		BurnThreshold: s.opts.BurnThreshold,
		Submitted:     s.submitted,
		Errors:        s.errors,
		ByOutcome:     make(map[Outcome]int64, len(s.byOutcome)),
		AlertActive:   s.alert,
		AlertsFired:   s.alertsFired,
	}
	for k, v := range s.byOutcome {
		rep.ByOutcome[k] = v
	}
	rep.FastRate, rep.FastBurn, _ = s.burnLocked(s.fast, now)
	rep.SlowRate, rep.SlowBurn, _ = s.burnLocked(s.slow, now)
	classes := make([]string, 0, len(s.lat))
	for c := range s.lat {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		h := s.lat[c]
		snap := h.Snapshot(now)
		cs := ClassSLI{
			Class: c,
			Count: snap.Count,
			P50NS: h.Quantile(now, 0.50),
			P95NS: h.Quantile(now, 0.95),
			P99NS: h.Quantile(now, 0.99),
			MaxNS: h.Max(now),
		}
		cs.LatencyOK = cs.P99NS <= s.opts.Targets.LatencyP99NS
		rep.Classes = append(rep.Classes, cs)
	}
	return rep
}

// ms renders simulated nanoseconds as milliseconds for the text report.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

// WriteText renders the report the way doppiosh's \slo prints it.
func (r SLOReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "SLO targets: availability %.2f%% (error budget %.2f%%), p99 latency <= %.3f ms\n",
		r.Targets.AvailabilityPct, r.ErrorBudget*100, ms(r.Targets.LatencyP99NS))
	fmt.Fprintf(w, "windows: fast %.0f s / slow %.0f s of simulated time, burn threshold %.1fx\n",
		float64(r.FastWindowNS)/1e9, float64(r.SlowWindowNS)/1e9, r.BurnThreshold)
	fmt.Fprintf(w, "submitted %d, errors %d", r.Submitted, r.Errors)
	if len(r.ByOutcome) > 0 {
		outs := make([]string, 0, len(r.ByOutcome))
		for o := range r.ByOutcome {
			outs = append(outs, string(o))
		}
		sort.Strings(outs)
		fmt.Fprint(w, " (")
		for i, o := range outs {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s %d", o, r.ByOutcome[Outcome(o)])
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "burn rate: fast %.2fx (error rate %.2f%%), slow %.2fx (error rate %.2f%%)\n",
		r.FastBurn, r.FastRate*100, r.SlowBurn, r.SlowRate*100)
	if r.AlertActive {
		fmt.Fprintf(w, "ALERT: error budget burning over %.1fx on both windows (%d fired total)\n",
			r.BurnThreshold, r.AlertsFired)
	} else {
		fmt.Fprintf(w, "alert: quiet (%d fired total)\n", r.AlertsFired)
	}
	if len(r.Classes) == 0 {
		fmt.Fprintln(w, "latency: no completions in window yet")
		return
	}
	fmt.Fprintf(w, "%-10s %8s %12s %12s %12s %12s  %s\n",
		"class", "count", "p50", "p95", "p99", "max", "p99 SLO")
	for _, c := range r.Classes {
		verdict := "ok"
		if !c.LatencyOK {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "%-10s %8d %10.3fms %10.3fms %10.3fms %10.3fms  %s\n",
			c.Class, c.Count, ms(c.P50NS), ms(c.P95NS), ms(c.P99NS), ms(c.MaxNS), verdict)
	}
}
