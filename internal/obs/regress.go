// The perf-regression gate: compare two doppiobench -json documents and
// fail when a throughput-class metric regressed past the tolerance. The
// comparator is schema-agnostic — it flattens every experiment result to
// "experiment/path/to/field" keys and gates the throughput-shaped ones
// (qps / measured / gbs / throughput in the leaf name), so new experiments
// join the gate without comparator changes. CI wires this as
// `doppiobench -baseline BENCH_fig8.json`: exit zero against its own
// output, non-zero when a run (e.g. under a qpi=0.4 fault) lost more than
// the tolerance.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// BaselineDelta is one gated metric's comparison.
type BaselineDelta struct {
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Current  float64 `json:"current"`
	DeltaPct float64 `json:"delta_pct"`
}

// BaselineReport is the full pass/fail comparison document.
type BaselineReport struct {
	TolerancePct float64 `json:"tolerance_pct"`
	// Checked counts the gated (throughput-class) metrics present in both
	// documents.
	Checked int  `json:"checked"`
	Pass    bool `json:"pass"`
	// Regressions dropped more than the tolerance; Improvements gained
	// more than it (informational).
	Regressions  []BaselineDelta `json:"regressions"`
	Improvements []BaselineDelta `json:"improvements"`
	// MissingInCurrent lists baseline metrics the current run no longer
	// produces (informational — renames and removed experiments).
	MissingInCurrent []string `json:"missing_in_current,omitempty"`
}

// benchDoc is the slice of the doppiobench -json document the comparator
// reads; unknown keys are ignored so the format can keep growing.
type benchDoc struct {
	Experiments []struct {
		Experiment string          `json:"experiment"`
		Result     json.RawMessage `json:"result"`
	} `json:"experiments"`
}

// flattenMetrics walks v collecting numeric leaves under path-joined keys.
func flattenMetrics(prefix string, v any, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			flattenMetrics(prefix+"/"+k, c, out)
		}
	case []any:
		for i, c := range t {
			flattenMetrics(fmt.Sprintf("%s/%d", prefix, i), c, out)
		}
	case float64:
		out[prefix] = t
	}
}

// ExtractMetrics flattens a doppiobench -json document into metric keys
// ("fig8/Points/0/Measured") mapped to their numeric values.
func ExtractMetrics(doc []byte) (map[string]float64, error) {
	var d benchDoc
	if err := json.Unmarshal(doc, &d); err != nil {
		return nil, fmt.Errorf("obs: parse bench document: %w", err)
	}
	out := make(map[string]float64)
	for _, e := range d.Experiments {
		var v any
		if err := json.Unmarshal(e.Result, &v); err != nil {
			return nil, fmt.Errorf("obs: parse %s result: %w", e.Experiment, err)
		}
		flattenMetrics(e.Experiment, v, out)
	}
	return out, nil
}

// gated reports whether a metric key is a throughput-class figure the gate
// compares: higher is better, a drop past the tolerance is a regression.
func gated(key string) bool {
	leaf := strings.ToLower(key[strings.LastIndex(key, "/")+1:])
	for _, m := range []string{"qps", "measured", "gbs", "throughput"} {
		if strings.Contains(leaf, m) {
			return true
		}
	}
	return false
}

// CompareBaseline compares a current doppiobench -json document against a
// baseline one, gating throughput-class metrics at tolerancePct (<= 0
// selects the default 10%).
func CompareBaseline(baseline, current []byte, tolerancePct float64) (*BaselineReport, error) {
	if tolerancePct <= 0 {
		tolerancePct = 10
	}
	base, err := ExtractMetrics(baseline)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cur, err := ExtractMetrics(current)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	rep := &BaselineReport{TolerancePct: tolerancePct, Pass: true}
	keys := make([]string, 0, len(base))
	for k := range base {
		if gated(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := base[k]
		c, ok := cur[k]
		if !ok {
			rep.MissingInCurrent = append(rep.MissingInCurrent, k)
			continue
		}
		rep.Checked++
		if b == 0 {
			continue // nothing to regress from
		}
		deltaPct := (c - b) / math.Abs(b) * 100
		d := BaselineDelta{Metric: k, Base: b, Current: c, DeltaPct: deltaPct}
		switch {
		case deltaPct < -tolerancePct:
			rep.Regressions = append(rep.Regressions, d)
			rep.Pass = false
		case deltaPct > tolerancePct:
			rep.Improvements = append(rep.Improvements, d)
		}
	}
	return rep, nil
}

// WriteText renders the delta report for the terminal.
func (r *BaselineReport) WriteText(w io.Writer) {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "baseline comparison: %s (%d metric(s) checked, tolerance %.1f%%)\n",
		verdict, r.Checked, r.TolerancePct)
	for _, d := range r.Regressions {
		fmt.Fprintf(w, "  REGRESSED  %-40s %12.4f -> %12.4f  (%+.1f%%)\n",
			d.Metric, d.Base, d.Current, d.DeltaPct)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(w, "  improved   %-40s %12.4f -> %12.4f  (%+.1f%%)\n",
			d.Metric, d.Base, d.Current, d.DeltaPct)
	}
	for _, k := range r.MissingInCurrent {
		fmt.Fprintf(w, "  missing    %s (present in baseline only)\n", k)
	}
}
