package obs

import (
	"bytes"
	"strings"
	"testing"
)

// fastEvent is a clean completion well under any slow threshold.
func fastEvent(simNS int64) Event {
	return Event{SimNS: simNS, Pattern: "Strasse", Placement: "fpga",
		Outcome: OutcomeCompleted, Rows: 100, TotalNS: 1000}
}

// Tail-biased sampling: notable events (any non-completed outcome, any
// retry, any hybrid, any slow completion) always survive; the fast happy
// path is kept one-in-N by a deterministic counter.
func TestLogTailBiasedSampling(t *testing.T) {
	l := NewLog(LogOptions{Capacity: 64, SampleEvery: 4, SlowNS: 1_000_000})
	for i := 0; i < 8; i++ {
		l.Record(fastEvent(int64(i)))
	}
	l.Record(Event{SimNS: 100, Outcome: OutcomeShed, Cause: "overload"})
	l.Record(Event{SimNS: 101, Outcome: OutcomeCompleted, Retries: 2, TotalNS: 1000})
	l.Record(Event{SimNS: 102, Outcome: OutcomeCompleted, Hybrid: true, TotalNS: 1000})
	l.Record(Event{SimNS: 103, Outcome: OutcomeCompleted, TotalNS: 2_000_000}) // slow
	l.Record(Event{SimNS: 104, Outcome: OutcomeDeadline})

	st := l.Stats()
	if st.Submitted != 13 {
		t.Fatalf("submitted: got %d, want 13", st.Submitted)
	}
	if st.Notable != 5 {
		t.Fatalf("notable: got %d, want 5 (shed, retried, hybrid, slow, deadline)", st.Notable)
	}
	// 8 fast events at one-in-4: events 1 and 5 kept, 6 sampled out.
	if st.SampledOut != 6 {
		t.Fatalf("sampled out: got %d, want 6", st.SampledOut)
	}
	if st.Kept != 7 {
		t.Fatalf("kept: got %d, want 7 (2 sampled + 5 notable)", st.Kept)
	}
	if st.ByOutcome[OutcomeCompleted] != 11 || st.ByOutcome[OutcomeShed] != 1 || st.ByOutcome[OutcomeDeadline] != 1 {
		t.Fatalf("by-outcome split wrong: %+v", st.ByOutcome)
	}
	// Every notable event is in the window; sampled fast events are marked.
	var sampled, notable int
	for _, ev := range l.Window(0) {
		if ev.Sampled {
			sampled++
		} else {
			notable++
		}
	}
	if sampled != 2 || notable != 5 {
		t.Fatalf("window split: %d sampled / %d notable, want 2/5", sampled, notable)
	}
}

// The ring is bounded: old events are evicted, Seq keeps counting, and
// Window returns the most recent events oldest-first.
func TestLogRingEviction(t *testing.T) {
	l := NewLog(LogOptions{Capacity: 4, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		l.Record(fastEvent(int64(i)))
	}
	st := l.Stats()
	if st.Kept != 10 || st.Evicted != 6 {
		t.Fatalf("kept/evicted: got %d/%d, want 10/6", st.Kept, st.Evicted)
	}
	win := l.Window(0)
	if len(win) != 4 {
		t.Fatalf("window size: got %d, want 4", len(win))
	}
	for i, ev := range win {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("window[%d].Seq: got %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
	if got := l.Window(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Window(2) wrong: %+v", got)
	}
}

// Identical event sequences export byte-identical JSONL.
func TestLogJSONLDeterministic(t *testing.T) {
	run := func() string {
		l := NewLog(LogOptions{Capacity: 64, SampleEvery: 4})
		for i := 0; i < 20; i++ {
			ev := fastEvent(int64(i * 100))
			ev.Phases = map[string]int64{"HAL": 10, "Database": 20, "Hardware Processing": 30}
			l.Record(ev)
		}
		l.Record(Event{SimNS: 9000, Outcome: OutcomeShed, Cause: "overload"})
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf, 0); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("JSONL export not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"outcome":"shed"`) {
		t.Fatalf("export missing the shed event:\n%s", a)
	}
	if strings.Contains(a, "wall") {
		t.Fatalf("export must not carry wall-clock fields:\n%s", a)
	}
}

func TestLogNilSafe(t *testing.T) {
	var l *Log
	l.Record(fastEvent(0))
	if l.Window(0) != nil || l.Stats().Submitted != 0 {
		t.Fatal("nil log must be inert")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf, 0); err != nil || buf.Len() != 0 {
		t.Fatal("nil log JSONL must be empty")
	}
	l.WriteText(&buf, 0)
}

func TestOutcomeIsError(t *testing.T) {
	for o, want := range map[Outcome]bool{
		OutcomeCompleted: false, OutcomeCanceled: false,
		OutcomeDegraded: true, OutcomeShed: true, OutcomeDeadline: true, OutcomeFailed: true,
	} {
		if got := o.IsError(); got != want {
			t.Errorf("%s.IsError() = %v, want %v", o, got, want)
		}
	}
}
