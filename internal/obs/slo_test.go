package obs

import (
	"bytes"
	"strings"
	"testing"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/telemetry"
)

// sloUnderTest builds a small engine: 99% availability (1% budget),
// burn threshold 2x, alert armed after 8 samples in the fast window.
func sloUnderTest() *SLO {
	return NewSLO(SLOOptions{
		Targets:       SLOTargets{AvailabilityPct: 99, LatencyP99NS: 1_000_000},
		FastWindowNS:  5_000_000_000,
		SlowWindowNS:  60_000_000_000,
		BurnThreshold: 2,
		MinSamples:    8,
	})
}

// The multi-window alert latches when both windows burn over threshold and
// the fast window has enough samples, and the transition lands in the
// flight recorder.
func TestSLOBurnAlertLatchesAndClears(t *testing.T) {
	s := sloUnderTest()
	reg := telemetry.NewRegistry()
	rec := flightrec.New(64)
	s.SetTelemetry(reg)
	s.SetRecorder(rec)

	// 7 errors among the first 7 events: 100% error rate but under
	// MinSamples — the alert must hold its fire.
	now := int64(0)
	for i := 0; i < 7; i++ {
		s.Observe(Event{SimNS: now, Outcome: OutcomeShed})
		now += 1000
	}
	if s.Alerting() {
		t.Fatal("alert fired under MinSamples")
	}
	// The 8th error crosses MinSamples with burn 100x on both windows.
	s.Observe(Event{SimNS: now, Outcome: OutcomeShed})
	if !s.Alerting() {
		t.Fatal("alert did not latch at 100% error rate past MinSamples")
	}
	rep := s.Report()
	if rep.AlertsFired != 1 || !rep.AlertActive {
		t.Fatalf("report: fired %d active %v, want 1/true", rep.AlertsFired, rep.AlertActive)
	}
	if rep.FastBurn < 50 || rep.SlowBurn < 50 {
		t.Fatalf("burn rates too low for 100%% errors: fast %.1f slow %.1f", rep.FastBurn, rep.SlowBurn)
	}
	if reg.Counter("slo.alerts_fired").Value() != 1 || reg.Gauge("slo.alert").Value() != 1 {
		t.Fatal("telemetry mirrors not set on latch")
	}
	var latch, clear int
	for _, ev := range rec.Window() {
		if ev.Type == flightrec.EvSLOBurn {
			if ev.Arg == 1 {
				latch++
			} else {
				clear++
			}
		}
	}
	if latch != 1 || clear != 0 {
		t.Fatalf("flightrec events: %d latch / %d clear, want 1/0", latch, clear)
	}

	// Flood the fast window with clean completions far enough ahead that
	// the error slots expire from it: the alert must clear (the slow
	// window still remembers, but the AND condition breaks).
	now += 20_000_000_000 // +20 s simulated: past the 5 s fast window
	for i := 0; i < 50; i++ {
		s.Observe(Event{SimNS: now, Outcome: OutcomeCompleted, Placement: "fpga", TotalNS: 1000})
		now += 1000
	}
	if s.Alerting() {
		t.Fatal("alert did not clear after the fast window went clean")
	}
	clear = 0
	for _, ev := range rec.Window() {
		if ev.Type == flightrec.EvSLOBurn && ev.Arg == 0 {
			clear++
		}
	}
	if clear != 1 {
		t.Fatalf("clear events: got %d, want 1", clear)
	}
	if reg.Gauge("slo.alert").Value() != 0 {
		t.Fatal("slo.alert gauge not cleared")
	}
}

// A clean run never alerts, reports per-class latency SLIs, and judges
// them against the p99 objective.
func TestSLOCleanRunSilent(t *testing.T) {
	s := sloUnderTest()
	for i := 0; i < 100; i++ {
		s.Observe(Event{SimNS: int64(i * 1000), Outcome: OutcomeCompleted,
			Placement: "fpga", TotalNS: 250_000})
	}
	if s.Alerting() {
		t.Fatal("clean run alerted")
	}
	rep := s.Report()
	if rep.AlertsFired != 0 || rep.Errors != 0 || rep.Submitted != 100 {
		t.Fatalf("clean report wrong: %+v", rep)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "fpga" {
		t.Fatalf("classes: %+v", rep.Classes)
	}
	c := rep.Classes[0]
	// All samples are 250µs; log₂ buckets bound the estimate by 2x.
	if c.P99NS < 250_000/2 || c.P99NS > 500_000 {
		t.Fatalf("p99 estimate %d outside a factor-2 of 250000", c.P99NS)
	}
	if !c.LatencyOK {
		t.Fatalf("250µs p99 judged against a 1ms objective must be ok: %+v", c)
	}
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"alert: quiet", "fpga", "availability 99.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

// Shed queries count against availability but not latency: they never had
// a service time.
func TestSLOShedExcludedFromLatency(t *testing.T) {
	s := sloUnderTest()
	for i := 0; i < 10; i++ {
		s.Observe(Event{SimNS: int64(i), Outcome: OutcomeShed})
	}
	rep := s.Report()
	if rep.Errors != 10 {
		t.Fatalf("errors: got %d, want 10", rep.Errors)
	}
	if len(rep.Classes) != 0 {
		t.Fatalf("shed-only run must have no latency classes: %+v", rep.Classes)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(Event{})
	if s.Alerting() {
		t.Fatal("nil SLO alerting")
	}
	if got := s.Targets().AvailabilityPct; got != 99 {
		t.Fatalf("nil targets: got %v", got)
	}
	if rep := s.Report(); rep.Submitted != 0 {
		t.Fatalf("nil report: %+v", rep)
	}
}
