// Package hal implements the Hardware Operator Abstraction Layer of §4.2:
// the software library the HUDF calls to create, execute and monitor FPGA
// jobs, and the hardware-side Job Distributor that hands queued jobs to
// idle Regex Engines.
//
// All control structures live in the CPU-FPGA shared memory region, as on
// the prototype: the Device Status Memory page used for the AAL handshake,
// the job queue, and per-job parameter and status blocks. The status block
// carries the done bit the UDF busy-waits on (the platform has no
// FPGA-to-CPU interrupts) plus the execution statistics the engine reports.
//
// Functional execution happens synchronously at submit time; *timing* is
// resolved by the asynchronous device runtime (runtime.go): Dispatch hands
// a query's jobs to the event-loop goroutine that owns the memory model
// and the simulated device clock, and each job's Await delivers its
// individual completion record with per-job QPI attribution.
//
// Because the platform's only health signals are the DSM handshake words
// and each job's done bit, the HAL defends the whole submit→await spine:
// config vectors and status blocks are checksummed (verified at engine
// ingest and at the done-bit read), the done-bit busy-wait runs under a
// simulated-time watchdog with bounded resubmission to other engines, and a
// per-engine circuit breaker (health.go) quarantines engines that fail
// repeatedly until a fresh AAL handshake readmits them. Fault scenarios are
// driven by internal/faults; with a nil injector every defense is pure
// bookkeeping and results and simulated timings are unchanged.
package hal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"doppiodb/internal/engine"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/fpga"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/shmem"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/topdown"
)

// Control-block layout constants.
const (
	blockSize  = 64 // one cache line per control structure
	queueSlots = 4096

	dsmMagic = 0x4841_4C31 // "HAL1"
	afuID    = 0xD0BB_10DB // the regex AFU's identity
)

// Modelled software/hardware overheads (§7.4's breakdown).
const (
	// CreateTime is the software cost of allocating and populating the
	// parameter and status structures and enqueueing the descriptor.
	CreateTime = 15 * sim.Microsecond
	// ParametrizeTime is the hardware cost of loading the job parameters
	// and configuring a Regex Engine's PUs: "takes around 300 ns".
	ParametrizeTime = 300 * sim.Nanosecond
)

// Errors.
var (
	ErrQueueFull = errors.New("hal: job queue full")
	ErrBadEngine = errors.New("hal: no such engine")
	// ErrPending is Completion called before the runtime finished the job.
	ErrPending = errors.New("hal: job timing not resolved yet; await completion")
	// ErrCanceled is a job aborted before its round was granted.
	ErrCanceled = errors.New("hal: job canceled before execution")
	// ErrClosed is a submit or dispatch against a closed runtime.
	ErrClosed = errors.New("hal: runtime closed")
	// ErrBadDispatch is a Dispatch of a nil, already-dispatched, or
	// already-released job.
	ErrBadDispatch = errors.New("hal: job cannot be dispatched")
)

// Job is a submitted FPGA job handle.
type Job struct {
	Engine int          // engine the distributor picked
	Stats  engine.Stats // functional execution result
	Timing memmodel.Job // data volume for the timing simulation

	statusAddr shmem.Addr
	poolOff    uint32
	region     *shmem.Region
	hal        *HAL
	penalty    sim.Time // watchdog/retry latency accrued before success
	completed  sim.Time // round-relative completion, stamped by the runtime
	comp       Completion
	finished   bool
	canceled   bool
	failErr    error // typed abort cause Await reports (guarded by hal.mu, read after done closes)
	group      *jobGroup
	done       chan struct{} // closed when the runtime completes or cancels the job
	seq        int64         // HAL-wide job sequence number (flight-recorder key)
}

// Seq returns the HAL-wide job sequence number the flight recorder keys
// its job events by.
func (j *Job) Seq() int64 { return j.seq }

// Status reads the job's status block from shared memory and reports
// whether the done bit is set. A corrupted or unmapped block returns an
// error — distinguishable from "not finished", which a bare done-bit poll
// cannot tell apart.
func (j *Job) Status() (done bool, err error) {
	buf, err := j.region.Bytes(j.statusAddr)
	if err != nil {
		return false, fmt.Errorf("hal: status block read: %w", err)
	}
	return statusBlockState(buf[j.blockOffset() : j.blockOffset()+blockSize])
}

// Done reads the done bit from the status block in shared memory — the bit
// the UDF busy-waits on (§4.2.2 step 8). It delegates to Status; errors
// read as "not done".
func (j *Job) Done() bool {
	done, err := j.Status()
	return err == nil && done
}

// Completion returns the simulated completion time of the job relative to
// its round's start. Valid once the runtime has completed the job (Await
// returned); before that it reports ErrPending without blocking.
func (j *Job) Completion() (sim.Time, error) {
	select {
	case <-j.done:
	default:
		return 0, ErrPending
	}
	if j.canceled {
		if j.failErr != nil {
			return 0, j.failErr
		}
		return 0, ErrCanceled
	}
	return j.completed, nil
}

// blockOffset is the job's status block offset inside the pool slab.
func (j *Job) blockOffset() int { return int(j.poolOff) }

// blockRef locates a status block for the free list.
type blockRef struct {
	addr shmem.Addr
	off  uint32
}

// HAL is the abstraction layer instance bound to one programmed device.
type HAL struct {
	region  *shmem.Region
	dev     *fpga.Device
	engines []*engine.Engine
	params  memmodel.Params
	tel     *telemetry.Registry
	inj     *faults.Injector
	rec     *flightrec.Recorder
	// queueWait is the per-job backlog-wait histogram (simulated ns),
	// cached so the hot completion path skips the registry lookup.
	queueWait *telemetry.Histogram

	mu        sync.Mutex
	cond      *sync.Cond // wakes the runtime's event loop (backlog/resume/close) and blocked dispatchers
	simEpoch  sim.Time   // continuous simulated timeline across arbitration rounds
	jobSeq    int64      // HAL-wide job sequence (flight-recorder key)
	backlog   []*jobGroup
	admitCap  int             // max in-flight jobs per engine in one round
	admission AdmissionLimits // backlog caps + shed/block policy (zero: unbounded)
	// blockedWaiters counts dispatchers parked on the block policy;
	// peak* are backlog high-water marks (soak asserts them vs. the caps).
	blockedWaiters                  int
	peakGroups, peakJobs, peakBytes int64
	// dispatchedGroups counts every job group admitted to the backlog over
	// the HAL's lifetime — the denominator of shared-scan coalescing (N
	// identical queries riding one group dispatch fewer groups than queries).
	dispatchedGroups int64
	resetting        bool // fabric reset in progress (health state machine)
	paused           bool // admission suspended (tests observe queue buildup)
	closed           bool
	loopOn           bool    // event-loop goroutine started
	queuedVol        []int64 // per-engine running byte totals (the Distributor's index)
	// tdEngines/tdLink/tdRounds accumulate the topdown cycle ledgers
	// across arbitration rounds (per-engine buckets conserve exactly:
	// each round's ledger does, and Add is field-wise).
	tdEngines []topdown.Buckets
	tdLink    topdown.LinkBuckets
	tdRounds  int64
	health    []engineHealth
	dsmAddr   shmem.Addr
	poolAddr  shmem.Addr
	poolNext  int
	blockFree []blockRef
	queueAddr shmem.Addr
	queueLen  int // live reservations against queueSlots
	slotNext  int // next descriptor slot in the shared-memory queue
}

// New boots the HAL: it performs the AAL handshake (allocating the DSM page
// and verifying the AFU identity), allocates the shared-memory job queue,
// and instantiates the engine frontends. Fault injection defaults to the
// process default (faults.Default); SetInjector overrides it.
func New(region *shmem.Region, dev *fpga.Device) (*HAL, error) {
	if region == nil || dev == nil {
		return nil, errors.New("hal: need a shared region and a programmed device")
	}
	h := &HAL{
		region: region,
		dev:    dev,
		params: memmodel.Default(),
		tel:    telemetry.Default(),
		inj:    faults.Default(),
		rec:    flightrec.Default(),
	}
	h.params.EngineBandwidth = dev.Deployment.EngineBandwidth()
	h.cond = sync.NewCond(&h.mu)
	h.admitCap = DefaultAdmissionCap
	for i := 0; i < dev.Deployment.Engines; i++ {
		h.engines = append(h.engines, engine.New(dev, i))
	}
	h.queuedVol = make([]int64, len(h.engines))
	h.tdEngines = make([]topdown.Buckets, len(h.engines))
	h.health = make([]engineHealth, len(h.engines))
	h.tel.Gauge("hal.engines.total").Set(int64(len(h.engines)))
	h.tel.Gauge("hal.engines.healthy").Set(int64(len(h.engines)))
	h.queueWait = h.tel.Histogram("hal.queue_wait_ns", queueWaitBounds...)

	var err error
	if h.dsmAddr, err = region.Alloc(shmem.MinSlab); err != nil {
		return nil, fmt.Errorf("hal: DSM allocation: %w", err)
	}
	if h.poolAddr, err = region.Alloc(shmem.MinSlab); err != nil {
		return nil, fmt.Errorf("hal: status pool allocation: %w", err)
	}
	if h.queueAddr, err = region.Alloc(queueSlots * blockSize); err != nil {
		return nil, fmt.Errorf("hal: job queue allocation: %w", err)
	}
	// AAL handshake: software writes its magic into the DSM; the "AFU"
	// answers with its ID. Both sides then agree the right bitstream is
	// loaded (§2.2).
	dsm, err := region.Bytes(h.dsmAddr)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(dsm[0:], dsmMagic)
	binary.LittleEndian.PutUint32(dsm[4:], afuID)
	return h, nil
}

// queueWaitBounds bucket the backlog wait from "admitted immediately"
// (≤1 µs) up to a saturated second, one decade per bucket edge pair.
var queueWaitBounds = []int64{
	1_000, 10_000, 100_000, 1_000_000, 5_000_000, 10_000_000,
	50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
}

// SetTelemetry rebinds the HAL and its engine frontends to reg and
// re-asserts the engine-health gauges there.
func (h *HAL) SetTelemetry(reg *telemetry.Registry) {
	h.tel = reg
	h.queueWait = reg.Histogram("hal.queue_wait_ns", queueWaitBounds...)
	for _, e := range h.engines {
		e.SetTelemetry(reg)
	}
	h.mu.Lock()
	healthy := h.healthyLocked()
	h.mu.Unlock()
	reg.Gauge("hal.engines.total").Set(int64(len(h.engines)))
	reg.Gauge("hal.engines.healthy").Set(healthy)
}

// SetInjector rebinds fault injection. nil disables it.
func (h *HAL) SetInjector(in *faults.Injector) { h.inj = in }

// SetRecorder rebinds the flight recorder. nil disables recording.
func (h *HAL) SetRecorder(r *flightrec.Recorder) { h.rec = r }

// Recorder returns the HAL's flight recorder.
func (h *HAL) Recorder() *flightrec.Recorder { return h.rec }

// SimEpoch returns the start of the next arbitration round on the
// recorder's continuous simulated timeline.
func (h *HAL) SimEpoch() sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.simEpoch
}

// Device returns the programmed device.
func (h *HAL) Device() *fpga.Device { return h.dev }

// Engines returns the engine count.
func (h *HAL) Engines() int { return len(h.engines) }

// Topdown returns the fabric's cumulative cycle-conservation ledgers: one
// per engine plus the QPI link, accumulated over every arbitration round
// this HAL has run. Each engine's buckets sum exactly to its wall.
func (h *HAL) Topdown() topdown.FabricReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := topdown.FabricReport{
		Engines: make([]topdown.EngineReport, len(h.tdEngines)),
		Link:    h.tdLink,
		Rounds:  h.tdRounds,
	}
	for e, b := range h.tdEngines {
		rep.Engines[e] = topdown.EngineReport{Engine: e, Buckets: b}
	}
	return rep
}

// AFUPresent re-checks the handshake result.
func (h *HAL) AFUPresent() bool {
	dsm, err := h.region.Bytes(h.dsmAddr)
	if err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(dsm[0:]) == dsmMagic &&
		binary.LittleEndian.Uint32(dsm[4:]) == afuID
}

// Submit enqueues a job and lets the Job Distributor assign it to the
// least-loaded admitted engine, executing it functionally. The returned
// handle's done bit is set in shared memory; its timing is resolved by the
// device runtime after Dispatch. Under injected faults, Submit retries on
// other engines (bounded) before returning a typed fault error.
func (h *HAL) Submit(p engine.JobParams) (*Job, error) {
	return h.submit(context.Background(), -1, p)
}

// SubmitContext is Submit honoring ctx: cancellation aborts the retry loop
// between attempts (the watchdog path respects the caller's deadline).
func (h *HAL) SubmitContext(ctx context.Context, p engine.JobParams) (*Job, error) {
	return h.submit(ctx, -1, p)
}

// SubmitTo enqueues a job for a specific engine (partitioned execution
// pins each partition to its own engine). Pinned jobs retry on the same
// engine only.
func (h *HAL) SubmitTo(engineID int, p engine.JobParams) (*Job, error) {
	return h.SubmitToContext(context.Background(), engineID, p)
}

// SubmitToContext is SubmitTo honoring ctx.
func (h *HAL) SubmitToContext(ctx context.Context, engineID int, p engine.JobParams) (*Job, error) {
	if engineID < 0 || engineID >= len(h.engines) {
		return nil, ErrBadEngine
	}
	return h.submit(ctx, engineID, p)
}

// submit is the fault-aware submission loop: verify the handshake, pick an
// engine, attempt, and on a hardware fault retry — a different engine when
// unpinned — accumulating DoneWaitTimeout of simulated watchdog latency per
// failed attempt. A canceled ctx stops the loop between attempts.
func (h *HAL) submit(ctx context.Context, pin int, p engine.JobParams) (*Job, error) {
	h.checkHandshake()
	cfgSum := crc32.ChecksumIEEE(p.Config)
	var penalty sim.Time
	var lastErr error
	var tried uint64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := pin
		if pin < 0 {
			h.mu.Lock()
			e = h.pickEngineLocked(tried)
			if e < 0 {
				e = h.pickEngineLocked(0) // all healthy engines tried: revisit
			}
			h.mu.Unlock()
			if e < 0 {
				// Every engine is quarantined: a fresh handshake plus a
				// probe is the only way back in.
				if !h.readmitAny() {
					if lastErr != nil {
						return nil, fmt.Errorf("%w (last: %v)", ErrAllQuarantined, lastErr)
					}
					return nil, ErrAllQuarantined
				}
				continue
			}
		} else if h.isQuarantined(e) {
			if !h.tryReadmit(e) {
				return nil, fmt.Errorf("hal: engine %d: %w", e, ErrEngineQuarantined)
			}
		}
		j, err := h.attempt(e, p, cfgSum, penalty)
		if err == nil {
			h.noteSuccess(e)
			return j, nil
		}
		if !IsFault(err) {
			return nil, err
		}
		lastErr = err
		h.noteFailure(e)
		tried |= 1 << uint(e)
		penalty += DoneWaitTimeout
		if attempt < maxAttempts-1 {
			h.tel.Counter("hal.retries").Inc()
		}
	}
	return nil, fmt.Errorf("hal: %d attempts failed: %w (last: %v)",
		maxAttempts, ErrRetriesExhausted, lastErr)
}

// attempt runs one submission on engine e. Capacity is checked and the
// status block reserved *before* the engine burns any work; the engine
// ingest verifies the config-vector checksum; and the done-bit busy-wait
// runs under the watchdog. A failed attempt releases every reservation.
func (h *HAL) attempt(e int, p engine.JobParams, cfgSum uint32, penalty sim.Time) (*Job, error) {
	// Engine drop-out fires at the job-accept handshake, before any work.
	if !h.inj.EngineAccepts(e) {
		h.tel.Counter("hal.faults.engine_drop").Inc()
		h.recordCtl(flightrec.EvFault, e, 0, "engine-drop")
		return nil, fmt.Errorf("hal: engine %d: %w", e, ErrEngineDropped)
	}

	// Reserve the queue slot and status block up front so a full queue or
	// exhausted pool cannot burn engine work.
	h.mu.Lock()
	if h.queueLen >= queueSlots {
		h.mu.Unlock()
		return nil, ErrQueueFull
	}
	statusAddr, off, err := h.allocBlockLocked()
	if err != nil {
		h.mu.Unlock()
		return nil, err
	}
	h.queueLen++
	h.mu.Unlock()
	fail := func(err error) (*Job, error) {
		h.mu.Lock()
		h.freeBlockLocked(statusAddr, off)
		h.queueLen--
		h.mu.Unlock()
		return nil, err
	}

	// Parametrize: the config vector crosses QPI (where the injector may
	// damage it); the engine verifies the checksum at ingest, so a
	// corrupted expression can never configure a PU.
	cfg := p.Config
	if h.inj.Hit(faults.ConfigCorrupt) {
		cfg = h.inj.CorruptCopy(cfg)
	}
	if crc32.ChecksumIEEE(cfg) != cfgSum {
		h.tel.Counter("hal.faults.config_corrupt").Inc()
		h.recordCtl(flightrec.EvFault, e, 0, "config-corrupt")
		return fail(fmt.Errorf("hal: engine %d: %w", e, ErrConfigCorrupt))
	}
	st, err := h.engines[e].Execute(p)
	if err != nil {
		return fail(err)
	}

	j := &Job{
		Engine:     e,
		Stats:      st,
		Timing:     engine.TimingJob(p, st),
		statusAddr: statusAddr,
		poolOff:    off,
		region:     h.region,
		hal:        h,
		penalty:    penalty,
		done:       make(chan struct{}),
	}

	// The engine writes the status block (done bit + statistics + CRC) —
	// unless it wedges (stuck done) or the write is damaged in flight.
	pool, err := h.region.Bytes(statusAddr)
	if err != nil {
		return fail(err)
	}
	blk := pool[off : off+blockSize]
	if !h.inj.Hit(faults.StuckDone) {
		blk[0] = 1 // done bit
		binary.LittleEndian.PutUint32(blk[4:], uint32(st.Strings))
		binary.LittleEndian.PutUint32(blk[8:], uint32(st.Matches))
		binary.LittleEndian.PutUint64(blk[12:], uint64(st.HeapBytes))
		sealStatusBlock(blk)
		if h.inj.Hit(faults.StatusCorrupt) {
			h.inj.FlipByte(blk[4:statusChecksum])
		}
	}

	// Step 8's busy-wait, under the simulated-time watchdog.
	done, serr := j.Status()
	if serr != nil {
		h.tel.Counter("hal.faults.status_corrupt").Inc()
		h.recordCtl(flightrec.EvFault, e, 0, "status-corrupt")
		return fail(fmt.Errorf("hal: engine %d: %w", e, serr))
	}
	if !done {
		h.tel.Counter("hal.faults.stuck_done").Inc()
		h.recordCtl(flightrec.EvWatchdog, e, 0, "stuck-done")
		return fail(fmt.Errorf("hal: engine %d: %w", e, ErrDoneTimeout))
	}

	// The job completed functionally: publish the descriptor and account
	// it against the Distributor until the runtime resolves its timing.
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		h.freeBlockLocked(statusAddr, off)
		h.queueLen--
		return nil, ErrClosed
	}
	q, err := h.region.Bytes(h.queueAddr)
	if err != nil {
		h.freeBlockLocked(statusAddr, off)
		h.queueLen--
		return nil, err
	}
	h.jobSeq++
	j.seq = h.jobSeq
	slot := q[h.slotNext*blockSize:]
	binary.LittleEndian.PutUint64(slot[0:], uint64(statusAddr)+uint64(off))
	binary.LittleEndian.PutUint32(slot[8:], uint32(e))
	binary.LittleEndian.PutUint32(slot[12:], uint32(st.Strings))
	h.slotNext = (h.slotNext + 1) % queueSlots

	h.queuedVol[e] += int64(j.Timing.TotalBytes())

	// DSM-style counters: accumulate from the status block just written,
	// exactly as a monitor polling the Device Status Memory would.
	h.tel.Counter("hal.jobs").Inc()
	h.tel.Counter("hal.dsm.strings").Add(int64(binary.LittleEndian.Uint32(blk[4:])))
	h.tel.Counter("hal.dsm.matches").Add(int64(binary.LittleEndian.Uint32(blk[8:])))
	h.tel.Counter("hal.dsm.heap_bytes").Add(int64(binary.LittleEndian.Uint64(blk[12:])))
	h.tel.Gauge("hal.queue_depth").Set(int64(h.queueLen))
	h.rec.Record(flightrec.Event{
		Type:   flightrec.EvJobSubmit,
		Sim:    h.simEpoch,
		Engine: e,
		Unit:   -1,
		Job:    j.seq,
		Arg:    int64(j.Timing.TotalBytes()),
	})
	return j, nil
}

// recordCtl records a control-plane instant stamped at the current batch
// epoch. Must be called without h.mu held.
func (h *HAL) recordCtl(t flightrec.Type, e int, job int64, note string) {
	if h.rec == nil {
		return
	}
	h.rec.Record(flightrec.Event{
		Type:   t,
		Sim:    h.SimEpoch(),
		Engine: e,
		Unit:   -1,
		Job:    job,
		Note:   note,
	})
}

// pickEngineLocked picks the admitted engine with the smallest queued
// volume — the Job Distributor's "next available Regex Engine" policy —
// skipping engines in the tried mask. O(engines) over the running totals.
func (h *HAL) pickEngineLocked(tried uint64) int {
	best, bestVol := -1, int64(0)
	for i := range h.engines {
		if h.health[i].quarantined || tried&(1<<uint(i)) != 0 {
			continue
		}
		if best < 0 || h.queuedVol[i] < bestVol {
			best, bestVol = i, h.queuedVol[i]
		}
	}
	return best
}

// allocBlockLocked hands out a 64-byte status block, reusing released
// blocks before carving new ones from the pool slab.
func (h *HAL) allocBlockLocked() (shmem.Addr, uint32, error) {
	if n := len(h.blockFree); n > 0 {
		b := h.blockFree[n-1]
		h.blockFree = h.blockFree[:n-1]
		return b.addr, b.off, nil
	}
	if (h.poolNext+1)*blockSize > shmem.MinSlab {
		// Pool exhausted: start a fresh slab.
		a, err := h.region.Alloc(shmem.MinSlab)
		if err != nil {
			return 0, 0, err
		}
		h.poolAddr = a
		h.poolNext = 0
	}
	off := uint32(h.poolNext * blockSize)
	h.poolNext++
	return h.poolAddr, off, nil
}

// freeBlockLocked zeroes a status block (so reuse reads as "never written")
// and returns it to the free list.
func (h *HAL) freeBlockLocked(addr shmem.Addr, off uint32) {
	if pool, err := h.region.Bytes(addr); err == nil {
		clear(pool[off : off+blockSize])
	}
	h.blockFree = append(h.blockFree, blockRef{addr, off})
}

// recordJobTimelineLocked emits the per-engine and per-PU timeline of one
// completed job: the parametrization window, the execution window, and one
// busy window per Processing Unit. The PU share is the hardware model's:
// all deployed PUs of the engine carry the same configuration and the
// round-robin dispatch stripes the input evenly across them, each consuming
// one input byte per 400 MHz cycle. Caller holds h.mu, with simEpoch still
// at the job's round start.
func (h *HAL) recordJobTimelineLocked(e int, j *Job, start, end sim.Time) {
	base := h.simEpoch
	h.rec.Record(flightrec.Event{
		Type:   flightrec.EvEngineConfig,
		Sim:    base + start,
		Dur:    ParametrizeTime,
		Domain: flightrec.DomainFabric,
		Cycles: sim.FabricClock.CyclesFor(ParametrizeTime),
		Engine: e,
		Unit:   -1,
		Job:    j.seq,
	})
	h.rec.Record(flightrec.Event{
		Type:   flightrec.EvJobExec,
		Sim:    base + start,
		Dur:    end - start + ParametrizeTime,
		Engine: e,
		Unit:   -1,
		Job:    j.seq,
		Arg:    int64(j.Timing.TotalBytes()),
	})
	pus := h.dev.Deployment.PUsPerEngine
	if pus <= 0 || j.Stats.PUCycles == 0 {
		return
	}
	share := int64(j.Stats.PUCycles) / int64(pus)
	rem := int64(j.Stats.PUCycles) % int64(pus)
	for u := 0; u < pus; u++ {
		c := share
		if int64(u) < rem {
			c++
		}
		if c == 0 {
			continue
		}
		h.rec.Record(flightrec.Event{
			Type:   flightrec.EvPUBusy,
			Sim:    base + start + ParametrizeTime,
			Domain: flightrec.DomainPU,
			Cycles: c,
			Engine: e,
			Unit:   u,
			Job:    j.seq,
		})
	}
}

// scrubStatusLocked re-verifies a drained job's status block and rewrites
// it from the HAL's own statistics when shared memory was corrupted after
// the submit-time check.
func (h *HAL) scrubStatusLocked(j *Job) {
	pool, err := h.region.Bytes(j.statusAddr)
	if err != nil {
		return
	}
	blk := pool[j.poolOff : j.poolOff+blockSize]
	if _, serr := statusBlockState(blk); serr == nil {
		return
	}
	h.tel.Counter("hal.faults.status_corrupt").Inc()
	h.tel.Counter("hal.status_scrubbed").Inc()
	blk[0] = 1
	binary.LittleEndian.PutUint32(blk[4:], uint32(j.Stats.Strings))
	binary.LittleEndian.PutUint32(blk[8:], uint32(j.Stats.Matches))
	binary.LittleEndian.PutUint64(blk[12:], uint64(j.Stats.HeapBytes))
	sealStatusBlock(blk)
}

// Params exposes the memory-model parameters (tests tweak them).
func (h *HAL) Params() *memmodel.Params { return &h.params }

// QueuedBytes returns the total data volume of jobs awaiting timing
// resolution — submitted, backlogged, or in the running round — the FPGA's
// "current load", which §9 notes a stock UDF interface cannot expose to
// the query optimizer. O(engines) over the Distributor's running totals.
func (h *HAL) QueuedBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total int64
	for _, v := range h.queuedVol {
		total += v
	}
	return total
}

// DispatchedGroups returns the lifetime count of job groups admitted to
// the backlog. With shared-scan coalescing on, N concurrent identical
// queries advance this by fewer than N.
func (h *HAL) DispatchedGroups() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dispatchedGroups
}
