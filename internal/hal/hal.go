// Package hal implements the Hardware Operator Abstraction Layer of §4.2:
// the software library the HUDF calls to create, execute and monitor FPGA
// jobs, and the hardware-side Job Distributor that hands queued jobs to
// idle Regex Engines.
//
// All control structures live in the CPU-FPGA shared memory region, as on
// the prototype: the Device Status Memory page used for the AAL handshake,
// the job queue, and per-job parameter and status blocks. The status block
// carries the done bit the UDF busy-waits on (the platform has no
// FPGA-to-CPU interrupts) plus the execution statistics the engine reports.
//
// Functional execution happens synchronously at submit time; *timing* is
// accumulated as memory-model jobs per engine and resolved by Drain, which
// runs the deterministic QPI simulation and stamps every job's completion
// time.
package hal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"doppiodb/internal/engine"
	"doppiodb/internal/fpga"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/shmem"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// Control-block layout constants.
const (
	blockSize  = 64 // one cache line per control structure
	queueSlots = 4096

	dsmMagic = 0x4841_4C31 // "HAL1"
	afuID    = 0xD0BB_10DB // the regex AFU's identity
)

// Modelled software/hardware overheads (§7.4's breakdown).
const (
	// CreateTime is the software cost of allocating and populating the
	// parameter and status structures and enqueueing the descriptor.
	CreateTime = 15 * sim.Microsecond
	// ParametrizeTime is the hardware cost of loading the job parameters
	// and configuring a Regex Engine's PUs: "takes around 300 ns".
	ParametrizeTime = 300 * sim.Nanosecond
)

// Errors.
var (
	ErrQueueFull  = errors.New("hal: job queue full")
	ErrBadEngine  = errors.New("hal: no such engine")
	ErrNotDrained = errors.New("hal: job timing not resolved yet; call Drain")
)

// Job is a submitted FPGA job handle.
type Job struct {
	Engine int          // engine the distributor picked
	Stats  engine.Stats // functional execution result
	Timing memmodel.Job // data volume for the timing simulation

	statusAddr shmem.Addr
	poolOff    uint32
	region     *shmem.Region
	completed  sim.Time
	drained    bool
}

// Done reads the done bit from the status block in shared memory — the bit
// the UDF busy-waits on (§4.2.2 step 8).
func (j *Job) Done() bool {
	buf, err := j.region.Bytes(j.statusAddr)
	if err != nil {
		return false
	}
	return buf[j.blockOffset()] != 0
}

// Completion returns the simulated completion time of the job relative to
// the batch start. Valid after Drain.
func (j *Job) Completion() (sim.Time, error) {
	if !j.drained {
		return 0, ErrNotDrained
	}
	return j.completed, nil
}

// blockOffset is the job's status block offset inside the pool slab.
func (j *Job) blockOffset() int { return int(j.poolOff) }

// HAL is the abstraction layer instance bound to one programmed device.
type HAL struct {
	region  *shmem.Region
	dev     *fpga.Device
	engines []*engine.Engine
	params  memmodel.Params
	tel     *telemetry.Registry

	mu        sync.Mutex
	queues    [][]memmodel.Job
	jobs      [][]*Job
	dsmAddr   shmem.Addr
	poolAddr  shmem.Addr
	poolNext  int
	queueAddr shmem.Addr
	queueLen  int
}

// New boots the HAL: it performs the AAL handshake (allocating the DSM page
// and verifying the AFU identity), allocates the shared-memory job queue,
// and instantiates the engine frontends.
func New(region *shmem.Region, dev *fpga.Device) (*HAL, error) {
	if region == nil || dev == nil {
		return nil, errors.New("hal: need a shared region and a programmed device")
	}
	h := &HAL{
		region: region,
		dev:    dev,
		params: memmodel.Default(),
		tel:    telemetry.Default(),
	}
	h.params.EngineBandwidth = dev.Deployment.EngineBandwidth()
	for i := 0; i < dev.Deployment.Engines; i++ {
		h.engines = append(h.engines, engine.New(dev, i))
	}
	h.queues = make([][]memmodel.Job, len(h.engines))
	h.jobs = make([][]*Job, len(h.engines))

	var err error
	if h.dsmAddr, err = region.Alloc(shmem.MinSlab); err != nil {
		return nil, fmt.Errorf("hal: DSM allocation: %w", err)
	}
	if h.poolAddr, err = region.Alloc(shmem.MinSlab); err != nil {
		return nil, fmt.Errorf("hal: status pool allocation: %w", err)
	}
	if h.queueAddr, err = region.Alloc(queueSlots * blockSize); err != nil {
		return nil, fmt.Errorf("hal: job queue allocation: %w", err)
	}
	// AAL handshake: software writes its magic into the DSM; the "AFU"
	// answers with its ID. Both sides then agree the right bitstream is
	// loaded (§2.2).
	dsm, err := region.Bytes(h.dsmAddr)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(dsm[0:], dsmMagic)
	binary.LittleEndian.PutUint32(dsm[4:], afuID)
	return h, nil
}

// SetTelemetry rebinds the HAL and its engine frontends to reg.
func (h *HAL) SetTelemetry(reg *telemetry.Registry) {
	h.tel = reg
	for _, e := range h.engines {
		e.SetTelemetry(reg)
	}
}

// Device returns the programmed device.
func (h *HAL) Device() *fpga.Device { return h.dev }

// Engines returns the engine count.
func (h *HAL) Engines() int { return len(h.engines) }

// AFUPresent re-checks the handshake result.
func (h *HAL) AFUPresent() bool {
	dsm, err := h.region.Bytes(h.dsmAddr)
	if err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(dsm[0:]) == dsmMagic &&
		binary.LittleEndian.Uint32(dsm[4:]) == afuID
}

// Submit enqueues a job and lets the Job Distributor assign it to the
// least-loaded engine, executing it functionally. The returned handle's
// done bit is set in shared memory; its timing is resolved by Drain.
func (h *HAL) Submit(p engine.JobParams) (*Job, error) {
	h.mu.Lock()
	target := h.leastLoadedLocked()
	h.mu.Unlock()
	return h.SubmitTo(target, p)
}

// SubmitTo enqueues a job for a specific engine (partitioned execution
// pins each partition to its own engine).
func (h *HAL) SubmitTo(engineID int, p engine.JobParams) (*Job, error) {
	if engineID < 0 || engineID >= len(h.engines) {
		return nil, ErrBadEngine
	}
	st, err := h.engines[engineID].Execute(p)
	if err != nil {
		return nil, err
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.queueLen >= queueSlots {
		return nil, ErrQueueFull
	}
	statusAddr, off, err := h.allocBlockLocked()
	if err != nil {
		return nil, err
	}
	j := &Job{
		Engine:     engineID,
		Stats:      st,
		Timing:     engine.TimingJob(p, st),
		statusAddr: statusAddr,
		poolOff:    off,
		region:     h.region,
	}
	// Write the job descriptor into the shared-memory queue and the
	// status block (done bit + statistics), as the engine would.
	q, err := h.region.Bytes(h.queueAddr)
	if err != nil {
		return nil, err
	}
	slot := q[h.queueLen*blockSize:]
	binary.LittleEndian.PutUint64(slot[0:], uint64(statusAddr))
	binary.LittleEndian.PutUint32(slot[8:], uint32(engineID))
	binary.LittleEndian.PutUint32(slot[12:], uint32(st.Strings))
	h.queueLen++

	pool, err := h.region.Bytes(h.poolAddr)
	if err != nil {
		return nil, err
	}
	blk := pool[off:]
	blk[0] = 1 // done bit
	binary.LittleEndian.PutUint32(blk[4:], uint32(st.Strings))
	binary.LittleEndian.PutUint32(blk[8:], uint32(st.Matches))
	binary.LittleEndian.PutUint64(blk[12:], uint64(st.HeapBytes))

	h.queues[engineID] = append(h.queues[engineID], j.Timing)
	h.jobs[engineID] = append(h.jobs[engineID], j)

	// DSM-style counters: accumulate from the status block just written,
	// exactly as a monitor polling the Device Status Memory would.
	h.tel.Counter("hal.jobs").Inc()
	h.tel.Counter("hal.dsm.strings").Add(int64(binary.LittleEndian.Uint32(blk[4:])))
	h.tel.Counter("hal.dsm.matches").Add(int64(binary.LittleEndian.Uint32(blk[8:])))
	h.tel.Counter("hal.dsm.heap_bytes").Add(int64(binary.LittleEndian.Uint64(blk[12:])))
	h.tel.Gauge("hal.queue_depth").Set(int64(h.queueLen))
	return j, nil
}

// leastLoadedLocked picks the engine with the smallest queued volume — the
// Job Distributor's "next available Regex Engine" policy.
func (h *HAL) leastLoadedLocked() int {
	best, bestVol := 0, int64(-1)
	for i, q := range h.queues {
		var vol int64
		for _, j := range q {
			vol += int64(j.TotalBytes())
		}
		if bestVol < 0 || vol < bestVol {
			best, bestVol = i, vol
		}
	}
	return best
}

// allocBlockLocked hands out a 64-byte status block from the pool slab.
func (h *HAL) allocBlockLocked() (shmem.Addr, uint32, error) {
	if (h.poolNext+1)*blockSize > shmem.MinSlab {
		// Pool exhausted: start a fresh slab.
		a, err := h.region.Alloc(shmem.MinSlab)
		if err != nil {
			return 0, 0, err
		}
		h.poolAddr = a
		h.poolNext = 0
	}
	off := uint32(h.poolNext * blockSize)
	h.poolNext++
	return h.poolAddr, off, nil
}

// Drain runs the deterministic QPI/engine timing simulation over every job
// submitted since the last Drain, stamps each job's completion time
// (including the HAL's fixed overheads), clears the queues, and returns the
// simulation result.
func (h *HAL) Drain() memmodel.Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	res := memmodel.Simulate(h.params, h.queues)
	for e := range h.jobs {
		for k, j := range h.jobs[e] {
			j.completed = res.Done[e][k] + ParametrizeTime
			j.drained = true
		}
	}
	h.queues = make([][]memmodel.Job, len(h.engines))
	h.jobs = make([][]*Job, len(h.engines))
	h.queueLen = 0

	// QPI / arbiter telemetry from the timing simulation.
	h.tel.Counter("qpi.bytes").Add(res.BytesMoved)
	h.tel.Counter("qpi.busy_ns").Add(int64(res.BusyTime / sim.Nanosecond))
	h.tel.Counter("qpi.grants").Add(res.Grants)
	h.tel.Counter("qpi.switch_events").Add(res.Switches)
	h.tel.Gauge("qpi.utilization_pct").Set(int64(res.Utilization() * 100))
	if res.Grants > 0 && h.params.LineBytes > 0 {
		// Batch efficiency: lines actually moved per grant vs. the
		// arbiter's full batch of GrantLines.
		lines := res.BytesMoved / int64(h.params.LineBytes)
		h.tel.Gauge("qpi.batch_efficiency_pct").Set(
			100 * lines / (res.Grants * int64(h.params.GrantLines)))
	}
	h.tel.Gauge("hal.queue_depth").Set(0)
	return res
}

// Params exposes the memory-model parameters (tests tweak them).
func (h *HAL) Params() *memmodel.Params { return &h.params }

// QueuedBytes returns the total data volume of jobs awaiting timing
// resolution — the FPGA's "current load", which §9 notes a stock UDF
// interface cannot expose to the query optimizer.
func (h *HAL) QueuedBytes() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total int64
	for _, q := range h.queues {
		for _, j := range q {
			total += int64(j.TotalBytes())
		}
	}
	return total
}
