// Bounded admission and deadline propagation: the overload-protection half
// of the device runtime. The FIFO backlog behind Dispatch is capped in three
// dimensions — waiting groups, waiting jobs, and queued bytes — and a
// dispatch that would breach a cap is either shed immediately (fail fast
// with ErrOverload) or blocked until the backlog drains or the caller's
// context expires, per the configured policy.
//
// Deadlines ride the context as a *simulated-time* budget (WithBudget): the
// runtime refuses to admit a group whose cost-model ETA — the same queued-
// volume / QPI-bandwidth terms core.EstimateCost prices queue delay with —
// already exceeds the budget, and the event loop aborts overdue groups at
// every round boundary. Wall-clock deadlines cannot map deterministically
// onto the simulated timeline, so the budget is the explicit bridge; the
// caller's wall context still bounds how long a blocked dispatch waits.
package hal

import (
	"context"
	"errors"
	"fmt"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/sim"
)

// Admission errors.
var (
	// ErrOverload is a dispatch rejected (or abandoned while blocked)
	// because the backlog is at a configured cap. It is not a hardware
	// fault: the query should be shed, not degraded.
	ErrOverload = errors.New("hal: backlog over admission cap, dispatch shed")
	// ErrDeadlineExceeded is a group refused at admission (its cost-model
	// ETA exceeds the simulated budget) or aborted overdue at a round
	// boundary. It matches context.DeadlineExceeded so callers can treat
	// both deadline flavors uniformly.
	ErrDeadlineExceeded = fmt.Errorf("hal: simulated deadline exceeded: %w", context.DeadlineExceeded)
)

// AdmissionPolicy says what a dispatch does when the backlog is at a cap.
type AdmissionPolicy int

const (
	// PolicyShed fails the dispatch immediately with ErrOverload.
	PolicyShed AdmissionPolicy = iota
	// PolicyBlock parks the dispatcher until the backlog drains below the
	// caps or the caller's context expires — backpressure instead of loss.
	PolicyBlock
)

// String names the policy for telemetry and rendering.
func (p AdmissionPolicy) String() string {
	if p == PolicyBlock {
		return "block"
	}
	return "shed"
}

// AdmissionLimits bounds the device runtime's backlog. A zero or negative
// cap leaves that dimension unbounded; the zero value admits everything
// (the pre-overload-protection behavior).
type AdmissionLimits struct {
	// MaxGroups caps the dispatch groups waiting in the backlog.
	MaxGroups int
	// MaxJobs caps the total jobs waiting across all backlogged groups.
	MaxJobs int
	// MaxBytes caps the data volume waiting in the backlog.
	MaxBytes int64
	// Policy picks shed (default) or block behavior at the cap.
	Policy AdmissionPolicy
}

// bounded reports whether any cap is configured.
func (l AdmissionLimits) bounded() bool {
	return l.MaxGroups > 0 || l.MaxJobs > 0 || l.MaxBytes > 0
}

// SetAdmission installs backlog caps and wakes any parked dispatcher so it
// re-evaluates against the new limits. The caps are exported as gauges
// (hal.admission.cap_*) so monitors can compare them against the live
// backlog depth.
func (h *HAL) SetAdmission(l AdmissionLimits) {
	h.mu.Lock()
	h.admission = l
	h.tel.Gauge("hal.admission.cap_groups").Set(int64(l.MaxGroups))
	h.tel.Gauge("hal.admission.cap_jobs").Set(int64(l.MaxJobs))
	h.tel.Gauge("hal.admission.cap_bytes").Set(l.MaxBytes)
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Admission returns the installed backlog caps.
func (h *HAL) Admission() AdmissionLimits {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.admission
}

// budgetKey carries a simulated completion budget through a context.
type budgetKey struct{}

// WithBudget attaches a simulated-time completion budget to ctx. Dispatches
// under the returned context are refused with ErrDeadlineExceeded when the
// cost-model ETA exceeds d, and their groups are aborted if still queued
// once the simulated clock passes enqueue+d. A non-positive d is ignored.
func WithBudget(ctx context.Context, d sim.Time) context.Context {
	if d <= 0 {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, d)
}

// BudgetFrom returns the simulated budget attached by WithBudget (0: none).
func BudgetFrom(ctx context.Context) sim.Time {
	if ctx == nil {
		return 0
	}
	d, _ := ctx.Value(budgetKey{}).(sim.Time)
	return d
}

// roomLocked reports whether a group of njobs/bytes fits the backlog under
// the configured caps. Caller holds h.mu.
func (h *HAL) roomLocked(njobs int, bytes int64) bool {
	l := h.admission
	if l.MaxGroups > 0 && len(h.backlog)+1 > l.MaxGroups {
		return false
	}
	if l.MaxJobs > 0 {
		waiting := 0
		for _, g := range h.backlog {
			waiting += len(g.jobs)
		}
		if waiting+njobs > l.MaxJobs {
			return false
		}
	}
	if l.MaxBytes > 0 {
		var waiting int64
		for _, g := range h.backlog {
			waiting += g.bytes
		}
		if waiting+bytes > l.MaxBytes {
			return false
		}
	}
	return true
}

// etaLocked is the cost-model completion estimate the deadline check prices
// a new group against: every queued byte (the dispatched group's jobs were
// already counted into queuedVol at submit) drains at the QPI link rate,
// plus the engine parametrization — the same terms core.EstimateCost builds
// QueueDelay and EngineBusy from. Caller holds h.mu.
func (h *HAL) etaLocked() sim.Time {
	var queued int64
	for _, v := range h.queuedVol {
		queued += v
	}
	return sim.FromSeconds(float64(queued)/h.params.QPIBandwidth) + ParametrizeTime
}

// DispatchContext is Dispatch honoring ctx: the context's simulated budget
// (WithBudget) is enforced at admission and at round boundaries, and the
// configured AdmissionLimits are applied — shedding with ErrOverload or
// blocking with backpressure until room frees up or ctx expires.
func (h *HAL) DispatchContext(ctx context.Context, jobs ...*Job) error {
	if len(jobs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	budget := BudgetFrom(ctx)
	var bytes int64
	for _, j := range jobs {
		if j == nil {
			return ErrBadDispatch
		}
		bytes += int64(j.Timing.TotalBytes())
	}
	// An AfterFunc pokes the cond when the caller's context dies while the
	// dispatcher is parked; it takes h.mu so the broadcast cannot slip into
	// the window between the waiter's ctx check and its cond.Wait.
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	for _, j := range jobs {
		if j.group != nil || j.finished || j.canceled {
			h.mu.Unlock()
			return ErrBadDispatch
		}
	}
	if budget > 0 {
		if eta := h.etaLocked(); eta > budget {
			h.tel.Counter("hal.admission.deadline_refused").Inc()
			h.rec.Record(flightrec.Event{
				Type: flightrec.EvDeadline, Sim: h.simEpoch,
				Engine: -1, Unit: -1,
				Arg:  int64(eta / sim.Nanosecond),
				Note: "refused: ETA over budget",
			})
			h.mu.Unlock()
			return fmt.Errorf("hal: cost-model ETA %v exceeds budget %v: %w",
				eta, budget, ErrDeadlineExceeded)
		}
	}
	blocked := false
	for !h.closed && h.admission.bounded() && !h.roomLocked(len(jobs), bytes) {
		if h.admission.Policy == PolicyShed {
			h.tel.Counter("hal.admission.shed").Inc()
			h.rec.Record(flightrec.Event{
				Type: flightrec.EvShed, Sim: h.simEpoch,
				Engine: -1, Unit: -1,
				Arg:  int64(len(jobs)),
				Note: "backlog at cap",
			})
			h.mu.Unlock()
			return fmt.Errorf("hal: %d-job group vs caps %+v: %w",
				len(jobs), h.admission, ErrOverload)
		}
		if err := ctx.Err(); err != nil {
			h.tel.Counter("hal.admission.shed").Inc()
			h.rec.Record(flightrec.Event{
				Type: flightrec.EvShed, Sim: h.simEpoch,
				Engine: -1, Unit: -1,
				Arg:  int64(len(jobs)),
				Note: "blocked dispatch abandoned: " + err.Error(),
			})
			h.mu.Unlock()
			return fmt.Errorf("hal: blocked dispatch abandoned: %w: %w", ErrOverload, err)
		}
		if !blocked {
			blocked = true
			h.tel.Counter("hal.admission.blocked").Inc()
			stopWatch = context.AfterFunc(ctx, func() {
				h.mu.Lock()
				h.cond.Broadcast()
				h.mu.Unlock()
			})
		}
		h.blockedWaiters++
		h.tel.Gauge("hal.admission.blocked_waiters").Set(int64(h.blockedWaiters))
		h.cond.Wait()
		h.blockedWaiters--
		h.tel.Gauge("hal.admission.blocked_waiters").Set(int64(h.blockedWaiters))
	}
	if h.closed {
		h.mu.Unlock()
		return ErrClosed
	}
	h.enqueueLocked(jobs, bytes, budget)
	h.mu.Unlock()
	return nil
}

// enqueueLocked appends a validated group to the backlog, stamping its
// deadline from the budget, and wakes the event loop. Caller holds h.mu.
func (h *HAL) enqueueLocked(jobs []*Job, bytes int64, budget sim.Time) {
	if !h.loopOn {
		h.loopOn = true
		go h.loop()
	}
	g := &jobGroup{jobs: jobs, enqueued: h.simEpoch, bytes: bytes}
	if budget > 0 {
		g.deadline = h.simEpoch + budget
	}
	h.dispatchedGroups++
	h.tel.Counter("hal.dispatch.groups").Inc()
	for _, j := range jobs {
		j.group = g
		h.rec.Record(flightrec.Event{
			Type:   flightrec.EvJobQueue,
			Sim:    g.enqueued,
			Engine: j.Engine,
			Unit:   -1,
			Job:    j.seq,
			Arg:    int64(j.Timing.TotalBytes()),
		})
	}
	h.backlog = append(h.backlog, g)
	h.publishBacklogLocked()
	h.cond.Broadcast()
}

// expireLocked sweeps the backlog for groups whose deadline the simulated
// clock has passed — the round-boundary abort of the deadline machinery —
// and releases their reservations. The caller (the event loop, holding
// h.mu) must close the returned jobs' done channels after unlocking.
func (h *HAL) expireLocked() (expired []*Job) {
	if len(h.backlog) == 0 {
		return nil
	}
	kept := h.backlog[:0]
	for _, g := range h.backlog {
		if g.canceled {
			continue
		}
		if g.deadline > 0 && h.simEpoch > g.deadline {
			g.canceled = true
			h.tel.Counter("hal.admission.deadline_expired").Inc()
			h.rec.Record(flightrec.Event{
				Type: flightrec.EvDeadline, Sim: h.simEpoch,
				Engine: -1, Unit: -1,
				Arg:  int64((h.simEpoch - g.deadline) / sim.Nanosecond),
				Note: "queued group overdue at round boundary",
			})
			h.releaseJobsLocked(g.jobs, fmt.Errorf(
				"hal: group overdue in backlog: %w", ErrDeadlineExceeded))
			expired = append(expired, g.jobs...)
			continue
		}
		kept = append(kept, g)
	}
	h.backlog = kept
	if len(expired) > 0 {
		h.publishBacklogLocked()
	}
	return expired
}
