package hal

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"doppiodb/internal/engine"
)

// TestRuntimeStressConcurrentLifecycles is the -race hammer for the device
// runtime: many clients submit/dispatch/await (some abandoning via context
// cancel) while other goroutines flap Pause/Resume, rewrite the admission
// caps, and finally Close the runtime under load. The invariant is total
// liveness and a clean ledger: every Await returns (the test itself hangs
// otherwise), and every returned error is one of the typed sentinels.
func TestRuntimeStressConcurrentLifecycles(t *testing.T) {
	h, region := newHAL(t)
	privateReg(h)

	const (
		clients   = 8
		perClient = 40
	)
	// One JobParams per client: the functional engines write the result
	// BAT during Submit, so concurrent clients must not share an output
	// buffer (real callers allocate per-query results the same way).
	params := make([]engine.JobParams, clients)
	for i := range params {
		params[i], _, _ = buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	}
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Device flapper: pause/resume on a tight cadence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				h.Resume()
				return
			default:
			}
			h.Pause()
			time.Sleep(50 * time.Microsecond)
			h.Resume()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	// Cap flapper: swing between tight-shed, tight-block, and unbounded.
	wg.Add(1)
	go func() {
		defer wg.Done()
		caps := []AdmissionLimits{
			{MaxGroups: 2, Policy: PolicyShed},
			{MaxGroups: 3, MaxJobs: 6, Policy: PolicyBlock},
			{},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				h.SetAdmission(AdmissionLimits{})
				return
			default:
			}
			h.SetAdmission(caps[i%len(caps)])
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var ledger sync.Map // error text -> struct{}, for post-run triage
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for q := 0; q < perClient; q++ {
				j, err := h.Submit(params[c])
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("submit: %v", err)
					return
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				abandoner := rng.Intn(4) == 0
				if abandoner {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				err = h.DispatchContext(ctx, j)
				if err != nil {
					h.Discard(j)
					if cancel != nil {
						cancel()
					}
					switch {
					case errors.Is(err, ErrOverload), errors.Is(err, ErrClosed):
					default:
						t.Errorf("dispatch: %v", err)
					}
					continue
				}
				_, err = j.Await(ctx)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					switch {
					case errors.Is(err, ErrCanceled), errors.Is(err, ErrClosed),
						errors.Is(err, context.DeadlineExceeded),
						errors.Is(err, context.Canceled):
						ledger.Store(err.Error(), struct{}{})
					default:
						t.Errorf("await: %v", err)
					}
					// An abandoned job may still be queued or in flight;
					// Discard is the caller's cleanup and must be safe in
					// every state.
					h.Discard(j)
				}
			}
		}(c)
	}

	// Let the chaos run, then close the runtime under load: clients must
	// drain with ErrClosed, never hang.
	done := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		h.Close()
		close(stop)
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged: goroutines did not drain after Close")
	}
	// The runtime must be reusable-safe after Close: everything refuses
	// with ErrClosed and the backlog is empty.
	if _, err := h.Submit(p); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v", err)
	}
	h.mu.Lock()
	backlog := len(h.backlog)
	h.mu.Unlock()
	if backlog != 0 {
		t.Errorf("backlog not empty after close: %d groups", backlog)
	}
}
