package hal

import (
	"context"
	"errors"
	"testing"

	"doppiodb/internal/faults"
	"doppiodb/internal/telemetry"
)

// quiet returns an explicitly silent injector: these tests probe edge paths
// with injection off, and must stay deterministic even when the CI fault
// matrix exports DOPPIO_FAULTS to the test process.
func quiet() *faults.Injector { return faults.New(faults.Options{}) }

func TestQueueFullRejectsBeforeEngineWork(t *testing.T) {
	h, region := newHAL(t)
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)
	h.SetInjector(quiet())
	p, _, _ := buildParams(t, region, `abc`, []string{"abc"})
	jobs := make([]*Job, 0, queueSlots)
	for i := 0; i < queueSlots; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	_, err := h.Submit(p)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if IsFault(err) {
		t.Error("ErrQueueFull misclassified as a hardware fault")
	}
	// Capacity is checked before Execute: the rejected submit burned no
	// engine work and leaked no status block.
	if got := reg.Counter("engine.jobs").Value(); got != queueSlots {
		t.Errorf("engine.jobs = %d, want %d", got, queueSlots)
	}
	if len(h.blockFree) != 0 {
		t.Errorf("rejected submit leaked %d freed blocks", len(h.blockFree))
	}
	// Completing the backlog frees the descriptor slots.
	if _, err := h.Run(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Submit(p); err != nil {
		t.Errorf("submit after the queue drained: %v", err)
	}
}

func TestStatusBlockReusedAfterFailedAttempt(t *testing.T) {
	// A failed attempt returns its status block to the free list (zeroed,
	// so reuse reads as "never written"); the next submit picks it up
	// instead of carving a new one from the pool slab.
	h, region := newHAL(t)
	h.SetTelemetry(telemetry.NewRegistry())
	h.SetInjector(faults.New(faults.Options{StuckDone: 1}))
	p, _, _ := buildParams(t, region, `abc`, []string{"abc"})
	if _, err := h.Submit(p); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if h.poolNext != 1 || len(h.blockFree) != 1 {
		t.Fatalf("pool after failures: next=%d free=%d, want 1/1", h.poolNext, len(h.blockFree))
	}
	h.SetInjector(quiet())
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Error("job on recycled block not done")
	}
	if h.poolNext != 1 || len(h.blockFree) != 0 {
		t.Errorf("pool after reuse: next=%d free=%d, want 1/0", h.poolNext, len(h.blockFree))
	}
}

func TestHandshakeRecoveryAfterDSMClobber(t *testing.T) {
	// External corruption of the Device Status Memory page (not injector
	// driven): AFUPresent must report it, and the next submit must re-run
	// the AAL handshake and proceed.
	h, region := newHAL(t)
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)
	h.SetInjector(quiet())
	dsm, err := region.Bytes(h.dsmAddr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		dsm[i] ^= 0xFF
	}
	if h.AFUPresent() {
		t.Fatal("AFUPresent true on clobbered DSM")
	}
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	j, err := h.Submit(p)
	if err != nil {
		t.Fatalf("submit after DSM clobber: %v", err)
	}
	if !j.Done() {
		t.Error("job not done after handshake recovery")
	}
	if !h.AFUPresent() {
		t.Error("handshake not re-established")
	}
	if got := reg.Counter("hal.faults.handshake_loss").Value(); got != 1 {
		t.Errorf("handshake_loss = %d, want 1", got)
	}
	if got := reg.Counter("hal.rehandshakes").Value(); got != 1 {
		t.Errorf("rehandshakes = %d, want 1", got)
	}
}

func TestStatusBlockCorruptionScrubbedAtCompletion(t *testing.T) {
	// Shared memory damaged after the submit-time verification: Status
	// reports a typed corruption error (not "pending"), and the completing
	// round scrubs the block back from the HAL's authoritative statistics.
	h, region := newHAL(t)
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)
	h.SetInjector(quiet())
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := region.Bytes(j.statusAddr)
	if err != nil {
		t.Fatal(err)
	}
	pool[int(j.poolOff)+8] ^= 0x55 // damage the match count in place
	done, serr := j.Status()
	if done || !errors.Is(serr, ErrStatusCorrupt) {
		t.Fatalf("Status on damaged block: done=%v err=%v", done, serr)
	}
	if j.Done() {
		t.Error("Done true on corrupted block")
	}
	if _, err := h.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	done, serr = j.Status()
	if serr != nil || !done {
		t.Errorf("Status after scrub: done=%v err=%v", done, serr)
	}
	if j.Stats.Matches != 1 {
		t.Errorf("authoritative stats lost: %+v", j.Stats)
	}
	if got := reg.Counter("hal.status_scrubbed").Value(); got != 1 {
		t.Errorf("status_scrubbed = %d, want 1", got)
	}
	if c, err := j.Completion(); err != nil || c <= 0 {
		t.Errorf("completion after scrub: %v %v", c, err)
	}
}
