package hal

import (
	"context"
	"errors"
	"testing"

	"doppiodb/internal/memmodel"
	"doppiodb/internal/sim"
)

// TestAdmissionCapSplitsRounds pins more single-job groups to one engine
// than the admission cap allows; the overflow must wait for a later round
// and report the wait in its completion record.
func TestAdmissionCapSplitsRounds(t *testing.T) {
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	h.Pause()
	var jobs []*Job
	for i := 0; i < DefaultAdmissionCap+2; i++ {
		j, err := h.SubmitTo(0, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Dispatch(j); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	h.Resume()
	comps := make([]Completion, len(jobs))
	for i, j := range jobs {
		c, err := j.Await(context.Background())
		if err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		comps[i] = c
	}
	first := comps[0].Admitted
	for i := 0; i < DefaultAdmissionCap; i++ {
		if comps[i].Admitted != first {
			t.Errorf("job %d admitted at %v, want first round %v", i, comps[i].Admitted, first)
		}
	}
	for i := DefaultAdmissionCap; i < len(comps); i++ {
		if comps[i].Admitted <= first {
			t.Errorf("overflow job %d admitted at %v, not after round one (%v)",
				i, comps[i].Admitted, first)
		}
		if comps[i].QueueWait() <= 0 {
			t.Errorf("overflow job %d reports no queue wait", i)
		}
	}
}

// TestAwaitCancelAbortsQueuedGroup cancels a group still in the backlog:
// the whole group must be released (status blocks, volume accounting) and
// every sibling's Await must report the cancellation, while other groups
// run unaffected.
func TestAwaitCancelAbortsQueuedGroup(t *testing.T) {
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	h.Pause()
	j1, err := h.SubmitTo(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(j1); err != nil {
		t.Fatal(err)
	}
	a, err := h.SubmitTo(0, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.SubmitTo(1, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(a, b); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Await(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled await err = %v", err)
	}
	if _, err := a.Completion(); err != ErrCanceled {
		t.Errorf("canceled job Completion err = %v", err)
	}
	// The sibling partition died with its group.
	if _, err := b.Await(context.Background()); err != ErrCanceled {
		t.Errorf("sibling await err = %v, want ErrCanceled", err)
	}
	// Only the surviving group's volume remains queued.
	if got := h.QueuedBytes(); got != int64(j1.Timing.TotalBytes()) {
		t.Errorf("QueuedBytes = %d after cancel, want %d", got, j1.Timing.TotalBytes())
	}
	h.Resume()
	c, err := j1.Await(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c.Done <= c.Admitted {
		t.Errorf("surviving job record implausible: %+v", c)
	}
	if h.QueuedBytes() != 0 {
		t.Error("queued bytes after the surviving group completed")
	}
}

// TestDiscardReleasesUndispatched covers the partial-submit failure path:
// submitted-but-never-dispatched jobs are released and cannot be
// dispatched afterwards.
func TestDiscardReleasesUndispatched(t *testing.T) {
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	j1, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	h.Discard(j1, j2)
	if h.QueuedBytes() != 0 {
		t.Errorf("QueuedBytes = %d after discard", h.QueuedBytes())
	}
	if len(h.blockFree) != 2 {
		t.Errorf("discard freed %d blocks, want 2", len(h.blockFree))
	}
	if _, err := j1.Completion(); err != ErrCanceled {
		t.Errorf("discarded job Completion err = %v", err)
	}
	if err := h.Dispatch(j1); err != ErrBadDispatch {
		t.Errorf("dispatch of discarded job err = %v", err)
	}
}

// TestCloseCancelsBacklog shuts the runtime down with work queued: the
// backlog is canceled, awaiters unblock, and further submits are refused.
func TestCloseCancelsBacklog(t *testing.T) {
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	h.Pause()
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(j); err != nil {
		t.Fatal(err)
	}
	spare, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	h.Close() // idempotent
	if _, err := j.Await(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("await after close err = %v, want ErrClosed", err)
	}
	if _, err := h.Submit(p); err != ErrClosed {
		t.Errorf("submit after close err = %v", err)
	}
	if err := h.Dispatch(spare); err != ErrClosed {
		t.Errorf("dispatch after close err = %v", err)
	}
}

// TestRoundMatchesDirectSimulate is the bit-identity anchor: one group's
// round through the asynchronous runtime must reproduce, per job, exactly
// what a direct memmodel.Simulate over the same queues computes, and the
// per-job attribution must sum to the round's global counters.
func TestRoundMatchesDirectSimulate(t *testing.T) {
	h, region := newHAL(t)
	rows := make([]string, 64)
	for i := range rows {
		rows[i] = "John|Smith|44 Koblenzer Strasse|60327|Frankfurt"
	}
	p, _, _ := buildParams(t, region, `Strasse`, rows)
	var jobs []*Job
	for e := 0; e < 3; e++ {
		j, err := h.SubmitTo(e, p)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	comps, err := h.Run(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	queues := make([][]memmodel.Job, h.Engines())
	for _, j := range jobs {
		queues[j.Engine] = append(queues[j.Engine], j.Timing)
	}
	res := memmodel.Simulate(*h.Params(), queues)
	var bytes, grants, switches int64
	var busy sim.Time
	for i, j := range jobs {
		if want := res.Done[j.Engine][0] + ParametrizeTime; comps[i].HWTime() != want {
			t.Errorf("job %d hardware time %v, direct simulation %v", i, comps[i].HWTime(), want)
		}
		bytes += comps[i].Bytes
		grants += comps[i].Grants
		switches += comps[i].Switches
		busy += comps[i].LinkBusy
	}
	if bytes != res.BytesMoved || grants != res.Grants || switches != res.Switches || busy != res.BusyTime {
		t.Errorf("attribution sums (bytes %d grants %d switches %d busy %v) != round totals (%d %d %d %v)",
			bytes, grants, switches, busy, res.BytesMoved, res.Grants, res.Switches, res.BusyTime)
	}
}
