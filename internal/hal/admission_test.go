package hal

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"doppiodb/internal/faults"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// reg installs a private registry on an existing HAL so counter assertions
// don't race other tests through the process default.
func privateReg(h *HAL) *telemetry.Registry {
	r := telemetry.NewRegistry()
	h.SetTelemetry(r)
	return r
}

// TestAdmissionShedAtCap fills the paused backlog to the group cap and
// checks the next dispatch is refused with ErrOverload while earlier groups
// survive and complete once the device resumes.
func TestAdmissionShedAtCap(t *testing.T) {
	h, region := newHAL(t)
	reg := privateReg(h)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	h.SetAdmission(AdmissionLimits{MaxGroups: 2, Policy: PolicyShed})
	h.Pause()
	var admitted []*Job
	for i := 0; i < 2; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Dispatch(j); err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, j)
	}
	over, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(over); !errors.Is(err, ErrOverload) {
		t.Fatalf("over-cap dispatch err = %v, want ErrOverload", err)
	}
	if got := reg.Counter("hal.admission.shed").Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	h.Discard(over)
	h.Resume()
	for i, j := range admitted {
		if _, err := j.Await(context.Background()); err != nil {
			t.Fatalf("await admitted %d: %v", i, err)
		}
	}
	// Byte and job caps shed too.
	h.SetAdmission(AdmissionLimits{MaxBytes: 1, Policy: PolicyShed})
	h.Pause()
	a, _ := h.Submit(p)
	b, _ := h.Submit(p)
	if err := h.Dispatch(a); !errors.Is(err, ErrOverload) {
		t.Fatalf("byte-cap dispatch err = %v", err)
	}
	h.SetAdmission(AdmissionLimits{MaxJobs: 1, Policy: PolicyShed})
	if err := h.Dispatch(a, b); !errors.Is(err, ErrOverload) {
		t.Fatalf("job-cap dispatch err = %v", err)
	}
	h.Discard(a, b)
	h.Resume()
	h.Close()
}

// TestAdmissionBlockBackpressure parks a dispatcher at the cap instead of
// shedding; draining the backlog must wake it and both groups complete.
func TestAdmissionBlockBackpressure(t *testing.T) {
	h, region := newHAL(t)
	reg := privateReg(h)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	h.SetAdmission(AdmissionLimits{MaxGroups: 1, Policy: PolicyBlock})
	h.Pause()
	first, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(first); err != nil {
		t.Fatal(err)
	}
	second, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	dispatched := make(chan error, 1)
	go func() { dispatched <- h.DispatchContext(context.Background(), second) }()
	// The dispatcher must actually park: it cannot proceed while the
	// device is paused with the backlog at cap.
	select {
	case err := <-dispatched:
		t.Fatalf("blocked dispatch returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	h.Resume()
	if err := <-dispatched; err != nil {
		t.Fatalf("blocked dispatch err = %v", err)
	}
	if _, err := first.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("hal.admission.blocked").Value(); got != 1 {
		t.Errorf("blocked counter = %d, want 1", got)
	}
	h.Close()
}

// TestAdmissionBlockHonorsContext cancels a parked dispatcher's context:
// the dispatch must abandon with an error matching both ErrOverload and
// context.Canceled, and the job must stay discardable.
func TestAdmissionBlockHonorsContext(t *testing.T) {
	h, region := newHAL(t)
	privateReg(h)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	h.SetAdmission(AdmissionLimits{MaxGroups: 1, Policy: PolicyBlock})
	h.Pause()
	first, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(first); err != nil {
		t.Fatal(err)
	}
	second, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dispatched := make(chan error, 1)
	go func() { dispatched <- h.DispatchContext(ctx, second) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	err = <-dispatched
	if !errors.Is(err, ErrOverload) || !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned dispatch err = %v, want ErrOverload and context.Canceled", err)
	}
	h.Discard(second)
	h.Resume()
	if _, err := first.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.Close()
}

// TestAdmissionDeadlineRefusal dispatches under a budget smaller than the
// cost model's floor (the parametrization time alone): admission must
// refuse outright with an error matching both ErrDeadlineExceeded and
// context.DeadlineExceeded, before any reservation enters the backlog.
func TestAdmissionDeadlineRefusal(t *testing.T) {
	h, region := newHAL(t)
	reg := privateReg(h)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithBudget(context.Background(), 1*sim.Nanosecond)
	err = h.DispatchContext(ctx, j)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to match context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "ETA") {
		t.Errorf("refusal error carries no ETA: %v", err)
	}
	if got := reg.Counter("hal.admission.deadline_refused").Value(); got != 1 {
		t.Errorf("deadline_refused counter = %d, want 1", got)
	}
	h.Discard(j)
	// A budget the ETA fits inside admits normally.
	j2, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.DispatchContext(WithBudget(context.Background(), sim.Second), j2); err != nil {
		t.Fatalf("generous budget refused: %v", err)
	}
	if _, err := j2.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.Close()
}

// TestAdmissionDeadlineExpiresInQueue exploits the gap between the cost
// model's ETA (priced at nominal QPI bandwidth) and reality on a degraded
// link (qpi=0.5 halves the effective rate): a budget of ETA plus half the
// transfer term passes admission, but by the time round one finishes the
// simulated clock has passed the group's deadline and the round-boundary
// sweep must abort it with ErrDeadlineExceeded.
func TestAdmissionDeadlineExpiresInQueue(t *testing.T) {
	in := faults.New(faults.Options{QPIFactor: 0.5})
	h, region, reg := newFaultHAL(t, in)
	rows := make([]string, 400)
	for i := range rows {
		rows[i] = strings.Repeat("x", 70)
	}
	p, _, _ := buildParams(t, region, `abc`, rows)
	h.Pause()
	// Fill engine 0's first round to the admission cap so the budgeted
	// group cannot ride along in round one.
	var fillers []*Job
	for i := 0; i < DefaultAdmissionCap; i++ {
		j, err := h.SubmitTo(0, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Dispatch(j); err != nil {
			t.Fatal(err)
		}
		fillers = append(fillers, j)
	}
	late, err := h.SubmitTo(0, p)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	eta := h.etaLocked()
	h.mu.Unlock()
	// eta - ParametrizeTime is the transfer term at nominal bandwidth; at
	// qpi=0.5 the real round takes roughly twice that, so +50% lands the
	// deadline between the estimate and reality.
	budget := eta + (eta-ParametrizeTime)/2
	if err := h.DispatchContext(WithBudget(context.Background(), budget), late); err != nil {
		t.Fatalf("budgeted dispatch refused at admission: %v", err)
	}
	h.Resume()
	for i, j := range fillers {
		if _, err := j.Await(context.Background()); err != nil {
			t.Fatalf("await filler %d: %v", i, err)
		}
	}
	_, err = late.Await(context.Background())
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("overdue group err = %v, want ErrDeadlineExceeded", err)
	}
	if got := reg.Counter("hal.admission.deadline_expired").Value(); got != 1 {
		t.Errorf("deadline_expired counter = %d, want 1", got)
	}
	h.Close()
}

// TestStateMachine walks the /health state machine: ok on an idle healthy
// device, overloaded while the backlog is at cap, degraded while an engine
// is quarantined, and back to ok.
func TestStateMachine(t *testing.T) {
	h, region := newHAL(t)
	privateReg(h)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	if got := h.State(); got != "ok" {
		t.Fatalf("idle state = %q, want ok", got)
	}
	h.SetAdmission(AdmissionLimits{MaxGroups: 1, Policy: PolicyShed})
	h.Pause()
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Dispatch(j); err != nil {
		t.Fatal(err)
	}
	if got := h.State(); got != "overloaded" {
		t.Errorf("state at cap = %q, want overloaded", got)
	}
	h.Resume()
	if _, err := j.Await(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := h.State(); got != "ok" {
		t.Errorf("state after drain = %q, want ok", got)
	}
	h.Close()

	// A quarantined engine that fabric reset cannot revive (the injector
	// never lets it recover) leaves the device degraded.
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 0})
	hq, region2, _ := newSingleEngineHAL(t, in)
	pq, _, _ := buildParams(t, region2, `abc`, []string{"xxabc"})
	if _, err := hq.Submit(pq); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("wedged submit err = %v", err)
	}
	if got := hq.State(); got != "degraded" {
		t.Errorf("state with quarantined engine = %q, want degraded", got)
	}
	hq.Close()
}
