// Engine health tracking and fault recovery: the defensive half of the
// robustness layer. The HARP platform gives software exactly two signals
// about the hardware's wellbeing — the AAL handshake words in the DSM and
// the done bit of each job's status block (§2.2, §4.2.2) — so the HAL
// derives everything else: a simulated-time watchdog on the done-bit wait,
// checksums over the control structures that cross the QPI link, and a
// per-engine circuit breaker that quarantines an engine after consecutive
// failures and re-runs the handshake before readmitting it.
package hal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"

	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// Fault-recovery tuning.
const (
	// maxAttempts bounds the submit retry loop: one initial attempt plus
	// bounded resubmission to other engines.
	maxAttempts = 3
	// quarantineAfter is the consecutive-failure threshold of the
	// per-engine circuit breaker.
	quarantineAfter = 3
	// DoneWaitTimeout is the simulated-time watchdog budget of one
	// done-bit busy-wait. Every failed attempt adds this much latency to
	// the job that eventually completes (degraded, never hung).
	DoneWaitTimeout = 100 * sim.Microsecond
)

// ErrEngineFault is the umbrella sentinel every hardware-fault error wraps:
// errors.Is(err, ErrEngineFault) is the one check callers need to decide
// "degrade to software" without enumerating fault classes. The concrete
// sentinels below remain errors.Is-able individually.
var ErrEngineFault = errors.New("hal: engine fault")

// faultError is a typed hardware-fault sentinel: it matches ErrEngineFault
// under errors.Is and carries the transient/permanent classification the
// query-level retry layer consults. Transient faults (a wedged done bit, a
// dropped engine, a damaged transfer) can heal across attempts — the
// injector's recovery paths and the breaker's readmission exist for exactly
// that — while a permanent fault (the whole fabric quarantined) cannot be
// retried away and should degrade immediately.
type faultError struct {
	msg       string
	transient bool
}

func (e *faultError) Error() string { return e.msg }

// Is matches the umbrella ErrEngineFault sentinel (errors.Is handles
// identity to the concrete sentinel itself).
func (e *faultError) Is(target error) bool { return target == ErrEngineFault }

// Typed fault errors. Each maps to a detection counter under hal.faults.*;
// all wrap ErrEngineFault (IsFault) so callers (core.System.Exec) can
// degrade to the software operator instead of failing the query.
var (
	// ErrDoneTimeout is the watchdog firing: the done bit never set
	// within the simulated busy-wait budget.
	ErrDoneTimeout error = &faultError{msg: "hal: watchdog timeout waiting for done bit", transient: true}
	// ErrConfigCorrupt is a config-vector checksum mismatch at engine
	// ingest (the vector was damaged crossing QPI).
	ErrConfigCorrupt error = &faultError{msg: "hal: config vector checksum mismatch at engine ingest", transient: true}
	// ErrStatusCorrupt is a status-block checksum mismatch at the
	// done-bit read.
	ErrStatusCorrupt error = &faultError{msg: "hal: status block checksum mismatch", transient: true}
	// ErrEngineDropped is an engine refusing the job-accept handshake.
	ErrEngineDropped error = &faultError{msg: "hal: engine stopped accepting jobs", transient: true}
	// ErrEngineQuarantined is a submit pinned to an engine the circuit
	// breaker holds quarantined.
	ErrEngineQuarantined error = &faultError{msg: "hal: engine is quarantined", transient: true}
	// ErrAllQuarantined means no engine is admitted and none could be
	// readmitted by a fresh handshake — fabric-wide, so not transient.
	ErrAllQuarantined error = &faultError{msg: "hal: all engines quarantined", transient: false}
	// ErrRetriesExhausted means a job failed on every attempted engine.
	ErrRetriesExhausted error = &faultError{msg: "hal: job failed after bounded retries", transient: true}
)

// IsFault reports whether err is a hardware-fault error the caller may
// recover from by degrading to the software path. Validation and capacity
// errors (bad parameters, expression over the deployed limits, ErrQueueFull)
// are not faults — and neither are the admission layer's ErrOverload and
// ErrDeadlineExceeded: a shed query was refused, not broken.
func IsFault(err error) bool { return errors.Is(err, ErrEngineFault) }

// IsTransient reports whether err is a hardware fault worth retrying at the
// query level: watchdog timeouts, handshake losses, single-engine drops and
// quarantines may heal between attempts (engines recover, breakers readmit).
// A fabric-wide ErrAllQuarantined is permanent — only a fabric reset or the
// software operator answers that query.
func IsTransient(err error) bool {
	var fe *faultError
	return errors.As(err, &fe) && fe.transient
}

// EngineHealth is one engine's circuit-breaker snapshot.
type EngineHealth struct {
	Engine       int
	Quarantined  bool
	ConsecFails  int   // consecutive failed attempts (resets on success)
	Jobs         int64 // successfully completed jobs
	Fails        int64 // failed attempts, lifetime
	Readmissions int64 // times the engine returned from quarantine
}

// engineHealth is the mutable tracker state. Guarded by HAL.mu.
type engineHealth struct {
	quarantined  bool
	consecFails  int
	jobs         int64
	fails        int64
	readmissions int64
}

// Health returns a per-engine snapshot of the circuit breaker (doppiosh's
// \health).
func (h *HAL) Health() []EngineHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]EngineHealth, len(h.health))
	for i := range h.health {
		hs := &h.health[i]
		out[i] = EngineHealth{
			Engine:       i,
			Quarantined:  hs.quarantined,
			ConsecFails:  hs.consecFails,
			Jobs:         hs.jobs,
			Fails:        hs.fails,
			Readmissions: hs.readmissions,
		}
	}
	return out
}

// noteSuccess records a completed job on engine e.
func (h *HAL) noteSuccess(e int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.health[e].consecFails = 0
	h.health[e].jobs++
}

// noteFailure records a failed attempt on engine e, trips the circuit
// breaker after quarantineAfter consecutive failures, and — when a quorum
// of breakers has latched — triggers the fabric reset.
func (h *HAL) noteFailure(e int) {
	h.mu.Lock()
	hs := &h.health[e]
	hs.consecFails++
	hs.fails++
	reset := false
	if !hs.quarantined && hs.consecFails >= quarantineAfter {
		hs.quarantined = true
		h.tel.Counter("hal.engine.quarantined").Inc()
		h.tel.Gauge("hal.engines.healthy").Set(h.healthyLocked())
		h.tel.Gauge(fmt.Sprintf("hal.engine.%d.quarantined", e)).Set(1)
		h.rec.Record(flightrec.Event{
			Type:   flightrec.EvBreakerTrip,
			Sim:    h.simEpoch,
			Engine: e,
			Unit:   -1,
			Arg:    int64(hs.consecFails),
		})
		// Quorum check: once half or more of the fabric is quarantined,
		// per-engine recovery has lost — reset the whole device.
		quarantined := int64(len(h.engines)) - h.healthyLocked()
		if !h.resetting && quarantined*2 >= int64(len(h.engines)) {
			h.resetting = true
			reset = true
		}
	}
	h.mu.Unlock()
	if reset {
		h.fabricReset()
	}
}

// fabricReset is the recovery of last resort, taken when a quorum of engine
// breakers has latched: re-run the AAL handshake, scrub every backlogged
// job's status block, and re-arm the breakers by probing each quarantined
// engine. Engines whose probe still fails stay quarantined — the reset
// restores whatever the fabric will give back, it does not fake health.
func (h *HAL) fabricReset() {
	h.tel.Counter("hal.fabric_resets").Inc()
	h.recordCtl(flightrec.EvFabricReset, -1, 0, "quorum of engine breakers latched")
	h.rehandshake()
	h.mu.Lock()
	for _, g := range h.backlog {
		for _, j := range g.jobs {
			h.scrubStatusLocked(j)
		}
	}
	quarantined := make([]bool, len(h.engines))
	for e := range h.health {
		quarantined[e] = h.health[e].quarantined
	}
	h.mu.Unlock()
	for e, q := range quarantined {
		if q {
			h.tryReadmit(e)
		}
	}
	h.mu.Lock()
	h.resetting = false
	h.cond.Broadcast()
	h.mu.Unlock()
}

// FabricResets returns the lifetime fabric-reset count.
func (h *HAL) FabricResets() int64 {
	return h.tel.Counter("hal.fabric_resets").Value()
}

// State is the runtime's health state machine, in degrading order of
// severity: "resetting" while a fabric reset is re-arming the breakers,
// "degraded" when any engine is quarantined or the AFU handshake is lost,
// "overloaded" when the backlog sits at an admission cap or dispatchers are
// parked on the block policy, "ok" otherwise.
func (h *HAL) State() string {
	afu := h.AFUPresent()
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case h.resetting:
		return "resetting"
	case !afu || h.healthyLocked() < int64(len(h.engines)):
		return "degraded"
	case h.blockedWaiters > 0 ||
		(h.admission.bounded() && !h.roomLocked(1, 1)):
		return "overloaded"
	default:
		return "ok"
	}
}

// healthyLocked counts non-quarantined engines. Caller holds h.mu.
func (h *HAL) healthyLocked() int64 {
	var n int64
	for i := range h.health {
		if !h.health[i].quarantined {
			n++
		}
	}
	return n
}

// isQuarantined reports engine e's breaker state.
func (h *HAL) isQuarantined(e int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.health[e].quarantined
}

// tryReadmit re-runs the AAL handshake and probes engine e; on success the
// engine returns to the distributor's rotation.
func (h *HAL) tryReadmit(e int) bool {
	// The handshake is the only proof the right bitstream still answers
	// (§2.2): re-establish it before trusting the engine again.
	if !h.AFUPresent() {
		h.rehandshake()
		if !h.AFUPresent() {
			return false
		}
	}
	if !h.inj.ProbeEngine(e) {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := &h.health[e]
	if !hs.quarantined {
		return true
	}
	hs.quarantined = false
	hs.consecFails = 0
	hs.readmissions++
	h.tel.Counter("hal.engine.readmitted").Inc()
	h.tel.Gauge("hal.engines.healthy").Set(h.healthyLocked())
	h.tel.Gauge(fmt.Sprintf("hal.engine.%d.quarantined", e)).Set(0)
	h.rec.Record(flightrec.Event{
		Type:   flightrec.EvReadmit,
		Sim:    h.simEpoch,
		Engine: e,
		Unit:   -1,
	})
	return true
}

// readmitAny tries to readmit every quarantined engine, reporting whether
// at least one came back.
func (h *HAL) readmitAny() bool {
	any := false
	for e := range h.engines {
		if h.isQuarantined(e) && h.tryReadmit(e) {
			any = true
		}
	}
	return any
}

// rehandshake rewrites the DSM handshake words — software's half of the AAL
// protocol — after a detected handshake loss.
func (h *HAL) rehandshake() {
	dsm, err := h.region.Bytes(h.dsmAddr)
	if err != nil {
		return
	}
	binary.LittleEndian.PutUint32(dsm[0:], dsmMagic)
	binary.LittleEndian.PutUint32(dsm[4:], afuID)
	h.tel.Counter("hal.rehandshakes").Inc()
}

// checkHandshake runs before every submit: it gives the injector its
// chance to clobber the DSM, then verifies and (if needed) re-establishes
// the handshake.
func (h *HAL) checkHandshake() {
	if h.inj.Hit(faults.HandshakeLoss) {
		if dsm, err := h.region.Bytes(h.dsmAddr); err == nil {
			h.inj.Clobber(dsm[:8])
		}
	}
	if !h.AFUPresent() {
		h.tel.Counter("hal.faults.handshake_loss").Inc()
		h.recordCtl(flightrec.EvFault, -1, 0, "handshake-loss")
		h.rehandshake()
	}
}

// HealthCounters is the engine-health view of a telemetry snapshot — what
// doppiobench folds into its -json / -metrics-out documents so a run's
// degradations are visible without a live System. Gauges reflect the most
// recently booted system; counters accumulate across every system of the
// process.
type HealthCounters struct {
	// EnginesTotal / EnginesHealthy mirror the hal.engines.* gauges.
	EnginesTotal   int64 `json:"engines_total"`
	EnginesHealthy int64 `json:"engines_healthy"`
	// DegradedQueries counts queries answered by the software fallback
	// (core.fallback.software).
	DegradedQueries int64 `json:"degraded_queries"`
	// Recovery-path counters.
	Retries        int64 `json:"retries"`
	Rehandshakes   int64 `json:"rehandshakes"`
	StatusScrubbed int64 `json:"status_scrubbed"`
	Quarantines    int64 `json:"quarantines"`
	Readmissions   int64 `json:"readmissions"`
	// Faults maps each hal.faults.* detection counter to its count.
	Faults map[string]int64 `json:"faults"`
}

// SummaryFromMetrics derives the health view from a telemetry snapshot.
func SummaryFromMetrics(s telemetry.Snapshot) HealthCounters {
	hc := HealthCounters{
		EnginesTotal:    s.Gauge("hal.engines.total"),
		EnginesHealthy:  s.Gauge("hal.engines.healthy"),
		DegradedQueries: s.Counter("core.fallback.software"),
		Retries:         s.Counter("hal.retries"),
		Rehandshakes:    s.Counter("hal.rehandshakes"),
		StatusScrubbed:  s.Counter("hal.status_scrubbed"),
		Quarantines:     s.Counter("hal.engine.quarantined"),
		Readmissions:    s.Counter("hal.engine.readmitted"),
		Faults:          make(map[string]int64),
	}
	for name, v := range s.Counters {
		if rest, ok := strings.CutPrefix(name, "hal.faults."); ok {
			hc.Faults[rest] = v
		}
	}
	return hc
}

// Status-block checksum layout: the engine writes done bit + statistics in
// bytes [0,20) and a CRC-32 over them at [20,24) (§3 step 8's statistics
// write, hardened). An all-zero block is a job that never completed.
const (
	statusPayload  = 20
	statusChecksum = 24
)

// sealStatusBlock stamps the checksum over a freshly written block.
func sealStatusBlock(blk []byte) {
	binary.LittleEndian.PutUint32(blk[statusPayload:statusChecksum],
		crc32.ChecksumIEEE(blk[:statusPayload]))
}

// statusBlockState classifies a status block: never written (pending),
// valid, or corrupted.
func statusBlockState(blk []byte) (done bool, err error) {
	zero := true
	for _, b := range blk[:statusChecksum] {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return false, nil // engine has not written yet: still pending
	}
	want := binary.LittleEndian.Uint32(blk[statusPayload:statusChecksum])
	if crc32.ChecksumIEEE(blk[:statusPayload]) != want {
		return false, ErrStatusCorrupt
	}
	return blk[0] != 0, nil
}
