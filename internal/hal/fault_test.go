package hal

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"doppiodb/internal/engine"
	"doppiodb/internal/faults"
	"doppiodb/internal/fpga"
	"doppiodb/internal/shmem"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// newFaultHAL builds a HAL with its own registry and the given injector,
// immune to any process-default injection (the CI fault matrix sets
// DOPPIO_FAULTS for every test process).
func newFaultHAL(t *testing.T, in *faults.Injector) (*HAL, *shmem.Region, *telemetry.Registry) {
	t.Helper()
	h, region := newHAL(t)
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)
	h.SetInjector(in)
	return h, region, reg
}

// newSingleEngineHAL builds a one-engine HAL: with no other engine to fail
// over to, quarantine and readmission paths are fully observable.
func newSingleEngineHAL(t *testing.T, in *faults.Injector) (*HAL, *shmem.Region, *telemetry.Registry) {
	t.Helper()
	dep := fpga.DefaultDeployment()
	dep.Engines = 1
	dev, err := fpga.NewDevice(dep)
	if err != nil {
		t.Fatal(err)
	}
	region := shmem.NewRegion(1 << 30)
	h, err := New(region, dev)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	h.SetTelemetry(reg)
	h.SetInjector(in)
	return h, region, reg
}

func TestFaultStuckDoneExhaustsRetries(t *testing.T) {
	in := faults.New(faults.Options{Seed: 1, StuckDone: 1})
	h, region, reg := newFaultHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	_, err := h.Submit(p)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !IsFault(err) {
		t.Error("retries-exhausted error not classified as fault")
	}
	if got := reg.Counter("hal.faults.stuck_done").Value(); got != maxAttempts {
		t.Errorf("stuck_done detections = %d, want %d", got, maxAttempts)
	}
	if got := reg.Counter("hal.retries").Value(); got != maxAttempts-1 {
		t.Errorf("retries = %d, want %d", got, maxAttempts-1)
	}
	if got := reg.Counter("hal.jobs").Value(); got != 0 {
		t.Errorf("failed job registered: hal.jobs = %d", got)
	}
	// Failed attempts must not leave queued timing work behind.
	if h.QueuedBytes() != 0 {
		t.Error("failed attempts left queued bytes")
	}
}

func TestFaultStuckDoneRecoversByRetry(t *testing.T) {
	in := faults.New(faults.Options{Seed: 7, StuckDone: 0.5})
	h, region, reg := newFaultHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	ok, retried := 0, 0
	var jobs []*Job
	for i := 0; i < 20; i++ {
		j, err := h.Submit(p)
		if err != nil {
			if !IsFault(err) {
				t.Fatalf("submit %d: non-fault error %v", i, err)
			}
			continue
		}
		ok++
		if j.Stats.Strings != 2 || j.Stats.Matches != 1 {
			t.Fatalf("submit %d: wrong stats after retry: %+v", i, j.Stats)
		}
		if !j.Done() {
			t.Fatalf("submit %d: accepted job without done bit", i)
		}
		if j.penalty > 0 {
			retried++
			if j.penalty%DoneWaitTimeout != 0 || j.penalty >= maxAttempts*DoneWaitTimeout {
				t.Fatalf("submit %d: implausible watchdog penalty %v", i, j.penalty)
			}
		}
		jobs = append(jobs, j)
	}
	if ok == 0 {
		t.Fatal("no submit survived 50% stuck-done")
	}
	if retried == 0 {
		t.Error("no job succeeded via retry at 50% stuck-done (seed-dependent; pick another seed)")
	}
	if reg.Counter("hal.faults.stuck_done").Value() == 0 {
		t.Error("0.5-rate stuck-done never fired in 20 submits")
	}
	if _, err := h.Run(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	}
	// Each retried job's completion carries its accrued watchdog latency.
	for _, j := range jobs {
		c, err := j.Completion()
		if err != nil {
			t.Fatal(err)
		}
		if c < j.penalty+ParametrizeTime {
			t.Errorf("completion %v dropped the %v watchdog penalty", c, j.penalty)
		}
	}
}

func TestFaultConfigCorruptDetected(t *testing.T) {
	in := faults.New(faults.Options{Seed: 3, ConfigCorrupt: 1})
	h, region, reg := newFaultHAL(t, in)
	p, _, res := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	_, err := h.Submit(p)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if got := reg.Counter("hal.faults.config_corrupt").Value(); got != maxAttempts {
		t.Errorf("config_corrupt detections = %d, want %d", got, maxAttempts)
	}
	// The corrupted vector must never reach a PU: no engine work, no
	// result bytes written.
	if got := reg.Counter("engine.jobs").Value(); got != 0 {
		t.Errorf("engine executed %d jobs with a corrupt vector", got)
	}
	for i := 0; i < res.Count(); i++ {
		if res.Get(i) != 0 {
			t.Fatalf("result BAT written despite corrupt config (row %d)", i)
		}
	}
}

func TestFaultStatusCorruptDetected(t *testing.T) {
	in := faults.New(faults.Options{Seed: 5, StatusCorrupt: 1})
	h, region, reg := newFaultHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	_, err := h.Submit(p)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if got := reg.Counter("hal.faults.status_corrupt").Value(); got != maxAttempts {
		t.Errorf("status_corrupt detections = %d, want %d", got, maxAttempts)
	}
}

func TestFaultEngineDropQuarantinesEngine(t *testing.T) {
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 1})
	h, region, reg := newFaultHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})

	// Pinned submits hammer the wedged engine until the breaker trips.
	if _, err := h.SubmitTo(1, p); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("pinned submit err = %v", err)
	}
	hs := h.Health()
	if !hs[1].Quarantined {
		t.Fatalf("engine 1 not quarantined after %d failures: %+v", maxAttempts, hs[1])
	}
	if hs[1].Fails != maxAttempts {
		t.Errorf("engine 1 fails = %d, want %d", hs[1].Fails, maxAttempts)
	}
	if got := reg.Counter("hal.engine.quarantined").Value(); got != 1 {
		t.Errorf("quarantine counter = %d", got)
	}
	// Another pinned submit is refused outright: the engine cannot be
	// readmitted while the injector holds it down.
	if _, err := h.SubmitTo(1, p); !errors.Is(err, ErrEngineQuarantined) {
		t.Fatalf("quarantined pinned submit err = %v", err)
	}
	// Unpinned traffic flows around the quarantined engine.
	for i := 0; i < 12; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatalf("unpinned submit %d: %v", i, err)
		}
		if j.Engine == 1 {
			t.Fatal("distributor picked quarantined engine 1")
		}
	}
	if got := reg.Gauge("hal.engines.healthy").Value(); got != 3 {
		t.Errorf("healthy gauge = %d, want 3", got)
	}
}

func TestFaultEngineDropReadmissionAfterRecovery(t *testing.T) {
	// The sole engine accepts two jobs, wedges, and gets quarantined. On a
	// one-engine device that single breaker is a quorum, so the fabric
	// reset fires immediately and its readmission probe (the injector lets
	// the engine recover after one probe) brings the engine back before
	// the failed submit even returns.
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 0, DropAfter: 2, DropRecover: 1})
	h, region, reg := newSingleEngineHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})

	for i := 0; i < 2; i++ {
		if _, err := h.Submit(p); err != nil {
			t.Fatalf("warm submit %d: %v", i, err)
		}
	}
	if _, err := h.Submit(p); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("wedged submit err = %v", err)
	}
	if h.FabricResets() != 1 {
		t.Fatalf("fabric resets = %d, want 1 (sole breaker is a quorum)", h.FabricResets())
	}
	j, err := h.Submit(p)
	if err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
	if !j.Done() {
		t.Error("post-recovery job not done")
	}
	hs := h.Health()[0]
	if hs.Quarantined || hs.Readmissions != 1 {
		t.Errorf("health after readmission: %+v", hs)
	}
	if got := reg.Counter("hal.engine.readmitted").Value(); got != 1 {
		t.Errorf("readmitted counter = %d", got)
	}
}

func TestFaultAllEnginesQuarantinedTyped(t *testing.T) {
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 0}) // never recovers
	h, region, _ := newSingleEngineHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	if _, err := h.Submit(p); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("first submit err = %v", err)
	}
	_, err := h.Submit(p)
	if !errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("err = %v, want ErrAllQuarantined", err)
	}
	if !IsFault(err) {
		t.Error("all-quarantined error not classified as fault")
	}
}

func TestFaultHandshakeLossRecovery(t *testing.T) {
	in := faults.New(faults.Options{Seed: 11, HandshakeLoss: 1})
	h, region, reg := newFaultHAL(t, in)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc"})
	for i := 0; i < 5; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatalf("submit %d under handshake loss: %v", i, err)
		}
		if !j.Done() {
			t.Fatalf("submit %d: job not done", i)
		}
	}
	if !h.AFUPresent() {
		t.Error("handshake not re-established")
	}
	if got := reg.Counter("hal.faults.handshake_loss").Value(); got != 5 {
		t.Errorf("handshake_loss detections = %d, want 5", got)
	}
	if got := reg.Counter("hal.rehandshakes").Value(); got != 5 {
		t.Errorf("rehandshakes = %d, want 5", got)
	}
}

func TestFaultQPIDegradedSlowsBatch(t *testing.T) {
	run := func(in *faults.Injector) (total sim.Time) {
		h, region, _ := newFaultHAL(t, in)
		rows := make([]string, 4096)
		for i := range rows {
			rows[i] = fmt.Sprintf("row %d with some Strasse text padding padding", i)
		}
		p, _, _ := buildParams(t, region, `Strasse`, rows)
		var jobs []*Job
		for e := 0; e < 4; e++ {
			j, err := h.SubmitTo(e, p)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		if _, err := h.Run(context.Background(), jobs...); err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			c, err := j.Completion()
			if err != nil {
				t.Fatal(err)
			}
			total += c
		}
		return total
	}
	healthy := run(nil)
	degraded := run(faults.New(faults.Options{QPIFactor: 0.5}))
	if degraded <= healthy {
		t.Errorf("half QPI bandwidth not slower: healthy %v, degraded %v", healthy, degraded)
	}
}

func TestFaultInjectorOffBitIdentical(t *testing.T) {
	// A constructed-but-quiet injector must leave results and simulated
	// timings identical to no injector at all: zero overhead when off.
	type outcome struct {
		strings, matches int
		completed        sim.Time
		done             sim.Time
	}
	run := func(in *faults.Injector) []outcome {
		h, region, _ := newFaultHAL(t, in)
		p, _, _ := buildParams(t, region, `Strasse`, []string{
			"John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
			"Anna|Miller|9 Lindenweg|80331|Muenchen",
		})
		var jobs []*Job
		for i := 0; i < 6; i++ {
			j, err := h.Submit(p)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		comps, err := h.Run(context.Background(), jobs...)
		if err != nil {
			t.Fatal(err)
		}
		var out []outcome
		for i, j := range jobs {
			c, err := j.Completion()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, outcome{j.Stats.Strings, j.Stats.Matches, c, comps[i].Done})
		}
		return out
	}
	bare := run(nil)
	quiet := run(faults.New(faults.Options{Seed: 99}))
	if len(bare) != len(quiet) {
		t.Fatal("job count differs")
	}
	for i := range bare {
		if bare[i] != quiet[i] {
			t.Errorf("job %d differs with quiet injector: %+v vs %+v", i, bare[i], quiet[i])
		}
	}
}

func TestFaultConcurrentSubmitsInvariant(t *testing.T) {
	// Race-checked invariant: under mixed injection, every submit either
	// returns a correct completed job or a typed fault error — never a
	// hang, never corruption.
	in := faults.New(faults.Options{
		Seed: 13, StuckDone: 0.2, ConfigCorrupt: 0.1, StatusCorrupt: 0.1, HandshakeLoss: 0.1,
	})
	h, region, _ := newFaultHAL(t, in)
	// Each goroutine owns its params (and result BAT): concurrent jobs
	// never share an output buffer, exactly like partitioned submission.
	var ps [8]engine.JobParams
	for g := range ps {
		ps[g], _, _ = buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobs []*Job
	errs := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := h.Submit(ps[g])
				mu.Lock()
				if err != nil {
					if !IsFault(err) {
						t.Errorf("non-fault error: %v", err)
					}
					errs++
				} else {
					if j.Stats.Strings != 2 || j.Stats.Matches != 1 {
						t.Errorf("wrong stats: %+v", j.Stats)
					}
					jobs = append(jobs, j)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if _, err := h.Run(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if c, err := j.Completion(); err != nil || c <= 0 {
			t.Fatalf("accepted job without completion: %v %v", c, err)
		}
		if done, err := j.Status(); err != nil || !done {
			t.Fatalf("accepted job status: %v %v", done, err)
		}
	}
	t.Logf("concurrent: %d ok, %d fault errors", len(jobs), errs)
}
