package hal

import (
	"context"
	"fmt"
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/config"
	"doppiodb/internal/engine"
	"doppiodb/internal/fpga"
	"doppiodb/internal/shmem"
	"doppiodb/internal/token"
)

func newHAL(t *testing.T) (*HAL, *shmem.Region) {
	t.Helper()
	region := shmem.NewRegion(1 << 30)
	dev, err := fpga.NewDevice(fpga.DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(region, dev)
	if err != nil {
		t.Fatal(err)
	}
	return h, region
}

func buildParams(t *testing.T, region *shmem.Region, pattern string, rows []string) (engine.JobParams, *bat.Strings, *bat.Shorts) {
	t.Helper()
	prog, err := token.CompilePattern(pattern, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := config.Encode(prog, config.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	col, err := bat.NewStrings(region, len(rows), len(rows)*80)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := col.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := bat.NewShorts(region, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.SetLen(len(rows)); err != nil {
		t.Fatal(err)
	}
	return engine.JobParams{
		Config:      vec,
		Offsets:     col.OffsetBytes(),
		OffsetWidth: bat.OffsetWidth,
		Heap:        col.HeapBytes(),
		Count:       col.Count(),
		Result:      res.Bytes(),
	}, col, res
}

func TestHandshake(t *testing.T) {
	h, _ := newHAL(t)
	if !h.AFUPresent() {
		t.Error("AFU handshake failed")
	}
	if h.Engines() != 4 {
		t.Errorf("Engines = %d", h.Engines())
	}
}

func TestSubmitExecutesAndSetsDoneBit(t *testing.T) {
	h, region := newHAL(t)
	rows := []string{
		"John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
		"Anna|Miller|9 Lindenweg|80331|Muenchen",
		"Hans|Maier|3 Bahnhofstrasse|8004|Zuerich",
	}
	p, _, res := buildParams(t, region, `Strasse`, rows)
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Error("done bit not set in shared memory")
	}
	if j.Stats.Strings != 3 || j.Stats.Matches != 1 {
		t.Errorf("stats: %+v", j.Stats)
	}
	// Result BAT: nonzero only for the matching row, value = position of
	// the match's last character.
	if got := res.Get(0); got != 31 {
		t.Errorf("result[0] = %d, want 31", got)
	}
	if res.Get(1) != 0 || res.Get(2) != 0 {
		t.Errorf("non-matching rows: %d %d", res.Get(1), res.Get(2))
	}
	if _, err := j.Completion(); err != ErrPending {
		t.Errorf("Completion before the runtime ran the job: %v", err)
	}
	comps, err := h.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	c, err := j.Completion()
	if err != nil || c <= 0 {
		t.Errorf("Completion after run: %v %v", c, err)
	}
	if comps[0].HWTime() != c {
		t.Errorf("completion record %v disagrees with Completion() %v", comps[0].HWTime(), c)
	}
}

func TestDistributorBalances(t *testing.T) {
	h, region := newHAL(t)
	rows := make([]string, 64)
	for i := range rows {
		rows[i] = fmt.Sprintf("row %d with some Strasse text", i)
	}
	p, _, _ := buildParams(t, region, `Strasse`, rows)
	seen := map[int]int{}
	for i := 0; i < 8; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		seen[j.Engine]++
	}
	if len(seen) != 4 {
		t.Errorf("jobs not spread over engines: %v", seen)
	}
	for e, n := range seen {
		if n != 2 {
			t.Errorf("engine %d got %d jobs", e, n)
		}
	}
}

func TestSubmitToPartitioned(t *testing.T) {
	h, region := newHAL(t)
	rows := make([]string, 40)
	for i := range rows {
		s := "no match here"
		if i%4 == 0 {
			s = "Koblenzer Strasse"
		}
		rows[i] = s
	}
	p, _, res := buildParams(t, region, `Strasse`, rows)
	// Partition by row ranges across the four engines.
	per := len(rows) / 4
	var jobs []*Job
	for e := 0; e < 4; e++ {
		part := p
		part.Offsets = p.Offsets[e*per*4 : (e+1)*per*4]
		part.Count = per
		part.Result = p.Result[e*per*2 : (e+1)*per*2]
		j, err := h.SubmitTo(e, part)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if _, err := h.Run(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, j := range jobs {
		total += j.Stats.Matches
		if c, err := j.Completion(); err != nil || c <= 0 {
			t.Errorf("partition completion: %v %v", c, err)
		}
	}
	if total != 10 {
		t.Errorf("partitioned matches = %d, want 10", total)
	}
	for i := range rows {
		want := uint16(0)
		if i%4 == 0 {
			want = 17
		}
		if got := res.Get(i); got != want {
			t.Errorf("row %d result = %d, want %d", i, got, want)
		}
	}
	if _, err := h.SubmitTo(9, p); err != ErrBadEngine {
		t.Errorf("bad engine err = %v", err)
	}
}

func TestCapacityErrorSurfaces(t *testing.T) {
	h, region := newHAL(t)
	// An expression over the deployed state budget must be rejected at
	// submit (the HUDF then falls back to hybrid execution).
	long := ""
	for i := 0; i < 20; i++ {
		long += fmt.Sprintf("(t%d)|", i)
	}
	long += "(zz)"
	p, _, _ := buildParams(t, region, `Strasse`, []string{"x"})
	prog, err := token.CompilePattern(long, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := config.Encode(prog, config.Limits{MaxStates: 64, MaxChars: 256})
	if err != nil {
		t.Fatal(err)
	}
	p.Config = vec
	if _, err := h.Submit(p); err == nil {
		t.Error("over-capacity expression accepted")
	}
}

func TestRuntimeDrainsBacklog(t *testing.T) {
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz"})
	// While admission is paused, dispatched groups pile up as queued load.
	h.Pause()
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Dispatch(j); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if h.QueuedBytes() != 5*int64(jobs[0].Timing.TotalBytes()) {
		t.Errorf("paused queue holds %d bytes", h.QueuedBytes())
	}
	h.Resume()
	for i, j := range jobs {
		c, err := j.Await(context.Background())
		if err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
		if c.Done <= c.Admitted || c.QueueWait() < 0 {
			t.Errorf("job %d implausible record: %+v", i, c)
		}
	}
	if h.QueuedBytes() != 0 {
		t.Error("queued bytes left after the backlog drained")
	}
}

func TestAccessorsAndQueuedBytes(t *testing.T) {
	h, region := newHAL(t)
	if h.Device() == nil {
		t.Error("Device() nil")
	}
	if h.Params() == nil || h.Params().QPIBandwidth != 6.5e9 {
		t.Error("Params() wrong")
	}
	if h.QueuedBytes() != 0 {
		t.Error("fresh HAL has queued bytes")
	}
	p, _, _ := buildParams(t, region, `abc`, []string{"xxabc", "zzz", "abc"})
	j, err := h.Submit(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.QueuedBytes(); got != int64(j.Timing.TotalBytes()) {
		t.Errorf("QueuedBytes = %d, want %d", got, j.Timing.TotalBytes())
	}
	if _, err := h.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if h.QueuedBytes() != 0 {
		t.Error("QueuedBytes after the job completed")
	}
}

func TestStatusPoolGrowsAcrossSlabs(t *testing.T) {
	// One 16KB slab holds 256 status blocks; submitting more jobs than
	// that must roll over to a fresh slab without corrupting done bits.
	h, region := newHAL(t)
	p, _, _ := buildParams(t, region, `abc`, []string{"abc"})
	var jobs []*Job
	for i := 0; i < 300; i++ {
		j, err := h.Submit(p)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for i, j := range jobs {
		if !j.Done() {
			t.Fatalf("job %d lost its done bit", i)
		}
	}
}

func TestNewHALValidation(t *testing.T) {
	dev, _ := fpga.NewDevice(fpga.DefaultDeployment())
	if _, err := New(nil, dev); err == nil {
		t.Error("nil region accepted")
	}
	if _, err := New(shmem.NewRegion(1<<30), nil); err == nil {
		t.Error("nil device accepted")
	}
	// A region too small for the HAL's own structures fails cleanly.
	if _, err := New(shmem.NewRegion(4<<20), dev); err == nil {
		t.Error("region smaller than HAL structures accepted")
	}
}
