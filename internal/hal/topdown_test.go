package hal

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"doppiodb/internal/sim"
	"doppiodb/internal/topdown"
)

// The fabric-level half of the conservation invariant: across a 3-seed
// sweep of concurrent submitters (so rounds mix jobs from several engines
// and queues of different depths), the HAL's cumulative topdown ledgers
// stay exact — per-engine buckets sum to the walls, the link ledger does
// too — and every job's Completion buckets sum to their own wall. Run
// under -race this also exercises the ledgers' locking.
func TestTopdownConservationSweep(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			h, region := newHAL(t)
			defer h.Close()
			rng := rand.New(rand.NewSource(seed))
			type submitted struct {
				jobs []*Job
			}
			var batches []submitted
			for b := 0; b < 6; b++ {
				rows := make([]string, 50+rng.Intn(400))
				for i := range rows {
					rows[i] = fmt.Sprintf("row %d Strasse %d", i, rng.Intn(99999))
				}
				p, _, _ := buildParams(t, region, "Strasse", rows)
				engines := 1 + rng.Intn(h.Engines())
				var jobs []*Job
				for e := 0; e < engines; e++ {
					j, err := h.SubmitTo(e, p)
					if err != nil {
						t.Fatal(err)
					}
					jobs = append(jobs, j)
				}
				batches = append(batches, submitted{jobs})
			}
			var wg sync.WaitGroup
			for _, b := range batches {
				wg.Add(1)
				go func(jobs []*Job) {
					defer wg.Done()
					if err := h.Dispatch(jobs...); err != nil {
						t.Error(err)
						return
					}
					for _, j := range jobs {
						c, err := j.Await(context.Background())
						if err != nil {
							t.Error(err)
							return
						}
						if !c.Buckets.Conserved() {
							t.Errorf("engine %d job completion buckets not conserved: sum %v, wall %v",
								j.Engine, c.Buckets.Sum(), c.Buckets.Wall)
						}
						if c.Buckets.Idle != 0 {
							t.Errorf("engine %d job owns idle time %v; jobs must not", j.Engine, c.Buckets.Idle)
						}
					}
				}(b.jobs)
			}
			wg.Wait()
			rep := h.Topdown()
			if !rep.Conserved() {
				t.Errorf("fabric report not conserved: %+v", rep)
			}
			if rep.Rounds == 0 {
				t.Error("fabric report saw no rounds")
			}
			var busy sim.Time
			for _, e := range rep.Engines {
				busy += e.Buckets.Busy
			}
			if busy == 0 {
				t.Error("fabric report accumulated no busy cycles")
			}
			if rep.Link.Wall == 0 || !rep.Link.Conserved() {
				t.Errorf("link ledger bad: %+v", rep.Link)
			}
		})
	}
}

// An idle fabric reports an empty, trivially conserved topdown view.
func TestTopdownEmptyFabric(t *testing.T) {
	h, _ := newHAL(t)
	defer h.Close()
	rep := h.Topdown()
	if len(rep.Engines) != h.Engines() {
		t.Fatalf("engines = %d, want %d", len(rep.Engines), h.Engines())
	}
	if !rep.Conserved() {
		t.Error("empty fabric must conserve trivially")
	}
	if (rep.Total() != topdown.Buckets{}) {
		t.Errorf("empty fabric has cycles: %+v", rep.Total())
	}
}
