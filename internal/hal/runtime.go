// The asynchronous device runtime: a single event-loop goroutine owns the
// memory model and the simulated device clock, advances QPI arbitration
// round by round, and completes jobs individually. Dispatch hands a group
// of jobs (one query's partitions) to the scheduler as a unit; an
// admission layer bounds the jobs in flight per engine and keeps the rest
// in a FIFO backlog, so a burst of concurrent queries turns into queue
// delay — observable through QueuedBytes and fed to core.EstimateCost —
// instead of an unboundedly wide arbitration round.
//
// One round is one memmodel.Simulate call over the admitted jobs, started
// at the current epoch of the continuous simulated timeline. A lone
// query's round therefore contains exactly its own jobs, which keeps
// single-client timings bit-identical to the historical synchronous
// Drain. Per-job attribution (bytes, grants, switches, link-busy time)
// is collected by observing the arbiter's grant stream, so concurrent
// queries sharing a round each see only their own traffic.
package hal

import (
	"context"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/sim"
	"doppiodb/internal/topdown"
)

// DefaultAdmissionCap bounds the jobs one engine carries in a single
// arbitration round. A group whose jobs would push any engine past the cap
// waits in the FIFO backlog (the first group of a round is always admitted,
// so a group wider than the cap still runs).
const DefaultAdmissionCap = 4

// roundGap separates successive arbitration rounds on the recorder's
// continuous simulated timeline so their tracks never overlap.
const roundGap = 1 * sim.Microsecond

// Completion is the per-job completion record the runtime delivers through
// Job.Await. All times are on the continuous simulated timeline; the
// traffic fields count only this job's share of the round, so a query
// summing its own jobs never sees a concurrent query's bytes.
type Completion struct {
	// Enqueued is when Dispatch placed the job's group in the backlog.
	Enqueued sim.Time
	// Admitted is the start of the arbitration round that ran the job.
	Admitted sim.Time
	// Done is the job's completion (parametrization and any accrued
	// watchdog penalty included).
	Done sim.Time
	// Bytes, Grants and Switches are the QPI traffic the arbiter moved
	// for this job.
	Bytes    int64
	Grants   int64
	Switches int64
	// LinkBusy is the link service time of this job's grants.
	LinkBusy sim.Time
	// Buckets classifies the job's engine cycles (busy / stall-input /
	// stall-switch / stall-output / config); Wall is their sum — jobs do
	// not own their engine's idle tail. The per-query analyzer folds
	// these into the bottleneck verdict.
	Buckets topdown.Buckets
}

// QueueWait is the time the job's group spent in the backlog.
func (c Completion) QueueWait() sim.Time { return c.Admitted - c.Enqueued }

// HWTime is the hardware processing time: admission to completion.
func (c Completion) HWTime() sim.Time { return c.Done - c.Admitted }

// jobGroup is one Dispatch call's unit of admission: a query's partitions
// enter a round together or not at all, so a group's jobs always share an
// Admitted time and their relative completions stay comparable.
type jobGroup struct {
	jobs     []*Job
	enqueued sim.Time
	bytes    int64    // total data volume (admission byte cap accounting)
	deadline sim.Time // simulated abort point (0: none), from WithBudget
	admitted bool
	canceled bool
}

// Dispatch hands a group of submitted jobs to the device runtime as one
// admission unit and returns immediately; each job's Await delivers its
// completion record. The runtime's event loop starts lazily on the first
// dispatch. Dispatch ignores admission deadlines and never blocks on the
// backlog caps' block policy — DispatchContext is the overload-aware form.
func (h *HAL) Dispatch(jobs ...*Job) error {
	return h.DispatchContext(context.Background(), jobs...)
}

// publishBacklogLocked exports the backlog's current depth — waiting groups,
// their job count, and queued bytes — as gauges, tracks the high-water marks
// the overload experiments assert against the caps, and wakes dispatchers
// parked on the block policy. Caller holds h.mu.
func (h *HAL) publishBacklogLocked() {
	njobs := 0
	var bytes int64
	for _, g := range h.backlog {
		njobs += len(g.jobs)
		bytes += g.bytes
	}
	h.tel.Gauge("hal.backlog_groups").Set(int64(len(h.backlog)))
	h.tel.Gauge("hal.backlog_jobs").Set(int64(njobs))
	h.tel.Gauge("hal.backlog_bytes").Set(bytes)
	if n := int64(len(h.backlog)); n > h.peakGroups {
		h.peakGroups = n
		h.tel.Gauge("hal.backlog_peak_groups").Set(n)
	}
	if n := int64(njobs); n > h.peakJobs {
		h.peakJobs = n
		h.tel.Gauge("hal.backlog_peak_jobs").Set(n)
	}
	if bytes > h.peakBytes {
		h.peakBytes = bytes
		h.tel.Gauge("hal.backlog_peak_bytes").Set(bytes)
	}
	h.cond.Broadcast()
}

// Run dispatches jobs as one group and awaits every completion — the
// synchronous convenience the old submit→drain callers map onto.
func (h *HAL) Run(ctx context.Context, jobs ...*Job) ([]Completion, error) {
	if err := h.Dispatch(jobs...); err != nil {
		return nil, err
	}
	out := make([]Completion, len(jobs))
	for i, j := range jobs {
		c, err := j.Await(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Await blocks until the runtime completes the job and returns its
// completion record. If ctx is canceled while the job's group is still in
// the backlog (or the job was never dispatched), the whole group is aborted
// — its status blocks are freed and every sibling's Await reports
// ErrCanceled — and Await returns the context's error. A group already
// admitted to a round runs to completion (grants cannot be revoked
// mid-round); its record is then returned normally. A job aborted by the
// runtime reports the typed cause: ErrClosed after Close, ErrDeadlineExceeded
// for an overdue group, ErrCanceled otherwise.
func (j *Job) Await(ctx context.Context) (Completion, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		if j.hal.abandonJob(j) {
			return Completion{}, ctx.Err()
		}
		<-j.done
	}
	if j.canceled {
		if j.failErr != nil {
			return Completion{}, j.failErr
		}
		return Completion{}, ErrCanceled
	}
	return j.comp, nil
}

// abandonJob aborts a job whose awaiter gave up: a group still waiting in
// the backlog is canceled whole — jobs marked canceled, status blocks
// freed, every sibling's awaiter released — and a submitted-but-never-
// dispatched job is released like a Discard (the historical path hung
// forever here waiting on a done channel nothing would close). Returns
// false when the job was already admitted, finished, or canceled: the
// runtime owns its done channel and the caller keeps waiting.
func (h *HAL) abandonJob(j *Job) bool {
	h.mu.Lock()
	if j.finished || j.canceled {
		h.mu.Unlock()
		return false
	}
	g := j.group
	if g == nil {
		h.releaseJobsLocked([]*Job{j}, ErrCanceled)
		h.mu.Unlock()
		close(j.done)
		return true
	}
	if g.admitted || g.canceled {
		h.mu.Unlock()
		return false
	}
	g.canceled = true
	for i, b := range h.backlog {
		if b == g {
			h.backlog = append(h.backlog[:i], h.backlog[i+1:]...)
			break
		}
	}
	h.releaseJobsLocked(g.jobs, ErrCanceled)
	h.publishBacklogLocked()
	h.mu.Unlock()
	for _, sib := range g.jobs {
		close(sib.done)
	}
	return true
}

// releaseJobsLocked undoes the submit-time reservations of jobs that will
// never run a round: status blocks return to the pool, the distributor's
// volume accounting and the descriptor-queue occupancy shrink. Each job's
// Await will report cause (an errors.Is-able sentinel: ErrCanceled,
// ErrClosed, or ErrDeadlineExceeded). Caller holds h.mu.
func (h *HAL) releaseJobsLocked(jobs []*Job, cause error) {
	for _, j := range jobs {
		j.canceled = true
		j.failErr = cause
		h.freeBlockLocked(j.statusAddr, j.poolOff)
		h.queueLen--
		h.queuedVol[j.Engine] -= int64(j.Timing.TotalBytes())
		h.rec.Record(flightrec.Event{
			Type:   flightrec.EvJobCancel,
			Sim:    h.simEpoch,
			Engine: j.Engine,
			Unit:   -1,
			Job:    j.seq,
		})
	}
	h.tel.Gauge("hal.queue_depth").Set(int64(h.queueLen))
}

// Discard releases submitted jobs that were never dispatched (a query that
// failed between partition submits). Dispatched jobs are ignored — cancel
// those through Await's context.
func (h *HAL) Discard(jobs ...*Job) {
	h.mu.Lock()
	var victims []*Job
	for _, j := range jobs {
		if j == nil || j.group != nil || j.finished || j.canceled {
			continue
		}
		victims = append(victims, j)
	}
	h.releaseJobsLocked(victims, ErrCanceled)
	h.mu.Unlock()
	for _, j := range victims {
		close(j.done)
	}
}

// Pause suspends admission: dispatched groups accumulate in the backlog
// until Resume. A round already running completes normally. Tests use the
// pair to observe queue buildup deterministically.
func (h *HAL) Pause() {
	h.mu.Lock()
	h.paused = true
	h.mu.Unlock()
}

// Resume reopens admission and wakes the event loop.
func (h *HAL) Resume() {
	h.mu.Lock()
	h.paused = false
	h.cond.Broadcast()
	h.mu.Unlock()
}

// Close shuts the runtime down: every group still in the backlog is
// canceled (awaiters unblock with ErrClosed) and the event loop exits
// after any in-flight round. Further Dispatch and Submit calls fail with
// ErrClosed. Close is idempotent.
func (h *HAL) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	groups := h.backlog
	h.backlog = nil
	var victims []*Job
	for _, g := range groups {
		g.canceled = true
		victims = append(victims, g.jobs...)
	}
	h.releaseJobsLocked(victims, ErrClosed)
	h.publishBacklogLocked()
	h.cond.Broadcast()
	h.mu.Unlock()
	for _, j := range victims {
		close(j.done)
	}
}

// loop is the device runtime's event loop: wait for backlogged work, abort
// overdue groups, admit a round, simulate it, deliver completions, repeat.
// Exactly one loop goroutine runs per HAL; it alone advances simEpoch.
func (h *HAL) loop() {
	for {
		h.mu.Lock()
		for !h.closed && (h.paused || len(h.backlog) == 0) {
			h.cond.Wait()
		}
		if h.closed {
			h.mu.Unlock()
			return
		}
		expired := h.expireLocked()
		queues, jobs, admitted := h.admitLocked()
		epoch := h.simEpoch
		params := h.params
		h.mu.Unlock()
		for _, j := range expired {
			close(j.done)
		}
		if admitted > 0 {
			h.runRound(epoch, params, queues, jobs)
		}
	}
}

// admitLocked moves backlogged groups into the next round, FIFO, until the
// per-engine admission cap would be exceeded. The head group is always
// admitted. Caller holds h.mu.
func (h *HAL) admitLocked() (queues [][]memmodel.Job, jobs [][]*Job, admitted int) {
	queues = make([][]memmodel.Job, len(h.engines))
	jobs = make([][]*Job, len(h.engines))
	load := make([]int, len(h.engines))
	for len(h.backlog) > 0 {
		g := h.backlog[0]
		if g.canceled {
			h.backlog = h.backlog[1:]
			continue
		}
		if admitted > 0 && !h.fitsRound(load, g) {
			break
		}
		for _, j := range g.jobs {
			load[j.Engine]++
			queues[j.Engine] = append(queues[j.Engine], j.Timing)
			jobs[j.Engine] = append(jobs[j.Engine], j)
			h.rec.Record(flightrec.Event{
				Type:   flightrec.EvJobAdmit,
				Sim:    h.simEpoch,
				Engine: j.Engine,
				Unit:   -1,
				Job:    j.seq,
				Arg:    int64((h.simEpoch - g.enqueued) / sim.Nanosecond),
			})
		}
		g.admitted = true
		admitted += len(g.jobs)
		h.backlog = h.backlog[1:]
	}
	h.publishBacklogLocked()
	return queues, jobs, admitted
}

// fitsRound reports whether admitting group g keeps every engine at or
// under the admission cap given the load already admitted.
func (h *HAL) fitsRound(load []int, g *jobGroup) bool {
	extra := make([]int, len(load))
	for _, j := range g.jobs {
		extra[j.Engine]++
		if load[j.Engine]+extra[j.Engine] > h.admitCap {
			return false
		}
	}
	return true
}

// runRound executes one arbitration round: the deterministic QPI/engine
// simulation over the admitted queues, per-job attribution and completion
// stamping, status scrubbing, flight-recorder timelines, round telemetry,
// and the epoch advance. It mirrors the historical Drain exactly for a
// round holding a single query's jobs.
func (h *HAL) runRound(epoch sim.Time, params memmodel.Params, queues [][]memmodel.Job, jobs [][]*Job) {
	if f := h.inj.QPIFactor(); f > 0 {
		// Degraded link: the round completes, just slower.
		params.QPIBandwidth *= f
		h.tel.Counter("hal.faults.qpi_degraded").Inc()
	}
	// The flight recorder observes the simulation (grant bursts, phase
	// switches); the attribution observer charges the same stream to the
	// job each grant served.
	var mobs *flightrec.MemObserver
	if h.rec != nil {
		mobs = flightrec.NewMemObserver(h.rec, epoch)
	}
	att := newAttribution(queues, params.LineBytes, mobs)
	params.Trace = att
	res := memmodel.Simulate(params, queues)
	if mobs != nil {
		mobs.Flush()
	}

	var completed []*Job
	h.mu.Lock()
	for e := range jobs {
		for k, j := range jobs[e] {
			j.completed = res.Done[e][k] + ParametrizeTime + j.penalty
			a := att.per[e][k]
			pj := res.PerJob[e][k]
			buckets := topdown.Buckets{
				Busy:        pj.Busy,
				StallInput:  pj.StallInput,
				StallSwitch: pj.StallSwitch,
				StallOutput: pj.StallOutput,
				Config:      ParametrizeTime,
			}
			buckets.Wall = buckets.Sum()
			j.comp = Completion{
				Enqueued: j.group.enqueued,
				Admitted: epoch,
				Done:     epoch + j.completed,
				Bytes:    a.bytes,
				Grants:   a.grants,
				Switches: a.switches,
				LinkBusy: a.busy,
				Buckets:  buckets,
			}
			j.finished = true
			h.queueWait.Observe(int64(j.comp.QueueWait() / sim.Nanosecond))
			h.scrubStatusLocked(j)
			if mobs != nil {
				start, end, ok := mobs.JobWindow(e, k)
				if !ok {
					start, end = 0, j.completed-j.penalty
				}
				h.recordJobTimelineLocked(e, j, start, end)
			}
			h.queueLen--
			h.queuedVol[e] -= int64(j.Timing.TotalBytes())
			completed = append(completed, j)
		}
	}
	// Fold the round's cycle ledgers into the fabric's cumulative topdown
	// accounting. The per-job parametrization load is the engine's config
	// bucket; it extends the engine's wall beyond the shared simulation
	// span, so conservation stays exact per engine by construction.
	var roundTotal topdown.Buckets
	for e, led := range res.Engines {
		cfg := sim.Time(len(jobs[e])) * ParametrizeTime
		b := topdown.Buckets{
			Busy:        led.Busy,
			StallInput:  led.StallInput,
			StallSwitch: led.StallSwitch,
			StallOutput: led.StallOutput,
			Config:      cfg,
			Idle:        led.Idle,
			Wall:        led.Wall + cfg,
		}
		h.tdEngines[e].Add(b)
		roundTotal.Add(b)
		if h.rec != nil && b.Wall > 0 {
			h.rec.Record(flightrec.Event{
				Type: flightrec.EvUtilSample, Sim: epoch, Dur: b.Wall,
				Engine: e, Unit: -1,
				Vals: []int64{
					int64(b.Busy * 10000 / b.Wall),
					int64(b.StallInput * 10000 / b.Wall),
					int64(b.StallSwitch * 10000 / b.Wall),
					int64(b.StallOutput * 10000 / b.Wall),
					int64(b.Config * 10000 / b.Wall),
					int64(b.Idle * 10000 / b.Wall),
				},
			})
		}
	}
	link := topdown.LinkBuckets{
		Busy:        res.Link.Busy,
		Arbitration: res.Link.Arbitration,
		Idle:        res.Link.Idle,
		Wall:        res.Link.Wall,
	}
	h.tdLink.Add(link)
	h.tdRounds++
	if h.rec != nil && link.Wall > 0 {
		h.rec.Record(flightrec.Event{
			Type: flightrec.EvUtilSample, Sim: epoch, Dur: link.Wall,
			Engine: -1, Unit: -1,
			Vals: []int64{
				int64(link.Busy * 10000 / link.Wall),
				int64(link.Arbitration * 10000 / link.Wall),
				int64(link.Idle * 10000 / link.Wall),
			},
		})
	}

	if res.Finish > 0 {
		// Advance the continuous timeline so the next round renders after
		// this one (the gap marks the round boundary in the trace).
		h.simEpoch += res.Finish + ParametrizeTime + roundGap
	}

	// QPI / arbiter telemetry from the timing simulation.
	h.tel.Counter("qpi.bytes").Add(res.BytesMoved)
	h.tel.Counter("qpi.busy_ns").Add(int64(res.BusyTime / sim.Nanosecond))
	h.tel.Counter("qpi.grants").Add(res.Grants)
	h.tel.Counter("qpi.switch_events").Add(res.Switches)
	// Basis points, not truncated integer percent: a lone engine's ~90.6%
	// link utilization must survive as 9063, and a near-idle round must
	// not read as zero. Exporters render the derived percent view.
	h.tel.Gauge("qpi.utilization_bp").Set(int64(res.Utilization() * 10000))
	// Topdown counters, picosecond resolution so the cross-round
	// conservation check stays exact after the counter round-trip.
	h.tel.Counter("topdown.busy_ps").Add(int64(roundTotal.Busy))
	h.tel.Counter("topdown.stall_input_ps").Add(int64(roundTotal.StallInput))
	h.tel.Counter("topdown.stall_switch_ps").Add(int64(roundTotal.StallSwitch))
	h.tel.Counter("topdown.stall_output_ps").Add(int64(roundTotal.StallOutput))
	h.tel.Counter("topdown.config_ps").Add(int64(roundTotal.Config))
	h.tel.Counter("topdown.idle_ps").Add(int64(roundTotal.Idle))
	h.tel.Counter("topdown.wall_ps").Add(int64(roundTotal.Wall))
	h.tel.Counter("topdown.link.busy_ps").Add(int64(link.Busy))
	h.tel.Counter("topdown.link.arbitration_ps").Add(int64(link.Arbitration))
	h.tel.Counter("topdown.link.idle_ps").Add(int64(link.Idle))
	h.tel.Counter("topdown.link.wall_ps").Add(int64(link.Wall))
	h.tel.Counter("topdown.rounds").Inc()
	if link.Wall > 0 {
		h.tel.Gauge("topdown.link.utilization_bp").Set(int64(link.Busy * 10000 / link.Wall))
	}
	if res.Grants > 0 && h.params.LineBytes > 0 {
		// Batch efficiency: lines actually moved per grant vs. the
		// arbiter's full batch of GrantLines.
		lines := res.BytesMoved / int64(h.params.LineBytes)
		h.tel.Gauge("qpi.batch_efficiency_pct").Set(
			100 * lines / (res.Grants * int64(h.params.GrantLines)))
	}
	h.tel.Gauge("hal.queue_depth").Set(int64(h.queueLen))
	h.mu.Unlock()
	for _, j := range completed {
		close(j.done)
	}
}

// jobAttr accumulates one job's share of a round's arbiter activity.
type jobAttr struct {
	bytes, grants, switches int64
	busy                    sim.Time
}

// attribution satisfies memmodel.Observer: it tracks which job each engine
// is currently serving and charges every grant and phase switch to it,
// forwarding the stream to the flight recorder's observer. The arbiter
// charges the inter-job switch stall to the job entering the engine (it
// pays the entry turn), matching how a query experiences it.
type attribution struct {
	lineBytes int64
	cur       []int
	per       [][]jobAttr
	fwd       *flightrec.MemObserver
}

func newAttribution(queues [][]memmodel.Job, lineBytes int, fwd *flightrec.MemObserver) *attribution {
	a := &attribution{
		lineBytes: int64(lineBytes),
		cur:       make([]int, len(queues)),
		per:       make([][]jobAttr, len(queues)),
		fwd:       fwd,
	}
	for e, q := range queues {
		a.per[e] = make([]jobAttr, len(q))
	}
	return a
}

// at returns engine e's current job accumulator (clamped, so a trailing
// callback after the last job charges the last job).
func (a *attribution) at(e int) *jobAttr {
	if len(a.per[e]) == 0 {
		return &jobAttr{}
	}
	k := a.cur[e]
	if k >= len(a.per[e]) {
		k = len(a.per[e]) - 1
	}
	return &a.per[e][k]
}

func (a *attribution) JobStart(e, k int, at sim.Time) {
	a.cur[e] = k
	if a.fwd != nil {
		a.fwd.JobStart(e, k, at)
	}
}

func (a *attribution) JobDone(e, k int, at sim.Time) {
	a.cur[e] = k + 1 // boundary activity belongs to the next job
	if a.fwd != nil {
		a.fwd.JobDone(e, k, at)
	}
}

func (a *attribution) Grant(e int, lines int64, start, end sim.Time) {
	j := a.at(e)
	j.bytes += lines * a.lineBytes
	j.grants++
	j.busy += end - start
	if a.fwd != nil {
		a.fwd.Grant(e, lines, start, end)
	}
}

func (a *attribution) PhaseSwitch(e int, at sim.Time) {
	a.at(e).switches++
	if a.fwd != nil {
		a.fwd.PhaseSwitch(e, at)
	}
}
