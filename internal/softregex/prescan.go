package softregex

import (
	"doppiodb/internal/regex"
	"doppiodb/internal/strmatch"
)

// Start optimization (PCRE calls this "first character / required literal"
// optimization): when every match of the pattern begins with a fixed
// literal prefix, the matcher can skip to occurrences of that prefix with
// Boyer-Moore instead of attempting a backtracking match at every offset.
// This is the optimization whose absence makes our QH baseline slower than
// the authors' PCRE (see EXPERIMENTS.md on Figure 13); it is off by
// default so the calibrated cost model stays anchored to the measured
// behaviour, and the ablation quantifies what it buys.

// SetStartOptimization toggles the literal-prefix prescan. It returns the
// prefix in use ("" when the pattern has no required literal prefix, in
// which case the setting has no effect).
func (b *Backtracker) SetStartOptimization(on bool) string {
	if !on {
		b.prescan = nil
		return ""
	}
	lit := RequiredLiteralPrefix(b.ast)
	if len(lit) < 2 || b.fold {
		// One byte does not pay for a BM pass; folded patterns would
		// need a case-folded search — keep it simple and skip.
		return ""
	}
	b.prescan = strmatch.NewBoyerMoore([]byte(lit), false)
	b.prefixLen = len(lit)
	return lit
}

// RequiredLiteralPrefix computes the longest literal every match of the
// (desugared) AST must start with.
func RequiredLiteralPrefix(n *regex.Node) string {
	lit, _ := prefixOf(n)
	return lit
}

// prefixOf returns the mandatory literal prefix of n and whether the whole
// of n is exactly that literal (so a following sibling can extend it).
func prefixOf(n *regex.Node) (string, bool) {
	switch n.Op {
	case regex.OpLit:
		return string([]byte{n.Lit}), true
	case regex.OpConcat:
		var out []byte
		for _, s := range n.Subs {
			p, complete := prefixOf(s)
			out = append(out, p...)
			if !complete {
				return string(out), false
			}
		}
		return string(out), true
	case regex.OpAlt:
		if len(n.Subs) == 0 {
			return "", false
		}
		common, _ := prefixOf(n.Subs[0])
		for _, s := range n.Subs[1:] {
			p, _ := prefixOf(s)
			common = commonPrefix(common, p)
			if common == "" {
				return "", false
			}
		}
		// An alternation never counts as "complete": branches may
		// diverge after the common prefix.
		return common, false
	case regex.OpPlus:
		// X+ must start with X's prefix (one mandatory occurrence).
		p, _ := prefixOf(n.Subs[0])
		return p, false
	case regex.OpBegin:
		return "", true // zero-width, keep scanning siblings
	}
	// Classes, `.`, Star, Quest, Repeat{0,..}, End: no fixed byte.
	return "", false
}

func commonPrefix(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}
