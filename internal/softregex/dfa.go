package softregex

import (
	"fmt"
	"sort"
)

// DFA is a lazily determinized automaton over the Thompson NFA: each subset
// of NFA states seen during matching becomes one DFA state, and transitions
// are filled in on first use. Matching is then a single table lookup per
// byte — the per-byte speed §8.2 credits DFAs with — but the number of
// constructed states can explode with pattern complexity (the
// state-explosion problem of [41]), which States() exposes and the ablation
// bench measures.
type DFA struct {
	nfa      *Thompson
	states   []*dState
	cache    map[string]int
	start    int
	maxState int
}

type dState struct {
	nfaSet []int // sorted NFA state ids (tByte states only, plus match marker)
	match  bool
	next   [256]int32 // -1: not yet built
}

// matchMarker flags a subset containing the accept state.
const matchMarker = -1

// DefaultDFAStateLimit caps lazy construction; exceeding it returns
// ErrDFAExploded so callers can fall back to the NFA, as production engines
// do.
const DefaultDFAStateLimit = 1 << 14

// ErrDFAExploded reports that determinization exceeded the state budget.
var ErrDFAExploded = fmt.Errorf("softregex: DFA exceeded %d states (state explosion)", DefaultDFAStateLimit)

// NewDFA builds a lazy DFA for the pattern.
func NewDFA(pattern string, foldCase bool) (*DFA, error) {
	nfa, err := NewThompson(pattern, foldCase)
	if err != nil {
		return nil, err
	}
	d := &DFA{
		nfa:      nfa,
		cache:    make(map[string]int),
		maxState: DefaultDFAStateLimit,
	}
	// DFA determinization cannot honor position assertions lazily per
	// subset without tagging; anchors are resolved by including `at`
	// sensitivity only at the boundaries (offset 0 handled by the start
	// state, end-of-input by a final check). Interior anchors were
	// already rejected upstream.
	start, err := d.subsetFor(d.closure([]int{nfa.start}, true, false))
	if err != nil {
		return nil, err
	}
	d.start = start
	return d, nil
}

// States returns the number of DFA states constructed so far.
func (d *DFA) States() int { return len(d.states) }

// SetStateLimit overrides the lazy-construction budget (tests and callers
// that want an earlier fallback to the NFA).
func (d *DFA) SetStateLimit(n int) { d.maxState = n }

// Source returns the original pattern.
func (d *DFA) Source() string { return d.nfa.Source() }

// closure expands an NFA state set through epsilon transitions. atStart and
// atEnd resolve ^ and $ assertions.
func (d *DFA) closure(seed []int, atStart, atEnd bool) []int {
	seen := make(map[int]bool)
	var out []int
	var walk func(st int)
	walk = func(st int) {
		if st < 0 || seen[st] {
			return
		}
		seen[st] = true
		sd := &d.nfa.states[st]
		switch sd.op {
		case tSplit:
			walk(sd.out)
			walk(sd.out1)
		case tBegin:
			if atStart {
				walk(sd.out)
			}
		case tEnd:
			if atEnd {
				walk(sd.out)
			} else {
				// Keep the pending end assertion in the subset
				// so it can be resolved when input runs out.
				out = append(out, st)
			}
		case tMatch:
			out = append(out, matchMarker)
		case tByte:
			out = append(out, st)
		}
	}
	for _, s := range seed {
		walk(s)
	}
	sort.Ints(out)
	return dedupInts(out)
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func subsetKey(set []int) string {
	b := make([]byte, 0, len(set)*3)
	for _, s := range set {
		b = append(b, byte(s), byte(s>>8), byte(s>>16))
	}
	return string(b)
}

func (d *DFA) subsetFor(set []int) (int, error) {
	key := subsetKey(set)
	if id, ok := d.cache[key]; ok {
		return id, nil
	}
	if len(d.states) >= d.maxState {
		return 0, fmt.Errorf("%w (limit %d)", ErrDFAExploded, d.maxState)
	}
	ds := &dState{nfaSet: set}
	for i := range ds.next {
		ds.next[i] = -1
	}
	for _, s := range set {
		if s == matchMarker {
			ds.match = true
		}
	}
	d.states = append(d.states, ds)
	id := len(d.states) - 1
	d.cache[key] = id
	return id, nil
}

// step computes (building if needed) the successor of state id on byte b.
// Unanchored search folds the NFA start state into every subset.
func (d *DFA) step(id int, b byte) (int, error) {
	ds := d.states[id]
	if nxt := ds.next[b]; nxt >= 0 {
		return int(nxt), nil
	}
	var seed []int
	for _, s := range ds.nfaSet {
		if s == matchMarker {
			continue
		}
		sd := &d.nfa.states[s]
		if sd.op != tByte {
			continue // pending end assertion: consumes nothing
		}
		if sd.node.MatchesByte(b, d.nfa.fold) {
			seed = append(seed, sd.out)
		}
	}
	// Re-arm the unanchored start.
	set := d.closure(append(seed, d.nfa.start), false, false)
	nxt, err := d.subsetFor(set)
	if err != nil {
		return 0, err
	}
	ds.next[b] = int32(nxt)
	return nxt, nil
}

// Match searches s and returns the 1-based earliest match end (0 if none)
// and the bytes consumed. ErrDFAExploded is returned when lazy construction
// blows the state budget.
func (d *DFA) Match(s []byte) (pos int, bytes uint64, err error) {
	id := d.start
	for i := 0; i < len(s); i++ {
		id, err = d.step(id, s[i])
		if err != nil {
			return 0, uint64(i), err
		}
		if d.states[id].match {
			return i + 1, uint64(i + 1), nil
		}
	}
	// Resolve pending $ assertions now that the input has ended.
	var pending []int
	for _, st := range d.states[id].nfaSet {
		if st != matchMarker && d.nfa.states[st].op == tEnd {
			pending = append(pending, st)
		}
	}
	final := d.closure(pending, false, true)
	for _, st := range final {
		if st == matchMarker {
			return len(s), uint64(len(s)), nil
		}
	}
	return 0, uint64(len(s)), nil
}

// MatchString is Match over a string.
func (d *DFA) MatchString(s string) (int, uint64, error) {
	return d.Match([]byte(s))
}
