package softregex

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"doppiodb/internal/token"
)

func TestBacktrackerBasics(t *testing.T) {
	cases := []struct {
		pat, in string
		match   bool
	}{
		{`Strasse`, "Koblenzer Strasse 44", true},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Str. 80001 Muenchen", true},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Weg 80001 Muenchen", false},
		{`[0-9]+(USD|EUR|GBP)`, "pay 42GBP", true},
		{`[0-9]+(USD|EUR|GBP)`, "pay GBP", false},
		{`[A-Za-z]{3}\:[0-9]{4}`, "id abc:9999!", true},
		{`^abc$`, "abc", true},
		{`^abc$`, "xabc", false},
		{`a.*b.*c`, "azzbzzc", true},
		{`a.*b.*c`, "azzczzb", false},
	}
	for _, c := range cases {
		b, err := NewBacktracker(c.pat, false)
		if err != nil {
			t.Fatalf("compile %q: %v", c.pat, err)
		}
		pos, steps := b.MatchString(c.in)
		if (pos != 0) != c.match {
			t.Errorf("backtracker %q on %q: pos=%d, want match=%v", c.pat, c.in, pos, c.match)
		}
		if steps == 0 {
			t.Errorf("backtracker %q reported zero steps", c.pat)
		}
	}
}

func TestBacktrackerComplexityCost(t *testing.T) {
	// PCRE-like behaviour: a complex pattern with wildcards costs far
	// more steps than a plain literal on the same non-matching input —
	// the effect behind Table 1's LIKE vs REGEXP_LIKE gap.
	in := strings.Repeat("John|Smith|44 Koblenzer Weg|60327|", 2)
	lit, _ := NewBacktracker(`Strasse`, false)
	cplx, _ := NewBacktracker(`(Strasse|Str\.).*(8[0-9]{4}).*delivery`, false)
	_, s1 := lit.MatchString(in)
	_, s2 := cplx.MatchString(in)
	if s2 < 2*s1 {
		t.Errorf("complex pattern steps %d not ≫ literal steps %d", s2, s1)
	}
}

func TestThompsonPositions(t *testing.T) {
	cases := []struct {
		pat, in string
		want    int
	}{
		{`abc`, "xxabcy", 5},
		{`(a|b).*c`, "zazzc", 5},
		{`a+`, "xaaa", 2}, // earliest end
		{`^ab`, "ab", 2},
		{`^ab`, "xab", 0},
		{`ab$`, "xab", 3},
		{`ab$`, "abx", 0},
		{`a.*z$`, "a12z", 4},
	}
	for _, c := range cases {
		th, err := NewThompson(c.pat, false)
		if err != nil {
			t.Fatal(err)
		}
		pos, work := th.MatchString(c.in)
		if pos != c.want {
			t.Errorf("thompson %q on %q = %d, want %d", c.pat, c.in, pos, c.want)
		}
		if work == 0 {
			t.Errorf("thompson %q zero work", c.pat)
		}
	}
}

func TestDFAPositions(t *testing.T) {
	cases := []struct {
		pat, in string
		want    int
	}{
		{`abc`, "xxabcy", 5},
		{`(a|b).*c`, "zazzc", 5},
		{`ab$`, "xab", 3},
		{`ab$`, "abx", 0},
		{`^a.*z$`, "a12z", 4},
		{`^a.*z$`, "ba12z", 0},
	}
	for _, c := range cases {
		d, err := NewDFA(c.pat, false)
		if err != nil {
			t.Fatal(err)
		}
		pos, _, err := d.MatchString(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if pos != c.want {
			t.Errorf("dfa %q on %q = %d, want %d", c.pat, c.in, pos, c.want)
		}
	}
}

func TestDFAStateGrowth(t *testing.T) {
	// Determinizing an expression with interleaved wildcards builds
	// measurably more states than a literal — the state-explosion
	// tendency the paper cites as the DFA drawback.
	lit, _ := NewDFA(`Strasse`, false)
	cplx, _ := NewDFA(`(Strasse|Str\.).*(8[0-9]{4}).*(USD|EUR|GBP)`, false)
	inputs := []string{
		"John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
		"Meier|Str. 80001|Muenchen 100USD",
		"aaaaStrStrasse80000EUR",
	}
	for _, in := range inputs {
		lit.MatchString(in)
		cplx.MatchString(in)
	}
	if cplx.States() <= lit.States() {
		t.Errorf("complex DFA states %d not > literal %d", cplx.States(), lit.States())
	}
}

func TestEnginesAgreeProperty(t *testing.T) {
	// Backtracker (boolean), Thompson and DFA (positions) must agree
	// with the hardware token automaton on random patterns.
	r := rand.New(rand.NewSource(23))
	atoms := []string{"a", "b", "[ab]", "c", "."}
	var build func(d int) string
	build = func(d int) string {
		if d == 0 {
			return atoms[r.Intn(len(atoms))]
		}
		switch r.Intn(7) {
		case 0:
			return build(d-1) + build(d-1)
		case 1:
			return "(" + build(d-1) + "|" + build(d-1) + ")"
		case 2:
			return "(" + build(d-1) + ")+"
		case 3:
			return build(d-1) + ".*" + build(d-1)
		case 4:
			return "(" + build(d-1) + ")?" + build(d-1)
		default:
			return build(d - 1)
		}
	}
	for i := 0; i < 300; i++ {
		pat := build(3)
		if r.Intn(5) == 0 {
			pat = "^" + pat
		}
		if r.Intn(5) == 0 {
			pat += "$"
		}
		prog, err := token.CompilePattern(pat, token.Options{})
		if err != nil {
			continue // e.g. empty-matching patterns
		}
		bt, err := NewBacktracker(pat, false)
		if err != nil {
			t.Fatalf("backtracker %q: %v", pat, err)
		}
		th, err := NewThompson(pat, false)
		if err != nil {
			t.Fatalf("thompson %q: %v", pat, err)
		}
		df, err := NewDFA(pat, false)
		if err != nil {
			t.Fatalf("dfa %q: %v", pat, err)
		}
		for k := 0; k < 25; k++ {
			var sb strings.Builder
			for j := 0; j < r.Intn(14); j++ {
				sb.WriteByte("abcx"[r.Intn(4)])
			}
			in := sb.String()
			want := prog.MatchString(in)
			btPos, _ := bt.MatchString(in)
			thPos, _ := th.MatchString(in)
			dfPos, _, dfErr := df.MatchString(in)
			if dfErr != nil {
				t.Fatalf("dfa %q on %q: %v", pat, in, dfErr)
			}
			if (btPos != 0) != (want != 0) {
				t.Fatalf("%q on %q: backtracker=%d token=%d", pat, in, btPos, want)
			}
			if thPos != want {
				t.Fatalf("%q on %q: thompson=%d token=%d", pat, in, thPos, want)
			}
			if dfPos != want {
				t.Fatalf("%q on %q: dfa=%d token=%d", pat, in, dfPos, want)
			}
		}
	}
}

func TestFoldCaseEngines(t *testing.T) {
	for _, pat := range []string{`strasse`, `[a-f]+x`} {
		bt, _ := NewBacktracker(pat, true)
		th, _ := NewThompson(pat, true)
		df, _ := NewDFA(pat, true)
		in := "zzSTRASSEzzDEADBEEFXzz"
		p1, _ := bt.MatchString(in)
		p2, _ := th.MatchString(in)
		p3, _, _ := df.MatchString(in)
		if p1 == 0 || p2 == 0 || p3 == 0 {
			t.Errorf("folded %q: bt=%d th=%d dfa=%d", pat, p1, p2, p3)
		}
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	for _, mk := range []func() error{
		func() error { _, err := NewBacktracker(`(`, false); return err },
		func() error { _, err := NewThompson(`(`, false); return err },
		func() error { _, err := NewDFA(`(`, false); return err },
	} {
		if mk() == nil {
			t.Error("invalid pattern accepted")
		}
	}
}

func BenchmarkBacktrackerComplex64B(b *testing.B) {
	bt, _ := NewBacktracker(`(Strasse|Str\.).*(8[0-9]{4})`, false)
	in := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		bt.Match(in)
	}
}

func BenchmarkThompsonComplex64B(b *testing.B) {
	th, _ := NewThompson(`(Strasse|Str\.).*(8[0-9]{4})`, false)
	in := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		th.Match(in)
	}
}

func BenchmarkDFAComplex64B(b *testing.B) {
	df, _ := NewDFA(`(Strasse|Str\.).*(8[0-9]{4})`, false)
	in := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		df.Match(in)
	}
}

func TestDFAExplosionFallback(t *testing.T) {
	// With a tiny state budget, determinization fails with
	// ErrDFAExploded and callers can fall back to the NFA.
	d, err := NewDFA(`(a|b).*(c|d).*(e|f)`, false)
	if err != nil {
		t.Fatal(err)
	}
	d.SetStateLimit(2)
	_, _, err = d.MatchString("abcdefabcdefabcdef")
	if err == nil {
		t.Fatal("no explosion with a 2-state budget")
	}
	if !errors.Is(err, ErrDFAExploded) {
		t.Errorf("err = %v, want ErrDFAExploded", err)
	}
	// The Thompson NFA handles the same input fine.
	th, _ := NewThompson(`(a|b).*(c|d).*(e|f)`, false)
	if pos, _ := th.MatchString("abcdefabcdef"); pos == 0 {
		t.Error("NFA fallback failed")
	}
}

func TestSourceAccessors(t *testing.T) {
	bt, _ := NewBacktracker(`ab`, false)
	th, _ := NewThompson(`ab`, false)
	d, _ := NewDFA(`ab`, false)
	if bt.Source() != "ab" || th.Source() != "ab" || d.Source() != "ab" {
		t.Error("Source accessors wrong")
	}
	if th.NumStates() <= 0 {
		t.Error("NumStates")
	}
}
