// Package softregex is the software regular-expression substrate standing
// in for PCRE, the library MonetDB's REGEXP_LIKE uses (§4.1). Three engines
// are provided:
//
//   - Backtracker — a recursive backtracking matcher with PCRE-like cost
//     behaviour: work grows with pattern complexity, and wildcards force
//     rescanning. This is what the CPU baselines in the evaluation run.
//   - Thompson — an NFA simulation with linear-time guarantees, one of the
//     alternatives §8.2 discusses.
//   - DFA — a lazily constructed deterministic automaton, fast per byte but
//     subject to the state-explosion problem the paper cites ([41]).
//
// All engines implement unanchored search with the same byte-wise dialect
// as internal/regex and report the work they performed so the calibrated
// performance model can convert it into simulated CPU time.
package softregex

import (
	"doppiodb/internal/regex"
	"doppiodb/internal/strmatch"
)

// Backtracker is a compiled backtracking matcher.
type Backtracker struct {
	ast  *regex.Node
	fold bool
	src  string
	// prescan, when set by SetStartOptimization, skips to occurrences
	// of the pattern's required literal prefix before attempting a
	// match.
	prescan   *strmatch.BoyerMoore
	prefixLen int
}

// NewBacktracker parses and compiles a pattern.
func NewBacktracker(pattern string, foldCase bool) (*Backtracker, error) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	return &Backtracker{ast: regex.Desugar(ast), fold: foldCase, src: pattern}, nil
}

// Source returns the original pattern.
func (b *Backtracker) Source() string { return b.src }

// Match searches s for the pattern. It returns the 1-based end position of
// the leftmost match (0 when there is none) and the number of backtracking
// steps performed — the work metric the perf model consumes.
func (b *Backtracker) Match(s []byte) (pos int, steps uint64) {
	m := &btRun{s: s, fold: b.fold}
	// A leading ^ pins the single start position.
	starts := len(s) + 1
	if hasLeadingBegin(b.ast) {
		starts = 1
	}
	if b.prescan != nil && starts > 1 {
		// Start optimization: only offsets where the required literal
		// prefix occurs can begin a match.
		for start := 0; start < starts; {
			at := b.prescan.Find(s, start)
			if at < 0 {
				return 0, m.steps
			}
			end := -1
			if m.try(b.ast, at, func(e int) bool { end = e; return true }) {
				return end, m.steps
			}
			start = at + 1
		}
		return 0, m.steps
	}
	for start := 0; start < starts; start++ {
		end := -1
		if m.try(b.ast, start, func(e int) bool { end = e; return true }) {
			return end, m.steps
		}
	}
	return 0, m.steps
}

// MatchString is Match over a string.
func (b *Backtracker) MatchString(s string) (int, uint64) {
	return b.Match([]byte(s))
}

func hasLeadingBegin(n *regex.Node) bool {
	for {
		switch n.Op {
		case regex.OpBegin:
			return true
		case regex.OpConcat:
			if len(n.Subs) == 0 {
				return false
			}
			n = n.Subs[0]
		default:
			return false
		}
	}
}

type btRun struct {
	s     []byte
	fold  bool
	steps uint64
}

// try matches node n at position i and calls k with the position after the
// match; it returns true as soon as any continuation succeeds. Positions
// passed to k are byte offsets; a successful overall match reports i as a
// 1-based end position (offset of the byte after the match).
func (m *btRun) try(n *regex.Node, i int, k func(int) bool) bool {
	m.steps++
	switch n.Op {
	case regex.OpEmpty:
		return k(i)
	case regex.OpLit, regex.OpClass, regex.OpAny:
		if i < len(m.s) && n.MatchesByte(m.s[i], m.fold) {
			return k(i + 1)
		}
		return false
	case regex.OpBegin:
		return i == 0 && k(i)
	case regex.OpEnd:
		return i == len(m.s) && k(i)
	case regex.OpConcat:
		var chain func(idx, pos int) bool
		chain = func(idx, pos int) bool {
			if idx == len(n.Subs) {
				return k(pos)
			}
			return m.try(n.Subs[idx], pos, func(np int) bool {
				return chain(idx+1, np)
			})
		}
		return chain(0, i)
	case regex.OpAlt:
		for _, sub := range n.Subs {
			if m.try(sub, i, k) {
				return true
			}
		}
		return false
	case regex.OpQuest:
		if m.try(n.Subs[0], i, k) {
			return true
		}
		return k(i)
	case regex.OpStar:
		return m.star(n.Subs[0], i, k)
	case regex.OpPlus:
		return m.try(n.Subs[0], i, func(np int) bool {
			return m.star(n.Subs[0], np, k)
		})
	case regex.OpRepeat:
		// Desugared at construction; a stray OpRepeat (tree built by
		// hand) is expanded on the fly.
		return m.try(regex.Desugar(n), i, k)
	}
	return false
}

// star implements greedy X* with a progress guard against nullable bodies.
func (m *btRun) star(sub *regex.Node, i int, k func(int) bool) bool {
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if m.try(sub, pos, func(np int) bool {
			if np == pos {
				return false // no progress: stop iterating
			}
			return rec(np)
		}) {
			return true
		}
		return k(pos)
	}
	return rec(i)
}
