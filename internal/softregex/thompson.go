package softregex

import (
	"doppiodb/internal/regex"
)

// Thompson is a compiled Thompson-construction NFA simulated with the
// classic two-list algorithm (the approach behind RE2 and grep): linear in
// the input with cost proportional to the number of simultaneously active
// states — the behaviour §8.2 attributes to software NFAs ("for each new
// input every active state has to be updated").
type Thompson struct {
	states []tState
	start  int
	fold   bool
	src    string
}

type tOp uint8

const (
	tByte  tOp = iota // consume one byte matching node
	tSplit            // epsilon to out and out1
	tBegin            // assert start of input
	tEnd              // assert end of input
	tMatch            // accept
)

type tState struct {
	op        tOp
	node      *regex.Node // for tByte
	out, out1 int
}

// NewThompson parses and compiles a pattern.
func NewThompson(pattern string, foldCase bool) (*Thompson, error) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	t := &Thompson{fold: foldCase, src: pattern}
	frag := t.build(regex.Desugar(ast))
	match := t.add(tState{op: tMatch})
	t.patch(frag.out, match)
	t.start = frag.start
	return t, nil
}

// Source returns the original pattern.
func (t *Thompson) Source() string { return t.src }

// NumStates returns the NFA state count.
func (t *Thompson) NumStates() int { return len(t.states) }

type tFrag struct {
	start int
	out   []int // state indices whose `out` dangles
}

func (t *Thompson) add(s tState) int {
	s.out, s.out1 = -1, -1
	t.states = append(t.states, s)
	return len(t.states) - 1
}

// patch points every dangling edge at target. Dangling slots are encoded as
// out == -1 first, then out1 == -1 for splits.
func (t *Thompson) patch(list []int, target int) {
	for _, idx := range list {
		s := &t.states[idx]
		if s.out == -1 {
			s.out = target
		} else {
			s.out1 = target
		}
	}
}

func (t *Thompson) build(n *regex.Node) tFrag {
	switch n.Op {
	case regex.OpEmpty:
		sp := t.add(tState{op: tSplit})
		return tFrag{start: sp, out: []int{sp, sp}}
	case regex.OpLit, regex.OpClass, regex.OpAny:
		st := t.add(tState{op: tByte, node: n})
		return tFrag{start: st, out: []int{st}}
	case regex.OpBegin:
		st := t.add(tState{op: tBegin})
		return tFrag{start: st, out: []int{st}}
	case regex.OpEnd:
		st := t.add(tState{op: tEnd})
		return tFrag{start: st, out: []int{st}}
	case regex.OpConcat:
		f := t.build(n.Subs[0])
		for _, sub := range n.Subs[1:] {
			g := t.build(sub)
			t.patch(f.out, g.start)
			f.out = g.out
		}
		return f
	case regex.OpAlt:
		f := t.build(n.Subs[0])
		for _, sub := range n.Subs[1:] {
			g := t.build(sub)
			sp := t.add(tState{op: tSplit})
			t.states[sp].out = f.start
			t.states[sp].out1 = g.start
			f = tFrag{start: sp, out: append(f.out, g.out...)}
		}
		return f
	case regex.OpQuest:
		f := t.build(n.Subs[0])
		sp := t.add(tState{op: tSplit})
		t.states[sp].out = f.start
		return tFrag{start: sp, out: append(f.out, sp)}
	case regex.OpStar:
		f := t.build(n.Subs[0])
		sp := t.add(tState{op: tSplit})
		t.states[sp].out = f.start
		t.patch(f.out, sp)
		return tFrag{start: sp, out: []int{sp}}
	case regex.OpPlus:
		f := t.build(n.Subs[0])
		sp := t.add(tState{op: tSplit})
		t.states[sp].out = f.start
		t.patch(f.out, sp)
		return tFrag{start: f.start, out: []int{sp}}
	case regex.OpRepeat:
		return t.build(regex.Desugar(n))
	}
	panic("softregex: unreachable build op")
}

// stateList is a deduplicated active-state set.
type stateList struct {
	dense  []int
	sparse []uint32
	gen    uint32
}

func newStateList(n int) *stateList {
	return &stateList{sparse: make([]uint32, n)}
}

func (l *stateList) reset() {
	l.dense = l.dense[:0]
	l.gen++
}

func (l *stateList) has(s int) bool { return l.sparse[s] == l.gen }

func (l *stateList) push(s int) {
	if l.sparse[s] != l.gen {
		l.sparse[s] = l.gen
		l.dense = append(l.dense, s)
	}
}

// Match searches s unanchored and returns the 1-based position of the
// earliest match end (0 when none) plus the work performed, counted as
// state-visits (the per-byte cost of updating every active state).
func (t *Thompson) Match(s []byte) (pos int, work uint64) {
	clist := newStateList(len(t.states))
	nlist := newStateList(len(t.states))
	var add func(l *stateList, st, at int, w *uint64) bool
	add = func(l *stateList, st, at int, w *uint64) bool {
		if l.has(st) {
			return false
		}
		l.push(st)
		*w++
		sd := &t.states[st]
		switch sd.op {
		case tSplit:
			m1 := add(l, sd.out, at, w)
			m2 := add(l, sd.out1, at, w)
			return m1 || m2
		case tBegin:
			if at == 0 {
				return add(l, sd.out, at, w)
			}
			return false
		case tEnd:
			if at == len(s) {
				return add(l, sd.out, at, w)
			}
			return false
		case tMatch:
			return true
		}
		return false
	}
	clist.reset()
	// An empty match at offset 0 is not expressible in the 1-based end
	// encoding (the HUDF rejects empty-matching patterns), so its result
	// is ignored and scanning proceeds to the earliest non-empty end.
	add(clist, t.start, 0, &work)
	for i := 0; i < len(s); i++ {
		nlist.reset()
		matched := false
		for _, st := range clist.dense {
			sd := &t.states[st]
			if sd.op != tByte {
				continue
			}
			work++
			if sd.node.MatchesByte(s[i], t.fold) {
				if add(nlist, sd.out, i+1, &work) {
					matched = true
				}
			}
		}
		// Unanchored search: re-arm the start state at every offset.
		add(nlist, t.start, i+1, &work)
		clist, nlist = nlist, clist
		if matched {
			return i + 1, work
		}
	}
	return 0, work
}

// MatchString is Match over a string.
func (t *Thompson) MatchString(s string) (int, uint64) {
	return t.Match([]byte(s))
}
