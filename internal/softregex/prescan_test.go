package softregex

import (
	"math/rand"
	"strings"
	"testing"

	"doppiodb/internal/regex"
)

func TestRequiredLiteralPrefix(t *testing.T) {
	cases := []struct {
		pat, want string
	}{
		{`Strasse`, "Strasse"},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Str"},
		{`(Strasse|Str\.).*(8[0-9]{4}).*delivery`, "Str"},
		{`Alan.*Turing`, "Alan"},
		{`[0-9]+(USD|EUR)`, ""},
		{`a?bc`, ""},
		{`ab+c`, "ab"},
		{`(abc)+x`, "abc"},
		{`^abc`, "abc"},
		{`.*abc`, ""},
		{`(ab|cd)x`, ""},
	}
	for _, c := range cases {
		ast, err := regex.Parse(c.pat)
		if err != nil {
			t.Fatal(err)
		}
		if got := RequiredLiteralPrefix(regex.Desugar(ast)); got != c.want {
			t.Errorf("RequiredLiteralPrefix(%q) = %q, want %q", c.pat, got, c.want)
		}
	}
}

func TestStartOptimizationCutsSteps(t *testing.T) {
	// On rows without the literal prefix, the optimized matcher skips
	// nearly all backtracking work — PCRE's behaviour, and the reason
	// the paper's QH baseline is faster than our default model.
	pat := `(Strasse|Str\.).*(8[0-9]{4}).*delivery`
	plain, _ := NewBacktracker(pat, false)
	opt, _ := NewBacktracker(pat, false)
	if prefix := opt.SetStartOptimization(true); prefix != "Str" {
		t.Fatalf("prefix = %q", prefix)
	}
	miss := "John|Smith|44 Lindenweg|60327|Frankfurt am Main padding...."
	_, s1 := plain.MatchString(miss)
	_, s2 := opt.MatchString(miss)
	if s2*10 > s1 {
		t.Errorf("prescan steps %d not ≪ plain %d", s2, s1)
	}
	// Equivalence on hits and misses.
	r := rand.New(rand.NewSource(9))
	inputs := []string{
		"Koblenzer Strasse 81234 with delivery notes",
		"Str. 80001 delivery",
		"Str. 80001 pickup",
		"Strasse but no zip",
		"", "Str", "xStrasse 89999 delivery",
	}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		for j := 0; j < r.Intn(40); j++ {
			b.WriteString([]string{"S", "t", "r", "a", "8", "1", "d", "elivery ", "x"}[r.Intn(9)])
		}
		inputs = append(inputs, b.String())
	}
	for _, in := range inputs {
		p1, _ := plain.MatchString(in)
		p2, _ := opt.MatchString(in)
		if p1 != p2 {
			t.Fatalf("disagreement on %q: plain=%d opt=%d", in, p1, p2)
		}
	}
}

func TestStartOptimizationNoPrefix(t *testing.T) {
	bt, _ := NewBacktracker(`[0-9]+(USD|EUR)`, false)
	if prefix := bt.SetStartOptimization(true); prefix != "" {
		t.Errorf("class-led pattern has prefix %q", prefix)
	}
	// Still matches correctly with the no-op setting.
	if pos, _ := bt.MatchString("pay 42EUR"); pos != 9 {
		t.Errorf("pos = %d", pos)
	}
	bt.SetStartOptimization(false)
	if pos, _ := bt.MatchString("pay 42EUR"); pos != 9 {
		t.Errorf("pos after disable = %d", pos)
	}
	// Folded patterns skip the optimization.
	f, _ := NewBacktracker(`strasse`, true)
	if prefix := f.SetStartOptimization(true); prefix != "" {
		t.Errorf("folded pattern enabled prescan %q", prefix)
	}
}
