package token

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

func compile(t *testing.T, pat string, opts Options) *Program {
	t.Helper()
	p, err := CompilePattern(pat, opts)
	if err != nil {
		t.Fatalf("CompilePattern(%q): %v", pat, err)
	}
	return p
}

func TestPaperExampleStateAndCharCounts(t *testing.T) {
	// §6 examples and §7.1.1 queries: the compacted token NFA must hit
	// the paper's resource accounting (states = tokens + end state).
	cases := []struct {
		pat    string
		states int
		chars  int
	}{
		// (a|b).*c: tokens a, b, c -> Figure 6's four states.
		{`(a|b).*c`, 4, 3},
		// (Blue|Gray).*skies: tokens Blue, Gray, skies.
		{`(Blue|Gray).*skies`, 4, 13},
		// Q1 as a regex: one token.
		{`Strasse`, 2, 7},
		// Q2: tokens Strasse, Str., 8[0-9]{4}.
		{`(Strasse|Str\.).*(8[0-9]{4})`, 4, 7 + 4 + 1 + 4*2},
		// Q3: tokens [0-9]+, USD, EUR, GBP.
		{`[0-9]+(USD|EUR|GBP)`, 5, 2 + 9},
		// Q4: one token of 3 class + ':' + 4 class matchers.
		{`[A-Za-z]{3}\:[0-9]{4}`, 2, 3*4 + 1 + 4*2},
	}
	for _, c := range cases {
		p := compile(t, c.pat, Options{})
		if got := p.NumStates(); got != c.states {
			t.Errorf("%q: NumStates = %d, want %d", c.pat, got, c.states)
		}
		if got := p.NumChars(); got != c.chars {
			t.Errorf("%q: NumChars = %d, want %d", c.pat, got, c.chars)
		}
	}
}

func TestGapHoldSavesStates(t *testing.T) {
	with := compile(t, `(a|b).*c`, Options{})
	without := compile(t, `(a|b).*c`, Options{NoGapHold: true})
	if with.NumStates() >= without.NumStates() {
		t.Errorf("gap-hold should save states: with=%d without=%d",
			with.NumStates(), without.NumStates())
	}
	if without.MaterializedGaps != 1 {
		t.Errorf("MaterializedGaps = %d, want 1", without.MaterializedGaps)
	}
}

func TestMatchBasics(t *testing.T) {
	cases := []struct {
		pat, in string
		want    int // 1-based end position, 0 = no match
	}{
		{`abc`, "abc", 3},
		{`abc`, "xxabcxx", 5},
		{`abc`, "abd", 0},
		{`abc`, "", 0},
		{`(a|b).*c`, "a123c", 5},
		{`(a|b).*c`, "bc", 2},
		{`(a|b).*c`, "ac", 2},
		{`(a|b).*c`, "cab", 0},
		{`(a|b).*c`, "xxxaxxxcxx", 8},
		{`Strasse`, "Koblenzer Strasse 44", 17},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Hauptstrasse 81234", 0}, // case-sensitive
		{`(Strasse|Str\.).*(8[0-9]{4})`, "HauptStrasse 81234", 18},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Str. 80001 Munich", 10},
		{`(Strasse|Str\.).*(8[0-9]{4})`, "Str. 70001", 0},
		{`[0-9]+(USD|EUR|GBP)`, "pay 100USD now", 10},
		{`[0-9]+(USD|EUR|GBP)`, "pay USD now", 0},
		{`[0-9]+(USD|EUR|GBP)`, "5EUR", 4},
		{`[A-Za-z]{3}\:[0-9]{4}`, "ref ABC:1234 ok", 12},
		{`[A-Za-z]{3}\:[0-9]{4}`, "AB:1234", 0},
		{`[A-Za-z]{3}\:[0-9]{4}`, "xABCD:1234", 10}, // BCD:1234 matches
		{`a+b`, "aaab", 4},
		{`a+b`, "b", 0},
		{`(ab)+c`, "ababc", 5},
		{`(ab)+c`, "abc", 3},
		{`(ab)+c`, "ac", 0},
		{`a?b`, "b", 1},
		{`a?b`, "ab", 2},
		{`a.c`, "abc", 3},
		{`a.c`, "ac", 0},
		{`a.*`, "xxaxx", 3}, // earliest end: as soon as `a` fires
		{`.*a`, "xxa", 3},
		{`a{2,3}b`, "aab", 3},
		{`a{2,3}b`, "ab", 0},
		{`a{2,3}b`, "aaaab", 5},
		{`[^0-9]x`, "3x ax", 5},
	}
	for _, c := range cases {
		for _, noGap := range []bool{false, true} {
			p := compile(t, c.pat, Options{NoGapHold: noGap})
			if got := p.MatchString(c.in); got != c.want {
				t.Errorf("Match(%q, %q) noGap=%v = %d, want %d",
					c.pat, c.in, noGap, got, c.want)
			}
		}
	}
}

func TestMatchAnchors(t *testing.T) {
	cases := []struct {
		pat, in string
		want    int
	}{
		{`^abc`, "abcde", 3},
		{`^abc`, "xabc", 0},
		{`abc$`, "xxabc", 5},
		{`abc$`, "abcx", 0},
		{`^abc$`, "abc", 3},
		{`^abc$`, "abcd", 0},
		{`^a.*c$`, "aXXc", 4},
		{`^a.*c$`, "aXXcX", 0},
		{`a.*$`, "xxaxx", 5}, // held accept at end of string
		{`a.*$`, "xxxxx", 0},
		{`^.*a`, "xxa", 3}, // leading gap keeps starts armed under ^
	}
	for _, c := range cases {
		for _, noGap := range []bool{false, true} {
			p := compile(t, c.pat, Options{NoGapHold: noGap})
			if got := p.MatchString(c.in); got != c.want {
				t.Errorf("Match(%q, %q) noGap=%v = %d, want %d",
					c.pat, c.in, noGap, got, c.want)
			}
		}
	}
	if _, err := CompilePattern(`a^b`, Options{}); err != ErrUnsupportedAnchor {
		t.Errorf("interior ^ err = %v", err)
	}
	if _, err := CompilePattern(`a$b`, Options{}); err != ErrUnsupportedAnchor {
		t.Errorf("interior $ err = %v", err)
	}
}

func TestMatchFoldCase(t *testing.T) {
	p := compile(t, `strasse`, Options{FoldCase: true})
	if got := p.MatchString("Koblenzer STRASSE"); got != 17 {
		t.Errorf("folded match = %d, want 17", got)
	}
	p = compile(t, `[a-f]+x`, Options{FoldCase: true})
	if got := p.MatchString("zzDEADBEEFx"); got != 11 {
		t.Errorf("folded class match = %d", got)
	}
}

func TestRejectEmptyMatching(t *testing.T) {
	for _, pat := range []string{`a*`, `a?`, `(a|b*)`, `a{0,3}`, `.*`} {
		if _, err := CompilePattern(pat, Options{}); err != ErrMatchesEmpty {
			t.Errorf("CompilePattern(%q) err = %v, want ErrMatchesEmpty", pat, err)
		}
	}
}

func TestNestedGapMaterialized(t *testing.T) {
	// `.*` inside an alternation branch must not use the hold shortcut:
	// a(b|.*c) must not match "aXb".
	p := compile(t, `a(b|.*c)`, Options{})
	if p.MaterializedGaps == 0 {
		t.Error("nested gap should be materialized")
	}
	if got := p.MatchString("aXb"); got != 0 {
		t.Errorf("a(b|.*c) matched %q at %d", "aXb", got)
	}
	if got := p.MatchString("ab"); got != 2 {
		t.Errorf("a(b|.*c) on ab = %d, want 2", got)
	}
	if got := p.MatchString("aXXc"); got != 4 {
		t.Errorf("a(b|.*c) on aXXc = %d, want 4", got)
	}
}

func TestTopLevelAltGetsGapHold(t *testing.T) {
	p := compile(t, `a.*b|cd`, Options{})
	if p.MaterializedGaps != 0 {
		t.Errorf("top-level alt branch gap should use hold, materialized=%d", p.MaterializedGaps)
	}
	if got := p.MatchString("aXXb"); got != 4 {
		t.Errorf("aXXb = %d", got)
	}
	if got := p.MatchString("xcdx"); got != 3 {
		t.Errorf("xcdx = %d", got)
	}
	if got := p.MatchString("axcb"); got != 4 {
		t.Errorf("axcb = %d", got)
	}
	if got := p.MatchString("cxd"); got != 0 {
		t.Errorf("cxd = %d, want 0", got)
	}
}

// randPattern builds a random valid pattern over a tiny alphabet, used by
// the equivalence properties below.
func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "[ab]"
		default:
			return "c"
		}
	}
	switch r.Intn(8) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(" + randPattern(r, depth-1) + ")+"
	case 3:
		return "(" + randPattern(r, depth-1) + ")?" + randPattern(r, depth-1)
	case 4:
		return randPattern(r, depth-1) + ".*" + randPattern(r, depth-1)
	case 5:
		return "(" + randPattern(r, depth-1) + ")*" + randPattern(r, depth-1)
	default:
		return randPattern(r, depth-1)
	}
}

func randInput(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte("abcx"[r.Intn(4)])
	}
	return b.String()
}

func TestGapHoldEquivalenceProperty(t *testing.T) {
	// The hold shortcut and full materialization must produce identical
	// match positions on every input.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		pat := randPattern(r, 3)
		pWith, err1 := CompilePattern(pat, Options{})
		pWithout, err2 := CompilePattern(pat, Options{NoGapHold: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile disagreement for %q: %v vs %v", pat, err1, err2)
		}
		if err1 != nil {
			continue
		}
		for k := 0; k < 20; k++ {
			in := randInput(r, r.Intn(16))
			g1 := pWith.MatchString(in)
			g2 := pWithout.MatchString(in)
			if g1 != g2 {
				t.Fatalf("pattern %q input %q: hold=%d materialized=%d",
					pat, in, g1, g2)
			}
		}
	}
}

func TestOracleEquivalenceProperty(t *testing.T) {
	// Boolean match/no-match must agree with the standard library's
	// regexp engine (an independent oracle) on random patterns.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		pat := randPattern(r, 3)
		p, err := CompilePattern(pat, Options{})
		if err != nil {
			continue
		}
		oracle, err := regexp.Compile(`(?s)` + pat)
		if err != nil {
			t.Fatalf("oracle rejected %q: %v", pat, err)
		}
		for k := 0; k < 30; k++ {
			in := randInput(r, r.Intn(20))
			got := p.MatchString(in) != 0
			want := oracle.MatchString(in)
			if got != want {
				t.Fatalf("pattern %q input %q: token=%v oracle=%v",
					pat, in, got, want)
			}
		}
	}
}

func TestOracleEquivalenceAnchoredProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		pat := "^" + randPattern(r, 2) + "$"
		p, err := CompilePattern(pat, Options{})
		if err != nil {
			continue
		}
		oracle := regexp.MustCompile(`(?s)` + pat)
		for k := 0; k < 30; k++ {
			in := randInput(r, r.Intn(12))
			got := p.MatchString(in) != 0
			want := oracle.MatchString(in)
			if got != want {
				t.Fatalf("pattern %q input %q: token=%v oracle=%v",
					pat, in, got, want)
			}
		}
	}
}

func TestMaxTokenLen(t *testing.T) {
	p := compile(t, `(Strasse|Str\.).*(8[0-9]{4})`, Options{})
	if got := p.MaxTokenLen(); got != 7 {
		t.Errorf("MaxTokenLen = %d, want 7 (Strasse)", got)
	}
}

func TestDesugarRepeat(t *testing.T) {
	p := compile(t, `a{3}`, Options{})
	// One token of 3 chained matchers.
	if len(p.Tokens) != 1 || p.Tokens[0].Len() != 3 {
		t.Fatalf("a{3} tokens: %+v", p.Tokens)
	}
	if got := p.MatchString("aaa"); got != 3 {
		t.Errorf("a{3} on aaa = %d", got)
	}
	if got := p.MatchString("aa"); got != 0 {
		t.Errorf("a{3} on aa = %d", got)
	}
	p = compile(t, `a{2,}b`, Options{})
	for in, want := range map[string]int{"aab": 3, "aaab": 4, "ab": 0} {
		if got := p.MatchString(in); got != want {
			t.Errorf("a{2,}b on %q = %d, want %d", in, got, want)
		}
	}
}
