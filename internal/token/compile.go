package token

import (
	"fmt"
	"sort"

	"doppiodb/internal/regex"
)

// endpoint is a position in a fragment's first or last set. The gapped flag
// records that a `.*` sits between the position and the fragment boundary,
// so edges crossing that boundary must be gap edges (predecessor holds).
type endpoint struct {
	pos    int
	gapped bool
}

// frag is a partially built Glushkov automaton fragment.
type frag struct {
	first, last []endpoint
	nullable    bool
	// gapBefore/gapAfter: a `.*` is reachable at the fragment's
	// start/end through nullable context, so positions promoted across
	// this fragment must be gap-marked.
	gapBefore, gapAfter bool
	isGap               bool // the fragment is a bare top-level `.*`
}

type compiler struct {
	useGapHold bool
	tokens     []Token
	preds      []map[int]struct{}
	hold       []bool
	gapsMade   int // materialized `.*` count
}

// Compile builds the token automaton for a parsed AST.
func Compile(ast *regex.Node, opts Options) (*Program, error) {
	ast = regex.Desugar(ast)
	body, anchored, endAnchored, err := stripAnchors(ast)
	if err != nil {
		return nil, err
	}
	if body.Nullable() {
		return nil, ErrMatchesEmpty
	}
	c := &compiler{useGapHold: !opts.NoGapHold}
	f := c.build(body, true)
	prog := c.finish(f, anchored, endAnchored)
	prog.FoldCase = opts.FoldCase
	return prog, nil
}

// newPos appends a token and returns its position index.
func (c *compiler) newPos(t Token) int {
	c.tokens = append(c.tokens, t)
	c.preds = append(c.preds, make(map[int]struct{}))
	c.hold = append(c.hold, false)
	return len(c.tokens) - 1
}

func (c *compiler) addEdge(from, to int, gapped bool) {
	c.preds[to][from] = struct{}{}
	if gapped {
		c.hold[from] = true
	}
}

// leafMatcher converts a leaf AST node to a character matcher.
func leafMatcher(n *regex.Node) Matcher {
	switch n.Op {
	case regex.OpLit:
		return Matcher{Ranges: []regex.Range{{Lo: n.Lit, Hi: n.Lit}}}
	case regex.OpAny:
		return Matcher{Ranges: []regex.Range{{Lo: 0, Hi: 255}}}
	case regex.OpClass:
		return Matcher{Ranges: n.Ranges, Negated: n.Negated}
	}
	panic(fmt.Sprintf("token: leafMatcher on %v", n.Op))
}

// isGapNode reports whether n is a `.*` usable as a hold-style gap.
func isGapNode(n *regex.Node) bool {
	return n.Op == regex.OpStar && n.Subs[0].Op == regex.OpAny
}

// build compiles node n into a fragment. topLevel is true only for the
// pattern's root concatenation (and the branches of a root alternation),
// where the `.*`→hold shortcut is provably language-preserving.
func (c *compiler) build(n *regex.Node, topLevel bool) frag {
	switch n.Op {
	case regex.OpEmpty:
		return frag{nullable: true}
	case regex.OpLit, regex.OpAny, regex.OpClass:
		p := c.newPos(Token{Matchers: []Matcher{leafMatcher(n)}})
		return frag{first: []endpoint{{p, false}}, last: []endpoint{{p, false}}}
	case regex.OpConcat:
		return c.buildConcat(n, topLevel)
	case regex.OpAlt:
		var out frag
		for i, s := range n.Subs {
			f := c.build(s, topLevel)
			if i == 0 {
				out = f
				continue
			}
			out.first = append(out.first, f.first...)
			out.last = append(out.last, f.last...)
			out.nullable = out.nullable || f.nullable
			out.gapBefore = out.gapBefore || f.gapBefore
			out.gapAfter = out.gapAfter || f.gapAfter
		}
		return out
	case regex.OpQuest:
		f := c.build(n.Subs[0], false)
		f.nullable = true
		return f
	case regex.OpStar, regex.OpPlus:
		if isGapNode(n) && n.Op == regex.OpStar && c.useGapHold && topLevel {
			return frag{nullable: true, isGap: true, gapBefore: true, gapAfter: true}
		}
		if n.Op == regex.OpStar && isGapNode(n) {
			c.gapsMade++
		}
		f := c.build(n.Subs[0], false)
		// Loop edges: the subexpression may repeat.
		for _, l := range f.last {
			for _, fst := range f.first {
				c.addEdge(l.pos, fst.pos, l.gapped || fst.gapped)
			}
		}
		if n.Op == regex.OpStar {
			f.nullable = true
		}
		return f
	case regex.OpBegin, regex.OpEnd:
		// stripAnchors rejected interior anchors already.
		panic("token: anchor survived stripAnchors")
	}
	panic(fmt.Sprintf("token: build on %v", n.Op))
}

// buildConcat folds the children of a concatenation, grouping maximal runs
// of unquantified leaves into single multi-matcher tokens (the §6.3
// character-sequence optimization) and treating top-level `.*` children as
// hold-style gaps.
func (c *compiler) buildConcat(n *regex.Node, topLevel bool) frag {
	children := flattenConcat(n)
	acc := frag{nullable: true}
	var run []Matcher
	flushRun := func() {
		if len(run) == 0 {
			return
		}
		p := c.newPos(Token{Matchers: run})
		run = nil
		acc = c.cat(acc, frag{
			first: []endpoint{{p, false}},
			last:  []endpoint{{p, false}},
		})
	}
	for _, child := range children {
		if child.IsLeaf() {
			run = append(run, leafMatcher(child))
			continue
		}
		flushRun()
		if topLevel && c.useGapHold && isGapNode(child) {
			acc = c.cat(acc, frag{nullable: true, isGap: true})
			continue
		}
		if child.Op == regex.OpEmpty {
			continue
		}
		acc = c.cat(acc, c.build(child, false))
	}
	flushRun()
	return acc
}

// flattenConcat inlines nested concatenations (from groups and desugared
// repetitions) so that leaf runs and top-level gaps are found across group
// boundaries.
func flattenConcat(n *regex.Node) []*regex.Node {
	var out []*regex.Node
	for _, s := range n.Subs {
		if s.Op == regex.OpConcat {
			out = append(out, flattenConcat(s)...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// cat concatenates two fragments, emitting the cross edges.
func (c *compiler) cat(a, b frag) frag {
	if b.isGap {
		a.last = markGapped(a.last)
		a.gapAfter = true
		if a.nullable {
			a.gapBefore = true
		}
		return a
	}
	for _, l := range a.last {
		for _, f := range b.first {
			c.addEdge(l.pos, f.pos, l.gapped || f.gapped)
		}
	}
	out := frag{
		nullable:  a.nullable && b.nullable,
		gapAfter:  b.gapAfter || (b.nullable && a.gapAfter),
		gapBefore: a.gapBefore || (a.nullable && b.gapBefore),
	}
	out.first = append(out.first, a.first...)
	if a.nullable {
		out.first = append(out.first, markIf(b.first, a.gapAfter)...)
	}
	out.last = append(out.last, b.last...)
	if b.nullable {
		out.last = append(out.last, markIf(a.last, b.gapBefore)...)
	}
	return out
}

func markGapped(eps []endpoint) []endpoint {
	out := make([]endpoint, len(eps))
	for i, e := range eps {
		out[i] = endpoint{e.pos, true}
	}
	return out
}

func markIf(eps []endpoint, gap bool) []endpoint {
	if !gap {
		return eps
	}
	return markGapped(eps)
}

// finish converts the accumulated fragment into a Program.
func (c *compiler) finish(f frag, anchored, endAnchored bool) *Program {
	n := len(c.tokens)
	p := &Program{
		Tokens:           c.tokens,
		Preds:            make([][]int, n),
		Start:            make([]bool, n),
		StartGapped:      make([]bool, n),
		Accept:           make([]bool, n),
		Hold:             c.hold,
		Anchored:         anchored,
		EndAnchored:      endAnchored,
		MaterializedGaps: c.gapsMade,
	}
	for j, set := range c.preds {
		preds := make([]int, 0, len(set))
		for i := range set {
			preds = append(preds, i)
		}
		sort.Ints(preds)
		p.Preds[j] = preds
	}
	for _, e := range f.first {
		p.Start[e.pos] = true
		if e.gapped {
			p.StartGapped[e.pos] = true
		}
	}
	for _, e := range f.last {
		p.Accept[e.pos] = true
		if e.gapped {
			// A gap before the end (`a.*$`, or `a.*` under $): the
			// position must stay active so the end-of-string
			// accept check sees it.
			p.Hold[e.pos] = true
		}
	}
	return p
}
