package token

// Match runs the token automaton over s with the exact cycle-by-cycle
// semantics of the hardware Processing Unit: one byte per cycle, all chain
// shift registers and state bits updated synchronously. It returns the
// 1-based position of the last character of the first (earliest-ending)
// match, or 0 if the string does not match — the HUDF result encoding of
// §4.1.
//
// This is the slow, obviously-correct reference; internal/pu implements the
// bit-parallel version used by the engines and cross-checks against this
// one in its tests.
func (p *Program) Match(s []byte) int {
	n := len(p.Tokens)
	if n == 0 {
		return 0
	}
	active := make([]bool, n)
	prevActive := make([]bool, n)
	chains := make([][]bool, n)
	newChains := make([][]bool, n)
	for j := range chains {
		chains[j] = make([]bool, p.Tokens[j].Len())
		newChains[j] = make([]bool, p.Tokens[j].Len())
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		copy(prevActive, active)
		matched := false
		for j := 0; j < n; j++ {
			tok := &p.Tokens[j]
			armed := p.Start[j] && (!p.Anchored || i == 0 || p.StartGapped[j])
			entry := armed
			if !entry {
				for _, pr := range p.Preds[j] {
					if prevActive[pr] {
						entry = true
						break
					}
				}
			}
			nc := newChains[j]
			oc := chains[j]
			for k := len(nc) - 1; k >= 1; k-- {
				nc[k] = oc[k-1] && tok.Matchers[k].Matches(b, p.FoldCase)
			}
			nc[0] = entry && tok.Matchers[0].Matches(b, p.FoldCase)
			fired := nc[len(nc)-1]
			active[j] = fired || (p.Hold[j] && prevActive[j])
			if fired && p.Accept[j] {
				matched = true
			}
		}
		chains, newChains = newChains, chains
		if matched && !p.EndAnchored {
			return i + 1
		}
		if matched && p.EndAnchored && i == len(s)-1 {
			return len(s)
		}
	}
	if p.EndAnchored {
		for j := 0; j < n; j++ {
			// A held accept position (e.g. `a.*$`) is still active
			// at the end of the string.
			if p.Accept[j] && p.Hold[j] && active[j] {
				return len(s)
			}
		}
	}
	return 0
}

// MatchString is Match over a string.
func (p *Program) MatchString(s string) int { return p.Match([]byte(s)) }
