// Package token compiles a regular-expression AST into the paper's
// hardware-oriented automaton form: a compact NFA whose states correspond to
// *tokens* — maximal sequences of characters matched by chained Character
// Matchers (§6.3) — connected by a runtime-configurable state graph (§6.2).
//
// The construction is a Glushkov (position) automaton over token positions.
// Each token occupies one NFA state plus a chain of character matchers; an
// edge (i → j) means "token j's chain may start on the cycle after token i
// completed". A `.*` between top-level subexpressions is compiled into a
// *hold* flag on the predecessor states ("once reached, stay active"), which
// is exactly the self-loop trick the paper's Figure 6 uses for (a|b).*c and
// keeps the state count at tokens+1 instead of spending a state on the
// wildcard. The shortcut is applied only where it provably preserves the
// language — a `.*` that is a direct child of the top-level concatenation;
// wildcards in nested positions are materialized as ordinary any-byte tokens
// with a self-loop.
package token

import (
	"errors"

	"doppiodb/internal/regex"
)

// Matcher is the specification of one chained Character Matcher position: a
// disjunction of byte ranges (a single literal is the range [c,c]; `.` is
// [0,255]), optionally negated. The hardware pairs two matcher registers per
// range (§6.3), which Cost reflects.
type Matcher struct {
	Ranges  []regex.Range
	Negated bool
}

// Matches reports whether the matcher accepts byte b, with optional ASCII
// case folding (the collation registers of §6.4).
func (m *Matcher) Matches(b byte, fold bool) bool {
	in := m.contains(b)
	if !in && fold {
		in = m.contains(foldFlip(b))
	}
	if m.Negated {
		return !in
	}
	return in
}

func (m *Matcher) contains(b byte) bool {
	for _, r := range m.Ranges {
		if r.Contains(b) {
			return true
		}
	}
	return false
}

// Cost returns the number of character-matcher registers this position
// consumes: one for a plain character, two per coupled range pair.
func (m *Matcher) Cost() int {
	c := 0
	for _, r := range m.Ranges {
		if r.Lo == r.Hi {
			c++
		} else {
			c += 2
		}
	}
	return c
}

func foldFlip(b byte) byte {
	switch {
	case 'A' <= b && b <= 'Z':
		return b + 'a' - 'A'
	case 'a' <= b && b <= 'z':
		return b - ('a' - 'A')
	}
	return b
}

// Token is a chain of character matchers recognized as a unit; it maps to
// one NFA state.
type Token struct {
	Matchers []Matcher
}

// Len returns the chain length in input bytes.
func (t *Token) Len() int { return len(t.Matchers) }

// Cost returns the total character-matcher register cost of the chain.
func (t *Token) Cost() int {
	c := 0
	for i := range t.Matchers {
		c += t.Matchers[i].Cost()
	}
	return c
}

// Program is the compiled token automaton — the information encoded into the
// PU configuration vector. Position j fires when token j's matcher chain
// completes; the chain may begin on a cycle where j is armed: either by a
// start condition or by an active predecessor.
type Program struct {
	Tokens []Token
	// Preds[j] lists the predecessor positions of token j.
	Preds [][]int
	// Start[j]: position j is armed by the start of the search.
	Start []bool
	// StartGapped[j]: position j is reached through a leading `.*`, so
	// it stays armed on every cycle even under a ^ anchor.
	StartGapped []bool
	// Accept[j]: the automaton accepts when token j fires (or, with
	// EndAnchored, when j is still active at the end of the string).
	Accept []bool
	// Hold[j]: position j remains active after firing (a `.*` gap
	// follows it), feeding successors at any later cycle.
	Hold []bool
	// Anchored/EndAnchored reflect a leading ^ / trailing $.
	Anchored    bool
	EndAnchored bool
	// FoldCase selects case-insensitive matching (collation registers).
	FoldCase bool
	// MaterializedGaps counts `.*` occurrences compiled as explicit
	// any-byte tokens rather than hold flags (ablation metric).
	MaterializedGaps int
	// Source is the original pattern, for diagnostics.
	Source string
}

// NumStates is the automaton state count in the paper's accounting: one
// state per token plus the explicit end state.
func (p *Program) NumStates() int { return len(p.Tokens) + 1 }

// NumChars is the character-matcher register demand of the program.
func (p *Program) NumChars() int {
	c := 0
	for i := range p.Tokens {
		c += p.Tokens[i].Cost()
	}
	return c
}

// MaxTokenLen returns the longest matcher chain, which bounds the shift
// register depth.
func (p *Program) MaxTokenLen() int {
	m := 0
	for i := range p.Tokens {
		if l := p.Tokens[i].Len(); l > m {
			m = l
		}
	}
	return m
}

// Compile errors.
var (
	// ErrMatchesEmpty rejects patterns that accept the empty string: the
	// HUDF result encoding cannot distinguish an empty match at position
	// zero from a non-match (§4.1).
	ErrMatchesEmpty = errors.New("token: pattern matches the empty string; not expressible in the HUDF result encoding")
	// ErrUnsupportedAnchor rejects ^ and $ anywhere but the pattern ends.
	ErrUnsupportedAnchor = errors.New("token: ^ and $ are only supported at the pattern boundaries in hardware")
)

// Options control compilation.
type Options struct {
	// FoldCase compiles a case-insensitive (collation) program.
	FoldCase bool
	// NoGapHold disables the hold-flag shortcut for `.*`, always
	// materializing wildcards as any-byte tokens. Used by the ablation
	// bench to quantify the states the shortcut saves.
	NoGapHold bool
}

// CompilePattern parses and compiles a pattern string.
func CompilePattern(pattern string, opts Options) (*Program, error) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return nil, err
	}
	p, err := Compile(ast, opts)
	if err != nil {
		return nil, err
	}
	p.Source = pattern
	return p, nil
}

// stripAnchors removes a leading ^ and trailing $ from the top-level
// concatenation and rejects anchors elsewhere.
func stripAnchors(n *regex.Node) (body *regex.Node, anchored, endAnchored bool, err error) {
	subs := []*regex.Node{n}
	if n.Op == regex.OpConcat {
		subs = n.Subs
	}
	for len(subs) > 0 && subs[0].Op == regex.OpBegin {
		anchored = true
		subs = subs[1:]
	}
	for len(subs) > 0 && subs[len(subs)-1].Op == regex.OpEnd {
		endAnchored = true
		subs = subs[:len(subs)-1]
	}
	bad := false
	for _, s := range subs {
		regex.Walk(s, func(m *regex.Node) {
			if m.Op == regex.OpBegin || m.Op == regex.OpEnd {
				bad = true
			}
		})
	}
	if bad {
		return nil, false, false, ErrUnsupportedAnchor
	}
	switch len(subs) {
	case 0:
		return &regex.Node{Op: regex.OpEmpty}, anchored, endAnchored, nil
	case 1:
		return subs[0], anchored, endAnchored, nil
	}
	return &regex.Node{Op: regex.OpConcat, Subs: subs}, anchored, endAnchored, nil
}
