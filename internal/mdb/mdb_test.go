package mdb

import (
	"context"
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/perf"
	"doppiodb/internal/shmem"
	"doppiodb/internal/workload"
)

func loadAddresses(t *testing.T, n int, kind workload.HitKind, sel float64) (*DB, *Table, int) {
	t.Helper()
	db := New(nil)
	rows, hits := workload.NewGenerator(21, 64).Table(n, kind, sel)
	tbl, err := db.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, hits
}

func TestCreateTableErrors(t *testing.T) {
	db := New(nil)
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := db.CreateTable("t", ColSpec{"a", KindInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", ColSpec{"a", KindInt}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable("u", ColSpec{"a", KindInt}, ColSpec{"a", KindString}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table lookup succeeded")
	}
}

func TestAppendRowTypeChecks(t *testing.T) {
	db := New(nil)
	tbl, _ := db.CreateTable("t", ColSpec{"id", KindInt}, ColSpec{"s", KindString})
	if err := tbl.AppendRow(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(int32(2), "y"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow("bad", "x"); err == nil {
		t.Error("wrong int type accepted")
	}
	if err := tbl.AppendRow(3, 4); err == nil {
		t.Error("wrong string type accepted")
	}
	if err := tbl.AppendRow(1); err == nil {
		t.Error("arity mismatch accepted")
	}
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestSelectLikeCountsMatchGroundTruth(t *testing.T) {
	db, tbl, hits := loadAddresses(t, 20_000, workload.HitQ1, 0.2)
	for _, mode := range []ExecMode{Parallel, SequentialPipe} {
		db.Mode = mode
		sel, err := db.SelectLike(tbl, "address_string", workload.Q1Like, false)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Count() != hits {
			t.Errorf("mode %v: LIKE matched %d, want %d", mode, sel.Count(), hits)
		}
		if sel.Work.Rows != 20_000 {
			t.Errorf("mode %v: rows scanned %d", mode, sel.Work.Rows)
		}
		if sel.Work.Comparisons == 0 || sel.Work.Bytes == 0 {
			t.Errorf("mode %v: empty work counters %+v", mode, sel.Work)
		}
	}
}

func TestSelectRegexpAllQueries(t *testing.T) {
	cases := []struct {
		kind workload.HitKind
		pat  string
	}{
		{workload.HitQ2, workload.Q2},
		{workload.HitQ3, workload.Q3},
		{workload.HitQ4, workload.Q4},
	}
	for _, c := range cases {
		db, tbl, hits := loadAddresses(t, 10_000, c.kind, 0.2)
		sel, err := db.SelectRegexp(tbl, "address_string", c.pat, false)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Count() != hits {
			t.Errorf("%q matched %d, want %d", c.pat, sel.Count(), hits)
		}
		if sel.Work.Steps == 0 {
			t.Error("no backtracking steps recorded")
		}
	}
}

func TestSelectionOIDsSortedUnique(t *testing.T) {
	db, tbl, _ := loadAddresses(t, 15_000, workload.HitQ1, 0.3)
	sel, err := db.SelectLike(tbl, "address_string", workload.Q1Like, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sel.OIDs); i++ {
		if sel.OIDs[i] <= sel.OIDs[i-1] {
			t.Fatal("OIDs not sorted/unique (parallel merge broken)")
		}
	}
}

func TestSelectContains(t *testing.T) {
	db, tbl, hits := loadAddresses(t, 8_000, workload.HitTable1, 0.15)
	built, rows, err := db.EnsureContainsIndex(tbl, "address_string")
	if err != nil {
		t.Fatal(err)
	}
	if !built || rows != 8_000 {
		t.Errorf("index build: built=%v rows=%d", built, rows)
	}
	built, _, _ = db.EnsureContainsIndex(tbl, "address_string")
	if built {
		t.Error("index rebuilt unnecessarily")
	}
	sel, err := db.SelectContains(tbl, "address_string", workload.Table1Contains)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Count() != hits {
		t.Errorf("CONTAINS matched %d, want %d", sel.Count(), hits)
	}
}

func TestContainsAgreesWithLike(t *testing.T) {
	db, tbl, _ := loadAddresses(t, 5_000, workload.HitTable1, 0.25)
	c, _ := db.SelectContains(tbl, "address_string", workload.Table1Contains)
	l, _ := db.SelectLike(tbl, "address_string", workload.Table1Like, false)
	r, _ := db.SelectRegexp(tbl, "address_string", workload.Table1Regex, false)
	if c.Count() != l.Count() || l.Count() != r.Count() {
		t.Errorf("operator disagreement: CONTAINS=%d LIKE=%d REGEXP=%d",
			c.Count(), l.Count(), r.Count())
	}
}

func TestUDFRegistryAndCall(t *testing.T) {
	db, tbl, _ := loadAddresses(t, 100, workload.HitQ1, 0.5)
	db.RegisterUDF("regexp_fpga", func(_ context.Context, col *bat.Strings, arg string) (*UDFResult, error) {
		res, _ := bat.NewShorts(nil, col.Count())
		matches := 0
		for i := 0; i < col.Count(); i++ {
			v := uint16(0)
			if len(col.Get(i)) > 0 && arg == "always" {
				v, matches = 1, matches+1
			}
			res.Append(v)
		}
		return &UDFResult{Result: res, Work: perf.Work{Rows: col.Count()}}, nil
	})
	out, err := db.CallUDF(context.Background(), "regexp_fpga", tbl, "address_string", "always")
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Count() != 100 {
		t.Errorf("UDF result rows = %d", out.Result.Count())
	}
	if _, err := db.CallUDF(context.Background(), "nope", tbl, "address_string", "x"); err == nil {
		t.Error("unknown UDF accepted")
	}
	if _, err := db.CallUDF(context.Background(), "regexp_fpga", tbl, "id", "x"); err == nil {
		t.Error("UDF over int column accepted")
	}
}

func TestRegionBackedTables(t *testing.T) {
	region := shmem.NewRegion(512 << 20)
	db := New(region)
	rows, hits := workload.NewGenerator(4, 64).Table(5_000, workload.HitQ1, 0.2)
	tbl, err := db.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.Column("address_string")
	if col.Strs.HeapAddr() == 0 {
		t.Error("BAT not in shared region")
	}
	sel, _ := db.SelectLike(tbl, "address_string", workload.Q1Like, false)
	if sel.Count() != hits {
		t.Errorf("region-backed scan: %d vs %d", sel.Count(), hits)
	}
}

func TestParallelAndSequentialAgree(t *testing.T) {
	db, tbl, _ := loadAddresses(t, 12_345, workload.HitQ2, 0.2)
	db.Mode = Parallel
	a, _ := db.SelectRegexp(tbl, "address_string", workload.Q2, false)
	db.Mode = SequentialPipe
	b, _ := db.SelectRegexp(tbl, "address_string", workload.Q2, false)
	if a.Count() != b.Count() {
		t.Errorf("parallel %d vs sequential %d", a.Count(), b.Count())
	}
	if a.Work.Steps != b.Work.Steps {
		t.Errorf("work differs: %d vs %d steps", a.Work.Steps, b.Work.Steps)
	}
}

func TestAccessors(t *testing.T) {
	region := shmem.NewRegion(64 << 20)
	db := New(region)
	if db.Region() != region {
		t.Error("Region() wrong")
	}
	tbl, _ := db.CreateTable("t",
		ColSpec{"id", KindInt}, ColSpec{"s", KindString}, ColSpec{"h", KindShort})
	tbl.AppendRow(1, "x", uint16(2))
	cols := tbl.Columns()
	if len(cols) != 3 {
		t.Fatalf("Columns: %d", len(cols))
	}
	for _, c := range cols {
		if c.Count() != 1 {
			t.Errorf("column %s count %d", c.Name, c.Count())
		}
	}
	kinds := []string{cols[0].Kind.String(), cols[1].Kind.String(), cols[2].Kind.String()}
	if kinds[0] != "int" || kinds[1] != "varchar" || kinds[2] != "short" {
		t.Errorf("kind strings: %v", kinds)
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
	if (&Column{Kind: Kind(99)}).Count() != 0 {
		t.Error("unknown kind count")
	}
}

func TestAppendRowShortErrors(t *testing.T) {
	db := New(nil)
	tbl, _ := db.CreateTable("t", ColSpec{"h", KindShort})
	if err := tbl.AppendRow(uint16(7)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow(7); err == nil {
		t.Error("int into short column accepted")
	}
}

func TestScanOverNonStringColumn(t *testing.T) {
	db := New(nil)
	tbl, _ := db.CreateTable("t", ColSpec{"id", KindInt})
	tbl.AppendRow(1)
	if _, err := db.SelectLike(tbl, "id", "%x%", false); err == nil {
		t.Error("LIKE over int column accepted")
	}
	if _, err := db.SelectRegexp(tbl, "id", "x", false); err == nil {
		t.Error("REGEXP over int column accepted")
	}
	if _, _, err := db.EnsureContainsIndex(tbl, "id"); err == nil {
		t.Error("CONTAINS index over int column accepted")
	}
	if _, err := db.SelectLike(tbl, "missing", "%x%", false); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := db.SelectLike(tbl, "id", "a\\", false); err == nil {
		t.Error("bad LIKE pattern accepted")
	}
	if _, err := db.SelectRegexp(tbl, "id", "(", false); err == nil {
		t.Error("bad regex accepted")
	}
}
