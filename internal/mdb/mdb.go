// Package mdb is the column-store substrate standing in for MonetDB
// (§2.3): tables are collections of BATs (internal/bat), string predicates
// run column-at-a-time with intra-operator parallelism over horizontal
// partitions (10 worker threads, matching the evaluation machine), and
// UDFs operate on whole BATs rather than single tuples — the property §4.1
// credits with making hardware offload viable.
//
// Every operator returns the work it performed (rows, comparisons,
// backtracking steps, postings) so the calibrated model in internal/perf
// can convert real executions into simulated response times.
package mdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"doppiodb/internal/bat"
	"doppiodb/internal/explain"
	"doppiodb/internal/invindex"
	"doppiodb/internal/perf"
	"doppiodb/internal/shmem"
	"doppiodb/internal/softregex"
	"doppiodb/internal/strmatch"
	"doppiodb/internal/telemetry"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota
	KindString
	KindShort
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "varchar"
	case KindShort:
		return "short"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ExecMode selects the optimizer pipeline (§7.1): the default pipeline uses
// intra-operator parallelism; sequential_pipe disables it (required when
// combining with the HUDF).
type ExecMode int

// Execution modes.
const (
	Parallel ExecMode = iota
	SequentialPipe
)

// ColSpec declares a column.
type ColSpec struct {
	Name string
	Kind Kind
}

// Column is one BAT of a table.
type Column struct {
	Name string
	Kind Kind

	Ints   *bat.Ints
	Strs   *bat.Strings
	Shorts *bat.Shorts

	idxMu sync.Mutex
	index *invindex.Index // lazy CONTAINS index
}

// Count returns the column's row count.
func (c *Column) Count() int {
	switch c.Kind {
	case KindInt:
		return c.Ints.Count()
	case KindString:
		return c.Strs.Count()
	case KindShort:
		return c.Shorts.Count()
	}
	return 0
}

// Table is a named collection of equally long BATs.
type Table struct {
	Name   string
	cols   []*Column
	byName map[string]*Column
	rows   int
	// version counts mutations; plan caches key on it so a cached plan is
	// invalidated the moment the table changes shape.
	version int64
}

// Version returns the table's mutation counter.
func (t *Table) Version() int64 { return t.version }

// Columns returns the table's columns in declaration order.
func (t *Table) Columns() []*Column { return t.cols }

// Column returns a column by name.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("mdb: table %s has no column %q", t.Name, name)
	}
	return c, nil
}

// Rows returns the table's row count.
func (t *Table) Rows() int { return t.rows }

// AppendRow appends one row; values must match the column kinds (int32 /
// int for ints, string for strings).
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("mdb: %d values for %d columns", len(vals), len(t.cols))
	}
	for i, v := range vals {
		c := t.cols[i]
		switch c.Kind {
		case KindInt:
			switch x := v.(type) {
			case int32:
				if err := c.Ints.Append(x); err != nil {
					return err
				}
			case int:
				if err := c.Ints.Append(int32(x)); err != nil {
					return err
				}
			default:
				return fmt.Errorf("mdb: column %s wants int, got %T", c.Name, v)
			}
		case KindString:
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("mdb: column %s wants string, got %T", c.Name, v)
			}
			if err := c.Strs.Append(s); err != nil {
				return err
			}
		case KindShort:
			x, ok := v.(uint16)
			if !ok {
				return fmt.Errorf("mdb: column %s wants uint16, got %T", c.Name, v)
			}
			if err := c.Shorts.Append(x); err != nil {
				return err
			}
		}
	}
	t.rows++
	t.version++
	return nil
}

// UDFResult is what a BAT-level UDF returns: the result BAT plus the
// accounting needed by the experiments.
type UDFResult struct {
	Result *bat.Shorts
	Work   perf.Work
	// HWSeconds is simulated hardware time, if the UDF offloaded.
	HWSeconds float64
	// Breakdown maps response-time phases to simulated seconds.
	Breakdown map[string]float64
	// Trace is the UDF-internal span tree (config-gen → job submit → QPI
	// transfer → PU match → post-process), when the UDF produced one.
	Trace *telemetry.Span
	// Degraded reports that the hardware path failed and the UDF fell
	// back to the software operator (correct result, degraded latency).
	Degraded bool
	// Decision is the placement decision record with actuals filled in
	// (EXPLAIN's view), when the UDF produced one.
	Decision *explain.Record
}

// UDF is a BAT-level user-defined function over a string column. The
// context carries the query's cancellation: a UDF that offloads must abort
// its not-yet-granted hardware jobs when ctx is canceled.
type UDF func(ctx context.Context, col *bat.Strings, arg string) (*UDFResult, error)

// DB is the database instance.
type DB struct {
	region *shmem.Region

	mu     sync.RWMutex
	tables map[string]*Table
	udfs   map[string]UDF

	// Mode is the optimizer pipeline; Threads the intra-operator worker
	// count.
	Mode    ExecMode
	Threads int
	// Tel receives operator-level metrics (scan rows in/out, operator
	// timings). Defaults to the process-wide registry.
	Tel *telemetry.Registry
}

// New creates a database. The region may be nil for pure-software use; with
// a region every BAT is allocated in CPU-FPGA shared memory (§4.2.1).
func New(region *shmem.Region) *DB {
	return &DB{
		region:  region,
		tables:  make(map[string]*Table),
		udfs:    make(map[string]UDF),
		Threads: 10,
		Tel:     telemetry.Default(),
	}
}

// Region returns the shared region (nil when software-only).
func (db *DB) Region() *shmem.Region { return db.region }

// CreateTable creates a table.
func (db *DB) CreateTable(name string, specs ...ColSpec) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("mdb: table %q already exists", name)
	}
	if len(specs) == 0 {
		return nil, errors.New("mdb: table needs at least one column")
	}
	t := &Table{Name: name, byName: make(map[string]*Column)}
	for _, sp := range specs {
		if _, dup := t.byName[sp.Name]; dup {
			return nil, fmt.Errorf("mdb: duplicate column %q", sp.Name)
		}
		c := &Column{Name: sp.Name, Kind: sp.Kind}
		var err error
		switch sp.Kind {
		case KindInt:
			c.Ints, err = bat.NewInts(db.region, 1024)
		case KindString:
			c.Strs, err = bat.NewStrings(db.region, 1024, 64*1024)
		case KindShort:
			c.Shorts, err = bat.NewShorts(db.region, 1024)
		default:
			err = fmt.Errorf("mdb: unknown kind %v", sp.Kind)
		}
		if err != nil {
			return nil, err
		}
		t.cols = append(t.cols, c)
		t.byName[sp.Name] = c
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("mdb: no table %q", name)
	}
	return t, nil
}

// RegisterUDF installs a BAT-level UDF under the given (lower-case) name.
func (db *DB) RegisterUDF(name string, f UDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfs[name] = f
}

// UDF looks up a registered UDF.
func (db *DB) UDF(name string) (UDF, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f, ok := db.udfs[name]
	return f, ok
}

// workers returns the scan parallelism under the current mode.
func (db *DB) workers() int {
	if db.Mode == SequentialPipe || db.Threads < 1 {
		return 1
	}
	return db.Threads
}

// Selection is the result of a predicate scan: the qualifying OIDs plus the
// work performed.
type Selection struct {
	OIDs []uint32
	Work perf.Work
}

// Count returns the number of selected rows.
func (s *Selection) Count() int { return len(s.OIDs) }

// scanStrings partitions the column horizontally and applies match to every
// row; match returns (selected, extra work for the row).
func (db *DB) scanStrings(col *Column, match func(row []byte) (bool, perf.Work)) (*Selection, error) {
	if col.Kind != KindString {
		return nil, fmt.Errorf("mdb: string scan over %v column %q", col.Kind, col.Name)
	}
	start := time.Now()
	n := col.Strs.Count()
	w := db.workers()
	if n < 4*w {
		w = 1
	}
	parts := make([]*Selection, w)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for p := 0; p < w; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			parts[p] = &Selection{}
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			sel := &Selection{}
			for i := lo; i < hi; i++ {
				row := col.Strs.Get(i)
				ok, work := match(row)
				sel.Work.Rows++
				sel.Work.Bytes += uint64(len(row))
				sel.Work.Add(work)
				if ok {
					sel.OIDs = append(sel.OIDs, uint32(i))
				}
			}
			parts[p] = sel
		}(p, lo, hi)
	}
	wg.Wait()
	out := &Selection{}
	for _, part := range parts {
		out.OIDs = append(out.OIDs, part.OIDs...)
		out.Work.Add(part.Work)
	}
	db.Tel.Counter("mdb.scan.rows").Add(int64(n))
	db.Tel.Counter("mdb.scan.selected").Add(int64(len(out.OIDs)))
	db.Tel.Counter("mdb.scan.bytes").Add(int64(out.Work.Bytes))
	db.Tel.Counter("mdb.scan.wall_ns").Add(time.Since(start).Nanoseconds())
	return out, nil
}

// SelectLike scans the column with a LIKE (or ILIKE) pattern.
func (db *DB) SelectLike(t *Table, colName, pattern string, foldCase bool) (*Selection, error) {
	col, err := t.Column(colName)
	if err != nil {
		return nil, err
	}
	p, err := strmatch.CompileLike(pattern, foldCase)
	if err != nil {
		return nil, err
	}
	db.Tel.Counter("mdb.like.queries").Inc()
	// Byte comparisons are approximated per row from the pattern
	// structure: Boyer-Moore segments examine a fraction of the row.
	return db.scanStrings(col, func(row []byte) (bool, perf.Work) {
		ok := p.Match(row)
		cmp := uint64(len(row)/3 + 8*p.Segments())
		return ok, perf.Work{Comparisons: cmp}
	})
}

// SelectRegexp scans the column with the PCRE-style backtracking matcher
// (MonetDB's REGEXP_LIKE path).
func (db *DB) SelectRegexp(t *Table, colName, pattern string, foldCase bool) (*Selection, error) {
	col, err := t.Column(colName)
	if err != nil {
		return nil, err
	}
	bt, err := softregex.NewBacktracker(pattern, foldCase)
	if err != nil {
		return nil, err
	}
	db.Tel.Counter("mdb.regexp.queries").Inc()
	return db.scanStrings(col, func(row []byte) (bool, perf.Work) {
		pos, steps := bt.Match(row)
		return pos != 0, perf.Work{Steps: steps, RegexRows: 1}
	})
}

// EnsureContainsIndex builds the inverted index for the column if missing,
// returning whether a build happened and the rows indexed (for the index
// cost accounting of §7.2).
func (db *DB) EnsureContainsIndex(t *Table, colName string) (built bool, rows int, err error) {
	col, err := t.Column(colName)
	if err != nil {
		return false, 0, err
	}
	if col.Kind != KindString {
		return false, 0, fmt.Errorf("mdb: CONTAINS index on %v column", col.Kind)
	}
	col.idxMu.Lock()
	defer col.idxMu.Unlock()
	if col.index != nil {
		return false, 0, nil
	}
	n := col.Strs.Count()
	all := make([]string, n)
	for i := 0; i < n; i++ {
		all[i] = col.Strs.GetString(i)
	}
	col.index = invindex.Build(all, true)
	col.index.AttachTelemetry(db.Tel)
	return true, n, nil
}

// SelectContains answers a conjunctive CONTAINS query via the inverted
// index (building it on first use).
func (db *DB) SelectContains(t *Table, colName, query string) (*Selection, error) {
	if _, _, err := db.EnsureContainsIndex(t, colName); err != nil {
		return nil, err
	}
	col, _ := t.Column(colName)
	db.Tel.Counter("mdb.contains.queries").Inc()
	oids, lookups, err := col.index.Search(query)
	if err != nil {
		return nil, err
	}
	st := col.index.Stats()
	// Postings touched ≈ lookups' average list length; use the exact
	// intersection inputs when available (approximate by total/words).
	var postings uint64
	if st.Words > 0 {
		postings = uint64(lookups) * uint64(st.Postings/st.Words)
	}
	return &Selection{OIDs: oids, Work: perf.Work{Rows: len(oids), Postings: postings}}, nil
}

// CallUDF invokes a registered UDF over a string column. A nil ctx reads
// as context.Background().
func (db *DB) CallUDF(ctx context.Context, name string, t *Table, colName, arg string) (*UDFResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	f, ok := db.UDF(name)
	if !ok {
		return nil, fmt.Errorf("mdb: unknown UDF %q", name)
	}
	col, err := t.Column(colName)
	if err != nil {
		return nil, err
	}
	if col.Kind != KindString {
		return nil, fmt.Errorf("mdb: UDF %s over %v column", name, col.Kind)
	}
	db.Tel.Counter("mdb.udf.calls").Inc()
	return f(ctx, col.Strs, arg)
}

// LoadAddressTable bulk-creates the paper's two-column address table.
func (db *DB) LoadAddressTable(name string, rows []string) (*Table, error) {
	t, err := db.CreateTable(name,
		ColSpec{Name: "id", Kind: KindInt},
		ColSpec{Name: "address_string", Kind: KindString},
	)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := t.AppendRow(int32(i), r); err != nil {
			return nil, err
		}
	}
	return t, nil
}
