// Package workload generates the paper's evaluation data (§7.1.1): shipment
// address strings of the form
//
//	John|Smith|44 Koblenzer Strasse|60327|Frankfurt
//
// stored in a two-column table (INT id, VARCHAR address). Strings default to
// 64 bytes. Hits for a query are inserted uniformly at random with a target
// selectivity, so every experiment knows its ground truth by construction.
// The package also generates the TPC-H SF-0.1 customer/orders subset used by
// the complex-query experiment (Figure 12, TPC-H Q13).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Default string length in the evaluation.
const DefaultStrLen = 64

// Name/street/city pools. Deliberately free of the evaluation patterns so
// that non-hit rows never match (Strasse, Str., 8xxxx zips, currency
// amounts, and AAA:9999 codes are only injected as hits).
var (
	firstNames = []string{"John", "Anna", "Hans", "Maria", "Peter", "Julia",
		"Karl", "Nina", "Oskar", "Lena", "Felix", "Carla"}
	lastNames = []string{"Smith", "Miller", "Maier", "Weber", "Fischer",
		"Wagner", "Becker", "Hoffmann", "Koch", "Richter"}
	streets = []string{"Lindenweg", "Hauptallee", "Gartenpfad", "Mühlgasse",
		"Am Anger", "Ringweg", "Talgrund", "Ufersteig", "Birkenallee"}
	cities = []string{"Frankfurt", "Muenchen", "Zuerich", "Wien", "Hamburg",
		"Basel", "Koeln", "Dresden", "Leipzig", "Bremen"}
)

// Queries of the evaluation (§7.1.1) plus the hybrid query QH (§7.8).
const (
	Q1Like  = `%Strasse%`
	Q1Regex = `Strasse`
	Q2      = `(Strasse|Str\.).*(8[0-9]{4})`
	Q3      = `[0-9]+(USD|EUR|GBP)`
	Q4      = `[A-Za-z]{3}\:[0-9]{4}`
	QH      = `(Strasse|Str\.).*(8[0-9]{4}).*delivery`
	// Table1Pattern is the multi-substring pattern of the introduction.
	Table1Like     = `%Alan%Turing%Cheshire%`
	Table1Regex    = `Alan.*Turing.*Cheshire`
	Table1Contains = `Alan & Turing & Cheshire`
)

// HitKind selects which query's hit is injected into a row.
type HitKind int

// Hit kinds for the generator.
const (
	HitNone   HitKind = iota
	HitQ1             // ...Strasse...
	HitQ2             // Strasse/Str. followed by an 8xxxx zip
	HitQ3             // amount + currency
	HitQ4             // AAA:9999 code
	HitQH             // Q2 hit followed by "delivery"
	HitTable1         // Alan ... Turing ... Cheshire
)

// Generator produces address rows deterministically from a seed.
type Generator struct {
	rng    *rand.Rand
	strLen int
}

// NewGenerator creates a generator; strLen <= 0 selects DefaultStrLen.
func NewGenerator(seed int64, strLen int) *Generator {
	if strLen <= 0 {
		strLen = DefaultStrLen
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), strLen: strLen}
}

// Row produces one address string, injecting the hit kind's pattern.
func (g *Generator) Row(kind HitKind) string {
	r := g.rng
	first := firstNames[r.Intn(len(firstNames))]
	last := lastNames[r.Intn(len(lastNames))]
	city := cities[r.Intn(len(cities))]
	num := r.Intn(98) + 1
	var street, zip, extra string
	switch kind {
	case HitQ1:
		street = "Koblenzer Strasse"
		zip = fmt.Sprintf("%05d", 10000+r.Intn(60000))
	case HitQ2:
		if r.Intn(2) == 0 {
			street = "Koblenzer Strasse"
		} else {
			street = "Koblenzer Str."
		}
		zip = fmt.Sprintf("8%04d", r.Intn(10000))
	case HitQH:
		street = "Koblenzer Strasse"
		zip = fmt.Sprintf("8%04d", r.Intn(10000))
		extra = "delivery"
	case HitQ3:
		street = streets[r.Intn(len(streets))]
		zip = fmt.Sprintf("%05d", 10000+r.Intn(60000))
		cur := []string{"USD", "EUR", "GBP"}[r.Intn(3)]
		extra = fmt.Sprintf("%d%s", r.Intn(900)+10, cur)
	case HitQ4:
		street = streets[r.Intn(len(streets))]
		zip = fmt.Sprintf("%05d", 10000+r.Intn(60000))
		extra = fmt.Sprintf("%c%c%c:%04d",
			'A'+r.Intn(26), 'a'+r.Intn(26), 'a'+r.Intn(26), r.Intn(10000))
	case HitTable1:
		first, last = "Alan", "Turing"
		street = streets[r.Intn(len(streets))]
		zip = fmt.Sprintf("%05d", 10000+r.Intn(60000))
		city = "Cheshire"
	default:
		street = streets[r.Intn(len(streets))]
		// Avoid zips starting with 8 so Q2 has zero false hits.
		zip = fmt.Sprintf("%d%04d", 1+r.Intn(7), r.Intn(10000))
	}
	s := fmt.Sprintf("%s|%s|%d %s|%s|%s", first, last, num, street, zip, city)
	if extra != "" {
		s += "|" + extra
	}
	return g.pad(s)
}

// pad brings the row to the generator's fixed length (truncating from the
// middle never removes an injected hit because hits sit in the left half;
// padding appends neutral filler).
func (g *Generator) pad(s string) string {
	if len(s) >= g.strLen {
		return s
	}
	return s + strings.Repeat(".", g.strLen-len(s))
}

// Table generates n rows with the given hit kind at the target selectivity;
// hit rows are chosen uniformly at random. It returns the rows and the
// exact number of injected hits.
func (g *Generator) Table(n int, kind HitKind, selectivity float64) ([]string, int) {
	rows := make([]string, n)
	hits := 0
	for i := range rows {
		k := HitNone
		if g.rng.Float64() < selectivity {
			k = kind
			hits++
		}
		rows[i] = g.Row(k)
	}
	return rows, hits
}

// MixedTable generates n rows where each query kind gets the target
// selectivity independently (used by multi-query experiments).
func (g *Generator) MixedTable(n int, selectivity float64, kinds ...HitKind) []string {
	rows := make([]string, n)
	for i := range rows {
		k := HitNone
		for _, cand := range kinds {
			if g.rng.Float64() < selectivity/float64(len(kinds)) {
				k = cand
				break
			}
		}
		rows[i] = g.Row(k)
	}
	return rows
}
