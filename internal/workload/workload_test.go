package workload

import (
	"strings"
	"testing"

	"doppiodb/internal/strmatch"
	"doppiodb/internal/token"
)

func matcher(t *testing.T, pat string) func(string) bool {
	t.Helper()
	p, err := token.CompilePattern(pat, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return func(s string) bool { return p.MatchString(s) != 0 }
}

func TestSelectivityByConstruction(t *testing.T) {
	// The generator's injected hit count must exactly equal the number
	// of rows each query matches: no false positives from filler text.
	cases := []struct {
		kind HitKind
		pat  string
	}{
		{HitQ1, Q1Regex},
		{HitQ2, Q2},
		{HitQ3, Q3},
		{HitQ4, Q4},
		{HitQH, QH},
		{HitTable1, Table1Regex},
	}
	for _, c := range cases {
		g := NewGenerator(7, 64)
		rows, hits := g.Table(20_000, c.kind, 0.2)
		m := matcher(t, c.pat)
		got := 0
		for _, r := range rows {
			if m(r) {
				got++
			}
		}
		if got != hits {
			t.Errorf("kind %d pattern %q: matched %d, injected %d",
				c.kind, c.pat, got, hits)
		}
		frac := float64(hits) / float64(len(rows))
		if frac < 0.18 || frac > 0.22 {
			t.Errorf("kind %d: selectivity %.3f, want ≈0.2", c.kind, frac)
		}
	}
}

func TestHitKindsAreDisjointFromOtherQueries(t *testing.T) {
	// A Q1 hit must not accidentally satisfy Q2, Q3 or Q4 etc., so
	// multi-query experiments have independent ground truth.
	g := NewGenerator(3, 64)
	rows, _ := g.Table(5_000, HitQ1, 1.0)
	for _, pat := range []string{Q2, Q3, Q4} {
		m := matcher(t, pat)
		for _, r := range rows {
			if m(r) {
				t.Fatalf("Q1 hit row %q matches %q", r, pat)
			}
		}
	}
	rows, _ = g.Table(5_000, HitNone, 0)
	for _, pat := range []string{Q1Regex, Q2, Q3, Q4, QH, Table1Regex} {
		m := matcher(t, pat)
		for _, r := range rows {
			if m(r) {
				t.Fatalf("non-hit row %q matches %q", r, pat)
			}
		}
	}
}

func TestRowLength(t *testing.T) {
	g := NewGenerator(1, 64)
	for kind := HitNone; kind <= HitTable1; kind++ {
		for i := 0; i < 200; i++ {
			r := g.Row(kind)
			if len(r) < 64 {
				t.Fatalf("kind %d row too short: %q", kind, r)
			}
			if len(r) > 96 {
				t.Fatalf("kind %d row too long (%d): %q", kind, len(r), r)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(42, 64).Table(1000, HitQ2, 0.2)
	b, _ := NewGenerator(42, 64).Table(1000, HitQ2, 0.2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestQHHitsAreQ2Hits(t *testing.T) {
	// §7.8: "all strings matching the first part will contain the last
	// part as well" — QH hits satisfy Q2, and the delivery postfix.
	g := NewGenerator(11, 80)
	rows, _ := g.Table(2_000, HitQH, 1.0)
	q2 := matcher(t, Q2)
	for _, r := range rows {
		if !q2(r) {
			t.Fatalf("QH hit does not match Q2: %q", r)
		}
		if !strings.Contains(r, "delivery") {
			t.Fatalf("QH hit lacks delivery: %q", r)
		}
	}
}

func TestTable1LikeAgreesWithRegex(t *testing.T) {
	g := NewGenerator(5, 64)
	rows, hits := g.Table(5_000, HitTable1, 0.3)
	lp, err := strmatch.CompileLike(Table1Like, false)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, r := range rows {
		if lp.MatchString(r) {
			got++
		}
	}
	if got != hits {
		t.Errorf("LIKE matched %d, injected %d", got, hits)
	}
}

func TestGenerateTPCH(t *testing.T) {
	tp := GenerateTPCH(9, 0.01, 0.01)
	if len(tp.Customers) != 1500 || len(tp.Orders) != 15000 {
		t.Fatalf("cardinalities: %d customers, %d orders",
			len(tp.Customers), len(tp.Orders))
	}
	// No order references a mod-3 customer or an out-of-range key.
	special := 0
	lp, _ := strmatch.CompileLike(`%special%requests%`, false)
	for _, o := range tp.Orders {
		if o.CustKey%3 == 0 || o.CustKey < 1 || int(o.CustKey) > len(tp.Customers) {
			t.Fatalf("bad custkey %d", o.CustKey)
		}
		if lp.MatchString(o.Comment) {
			special++
		}
	}
	if special == 0 {
		t.Error("no special-requests comments generated")
	}
	frac := float64(special) / float64(len(tp.Orders))
	if frac < 0.003 || frac > 0.03 {
		t.Errorf("special fraction %.4f out of range", frac)
	}
}

func TestQ13Reference(t *testing.T) {
	tp := GenerateTPCH(9, 0.01, 0.01)
	lp, _ := strmatch.CompileLike(`%special%requests%`, false)
	hist := tp.Q13Reference(func(c string) bool { return lp.MatchString(c) })
	totalCust := 0
	totalOrders := 0
	for cnt, n := range hist {
		totalCust += n
		totalOrders += cnt * n
	}
	if totalCust != len(tp.Customers) {
		t.Errorf("histogram covers %d customers, want %d", totalCust, len(tp.Customers))
	}
	if hist[0] == 0 {
		t.Error("no zero-order customers; dbgen's mod-3 rule should create them")
	}
	if totalOrders == 0 || totalOrders > len(tp.Orders) {
		t.Errorf("histogram orders = %d", totalOrders)
	}
}

func TestMixedTable(t *testing.T) {
	g := NewGenerator(2, 64)
	rows := g.MixedTable(10_000, 0.4,
		HitQ1, HitQ2, HitQ3, HitQ4)
	if len(rows) != 10_000 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Every kind should appear at roughly selectivity/kinds frequency.
	for _, c := range []struct {
		pat string
	}{{Q2}, {Q3}, {Q4}} {
		m := matcher(t, c.pat)
		hits := 0
		for _, r := range rows {
			if m(r) {
				hits++
			}
		}
		frac := float64(hits) / float64(len(rows))
		if frac < 0.05 || frac > 0.15 {
			t.Errorf("%q: fraction %.3f, want ≈0.1", c.pat, frac)
		}
	}
}

func TestFormatRow(t *testing.T) {
	if got := FormatRow(3, "abc"); got != "3\tabc" {
		t.Errorf("FormatRow = %q", got)
	}
}
