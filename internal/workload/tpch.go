package workload

import (
	"fmt"
	"math/rand"
)

// TPC-H subset for Query 13 (§7.7): customer and orders with realistic
// cardinalities. At scale factor SF there are 150,000×SF customers and
// 1,500,000×SF orders; about a third of customers have no orders. The
// o_comment column occasionally contains the "special ... requests" phrase
// Q13 filters out, mirroring dbgen's comment grammar.
const (
	CustomersPerSF = 150_000
	OrdersPerSF    = 1_500_000
)

// TPCHCustomer is one customer row (the columns Q13 touches).
type TPCHCustomer struct {
	CustKey int32
}

// TPCHOrder is one orders row (the columns Q13 touches).
type TPCHOrder struct {
	OrderKey int32
	CustKey  int32
	Comment  string
}

// TPCH holds the generated subset.
type TPCH struct {
	Customers []TPCHCustomer
	Orders    []TPCHOrder
}

var commentWords = []string{
	"furiously", "carefully", "quickly", "blithely", "deposits", "accounts",
	"packages", "theodolites", "instructions", "foxes", "pinto", "beans",
	"ideas", "pending", "express", "regular", "final", "bold", "even",
	"silent", "sleep", "haggle", "nag", "wake", "cajole",
}

// GenerateTPCH builds the Q13 subset at the given scale factor (the paper
// uses 0.1 for memory reasons). specialFraction controls how many order
// comments contain "special ... requests" (dbgen yields roughly 1%).
func GenerateTPCH(seed int64, sf float64, specialFraction float64) *TPCH {
	r := rand.New(rand.NewSource(seed))
	nCust := int(float64(CustomersPerSF) * sf)
	nOrd := int(float64(OrdersPerSF) * sf)
	t := &TPCH{
		Customers: make([]TPCHCustomer, nCust),
		Orders:    make([]TPCHOrder, nOrd),
	}
	for i := range t.Customers {
		t.Customers[i] = TPCHCustomer{CustKey: int32(i + 1)}
	}
	for i := range t.Orders {
		// dbgen assigns orders to two thirds of customers: customers
		// whose key is ≡ 0 (mod 3) stay orderless.
		ck := int32(r.Intn(nCust) + 1)
		for ck%3 == 0 {
			ck = int32(r.Intn(nCust) + 1)
		}
		t.Orders[i] = TPCHOrder{
			OrderKey: int32(i + 1),
			CustKey:  ck,
			Comment:  genComment(r, specialFraction),
		}
	}
	return t
}

func genComment(r *rand.Rand, specialFraction float64) string {
	n := 5 + r.Intn(6)
	words := make([]string, n)
	for i := range words {
		words[i] = commentWords[r.Intn(len(commentWords))]
	}
	if r.Float64() < specialFraction {
		// The phrase Q13 excludes: "special" followed later by
		// "requests" (the LIKE pattern is %special%requests%).
		i := r.Intn(n - 1)
		words[i] = "special"
		words[i+1+r.Intn(n-i-1)] = "requests"
	}
	out := words[0]
	for _, w := range words[1:] {
		out += " " + w
	}
	return out
}

// Q13Reference computes TPC-H Q13's answer directly (the c_count →
// custdist histogram), the oracle the SQL engine is validated against.
// Orders whose comment matches the exclusion pattern are skipped.
func (t *TPCH) Q13Reference(excluded func(comment string) bool) map[int]int {
	perCust := make(map[int32]int, len(t.Customers))
	for _, c := range t.Customers {
		perCust[c.CustKey] = 0
	}
	for _, o := range t.Orders {
		if excluded(o.Comment) {
			continue
		}
		if _, ok := perCust[o.CustKey]; ok {
			perCust[o.CustKey]++
		}
	}
	hist := make(map[int]int)
	for _, cnt := range perCust {
		hist[cnt]++
	}
	return hist
}

// AddressTableName is the table name used across examples and experiments.
const AddressTableName = "address_table"

// FormatRow renders an (id, address) pair for datagen output.
func FormatRow(id int, addr string) string {
	return fmt.Sprintf("%d\t%s", id, addr)
}
