package flightrec

import (
	"strings"
	"sync"
	"testing"

	"doppiodb/internal/sim"
)

func TestRingRetainsMostRecent(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Type: EvJobSubmit, Engine: i, Unit: -1})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	w := r.Window()
	for i, e := range w {
		if e.Engine != 6+i {
			t.Fatalf("window[%d].Engine = %d, want %d (most recent retained)", i, e.Engine, 6+i)
		}
		if e.Seq != uint64(6+i) {
			t.Fatalf("window[%d].Seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
}

func TestSequenceMonotonicAcrossReset(t *testing.T) {
	r := New(8)
	r.Record(Event{})
	r.Record(Event{})
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	r.Record(Event{})
	w := r.Window()
	if len(w) != 1 || w[0].Seq != 2 {
		t.Fatalf("after reset: window = %+v, want single event with Seq 2", w)
	}
}

func TestWallTimeStamped(t *testing.T) {
	r := New(2)
	r.Record(Event{})
	if w := r.Window(); w[0].WallNS == 0 {
		t.Fatal("Record did not stamp WallNS")
	}
	r.Record(Event{WallNS: 42})
	if w := r.Window(); w[1].WallNS != 42 {
		t.Fatalf("Record overwrote caller's WallNS: %d", w[1].WallNS)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	r.Reset()
	r.SetSink(nil)
	r.DumpOnDegrade("x")
	if r.Window() != nil || r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Dumps() != 0 {
		t.Fatal("nil recorder must read as empty")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Type: EvJobSubmit, Engine: -1, Unit: -1})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Fatalf("Total = %d, want 800", r.Total())
	}
	seen := make(map[uint64]bool)
	for _, e := range r.Window() {
		if seen[e.Seq] {
			t.Fatalf("duplicate Seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpOnDegrade(t *testing.T) {
	r := New(8)
	r.Record(Event{Type: EvWatchdog, Engine: 1, Unit: -1, Note: "stuck-done"})
	r.Record(Event{Type: EvBreakerTrip, Engine: 1, Unit: -1})

	// Without a sink the dump is counted but writes nowhere.
	r.DumpOnDegrade("watchdog")
	if r.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", r.Dumps())
	}

	var b strings.Builder
	r.SetSink(&b)
	r.DumpOnDegrade("hal: watchdog timeout")
	out := b.String()
	for _, want := range []string{"query degraded", "watchdog timeout", "breaker-trip", "stuck-done", "2 event(s) retained"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	if r.Dumps() != 2 {
		t.Fatalf("Dumps = %d, want 2", r.Dumps())
	}
}

func TestMemObserverCoalescesGrants(t *testing.T) {
	r := New(64)
	o := NewMemObserver(r, 1000*sim.Microsecond)

	// Three back-to-back grants, a link idle gap, then one more.
	o.JobStart(0, 0, 0)
	o.Grant(0, 16, 0, 100)
	o.Grant(0, 16, 100, 200)
	o.Grant(1, 16, 200, 300) // different engine, still contiguous: same burst
	o.Grant(0, 16, 500, 600) // gap: new burst
	o.JobDone(0, 0, 600)
	o.Flush()

	var bursts []Event
	for _, e := range r.Window() {
		if e.Type == EvGrantBurst {
			bursts = append(bursts, e)
		}
	}
	if len(bursts) != 2 {
		t.Fatalf("got %d bursts, want 2 (coalesced + post-idle)", len(bursts))
	}
	if bursts[0].Arg != 48 || bursts[0].Dur != 300 {
		t.Fatalf("first burst = %d lines over %v, want 48 lines over 300ps", bursts[0].Arg, bursts[0].Dur)
	}
	if bursts[0].Sim != 1000*sim.Microsecond {
		t.Fatalf("burst not rebased onto continuous timeline: Sim = %v", bursts[0].Sim)
	}
	if bursts[0].Domain != DomainFabric {
		t.Fatalf("burst domain = %v, want fabric", bursts[0].Domain)
	}
	if bursts[1].Arg != 16 {
		t.Fatalf("second burst = %d lines, want 16", bursts[1].Arg)
	}

	start, end, ok := o.JobWindow(0, 0)
	if !ok || start != 0 || end != 600 {
		t.Fatalf("JobWindow = (%v, %v, %v), want (0, 600, true)", start, end, ok)
	}
}

func TestTypeAndDomainNames(t *testing.T) {
	if int(numTypes) != len(typeNames) {
		t.Fatalf("typeNames has %d entries for %d types", len(typeNames), int(numTypes))
	}
	for ty := Type(0); ty < numTypes; ty++ {
		if strings.HasPrefix(ty.String(), "type(") {
			t.Fatalf("type %d has no name", ty)
		}
	}
	if DomainFabric.Clock() != sim.FabricClock || DomainPU.Clock() != sim.PUClock {
		t.Fatal("domain clock mapping wrong")
	}
}
