// Chrome-trace-event export: renders the flight-recorder window (and,
// optionally, telemetry span trees) as a JSON document that opens directly
// in ui.perfetto.dev or chrome://tracing — the per-engine / per-PU /
// memory-arbiter "waveform" view the paper's evaluation figures imply.
//
// All timestamps are on the *simulated* timebase (the recorder's continuous
// timeline across arbitration rounds), expressed in the trace format's
// microseconds. Durations of hardware windows are derived from their cycle
// counts in the event's clock domain, so the 200 MHz fabric and the 400 MHz
// Processing Units each render at their own period.
package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// Track process ids of the exported trace. Each pid renders as one named
// track group in Perfetto.
const (
	PidEngine  = 1 // per-engine job execution windows
	PidPU      = 2 // per-Processing-Unit busy windows (400 MHz domain)
	PidArbiter = 3 // QPI link grant bursts + offset↔heap switches
	PidControl = 4 // software-side control plane: submits, faults, breaker
	PidQuery   = 5 // telemetry span trees (query lifecycle)
	PidTopdown = 6 // sampled topdown utilization counter tracks (basis points)
)

// traceEvent is one entry of the Chrome trace-event format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported document.
type chromeTrace struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// SimDur returns the event's simulated duration: the explicit Dur when set,
// otherwise the cycle count scaled by the event's clock domain.
func (e Event) SimDur() sim.Time {
	if e.Dur > 0 {
		return e.Dur
	}
	if e.Cycles > 0 {
		return e.Domain.Clock().Cycles(e.Cycles)
	}
	return 0
}

// us converts a simulated time to trace microseconds.
func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChromeTrace writes the events (plus optional query span trees) as a
// Chrome trace-event JSON document. Events within each track are emitted in
// non-decreasing timestamp order.
func WriteChromeTrace(w io.Writer, events []Event, spans ...*telemetry.Span) error {
	var out []traceEvent
	type track struct{ pid, tid int }
	threads := make(map[track]string)

	for _, e := range events {
		switch e.Type {
		case EvJobExec:
			threads[track{PidEngine, e.Engine}] = fmt.Sprintf("engine %d", e.Engine)
			out = append(out, traceEvent{
				Name: fmt.Sprintf("job %d", e.Job), Ph: "X",
				TS: us(e.Sim), Dur: us(e.SimDur()),
				PID: PidEngine, TID: e.Engine,
				Args: map[string]any{"bytes": e.Arg, "job": e.Job},
			})
		case EvEngineConfig:
			threads[track{PidEngine, e.Engine}] = fmt.Sprintf("engine %d", e.Engine)
			out = append(out, traceEvent{
				Name: "configure", Ph: "X",
				TS: us(e.Sim), Dur: us(e.SimDur()),
				PID: PidEngine, TID: e.Engine,
				Args: map[string]any{"job": e.Job},
			})
		case EvPUBusy:
			tid := e.Engine*64 + e.Unit
			threads[track{PidPU, tid}] = fmt.Sprintf("e%d/pu%02d", e.Engine, e.Unit)
			out = append(out, traceEvent{
				Name: "pu-match", Ph: "X",
				TS: us(e.Sim), Dur: us(e.SimDur()),
				PID: PidPU, TID: tid,
				Args: map[string]any{"cycles": e.Cycles, "clock": e.Domain.Clock().String(), "job": e.Job},
			})
		case EvGrantBurst:
			threads[track{PidArbiter, 0}] = "qpi link"
			out = append(out, traceEvent{
				Name: "grant-burst", Ph: "X",
				TS: us(e.Sim), Dur: us(e.SimDur()),
				PID: PidArbiter, TID: 0,
				Args: map[string]any{"lines": e.Arg, "cycles": e.Cycles, "clock": e.Domain.Clock().String()},
			})
		case EvPhaseSwitch:
			tid := 1 + e.Engine
			threads[track{PidArbiter, tid}] = fmt.Sprintf("switches e%d", e.Engine)
			out = append(out, traceEvent{
				Name: "offset/heap switch", Ph: "i",
				TS: us(e.Sim), PID: PidArbiter, TID: tid, S: "t",
			})
		case EvUtilSample:
			// Topdown utilization timeline: one counter track per engine
			// (and one for the link), stepped per simulation round. A
			// trailing zero sample closes each round so inter-round gaps
			// don't render as sustained load.
			var name string
			var vals map[string]any
			tid := 1 + e.Engine
			if e.Engine >= 0 && len(e.Vals) >= 6 {
				name = fmt.Sprintf("topdown e%d (bp)", e.Engine)
				vals = map[string]any{
					"busy": e.Vals[0], "stall_input": e.Vals[1],
					"stall_switch": e.Vals[2], "stall_output": e.Vals[3],
					"config": e.Vals[4], "idle": e.Vals[5],
				}
			} else if e.Engine < 0 && len(e.Vals) >= 3 {
				name = "topdown qpi (bp)"
				tid = 0
				vals = map[string]any{
					"busy": e.Vals[0], "arbitration": e.Vals[1], "idle": e.Vals[2],
				}
			} else {
				continue
			}
			threads[track{PidTopdown, tid}] = name
			out = append(out, traceEvent{
				Name: name, Ph: "C", TS: us(e.Sim),
				PID: PidTopdown, TID: tid, Args: vals,
			})
			zero := make(map[string]any, len(vals))
			for k := range vals {
				zero[k] = 0
			}
			out = append(out, traceEvent{
				Name: name, Ph: "C", TS: us(e.Sim + e.Dur),
				PID: PidTopdown, TID: tid, Args: zero,
			})
		default:
			// Control-plane instants: submits, watchdog, faults, breaker
			// trips/readmissions, degradations, dump marks.
			name := e.Type.String()
			if e.Note != "" {
				name += ": " + e.Note
			}
			args := map[string]any{}
			if e.Engine >= 0 {
				args["engine"] = e.Engine
			}
			if e.Job > 0 {
				args["job"] = e.Job
			}
			threads[track{PidControl, 0}] = "control plane"
			out = append(out, traceEvent{
				Name: name, Ph: "i",
				TS: us(e.Sim), PID: PidControl, TID: 0, S: "t",
				Args: args,
			})
		}
	}

	for i, root := range spans {
		if root == nil {
			continue
		}
		threads[track{PidQuery, i}] = fmt.Sprintf("query %d: %s", i, root.Name)
		layoutSpan(root, i, 0, &out)
	}

	// Track metadata, then events sorted per track by timestamp (longer
	// slices first at equal timestamps so parents precede children).
	meta := []traceEvent{
		{Name: "process_name", Ph: "M", PID: PidEngine, Args: map[string]any{"name": "regex engines (fabric 200MHz)"}},
		{Name: "process_name", Ph: "M", PID: PidPU, Args: map[string]any{"name": "processing units (400MHz)"}},
		{Name: "process_name", Ph: "M", PID: PidArbiter, Args: map[string]any{"name": "memory arbiter (QPI)"}},
		{Name: "process_name", Ph: "M", PID: PidControl, Args: map[string]any{"name": "HAL control plane"}},
		{Name: "process_name", Ph: "M", PID: PidQuery, Args: map[string]any{"name": "query lifecycle (spans)"}},
		{Name: "process_name", Ph: "M", PID: PidTopdown, Args: map[string]any{"name": "topdown utilization (basis points)"}},
	}
	tracks := make([]track, 0, len(threads))
	for t := range threads {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, t := range tracks {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: t.pid, TID: t.tid,
			Args: map[string]any{"name": threads[t]},
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Dur > b.Dur
	})

	doc := chromeTrace{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ns",
		OtherData: map[string]string{
			"timebase": "simulated",
			"clocks":   "fabric=200MHz pu=400MHz",
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// layoutSpan places a span tree on a query track. Spans carry durations,
// not offsets, so children are laid out sequentially from the parent's
// start — an approximation for pipelined hardware sub-spans, whose overlap
// the engine/PU/arbiter tracks show exactly.
func layoutSpan(s *telemetry.Span, tid int, ts float64, out *[]traceEvent) float64 {
	dur := us(s.Sim())
	args := map[string]any{}
	for k, v := range s.Attrs() {
		args[k] = v
	}
	if w := s.Wall(); w > 0 {
		args["wall_ns"] = w.Nanoseconds()
	}
	*out = append(*out, traceEvent{
		Name: s.Name, Ph: "X", TS: ts, Dur: dur,
		PID: PidQuery, TID: tid, Args: args,
	})
	cursor := ts
	var used float64
	for _, c := range s.Children() {
		d := layoutSpan(c, tid, cursor, out)
		cursor += d
		used += d
	}
	if used > dur {
		dur = used
	}
	return dur
}
