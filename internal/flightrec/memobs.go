// MemObserver adapts the recorder to the memory-model simulation: it
// satisfies memmodel.Observer structurally (both packages depend only on
// internal/sim, so no import is needed) and turns the simulation's
// per-grant callbacks into a bounded stream of timeline events.
//
// A fully utilized QPI link issues one 16-line grant every ~790 ns — tens
// of thousands per job — so recording each grant would thrash the ring and
// dominate the cost of the always-on recorder. Instead the observer
// coalesces back-to-back grants (the service of one starting exactly where
// the previous ended, i.e. the link never idled between them) into one
// grant burst per contiguous busy window; bursts break only where the link
// actually idled, which is exactly what the memory-arbiter track should
// show.
package flightrec

import (
	"doppiodb/internal/sim"
)

// jobKey identifies one job in a drain batch.
type jobKey struct{ engine, job int }

// window is a [start, end) interval on the batch-local timeline.
type window struct {
	start, end sim.Time
	started    bool
}

// MemObserver collects the simulated timeline of one arbitration round. It is
// used single-threaded inside memmodel.Simulate; Flush must be called after
// the simulation to emit the trailing grant burst.
type MemObserver struct {
	rec  *Recorder
	base sim.Time // offset onto the recorder's continuous sim timeline

	burst struct {
		active       bool
		start, end   sim.Time
		lines, count int64
	}
	windows map[jobKey]window
}

// NewMemObserver creates an observer recording into rec with batch-local
// times offset by base.
func NewMemObserver(rec *Recorder, base sim.Time) *MemObserver {
	return &MemObserver{rec: rec, base: base, windows: make(map[jobKey]window)}
}

// JobStart marks the first arbiter consideration of (engine, job).
func (o *MemObserver) JobStart(engine, job int, at sim.Time) {
	k := jobKey{engine, job}
	w := o.windows[k]
	if !w.started {
		w.start, w.started = at, true
		o.windows[k] = w
	}
}

// JobDone marks the completion of (engine, job).
func (o *MemObserver) JobDone(engine, job int, at sim.Time) {
	k := jobKey{engine, job}
	w := o.windows[k]
	w.end = at
	if !w.started {
		w.start, w.started = at, true
	}
	o.windows[k] = w
}

// Grant records one arbiter grant's service window, merging it into the
// current burst when the link stayed busy.
func (o *MemObserver) Grant(engine int, lines int64, start, end sim.Time) {
	b := &o.burst
	if b.active && start == b.end {
		b.end = end
		b.lines += lines
		b.count++
		return
	}
	o.flushBurst()
	b.active = true
	b.start, b.end = start, end
	b.lines, b.count = lines, 1
}

// PhaseSwitch records an offset↔heap turn of engine's String Reader.
func (o *MemObserver) PhaseSwitch(engine int, at sim.Time) {
	o.rec.Record(Event{
		Type:   EvPhaseSwitch,
		Sim:    o.base + at,
		Engine: engine,
		Unit:   -1,
	})
}

// Flush emits the trailing grant burst. Call once after Simulate returns.
func (o *MemObserver) Flush() { o.flushBurst() }

// flushBurst records the pending burst as one EvGrantBurst.
func (o *MemObserver) flushBurst() {
	b := &o.burst
	if !b.active {
		return
	}
	dur := b.end - b.start
	o.rec.Record(Event{
		Type:   EvGrantBurst,
		Sim:    o.base + b.start,
		Dur:    dur,
		Domain: DomainFabric,
		Cycles: sim.FabricClock.CyclesFor(dur),
		Engine: -1,
		Unit:   -1,
		Arg:    b.lines,
	})
	b.active = false
}

// JobWindow returns the batch-local execution window of (engine, job).
func (o *MemObserver) JobWindow(engine, job int) (start, end sim.Time, ok bool) {
	w, ok := o.windows[jobKey{engine, job}]
	return w.start, w.end, ok && w.started
}
