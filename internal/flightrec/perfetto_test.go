package flightrec

import (
	"bytes"
	"encoding/json"
	"testing"

	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// decodedTrace mirrors the exported document for assertions.
type decodedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func sampleEvents() []Event {
	return []Event{
		{Type: EvJobSubmit, Sim: 0, Engine: 0, Unit: -1, Job: 1, Arg: 4096},
		{Type: EvEngineConfig, Sim: 0, Dur: 300 * sim.Nanosecond, Domain: DomainFabric, Engine: 0, Unit: -1, Job: 1},
		{Type: EvJobExec, Sim: 0, Dur: 10 * sim.Microsecond, Engine: 0, Unit: -1, Job: 1, Arg: 4096},
		{Type: EvGrantBurst, Sim: 300 * sim.Nanosecond, Dur: 5 * sim.Microsecond, Domain: DomainFabric,
			Cycles: sim.FabricClock.CyclesFor(5 * sim.Microsecond), Engine: -1, Unit: -1, Arg: 64},
		// Cycle-count-only windows: duration must come from the domain clock.
		{Type: EvPUBusy, Sim: 300 * sim.Nanosecond, Domain: DomainPU, Cycles: 4000, Engine: 0, Unit: 0, Job: 1},
		{Type: EvPUBusy, Sim: 2 * sim.Microsecond, Domain: DomainPU, Cycles: 400, Engine: 0, Unit: 1, Job: 1},
		{Type: EvPhaseSwitch, Sim: 4 * sim.Microsecond, Engine: 0, Unit: -1},
		{Type: EvBreakerTrip, Sim: 9 * sim.Microsecond, Engine: 2, Unit: -1},
		{Type: EvDegrade, Sim: 10 * sim.Microsecond, Engine: -1, Unit: -1, Note: "watchdog"},
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var b bytes.Buffer
	root := telemetry.NewSpan("regexp_fpga")
	root.AddSim(12 * sim.Microsecond)
	root.SetAttr("rows", 100)
	hw := root.NewChild("hardware")
	hw.AddSim(10 * sim.Microsecond)

	if err := WriteChromeTrace(&b, sampleEvents(), root); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["timebase"] != "simulated" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}

	// All five track groups (engine, PU, arbiter, control, query) present.
	pids := map[int]bool{}
	var processNames int
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				processNames++
			}
			continue
		}
		pids[e.PID] = true
	}
	for _, pid := range []int{PidEngine, PidPU, PidArbiter, PidControl, PidQuery} {
		if !pids[pid] {
			t.Fatalf("no events on pid %d; got pids %v", pid, pids)
		}
	}
	if processNames != 6 {
		t.Fatalf("process_name metadata count = %d, want 6", processNames)
	}

	// Span tree landed on the query track.
	var querySlices int
	for _, e := range doc.TraceEvents {
		if e.PID == PidQuery && e.Ph == "X" {
			querySlices++
		}
	}
	if querySlices != 2 {
		t.Fatalf("query track has %d slices, want 2 (root + child)", querySlices)
	}
}

func TestChromeTraceMonotonicPerTrack(t *testing.T) {
	var b bytes.Buffer
	// Feed events deliberately out of order.
	ev := sampleEvents()
	ev[0], ev[len(ev)-1] = ev[len(ev)-1], ev[0]
	if err := WriteChromeTrace(&b, ev); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := map[[2]int]float64{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		k := [2]int{e.PID, e.TID}
		if prev, ok := last[k]; ok && e.TS < prev {
			t.Fatalf("track %v went backwards: %v after %v", k, e.TS, prev)
		}
		last[k] = e.TS
	}
}

func TestChromeTraceClockDomains(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc decodedTrace
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// 4000 PU cycles at 400 MHz = 10 µs; 400 cycles = 1 µs. The same cycle
	// count in the fabric domain would be twice as long — assert the PU
	// window durations really used the 400 MHz period.
	var got []float64
	for _, e := range doc.TraceEvents {
		if e.PID == PidPU && e.Ph == "X" {
			got = append(got, e.Dur)
		}
	}
	if len(got) != 2 {
		t.Fatalf("pu track has %d slices, want 2", len(got))
	}
	if got[0] != 10.0 || got[1] != 1.0 {
		t.Fatalf("pu durations = %v µs, want [10 1] (400 MHz scaling)", got)
	}
	// The grant burst carries fabric cycles consistent with its duration:
	// 5 µs at 200 MHz = 1000 cycles.
	for _, e := range doc.TraceEvents {
		if e.PID == PidArbiter && e.Ph == "X" {
			if c, ok := e.Args["cycles"].(float64); !ok || c != 1000 {
				t.Fatalf("grant burst cycles = %v, want 1000 (200 MHz over 5µs)", e.Args["cycles"])
			}
			if e.Dur != 5.0 {
				t.Fatalf("grant burst dur = %v µs, want 5", e.Dur)
			}
		}
	}
}

func TestSimDur(t *testing.T) {
	if d := (Event{Dur: 7 * sim.Nanosecond}).SimDur(); d != 7*sim.Nanosecond {
		t.Fatalf("explicit Dur not honoured: %v", d)
	}
	if d := (Event{Domain: DomainPU, Cycles: 400}).SimDur(); d != sim.Microsecond {
		t.Fatalf("400 PU cycles = %v, want 1µs", d)
	}
	if d := (Event{Domain: DomainFabric, Cycles: 200}).SimDur(); d != sim.Microsecond {
		t.Fatalf("200 fabric cycles = %v, want 1µs", d)
	}
	if d := (Event{}).SimDur(); d != 0 {
		t.Fatalf("instant SimDur = %v, want 0", d)
	}
}
