// Package flightrec is the black-box flight recorder of the simulated
// Xeon+FPGA platform: a bounded ring buffer of structured events — job
// submit and dispatch, engine parametrization, per-PU busy windows, QPI
// arbiter grant bursts and offset↔heap phase switches, watchdog fires,
// circuit-breaker trips and readmissions, degradations to the software
// operator — recorded always-on at negligible cost.
//
// Every event carries two clocks: the wall time of the host process and a
// simulated timestamp on a continuous timeline the device runtime maintains
// across arbitration rounds. Hardware-side events additionally carry a cycle count in
// their clock domain (the 200 MHz fabric or the 400 MHz Processing Units),
// so the exported timeline renders each domain at its own period — the
// "waveform" view the paper's evaluation figures imply.
//
// The recorder is a ring: when it wraps, the oldest events are overwritten
// and counted as dropped. That is the point — like an aircraft flight
// recorder it always holds the most recent window, so when the fault layer
// degrades a query the window explains what the hardware did leading up to
// it. Recording is nil-safe and cheap (one short critical section, no
// allocation); an unwired component costs one branch.
package flightrec

import (
	"fmt"
	"io"
	"sync"
	"time"

	"doppiodb/internal/sim"
)

// Type enumerates the recorded event kinds.
type Type uint8

const (
	// EvJobSubmit is the UDF handing a job to the HAL (wall-clocked).
	EvJobSubmit Type = iota
	// EvJobExec is an engine's execution window of one job on the
	// simulated timeline (resolved when its round runs).
	EvJobExec
	// EvEngineConfig is the engine parametrization window (the ~300 ns
	// configuration-vector load) at the head of a job.
	EvEngineConfig
	// EvPUBusy is one Processing Unit's busy window within a job; Cycles
	// counts 400 MHz PU cycles.
	EvPUBusy
	// EvGrantBurst is a contiguous run of arbiter grants on the QPI link;
	// Arg is the cache lines moved, Cycles the 200 MHz fabric cycles.
	EvGrantBurst
	// EvPhaseSwitch is a String Reader offset↔heap turn charging the
	// switch stall (§7.3's latency a lone engine cannot hide).
	EvPhaseSwitch
	// EvWatchdog is the done-bit watchdog firing.
	EvWatchdog
	// EvFault is a detected hardware fault (Note names the class).
	EvFault
	// EvBreakerTrip is the per-engine circuit breaker quarantining an
	// engine.
	EvBreakerTrip
	// EvReadmit is an engine returning from quarantine after a fresh
	// handshake and probe.
	EvReadmit
	// EvDegrade is a query degrading to the software operator.
	EvDegrade
	// EvDump marks a forensics dump request (SIGQUIT, \dump, degrade).
	EvDump
	// EvJobQueue is a dispatched job entering the device runtime's FIFO
	// backlog; Arg is the job's data volume in bytes.
	EvJobQueue
	// EvJobAdmit is the admission layer moving a job into an arbitration
	// round; Arg is the queue delay it accrued, in simulated nanoseconds.
	EvJobAdmit
	// EvJobCancel is a backlogged job aborted before its round was granted
	// (context cancellation, discard, or runtime shutdown).
	EvJobCancel
	// EvCalibDrift is the cost-model calibration auditor's drift alarm: the
	// rolling prediction error of a cost term left its configured band (Note
	// names the term and the rolling mean error).
	EvCalibDrift
	// EvShed is the admission layer rejecting (or a blocked dispatcher
	// abandoning) a group because the backlog sat at a configured cap; Arg
	// is the group's job count.
	EvShed
	// EvDeadline is the deadline machinery acting: a group refused at
	// admission (cost-model ETA over budget) or aborted overdue at a round
	// boundary; Arg carries the ETA or the overshoot in simulated ns.
	EvDeadline
	// EvRetry is the query layer re-running a transiently failed hardware
	// query after a simulated backoff; Arg is the backoff in simulated ns.
	EvRetry
	// EvFabricReset is the full device reset after a quorum of engine
	// breakers latched: re-handshake, status scrub, breaker re-arm.
	EvFabricReset
	// EvSLOBurn is the SLO engine's multi-window burn-rate alert changing
	// state: the error-budget burn exceeded the threshold over both the
	// fast and slow windows (Note carries the rates), or cleared (Arg 0).
	EvSLOBurn
	// EvUtilSample is the topdown layer's per-round utilization sample:
	// one per engine (Vals = busy/stall-in/stall-sw/stall-out/config/idle
	// basis points of the round wall) and one for the QPI link (Engine -1,
	// Vals = busy/arbitration/idle basis points). Dur spans the round; the
	// Perfetto exporter turns these into counter tracks.
	EvUtilSample

	numTypes
)

var typeNames = [numTypes]string{
	"job-submit", "job-exec", "engine-config", "pu-busy", "grant-burst",
	"phase-switch", "watchdog", "fault", "breaker-trip", "readmit",
	"degrade", "dump", "job-queue", "job-admit", "job-cancel",
	"calib-drift", "shed", "deadline", "retry", "fabric-reset",
	"slo-burn", "util-sample",
}

// String names the type the way the dump format and exporters do.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// MarshalJSON encodes the type as its name.
func (t Type) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// Domain is the clock domain of an event's cycle count.
type Domain uint8

const (
	// DomainNone marks software-side events with no cycle count.
	DomainNone Domain = iota
	// DomainFabric is the 200 MHz domain (QPI endpoint, String Reader,
	// arbiter, Output Collector).
	DomainFabric
	// DomainPU is the 400 MHz Processing Unit domain.
	DomainPU
)

// Clock returns the sim clock of the domain (zero clock for DomainNone).
func (d Domain) Clock() sim.Clock {
	switch d {
	case DomainFabric:
		return sim.FabricClock
	case DomainPU:
		return sim.PUClock
	}
	return sim.Clock{}
}

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainFabric:
		return "fabric"
	case DomainPU:
		return "pu"
	}
	return "none"
}

// MarshalJSON encodes the domain as its name.
func (d Domain) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// Event is one flight-recorder record. The zero value of optional fields
// means "not applicable" (Engine and Unit use -1 for that instead, so
// engine 0 is representable).
type Event struct {
	// Seq is the global sequence number (monotonic, never reused).
	Seq uint64 `json:"seq"`
	// Type is the event kind.
	Type Type `json:"type"`
	// WallNS is host wall time in Unix nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Sim is the simulated timestamp on the recorder's continuous
	// timeline (picoseconds).
	Sim sim.Time `json:"sim_ps"`
	// Dur is the simulated duration of window events (0 for instants).
	Dur sim.Time `json:"dur_ps,omitempty"`
	// Domain and Cycles carry the hardware cycle count of window events;
	// Dur == Domain.Clock().Cycles(Cycles) for single-domain windows.
	Domain Domain `json:"domain,omitempty"`
	Cycles int64  `json:"cycles,omitempty"`
	// Engine is the Regex Engine id (-1: not engine-scoped).
	Engine int `json:"engine"`
	// Unit is the Processing Unit id within the engine (-1: n/a).
	Unit int `json:"unit"`
	// Job is the HAL's job sequence number (0: n/a).
	Job int64 `json:"job,omitempty"`
	// Arg is a type-specific quantity: bytes for job events, cache lines
	// for grant bursts.
	Arg int64 `json:"arg,omitempty"`
	// Vals is a type-specific vector: the topdown bucket shares in basis
	// points for util-sample events. Written once at record time, never
	// mutated afterwards.
	Vals []int64 `json:"vals,omitempty"`
	// Note is a short label: the fault class, the degradation cause.
	Note string `json:"note,omitempty"`
}

// DefaultCapacity is the default ring size: at ~128 B per event the
// recorder holds the last ~32k events in ~4 MB, several drain batches of
// the heaviest experiment.
const DefaultCapacity = 32768

// Recorder is the bounded ring buffer. All methods are safe for concurrent
// use and nil-safe, so an unwired component records into the void for the
// cost of one branch.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event // fixed-size ring storage
	head    uint64  // total events ever recorded; next slot is head%len(buf)
	count   int     // retained events (<= len(buf))
	dropped uint64  // events overwritten by the ring
	sink    io.Writer
	dumps   uint64
}

// New creates a recorder holding the most recent capacity events
// (DefaultCapacity when <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// defaultRecorder is the process-wide always-on recorder every system binds
// to unless explicitly rewired (tests use private recorders for isolation).
var defaultRecorder = New(DefaultCapacity)

// Default returns the process-wide recorder.
func Default() *Recorder { return defaultRecorder }

// Record appends an event, stamping its sequence number and — when the
// caller left it zero — its wall timestamp. Oldest events are overwritten
// when the ring is full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if e.WallNS == 0 {
		e.WallNS = time.Now().UnixNano()
	}
	r.mu.Lock()
	e.Seq = r.head
	r.buf[r.head%uint64(len(r.buf))] = e
	r.head++
	if r.count < len(r.buf) {
		r.count++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Window returns the retained events in recording order (oldest first).
func (r *Recorder) Window() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.count)
	n := uint64(len(r.buf))
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head-uint64(r.count)+uint64(i))%n]
	}
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Dropped returns how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards the retained window (sequence numbering continues).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.count = 0
	r.mu.Unlock()
}

// SetSink installs the writer degrade dumps go to (nil disables them).
// CLIs point it at stderr or a forensics file.
func (r *Recorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = w
	r.mu.Unlock()
}

// Dumps returns how many forensic dumps the recorder has emitted.
func (r *Recorder) Dumps() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumps
}

// DumpOnDegrade is the black-box hook: the fault path calls it when a query
// degrades to the software operator, and the recorder writes its whole
// window to the configured sink (no-op without one).
func (r *Recorder) DumpOnDegrade(cause string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sink := r.sink
	r.dumps++
	r.mu.Unlock()
	if sink == nil {
		return
	}
	fmt.Fprintf(sink, "flightrec: query degraded (%s); dumping recorder window\n", cause)
	r.WriteText(sink)
}

// WriteText renders the window as one line per event: sequence, wall
// offset from the first retained event, simulated timestamp, and the
// type-specific payload.
func (r *Recorder) WriteText(w io.Writer) {
	events := r.Window()
	if len(events) == 0 {
		fmt.Fprintln(w, "flightrec: empty window")
		return
	}
	base := events[0].WallNS
	fmt.Fprintf(w, "flightrec: %d event(s) retained, %d dropped\n", len(events), r.Dropped())
	for _, e := range events {
		fmt.Fprintln(w, formatEvent(e, base))
	}
}

// formatEvent renders one event line relative to the wall base.
func formatEvent(e Event, baseWallNS int64) string {
	s := fmt.Sprintf("%6d +%-12v %-13s sim=%-12v", e.Seq,
		time.Duration(e.WallNS-baseWallNS).Round(time.Microsecond),
		e.Type, e.Sim)
	if e.Dur > 0 {
		s += fmt.Sprintf(" dur=%v", e.Dur)
	}
	if e.Engine >= 0 {
		s += fmt.Sprintf(" e%d", e.Engine)
	}
	if e.Unit >= 0 {
		s += fmt.Sprintf(" pu%d", e.Unit)
	}
	if e.Job > 0 {
		s += fmt.Sprintf(" job=%d", e.Job)
	}
	if e.Cycles > 0 {
		s += fmt.Sprintf(" cycles=%d@%s", e.Cycles, e.Domain)
	}
	if e.Arg > 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}
