package regex

import (
	"errors"
	"fmt"
)

// ErrEmptyPattern is returned for an empty pattern string, which the HUDF
// rejects (an empty regular expression would match every tuple at position
// zero, indistinguishable from a non-match in the result encoding).
var ErrEmptyPattern = errors.New("regex: empty pattern")

// maxRepeat bounds counted repetitions so that a pathological `a{100000}`
// cannot blow up the compiler; the hardware character budget is far smaller
// anyway.
const maxRepeat = 1000

// ParseError describes a syntax error with its byte offset in the pattern.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("regex: %s at offset %d in %q", e.Msg, e.Pos, e.Pattern)
}

// Parse parses a pattern into its AST.
func Parse(pattern string) (*Node, error) {
	if pattern == "" {
		return nil, ErrEmptyPattern
	}
	p := &parser{src: pattern}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q", p.src[p.pos])
	}
	return n, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool     { return p.pos >= len(p.src) }
func (p *parser) peek() byte    { return p.src[p.pos] }
func (p *parser) advance() byte { b := p.src[p.pos]; p.pos++; return b }
func (p *parser) accept(b byte) bool {
	if !p.eof() && p.peek() == b {
		p.pos++
		return true
	}
	return false
}

// parseAlt = parseConcat ('|' parseConcat)*
func (p *parser) parseAlt() (*Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '|' {
		return first, nil
	}
	alt := &Node{Op: OpAlt, Subs: []*Node{first}}
	for p.accept('|') {
		sub, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alt.Subs = append(alt.Subs, sub)
	}
	return alt, nil
}

// parseConcat = quantifiedAtom*
func (p *parser) parseConcat() (*Node, error) {
	var subs []*Node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		atom, err = p.parseQuantifier(atom)
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	switch len(subs) {
	case 0:
		return &Node{Op: OpEmpty}, nil
	case 1:
		return subs[0], nil
	}
	return &Node{Op: OpConcat, Subs: subs}, nil
}

func (p *parser) parseQuantifier(atom *Node) (*Node, error) {
	if p.eof() {
		return atom, nil
	}
	quantifiable := func() error {
		if atom.Op == OpBegin || atom.Op == OpEnd || atom.Op == OpEmpty {
			return p.errorf("quantifier on unquantifiable expression")
		}
		return nil
	}
	switch p.peek() {
	case '*':
		if err := quantifiable(); err != nil {
			return nil, err
		}
		p.advance()
		return &Node{Op: OpStar, Subs: []*Node{atom}}, nil
	case '+':
		if err := quantifiable(); err != nil {
			return nil, err
		}
		p.advance()
		return &Node{Op: OpPlus, Subs: []*Node{atom}}, nil
	case '?':
		if err := quantifiable(); err != nil {
			return nil, err
		}
		p.advance()
		return &Node{Op: OpQuest, Subs: []*Node{atom}}, nil
	case '{':
		if err := quantifiable(); err != nil {
			return nil, err
		}
		return p.parseRepeat(atom)
	}
	return atom, nil
}

// parseRepeat parses {m}, {m,}, {m,n}.
func (p *parser) parseRepeat(atom *Node) (*Node, error) {
	start := p.pos
	p.advance() // '{'
	minVal, ok := p.parseInt()
	if !ok {
		// Not a counted repetition after all; treat '{' as a literal,
		// as PCRE does.
		p.pos = start + 1
		return &Node{Op: OpConcat, Subs: []*Node{atom, {Op: OpLit, Lit: '{'}}}, nil
	}
	maxVal := minVal
	if p.accept(',') {
		if v, ok2 := p.parseInt(); ok2 {
			maxVal = v
		} else {
			maxVal = -1
		}
	}
	if !p.accept('}') {
		return nil, p.errorf("missing } in counted repetition")
	}
	if minVal > maxRepeat || maxVal > maxRepeat {
		return nil, p.errorf("counted repetition exceeds %d", maxRepeat)
	}
	if maxVal >= 0 && maxVal < minVal {
		return nil, p.errorf("invalid repetition bounds {%d,%d}", minVal, maxVal)
	}
	return &Node{Op: OpRepeat, Min: minVal, Max: maxVal, Subs: []*Node{atom}}, nil
}

func (p *parser) parseInt() (int, bool) {
	start := p.pos
	v := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		v = v*10 + int(p.advance()-'0')
		if v > maxRepeat+1 {
			break
		}
	}
	return v, p.pos > start
}

func (p *parser) parseAtom() (*Node, error) {
	switch b := p.peek(); b {
	case '(':
		p.advance()
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, p.errorf("missing )")
		}
		return n, nil
	case ')':
		return nil, p.errorf("unmatched )")
	case '[':
		return p.parseClass()
	case '.':
		p.advance()
		return &Node{Op: OpAny}, nil
	case '^':
		p.advance()
		return &Node{Op: OpBegin}, nil
	case '$':
		p.advance()
		return &Node{Op: OpEnd}, nil
	case '*', '+', '?':
		return nil, p.errorf("quantifier %q with nothing to repeat", b)
	case '\\':
		p.advance()
		if p.eof() {
			return nil, p.errorf("trailing backslash")
		}
		return p.parseEscape()
	default:
		p.advance()
		return &Node{Op: OpLit, Lit: b}, nil
	}
}

// parseEscape handles \x escapes. Beyond identity escapes of
// metacharacters, the common Perl classes \d \w \s (and negations) are
// accepted since PCRE — the paper's software baseline — supports them.
func (p *parser) parseEscape() (*Node, error) {
	b := p.advance()
	switch b {
	case 'd':
		return &Node{Op: OpClass, Ranges: []Range{{'0', '9'}}}, nil
	case 'D':
		return &Node{Op: OpClass, Ranges: []Range{{'0', '9'}}, Negated: true}, nil
	case 'w':
		return &Node{Op: OpClass, Ranges: wordRanges()}, nil
	case 'W':
		return &Node{Op: OpClass, Ranges: wordRanges(), Negated: true}, nil
	case 's':
		return &Node{Op: OpClass, Ranges: spaceRanges()}, nil
	case 'S':
		return &Node{Op: OpClass, Ranges: spaceRanges(), Negated: true}, nil
	case 'n':
		return &Node{Op: OpLit, Lit: '\n'}, nil
	case 't':
		return &Node{Op: OpLit, Lit: '\t'}, nil
	case 'r':
		return &Node{Op: OpLit, Lit: '\r'}, nil
	default:
		return &Node{Op: OpLit, Lit: b}, nil
	}
}

func wordRanges() []Range {
	return []Range{{'0', '9'}, {'A', 'Z'}, {'_', '_'}, {'a', 'z'}}
}

func spaceRanges() []Range {
	return []Range{{'\t', '\r'}, {' ', ' '}}
}

// parseClass parses [...] character classes.
func (p *parser) parseClass() (*Node, error) {
	p.advance() // '['
	n := &Node{Op: OpClass}
	if p.accept('^') {
		n.Negated = true
	}
	first := true
	for {
		if p.eof() {
			return nil, p.errorf("missing ]")
		}
		if p.peek() == ']' && !first {
			p.advance()
			break
		}
		first = false
		lo, err := p.classByte()
		if err != nil {
			return nil, err
		}
		hi := lo
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.advance() // '-'
			hi, err = p.classByte()
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, p.errorf("invalid class range %c-%c", lo, hi)
			}
		}
		n.Ranges = append(n.Ranges, Range{lo, hi})
	}
	if len(n.Ranges) == 0 {
		return nil, p.errorf("empty character class")
	}
	return n, nil
}

func (p *parser) classByte() (byte, error) {
	b := p.advance()
	if b != '\\' {
		return b, nil
	}
	if p.eof() {
		return 0, p.errorf("trailing backslash in class")
	}
	e := p.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	default:
		return e, nil
	}
}
