package regex

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, pat string) *Node {
	t.Helper()
	n, err := Parse(pat)
	if err != nil {
		t.Fatalf("Parse(%q): %v", pat, err)
	}
	return n
}

func TestParsePaperQueries(t *testing.T) {
	// The four evaluation queries (§7.1.1) plus the hybrid query QH and
	// the running example.
	pats := []string{
		`Strasse`,
		`(Strasse|Str\.).*(8[0-9]{4})`,
		`[0-9]+(USD|EUR|GBP)`,
		`[A-Za-z]{3}\:[0-9]{4}`,
		`(Strasse|Str\.).*(8[0-9]{4}).*delivery`,
		`(a|b).*c`,
		`(Blue|Gray).*skies`,
	}
	for _, pat := range pats {
		n := mustParse(t, pat)
		if n == nil {
			t.Fatalf("nil AST for %q", pat)
		}
	}
}

func TestParseStructure(t *testing.T) {
	n := mustParse(t, `(a|b).*c`)
	if n.Op != OpConcat || len(n.Subs) != 3 {
		t.Fatalf("want concat of 3, got %v/%d", n.Op, len(n.Subs))
	}
	if n.Subs[0].Op != OpAlt {
		t.Errorf("first sub = %v, want alt", n.Subs[0].Op)
	}
	if n.Subs[1].Op != OpStar || n.Subs[1].Subs[0].Op != OpAny {
		t.Errorf("second sub not .* : %v", n.Subs[1].Op)
	}
	if n.Subs[2].Op != OpLit || n.Subs[2].Lit != 'c' {
		t.Errorf("third sub not literal c")
	}
}

func TestParseClass(t *testing.T) {
	n := mustParse(t, `[A-Za-z0-9_]`)
	if n.Op != OpClass || len(n.Ranges) != 4 {
		t.Fatalf("class: %v %v", n.Op, n.Ranges)
	}
	want := []Range{{'A', 'Z'}, {'a', 'z'}, {'0', '9'}, {'_', '_'}}
	for i, r := range want {
		if n.Ranges[i] != r {
			t.Errorf("range %d = %v, want %v", i, n.Ranges[i], r)
		}
	}
	neg := mustParse(t, `[^0-9]`)
	if !neg.Negated {
		t.Error("negated class not flagged")
	}
	if neg.MatchesByte('5', false) {
		t.Error("[^0-9] matched a digit")
	}
	if !neg.MatchesByte('x', false) {
		t.Error("[^0-9] rejected x")
	}
	// ']' first in class is a literal; '-' last is a literal.
	lit := mustParse(t, `[]a-]`)
	if lit.Op != OpClass || len(lit.Ranges) != 3 {
		t.Fatalf("literal-]-class: %+v", lit)
	}
}

func TestParseRepeat(t *testing.T) {
	n := mustParse(t, `a{3}`)
	if n.Op != OpRepeat || n.Min != 3 || n.Max != 3 {
		t.Errorf("a{3}: %+v", n)
	}
	n = mustParse(t, `a{2,5}`)
	if n.Min != 2 || n.Max != 5 {
		t.Errorf("a{2,5}: %+v", n)
	}
	n = mustParse(t, `a{2,}`)
	if n.Min != 2 || n.Max != -1 {
		t.Errorf("a{2,}: %+v", n)
	}
	// Non-numeric '{' is a literal, as in PCRE.
	n = mustParse(t, `a{x`)
	if n.String() != `a\{x` && n.String() != `a{x` {
		t.Errorf("a{x reparse = %q", n.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `(`, `)`, `a)`, `(a`, `[`, `[]`, `[z-a]`, `*`, `+a`, `?`,
		`a{5,2}`, `a{2000}`, `a\`, `a**`, `^*`, `[\`,
	}
	for _, pat := range bad {
		if _, err := Parse(pat); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", pat)
		}
	}
	var pe *ParseError
	_, err := Parse(`(a`)
	if !asParseError(err, &pe) {
		t.Fatalf("error type: %T", err)
	}
	if pe.Pattern != `(a` {
		t.Errorf("ParseError.Pattern = %q", pe.Pattern)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("ParseError message lacks offset: %q", pe.Error())
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestNullable(t *testing.T) {
	cases := []struct {
		pat  string
		want bool
	}{
		{`a*`, true}, {`a+`, false}, {`a?`, true}, {`a`, false},
		{`a|b*`, true}, {`ab`, false}, {`a{0,3}`, true}, {`a{1,3}`, false},
		{`(a*)(b?)`, true}, {`(a*)b`, false},
	}
	for _, c := range cases {
		n := mustParse(t, c.pat)
		if got := n.Nullable(); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.pat, got, c.want)
		}
	}
}

func TestMatchesByteFolding(t *testing.T) {
	lit := &Node{Op: OpLit, Lit: 'S'}
	if !lit.MatchesByte('S', false) || lit.MatchesByte('s', false) {
		t.Error("case-sensitive literal wrong")
	}
	if !lit.MatchesByte('s', true) {
		t.Error("folded literal should match s")
	}
	cls := mustParse(t, `[a-f]`)
	if !cls.MatchesByte('D', true) {
		t.Error("folded class should match D")
	}
	if cls.MatchesByte('D', false) {
		t.Error("unfolded class matched D")
	}
}

func TestStringRoundTrip(t *testing.T) {
	pats := []string{
		`Strasse`,
		`(Strasse|Str\.).*(8[0-9]{4})`,
		`[0-9]+(USD|EUR|GBP)`,
		`[A-Za-z]{3}:[0-9]{4}`,
		`(a|b).*c`,
		`a{2,}b?`,
		`^abc$`,
	}
	for _, pat := range pats {
		n := mustParse(t, pat)
		re := n.String()
		n2, err := Parse(re)
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", pat, re, err)
		}
		if n2.String() != re {
			t.Errorf("String not a fixpoint: %q -> %q -> %q", pat, re, n2.String())
		}
	}
}

func TestWalkVisitsAll(t *testing.T) {
	n := mustParse(t, `(a|b).*c`)
	count := 0
	Walk(n, func(*Node) { count++ })
	// concat + alt + 2 lits + star + any + lit = 7
	if count != 7 {
		t.Errorf("Walk visited %d nodes, want 7", count)
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(pat string) bool {
		// Parser must return errors, never panic, on arbitrary input.
		if len(pat) > 200 {
			pat = pat[:200]
		}
		_, _ = Parse(pat)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseStringFixpointProperty(t *testing.T) {
	// Any pattern that parses has a String() that reparses to the same
	// String(): canonical form is a fixpoint.
	f := func(pat string) bool {
		if len(pat) > 60 {
			pat = pat[:60]
		}
		n, err := Parse(pat)
		if err != nil {
			return true
		}
		s := n.String()
		n2, err := Parse(s)
		if err != nil {
			return s == "" // the empty concat renders to "" which won't reparse
		}
		return n2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEscapeClasses(t *testing.T) {
	d := mustParse(t, `\d`)
	if !d.MatchesByte('7', false) || d.MatchesByte('x', false) {
		t.Error(`\d wrong`)
	}
	w := mustParse(t, `\w`)
	for _, b := range []byte{'a', 'Z', '0', '_'} {
		if !w.MatchesByte(b, false) {
			t.Errorf(`\w rejected %c`, b)
		}
	}
	if w.MatchesByte('-', false) {
		t.Error(`\w matched -`)
	}
	s := mustParse(t, `\s`)
	if !s.MatchesByte(' ', false) || !s.MatchesByte('\t', false) || s.MatchesByte('a', false) {
		t.Error(`\s wrong`)
	}
}

func TestDesugar(t *testing.T) {
	cases := []struct{ in, out string }{
		{`a{3}`, `aaa`},
		{`a{1,3}`, `aa?a?`},
		{`a{2,}`, `aaa*`},
		{`a{0,2}`, `a?a?`},
		{`a{0,0}`, ``},
		{`(ab){2}c`, `ababc`},
		{`[0-9]{2}`, `[0-9][0-9]`},
	}
	for _, c := range cases {
		n := mustParse(t, c.in)
		got := Desugar(n).String()
		if got != c.out {
			t.Errorf("Desugar(%q) = %q, want %q", c.in, got, c.out)
		}
	}
	if Desugar(nil) != nil {
		t.Error("Desugar(nil) != nil")
	}
}

func TestEscapeSequences(t *testing.T) {
	cases := []struct {
		pat   string
		match byte
		miss  byte
	}{
		{`\D`, 'x', '5'},
		{`\W`, '-', 'a'},
		{`\S`, 'a', ' '},
		{`\n`, '\n', 'n'},
		{`\t`, '\t', 't'},
		{`\r`, '\r', 'r'},
	}
	for _, c := range cases {
		n := mustParse(t, c.pat)
		if !n.MatchesByte(c.match, false) {
			t.Errorf("%s should match %q", c.pat, c.match)
		}
		if n.MatchesByte(c.miss, false) {
			t.Errorf("%s should not match %q", c.pat, c.miss)
		}
	}
	// Escapes inside classes.
	n := mustParse(t, `[\t\n\r]`)
	for _, b := range []byte{'\t', '\n', '\r'} {
		if !n.MatchesByte(b, false) {
			t.Errorf("class escape missed %q", b)
		}
	}
	if n.MatchesByte('t', false) {
		t.Error("class escape matched literal t")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct{ pat, want string }{
		{`a\.b`, `a\.b`},
		{`[a\-b]`, `[a\-b]`},
		{`[\]]`, `[\]]`},
		{`(ab|cd)+`, `(ab|cd)+`},
		{`(ab)?`, `(ab)?`},
		{`a{2,}`, `a{2,}`},
		{`a{2,5}`, `a{2,5}`},
		{`a{3}`, `a{3}`},
		{`^a$`, `^a$`},
	}
	for _, c := range cases {
		n := mustParse(t, c.pat)
		if got := n.String(); got != c.want {
			t.Errorf("String(%q) = %q, want %q", c.pat, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpStar.String() != "star" || Op(99).String() == "" {
		t.Error("Op.String broken")
	}
}
