package regex

// Desugar expands counted repetitions into concatenations so that matchers
// and compilers only see * + ? | and leaves: X{m,n} becomes X…X (m copies)
// followed by X?…X? (n−m copies); X{m,} becomes m copies and a trailing X*.
// The returned tree shares unmodified subtrees with the input.
func Desugar(n *Node) *Node {
	if n == nil {
		return nil
	}
	if len(n.Subs) > 0 {
		subs := make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[i] = Desugar(s)
		}
		m := *n
		m.Subs = subs
		n = &m
	}
	if n.Op != OpRepeat {
		return n
	}
	x := n.Subs[0]
	var out []*Node
	for i := 0; i < n.Min; i++ {
		out = append(out, x)
	}
	switch {
	case n.Max < 0:
		out = append(out, &Node{Op: OpStar, Subs: []*Node{x}})
	default:
		for i := n.Min; i < n.Max; i++ {
			out = append(out, &Node{Op: OpQuest, Subs: []*Node{x}})
		}
	}
	switch len(out) {
	case 0:
		return &Node{Op: OpEmpty}
	case 1:
		return out[0]
	}
	return &Node{Op: OpConcat, Subs: out}
}
