// Package regex implements the regular-expression dialect accepted by the
// paper's REGEXP_LIKE / REGEXP_FPGA operators: literals, `.`, character
// classes with ranges ([0-9], [A-Za-z], [^...]), the quantifiers * + ? {m}
// {m,n} {m,}, alternation, grouping, anchors ^ $, and backslash escapes.
// The package provides the parser and AST shared by the software matchers
// (internal/softregex) and the hardware compiler (internal/token).
//
// Patterns are matched byte-wise over the stored strings, which is exactly
// what the hardware character matchers do; the paper targets the English
// subset of UTF-8 (§6.4) and so do we.
package regex

import (
	"fmt"
	"strings"
)

// Op identifies the kind of a Node.
type Op int

// AST node kinds.
const (
	OpEmpty  Op = iota // matches the empty string
	OpLit              // single byte literal
	OpClass            // character class (ranges, possibly negated)
	OpAny              // `.` — any byte
	OpConcat           // concatenation of Subs
	OpAlt              // alternation of Subs
	OpStar             // Sub[0] repeated zero or more times
	OpPlus             // Sub[0] repeated one or more times
	OpQuest            // Sub[0] zero or one time
	OpRepeat           // Sub[0] repeated Min..Max times (Max<0: unbounded)
	OpBegin            // ^ anchor
	OpEnd              // $ anchor
)

var opNames = [...]string{"empty", "lit", "class", "any", "concat", "alt",
	"star", "plus", "quest", "repeat", "begin", "end"}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Range is an inclusive byte range of a character class.
type Range struct {
	Lo, Hi byte
}

// Contains reports whether b falls in the range.
func (r Range) Contains(b byte) bool { return r.Lo <= b && b <= r.Hi }

// Node is a node of the regular-expression AST.
type Node struct {
	Op       Op
	Lit      byte    // OpLit
	Ranges   []Range // OpClass
	Negated  bool    // OpClass
	Subs     []*Node // OpConcat, OpAlt, quantifiers (one sub)
	Min, Max int     // OpRepeat; Max < 0 means unbounded
}

// MatchesByte reports whether a leaf node (OpLit, OpClass, OpAny) matches
// byte b under optional ASCII case folding.
func (n *Node) MatchesByte(b byte, foldCase bool) bool {
	switch n.Op {
	case OpLit:
		if n.Lit == b {
			return true
		}
		return foldCase && asciiFold(n.Lit) == asciiFold(b)
	case OpAny:
		return true
	case OpClass:
		in := n.rangesContain(b)
		if !in && foldCase {
			in = n.rangesContain(foldFlip(b))
		}
		if n.Negated {
			return !in
		}
		return in
	}
	return false
}

func (n *Node) rangesContain(b byte) bool {
	for _, r := range n.Ranges {
		if r.Contains(b) {
			return true
		}
	}
	return false
}

// asciiFold lowercases ASCII letters.
func asciiFold(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// foldFlip returns the opposite-case letter, or b unchanged.
func foldFlip(b byte) byte {
	switch {
	case 'A' <= b && b <= 'Z':
		return b + 'a' - 'A'
	case 'a' <= b && b <= 'z':
		return b - ('a' - 'A')
	}
	return b
}

// IsLeaf reports whether n consumes exactly one input byte.
func (n *Node) IsLeaf() bool {
	return n.Op == OpLit || n.Op == OpClass || n.Op == OpAny
}

// Nullable reports whether n can match the empty string.
func (n *Node) Nullable() bool {
	switch n.Op {
	case OpEmpty, OpStar, OpQuest, OpBegin, OpEnd:
		return true
	case OpLit, OpClass, OpAny:
		return false
	case OpPlus:
		return n.Subs[0].Nullable()
	case OpRepeat:
		return n.Min == 0 || n.Subs[0].Nullable()
	case OpConcat:
		for _, s := range n.Subs {
			if !s.Nullable() {
				return false
			}
		}
		return true
	case OpAlt:
		for _, s := range n.Subs {
			if s.Nullable() {
				return true
			}
		}
		return false
	}
	return false
}

// String renders the node back to (a canonical form of) pattern syntax,
// useful in error messages and tests.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, false)
	return b.String()
}

func (n *Node) write(b *strings.Builder, grouped bool) {
	switch n.Op {
	case OpEmpty:
	case OpLit:
		if strings.IndexByte(`.*+?()[]{}|\^$`, n.Lit) >= 0 {
			b.WriteByte('\\')
		}
		b.WriteByte(n.Lit)
	case OpAny:
		b.WriteByte('.')
	case OpBegin:
		b.WriteByte('^')
	case OpEnd:
		b.WriteByte('$')
	case OpClass:
		b.WriteByte('[')
		if n.Negated {
			b.WriteByte('^')
		}
		for _, r := range n.Ranges {
			writeClassByte(b, r.Lo)
			if r.Hi != r.Lo {
				b.WriteByte('-')
				writeClassByte(b, r.Hi)
			}
		}
		b.WriteByte(']')
	case OpConcat:
		for _, s := range n.Subs {
			s.write(b, false)
		}
	case OpAlt:
		if !grouped {
			b.WriteByte('(')
		}
		for i, s := range n.Subs {
			if i > 0 {
				b.WriteByte('|')
			}
			s.write(b, false)
		}
		if !grouped {
			b.WriteByte(')')
		}
	case OpStar, OpPlus, OpQuest:
		n.writeQuantified(b)
		switch n.Op {
		case OpStar:
			b.WriteByte('*')
		case OpPlus:
			b.WriteByte('+')
		case OpQuest:
			b.WriteByte('?')
		}
	case OpRepeat:
		n.writeQuantified(b)
		if n.Max == n.Min {
			fmt.Fprintf(b, "{%d}", n.Min)
		} else if n.Max < 0 {
			fmt.Fprintf(b, "{%d,}", n.Min)
		} else {
			fmt.Fprintf(b, "{%d,%d}", n.Min, n.Max)
		}
	}
}

func (n *Node) writeQuantified(b *strings.Builder) {
	sub := n.Subs[0]
	if sub.IsLeaf() {
		sub.write(b, false)
		return
	}
	b.WriteByte('(')
	sub.write(b, true)
	b.WriteByte(')')
}

func writeClassByte(b *strings.Builder, c byte) {
	if strings.IndexByte(`]\-^`, c) >= 0 {
		b.WriteByte('\\')
	}
	b.WriteByte(c)
}

// Walk visits every node of the tree in pre-order.
func Walk(n *Node, visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, s := range n.Subs {
		Walk(s, visit)
	}
}
