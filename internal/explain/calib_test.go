package explain

import (
	"math"
	"strings"
	"testing"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/telemetry"
)

// feed builds an executed record whose engine_busy term carries the given
// signed relative error and hands it to the auditor.
func feed(a *Auditor, signedErr float64) *Record {
	const actual = 1_000_000
	pred := int64(math.Round(float64(actual) * (1 + signedErr)))
	r := &Record{
		Pattern: "x.*y", Rows: 1000,
		Candidates: []Candidate{{Placement: "fpga", Feasible: true,
			Cost: Cost{EngineBusyNS: pred, TotalNS: pred}}},
		Chosen: "fpga",
	}
	r.SetAuditor(a)
	r.Finish(Cost{EngineBusyNS: actual, TotalNS: actual})
	return r
}

func TestAuditorWindowStats(t *testing.T) {
	a := NewAuditor(Options{Window: 8, MinSamples: 100})
	for _, e := range []float64{0.10, -0.20, 0.30, 0.40} {
		feed(a, e)
	}
	rep := a.Stats()
	if rep.Samples != 4 || rep.Observed != 4 {
		t.Fatalf("samples=%d observed=%d, want 4/4", rep.Samples, rep.Observed)
	}
	ts, ok := rep.Term(TermEngineBusy)
	if !ok {
		t.Fatal("no engine_busy statistics")
	}
	// mean |err| = (10+20+30+40)/4 = 25%; bias = (10-20+30+40)/4 = +15%.
	if math.Abs(ts.MeanRelErrPct-25) > 0.01 {
		t.Errorf("mean = %.2f%%, want 25%%", ts.MeanRelErrPct)
	}
	if math.Abs(ts.BiasPct-15) > 0.01 {
		t.Errorf("bias = %.2f%%, want +15%%", ts.BiasPct)
	}
	// Nearest-rank over sorted magnitudes [10 20 30 40]:
	// p50 at index (4-1)*50/100 = 1 → 20%; p95 at index 2 (truncated) → 30%.
	if math.Abs(ts.P50RelErrPct-20) > 0.01 {
		t.Errorf("p50 = %.2f%%, want 20%%", ts.P50RelErrPct)
	}
	if math.Abs(ts.P95RelErrPct-30) > 0.01 {
		t.Errorf("p95 = %.2f%%, want 30%%", ts.P95RelErrPct)
	}
	if ts.Alarm {
		t.Error("alarm latched below MinSamples")
	}
}

func TestAuditorRingEviction(t *testing.T) {
	a := NewAuditor(Options{Window: 4})
	for i := 0; i < 6; i++ {
		feed(a, 0.05)
	}
	rep := a.Stats()
	if rep.Samples != 4 {
		t.Errorf("window retained %d records, want 4", rep.Samples)
	}
	if rep.Observed != 6 {
		t.Errorf("observed %d, want 6", rep.Observed)
	}
	if got := len(a.Records(0)); got != 4 {
		t.Errorf("Records(0) = %d records, want 4", got)
	}
	if got := len(a.Records(2)); got != 2 {
		t.Errorf("Records(2) = %d records, want 2", got)
	}
}

func TestAuditorDriftAlarm(t *testing.T) {
	tel := telemetry.NewRegistry()
	rec := flightrec.New(64)
	a := NewAuditor(Options{Window: 16, BandPct: 25, MinSamples: 4})
	a.SetTelemetry(tel)
	a.SetRecorder(rec)

	// Three accurate records: inside the band, below MinSamples.
	for i := 0; i < 3; i++ {
		feed(a, 0.02)
	}
	if rep := a.Stats(); len(rep.Alarms) != 0 {
		t.Fatalf("alarm before MinSamples: %v", rep.Alarms)
	}

	// Push the rolling mean past the band: 3×2% + 5×80% → mean 50.75%.
	for i := 0; i < 5; i++ {
		feed(a, 0.80)
	}
	rep := a.Stats()
	ts, _ := rep.Term(TermEngineBusy)
	if !ts.Alarm || len(rep.Alarms) == 0 {
		t.Fatalf("no drift alarm: %+v", ts)
	}
	// feed drifts engine_busy and total identically: both terms latch.
	if got := tel.Counter("calib.drift_alarms").Value(); got != 2 {
		t.Errorf("calib.drift_alarms = %d, want 2 (engine_busy + total, latched once each)", got)
	}
	if got := tel.Gauge("calib.alarm." + TermEngineBusy).Value(); got != 1 {
		t.Errorf("calib.alarm.engine_busy gauge = %d, want 1", got)
	}
	found := false
	for _, e := range rec.Window() {
		if e.Type == flightrec.EvCalibDrift && strings.Contains(e.Note, "term="+TermEngineBusy) {
			found = true
		}
	}
	if !found {
		t.Error("no engine_busy calib-drift event in the flight recorder")
	}

	// The alarm stays latched while the error persists, without re-firing.
	feed(a, 0.80)
	if got := tel.Counter("calib.drift_alarms").Value(); got != 2 {
		t.Errorf("alarm re-fired: calib.drift_alarms = %d", got)
	}

	// Flush the window with accurate records: the alarm clears.
	for i := 0; i < 16; i++ {
		feed(a, 0.01)
	}
	rep = a.Stats()
	if len(rep.Alarms) != 0 {
		t.Fatalf("alarm did not clear: %v", rep.Alarms)
	}
	if got := tel.Gauge("calib.alarm." + TermEngineBusy).Value(); got != 0 {
		t.Errorf("calib.alarm.engine_busy gauge = %d after clearing, want 0", got)
	}
}

func TestAuditorSkipsDegraded(t *testing.T) {
	tel := telemetry.NewRegistry()
	a := NewAuditor(Options{Window: 8})
	a.SetTelemetry(tel)
	feed(a, 0.05)
	r := &Record{
		Candidates: []Candidate{{Placement: "fpga", Feasible: true,
			Cost: Cost{EngineBusyNS: 100, TotalNS: 100}}},
		Chosen: "fpga", Degraded: true, DegradedCause: "engine dropped",
	}
	r.SetAuditor(a)
	r.Finish(Cost{SoftwareNS: 900, TotalNS: 900})
	rep := a.Stats()
	if rep.Samples != 1 || rep.Skipped != 1 {
		t.Fatalf("samples=%d skipped=%d, want 1/1", rep.Samples, rep.Skipped)
	}
	if got := tel.Counter("calib.skipped_degraded").Value(); got != 1 {
		t.Errorf("calib.skipped_degraded = %d, want 1", got)
	}
}

func TestNilAuditorSafe(t *testing.T) {
	var a *Auditor
	a.Observe(&Record{Executed: true})
	a.SetTelemetry(nil)
	a.SetRecorder(nil)
	if rep := a.Stats(); rep.Samples != 0 {
		t.Fatal("nil auditor reported samples")
	}
	if a.Records(1) != nil {
		t.Fatal("nil auditor returned records")
	}
}
