package explain

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestRelativeError(t *testing.T) {
	cases := []struct {
		pred, act  int64
		rel, signd float64
		ok         bool
	}{
		{0, 0, 0, 0, false},          // no signal
		{110, 100, 0.10, 0.10, true}, // over-prediction
		{90, 100, 0.10, -0.10, true}, // under-prediction
		{100, 100, 0, 0, true},       // exact
		{50, 0, 1.0, 1.0, true},      // invented term: scored vs prediction
		{0, 80, 1.0, -1.0, true},     // missed term entirely
	}
	for _, c := range cases {
		rel, signed, ok := relativeError(c.pred, c.act)
		if ok != c.ok {
			t.Errorf("relativeError(%d,%d) ok=%v, want %v", c.pred, c.act, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if math.Abs(rel-c.rel) > 1e-9 || math.Abs(signed-c.signd) > 1e-9 {
			t.Errorf("relativeError(%d,%d) = (%g,%g), want (%g,%g)",
				c.pred, c.act, rel, signed, c.rel, c.signd)
		}
	}
}

// mkRecord builds an executed single-candidate record with the given
// predicted and actual cost vectors.
func mkRecord(pred, act Cost) *Record {
	r := &Record{
		Pattern: "x.*y", Rows: 1000, AvgLen: 64,
		Candidates: []Candidate{{Placement: "fpga", Feasible: true, Cost: pred}},
		Chosen:     "fpga", Reason: "test",
	}
	r.Finish(act)
	return r
}

func TestFinishComputesTermErrors(t *testing.T) {
	r := mkRecord(
		Cost{ScanBytes: 100, EngineBusyNS: 110, TotalNS: 110},
		Cost{ScanBytes: 100, EngineBusyNS: 100, QueueDelayNS: 5, TotalNS: 105},
	)
	if !r.Executed || r.Actual == nil {
		t.Fatal("Finish did not mark the record executed")
	}
	e, ok := r.TermError(TermEngineBusy)
	if !ok || math.Abs(e.SignedErr-0.10) > 1e-9 {
		t.Fatalf("engine_busy error = %+v ok=%v, want signed +0.10", e, ok)
	}
	if e, ok := r.TermError(TermScanBytes); !ok || e.RelErr != 0 {
		t.Fatalf("scan_bytes error = %+v ok=%v, want exact", e, ok)
	}
	// Queue delay was not predicted but happened: full miss.
	if e, ok := r.TermError(TermQueueDelay); !ok || e.SignedErr != -1.0 {
		t.Fatalf("queue_delay error = %+v ok=%v, want signed -1.0", e, ok)
	}
	// Software is zero on both sides: no signal.
	if _, ok := r.TermError(TermSoftware); ok {
		t.Fatal("software term carried signal despite being absent from both sides")
	}
}

func TestRecordJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	r1 := mkRecord(Cost{EngineBusyNS: 200, TotalNS: 200}, Cost{EngineBusyNS: 190, TotalNS: 190})
	r2 := mkRecord(Cost{EngineBusyNS: 200, TotalNS: 200}, Cost{EngineBusyNS: 190, TotalNS: 190})
	if err := r1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical records rendered differently:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestLinesAndAnalyzeLines(t *testing.T) {
	r := mkRecord(
		Cost{ScanBytes: 1 << 20, QPITransferNS: 161319, EngineBusyNS: 161619, FixedNS: 100800, TotalNS: 262419},
		Cost{ScanBytes: 1 << 20, QPITransferNS: 161319, EngineBusyNS: 170000, QueueDelayNS: 900, FixedNS: 100800, TotalNS: 271700},
	)
	text := strings.Join(r.Lines(), "\n")
	for _, want := range []string{"pattern: 'x.*y'", "candidate fpga", "chosen: fpga — test"} {
		if !strings.Contains(text, want) {
			t.Errorf("Lines() missing %q in:\n%s", want, text)
		}
	}
	al := strings.Join(r.AnalyzeLines(), "\n")
	for _, want := range []string{"predicted", "actual", "error", TermEngineBusy, TermQueueDelay} {
		if !strings.Contains(al, want) {
			t.Errorf("AnalyzeLines() missing %q in:\n%s", want, al)
		}
	}
	// Unexecuted records have no analyze section.
	fresh := &Record{Chosen: "software"}
	if got := fresh.AnalyzeLines(); got != nil {
		t.Errorf("unexecuted record produced analyze lines: %v", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := &Record{Pattern: "abc"}
	ctx := WithRecord(context.Background(), r)
	if got := FromContext(ctx); got != r {
		t.Fatalf("FromContext = %p, want %p", got, r)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned a record: %p", got)
	}
	if got := WithRecord(context.Background(), nil); FromContext(got) != nil {
		t.Fatal("WithRecord(nil) attached a record")
	}
}

func TestForceHardware(t *testing.T) {
	r := &Record{
		Candidates: []Candidate{
			{Placement: "fpga", Feasible: false, Reason: "too big"},
			{Placement: "hybrid", Feasible: true},
			{Placement: "software", Feasible: true},
		},
		Chosen: "software", Reason: "software wins",
	}
	r.ForceHardware("operator invoked explicitly")
	if r.Chosen != "hybrid" || r.Reason != "operator invoked explicitly" {
		t.Fatalf("ForceHardware chose %q (%q), want hybrid", r.Chosen, r.Reason)
	}
	// No feasible hardware plan: the decision stands.
	soft := &Record{
		Candidates: []Candidate{{Placement: "software", Feasible: true}},
		Chosen:     "software", Reason: "only plan",
	}
	soft.ForceHardware("ignored")
	if soft.Chosen != "software" || soft.Reason != "only plan" {
		t.Fatalf("ForceHardware rewrote an all-software record: %q (%q)", soft.Chosen, soft.Reason)
	}
}
