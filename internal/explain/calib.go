package explain

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"doppiodb/internal/flightrec"
	"doppiodb/internal/telemetry"
)

// Options configures a calibration Auditor.
type Options struct {
	// Window is the ring size: how many recent executed records feed the
	// rolling statistics (default 256).
	Window int
	// BandPct is the drift band: when a term's rolling mean relative error
	// exceeds this percentage the alarm latches (default 25).
	BandPct float64
	// MinSamples is how many observations of a term the auditor requires
	// before it will alarm on it (default 8) — one outlier is noise, a
	// window of them is drift.
	MinSamples int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.BandPct <= 0 {
		o.BandPct = 25
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	return o
}

// Auditor is the continuous cost-model calibration auditor: a ring of the
// most recent predicted-vs-actual decision records feeding rolling per-term
// error statistics (mean and percentile relative error, signed bias). The
// statistics are exported as telemetry gauges and through doppiomon's
// /calibration endpoint; when a term's rolling mean error leaves the
// configured band the auditor latches a drift alarm — a flight-recorder
// control event plus a calib.alarm.<term> gauge — and clears it when the
// error returns inside the band. This is the hook a future self-tuning pass
// consumes: it says *which* cost term the model gets wrong, by how much, and
// in which direction.
//
// All methods are nil-safe; an unwired auditor costs one branch.
type Auditor struct {
	opts Options

	mu       sync.Mutex
	ring     []*Record
	head     int
	count    int
	observed int64
	skipped  int64
	alarmed  map[string]bool
	tel      *telemetry.Registry
	rec      *flightrec.Recorder
}

// NewAuditor creates an auditor with the given options.
func NewAuditor(opts Options) *Auditor {
	opts = opts.withDefaults()
	return &Auditor{
		opts:    opts,
		ring:    make([]*Record, opts.Window),
		alarmed: make(map[string]bool),
	}
}

// defaultAuditor is the process-wide auditor every system binds to unless
// explicitly rewired (tests use private auditors for isolation).
var defaultAuditor = NewAuditor(Options{})

// Default returns the process-wide auditor.
func Default() *Auditor { return defaultAuditor }

// SetTelemetry points the auditor's gauges and counters at a registry.
func (a *Auditor) SetTelemetry(r *telemetry.Registry) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.tel = r
	a.mu.Unlock()
}

// SetRecorder points the drift alarm at a flight recorder.
func (a *Auditor) SetRecorder(r *flightrec.Recorder) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.rec = r
	a.mu.Unlock()
}

// Observe feeds one finished decision record into the rolling window and
// recomputes the per-term statistics and drift alarms. Records that never
// executed are ignored; degraded queries are counted but excluded from the
// window (their actuals describe the software fallback, not the plan the
// model priced).
func (a *Auditor) Observe(r *Record) {
	if a == nil || r == nil || !r.Executed {
		return
	}
	a.mu.Lock()
	a.observed++
	if r.Degraded {
		a.skipped++
		tel := a.tel
		a.mu.Unlock()
		tel.Counter("calib.skipped_degraded").Inc()
		return
	}
	if r.SharedScan {
		// A follower's actuals describe a coalesced job group, not the plan
		// the model priced for this query alone.
		a.skipped++
		tel := a.tel
		a.mu.Unlock()
		tel.Counter("calib.skipped_shared").Inc()
		return
	}
	a.ring[a.head] = r
	a.head = (a.head + 1) % len(a.ring)
	if a.count < len(a.ring) {
		a.count++
	}
	stats := a.statsLocked()
	tel, rec := a.tel, a.rec
	var fired, cleared []string
	for _, ts := range stats {
		was := a.alarmed[ts.Term]
		if ts.Alarm && !was {
			a.alarmed[ts.Term] = true
			fired = append(fired, ts.Term)
		} else if !ts.Alarm && was {
			a.alarmed[ts.Term] = false
			cleared = append(cleared, ts.Term)
		}
	}
	a.mu.Unlock()

	tel.Counter("calib.records").Inc()
	for _, ts := range stats {
		prefix := "calib." + ts.Term
		tel.Gauge(prefix + ".samples").Set(int64(ts.Samples))
		tel.Gauge(prefix + ".mean_rel_err_bp").Set(int64(ts.MeanRelErrPct * 100))
		tel.Gauge(prefix + ".p95_rel_err_bp").Set(int64(ts.P95RelErrPct * 100))
		tel.Gauge(prefix + ".bias_bp").Set(int64(ts.BiasPct * 100))
	}
	for _, ts := range stats {
		for _, term := range fired {
			if ts.Term != term {
				continue
			}
			tel.Counter("calib.drift_alarms").Inc()
			tel.Gauge("calib.alarm." + term).Set(1)
			rec.Record(flightrec.Event{
				Type: flightrec.EvCalibDrift, Engine: -1, Unit: -1,
				Note: fmt.Sprintf("term=%s mean=%+.1f%% band=%.0f%% n=%d",
					term, ts.BiasPct, a.opts.BandPct, ts.Samples),
			})
		}
		for _, term := range cleared {
			if ts.Term == term {
				tel.Gauge("calib.alarm." + term).Set(0)
			}
		}
	}
}

// TermStats is the rolling error statistics of one cost term.
type TermStats struct {
	Term    string `json:"term"`
	Samples int    `json:"samples"`
	// MeanRelErrPct is the mean magnitude of relative error, in percent.
	MeanRelErrPct float64 `json:"mean_rel_err_pct"`
	// P50/P95RelErrPct are nearest-rank percentiles of the magnitudes.
	P50RelErrPct float64 `json:"p50_rel_err_pct"`
	P95RelErrPct float64 `json:"p95_rel_err_pct"`
	// BiasPct is the mean *signed* error in percent: positive means the
	// model over-predicts the term, negative under-predicts.
	BiasPct float64 `json:"bias_pct"`
	// Alarm reports whether this term is outside the drift band.
	Alarm bool `json:"alarm"`
}

// Report is the /calibration view: the auditor's configuration, window
// occupancy, per-term statistics and active alarms.
type Report struct {
	Window     int         `json:"window"`
	Observed   int64       `json:"observed"`
	Skipped    int64       `json:"skipped_degraded"`
	Samples    int         `json:"samples"`
	BandPct    float64     `json:"band_pct"`
	MinSamples int         `json:"min_samples"`
	Terms      []TermStats `json:"terms"`
	Alarms     []string    `json:"alarms,omitempty"`
}

// Term returns the named term's statistics (zero, false when absent).
func (rep Report) Term(name string) (TermStats, bool) {
	for _, t := range rep.Terms {
		if t.Term == name {
			return t, true
		}
	}
	return TermStats{}, false
}

// Stats computes the rolling report from the current window.
func (a *Auditor) Stats() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := Report{
		Window:     len(a.ring),
		Observed:   a.observed,
		Skipped:    a.skipped,
		Samples:    a.count,
		BandPct:    a.opts.BandPct,
		MinSamples: a.opts.MinSamples,
		Terms:      a.statsLocked(),
	}
	for _, t := range rep.Terms {
		if t.Alarm {
			rep.Alarms = append(rep.Alarms, t.Term)
		}
	}
	return rep
}

// statsLocked computes per-term statistics over the retained window. Caller
// holds a.mu.
func (a *Auditor) statsLocked() []TermStats {
	type acc struct {
		rels   []float64
		signed float64
	}
	byTerm := make(map[string]*acc)
	for i := 0; i < a.count; i++ {
		r := a.ring[(a.head-a.count+i+len(a.ring))%len(a.ring)]
		for _, e := range r.Errors {
			c := byTerm[e.Term]
			if c == nil {
				c = &acc{}
				byTerm[e.Term] = c
			}
			c.rels = append(c.rels, e.RelErr)
			c.signed += e.SignedErr
		}
	}
	var out []TermStats
	for _, term := range Terms {
		c := byTerm[term]
		if c == nil {
			continue
		}
		sort.Float64s(c.rels)
		n := len(c.rels)
		var sum float64
		for _, v := range c.rels {
			sum += v
		}
		ts := TermStats{
			Term:          term,
			Samples:       n,
			MeanRelErrPct: sum / float64(n) * 100,
			P50RelErrPct:  c.rels[(n-1)*50/100] * 100,
			P95RelErrPct:  c.rels[(n-1)*95/100] * 100,
			BiasPct:       c.signed / float64(n) * 100,
		}
		ts.Alarm = n >= a.opts.MinSamples && ts.MeanRelErrPct > a.opts.BandPct
		out = append(out, ts)
	}
	return out
}

// Records returns up to limit of the most recent retained records, oldest
// first (all of them when limit <= 0).
func (a *Auditor) Records(limit int) []*Record {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.count
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]*Record, 0, n)
	for i := a.count - n; i < a.count; i++ {
		out = append(out, a.ring[(a.head-a.count+i+len(a.ring))%len(a.ring)])
	}
	return out
}

// WriteText renders the report as the \health-style table.
func (rep Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "calibration: %d/%d record(s) in window, %d observed, %d degraded skipped, band ±%.0f%%\n",
		rep.Samples, rep.Window, rep.Observed, rep.Skipped, rep.BandPct)
	if len(rep.Terms) == 0 {
		fmt.Fprintln(w, "  no executed records yet")
		return
	}
	fmt.Fprintf(w, "  %-13s %8s %10s %10s %10s %10s  %s\n",
		"term", "samples", "mean|err|", "p50", "p95", "bias", "alarm")
	for _, t := range rep.Terms {
		alarm := "-"
		if t.Alarm {
			alarm = "DRIFT"
		}
		fmt.Fprintf(w, "  %-13s %8d %9.1f%% %9.1f%% %9.1f%% %+9.1f%%  %s\n",
			t.Term, t.Samples, t.MeanRelErrPct, t.P50RelErrPct, t.P95RelErrPct, t.BiasPct, alarm)
	}
}
