// Package explain is the per-query decision record of the cost-based
// placement machinery (§9): the full story of why a predicate ran where it
// did. A Record captures every candidate plan — the software operator, the
// FPGA engines, and the hybrid split — with an itemized predicted cost
// breakdown (scan bytes, QPI transfer time, engine busy time, queue delay,
// fixed offload overheads), the chosen plan with its reason, and, after
// execution, the actual figures pulled from the device runtime's per-job
// Completion records, with per-term prediction error.
//
// Records are deliberately free of wall-clock state: every quantity is a
// deterministic simulated figure, so repeated single-client runs of the
// same query produce bit-identical records — the property the calibration
// auditor (calib.go) relies on to attribute drift to the model, not to the
// host.
//
// The package is a leaf: it depends only on sim, telemetry, flightrec and
// topdown, so core, sql, mdb, the monitoring endpoint and the CLIs can all
// share the Record type without import cycles.
package explain

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"doppiodb/internal/sim"
	"doppiodb/internal/topdown"
)

// Cost-term names. Every predicted and actual cost is itemized under these
// keys; the calibration auditor keeps rolling error statistics per term.
const (
	// TermScanBytes is the input volume crossing QPI (bytes, not time).
	TermScanBytes = "scan_bytes"
	// TermQPITransfer is the link service time of the query's grants.
	TermQPITransfer = "qpi_transfer"
	// TermEngineBusy is admission→completion on the slowest engine.
	TermEngineBusy = "engine_busy"
	// TermQueueDelay is the wait in the device runtime's backlog.
	TermQueueDelay = "queue_delay"
	// TermSoftware is CPU operator time (full software run or hybrid tail).
	TermSoftware = "software"
	// TermTotal is the end-to-end simulated response time.
	TermTotal = "total"
)

// Terms lists every cost term in canonical rendering order.
var Terms = []string{
	TermScanBytes, TermQPITransfer, TermEngineBusy,
	TermQueueDelay, TermSoftware, TermTotal,
}

// Cost is one itemized cost vector — a candidate's prediction or a finished
// query's measurement. Times are simulated nanoseconds, volume is bytes;
// integer fields keep records bit-identical across runs. A zero field means
// the term does not apply to this plan.
type Cost struct {
	ScanBytes     int64 `json:"scan_bytes,omitempty"`
	QPITransferNS int64 `json:"qpi_transfer_ns,omitempty"`
	EngineBusyNS  int64 `json:"engine_busy_ns,omitempty"`
	QueueDelayNS  int64 `json:"queue_delay_ns,omitempty"`
	SoftwareNS    int64 `json:"software_ns,omitempty"`
	// FixedNS bundles the per-query constants (database handoff, UDF
	// software part, config generation, HAL job creation).
	FixedNS int64 `json:"fixed_ns,omitempty"`
	TotalNS int64 `json:"total_ns"`
}

// Term returns the named term's value.
func (c Cost) Term(name string) int64 {
	switch name {
	case TermScanBytes:
		return c.ScanBytes
	case TermQPITransfer:
		return c.QPITransferNS
	case TermEngineBusy:
		return c.EngineBusyNS
	case TermQueueDelay:
		return c.QueueDelayNS
	case TermSoftware:
		return c.SoftwareNS
	case TermTotal:
		return c.TotalNS
	}
	return 0
}

// Candidate is one plan the optimizer considered.
type Candidate struct {
	// Placement is "fpga", "hybrid" or "software".
	Placement string `json:"placement"`
	// Feasible reports whether the plan can run at all; Reason explains an
	// infeasible plan or annotates a feasible one.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
	// HWPart/SWPart are the hybrid split (feasible hybrid only).
	HWPart string `json:"hw_part,omitempty"`
	SWPart string `json:"sw_part,omitempty"`
	// Cost is the predicted breakdown (zero when infeasible).
	Cost Cost `json:"cost"`
}

// TermError is one term's predicted-vs-actual comparison. SignedErr is
// (predicted−actual)/actual (positive: the model over-predicted); RelErr is
// its magnitude. When the actual is zero the predicted value is the
// denominator instead, so a term the model invented still scores an error.
type TermError struct {
	Term      string  `json:"term"`
	Predicted int64   `json:"predicted"`
	Actual    int64   `json:"actual"`
	RelErr    float64 `json:"rel_err"`
	SignedErr float64 `json:"signed_err"`
}

// Record is the full placement story of one query.
type Record struct {
	// Pattern and the input statistics the estimate saw.
	Pattern     string `json:"pattern"`
	Rows        int    `json:"rows"`
	AvgLen      int    `json:"avg_len"`
	QueuedBytes int64  `json:"queued_bytes"`
	// States/Chars are the compiled expression's resource demand.
	States int `json:"states"`
	Chars  int `json:"chars"`
	// Candidates holds every plan considered, in fpga/hybrid/software order.
	Candidates []Candidate `json:"candidates"`
	// Chosen names the plan taken; Reason says why.
	Chosen string `json:"chosen"`
	Reason string `json:"reason"`
	// Executed is set once Finish recorded the actual figures.
	Executed bool `json:"executed"`
	// Degraded marks a query the fault layer pushed to the software
	// fallback — its actuals describe the fallback, not the chosen plan,
	// so the auditor skips it.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
	// Retries counts the query-level hardware re-attempts the robustness
	// layer took after transient faults; RetryBackoffNS is the simulated
	// backoff they accrued. Zero on clean runs.
	Retries        int   `json:"retries,omitempty"`
	RetryBackoffNS int64 `json:"retry_backoff_ns,omitempty"`
	// Actual is the measured cost vector (nil before execution).
	Actual *Cost `json:"actual,omitempty"`
	// Errors compares predicted vs actual per term (terms absent from both
	// sides are omitted).
	Errors []TermError `json:"errors,omitempty"`
	// PlanCacheHit marks a record cloned from the plan cache: the placement
	// decision was reused, not re-derived.
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
	// ConfigCached marks a run that reused a compiled regex config vector,
	// skipping Glushkov construction and the 512-bit encode.
	ConfigCached bool `json:"config_cached,omitempty"`
	// SharedScan marks a follower query whose scan was coalesced into
	// another query's HAL job group — its actuals describe shared work, so
	// the calibration auditor skips it.
	SharedScan bool `json:"shared_scan,omitempty"`
	// Topdown is the bottleneck attribution: the executed query's phase
	// breakdown and engine-cycle buckets folded into a verdict. Nil before
	// execution.
	Topdown *topdown.Attribution `json:"topdown,omitempty"`

	auditor *Auditor
}

// Clone copies the planning-time half of a record for reuse from the plan
// cache: candidates, the chosen plan and its statistics survive; execution
// state (actuals, errors, degradation, retries) and the auditor hook are
// reset so the clone tells only its own query's story.
func (r *Record) Clone() *Record {
	if r == nil {
		return nil
	}
	c := &Record{
		Pattern:      r.Pattern,
		Rows:         r.Rows,
		AvgLen:       r.AvgLen,
		QueuedBytes:  r.QueuedBytes,
		States:       r.States,
		Chars:        r.Chars,
		Candidates:   append([]Candidate(nil), r.Candidates...),
		Chosen:       r.Chosen,
		Reason:       r.Reason,
		PlanCacheHit: true,
	}
	return c
}

// Candidate returns the candidate for a placement (nil when absent).
func (r *Record) Candidate(placement string) *Candidate {
	for i := range r.Candidates {
		if r.Candidates[i].Placement == placement {
			return &r.Candidates[i]
		}
	}
	return nil
}

// Predicted returns the chosen candidate's cost vector.
func (r *Record) Predicted() Cost {
	if c := r.Candidate(r.Chosen); c != nil {
		return c.Cost
	}
	return Cost{}
}

// Offloads reports whether the chosen plan uses the FPGA.
func (r *Record) Offloads() bool {
	return r.Chosen == "fpga" || r.Chosen == "hybrid"
}

// ForceHardware rewrites the decision to the best feasible hardware plan —
// the explicitly invoked operator (REGEXP_FPGA) bypasses the cost model, and
// the record must tell the truth about what runs.
func (r *Record) ForceHardware(reason string) {
	for _, p := range []string{"fpga", "hybrid"} {
		if c := r.Candidate(p); c != nil && c.Feasible {
			r.Chosen = p
			r.Reason = reason
			return
		}
	}
}

// SetAuditor routes this record to a calibration auditor on Finish.
func (r *Record) SetAuditor(a *Auditor) {
	if r == nil {
		return
	}
	r.auditor = a
}

// Finish records the measured cost vector, computes the per-term prediction
// errors against the chosen candidate, and hands the record to the attached
// calibration auditor. Calling Finish twice replaces the actuals.
func (r *Record) Finish(actual Cost) {
	if r == nil {
		return
	}
	a := actual
	r.Actual = &a
	r.Executed = true
	r.Errors = r.Errors[:0]
	pred := r.Predicted()
	for _, term := range Terms {
		p, act := pred.Term(term), a.Term(term)
		rel, signed, ok := relativeError(p, act)
		if !ok {
			continue
		}
		r.Errors = append(r.Errors, TermError{
			Term: term, Predicted: p, Actual: act,
			RelErr: rel, SignedErr: signed,
		})
	}
	r.auditor.Observe(r)
}

// relativeError compares a predicted and an actual term value. Terms absent
// from both sides carry no signal (ok=false); a term with a zero actual is
// scored against the prediction so invented terms still register.
func relativeError(pred, act int64) (rel, signed float64, ok bool) {
	if pred == 0 && act == 0 {
		return 0, 0, false
	}
	den := float64(act)
	if act == 0 {
		den = float64(pred)
	}
	if den < 0 {
		den = -den
	}
	signed = (float64(pred) - float64(act)) / den
	rel = signed
	if rel < 0 {
		rel = -rel
	}
	return rel, signed, true
}

// TermError returns the comparison for one term (zero, false when the term
// carried no signal).
func (r *Record) TermError(term string) (TermError, bool) {
	for _, e := range r.Errors {
		if e.Term == term {
			return e, true
		}
	}
	return TermError{}, false
}

// fmtNS renders simulated nanoseconds like the rest of the stack renders
// sim.Time.
func fmtNS(ns int64) string { return (sim.Time(ns) * sim.Nanosecond).String() }

// fmtPct renders a relative error as a signed percentage.
func fmtPct(signed float64) string { return fmt.Sprintf("%+.1f%%", signed*100) }

// costTerms renders the non-zero terms of a cost vector.
func costTerms(c Cost) string {
	var parts []string
	if c.ScanBytes != 0 {
		parts = append(parts, fmt.Sprintf("scan=%dB", c.ScanBytes))
	}
	if c.QPITransferNS != 0 {
		parts = append(parts, "qpi="+fmtNS(c.QPITransferNS))
	}
	if c.EngineBusyNS != 0 {
		parts = append(parts, "engine="+fmtNS(c.EngineBusyNS))
	}
	if c.QueueDelayNS != 0 {
		parts = append(parts, "queue="+fmtNS(c.QueueDelayNS))
	}
	if c.SoftwareNS != 0 {
		parts = append(parts, "sw="+fmtNS(c.SoftwareNS))
	}
	if c.FixedNS != 0 {
		parts = append(parts, "fixed="+fmtNS(c.FixedNS))
	}
	return strings.Join(parts, " ")
}

// Lines renders the EXPLAIN view: input statistics, every candidate with
// its predicted breakdown, and the decision. Deterministic for identical
// records.
func (r *Record) Lines() []string {
	if r == nil {
		return nil
	}
	out := []string{fmt.Sprintf(
		"pattern: '%s' (states=%d chars=%d) rows=%d avg_len=%d queued=%dB",
		r.Pattern, r.States, r.Chars, r.Rows, r.AvgLen, r.QueuedBytes)}
	for _, c := range r.Candidates {
		if !c.Feasible {
			out = append(out, fmt.Sprintf("candidate %-8s infeasible — %s", c.Placement, c.Reason))
			continue
		}
		line := fmt.Sprintf("candidate %-8s total=%s", c.Placement, fmtNS(c.Cost.TotalNS))
		if terms := costTerms(c.Cost); terms != "" {
			line += "  [" + terms + "]"
		}
		if c.HWPart != "" {
			line += fmt.Sprintf("  hw='%s' sw='%s'", c.HWPart, c.SWPart)
		}
		out = append(out, line)
	}
	out = append(out, fmt.Sprintf("chosen: %s — %s", r.Chosen, r.Reason))
	if r.PlanCacheHit {
		out = append(out, "plan cache: hit — placement reused without re-estimation")
	}
	if r.ConfigCached {
		out = append(out, "config cache: hit — compiled vector reused, config-gen skipped")
	}
	return out
}

// AnalyzeLines renders the EXPLAIN ANALYZE extension: predicted vs actual
// per cost term with per-term relative error. Empty before Finish.
func (r *Record) AnalyzeLines() []string {
	if r == nil || !r.Executed || r.Actual == nil {
		return nil
	}
	out := []string{fmt.Sprintf("%-13s %14s %14s %9s", "term", "predicted", "actual", "error")}
	pred := r.Predicted()
	for _, term := range Terms {
		p, a := pred.Term(term), r.Actual.Term(term)
		if p == 0 && a == 0 {
			continue
		}
		ps, as := fmtNS(p), fmtNS(a)
		if term == TermScanBytes {
			ps, as = fmt.Sprintf("%dB", p), fmt.Sprintf("%dB", a)
		}
		errs := "-"
		if e, ok := r.TermError(term); ok {
			errs = fmtPct(e.SignedErr)
		}
		out = append(out, fmt.Sprintf("%-13s %14s %14s %9s", term, ps, as, errs))
	}
	if r.Retries > 0 {
		out = append(out, fmt.Sprintf("retries: %d hardware re-attempt(s), %s backoff",
			r.Retries, fmtNS(r.RetryBackoffNS)))
	}
	if r.Degraded {
		out = append(out, "degraded: software fallback ("+r.DegradedCause+")")
	}
	if r.SharedScan {
		out = append(out, "shared scan: follower — results fanned out from a coalesced job group")
	}
	if r.Topdown != nil {
		out = append(out, r.Topdown.Line())
	}
	return out
}

// WriteText writes the record (and, once executed, the predicted-vs-actual
// table) as plain text.
func (r *Record) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	for _, l := range r.Lines() {
		fmt.Fprintln(w, l)
	}
	for _, l := range r.AnalyzeLines() {
		fmt.Fprintln(w, l)
	}
}

// WriteJSON writes the record as indented JSON.
func (r *Record) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ctxKey carries a *Record through a context.
type ctxKey struct{}

// WithRecord attaches a pre-built decision record to ctx so the execution
// layers below (mdb.CallUDF → core.Exec) fill its actuals instead of
// building their own record.
func WithRecord(ctx context.Context, r *Record) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the record attached by WithRecord, or nil.
func FromContext(ctx context.Context) *Record {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Record)
	return r
}
