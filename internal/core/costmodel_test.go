package core

import (
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/fpga"
	"doppiodb/internal/workload"
)

func TestEstimateCostPlacements(t *testing.T) {
	s := newSystem(t)

	// Large complex scan: the FPGA wins decisively.
	est, err := s.EstimateCost(workload.Q2, 2_500_000, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Placement != PlaceFPGA {
		t.Errorf("large complex scan placed %v, want fpga", est.Placement)
	}
	if est.SWTime < 10*est.HWTime {
		t.Errorf("SW %v should dwarf HW %v for 2.5M rows", est.SWTime, est.HWTime)
	}
	if est.States != 4 || est.Chars != 20 {
		t.Errorf("resource estimate: %d states / %d chars", est.States, est.Chars)
	}

	// Even a tiny input offloads: the fixed offload cost (~0.1 ms) is
	// far below MonetDB's per-query overhead — consistent with Fig. 10's
	// sub-millisecond totals at 10 k tuples.
	est, err = s.EstimateCost(workload.Q1Regex, 50, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Placement != PlaceFPGA {
		t.Errorf("tiny scan placed %v, want fpga", est.Placement)
	}

	// Heavy queued load can flip the decision for borderline inputs.
	base, err := s.EstimateCost(workload.Q1Regex, 40_000, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s.EstimateCost(workload.Q1Regex, 40_000, 64, 400<<30)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.QueueDelay <= base.QueueDelay {
		t.Error("queued load not reflected in delay")
	}
	if loaded.Placement != PlaceSoftware {
		t.Errorf("overloaded FPGA should push work to software, got %v", loaded.Placement)
	}
}

func TestEstimateCostHybridPlacement(t *testing.T) {
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	s, err := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateCost(workload.QH, 2_500_000, 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Placement != PlaceHybrid {
		t.Errorf("oversized expression placed %v, want hybrid", est.Placement)
	}
	// An unsplittable oversized expression falls back to software.
	est, err = s.EstimateCost(`[A-Za-z]{9}[0-9]{9}[a-z]{9}`, 2_500_000, 80, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Placement != PlaceSoftware {
		t.Errorf("unsplittable expression placed %v, want software", est.Placement)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceFPGA.String() != "fpga" || PlaceHybrid.String() != "hybrid" ||
		PlaceSoftware.String() != "software" || Placement(9).String() != "unknown" {
		t.Error("Placement.String broken")
	}
}

func TestAdviseOffload(t *testing.T) {
	s := newSystem(t)
	if !s.AdviseOffload(workload.Q2, 2_500_000, 64) {
		t.Error("should offload a large complex scan")
	}
	if !s.AdviseOffload(workload.Q1Regex, 50, 64) {
		t.Error("even tiny scans offload: fixed costs are sub-millisecond")
	}
	if s.AdviseOffload(`(`, 1000, 64) {
		t.Error("invalid pattern must not offload")
	}
}
