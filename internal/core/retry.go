package core

import (
	"hash/fnv"

	"doppiodb/internal/sim"
)

// Query-level retry: the HAL's submit loop already resubmits a failed job a
// bounded number of times within one attempt, but a whole hardware attempt
// can still fail transiently — an engine mid-drop that a readmission probe
// will recover, a wedged done bit that clears on the next submission. Before
// degrading such a query to the software operator, Exec re-runs the
// hardware attempt under a per-query retry budget with exponential backoff
// and deterministic seeded jitter. Permanent faults (the whole fabric
// quarantined, per hal.IsTransient) skip the retries and degrade at once.
//
// The backoff is pure simulated time: no wall-clock sleep is taken — the
// delay is charged to the query's breakdown as PhaseRetry — and the jitter
// is a splitmix64 hash of (seed, pattern, attempt), so a single-client run
// that never retries is bit-identical to the pre-retry runtime and a run
// that does retry is bit-identical to itself.

// RetryPolicy is the per-query hardware retry budget.
type RetryPolicy struct {
	// MaxRetries bounds the re-attempts after the first failed hardware
	// attempt (0 disables query-level retry).
	MaxRetries int
	// Backoff is the base delay; attempt k waits Backoff<<k plus jitter.
	Backoff sim.Time
	// Seed feeds the deterministic jitter stream.
	Seed uint64
}

// DefaultRetryPolicy is the stock budget: two retries starting at 200 µs —
// enough for a breaker readmission probe cycle, far below a query's typical
// service time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 2, Backoff: 200 * sim.Microsecond, Seed: 1}
}

// Delay returns the simulated backoff before re-attempt number attempt
// (0-based) of a query identified by key: exponential in the attempt with
// up to +50% deterministic jitter so synchronized retry storms decorrelate.
func (p RetryPolicy) Delay(attempt int, key string) sim.Time {
	if p.Backoff <= 0 {
		return 0
	}
	base := p.Backoff << uint(attempt)
	f := fnv.New64a()
	f.Write([]byte(key)) //nolint:errcheck // fnv never fails
	j := splitmix64(p.Seed ^ f.Sum64() ^ uint64(attempt+1))
	return base + sim.Time(j%uint64(base/2+1))
}

// splitmix64 is the finalizer of the splitmix64 PRNG — the same mixer the
// fault injector draws from, reused here so jitter is a pure function of
// the seed material.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
