package core

import (
	"context"
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/fpga"
	"doppiodb/internal/mdb"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func loadTable(t *testing.T, s *System, n int, kind workload.HitKind, sel float64) (*mdb.Table, int) {
	t.Helper()
	rows, hits := workload.NewGenerator(33, 64).Table(n, kind, sel)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, hits
}

func TestHUDFEndToEnd(t *testing.T) {
	s := newSystem(t)
	tbl, hits := loadTable(t, s, 10_000, workload.HitQ2, 0.2)
	col, _ := tbl.Column("address_string")

	out, err := s.DB.CallUDF(context.Background(), UDFName, tbl, "address_string", workload.Q2)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < out.Result.Count(); i++ {
		if out.Result.Get(i) != 0 {
			got++
		}
	}
	if got != hits {
		t.Errorf("HUDF matched %d, want %d", got, hits)
	}
	if out.HWSeconds <= 0 {
		t.Error("no hardware time recorded")
	}
	if out.Breakdown[PhaseConfigGen] <= 0 || out.Breakdown[PhaseConfigGen] > 1e-6 {
		t.Errorf("config generation = %v s, want <1µs (§7.4)", out.Breakdown[PhaseConfigGen])
	}
	_ = col
}

func TestExecAgainstSoftwareOracle(t *testing.T) {
	s := newSystem(t)
	tbl, _ := loadTable(t, s, 5_000, workload.HitQ3, 0.25)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, workload.Q3, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := token.CompilePattern(workload.Q3, token.Options{})
	for i := 0; i < col.Strs.Count(); i++ {
		want := uint16(prog.Match(col.Strs.Get(i)))
		if got := res.Matches.Get(i); got != want {
			t.Fatalf("row %d: fpga=%d oracle=%d", i, got, want)
		}
	}
}

func TestExecLike(t *testing.T) {
	s := newSystem(t)
	tbl, hits := loadTable(t, s, 8_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	res, err := s.ExecLike(context.Background(), col.Strs, workload.Q1Like, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != hits {
		t.Errorf("ExecLike matched %d, want %d", res.MatchCount, hits)
	}
	if res.Hybrid {
		t.Error("Q1 should not need hybrid execution")
	}
}

func TestExecILikeCollation(t *testing.T) {
	s := newSystem(t)
	rows := []string{"KOBLENZER STRASSE 1", "koblenzer strasse 2", "Lindenweg 3"}
	tbl, err := s.DB.LoadAddressTable("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.Column("address_string")
	res, err := s.ExecLike(context.Background(), col.Strs, `%Strasse%`, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 2 {
		t.Errorf("ILIKE matched %d, want 2", res.MatchCount)
	}
}

func TestSplitPattern(t *testing.T) {
	lim := config.Limits{MaxStates: 5, MaxChars: 24}
	hw, sw, err := SplitPattern(workload.QH, lim, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hw == "" || sw == "" {
		t.Fatalf("empty split: %q / %q", hw, sw)
	}
	// The HW part must fit, and the obvious split is at the last `.*`.
	prog, err := token.CompilePattern(hw, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if config.Fits(prog, lim) != nil {
		t.Errorf("hw part %q does not fit", hw)
	}
	if sw != "delivery" {
		t.Errorf("sw part = %q, want delivery", sw)
	}
	// Unsplittable: no top-level wildcard.
	if _, _, err := SplitPattern(`[A-Za-z]{3}[0-9]{9}[a-z]{9}`, config.Limits{MaxStates: 2, MaxChars: 4}, token.Options{}); err != ErrCannotSplit {
		t.Errorf("err = %v, want ErrCannotSplit", err)
	}
}

func TestHybridExecution(t *testing.T) {
	// Deploy a tiny device so QH does not fit and hybrid kicks in.
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	s, err := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(9, 80).Table(8_000, workload.HitQH, 0.3)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.Column("address_string")

	res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hybrid {
		t.Fatal("expected hybrid execution")
	}
	if res.SWPart != "delivery" {
		t.Errorf("sw part %q", res.SWPart)
	}
	if res.MatchCount != hits {
		t.Errorf("hybrid matched %d, want %d", res.MatchCount, hits)
	}
	// Oracle check on final match values.
	prog, _ := token.CompilePattern(workload.QH, token.Options{})
	for i := 0; i < col.Strs.Count(); i++ {
		want := prog.Match(col.Strs.Get(i)) != 0
		got := res.Matches.Get(i) != 0
		if want != got {
			t.Fatalf("row %d: hybrid=%v oracle=%v (%q)", i, got, want, col.Strs.GetString(i))
		}
	}
	if res.Breakdown.Get(PhaseSoftware) <= 0 {
		t.Error("no software post-processing time recorded")
	}
	if res.Work.RegexRows == 0 {
		t.Error("no post-processed rows counted")
	}
}

func TestHybridPostprocessOnlyMatches(t *testing.T) {
	// Post-processing must touch only the FPGA-selected rows: with
	// selectivity 0, zero rows reach the CPU (Fig. 13's x-axis).
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	s, _ := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	rows, _ := workload.NewGenerator(5, 64).Table(4_000, workload.HitNone, 0)
	tbl, _ := s.DB.LoadAddressTable("t", rows)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work.RegexRows != 0 {
		t.Errorf("post-processed %d rows, want 0", res.Work.RegexRows)
	}
	if res.MatchCount != 0 {
		t.Errorf("matches = %d", res.MatchCount)
	}
}

func TestPatternTooLargeNoSplit(t *testing.T) {
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 3, MaxChars: 6}
	s, _ := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	rows, _ := workload.NewGenerator(2, 64).Table(100, workload.HitNone, 0)
	tbl, _ := s.DB.LoadAddressTable("t", rows)
	col, _ := tbl.Column("address_string")
	if _, err := s.Exec(context.Background(), col.Strs, `abcdefghij`, token.Options{}); err != ErrCannotSplit {
		t.Errorf("err = %v, want ErrCannotSplit", err)
	}
}

func TestBreakdownPhases(t *testing.T) {
	s := newSystem(t)
	tbl, _ := loadTable(t, s, 10_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range []string{PhaseDatabase, PhaseUDF, PhaseConfigGen, PhaseHAL, PhaseHardware} {
		if res.Breakdown.Get(ph) <= 0 {
			t.Errorf("phase %s missing from breakdown", ph)
		}
	}
	hw := res.Breakdown.Get(PhaseHardware)
	if hw <= res.Breakdown.Get(PhaseConfigGen) {
		t.Error("hardware time should dominate config generation")
	}
	if res.Total() <= hw {
		t.Error("total must include software phases")
	}
}
