package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"doppiodb/internal/bat"
	"doppiodb/internal/config"
	"doppiodb/internal/faults"
	"doppiodb/internal/fpga"
	"doppiodb/internal/softregex"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// TestSingleClientBitIdenticalAcrossRuns anchors the refactor's contract:
// a lone query through the asynchronous device runtime produces exactly
// the same simulated timings, traffic attribution, and phase breakdown
// every run — the round it gets is the batch the synchronous drain used
// to run.
func TestSingleClientBitIdenticalAcrossRuns(t *testing.T) {
	run := func() *Result {
		s := newSystem(t)
		tbl, _ := loadTable(t, s, 8_000, workload.HitQ2, 0.2)
		col, _ := tbl.Column("address_string")
		res, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MatchCount != b.MatchCount {
		t.Errorf("match counts differ: %d vs %d", a.MatchCount, b.MatchCount)
	}
	if a.HW != b.HW {
		t.Errorf("hardware stats differ across runs: %+v vs %+v", a.HW, b.HW)
	}
	for _, ph := range []string{PhaseDatabase, PhaseUDF, PhaseConfigGen, PhaseHAL, PhaseHardware} {
		if a.Breakdown.Get(ph) != b.Breakdown.Get(ph) {
			t.Errorf("%s differs: %v vs %v", ph, a.Breakdown.Get(ph), b.Breakdown.Get(ph))
		}
	}
	// A lone client never queues: no wait in the stats, no queue phase in
	// the breakdown (the phase list is identical to the synchronous era).
	if a.HW.QueueWait != 0 {
		t.Errorf("single client saw queue wait %v", a.HW.QueueWait)
	}
	if a.Breakdown.Get(PhaseQueue) != 0 {
		t.Error("queue phase present in a single-client breakdown")
	}
	if a.HW.Bytes <= 0 || a.HW.Grants <= 0 {
		t.Errorf("no traffic attributed: %+v", a.HW)
	}
}

// TestEstimateCostSeesQueueDelay holds the device runtime paused while a
// query's jobs wait for admission: the optimizer's cost function must
// translate the queued volume into a nonzero predicted queue delay.
func TestEstimateCostSeesQueueDelay(t *testing.T) {
	s := newSystem(t)
	tbl, _ := loadTable(t, s, 5_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	idle, err := s.EstimateCost(workload.Q1Regex, 5_000, 64, s.QueuedBytes())
	if err != nil {
		t.Fatal(err)
	}
	if idle.QueueDelay != 0 {
		t.Errorf("idle device predicts queue delay %v", idle.QueueDelay)
	}
	s.HAL.Pause()
	done := make(chan error, 1)
	go func() {
		_, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueuedBytes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	queued := s.QueuedBytes()
	if queued == 0 {
		t.Fatal("query never showed up as queued load")
	}
	loaded, err := s.EstimateCost(workload.Q1Regex, 5_000, 64, queued)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.QueueDelay <= 0 {
		t.Errorf("loaded device predicts queue delay %v with %d bytes queued",
			loaded.QueueDelay, queued)
	}
	if loaded.HWTime != idle.HWTime {
		t.Errorf("queued load leaked into the processing-time estimate: %v vs %v",
			loaded.HWTime, idle.HWTime)
	}
	s.HAL.Resume()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestQueryCancellationAbortsQueuedJobs cancels a query while its jobs sit
// in the paused runtime's backlog: Exec must return the context error (not
// degrade), and the jobs' reservations must be gone.
func TestQueryCancellationAbortsQueuedJobs(t *testing.T) {
	s := newSystem(t)
	tbl, _ := loadTable(t, s, 5_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	s.HAL.Pause()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Exec(ctx, col.Strs, workload.Q1Regex, token.Options{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueuedBytes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.QueuedBytes() == 0 {
		t.Fatal("query never showed up as queued load")
	}
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Exec err = %v, want context.Canceled", err)
	}
	if got := s.QueuedBytes(); got != 0 {
		t.Errorf("canceled query left %d bytes queued", got)
	}
	s.HAL.Resume()
	// The device stays usable after the abort.
	res, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount <= 0 {
		t.Error("no matches after canceled predecessor")
	}
}

// TestConcurrentStressMixedWorkload is the -race stress for the session
// scheduler: 8 client goroutines fire >100 mixed direct, hybrid, and
// fault-retried queries at one shared system. Every result must match the
// softregex oracle, and every non-degraded query's attributed traffic must
// equal the single-client reference — concurrent queries sharing rounds
// must never bleed bytes into each other's stats.
func TestConcurrentStressMixedWorkload(t *testing.T) {
	type testCase struct {
		pat      string
		kind     workload.HitKind
		strLen   int
		rows     []string
		oracle   int
		refBytes int64
		col      *bat.Strings
	}
	cases := []*testCase{
		{pat: workload.Q1Regex, kind: workload.HitQ1, strLen: 64},
		{pat: workload.Q2, kind: workload.HitQ2, strLen: 64},
		{pat: workload.QH, kind: workload.HitQH, strLen: 80},
	}
	// A tiny deployment so QH exercises the hybrid path while Q1/Q2 stay
	// direct (same shape as TestHybridExecution).
	newSys := func(in *faults.Injector) *System {
		t.Helper()
		dep := fpga.DefaultDeployment()
		dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
		s, err := NewSystem(Options{
			Deployment:  &dep,
			RegionBytes: 1 << 30,
			Telemetry:   telemetry.NewRegistry(),
			Faults:      in,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for i, c := range cases {
		g := workload.NewGenerator(int64(50+i), c.strLen)
		c.rows, _ = g.Table(3_000, c.kind, 0.25)
		bt, err := softregex.NewBacktracker(c.pat, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range c.rows {
			if end, _ := bt.MatchString(r); end > 0 {
				c.oracle++
			}
		}
	}

	// Single-client reference on a healthy system: per-pattern attributed
	// bytes, the bleed detector's ground truth.
	ref := newSys(faults.New(faults.Options{}))
	for i, c := range cases {
		tbl, err := ref.DB.LoadAddressTable(c.pat, c.rows)
		if err != nil {
			t.Fatal(err)
		}
		col, err := tbl.Column("address_string")
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Exec(context.Background(), col.Strs, c.pat, token.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.MatchCount != c.oracle {
			t.Fatalf("case %d reference matched %d, oracle %d", i, res.MatchCount, c.oracle)
		}
		c.refBytes = res.HW.Bytes
		if c.refBytes <= 0 {
			t.Fatalf("case %d reference attributed no bytes", i)
		}
	}

	// Stress system: mild fault injection keeps the retry/watchdog paths
	// hot under concurrency without making degradation the common case.
	s := newSys(faults.New(faults.Options{Seed: 13, StuckDone: 0.05, HandshakeLoss: 0.05}))
	for _, c := range cases {
		tbl, err := s.DB.LoadAddressTable(c.pat, c.rows)
		if err != nil {
			t.Fatal(err)
		}
		col, err := tbl.Column("address_string")
		if err != nil {
			t.Fatal(err)
		}
		c.col = col.Strs
	}
	const goroutines = 8
	const perClient = 13 // 104 queries total
	var wg sync.WaitGroup
	var mu sync.Mutex
	degraded := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				c := cases[(g*perClient+q)%len(cases)]
				res, err := s.Exec(context.Background(), c.col, c.pat, token.Options{})
				if err != nil {
					t.Errorf("client %d query %d (%s): %v", g, q, c.pat, err)
					return
				}
				if res.MatchCount != c.oracle {
					t.Errorf("client %d query %d (%s): matched %d, oracle %d",
						g, q, c.pat, res.MatchCount, c.oracle)
					return
				}
				if res.Degraded {
					mu.Lock()
					degraded++
					mu.Unlock()
					continue
				}
				if res.HW.Bytes != c.refBytes {
					t.Errorf("client %d query %d (%s): attributed %d bytes, single-client reference %d (stat bleed)",
						g, q, c.pat, res.HW.Bytes, c.refBytes)
					return
				}
				if res.HW.Time <= 0 {
					t.Errorf("client %d query %d (%s): no hardware time", g, q, c.pat)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	t.Logf("stress: %d queries, %d degraded", goroutines*perClient, degraded)
}
