package core

// AdviseOffload implements sql.PlacementAdvisor: it answers whether the
// hardware implementation is predicted to beat software for this predicate,
// taking the FPGA's current queued load into account. Errors (e.g. the
// pattern cannot even be split) conservatively keep the predicate in
// software.
//
// It is a thin view over ExplainCost, which records the full decision —
// candidate plans, itemized predictions, reason — and the advisor counters
// (core.advisor.decisions / predicted_hw_ns / predicted_sw_ns / offloaded).
func (s *System) AdviseOffload(pattern string, rows, avgLen int) bool {
	rec, err := s.ExplainCost(pattern, rows, avgLen)
	if err != nil {
		return false
	}
	return rec.Offloads()
}
