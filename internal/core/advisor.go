package core

// AdviseOffload implements sql.PlacementAdvisor: it answers whether the
// hardware implementation is predicted to beat software for this predicate,
// taking the FPGA's current queued load into account. Errors (e.g. the
// pattern cannot even be split) conservatively keep the predicate in
// software.
func (s *System) AdviseOffload(pattern string, rows, avgLen int) bool {
	est, err := s.EstimateCost(pattern, rows, avgLen, s.QueuedBytes())
	if err != nil {
		return false
	}
	return est.Placement == PlaceFPGA || est.Placement == PlaceHybrid
}
