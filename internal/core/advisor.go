package core

import "doppiodb/internal/sim"

// AdviseOffload implements sql.PlacementAdvisor: it answers whether the
// hardware implementation is predicted to beat software for this predicate,
// taking the FPGA's current queued load into account. Errors (e.g. the
// pattern cannot even be split) conservatively keep the predicate in
// software.
//
// Every decision records the cost model's predictions in the system's
// telemetry registry (core.advisor.predicted_hw_ns / predicted_sw_ns), so
// they can be compared post-hoc against the realized response time
// accumulated in core.actual_ns.
func (s *System) AdviseOffload(pattern string, rows, avgLen int) bool {
	s.Tel.Counter("core.advisor.decisions").Inc()
	est, err := s.EstimateCost(pattern, rows, avgLen, s.QueuedBytes())
	if err != nil {
		s.Tel.Counter("core.advisor.errors").Inc()
		return false
	}
	s.Tel.Counter("core.advisor.predicted_hw_ns").Add(
		int64((est.HWTime + est.QueueDelay) / sim.Nanosecond))
	s.Tel.Counter("core.advisor.predicted_sw_ns").Add(
		int64(est.SWTime / sim.Nanosecond))
	offload := est.Placement == PlaceFPGA || est.Placement == PlaceHybrid
	if offload {
		s.Tel.Counter("core.advisor.offloaded").Inc()
	}
	return offload
}
