package core

import (
	"strings"

	"doppiodb/internal/regex"
)

// regexParse wraps the parser for SplitPattern.
func regexParse(pattern string) (*regex.Node, error) {
	return regex.Parse(pattern)
}

// topLevelChildren returns the top-level concatenation elements of the AST
// (flattening nested concatenations from grouping).
func topLevelChildren(n *regex.Node) []*regex.Node {
	if n.Op != regex.OpConcat {
		return []*regex.Node{n}
	}
	var out []*regex.Node
	for _, s := range n.Subs {
		if s.Op == regex.OpConcat {
			out = append(out, topLevelChildren(s)...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// isDotStar reports whether the node is `.*`.
func isDotStar(n *regex.Node) bool {
	return n.Op == regex.OpStar && n.Subs[0].Op == regex.OpAny
}

// renderConcat renders a slice of AST children back to pattern syntax.
func renderConcat(children []*regex.Node) string {
	var b strings.Builder
	for _, c := range children {
		b.WriteString(c.String())
	}
	return b.String()
}
