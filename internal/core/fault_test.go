package core

import (
	"context"
	"testing"

	"doppiodb/internal/faults"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// newFaultySystem boots a system with the given injector and an isolated
// telemetry registry.
func newFaultySystem(t *testing.T, in *faults.Injector) *System {
	t.Helper()
	s, err := NewSystem(Options{
		RegionBytes: 1 << 30,
		Telemetry:   telemetry.NewRegistry(),
		Faults:      in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDegradedFallbackMatchesOracle(t *testing.T) {
	// Engine 0 refuses every job, so the partitioned submit fails beyond
	// the HAL's retries; Exec must degrade to the software operator and
	// still return exactly the right matches, flagged Degraded.
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 0})
	s := newFaultySystem(t, in)
	tbl, hits := loadTable(t, s, 10_000, workload.HitQ2, 0.2)
	col, _ := tbl.Column("address_string")

	res, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
	if err != nil {
		t.Fatalf("Exec did not degrade: %v", err)
	}
	if !res.Degraded || res.DegradedCause == "" {
		t.Fatalf("Degraded=%v cause=%q", res.Degraded, res.DegradedCause)
	}
	if res.MatchCount != hits {
		t.Errorf("degraded matched %d, want %d", res.MatchCount, hits)
	}
	prog, _ := token.CompilePattern(workload.Q2, token.Options{})
	for i := 0; i < col.Strs.Count(); i++ {
		want := uint16(prog.Match(col.Strs.Get(i)))
		if got := res.Matches.Get(i); got != want {
			t.Fatalf("row %d: degraded=%d oracle=%d", i, got, want)
		}
	}
	if got := s.Tel.Counter("core.fallback.software").Value(); got != 1 {
		t.Errorf("core.fallback.software = %d, want 1", got)
	}
	if res.Breakdown.Get(PhaseSoftware) <= 0 {
		t.Error("degraded run recorded no software time")
	}
	if res.Total() <= 0 {
		t.Error("degraded run has no simulated response time")
	}
}

func TestDegradedFlagPropagatesToUDF(t *testing.T) {
	// Every job wedges (stuck done bit): the UDF call itself must still
	// answer, with the Degraded flag visible to the database layer.
	in := faults.New(faults.Options{Seed: 2, StuckDone: 1})
	s := newFaultySystem(t, in)
	tbl, hits := loadTable(t, s, 2_000, workload.HitQ1, 0.2)

	out, err := s.DB.CallUDF(context.Background(), UDFName, tbl, "address_string", workload.Q1Regex)
	if err != nil {
		t.Fatalf("CallUDF did not degrade: %v", err)
	}
	if !out.Degraded {
		t.Error("UDFResult.Degraded not set")
	}
	got := 0
	for i := 0; i < out.Result.Count(); i++ {
		if out.Result.Get(i) != 0 {
			got++
		}
	}
	if got != hits {
		t.Errorf("degraded UDF matched %d, want %d", got, hits)
	}
}

func TestDegradedNotSetOnHealthyPath(t *testing.T) {
	// A quiet injector must leave the hardware path untouched: same
	// matches, no degradation, no fallback counter.
	s := newFaultySystem(t, faults.New(faults.Options{}))
	tbl, hits := loadTable(t, s, 5_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("healthy run flagged Degraded")
	}
	if res.MatchCount != hits {
		t.Errorf("matched %d, want %d", res.MatchCount, hits)
	}
	if got := s.Tel.Counter("core.fallback.software").Value(); got != 0 {
		t.Errorf("core.fallback.software = %d, want 0", got)
	}
}
