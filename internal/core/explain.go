package core

import (
	"fmt"

	"doppiodb/internal/bat"
	"doppiodb/internal/explain"
	"doppiodb/internal/obs"
	"doppiodb/internal/perf"
	"doppiodb/internal/sim"
	"doppiodb/internal/topdown"
)

// This file bridges the §9 cost model to the explain layer: ExplainCost
// turns one EstimateCost call into a full decision record — every candidate
// plan with its itemized predicted breakdown and the chosen plan's reason —
// and finishRecord fills the actual figures in from the runtime's per-job
// Completion accounting after execution.

// ns converts a simulated duration to the integer nanoseconds the explain
// records carry.
func ns(t sim.Time) int64 { return int64(t / sim.Nanosecond) }

// ExplainCost runs the cost model for a predicate and returns the full
// decision record: candidate plans (fpga, hybrid, software), itemized
// predicted costs, and the chosen placement with its reason. It subsumes
// AdviseOffload — the advisor counters live here now — and binds the record
// to the system's calibration auditor so Finish feeds the rolling error
// statistics.
func (s *System) ExplainCost(pattern string, rows, avgLen int) (*explain.Record, error) {
	s.Tel.Counter("core.advisor.decisions").Inc()
	queued := s.QueuedBytes()
	est, err := s.EstimateCost(pattern, rows, avgLen, queued)
	if err != nil {
		s.Tel.Counter("core.advisor.errors").Inc()
		return nil, err
	}
	s.Tel.Counter("core.advisor.predicted_hw_ns").Add(
		int64((est.HWTime + est.QueueDelay) / sim.Nanosecond))
	s.Tel.Counter("core.advisor.predicted_sw_ns").Add(
		int64(est.SWTime / sim.Nanosecond))
	rec := s.buildRecord(pattern, rows, avgLen, queued, est)
	if rec.Offloads() {
		s.Tel.Counter("core.advisor.offloaded").Inc()
	}
	rec.SetAuditor(s.Audit)
	return rec, nil
}

// buildRecord translates a CostEstimate into the explain layer's candidate
// set. The hardware cost vector is shared by the fpga and hybrid candidates
// — the model prices the offloaded scan; a hybrid's software tail runs only
// on pre-selected rows and is not priced up front.
func (s *System) buildRecord(pattern string, rows, avgLen int, queued int64, est *CostEstimate) *explain.Record {
	hwCost := explain.Cost{
		ScanBytes:     est.ScanBytes,
		QPITransferNS: ns(est.QPITransfer),
		EngineBusyNS:  ns(est.EngineBusy),
		QueueDelayNS:  ns(est.QueueDelay),
		FixedNS:       ns(est.Fixed),
		TotalNS:       ns(est.HWTime + est.QueueDelay),
	}
	lim := s.Device.Deployment.Limits
	rec := &explain.Record{
		Pattern:     pattern,
		Rows:        rows,
		AvgLen:      avgLen,
		QueuedBytes: queued,
		States:      est.States,
		Chars:       est.Chars,
	}

	fpga := explain.Candidate{Placement: "fpga", Feasible: est.Fits}
	if est.Fits {
		fpga.Reason = "whole expression fits the deployed engines"
		fpga.Cost = hwCost
	} else {
		fpga.Reason = fmt.Sprintf("needs %d states / %d chars; deployed engines hold %d/%d",
			est.States, est.Chars, lim.MaxStates, lim.MaxChars)
	}
	rec.Candidates = append(rec.Candidates, fpga)

	hybrid := explain.Candidate{Placement: "hybrid"}
	switch {
	case est.Fits:
		hybrid.Reason = "expression fits the device whole; no split needed"
	case est.HWPart != "":
		hybrid.Feasible = true
		hybrid.Reason = "prefix pre-filters on the FPGA; tail post-processed on matching rows only (tail cost not priced up front)"
		hybrid.HWPart, hybrid.SWPart = est.HWPart, est.SWPart
		hybrid.Cost = hwCost
	default:
		hybrid.Reason = "no top-level `.*` split point"
	}
	rec.Candidates = append(rec.Candidates, hybrid)

	rec.Candidates = append(rec.Candidates, explain.Candidate{
		Placement: "software",
		Feasible:  true,
		Reason:    "CPU backtracker (probe-calibrated)",
		Cost: explain.Cost{
			SoftwareNS: ns(est.SWTime),
			TotalNS:    ns(est.SWTime),
		},
	})

	rec.Chosen = est.Placement.String()
	switch est.Placement {
	case PlaceFPGA:
		rec.Reason = fmt.Sprintf("hardware wins: predicted %v (incl. %v queue delay) ≤ software %v",
			est.HWTime+est.QueueDelay, est.QueueDelay, est.SWTime)
	case PlaceHybrid:
		rec.Reason = "expression exceeds device capacity; split at top-level `.*` and pre-filter on the FPGA"
	default:
		if est.Fits {
			rec.Reason = fmt.Sprintf("software wins: predicted hardware %v (incl. %v queue delay) > software %v",
				est.HWTime+est.QueueDelay, est.QueueDelay, est.SWTime)
		} else {
			rec.Reason = "expression exceeds device capacity and has no split point"
		}
	}
	return rec
}

// recordForExec builds a decision record for a direct Exec call (no record
// came down the context from the SQL layer). Estimation failures don't fail
// the query — they just leave it unexplained.
func (s *System) recordForExec(col *bat.Strings, pattern string) *explain.Record {
	avgLen := 64
	if n := col.Count(); n > 0 {
		if b := col.PayloadBytes(); b > 0 {
			avgLen = b / n
		}
	}
	rec, err := s.ExplainCost(pattern, col.Count(), avgLen)
	if err != nil {
		return nil
	}
	return rec
}

// finishRecord maps a finished query's accounting onto the explain layer's
// cost terms: the runtime's per-job Completion records (HWStats) provide
// the hardware terms, the phase breakdown the software and fixed terms.
func finishRecord(rec *explain.Record, res *Result) {
	if rec == nil || res == nil {
		return
	}
	bd := res.Breakdown
	fixed := bd.Get(PhaseDatabase) + bd.Get(PhaseUDF) +
		bd.Get(PhaseConfigGen) + bd.Get(PhaseHAL)
	rec.Degraded = res.Degraded
	rec.DegradedCause = res.DegradedCause
	rec.Finish(explain.Cost{
		ScanBytes:     res.HW.Bytes,
		QPITransferNS: ns(res.HW.LinkBusy),
		EngineBusyNS:  ns(res.HW.Time),
		QueueDelayNS:  ns(res.HW.QueueWait),
		SoftwareNS:    ns(bd.Get(PhaseSoftware)),
		FixedNS:       ns(fixed),
		TotalNS:       ns(res.Total()),
	})
}

// FinishSoftware closes a decision record for a predicate the engine kept
// in software (the cost model's software-wins outcome): the realized cost
// is the calibrated scan model over the work actually performed. The
// query still lands in the wide-event log — the software placement class
// has SLIs too.
func (s *System) FinishSoftware(rec *explain.Record, w perf.Work) {
	if rec == nil {
		return
	}
	t := s.Model.MonetDBScan(w, true)
	rec.Finish(explain.Cost{SoftwareNS: ns(t), TotalNS: ns(t)})
	rec.Topdown = topdown.Analyze(topdown.QueryCycles{
		Placement: "software",
		Software:  t,
		Total:     t,
	})
	s.Tel.Counter("topdown.verdict." + string(rec.Topdown.Verdict)).Inc()
	s.Obs.ObserveQuery(obs.Event{
		SimNS:      ns(s.HAL.SimEpoch()),
		Pattern:    rec.Pattern,
		Placement:  "software",
		Outcome:    obs.OutcomeCompleted,
		Rows:       rec.Rows,
		TotalNS:    ns(t),
		PlanCached: rec.PlanCacheHit,
		Topdown:    rec.Topdown,
	})
}
