// Graceful degradation: when the FPGA job path reports a hardware fault
// the HAL could not retry away (wedged engines, exhausted resubmissions,
// every engine quarantined), the HUDF keeps answering queries by running
// the pure-software regex operator over the column and flagging the result
// Degraded. Correctness is preserved — the software engine computes the
// same match positions — only latency degrades, which is exactly the
// contract the robustness layer promises: errors or degraded latency,
// never corruption or hangs.
package core

import (
	"context"

	"doppiodb/internal/bat"
	"doppiodb/internal/perf"
	"doppiodb/internal/sim"
	"doppiodb/internal/softregex"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
)

// execSoftware evaluates the full pattern on the CPU with the backtracking
// engine (the PCRE stand-in), producing the same result BAT shape as the
// hardware path. cause is the fault that forced the degradation. ctx is
// honored between row chunks so a canceled query stops burning CPU.
func (s *System) execSoftware(ctx context.Context, col *bat.Strings, pattern string, opts token.Options, parent *telemetry.Span, cause error) (*Result, error) {
	sp := parent.StartChild("software-fallback")
	bt, err := softregex.NewBacktracker(pattern, opts.FoldCase)
	if err != nil {
		return nil, err
	}
	bt.SetStartOptimization(true)
	result, err := bat.NewShorts(s.Region, col.Count())
	if err != nil {
		return nil, err
	}
	if err := result.SetLen(col.Count()); err != nil {
		return nil, err
	}
	matches := 0
	var work perf.Work
	for i := 0; i < col.Count(); i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := col.Get(i)
		end, steps := bt.Match(row)
		work.Rows++
		work.RegexRows++
		work.Steps += steps
		work.Bytes += uint64(len(row))
		if end > 0 {
			result.Set(i, satPos(end))
			matches++
		}
	}
	var bd sim.Counter
	bd.Add(PhaseDatabase, s.Model.DatabaseOverhead)
	bd.Add(PhaseUDF, s.Model.UDFOverhead)
	swCost := sim.Time(work.Steps)*s.Model.StepCost +
		sim.Time(work.RegexRows)*s.Model.RegexRowOverhead
	bd.Add(PhaseSoftware, swCost)
	sp.End()
	sp.AddSim(swCost)
	sp.SetAttr("rows", int64(work.RegexRows))
	sp.SetAttr("matches", int64(matches))
	return &Result{
		Matches:       result,
		MatchCount:    matches,
		Degraded:      true,
		DegradedCause: cause.Error(),
		Work:          work,
		Breakdown:     &bd,
	}, nil
}
