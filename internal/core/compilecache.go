package core

import (
	"fmt"

	"doppiodb/internal/config"
	"doppiodb/internal/token"
)

// compiled is one pattern's cached compilation artifacts: the Glushkov
// program, the device-capacity verdict, and — when the program fits — the
// 512-bit configuration vector. Caching all three means a repeat pattern
// skips NFA construction and the encode entirely; only the simulated
// ConfigGenTime charge is waived on a hit, so the artifacts themselves are
// identical whether they came from the cache or a fresh compile.
type compiled struct {
	prog *token.Program
	vec  []byte
	fits bool
}

// compilePattern compiles through the system's config cache. The returned
// hit flag drives the Config. Gen. phase accounting: a hit charges zero
// simulated config-gen time.
func (s *System) compilePattern(pattern string, opts token.Options) (*compiled, bool, error) {
	key := fmt.Sprintf("f=%t;g=%t;%s", opts.FoldCase, opts.NoGapHold, pattern)
	if v, ok := s.Configs.Get(key); ok {
		return v.(*compiled), true, nil
	}
	prog, err := token.CompilePattern(pattern, opts)
	if err != nil {
		return nil, false, err
	}
	lim := s.Device.Deployment.Limits
	cp := &compiled{prog: prog, fits: config.Fits(prog, lim) == nil}
	if cp.fits {
		vec, err := config.Encode(prog, lim)
		if err != nil {
			return nil, false, err
		}
		cp.vec = vec
	}
	s.Configs.Put(key, cp)
	return cp, false, nil
}
