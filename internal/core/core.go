// Package core is the paper's primary contribution assembled into a usable
// system: doppioDB — MonetDB extended with a Hardware User Defined Function
// (HUDF) that offloads LIKE and REGEXP_LIKE predicates to the runtime-
// parameterizable regex engines on the FPGA of a hybrid CPU-FPGA machine.
//
// A System bundles the simulated platform (shared memory region, programmed
// FPGA device, HAL) with the column store and registers the REGEXP_FPGA UDF
// exactly as §4 describes: the UDF converts the pattern into a
// configuration vector, allocates the result BAT in shared memory, creates
// FPGA jobs through the HAL, busy-waits on the done bit, and hands the
// result BAT back to the engine. Patterns that exceed the deployed
// circuit's capacity transparently use hybrid execution (§7.8): the prefix
// that fits runs on the FPGA as a pre-filter and the remainder is
// post-processed in software on the matching tuples only.
package core

import (
	"context"
	"errors"
	"runtime/pprof"
	"sync"

	"doppiodb/internal/bat"
	"doppiodb/internal/config"
	"doppiodb/internal/engine"
	"doppiodb/internal/explain"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/fpga"
	"doppiodb/internal/hal"
	"doppiodb/internal/mdb"
	"doppiodb/internal/obs"
	"doppiodb/internal/perf"
	"doppiodb/internal/plan"
	"doppiodb/internal/shmem"
	"doppiodb/internal/sim"
	"doppiodb/internal/softregex"
	"doppiodb/internal/strmatch"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/topdown"
)

// UDFName is the SQL-visible name of the hardware operator
// (REGEXP_FPGA(pattern, column) <> 0 in queries).
const UDFName = "regexp_fpga"

// Breakdown phase names (Figure 10).
const (
	PhaseDatabase  = "Database"
	PhaseUDF       = "UDF (software part)"
	PhaseConfigGen = "Config. Gen."
	PhaseHAL       = "HAL"
	PhaseQueue     = "Queue wait"
	PhaseHardware  = "Hardware Processing"
	PhaseSoftware  = "Hybrid post-processing"
	// PhaseRetry is the simulated backoff accrued by query-level retries of
	// transiently failed hardware attempts. Absent from clean runs, so their
	// breakdowns stay bit-identical to the pre-retry runtime.
	PhaseRetry = "Retry backoff"
)

// Options configure a System.
type Options struct {
	// Deployment overrides the default 4×16 device.
	Deployment *fpga.Deployment
	// RegionBytes sizes the shared region (default 4 GB; tests use
	// less).
	RegionBytes uint64
	// Model overrides the calibrated perf model.
	Model *perf.Model
	// Telemetry receives every layer's metrics. Nil selects the
	// process-wide default registry.
	Telemetry *telemetry.Registry
	// Faults injects hardware faults into the HAL. Nil keeps the process
	// default (faults.Default, configurable via DOPPIO_FAULTS); pass
	// faults.New(faults.Options{}) for an explicitly quiet injector.
	Faults *faults.Injector
	// Recorder is the flight recorder the HAL and the degrade path report
	// into. Nil selects the process-wide default recorder.
	Recorder *flightrec.Recorder
	// Auditor receives every finished decision record for cost-model
	// calibration. Nil selects the process-wide default auditor.
	Auditor *explain.Auditor
	// Retry overrides the per-query hardware retry budget (nil selects
	// DefaultRetryPolicy; &RetryPolicy{} disables query-level retry).
	Retry *RetryPolicy
	// Obs receives the wide query event every Exec emits at completion
	// (query log + SLO engine). Nil selects the process-wide default
	// observer.
	Obs *obs.Observer
	// SharedScans enables the multi-query shared-scan coalescer:
	// concurrent queries over the same BAT with the same pattern merge
	// into one HAL job group whose result fans back out per query. Off by
	// default — coalescing intentionally changes measured throughput, so
	// the benchmark figures opt in explicitly.
	SharedScans bool
}

// System is a running doppioDB instance on the simulated Xeon+FPGA machine.
type System struct {
	Region *shmem.Region
	Device *fpga.Device
	HAL    *hal.HAL
	DB     *mdb.DB
	Model  perf.Model
	// Tel is the registry every layer of this system reports into.
	Tel *telemetry.Registry
	// Rec is the always-on flight recorder shared with the HAL.
	Rec *flightrec.Recorder
	// Audit is the calibration auditor every decision record feeds.
	Audit *explain.Auditor
	// Retry is the per-query hardware retry budget Exec applies to
	// transient faults before degrading to software.
	Retry RetryPolicy
	// Obs is the wide-event query log and SLO engine every query feeds.
	Obs *obs.Observer
	// Configs caches compiled regex artifacts (program + config vector) so
	// repeat patterns skip Glushkov construction and the 512-bit encode.
	Configs *plan.Cache
	// SharedScans turns on the shared-scan coalescer (see Options).
	SharedScans bool

	// scanMu guards inflight, the shared-scan coalescer's leader table.
	scanMu   sync.Mutex
	inflight map[scanKey]*scanShare
}

// NewSystem boots the platform: programs the FPGA, maps the shared region,
// starts the HAL, creates the database, and registers the HUDF.
func NewSystem(opts Options) (*System, error) {
	dep := fpga.DefaultDeployment()
	if opts.Deployment != nil {
		dep = *opts.Deployment
	}
	dev, err := fpga.NewDevice(dep)
	if err != nil {
		return nil, err
	}
	region := shmem.NewRegion(opts.RegionBytes)
	h, err := hal.New(region, dev)
	if err != nil {
		return nil, err
	}
	model := perf.Default()
	if opts.Model != nil {
		model = *opts.Model
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.Default()
	}
	if opts.Faults != nil {
		h.SetInjector(opts.Faults)
	}
	rec := opts.Recorder
	if rec == nil {
		rec = flightrec.Default()
	}
	h.SetRecorder(rec)
	aud := opts.Auditor
	if aud == nil {
		aud = explain.Default()
	}
	aud.SetTelemetry(tel)
	aud.SetRecorder(rec)
	ob := opts.Obs
	if ob == nil {
		ob = obs.Default()
	}
	ob.SetTelemetry(tel)
	ob.SetRecorder(rec)
	s := &System{
		Region:      region,
		Device:      dev,
		HAL:         h,
		DB:          mdb.New(region),
		Model:       model,
		Tel:         tel,
		Rec:         rec,
		Audit:       aud,
		Retry:       DefaultRetryPolicy(),
		Obs:         ob,
		Configs:     plan.NewCache(128, tel, "core.config_cache"),
		SharedScans: opts.SharedScans,
		inflight:    make(map[scanKey]*scanShare),
	}
	if opts.Retry != nil {
		s.Retry = *opts.Retry
	}
	// Bind every layer to the same registry: allocator gauges, HAL/engine
	// counters, and the operator metrics of the column store.
	region.AttachTelemetry(tel)
	h.SetTelemetry(tel)
	s.DB.Tel = tel
	// The HUDF is used together with sequential_pipe (§7.1): the
	// dataflow parallelism of the default pipeline only adds overhead
	// around the offloaded operator.
	s.DB.Mode = mdb.SequentialPipe
	s.DB.RegisterUDF(UDFName, func(ctx context.Context, col *bat.Strings, pattern string) (*mdb.UDFResult, error) {
		return s.RegexpFPGA(ctx, col, pattern)
	})
	return s, nil
}

// Close shuts the system's device runtime down: backlogged jobs are
// canceled and the event-loop goroutine exits. Queries after Close fail
// with hal.ErrClosed.
func (s *System) Close() { s.HAL.Close() }

// Result is the HUDF's outcome with full accounting.
type Result struct {
	// Matches is the result BAT: per input row, 0 for no match or the
	// 1-based position of the match's last character.
	Matches *bat.Shorts
	// MatchCount is the number of matching rows.
	MatchCount int
	// Hybrid reports that hybrid execution was used and which parts ran
	// where.
	Hybrid         bool
	HWPart, SWPart string
	// Degraded reports that the FPGA path failed with a hardware fault
	// and the result was computed by the software fallback instead;
	// DegradedCause names the fault.
	Degraded      bool
	DegradedCause string
	// HW is the query's own hardware accounting, summed from the per-job
	// completion records of the device runtime — never another query's
	// traffic, even when rounds are shared.
	HW HWStats
	// Work is the software work performed (hybrid post-processing).
	Work perf.Work
	// Times per phase (simulated).
	Breakdown *sim.Counter
	// Trace is the query-lifecycle span tree: config-gen → job submit →
	// QPI transfer → engine dispatch → PU match → collect, plus the hybrid
	// post-processing stage when used.
	Trace *telemetry.Span
	// Decision is the placement decision record (EXPLAIN's view) with the
	// actual figures filled in — candidate plans, predicted cost terms,
	// per-term prediction error. Nil when the estimate itself failed.
	Decision *explain.Record
	// ConfigCached reports that the compiled config vector came from the
	// config cache: the query charged zero simulated config-gen time.
	ConfigCached bool
	// Shared marks a follower of a coalesced shared scan: the result BAT
	// was fanned out from another query's job group, and this result
	// carries no hardware traffic of its own.
	Shared bool
	// Topdown is the bottleneck attribution: the query's phase breakdown
	// and engine-cycle buckets folded into a verdict (memory-bound,
	// compute-bound, config-bound, queue-bound, software-bound).
	Topdown *topdown.Attribution
}

// Total returns the simulated response time.
func (r *Result) Total() sim.Time { return r.Breakdown.Total() }

// HWStats is a query's per-job hardware accounting (zero when the query
// never reached the device).
type HWStats struct {
	// Time is the slowest partition's admission→completion span.
	Time sim.Time
	// QueueWait is the time the query's jobs waited in the runtime's
	// backlog before their round started.
	QueueWait sim.Time
	// Bytes, Grants and Switches are the QPI traffic attributed to this
	// query's jobs alone.
	Bytes    int64
	Grants   int64
	Switches int64
	// Jobs is the engine set the query ran on: how many partitions the
	// runtime dispatched.
	Jobs int
	// LinkBusy is the link service time of this query's grants.
	LinkBusy sim.Time
	// Buckets is the engine-cycle classification summed over this query's
	// job completions: busy, stall-input, stall-switch, stall-output and
	// config (parametrization). Jobs own no idle, so Wall is their sum.
	Buckets topdown.Buckets
}

// hybridRowDispatch is the per-tuple cost of handing a pre-selected row to
// the post-processor (result-BAT probe + string fetch).
const hybridRowDispatch = 150 * sim.Nanosecond

// ErrCannotSplit reports a pattern that neither fits the device nor has a
// top-level `.*` to split at.
var ErrCannotSplit = errors.New("core: expression exceeds device capacity and has no split point; use the software operator")

// RegexpFPGA is the HUDF: it evaluates the regular expression over the
// whole column on the FPGA, following steps 2-9 of Figure 3.
func (s *System) RegexpFPGA(ctx context.Context, col *bat.Strings, pattern string) (*mdb.UDFResult, error) {
	res, err := s.Exec(ctx, col, pattern, token.Options{})
	if err != nil {
		return nil, err
	}
	bd := make(map[string]float64)
	for _, ph := range res.Breakdown.Phases() {
		bd[ph] = res.Breakdown.Get(ph).Seconds()
	}
	return &mdb.UDFResult{
		Result:    res.Matches,
		Work:      res.Work,
		HWSeconds: res.Breakdown.Get(PhaseHardware).Seconds(),
		Breakdown: bd,
		Trace:     res.Trace,
		Degraded:  res.Degraded,
		Decision:  res.Decision,
	}, nil
}

// Exec runs the hardware operator with explicit compile options (the ILIKE
// path passes FoldCase; collation costs nothing on the FPGA, §6.4).
// Cancelling ctx aborts the query: jobs still in the runtime's backlog are
// released (their status blocks freed); a round already granted completes
// on the device but the call returns the context's error.
func (s *System) Exec(ctx context.Context, col *bat.Strings, pattern string, opts token.Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The decision record rides the context down from the SQL layer (which
	// already priced the candidates); a direct Exec call builds its own.
	rec := explain.FromContext(ctx)
	if rec == nil {
		rec = s.recordForExec(col, pattern)
	}
	root := telemetry.StartSpan("regexp_fpga")
	root.SetAttr("rows", int64(col.Count()))
	s.Tel.Counter("core.queries").Inc()

	cp, cached, err := s.compilePattern(pattern, opts)
	if err != nil {
		return nil, err
	}
	lim := s.Device.Deployment.Limits
	placement := "fpga"
	if !cp.fits {
		placement = "hybrid"
	}
	if rec != nil && !rec.Offloads() {
		// The operator was invoked although the cost model preferred
		// software (explicit REGEXP_FPGA, or a caller overriding the
		// advisor): the record must describe the plan that actually runs.
		rec.ForceHardware("hardware operator invoked explicitly; cost model preferred software")
	}
	var res *Result
	var retries int
	var backoff sim.Time
	// Label the serving goroutine so /debug/pprof profiles attribute
	// samples per placement (the SQL layer adds session and query ids).
	pprof.Do(ctx, pprof.Labels("doppio.placement", placement), func(ctx context.Context) {
		var hwPat, swPat string
		if placement != "fpga" {
			split := root.StartChild("plan-split")
			var sErr error
			hwPat, swPat, sErr = SplitPattern(pattern, lim, opts)
			split.End()
			if sErr != nil {
				err = sErr
				return
			}
			s.Tel.Counter("core.hybrid_queries").Inc()
		}
		attempt := func() (*Result, error) {
			if placement == "fpga" {
				return s.execDirect(ctx, col, cp, cached, root)
			}
			return s.execHybrid(ctx, col, hwPat, swPat, opts, root)
		}
		run := func() (*Result, error) {
			r, rErr := attempt()
			// Query-level retry: a transient fault (watchdog timeout, handshake
			// loss, single-engine drop) may heal between attempts — readmission
			// probes run, wedged engines recover — so re-run the hardware attempt
			// under the per-query budget, charging the exponential backoff (plus
			// deterministic seeded jitter) as simulated PhaseRetry time. Permanent
			// faults and admission errors (ErrOverload, ErrDeadlineExceeded) skip
			// straight past this loop.
			for rErr != nil && hal.IsTransient(rErr) &&
				retries < s.Retry.MaxRetries && ctx.Err() == nil {
				d := s.Retry.Delay(retries, pattern)
				retries++
				backoff += d
				s.Tel.Counter("core.retry.attempts").Inc()
				s.Rec.Record(flightrec.Event{
					Type:   flightrec.EvRetry,
					Sim:    s.HAL.SimEpoch(),
					Engine: -1,
					Unit:   -1,
					Arg:    int64(d / sim.Nanosecond),
					Note:   rErr.Error(),
				})
				r, rErr = attempt()
			}
			if retries > 0 && rErr == nil {
				s.Tel.Counter("core.retry.recovered").Inc()
			}
			if rErr != nil && hal.IsFault(rErr) {
				// The hardware path is wedged beyond the HAL's and the query's
				// retries (the partially submitted jobs were already discarded):
				// degrade to the software operator. The flight recorder marks the
				// degradation and dumps its window — the black-box forensics of
				// what the hardware did leading up to it.
				s.Tel.Counter("core.fallback.software").Inc()
				s.Rec.Record(flightrec.Event{
					Type:   flightrec.EvDegrade,
					Sim:    s.HAL.SimEpoch(),
					Engine: -1,
					Unit:   -1,
					Note:   rErr.Error(),
				})
				s.Rec.DumpOnDegrade(rErr.Error())
				r, rErr = s.execSoftware(ctx, col, pattern, opts, root, rErr)
			}
			return r, rErr
		}
		if s.SharedScans {
			res, err = s.sharedExec(ctx, scanKey{col: col, pattern: pattern, fold: opts.FoldCase}, root, run)
		} else {
			res, err = run()
		}
	})
	if err != nil {
		s.observeQuery(ctx, col, pattern, placement, nil, err, retries, backoff)
		return nil, err
	}
	if backoff > 0 {
		res.Breakdown.Add(PhaseRetry, backoff)
	}
	if rec != nil {
		rec.Retries = retries
		rec.RetryBackoffNS = int64(backoff / sim.Nanosecond)
		rec.ConfigCached = res.ConfigCached
		rec.SharedScan = res.Shared
	}
	root.End()
	root.AddSim(res.Total())
	root.SetAttr("matches", int64(res.MatchCount))
	res.Trace = root
	s.Tel.Counter("core.matches").Add(int64(res.MatchCount))
	s.Tel.Counter("core.actual_ns").Add(int64(res.Total() / sim.Nanosecond))
	finishRecord(rec, res)
	res.Topdown = s.attributeQuery(placement, res)
	if rec != nil {
		rec.Topdown = res.Topdown
	}
	res.Decision = rec
	s.observeQuery(ctx, col, pattern, placement, res, nil, retries, backoff)
	return res, nil
}

// ExecLike offloads a LIKE/ILIKE pattern by translating it to the regex
// dialect (Q1's path in the evaluation).
func (s *System) ExecLike(ctx context.Context, col *bat.Strings, like string, foldCase bool) (*Result, error) {
	lp, err := strmatch.CompileLike(like, foldCase)
	if err != nil {
		return nil, err
	}
	return s.Exec(ctx, col, lp.ToRegex(), token.Options{FoldCase: foldCase})
}

// execDirect runs a fully offloaded query, partitioned across all engines
// (the FPGA parallelizes a single query by horizontally partitioning the
// input, §7.5): submit the partitions, dispatch them to the device runtime
// as one group, and await the per-job completion records.
func (s *System) execDirect(ctx context.Context, col *bat.Strings, cp *compiled, cached bool, parent *telemetry.Span) (*Result, error) {
	var bd sim.Counter
	bd.Add(PhaseDatabase, s.Model.DatabaseOverhead)
	parent.NewChild("bat-scan").AddSim(s.Model.DatabaseOverhead)
	bd.Add(PhaseUDF, s.Model.UDFOverhead)
	parent.NewChild("hudf-software").AddSim(s.Model.UDFOverhead)

	// Step 3: convert the expression into a configuration vector. A config
	// cache hit reuses the compiled vector: the span stays in the trace for
	// shape stability, but the simulated config-gen time is zero.
	cg := parent.StartChild("config-gen")
	vec := cp.vec
	if vec == nil {
		var err error
		vec, err = config.Encode(cp.prog, s.Device.Deployment.Limits)
		if err != nil {
			return nil, err
		}
	}
	cg.End()
	if cached {
		cg.SetAttr("cached", int64(1))
	} else {
		bd.Add(PhaseConfigGen, s.Model.ConfigGenTime)
		cg.AddSim(s.Model.ConfigGenTime)
	}
	cg.SetAttr("vector_bytes", int64(len(vec)))

	// Step 3: allocate the result BAT (in CPU-FPGA shared memory).
	result, err := bat.NewShorts(s.Region, col.Count())
	if err != nil {
		return nil, err
	}
	if err := result.SetLen(col.Count()); err != nil {
		return nil, err
	}

	// Steps 4-8: create jobs through the HAL, one partition per engine.
	sub := parent.StartChild("job-submit")
	jobs, err := s.submitPartitioned(ctx, vec, col, result)
	if err != nil {
		// Release the partitions that did submit: they must not linger in
		// the distributor's accounting (or hold status blocks) after the
		// query abandons them.
		s.HAL.Discard(jobs...)
		return nil, err
	}
	bd.Add(PhaseHAL, hal.CreateTime)
	sub.End()
	sub.AddSim(hal.CreateTime)
	sub.SetAttr("jobs", int64(len(jobs)))

	// Hand the group to the device runtime and await each partition's
	// completion record. Attribution is per-job, so everything below is
	// this query's own traffic even when a round is shared. A dispatch the
	// admission layer refuses (shed, or ETA over the context's simulated
	// budget) must release the submitted partitions like any other failed
	// submit, or their reservations leak.
	if err := s.HAL.DispatchContext(ctx, jobs...); err != nil {
		s.HAL.Discard(jobs...)
		return nil, err
	}
	var hw HWStats
	hw.Jobs = len(jobs)
	matches := 0
	var cycles int64
	for _, j := range jobs {
		c, err := j.Await(ctx)
		if err != nil {
			return nil, err
		}
		if t := c.HWTime(); t > hw.Time {
			hw.Time = t
		}
		if w := c.QueueWait(); w > hw.QueueWait {
			hw.QueueWait = w
		}
		hw.Bytes += c.Bytes
		hw.Grants += c.Grants
		hw.Switches += c.Switches
		hw.LinkBusy += c.LinkBusy
		hw.Buckets.Add(c.Buckets)
		matches += j.Stats.Matches
		cycles += int64(j.Stats.PUCycles)
	}
	if hw.QueueWait > 0 {
		bd.Add(PhaseQueue, hw.QueueWait)
	}
	bd.Add(PhaseHardware, hw.Time)

	// The hardware phase's sub-spans run as a pipeline: QPI transfer,
	// engine parametrization, and PU matching overlap in simulated time, so
	// their Sim durations are inclusive and need not sum to the hardware
	// phase.
	hwSpan := parent.NewChild("hardware")
	hwSpan.AddSim(hw.Time)
	qpi := hwSpan.NewChild("qpi-transfer")
	qpi.AddSim(hw.LinkBusy)
	qpi.SetAttr("bytes", hw.Bytes)
	qpi.SetAttr("grants", hw.Grants)
	qpi.SetAttr("switches", hw.Switches)
	disp := hwSpan.NewChild("engine-dispatch")
	disp.AddSim(hal.ParametrizeTime * sim.Time(len(jobs)))
	disp.SetAttr("jobs", int64(len(jobs)))
	pus := s.Device.Deployment.Engines * s.Device.Deployment.PUsPerEngine
	pm := hwSpan.NewChild("pu-match")
	pm.SetAttr("cycles", cycles)
	if pus > 0 {
		// Average per-PU busy time: PUs consume one input byte per
		// 400 MHz cycle, striped across every deployed PU.
		pm.AddSim(sim.PUClock.Cycles(cycles) / sim.Time(pus))
		if hw.Time > 0 {
			s.Tel.Gauge("pu.utilization_pct").Set(
				int64(sim.PUClock.Cycles(cycles)) * 100 / int64(hw.Time*sim.Time(pus)))
			// Basis-point twin for the topdown surfaces: PU occupancy is
			// busy PU-time over the hardware window across every deployed
			// PU, and sub-percent occupancies must not truncate to zero.
			s.Tel.Gauge("topdown.pu_occupancy_bp").Set(
				int64(sim.PUClock.Cycles(cycles)) * 10000 / int64(hw.Time*sim.Time(pus)))
		}
	}
	coll := hwSpan.NewChild("collect")
	coll.AddSim(sim.FromSeconds(float64(col.Count()*2) / 6.5e9))
	coll.SetAttr("result_bytes", int64(col.Count()*2))

	return &Result{
		Matches:      result,
		MatchCount:   matches,
		HW:           hw,
		Breakdown:    &bd,
		ConfigCached: cached,
	}, nil
}

// submitPartitioned splits the column row-wise across the engines and
// submits one job per partition. On error the successfully submitted
// partitions are returned alongside it so the caller can discard them.
func (s *System) submitPartitioned(ctx context.Context, vec []byte, col *bat.Strings, result *bat.Shorts) ([]*hal.Job, error) {
	n := col.Count()
	engines := s.HAL.Engines()
	if n < engines*64 {
		engines = 1
	}
	offsets := col.OffsetBytes()
	heap := col.HeapBytes()
	resBytes := result.Bytes()
	chunk := (n + engines - 1) / engines
	var jobs []*hal.Job
	for e := 0; e < engines; e++ {
		lo, hi := e*chunk, (e+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		p := engine.JobParams{
			Config:      vec,
			Offsets:     offsets[lo*bat.OffsetWidth : hi*bat.OffsetWidth],
			OffsetWidth: bat.OffsetWidth,
			Heap:        heap,
			Count:       hi - lo,
			Result:      resBytes[lo*2 : hi*2],
		}
		j, err := s.HAL.SubmitToContext(ctx, e, p)
		if err != nil {
			return jobs, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// execHybrid runs the prefix on the FPGA and post-processes matching rows
// in software (§7.8).
func (s *System) execHybrid(ctx context.Context, col *bat.Strings, hwPat, swPat string, opts token.Options, parent *telemetry.Span) (*Result, error) {
	cp, cached, err := s.compilePattern(hwPat, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.execDirect(ctx, col, cp, cached, parent)
	if err != nil {
		return nil, err
	}
	post := parent.StartChild("cpu-post-process")
	// A plain-literal remainder (QH's "delivery") is post-processed with
	// a Boyer-Moore substring search — what production regex engines do
	// for literal tails; general remainders use the backtracker.
	var matchTail func(tail []byte) (int, perf.Work)
	if lit, ok := literalPattern(swPat); ok && !opts.FoldCase {
		bm := strmatch.NewBoyerMoore([]byte(lit), false)
		matchTail = func(tail []byte) (int, perf.Work) {
			before := bm.Comparisons()
			at := bm.Find(tail, 0)
			w := perf.Work{Comparisons: bm.Comparisons() - before}
			if at < 0 {
				return 0, w
			}
			return at + len(lit), w
		}
	} else {
		bt, err := softregex.NewBacktracker(swPat, opts.FoldCase)
		if err != nil {
			return nil, err
		}
		matchTail = func(tail []byte) (int, perf.Work) {
			end, steps := bt.Match(tail)
			return end, perf.Work{Steps: steps}
		}
	}
	// Post-process only the rows the FPGA pre-selected: the remainder
	// must match somewhere after the prefix match.
	matches := 0
	var work perf.Work
	for i := 0; i < col.Count(); i++ {
		pos := res.Matches.Get(i)
		if pos == 0 {
			continue
		}
		row := col.Get(i)
		tail := row[min(int(pos), len(row)):]
		end, w := matchTail(tail)
		work.RegexRows++
		work.Add(w)
		work.Bytes += uint64(len(tail))
		if end == 0 {
			res.Matches.Set(i, 0)
			continue
		}
		res.Matches.Set(i, satPos(int(pos)+end))
		matches++
	}
	// The post-processing happens on the software side of the UDF, one
	// thread (§7.8). Literal tails cost a row dispatch plus comparisons;
	// regex tails pay the full PCRE-style invocation.
	swCost := sim.Time(work.RegexRows)*hybridRowDispatch +
		sim.Time(work.Comparisons)*s.Model.CmpCost +
		sim.Time(work.Steps)*s.Model.StepCost
	if work.Steps > 0 {
		swCost += sim.Time(work.RegexRows) * s.Model.RegexRowOverhead
	}
	res.Breakdown.Add(PhaseSoftware, swCost)
	post.End()
	post.AddSim(swCost)
	post.SetAttr("rows", int64(work.RegexRows))
	post.SetAttr("matches", int64(matches))
	res.MatchCount = matches
	res.Hybrid = true
	res.HWPart, res.SWPart = hwPat, swPat
	res.Work = work
	return res, nil
}

func satPos(p int) uint16 {
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

// SplitPattern splits a too-large expression at a top-level `.*` (the
// "suitable point" of §7.8) into the longest prefix that fits the device
// and the software remainder.
func SplitPattern(pattern string, lim config.Limits, opts token.Options) (hwPart, swPart string, err error) {
	ast, err := regexParse(pattern)
	if err != nil {
		return "", "", err
	}
	children := topLevelChildren(ast)
	// Candidate split points: indexes of top-level `.*` children.
	var gaps []int
	for i, c := range children {
		if isDotStar(c) {
			gaps = append(gaps, i)
		}
	}
	// Prefer the longest fitting prefix.
	for k := len(gaps) - 1; k >= 0; k-- {
		g := gaps[k]
		if g == 0 || g == len(children)-1 {
			continue
		}
		hw := renderConcat(children[:g])
		sw := renderConcat(children[g+1:])
		prog, cErr := token.CompilePattern(hw, opts)
		if cErr != nil {
			continue
		}
		if config.Fits(prog, lim) == nil {
			return hw, sw, nil
		}
	}
	return "", "", ErrCannotSplit
}
