package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"doppiodb/internal/hal"
	"doppiodb/internal/obs"
	"doppiodb/internal/sim"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// newObservedSystem boots a system with a private observer so the test
// reads its own wide events, not the process default's.
func newObservedSystem(t *testing.T) (*System, *obs.Observer) {
	t.Helper()
	o := obs.New(obs.Options{Log: obs.LogOptions{SampleEvery: 1}})
	s, err := NewSystem(Options{RegionBytes: 1 << 30, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, o
}

// A completed query must land in the wide-event log with its placement,
// result sizes, phase breakdown, and simulated timings filled in.
func TestObserveCompletedQuery(t *testing.T) {
	s, o := newObservedSystem(t)
	tbl, hits := loadTable(t, s, 5_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")
	ctx := obs.WithQueryInfo(context.Background(), "s1", "7")
	res, err := s.Exec(ctx, col.Strs, workload.Q1Regex, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := o.Log.Window(0)
	if len(evs) != 1 {
		t.Fatalf("events: got %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Outcome != obs.OutcomeCompleted || ev.Placement != "fpga" {
		t.Fatalf("outcome/placement: %s/%s", ev.Outcome, ev.Placement)
	}
	if ev.Session != "s1" || ev.Query != "7" {
		t.Fatalf("session identity not threaded: %q#%q", ev.Session, ev.Query)
	}
	if ev.Pattern != workload.Q1Regex || ev.Rows != 5_000 || ev.Matches != hits {
		t.Fatalf("pattern/rows/matches: %q %d %d, want %q 5000 %d",
			ev.Pattern, ev.Rows, ev.Matches, workload.Q1Regex, hits)
	}
	if ev.Bytes <= 0 || ev.Jobs < 1 {
		t.Fatalf("bytes/jobs: %d/%d", ev.Bytes, ev.Jobs)
	}
	if ev.TotalNS != int64(res.Total()/sim.Nanosecond) {
		t.Fatalf("total: %d, want %d", ev.TotalNS, int64(res.Total()/sim.Nanosecond))
	}
	if len(ev.Phases) == 0 || ev.Phases[PhaseHardware] <= 0 {
		t.Fatalf("phase breakdown missing: %+v", ev.Phases)
	}
	if ev.SimNS <= 0 {
		t.Fatalf("no simulated completion timestamp: %+v", ev)
	}
	// A clean single query must leave the SLO engine silent.
	if o.Alerting() {
		t.Fatal("clean query latched the burn alert")
	}
	rep := o.SLO.Report()
	if rep.Errors != 0 || rep.Submitted != 1 {
		t.Fatalf("SLO totals: %+v", rep)
	}
}

// Shed, deadline-refused, and canceled queries must be classified into
// their own outcomes, and only the first two count as SLI errors.
func TestObserveErrorOutcomes(t *testing.T) {
	s, o := newObservedSystem(t)
	tbl, _ := loadTable(t, s, 5_000, workload.HitQ1, 0.2)
	col, _ := tbl.Column("address_string")

	// Admission cap of one byte: the dispatch sheds immediately.
	s.HAL.SetAdmission(hal.AdmissionLimits{MaxBytes: 1, Policy: hal.PolicyShed})
	if _, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{}); err == nil {
		t.Fatal("over-cap exec did not error")
	}
	s.HAL.SetAdmission(hal.AdmissionLimits{})

	// A one-nanosecond budget: the ETA check refuses before dispatch.
	ctx := hal.WithBudget(context.Background(), sim.Nanosecond)
	if _, err := s.Exec(ctx, col.Strs, workload.Q1Regex, token.Options{}); err == nil {
		t.Fatal("impossible budget did not error")
	}

	// Cancel while queued behind a paused device.
	s.HAL.Pause()
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Exec(cctx, col.Strs, workload.Q1Regex, token.Options{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueuedBytes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	s.HAL.Resume()

	want := map[obs.Outcome]int{}
	for _, ev := range o.Log.Window(0) {
		want[ev.Outcome]++
		if ev.Outcome != obs.OutcomeCompleted && ev.Cause == "" {
			t.Fatalf("error event without a cause: %+v", ev)
		}
	}
	if want[obs.OutcomeShed] != 1 || want[obs.OutcomeDeadline] != 1 || want[obs.OutcomeCanceled] != 1 {
		t.Fatalf("outcome split: %+v, want one shed, one deadline, one canceled", want)
	}
	// Canceled is the caller's doing, not the system's error budget.
	if rep := o.SLO.Report(); rep.Errors != 2 {
		t.Fatalf("SLI errors: got %d, want 2 (shed + deadline)", rep.Errors)
	}
}

// Two fresh systems running the identical workload export byte-identical
// JSONL: the wide events carry no wall-clock contamination.
func TestObserveJSONLBitIdentical(t *testing.T) {
	run := func() string {
		o := obs.New(obs.Options{Log: obs.LogOptions{SampleEvery: 1}})
		s, err := NewSystem(Options{RegionBytes: 1 << 30, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rows, _ := workload.NewGenerator(7, 64).Table(3_000, workload.HitQ1, 0.2)
		tbl, err := s.DB.LoadAddressTable("address_table", rows)
		if err != nil {
			t.Fatal(err)
		}
		col, _ := tbl.Column("address_string")
		for i := 0; i < 5; i++ {
			if _, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := o.Log.WriteJSONL(&buf, 0); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no events exported")
	}
	if a != b {
		t.Fatalf("wide-event JSONL differs across identical runs:\n%s\nvs\n%s", a, b)
	}
}
