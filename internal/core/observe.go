// Wide-event emission: Exec's single funnel means every query — direct
// library calls, the SQL layer, the HUDF — ends exactly once in
// observeQuery, which renders the run into the canonical obs.Event: who
// asked (session/query ids off the context), what the planner chose, how
// each simulated phase priced out, and how it ended under the overload
// taxonomy (completed/degraded/shed/deadline/canceled/failed).
package core

import (
	"context"
	"errors"

	"doppiodb/internal/bat"
	"doppiodb/internal/explain"
	"doppiodb/internal/hal"
	"doppiodb/internal/obs"
	"doppiodb/internal/sim"
)

// outcomeForError maps the overload/fault taxonomy (PR 7's sentinels) onto
// the query log's outcome classes.
func outcomeForError(err error) obs.Outcome {
	switch {
	case errors.Is(err, hal.ErrOverload):
		return obs.OutcomeShed
	// hal.ErrDeadlineExceeded matches context.DeadlineExceeded, so one
	// check covers both the simulated budget and a wall deadline.
	case errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeDeadline
	case errors.Is(err, context.Canceled):
		return obs.OutcomeCanceled
	default:
		return obs.OutcomeFailed
	}
}

// observeQuery emits the wide event for one finished Exec call. Exactly
// one of res/err is set. All timestamps and durations are simulated, so
// identical runs emit identical events.
func (s *System) observeQuery(ctx context.Context, col *bat.Strings, pattern, placement string, res *Result, err error, retries int, backoff sim.Time) {
	session, query := obs.QueryInfoFrom(ctx)
	ev := obs.Event{
		SimNS:     ns(s.HAL.SimEpoch()),
		Session:   session,
		Query:     query,
		Pattern:   pattern,
		Placement: placement,
		Rows:      col.Count(),
		Retries:   retries,
		BackoffNS: ns(backoff),
		BudgetNS:  ns(hal.BudgetFrom(ctx)),
	}
	if err != nil {
		ev.Outcome = outcomeForError(err)
		ev.Cause = err.Error()
		// A shed or refused query never ran; the only simulated time it
		// consumed is the retry backoff it may have accrued first.
		ev.TotalNS = ns(backoff)
		s.Obs.ObserveQuery(ev)
		return
	}
	ev.Outcome = obs.OutcomeCompleted
	if res.Degraded {
		ev.Outcome = obs.OutcomeDegraded
		ev.Cause = res.DegradedCause
	}
	ev.Matches = res.MatchCount
	ev.Bytes = res.HW.Bytes
	ev.Jobs = res.HW.Jobs
	ev.Hybrid = res.Hybrid
	ev.Shared = res.Shared
	ev.PlanCached = res.ConfigCached
	if rec := explain.FromContext(ctx); rec != nil && rec.PlanCacheHit {
		ev.PlanCached = true
	}
	ev.QueueNS = ns(res.HW.QueueWait)
	ev.TotalNS = ns(res.Total())
	if bd := res.Breakdown; bd != nil {
		phases := make(map[string]int64, 8)
		for _, ph := range bd.Phases() {
			phases[ph] = ns(bd.Get(ph))
		}
		ev.Phases = phases
	}
	ev.Topdown = res.Topdown
	s.Obs.ObserveQuery(ev)
}
