package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"doppiodb/internal/fpga"
	"doppiodb/internal/shmem"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// Failure injection: the system must degrade with errors, not corruption,
// when platform resources run out or components are misconfigured.

func TestSystemBootFailsOnBadDeployment(t *testing.T) {
	dep := fpga.DefaultDeployment()
	dep.Engines = 5 // fails routing (Fig. 14a)
	if _, err := NewSystem(Options{Deployment: &dep}); err == nil {
		t.Fatal("5x16 system booted")
	}
	dep = fpga.DefaultDeployment()
	dep.PUsPerEngine = 0
	if _, err := NewSystem(Options{Deployment: &dep}); err == nil {
		t.Fatal("0-PU system booted")
	}
}

func TestExecFailsCleanlyWhenRegionExhausted(t *testing.T) {
	// A region barely larger than the HAL's own structures: loading the
	// table or allocating the result BAT must fail with ErrOutOfMemory,
	// and the system must stay usable for smaller requests.
	s, err := NewSystem(Options{RegionBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(1, 64).Table(500_000, workload.HitQ1, 0.2)
	_, err = s.DB.LoadAddressTable("big", rows)
	if err == nil {
		t.Fatal("loading 500k rows into a 16MB region succeeded")
	}
	if !errors.Is(err, shmem.ErrOutOfMemory) && !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("unexpected error: %v", err)
	}
	// A small table still works after the failure.
	small, _ := workload.NewGenerator(2, 64).Table(50, workload.HitQ1, 0.3)
	tbl, err := s.DB.LoadAddressTable("small", small)
	if err != nil {
		t.Fatalf("small table after OOM: %v", err)
	}
	col, _ := tbl.Column("address_string")
	if _, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{}); err != nil {
		t.Fatalf("exec after OOM: %v", err)
	}
}

func TestExecRejectsBadPatterns(t *testing.T) {
	s := newSystem(t)
	rows, _ := workload.NewGenerator(3, 64).Table(10, workload.HitNone, 0)
	tbl, _ := s.DB.LoadAddressTable("t", rows)
	col, _ := tbl.Column("address_string")
	for _, pat := range []string{``, `(`, `a**`, `a*`, `x|`} {
		if _, err := s.Exec(context.Background(), col.Strs, pat, token.Options{}); err == nil {
			t.Errorf("pattern %q accepted", pat)
		}
	}
}

func TestUDFErrorsPropagateThroughDB(t *testing.T) {
	s := newSystem(t)
	rows, _ := workload.NewGenerator(4, 64).Table(10, workload.HitNone, 0)
	tbl, _ := s.DB.LoadAddressTable("t", rows)
	if _, err := s.DB.CallUDF(context.Background(), UDFName, tbl, "address_string", `(`); err == nil {
		t.Error("bad pattern through UDF accepted")
	}
	if _, err := s.DB.CallUDF(context.Background(), UDFName, tbl, "id", workload.Q1Regex); err == nil {
		t.Error("UDF over int column accepted")
	}
}

func TestHybridFoldCaseUsesBacktracker(t *testing.T) {
	// A folded literal tail cannot use the case-sensitive Boyer-Moore
	// shortcut; the backtracker path must produce the same results.
	dep := fpga.DefaultDeployment()
	dep.Limits.MaxChars = 24
	dep.Limits.MaxStates = 8
	s, err := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(5, 80).Table(3_000, workload.HitQH, 0.4)
	tbl, _ := s.DB.LoadAddressTable("t", rows)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, strings.ToUpper(workload.QH[:len(workload.QH)-len("delivery")])+"DELIVERY", token.Options{FoldCase: true})
	if err != nil {
		// The uppercased pattern may not parse identically; fall back
		// to the plain pattern with folding.
		res, err = s.Exec(context.Background(), col.Strs, workload.QH, token.Options{FoldCase: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !res.Hybrid {
		t.Fatal("expected hybrid")
	}
	if res.MatchCount != hits {
		t.Errorf("folded hybrid matched %d, want %d", res.MatchCount, hits)
	}
	if res.Work.Steps == 0 {
		t.Error("folded tail should run through the backtracker (steps>0)")
	}
}

func TestLiteralPattern(t *testing.T) {
	cases := []struct {
		pat  string
		want string
		ok   bool
	}{
		{`delivery`, "delivery", true},
		{`a\.b`, "a.b", true},
		{`ab+`, "", false},
		{`(a|b)`, "", false},
		{`a.c`, "", false},
		{`[ab]`, "", false},
		{`(`, "", false},
	}
	for _, c := range cases {
		got, ok := literalPattern(c.pat)
		if ok != c.ok || got != c.want {
			t.Errorf("literalPattern(%q) = %q,%v want %q,%v", c.pat, got, ok, c.want, c.ok)
		}
	}
}
