package core

import (
	"context"
	"testing"

	"doppiodb/internal/faults"
	"doppiodb/internal/fpga"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// newSingleEngineSystem boots a one-engine system so transient faults have
// no healthy engine to fail over to — the query-level retry is the only
// thing standing between a wedge and the software fallback.
func newSingleEngineSystem(t *testing.T, in *faults.Injector) *System {
	t.Helper()
	dep := fpga.DefaultDeployment()
	dep.Engines = 1
	s, err := NewSystem(Options{
		Deployment:  &dep,
		RegionBytes: 1 << 30,
		Telemetry:   telemetry.NewRegistry(),
		Faults:      in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRetryRecoversTransientDrop wedges the sole engine after one job with
// recovery after two readmission probes: the first hardware attempt fails
// transiently, the query-level retry re-attempts, the readmission probe
// succeeds, and the query completes on hardware — not degraded — with the
// retry visible in the decision record and charged to the breakdown.
func TestRetryRecoversTransientDrop(t *testing.T) {
	in := faults.New(faults.Options{DropEnabled: true, DropEngine: 0, DropAfter: 1, DropRecover: 2})
	s := newSingleEngineSystem(t, in)
	tbl, hits := loadTable(t, s, 5_000, workload.HitQ2, 0.2)
	col, _ := tbl.Column("address_string")

	// Query 1 rides the engine's one-job grace and succeeds.
	if _, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{}); err != nil {
		t.Fatalf("warm query: %v", err)
	}
	// Query 2 hits the wedged engine: the HAL's submit retries exhaust,
	// the query-level retry re-attempts, and the recovery probe readmits.
	res, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
	if err != nil {
		t.Fatalf("retried query: %v", err)
	}
	if res.Degraded {
		t.Fatalf("query degraded despite recoverable fault: %s", res.DegradedCause)
	}
	if res.MatchCount != hits {
		t.Errorf("matched %d, want %d", res.MatchCount, hits)
	}
	if got := s.Tel.Counter("core.retry.recovered").Value(); got != 1 {
		t.Errorf("core.retry.recovered = %d, want 1", got)
	}
	attempts := s.Tel.Counter("core.retry.attempts").Value()
	if attempts < 1 || attempts > int64(s.Retry.MaxRetries) {
		t.Errorf("core.retry.attempts = %d, want 1..%d", attempts, s.Retry.MaxRetries)
	}
	if res.Decision == nil || int64(res.Decision.Retries) != attempts {
		t.Errorf("decision retries = %+v, want %d", res.Decision, attempts)
	}
	if res.Decision.RetryBackoffNS <= 0 {
		t.Error("decision records no retry backoff")
	}
	if res.Breakdown.Get(PhaseRetry) <= 0 {
		t.Error("retry backoff not charged to the breakdown")
	}
	if got := s.Tel.Counter("core.fallback.software").Value(); got != 0 {
		t.Errorf("software fallback fired %d times on a recovered query", got)
	}
}

// TestRetryThenDegradeMatchesOracle wedges every done bit permanently: the
// retry budget burns down (exactly MaxRetries attempts), the query degrades
// to software, and the degraded result still matches the oracle row for
// row with the retries on the record.
func TestRetryThenDegradeMatchesOracle(t *testing.T) {
	in := faults.New(faults.Options{Seed: 3, StuckDone: 1})
	s := newFaultySystem(t, in)
	tbl, hits := loadTable(t, s, 5_000, workload.HitQ2, 0.2)
	col, _ := tbl.Column("address_string")

	res, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
	if err != nil {
		t.Fatalf("Exec did not degrade: %v", err)
	}
	if !res.Degraded {
		t.Fatal("query not degraded under a permanent wedge")
	}
	if res.MatchCount != hits {
		t.Errorf("degraded matched %d, want %d", res.MatchCount, hits)
	}
	prog, _ := token.CompilePattern(workload.Q2, token.Options{})
	for i := 0; i < col.Strs.Count(); i++ {
		if got, want := res.Matches.Get(i), uint16(prog.Match(col.Strs.Get(i))); got != want {
			t.Fatalf("row %d: degraded=%d oracle=%d", i, got, want)
		}
	}
	if got := s.Tel.Counter("core.retry.attempts").Value(); got != int64(s.Retry.MaxRetries) {
		t.Errorf("core.retry.attempts = %d, want the full budget %d", got, s.Retry.MaxRetries)
	}
	if got := s.Tel.Counter("core.fallback.software").Value(); got != 1 {
		t.Errorf("core.fallback.software = %d, want 1", got)
	}
	if res.Decision == nil || res.Decision.Retries != s.Retry.MaxRetries {
		t.Errorf("decision retries = %+v, want %d", res.Decision, s.Retry.MaxRetries)
	}
	if res.Breakdown.Get(PhaseRetry) <= 0 {
		t.Error("exhausted retries charged no backoff")
	}
}

// TestRetryDelayDeterministicJitter pins the Delay function: exponential
// base, bounded jitter, and a pure function of (seed, key, attempt).
func TestRetryDelayDeterministicJitter(t *testing.T) {
	p := DefaultRetryPolicy()
	for attempt := 0; attempt < 3; attempt++ {
		base := p.Backoff << uint(attempt)
		d1 := p.Delay(attempt, "Strasse")
		d2 := p.Delay(attempt, "Strasse")
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		if d1 < base || d1 > base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d1, base, base+base/2)
		}
	}
	if p.Delay(0, "Strasse") == p.Delay(0, "Gasse") {
		t.Error("jitter ignores the query key")
	}
	if (RetryPolicy{}).Delay(0, "x") != 0 {
		t.Error("zero policy must not delay")
	}
}

// TestCleanRunUnaffectedByRetryLayer anchors determinism: on a healthy
// system the retry machinery must be invisible — no counters, no PhaseRetry
// in the breakdown, no retries on the record, and two identical runs give
// bit-identical simulated totals.
func TestCleanRunUnaffectedByRetryLayer(t *testing.T) {
	run := func() (*Result, *System) {
		s, err := NewSystem(Options{
			RegionBytes: 1 << 30,
			Telemetry:   telemetry.NewRegistry(),
			Faults:      faults.New(faults.Options{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		tbl, _ := loadTable(t, s, 5_000, workload.HitQ2, 0.2)
		col, _ := tbl.Column("address_string")
		res, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res, s
	}
	r1, s1 := run()
	r2, s2 := run()
	defer s1.Close()
	defer s2.Close()
	for _, s := range []*System{s1, s2} {
		if got := s.Tel.Counter("core.retry.attempts").Value(); got != 0 {
			t.Errorf("clean run recorded %d retry attempts", got)
		}
	}
	if d := r1.Breakdown.Get(PhaseRetry); d != sim.Time(0) {
		t.Errorf("clean run charged %v of retry backoff", d)
	}
	if r1.Decision != nil && r1.Decision.Retries != 0 {
		t.Errorf("clean run recorded retries: %d", r1.Decision.Retries)
	}
	if r1.Total() != r2.Total() {
		t.Errorf("clean runs not bit-identical: %v vs %v", r1.Total(), r2.Total())
	}
}
