package core

import (
	"context"

	"doppiodb/internal/bat"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// scanKey identifies a coalescable scan: same BAT, same pattern, same
// collation. Concurrent queries with equal keys ride one HAL job group.
type scanKey struct {
	col     *bat.Strings
	pattern string
	fold    bool
}

// scanShare is one in-flight leader scan that followers wait on.
type scanShare struct {
	done chan struct{}
	res  *Result
	err  error
}

// sharedExec is the shared-scan coalescer. The first query to arrive for a
// key becomes the leader and runs the hardware scan; queries that arrive
// while it is in flight become followers: they wait on the leader's
// completion and fan its result BAT back out as their own, without
// dispatching a job group. Attribution stays per-query — a follower's
// result carries zero hardware traffic (the bytes crossed QPI once, for
// the leader) and is marked Shared so downstream stats don't bleed.
//
// If the leader fails, its followers retry from the top: one of them
// becomes the new leader rather than inheriting an error that may have
// been the leader's alone (its cancellation, its deadline).
func (s *System) sharedExec(ctx context.Context, key scanKey, parent *telemetry.Span, run func() (*Result, error)) (*Result, error) {
	for {
		s.scanMu.Lock()
		if sh, ok := s.inflight[key]; ok {
			s.scanMu.Unlock()
			wait := parent.StartChild("shared-scan-await")
			select {
			case <-sh.done:
			case <-ctx.Done():
				wait.End()
				return nil, ctx.Err()
			}
			wait.End()
			if sh.err != nil {
				continue
			}
			s.Tel.Counter("core.sharedscan.followers").Inc()
			return followerResult(sh.res), nil
		}
		sh := &scanShare{done: make(chan struct{})}
		s.inflight[key] = sh
		s.scanMu.Unlock()
		s.Tel.Counter("core.sharedscan.leaders").Inc()
		res, err := run()
		sh.res, sh.err = res, err
		s.scanMu.Lock()
		delete(s.inflight, key)
		s.scanMu.Unlock()
		close(sh.done)
		return res, err
	}
}

// followerResult derives a follower's Result from the leader's. The result
// BAT is shared (it is read-only downstream); the phase breakdown is
// cloned so the follower reports the same simulated response time; the
// hardware traffic is zeroed except the timing figures, because the bytes,
// grants and jobs belong to the leader's accounting alone.
func followerResult(leader *Result) *Result {
	var bd sim.Counter
	if leader.Breakdown != nil {
		for _, ph := range leader.Breakdown.Phases() {
			bd.Add(ph, leader.Breakdown.Get(ph))
		}
	}
	return &Result{
		Matches:       leader.Matches,
		MatchCount:    leader.MatchCount,
		Hybrid:        leader.Hybrid,
		HWPart:        leader.HWPart,
		SWPart:        leader.SWPart,
		Degraded:      leader.Degraded,
		DegradedCause: leader.DegradedCause,
		HW: HWStats{
			Time:      leader.HW.Time,
			QueueWait: leader.HW.QueueWait,
		},
		Breakdown:    &bd,
		Shared:       true,
		ConfigCached: leader.ConfigCached,
	}
}
