package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// newSharedSystem builds a coalescing system with its own telemetry
// registry, so the leader/follower ledger assertions see absolute counts.
func newSharedSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Options{
		RegionBytes: 1 << 30,
		SharedScans: true,
		Telemetry:   telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSharedExecCoalesces pins the coalescer's contract deterministically:
// the leader registers its key before running, so any query arriving while
// the leader is in flight is guaranteed to become a follower. The leader's
// run closure blocks on a channel until all followers have queued up.
func TestSharedExecCoalesces(t *testing.T) {
	s := newSharedSystem(t)
	key := scanKey{pattern: "p"}
	started := make(chan struct{})
	release := make(chan struct{})
	leaderRes := &Result{MatchCount: 7, HW: HWStats{Bytes: 4096, Grants: 3, Jobs: 4}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := s.sharedExec(context.Background(), key, telemetry.StartSpan("q"),
			func() (*Result, error) {
				close(started) // key is registered before run() is called
				<-release
				return leaderRes, nil
			})
		if err != nil || res != leaderRes {
			t.Errorf("leader: res=%v err=%v", res, err)
		}
	}()
	<-started

	const followers = 3
	results := make([]*Result, followers)
	spans := make([]*telemetry.Span, followers)
	for i := 0; i < followers; i++ {
		spans[i] = telemetry.StartSpan("q")
	}
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.sharedExec(context.Background(), key, spans[i],
				func() (*Result, error) {
					t.Error("follower ran its own scan")
					return nil, nil
				})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	// A follower opens its shared-scan-await span only after it has found
	// the in-flight leader, so once every span shows that child, all three
	// hold the leader's done channel — releasing the leader cannot race
	// them into becoming leaders themselves.
	for i := 0; i < followers; i++ {
		for spans[i].Find("shared-scan-await") == nil {
			runtime.Gosched()
		}
	}
	close(release)
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatalf("follower %d got no result", i)
		}
		if !res.Shared {
			t.Errorf("follower %d not marked shared", i)
		}
		if res.MatchCount != leaderRes.MatchCount {
			t.Errorf("follower %d count %d != leader %d", i, res.MatchCount, leaderRes.MatchCount)
		}
		// The QPI bytes crossed once, for the leader: follower attribution
		// stays zero so fleet-wide traffic sums stay truthful.
		if res.HW.Bytes != 0 || res.HW.Grants != 0 || res.HW.Jobs != 0 {
			t.Errorf("follower %d carries hardware traffic: %+v", i, res.HW)
		}
	}
	snap := s.Tel.Snapshot()
	if snap.Counter("core.sharedscan.leaders") != 1 ||
		snap.Counter("core.sharedscan.followers") != int64(followers) {
		t.Errorf("ledger: leaders=%d followers=%d, want 1/%d",
			snap.Counter("core.sharedscan.leaders"),
			snap.Counter("core.sharedscan.followers"), followers)
	}
}

// TestSharedExecFollowerRetriesOnLeaderError: a leader's failure may be its
// own (cancellation, deadline), so followers must not inherit it — one of
// them retries as the new leader.
func TestSharedExecFollowerRetriesOnLeaderError(t *testing.T) {
	s := newSharedSystem(t)
	key := scanKey{pattern: "p"}
	started := make(chan struct{})
	release := make(chan struct{})
	bang := errors.New("leader-local failure")
	good := &Result{MatchCount: 3}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := s.sharedExec(context.Background(), key, telemetry.StartSpan("q"),
			func() (*Result, error) {
				close(started)
				<-release
				return nil, bang
			})
		if !errors.Is(err, bang) || res != nil {
			t.Errorf("leader: res=%v err=%v", res, err)
		}
	}()
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := s.sharedExec(context.Background(), key, telemetry.StartSpan("q"),
			func() (*Result, error) { return good, nil })
		if err != nil || res != good {
			t.Errorf("retrying follower: res=%v err=%v", res, err)
		}
		if res != nil && res.Shared {
			t.Error("new leader's result wrongly marked shared")
		}
	}()
	close(release)
	wg.Wait()
	<-done

	snap := s.Tel.Snapshot()
	if snap.Counter("core.sharedscan.leaders") != 2 || snap.Counter("core.sharedscan.followers") != 0 {
		t.Errorf("ledger: leaders=%d followers=%d, want 2/0",
			snap.Counter("core.sharedscan.leaders"),
			snap.Counter("core.sharedscan.followers"))
	}
}

// TestSharedScanEndToEnd drives N barrier-started identical queries through
// the full Exec path and checks the dispatch ledger: every query is either
// a leader or a follower, the dispatched job-group delta equals the leader
// count, and every result reports the same match count.
func TestSharedScanEndToEnd(t *testing.T) {
	s := newSharedSystem(t)
	rows, hits := workload.NewGenerator(33, 64).Table(20_000, workload.HitQ2, 0.2)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	groupsBefore := s.HAL.DispatchedGroups()
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{})
		}(i)
	}
	close(start)
	wg.Wait()

	shared := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i].MatchCount != hits {
			t.Errorf("query %d count %d, want %d", i, results[i].MatchCount, hits)
		}
		if results[i].Shared {
			shared++
		}
	}
	snap := s.Tel.Snapshot()
	leaders := snap.Counter("core.sharedscan.leaders")
	followers := snap.Counter("core.sharedscan.followers")
	if leaders+followers != n {
		t.Errorf("ledger does not balance: leaders=%d followers=%d queries=%d",
			leaders, followers, n)
	}
	if int64(shared) != followers {
		t.Errorf("shared results %d != followers counter %d", shared, followers)
	}
	groups := s.HAL.DispatchedGroups() - groupsBefore
	if groups != leaders {
		t.Errorf("dispatched groups %d != leaders %d", groups, leaders)
	}
	// Disabled coalescing (the default) must dispatch one group per query:
	// the same barrier on a plain system shows the contrast the experiment
	// gate relies on.
	s2 := newSystem(t)
	tbl2, err := s2.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	col2, err := tbl2.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}
	before2 := s2.HAL.DispatchedGroups()
	var wg2 sync.WaitGroup
	start2 := make(chan struct{})
	for i := 0; i < n; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			<-start2
			if _, err := s2.Exec(context.Background(), col2.Strs, workload.Q2, token.Options{}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start2)
	wg2.Wait()
	if got := s2.HAL.DispatchedGroups() - before2; got != n {
		t.Errorf("uncoalesced system dispatched %d groups for %d queries", got, n)
	}
}
