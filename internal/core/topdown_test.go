package core

import (
	"context"
	"testing"

	"doppiodb/internal/fpga"
	"doppiodb/internal/token"
	"doppiodb/internal/topdown"
	"doppiodb/internal/workload"
)

// topdownSystem boots a fresh system with the given engine count, loads a
// QH-hit address table and runs the paper's hybrid query once, returning
// the system (for reruns) and the result.
func topdownSystem(t *testing.T, engines, rows int) (*System, *Result) {
	t.Helper()
	dep := fpga.DefaultDeployment()
	dep.Engines = engines
	s, err := NewSystem(Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	data, _ := workload.NewGenerator(7, 64).Table(rows, workload.HitQH, 0.02)
	tbl, err := s.DB.LoadAddressTable("address_table", data)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func rerun(t *testing.T, s *System) *Result {
	t.Helper()
	tbl, err := s.DB.Table("address_table")
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The golden verdicts of §7.3 read through the analyzer: a lone engine
// cannot saturate QPI, so the hybrid query is compute-bound; four engines
// contending for the link flip the same query memory-bound.
func TestTopdownGoldenVerdicts(t *testing.T) {
	_, one := topdownSystem(t, 1, 30_000)
	if one.Topdown == nil {
		t.Fatal("no attribution on hardware query")
	}
	if one.Topdown.Verdict != topdown.ComputeBound {
		t.Errorf("1 engine: verdict %q, want %q (%+v)", one.Topdown.Verdict, topdown.ComputeBound, one.Topdown)
	}
	if !one.Topdown.Buckets.Conserved() {
		t.Errorf("1 engine: query buckets not conserved: %+v", one.Topdown.Buckets)
	}

	_, four := topdownSystem(t, 4, 30_000)
	if four.Topdown == nil {
		t.Fatal("no attribution on hardware query")
	}
	if four.Topdown.Verdict != topdown.MemoryBound {
		t.Errorf("4 engines: verdict %q, want %q (%+v)", four.Topdown.Verdict, topdown.MemoryBound, four.Topdown)
	}
	if four.Topdown.LinkBusyPct < 90 {
		t.Errorf("4 engines: link busy %.2f%%, want >= 90%% (saturated QPI)", four.Topdown.LinkBusyPct)
	}
}

// A cached-plan rerun skips config generation entirely: the attribution's
// config-gen bucket is exactly zero, while the cold run charged it.
func TestTopdownConfigBucketZeroOnCachedRerun(t *testing.T) {
	s, cold := topdownSystem(t, 2, 10_000)
	if cold.Topdown.ConfigGen <= 0 {
		t.Errorf("cold run config-gen = %v, want > 0", cold.Topdown.ConfigGen)
	}
	warm := rerun(t, s)
	if !warm.ConfigCached {
		t.Fatal("rerun did not hit the config cache")
	}
	if warm.Topdown.ConfigGen != 0 {
		t.Errorf("cached rerun config-gen = %v, want exactly 0", warm.Topdown.ConfigGen)
	}
	if warm.Topdown.Verdict == "" {
		t.Error("cached rerun lost its verdict")
	}
}

// Attributions are pure functions of simulated time: two fresh systems
// running the same query must produce bit-identical records.
func TestTopdownDeterministic(t *testing.T) {
	_, a := topdownSystem(t, 2, 10_000)
	_, b := topdownSystem(t, 2, 10_000)
	if *a.Topdown != *b.Topdown {
		t.Errorf("attributions differ:\n  a: %+v\n  b: %+v", *a.Topdown, *b.Topdown)
	}
}
