package core

import (
	"doppiodb/internal/topdown"
)

// attributeQuery folds a finished query's phase breakdown and hardware
// cycle buckets into the topdown bottleneck attribution, and counts the
// verdict in telemetry. The CPU-side term spans every software phase:
// scan setup, the UDF's software half, HAL job creation, the hybrid
// post-pass (or degraded fallback) and retry backoff. Config generation
// stays its own term — it is the component a compiled-config cache hit
// removes, which the golden cached-rerun signature pins to zero.
func (s *System) attributeQuery(placement string, res *Result) *topdown.Attribution {
	bd := res.Breakdown
	software := bd.Get(PhaseDatabase) + bd.Get(PhaseUDF) + bd.Get(PhaseHAL) +
		bd.Get(PhaseSoftware) + bd.Get(PhaseRetry)
	a := topdown.Analyze(topdown.QueryCycles{
		Placement: placement,
		Degraded:  res.Degraded,
		Software:  software,
		ConfigGen: bd.Get(PhaseConfigGen),
		Queue:     bd.Get(PhaseQueue),
		Hardware:  bd.Get(PhaseHardware),
		Total:     res.Total(),
		LinkBusy:  res.HW.LinkBusy,
		Buckets:   res.HW.Buckets,
	})
	s.Tel.Counter("topdown.verdict." + string(a.Verdict)).Inc()
	return a
}
