package core

import (
	"doppiodb/internal/bat"
	"doppiodb/internal/config"
	"doppiodb/internal/hal"
	"doppiodb/internal/perf"
	"doppiodb/internal/sim"
	"doppiodb/internal/softregex"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// This file implements the paper's §9 proposal: "being able to provide a
// cost function for the UDF to the query optimizer could be beneficial for
// overall performance ... The query optimizer will then be able to
// dynamically decide where an operator with both a hardware and software
// implementation will be executed."
//
// The hardware cost function is trivially precise — property II of the PU
// design ("it consumes the input at constant rate regardless of pattern
// complexity or length which makes its cost function very simple, an
// important aspect for query planning", §5). The software cost is estimated
// by probing the backtracker on a small sample of synthesized rows.

// Placement says where the optimizer decided to run a predicate.
type Placement int

// Placements.
const (
	// PlaceFPGA runs the predicate on the regex engines.
	PlaceFPGA Placement = iota
	// PlaceHybrid pre-filters on the FPGA and post-processes on the CPU.
	PlaceHybrid
	// PlaceSoftware runs the predicate on the CPU (it does not fit the
	// device, or software is genuinely cheaper).
	PlaceSoftware
)

func (p Placement) String() string {
	switch p {
	case PlaceFPGA:
		return "fpga"
	case PlaceHybrid:
		return "hybrid"
	case PlaceSoftware:
		return "software"
	}
	return "unknown"
}

// CostEstimate is the optimizer-facing cost function of the operator. The
// hardware prediction is itemized so the explain layer can compare each
// term against the runtime's per-job Completion records, not just the sum.
type CostEstimate struct {
	Placement Placement
	// HWTime / SWTime are the predicted response times of the two
	// implementations for the given input volume.
	HWTime, SWTime sim.Time
	// QueueDelay is the predicted wait for a free engine given the
	// FPGA's current load (§9: "the query optimizer has no knowledge
	// about the capacity or current load on the FPGA" — here it does).
	QueueDelay sim.Time
	// ScanBytes is the predicted input volume crossing QPI.
	ScanBytes int64
	// QPITransfer is the predicted link service time of that volume at
	// the 6.5 GB/s QPI rate; EngineBusy adds the engine-side
	// parametrization on top (admission → completion on the engine).
	QPITransfer, EngineBusy sim.Time
	// Fixed bundles the per-query constants: database handoff, UDF
	// software part, configuration generation, HAL job creation.
	Fixed sim.Time
	// Fits reports whether the whole expression fits the deployed
	// engines; HWPart/SWPart record the hybrid split when it exists.
	Fits           bool
	HWPart, SWPart string
	// States/Chars are the expression's resource demand.
	States, Chars int
}

// probeRows bounds the software probe.
const probeRows = 512

// EstimateCost predicts HUDF vs software response time for evaluating
// pattern over n strings of avgLen bytes, given `queued` bytes already
// enqueued on the FPGA, and picks a placement.
func (s *System) EstimateCost(pattern string, n int, avgLen int, queued int64) (*CostEstimate, error) {
	prog, err := token.CompilePattern(pattern, token.Options{})
	if err != nil {
		return nil, err
	}
	est := &CostEstimate{States: prog.NumStates(), Chars: prog.NumChars()}

	// Hardware: volume / QPI bandwidth + fixed overheads; precise by
	// construction. The terms are kept apart so EXPLAIN can show which
	// one a misprediction lives in.
	volume := float64(n) * float64(bat.EntryStride(avgLen)+bat.OffsetWidth+2)
	est.ScanBytes = int64(volume)
	est.QPITransfer = sim.FromSeconds(volume / 6.5e9)
	est.EngineBusy = est.QPITransfer + hal.ParametrizeTime
	est.Fixed = s.Model.DatabaseOverhead + s.Model.UDFOverhead +
		s.Model.ConfigGenTime + hal.CreateTime
	est.HWTime = est.EngineBusy + est.Fixed
	est.QueueDelay = sim.FromSeconds(float64(queued) / 6.5e9)

	// Software: probe the backtracker on synthesized rows of the same
	// length to estimate steps per row, then apply the calibrated model.
	bt, err := softregex.NewBacktracker(pattern, false)
	if err != nil {
		return nil, err
	}
	g := workload.NewGenerator(1, avgLen)
	var steps uint64
	rows := probeRows
	if n < rows {
		rows = n
	}
	if rows == 0 {
		rows = 1
	}
	for i := 0; i < rows; i++ {
		_, st := bt.MatchString(g.Row(workload.HitNone))
		steps += st
	}
	w := perf.Work{
		Rows:      n,
		RegexRows: n,
		Steps:     steps * uint64(n) / uint64(rows),
	}
	est.SWTime = s.Model.MonetDBScan(w, true)

	// Placement: prefer the FPGA when it wins even after queueing (with
	// this platform's sub-millisecond offload overhead it nearly always
	// does — Fig. 10); fall back to hybrid when the expression does not
	// fit; software when it cannot be split either, or when the FPGA's
	// queued load erases the win.
	fits := config.Fits(prog, s.Device.Deployment.Limits) == nil
	est.Fits = fits
	hwTotal := est.HWTime + est.QueueDelay
	switch {
	case fits && hwTotal <= est.SWTime:
		est.Placement = PlaceFPGA
	case fits:
		est.Placement = PlaceSoftware
	default:
		if hw, sw, err := SplitPattern(pattern, s.Device.Deployment.Limits, token.Options{}); err == nil {
			est.Placement = PlaceHybrid
			est.HWPart, est.SWPart = hw, sw
		} else {
			est.Placement = PlaceSoftware
		}
	}
	return est, nil
}

// QueuedBytes reports the FPGA's current load as the total data volume of
// jobs the device runtime has not completed yet — submitted, waiting in
// the admission backlog, or in the running arbitration round — the
// "current load on the FPGA" the paper's optimizer lacks. EstimateCost
// turns it into QueueDelay at link rate.
func (s *System) QueuedBytes() int64 {
	// The HAL tracks per-engine volume; expose the total.
	return s.HAL.QueuedBytes()
}
