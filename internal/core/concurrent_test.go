package core

import (
	"context"
	"sync"
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// TestFourConcurrentHUDFs exercises §3's claim: "The design, as described,
// can run four concurrent HUDFs at a time, each of them for a different
// query" — four goroutines submit four different patterns against four
// tables; every result must match its own ground truth (no configuration
// cross-talk between engines).
func TestFourConcurrentHUDFs(t *testing.T) {
	s := newSystem(t)
	queries := []struct {
		kind workload.HitKind
		pat  string
	}{
		{workload.HitQ1, workload.Q1Regex},
		{workload.HitQ2, workload.Q2},
		{workload.HitQ3, workload.Q3},
		{workload.HitQ4, workload.Q4},
	}
	type input struct {
		col  *bat.Strings
		hits int
		pat  string
	}
	inputs := make([]input, len(queries))
	for i, q := range queries {
		rows, hits := workload.NewGenerator(int64(100+i), 64).Table(5_000, q.kind, 0.2)
		tbl, err := s.DB.LoadAddressTable(q.pat, rows)
		if err != nil {
			t.Fatal(err)
		}
		col, err := tbl.Column("address_string")
		if err != nil {
			t.Fatal(err)
		}
		inputs[i] = input{col: col.Strs, hits: hits, pat: q.pat}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	counts := make([]int, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Exec(context.Background(), inputs[i].col, inputs[i].pat, token.Options{})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = res.MatchCount
		}(i)
	}
	wg.Wait()
	for i, in := range inputs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if counts[i] != in.hits {
			t.Errorf("query %q matched %d, want %d (engine cross-talk?)",
				in.pat, counts[i], in.hits)
		}
	}
}
