package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/explain"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/fpga"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// smallDeployment is a device too small for the hybrid query QH as a whole
// but large enough for its `(Strasse|Str\.)` prefix — the split the paper's
// §5.4 hybrid path takes.
func smallDeployment() *fpga.Deployment {
	d := fpga.DefaultDeployment()
	d.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	return &d
}

func newExplainSystem(t *testing.T, dep *fpga.Deployment, in *faults.Injector, aud *explain.Auditor) *System {
	t.Helper()
	s, err := NewSystem(Options{
		RegionBytes: 1 << 30,
		Deployment:  dep,
		Telemetry:   telemetry.NewRegistry(),
		Recorder:    flightrec.New(256),
		Faults:      in,
		Auditor:     aud,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExplainCostPlanShapeHybrid(t *testing.T) {
	// Golden plan shape: on the constrained device the hybrid query QH must
	// yield exactly three candidates — infeasible fpga, feasible hybrid with
	// the documented split, feasible software — with hybrid chosen.
	s := newExplainSystem(t, smallDeployment(), faults.New(faults.Options{}), explain.NewAuditor(explain.Options{}))
	rec, err := s.ExplainCost(workload.QH, 100_000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 3 {
		t.Fatalf("candidates = %d, want 3", len(rec.Candidates))
	}
	for i, want := range []string{"fpga", "hybrid", "software"} {
		if rec.Candidates[i].Placement != want {
			t.Errorf("candidate[%d] = %q, want %q", i, rec.Candidates[i].Placement, want)
		}
	}
	fpgaC := rec.Candidate("fpga")
	if fpgaC.Feasible {
		t.Errorf("fpga candidate feasible on an 8-state device: %+v", fpgaC)
	}
	if !strings.Contains(fpgaC.Reason, "deployed engines hold 8/24") {
		t.Errorf("fpga reason = %q", fpgaC.Reason)
	}
	hy := rec.Candidate("hybrid")
	if !hy.Feasible || hy.HWPart == "" || hy.SWPart == "" {
		t.Fatalf("hybrid candidate = %+v, want feasible with a split", hy)
	}
	if !strings.Contains(hy.HWPart, "Strasse") || !strings.Contains(hy.SWPart, "delivery") {
		t.Errorf("split = hw %q / sw %q, want prefix filter on the FPGA and the delivery tail on the CPU",
			hy.HWPart, hy.SWPart)
	}
	if hy.Cost.ScanBytes <= 0 || hy.Cost.QPITransferNS <= 0 || hy.Cost.EngineBusyNS <= 0 || hy.Cost.TotalNS <= 0 {
		t.Errorf("hybrid cost not itemized: %+v", hy.Cost)
	}
	sw := rec.Candidate("software")
	if !sw.Feasible || sw.Cost.SoftwareNS <= 0 {
		t.Errorf("software candidate = %+v", sw)
	}
	if rec.Chosen != "hybrid" {
		t.Fatalf("chosen = %q (%s), want hybrid", rec.Chosen, rec.Reason)
	}
	if rec.Executed || rec.Actual != nil {
		t.Error("plan-only record marked executed")
	}
	if rec.States <= 8 && rec.Chars <= 24 {
		t.Errorf("states=%d chars=%d, expected the whole expression to exceed the 8/24 device",
			rec.States, rec.Chars)
	}
}

// execQH runs QH once on a fresh constrained system and returns the decision
// record's JSON rendering.
func execQH(t *testing.T) ([]byte, *Result) {
	t.Helper()
	s := newExplainSystem(t, smallDeployment(), faults.New(faults.Options{}), explain.NewAuditor(explain.Options{}))
	tbl, _ := loadTable(t, s, 20_000, workload.HitQH, 0.2)
	col, _ := tbl.Column("address_string")
	res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision == nil {
		t.Fatal("Exec returned no decision record")
	}
	var buf bytes.Buffer
	if err := res.Decision.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func TestDecisionRecordDeterministic(t *testing.T) {
	// The record is built entirely from simulated quantities: two fresh
	// single-client runs of the same query must produce bit-identical
	// records, predicted and actual sides both.
	a, resA := execQH(t)
	b, _ := execQH(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated runs produced different decision records:\n%s\n---\n%s", a, b)
	}
	rec := resA.Decision
	if !rec.Executed || rec.Actual == nil {
		t.Fatal("executed record carries no actuals")
	}
	if rec.Chosen != "hybrid" {
		t.Fatalf("chosen = %q, want hybrid", rec.Chosen)
	}
	// The actual side must carry the hardware terms from the runtime's
	// completion accounting and the hybrid tail's software time.
	act := rec.Actual
	if act.ScanBytes <= 0 || act.QPITransferNS <= 0 || act.EngineBusyNS <= 0 || act.TotalNS <= 0 {
		t.Errorf("actuals not itemized: %+v", act)
	}
	if act.SoftwareNS <= 0 {
		t.Errorf("hybrid run recorded no software tail time: %+v", act)
	}
	if len(rec.Errors) == 0 {
		t.Fatal("no per-term errors computed")
	}
	if _, ok := rec.TermError(explain.TermEngineBusy); !ok {
		t.Error("no engine_busy prediction error")
	}
}

func TestExplainActualsMatchResult(t *testing.T) {
	_, res := execQH(t)
	rec := res.Decision
	if got, want := rec.Actual.ScanBytes, res.HW.Bytes; got != want {
		t.Errorf("actual scan_bytes = %d, want HW.Bytes %d", got, want)
	}
	if got, want := rec.Actual.QPITransferNS, ns(res.HW.LinkBusy); got != want {
		t.Errorf("actual qpi_transfer = %dns, want LinkBusy %dns", got, want)
	}
	if got, want := rec.Actual.EngineBusyNS, ns(res.HW.Time); got != want {
		t.Errorf("actual engine_busy = %dns, want HW.Time %dns", got, want)
	}
	if got, want := rec.Actual.QueueDelayNS, ns(res.HW.QueueWait); got != want {
		t.Errorf("actual queue_delay = %dns, want QueueWait %dns", got, want)
	}
	if got, want := rec.Actual.TotalNS, ns(res.Total()); got != want {
		t.Errorf("actual total = %dns, want %dns", got, want)
	}
}

func TestQPIDegradationTripsDriftAlarm(t *testing.T) {
	// Quartering the QPI bandwidth makes every transfer 4× slower than the
	// model predicts; after a handful of queries the rolling engine-busy
	// error must leave the band and latch the drift alarm.
	tel := telemetry.NewRegistry()
	// A large window: the drift event must survive the per-job events the
	// remaining queries record after the alarm latches.
	rec := flightrec.New(16_384)
	aud := explain.NewAuditor(explain.Options{Window: 32, BandPct: 25, MinSamples: 4})
	in := faults.New(faults.Options{QPIFactor: 0.25})
	s, err := NewSystem(Options{
		RegionBytes: 1 << 30,
		Telemetry:   tel,
		Recorder:    rec,
		Faults:      in,
		Auditor:     aud,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := loadTable(t, s, 50_000, workload.HitQ2, 0.2)
	col, _ := tbl.Column("address_string")
	for i := 0; i < 10; i++ {
		if _, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	rep := aud.Stats()
	ts, ok := rep.Term(explain.TermEngineBusy)
	if !ok {
		t.Fatal("no engine_busy statistics after 10 queries")
	}
	if !ts.Alarm {
		t.Fatalf("drift alarm did not latch: mean=%.1f%% bias=%.1f%% n=%d band=%.0f%%",
			ts.MeanRelErrPct, ts.P95RelErrPct, ts.Samples, rep.BandPct)
	}
	if ts.BiasPct >= 0 {
		t.Errorf("bias = %+.1f%%, want negative (model under-predicts on a slow link)", ts.BiasPct)
	}
	if got := tel.Counter("calib.drift_alarms").Value(); got < 1 {
		t.Errorf("calib.drift_alarms = %d, want >= 1", got)
	}
	found := false
	for _, e := range rec.Window() {
		if e.Type == flightrec.EvCalibDrift {
			found = true
		}
	}
	if !found {
		t.Error("no calib-drift event in the flight recorder")
	}
}

func TestAdviseOffloadMatchesExplain(t *testing.T) {
	s := newExplainSystem(t, nil, faults.New(faults.Options{}), explain.NewAuditor(explain.Options{}))
	for _, pat := range []string{workload.Q1Regex, workload.Q2, workload.QH} {
		rec, err := s.ExplainCost(pat, 1_000_000, 64)
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if got := s.AdviseOffload(pat, 1_000_000, 64); got != rec.Offloads() {
			t.Errorf("%s: AdviseOffload=%v, record offloads=%v", pat, got, rec.Offloads())
		}
	}
}
