package core

import (
	"doppiodb/internal/regex"
)

// literalPattern reports whether the pattern is a plain literal string
// (a concatenation of literal characters, no operators) and returns it.
func literalPattern(pattern string) (string, bool) {
	ast, err := regex.Parse(pattern)
	if err != nil {
		return "", false
	}
	var out []byte
	ok := true
	var walk func(n *regex.Node)
	walk = func(n *regex.Node) {
		if !ok {
			return
		}
		switch n.Op {
		case regex.OpLit:
			out = append(out, n.Lit)
		case regex.OpConcat:
			for _, s := range n.Subs {
				walk(s)
			}
		default:
			ok = false
		}
	}
	walk(ast)
	if !ok || len(out) == 0 {
		return "", false
	}
	return string(out), true
}
