package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"doppiodb/internal/sim"
)

// Span is one node of a query-lifecycle trace. A span carries two clock
// domains: Wall is real host time (what the Go process spent), Sim is the
// simulated duration from the calibrated platform model (what the modelled
// Xeon+FPGA machine would have spent). The two deliberately diverge — the
// functional engines run orders of magnitude slower or faster than the
// hardware they model — and seeing both is the point.
//
// A span's Sim is its own inclusive simulated duration; children of a
// hardware span (QPI transfer, PU match) may overlap in simulated time the
// way the pipelined circuit overlaps them, so sibling durations do not need
// to sum to the parent's.
//
// Spans are safe for concurrent child creation and attribute updates.
type Span struct {
	Name string

	mu       sync.Mutex
	start    time.Time
	wall     time.Duration
	simT     sim.Time
	attrs    map[string]int64
	children []*Span
}

// NewSpan creates a span without starting the wall clock — for building
// deterministic trees (tests, examples) or spans timed purely in simulated
// time.
func NewSpan(name string) *Span { return &Span{Name: name} }

// StartSpan creates a span and starts its wall clock.
func StartSpan(name string) *Span {
	return &Span{Name: name, start: time.Now()}
}

// NewChild appends a child span without starting its wall clock.
func (s *Span) NewChild(name string) *Span {
	c := NewSpan(name)
	s.Adopt(c)
	return c
}

// StartChild appends a child span with a running wall clock.
func (s *Span) StartChild(name string) *Span {
	c := StartSpan(name)
	s.Adopt(c)
	return c
}

// Adopt appends an existing span as a child (used to graft a UDF-internal
// trace under the SQL engine's query span).
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End stops the wall clock (no-op if the span was never started or already
// ended).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.start.IsZero() && s.wall == 0 {
		s.wall = time.Since(s.start)
	}
	s.mu.Unlock()
}

// AddSim accrues simulated time to the span.
func (s *Span) AddSim(d sim.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simT += d
	s.mu.Unlock()
}

// SetAttr records a named integer attribute (row counts, byte volumes,
// cycle counts).
func (s *Span) SetAttr(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[name] = v
	s.mu.Unlock()
}

// Attr returns a named attribute (0, false when absent).
func (s *Span) Attr(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.attrs[name]
	return v, ok
}

// Attrs returns a copy of the span's attributes (nil when none) — the
// exporter-facing view; SetAttr/Attr remain the per-key accessors.
func (s *Span) Attrs() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.attrs) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.attrs))
	for k, v := range s.attrs {
		out[k] = v
	}
	return out
}

// Wall returns the wall-clock duration (zero until End).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wall
}

// Sim returns the simulated duration.
func (s *Span) Sim() sim.Time {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.simT
}

// Children returns a copy of the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk (including
// the receiver), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Path returns the names of the tree in depth-first order — handy for
// asserting a trace's shape in tests.
func (s *Span) Path() []string {
	if s == nil {
		return nil
	}
	out := []string{s.Name}
	for _, c := range s.Children() {
		out = append(out, c.Path()...)
	}
	return out
}

// WriteTree renders the span tree with box-drawing connectors, one line per
// span: name, attributes, then the simulated and wall durations (omitted
// when zero).
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	s.writeTree(w, "", "")
}

func (s *Span) writeTree(w io.Writer, selfPrefix, childPrefix string) {
	fmt.Fprintf(w, "%s%s%s\n", selfPrefix, s.Name, s.describe())
	kids := s.Children()
	for i, c := range kids {
		if i == len(kids)-1 {
			c.writeTree(w, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			c.writeTree(w, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// describe renders the span's attributes and durations.
func (s *Span) describe() string {
	s.mu.Lock()
	attrs := make([]string, 0, len(s.attrs))
	for k, v := range s.attrs {
		attrs = append(attrs, fmt.Sprintf("%s=%d", k, v))
	}
	wall, simT := s.wall, s.simT
	s.mu.Unlock()
	sort.Strings(attrs)

	var b strings.Builder
	if len(attrs) > 0 {
		b.WriteString(" [" + strings.Join(attrs, " ") + "]")
	}
	if simT != 0 {
		fmt.Fprintf(&b, " sim=%v (%dns)", simT, int64(simT/sim.Nanosecond))
	}
	if wall != 0 {
		fmt.Fprintf(&b, " wall=%v", wall.Round(time.Microsecond))
	}
	return b.String()
}

// spanJSON is the exported wire form of a span.
type spanJSON struct {
	Name     string           `json:"name"`
	WallNS   int64            `json:"wall_ns,omitempty"`
	SimNS    int64            `json:"sim_ns,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*spanJSON      `json:"children,omitempty"`
}

func (s *Span) toJSON() *spanJSON {
	s.mu.Lock()
	j := &spanJSON{
		Name:   s.Name,
		WallNS: s.wall.Nanoseconds(),
		SimNS:  int64(s.simT / sim.Nanosecond),
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			j.Attrs[k] = v
		}
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}
