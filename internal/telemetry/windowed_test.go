package telemetry

import (
	"strings"
	"testing"
)

// A histogram covering a 160-unit window in 16 slots of 10: observations
// older than the window must fall out of the snapshot as time advances,
// and reused slots must be zeroed before accepting new samples.
func TestWindowedHistogramRotation(t *testing.T) {
	h := NewWindowedHistogram(160, 16, 10, 100, 1000)
	h.Observe(0, 5)
	h.Observe(50, 50)
	h.Observe(150, 500)

	if got := h.Snapshot(150).Count; got != 3 {
		t.Fatalf("count at t=150: got %d, want 3 (all slots live)", got)
	}
	// t=165: the window is [5, 165]; the slot holding t=0 expired.
	if got := h.Snapshot(165).Count; got != 2 {
		t.Fatalf("count at t=165: got %d, want 2 (t=0 slot expired)", got)
	}
	// t=215: only the t=150 observation's slot is still inside the window.
	if got := h.Snapshot(215).Count; got != 1 {
		t.Fatalf("count at t=215: got %d, want 1", got)
	}
	if got := h.Max(215); got != 500 {
		t.Fatalf("max at t=215: got %d, want 500", got)
	}
	// Rotating back onto the slot that held t=0 must zero it first.
	h.Observe(160, 7)
	snap := h.Snapshot(160)
	if snap.Count != 3 {
		t.Fatalf("count after slot reuse: got %d, want 3", snap.Count)
	}
	if snap.Counts[0] != 1 {
		t.Fatalf("first bucket after reuse: got %d, want exactly the new sample", snap.Counts[0])
	}
	// Far future: everything expired.
	if got := h.Snapshot(10_000).Count; got != 0 {
		t.Fatalf("count far in the future: got %d, want 0", got)
	}
	if got := h.Quantile(10_000, 0.99); got != 0 {
		t.Fatalf("quantile of empty window: got %d, want 0", got)
	}
}

// Golden quantiles over a known uniform distribution: 100 samples at
// 1..100 into single-unit buckets give exact quantiles, since every
// bucket holds one sample and interpolation cannot drift.
func TestWindowedHistogramQuantileGolden(t *testing.T) {
	bounds := make([]int64, 100)
	for i := range bounds {
		bounds[i] = int64(i + 1)
	}
	h := NewWindowedHistogram(1000, 10, bounds...)
	for v := int64(1); v <= 100; v++ {
		h.Observe(0, v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.00, 100}} {
		if got := h.Quantile(0, tc.q); got != tc.want {
			t.Errorf("q=%.2f: got %d, want %d", tc.q, got, tc.want)
		}
	}
}

// Quantile error bound: with log₂-spaced buckets the estimate must land
// within the true value's bucket, i.e. within a factor of two.
func TestWindowedHistogramQuantileWithinBucket(t *testing.T) {
	bounds := []int64{}
	for b := int64(1); b <= 1<<20; b *= 2 {
		bounds = append(bounds, b)
	}
	h := NewWindowedHistogram(1000, 10, bounds...)
	// 1000 deterministic samples spread over [1, 1e6] by a fixed stride.
	for i := int64(0); i < 1000; i++ {
		h.Observe(0, 1+i*1000)
	}
	// True p99 is sample #990 = 990001; its bucket is (2^19, 2^20].
	got := h.Quantile(0, 0.99)
	lo, hi := int64(1)<<19, int64(1)<<20
	if got <= lo || got > hi {
		t.Fatalf("p99 estimate %d outside its bucket (%d, %d]", got, lo, hi)
	}
	// The overflow bucket is capped by the observed max, not infinity.
	h2 := NewWindowedHistogram(1000, 10, 10)
	h2.Observe(0, 500)
	h2.Observe(0, 700)
	if got := h2.Quantile(0, 1.0); got > 700 {
		t.Fatalf("overflow-bucket quantile %d exceeds the observed max 700", got)
	}
}

func TestWindowedHistogramNilSafe(t *testing.T) {
	var h *WindowedHistogram
	h.Observe(0, 1)
	if h.Snapshot(0).Count != 0 || h.Quantile(0, 0.5) != 0 || h.Max(0) != 0 || h.Window() != 0 {
		t.Fatal("nil histogram must report zeroes")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Module == "" || b.GoVersion == "" || b.OS == "" || b.Arch == "" {
		t.Fatalf("build info has empty fields: %+v", b)
	}
	line := b.PromLine()
	if line == "" {
		t.Fatal("empty prom line")
	}
	for _, want := range []string{"doppio_build_info{", `module="`, `go_version="`, "} 1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("prom line %q missing %q", line, want)
		}
	}
}
