package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in a registry —
// the test- and exporter-facing view.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range ctrs {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON —
// the read side of the exporter round-trip.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parse snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	return s, nil
}

// sortedKeys returns the keys of a metric map in lexicographic order — the
// single ordering every text exporter uses, so repeated exports of the same
// state are byte-identical.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText writes the snapshot in expvar-style text: one `name value` line
// per counter and gauge; histograms flatten to `name.le.<bound>`,
// `name.le.inf`, `name.count` and `name.sum` lines. Metrics are ordered by
// name and histogram buckets by bound, so the output is deterministic.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	for _, k := range sortedKeys(snap.Counters) {
		fmt.Fprintf(w, "%s %d\n", k, snap.Counters[k])
	}
	for _, k := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(w, "%s %d\n", k, snap.Gauges[k])
		if base, bp, ok := basisPointGauge(snap, k); ok {
			fmt.Fprintf(w, "%s_pct %d.%02d\n", base, bp/100, bp%100)
		}
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		for i, b := range h.Bounds {
			fmt.Fprintf(w, "%s.le.%d %d\n", k, b, h.Counts[i])
		}
		if n := len(h.Bounds); n < len(h.Counts) {
			fmt.Fprintf(w, "%s.le.inf %d\n", k, h.Counts[n])
		}
		fmt.Fprintf(w, "%s.count %d\n", k, h.Count)
		fmt.Fprintf(w, "%s.sum %d\n", k, h.Sum)
	}
}

// basisPointGauge recognizes gauges that store basis points (name suffix
// "_bp"): they keep sub-percent precision in storage — a single engine's
// ~90.63% QPI utilization must not truncate to 90, let alone a
// low-utilization run to 0 — and the exporters render the derived percent
// view (two decimals, exact integer math) next to the raw value. A
// same-base "_pct" gauge, if something still sets one, wins.
func basisPointGauge(snap Snapshot, name string) (base string, bp int64, ok bool) {
	base, found := strings.CutSuffix(name, "_bp")
	if !found {
		return "", 0, false
	}
	bp = snap.Gauges[name]
	if bp < 0 {
		return "", 0, false
	}
	if _, exists := snap.Gauges[base+"_pct"]; exists {
		return "", 0, false
	}
	return base, bp, true
}

// promName sanitizes a metric name for the Prometheus exposition format:
// dots (the registry's namespace separator) become underscores, anything
// else outside [a-zA-Z0-9_] does too.
func promName(name string) string {
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` comments, sanitized metric names, and
// cumulative histogram buckets with the canonical le="+Inf" terminator.
// Output order is deterministic (names sorted, buckets by bound).
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	for _, k := range sortedKeys(snap.Counters) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[k])
	}
	for _, k := range sortedKeys(snap.Gauges) {
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, snap.Gauges[k])
		if base, bp, ok := basisPointGauge(snap, k); ok {
			pn := promName(base + "_pct")
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d.%02d\n", pn, pn, bp/100, bp%100)
		}
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		n := promName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

// MarshalJSON encodes the span tree (names, wall/sim nanoseconds,
// attributes, children).
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}
