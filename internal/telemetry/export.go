package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time copy of every metric in a registry —
// the test- and exporter-facing view.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter value from the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, c := range ctrs {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON —
// the read side of the exporter round-trip.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: parse snapshot: %w", err)
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	return s, nil
}

// WriteText writes the snapshot in expvar-style text: one sorted
// `name value` line per counter and gauge; histograms flatten to
// `name.le.<bound>`, `name.le.inf`, `name.count` and `name.sum` lines.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	lines := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range snap.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, h := range snap.Histograms {
		for i, b := range h.Bounds {
			lines = append(lines, fmt.Sprintf("%s.le.%d %d", k, b, h.Counts[i]))
		}
		if n := len(h.Bounds); n < len(h.Counts) {
			lines = append(lines, fmt.Sprintf("%s.le.inf %d", k, h.Counts[n]))
		}
		lines = append(lines, fmt.Sprintf("%s.count %d", k, h.Count))
		lines = append(lines, fmt.Sprintf("%s.sum %d", k, h.Sum))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// MarshalJSON encodes the span tree (names, wall/sim nanoseconds,
// attributes, children).
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}
