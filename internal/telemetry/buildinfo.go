// Build identity: a static label set (module path/version, Go toolchain,
// GOOS/GOARCH) read once from the binary's embedded build information, so
// every metrics surface — /metrics, doppiobench -json — can say exactly
// which build produced its numbers.
package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read from
// debug.ReadBuildInfo on first use. Fields degrade to "unknown" when the
// binary carries no build information (e.g. some test harnesses).
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{
			Module:    "unknown",
			Version:   "unknown",
			GoVersion: runtime.Version(),
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Path != "" {
				buildInfo.Module = bi.Main.Path
			}
			if bi.Main.Version != "" {
				buildInfo.Version = bi.Main.Version
			}
			if bi.GoVersion != "" {
				buildInfo.GoVersion = bi.GoVersion
			}
		}
	})
	return buildInfo
}

// PromLine renders the identity as a Prometheus info-style gauge: a
// constant 1 whose labels carry the build identity.
func (b BuildInfo) PromLine() string {
	return fmt.Sprintf("doppio_build_info{module=%q,version=%q,go_version=%q,os=%q,arch=%q} 1",
		b.Module, b.Version, b.GoVersion, b.OS, b.Arch)
}

// WritePrometheusBuildInfo appends the build-info gauge (with its # TYPE
// header) to a Prometheus exposition, the way /metrics serves it.
func WritePrometheusBuildInfo(w io.Writer) {
	fmt.Fprintf(w, "# TYPE doppio_build_info gauge\n%s\n", Build().PromLine())
}
