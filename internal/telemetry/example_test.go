package telemetry_test

import (
	"context"
	"os"
	"reflect"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// Example shows the two halves of the telemetry layer working together:
// registry metrics for what happened how often, and a span tree for where
// one query's time went. The spans carry only simulated durations here so
// the output is deterministic.
func Example() {
	reg := telemetry.NewRegistry()
	reg.Counter("engine.jobs").Add(4)
	reg.Gauge("pu.utilization_pct").Set(19)

	query := telemetry.NewSpan("regexp_fpga")
	query.AddSim(300 * sim.Microsecond)
	hw := query.NewChild("hardware")
	hw.AddSim(240 * sim.Microsecond)
	qpi := hw.NewChild("qpi-transfer")
	qpi.AddSim(230 * sim.Microsecond)
	qpi.SetAttr("bytes", 1_560_320)
	post := query.NewChild("cpu-post-process")
	post.AddSim(55 * sim.Microsecond)
	post.SetAttr("rows", 4046)

	reg.WriteText(os.Stdout)
	query.WriteTree(os.Stdout)
	// Output:
	// engine.jobs 4
	// pu.utilization_pct 19
	// regexp_fpga sim=300.000µs (300000ns)
	// ├─ hardware sim=240.000µs (240000ns)
	// │  └─ qpi-transfer [bytes=1560320] sim=230.000µs (230000ns)
	// └─ cpu-post-process [rows=4046] sim=55.000µs (55000ns)
}

// oversized exceeds the default device's 16-state/32-character capacity, so
// Exec splits it at the second top-level `.*`: the Q2 prefix runs on the
// FPGA as a pre-filter and the alternation tail is post-processed on the
// CPU (§7.8).
const oversized = workload.Q2 + `.*(Nord|Sued|Ost|West|Mitte|Zentrum|Altstadt|Neustadt)`

// TestHybridQueryTrace instruments a real hybrid query end to end and
// asserts the shape of the resulting span tree plus the hardware counters
// the run must have produced.
func TestHybridQueryTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(1, workload.DefaultStrLen).Table(5000, workload.HitQ2, 0.2)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}

	res, err := s.Exec(context.Background(), col.Strs, oversized, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hybrid {
		t.Fatalf("pattern %q should have triggered hybrid execution", oversized)
	}

	want := []string{
		"regexp_fpga", "plan-split", "bat-scan", "hudf-software",
		"config-gen", "job-submit", "hardware", "qpi-transfer",
		"engine-dispatch", "pu-match", "collect", "cpu-post-process",
	}
	if got := res.Trace.Path(); !reflect.DeepEqual(got, want) {
		t.Errorf("span tree shape:\n got %v\nwant %v", got, want)
	}
	if res.Trace.Sim() != res.Total() {
		t.Errorf("root sim %v != simulated response %v", res.Trace.Sim(), res.Total())
	}
	qpi := res.Trace.Find("qpi-transfer")
	if bytes, _ := qpi.Attr("bytes"); bytes <= 0 {
		t.Errorf("qpi-transfer moved %d bytes, want > 0", bytes)
	}
	if qpi.Sim() <= 0 {
		t.Error("qpi-transfer has no simulated duration")
	}
	if rows, _ := res.Trace.Find("cpu-post-process").Attr("rows"); rows != int64(hits) {
		t.Errorf("post-processed %d rows, want the %d pre-filter hits", rows, hits)
	}

	snap := reg.Snapshot()
	for _, c := range []string{"core.queries", "core.hybrid_queries", "qpi.bytes", "pu.cycles", "hal.jobs", "hal.dsm.strings"} {
		if snap.Counter(c) <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, snap.Counter(c))
		}
	}
	if util := snap.Gauge("pu.utilization_pct"); util <= 0 {
		t.Errorf("pu.utilization_pct = %d, want > 0", util)
	}
	if snap.Counter("hal.dsm.strings") != int64(len(rows)) {
		t.Errorf("DSM saw %d strings, want %d", snap.Counter("hal.dsm.strings"), len(rows))
	}
}

// TestIsolatedRegistry confirms that a System bound to its own registry does
// not leak metrics into the process-wide default.
func TestIsolatedRegistry(t *testing.T) {
	before := telemetry.Default().Snapshot().Counter("core.queries")
	reg := telemetry.NewRegistry()
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(2, workload.DefaultStrLen).Table(500, workload.HitQ2, 0.2)
	tbl, err := s.DB.LoadAddressTable("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := tbl.Column("address_string")
	if _, err := s.Exec(context.Background(), col.Strs, workload.Q2, token.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("core.queries"); got != 1 {
		t.Errorf("isolated registry core.queries = %d, want 1", got)
	}
	if after := telemetry.Default().Snapshot().Counter("core.queries"); after != before {
		t.Errorf("default registry changed: %d -> %d", before, after)
	}
}
