package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the data-race check, and
// the final values verify no increment was lost.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("c").Inc()
				reg.Gauge("g").Add(1)
				reg.Histogram("h", 10, 100).Observe(int64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("h").Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
	if reg.Counter("x") != c {
		t.Error("Counter is not get-or-create")
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset did not clear")
	}
	g := reg.Gauge("y")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Errorf("gauge = %d, want 40", g.Value())
	}
}

// TestHistogramBuckets pins the bucket boundary semantics: bound b holds
// observations ≤ b, the overflow bucket everything above the last bound.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{0, 9, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []int64{3, 2, 2, 2} // ≤10: {0,9,10}; ≤100: {11,100}; ≤1000: {101,1000}; >1000: {1001,5000}
	if !reflect.DeepEqual(s.Counts, wantCounts) {
		t.Errorf("counts = %v, want %v", s.Counts, wantCounts)
	}
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
	if want := int64(0 + 9 + 10 + 11 + 100 + 101 + 1000 + 1001 + 5000); s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	h := NewHistogram(100, 10, 100, 1)
	if want := []int64{1, 10, 100}; !reflect.DeepEqual(h.Bounds(), want) {
		t.Errorf("bounds = %v, want %v", h.Bounds(), want)
	}
}

// TestExporterRoundTrip registers metrics, records values, exports JSON,
// parses it back and compares — the register → record → JSON → parse →
// compare loop of the issue.
func TestExporterRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.jobs").Add(7)
	reg.Counter("qpi.bytes").Add(123456)
	reg.Gauge("hal.queue_depth").Set(3)
	reg.Histogram("scan.ns", 100, 1000).Observe(50)
	reg.Histogram("scan.ns").Observe(5000)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	parsed, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseSnapshot: %v", err)
	}
	if !reflect.DeepEqual(parsed, reg.Snapshot()) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", parsed, reg.Snapshot())
	}
	if parsed.Counter("qpi.bytes") != 123456 || parsed.Gauge("hal.queue_depth") != 3 {
		t.Errorf("parsed values wrong: %+v", parsed)
	}
}

func TestWriteText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.counter").Add(2)
	reg.Gauge("a.gauge").Set(1)
	// Two-digit and single-digit bounds: numeric bucket order must win over
	// the lexicographic order a naive line sort would produce (le.10 < le.2).
	reg.Histogram("h", 10, 2).Observe(3)
	var buf bytes.Buffer
	reg.WriteText(&buf)
	got := buf.String()
	want := strings.Join([]string{
		"b.counter 2",
		"a.gauge 1",
		"h.le.2 0",
		"h.le.10 1",
		"h.le.inf 0",
		"h.count 1",
		"h.sum 3",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("text export:\n got %q\nwant %q", got, want)
	}
	// Determinism: a second export of the same state is byte-identical.
	var again bytes.Buffer
	reg.WriteText(&again)
	if again.String() != got {
		t.Errorf("text export not deterministic:\n1st %q\n2nd %q", got, again.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.queries").Add(4)
	reg.Gauge("hal.engines.healthy").Set(3)
	h := reg.Histogram("scan.ns", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	want := strings.Join([]string{
		"# TYPE core_queries counter",
		"core_queries 4",
		"# TYPE hal_engines_healthy gauge",
		"hal_engines_healthy 3",
		"# TYPE scan_ns histogram",
		`scan_ns_bucket{le="10"} 1`,
		`scan_ns_bucket{le="100"} 2`,
		`scan_ns_bucket{le="+Inf"} 3`,
		"scan_ns_sum 5055",
		"scan_ns_count 3",
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("prometheus export:\n got %q\nwant %q", got, want)
	}
}

// TestAttach verifies detached instances (the thin-view consolidation path:
// shmem Region gauges, PU counters) publish under stable names and that a
// later attach replaces an earlier one.
func TestAttach(t *testing.T) {
	reg := NewRegistry()
	c := NewCounter()
	c.Add(9)
	reg.AttachCounter("shmem.page_faults", c)
	if got := reg.Snapshot().Counter("shmem.page_faults"); got != 9 {
		t.Errorf("attached counter = %d, want 9", got)
	}
	c2 := NewCounter()
	c2.Add(1)
	reg.AttachCounter("shmem.page_faults", c2)
	if got := reg.Snapshot().Counter("shmem.page_faults"); got != 1 {
		t.Errorf("re-attached counter = %d, want 1 (last attach wins)", got)
	}
	g := NewGauge()
	g.Set(4)
	reg.AttachGauge("shmem.live_slabs", g)
	if got := reg.Snapshot().Gauge("shmem.live_slabs"); got != 4 {
		t.Errorf("attached gauge = %d, want 4", got)
	}
}

// TestNilSafety: a nil registry and nil metrics must be inert, not crash —
// components run unwired in unit tests.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", 10).Observe(5)
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var c *Counter
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	var h *Histogram
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram count != 0")
	}
	var s *Span
	s.End()
	s.AddSim(1)
	s.SetAttr("a", 1)
	s.Adopt(nil)
	if s.Find("x") != nil || s.Path() != nil {
		t.Error("nil span not inert")
	}
}
