// Package telemetry is the zero-dependency observability substrate of the
// reproduction: typed counters, gauges and fixed-bucket histograms in a
// process-wide Registry, plus lightweight spans that model the lifecycle of
// a hybrid CPU-FPGA query (SQL parse → plan → BAT scan → HUDF config-gen →
// job submit → QPI transfer → engine dispatch → PU match → collect → CPU
// post-process).
//
// The design mirrors what the paper's prototype exposes in hardware: the
// engines write per-job statistics into the Device Status Memory (§3 step
// 8), and the evaluation (Figures 8–13) is built from PU utilization, heap
// bandwidth and per-phase response-time breakdowns. Every component of the
// simulated stack feeds the same registry, so one snapshot answers where a
// query spent its simulated cycles and what the hardware did to serve it.
//
// Metrics exist in two forms. Registry.Counter / Gauge / Histogram
// get-or-create a named metric — the common case. Components that keep
// per-instance statistics (a shared-memory Region, a Processing Unit)
// allocate *detached* instances with NewCounter / NewGauge and expose their
// legacy Stats structs as thin views over them; AttachCounter / AttachGauge
// later publish those instances under stable names. All operations are safe
// for concurrent use and nil-receiver safe, so unwired components cost one
// predictable branch per update.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (but resettable) int64 metric. The
// zero value is ready to use; all methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a detached counter (not in any registry).
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset sets the counter back to zero (per-job accounting).
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a settable int64 metric (queue depth, live bytes, utilization).
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a detached gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations. A bound b
// means "≤ b"; observations above the last bound land in the implicit
// overflow bucket, so len(counts) == len(bounds)+1.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a detached histogram with the given upper bounds.
// Bounds are sorted and deduplicated.
func NewHistogram(bounds ...int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds ("≤ bound").
	Bounds []int64 `json:"bounds"`
	// Counts has one entry per bound plus the overflow bucket.
	Counts []int64 `json:"counts"`
	// Count and Sum summarize all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a named collection of metrics, safe for concurrent use. The
// zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every component binds to
// unless explicitly rewired (tests use private registries for isolation).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a detached counter, so unwired components still work.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return NewCounter()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = NewCounter()
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return NewGauge()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return NewHistogram(bounds...)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// AttachCounter publishes a detached counter under the given name (replacing
// any previous metric of that name — last attach wins, as when a fresh
// System reuses the process registry).
func (r *Registry) AttachCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctrs[name] = c
}

// AttachGauge publishes a detached gauge under the given name.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = g
}

// AttachHistogram publishes a detached histogram under the given name.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}
