package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"doppiodb/internal/sim"
)

// TestSpanNesting builds a parent/child tree and checks structure, Find and
// Path.
func TestSpanNesting(t *testing.T) {
	root := NewSpan("query")
	hw := root.NewChild("hardware")
	hw.NewChild("qpi-transfer")
	hw.NewChild("pu-match")
	root.NewChild("cpu-post-process")

	want := []string{"query", "hardware", "qpi-transfer", "pu-match", "cpu-post-process"}
	if got := root.Path(); !reflect.DeepEqual(got, want) {
		t.Errorf("Path = %v, want %v", got, want)
	}
	if root.Find("pu-match") == nil {
		t.Error("Find missed a grandchild")
	}
	if root.Find("nope") != nil {
		t.Error("Find invented a span")
	}
	if n := len(root.Children()); n != 2 {
		t.Errorf("root has %d children, want 2", n)
	}
}

func TestSpanClocks(t *testing.T) {
	s := StartSpan("work")
	time.Sleep(time.Millisecond)
	s.End()
	if s.Wall() <= 0 {
		t.Error("wall clock did not advance")
	}
	w := s.Wall()
	s.End() // second End is a no-op
	if s.Wall() != w {
		t.Error("second End changed the wall duration")
	}
	s.AddSim(3 * sim.Microsecond)
	s.AddSim(2 * sim.Microsecond)
	if s.Sim() != 5*sim.Microsecond {
		t.Errorf("sim = %v, want 5µs", s.Sim())
	}
	s.SetAttr("rows", 42)
	if v, ok := s.Attr("rows"); !ok || v != 42 {
		t.Errorf("attr = %d,%t", v, ok)
	}
}

// TestSpanConcurrentChildren exercises concurrent StartChild/SetAttr (the
// partitioned submit path creates per-engine spans from worker goroutines).
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("submit")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("job")
			c.SetAttr("engine", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	if n := len(root.Children()); n != 8 {
		t.Errorf("%d children, want 8", n)
	}
}

func TestWriteTree(t *testing.T) {
	root := NewSpan("query")
	root.AddSim(10 * sim.Microsecond)
	hw := root.NewChild("hardware")
	hw.AddSim(8 * sim.Microsecond)
	q := hw.NewChild("qpi-transfer")
	q.SetAttr("bytes", 4096)
	hw.NewChild("pu-match")
	root.NewChild("collect")

	var buf bytes.Buffer
	root.WriteTree(&buf)
	got := buf.String()
	want := strings.Join([]string{
		"query sim=10.000µs (10000ns)",
		"├─ hardware sim=8.000µs (8000ns)",
		"│  ├─ qpi-transfer [bytes=4096]",
		"│  └─ pu-match",
		"└─ collect",
	}, "\n") + "\n"
	if got != want {
		t.Errorf("tree:\n%s\nwant:\n%s", got, want)
	}
}

func TestSpanJSON(t *testing.T) {
	root := NewSpan("query")
	root.AddSim(2 * sim.Microsecond)
	root.SetAttr("rows", 7)
	root.NewChild("parse")

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back struct {
		Name     string           `json:"name"`
		SimNS    int64            `json:"sim_ns"`
		Attrs    map[string]int64 `json:"attrs"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != "query" || back.SimNS != 2000 || back.Attrs["rows"] != 7 {
		t.Errorf("span JSON mangled: %s", data)
	}
	if len(back.Children) != 1 || back.Children[0].Name != "parse" {
		t.Errorf("children mangled: %s", data)
	}
}
