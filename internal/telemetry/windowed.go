// Windowed histograms: the sliding-window view the SLO engine reads its
// latency quantiles from. A WindowedHistogram covers a fixed span of the
// *simulated* timeline with a ring of rotating sub-window slots (16 by
// default elsewhere): observations land in the slot their timestamp maps
// to, a slot whose epoch has passed is zeroed and reused, and a snapshot
// aggregates only the slots still inside the window. Everything is keyed
// on caller-provided timestamps — never the wall clock — so runs remain
// deterministic and bit-identical, per the repo's simulation contract.
package telemetry

import (
	"sort"
	"sync"
)

// WindowedHistogram is a fixed-bucket histogram over the trailing window of
// a caller-supplied int64 timeline (the simulated clock, in nanoseconds).
// The window is divided into equal slots that rotate as time advances; an
// observation or snapshot with timestamp `now` first expires every slot
// that fell out of [now-window, now]. All methods are nil-safe.
type WindowedHistogram struct {
	mu     sync.Mutex
	bounds []int64
	width  int64 // one slot's span of the timeline
	slots  []windowSlot
}

// windowSlot is one rotating sub-window.
type windowSlot struct {
	start  int64 // timeline position this slot currently covers; -1 = empty
	counts []int64
	count  int64
	sum    int64
	max    int64
}

// NewWindowedHistogram builds a histogram covering the trailing `window` of
// the timeline, divided into `slots` rotating sub-windows, with the given
// bucket upper bounds (a bound b means "≤ b"; observations above the last
// bound land in the overflow bucket). Bounds are sorted and deduplicated.
// window must be positive; slots < 1 is clamped to 1.
func NewWindowedHistogram(window int64, slots int, bounds ...int64) *WindowedHistogram {
	if slots < 1 {
		slots = 1
	}
	if window < int64(slots) {
		window = int64(slots)
	}
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	w := &WindowedHistogram{
		bounds: uniq,
		width:  window / int64(slots),
		slots:  make([]windowSlot, slots),
	}
	for i := range w.slots {
		w.slots[i] = windowSlot{start: -1, counts: make([]int64, len(uniq)+1)}
	}
	return w
}

// Window returns the covered span of the timeline (width × slots).
func (w *WindowedHistogram) Window() int64 {
	if w == nil {
		return 0
	}
	return w.width * int64(len(w.slots))
}

// slotFor rotates the ring to `now` and returns the live slot, resetting it
// if its previous epoch has passed. Caller holds w.mu.
func (w *WindowedHistogram) slotFor(now int64) *windowSlot {
	start := now - now%w.width
	s := &w.slots[(now/w.width)%int64(len(w.slots))]
	if s.start != start {
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count, s.sum, s.max = 0, 0, 0
		s.start = start
	}
	return s
}

// Observe records value v at timeline position now (now < 0 is clamped to
// 0 so the first simulated instant still lands in a slot).
func (w *WindowedHistogram) Observe(now, v int64) {
	if w == nil {
		return
	}
	if now < 0 {
		now = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slotFor(now)
	i := sort.Search(len(w.bounds), func(i int) bool { return v <= w.bounds[i] })
	s.counts[i]++
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Snapshot aggregates the slots still inside the trailing window at `now`
// into a point-in-time HistogramSnapshot. Slots whose span ended before
// now-window are excluded (and will be recycled by the next Observe).
func (w *WindowedHistogram) Snapshot(now int64) HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	if now < 0 {
		now = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := HistogramSnapshot{
		Bounds: append([]int64(nil), w.bounds...),
		Counts: make([]int64, len(w.bounds)+1),
	}
	oldest := now - now%w.width - int64(len(w.slots)-1)*w.width
	for i := range w.slots {
		s := &w.slots[i]
		if s.start < 0 || s.start < oldest || s.start > now {
			continue
		}
		for j, c := range s.counts {
			snap.Counts[j] += c
		}
		snap.Count += s.count
		snap.Sum += s.sum
	}
	return snap
}

// Max returns the largest value observed in the trailing window at `now`.
func (w *WindowedHistogram) Max(now int64) int64 {
	if w == nil {
		return 0
	}
	if now < 0 {
		now = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	oldest := now - now%w.width - int64(len(w.slots)-1)*w.width
	var max int64
	for i := range w.slots {
		s := &w.slots[i]
		if s.start < 0 || s.start < oldest || s.start > now {
			continue
		}
		if s.max > max {
			max = s.max
		}
	}
	return max
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observations inside
// the trailing window at `now`, by linear interpolation within the bucket
// the target rank falls in. The estimate is therefore exact to within one
// bucket's span: values in the overflow bucket report the window maximum.
// An empty window reports 0.
func (w *WindowedHistogram) Quantile(now int64, q float64) int64 {
	snap := w.Snapshot(now)
	return QuantileFromSnapshot(snap, q, w.Max(now))
}

// QuantileFromSnapshot estimates the q-quantile from any histogram
// snapshot; max bounds the overflow bucket's estimate (pass the observed
// maximum, or the last bound again when unknown).
func QuantileFromSnapshot(s HistogramSnapshot, q float64, max int64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	// Target rank, 1-based: the smallest rank covering fraction q.
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) || rank == 0 {
		rank++
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		var lo, hi int64
		switch {
		case i < len(s.Bounds):
			hi = s.Bounds[i]
			if i > 0 {
				lo = s.Bounds[i-1]
			}
		default:
			// Overflow bucket: bounded by the observed maximum.
			if len(s.Bounds) > 0 {
				lo = s.Bounds[len(s.Bounds)-1]
			}
			hi = max
			if hi < lo {
				hi = lo
			}
		}
		// Interpolate the rank's position within this bucket, clamped to
		// the observed maximum so a sparse bucket cannot report a quantile
		// above any value actually seen.
		frac := float64(rank-cum) / float64(c)
		est := lo + int64(frac*float64(hi-lo))
		if max > 0 && est > max {
			est = max
		}
		return est
	}
	return max
}
