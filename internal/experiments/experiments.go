// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment builds its workload, runs the real
// operator implementations to obtain results and work counters, converts
// software work into simulated time through the calibrated model
// (internal/perf), and obtains hardware times from the deterministic
// QPI/engine simulation (internal/memmodel via the HAL).
//
// Experiments execute the functional engines on a sample of the full row
// count (work per row is constant by construction, so counters extrapolate
// linearly) and always size the *timing* computation at the full row count.
// cmd/doppiobench prints every experiment next to the paper's published
// values.
package experiments

import (
	"fmt"

	"doppiodb/internal/bat"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/perf"
	"doppiodb/internal/sim"
	"doppiodb/internal/workload"
)

// Config controls experiment scale.
type Config struct {
	// SampleRows is how many rows the functional engines actually
	// process per measurement; work is extrapolated to the nominal row
	// count. 0 selects the default.
	SampleRows int
	// Seed drives the workload generator.
	Seed int64
	// Selectivity of the injected hits (paper default 0.2).
	Selectivity float64
	// MeasuredRows is the per-query row count of the measured concurrent
	// throughput runs (Figures 8 and 11). The rate is volume-normalized
	// to the paper's 2.5 M-row query, so this only has to be large
	// enough to amortize per-round overheads. 0 selects the default.
	MeasuredRows int
	// Clients is the concurrent client-goroutine count of the measured
	// throughput runs (0: the paper's 10).
	Clients int
}

// Defaults mirror §7.1.1.
const (
	DefaultSampleRows   = 20_000
	DefaultSelectivity  = 0.2
	DefaultMeasuredRows = 12_000
	DefaultClients      = 10
	// PaperRows is the table size of Table 1 and the throughput
	// experiments: 2.5 million records.
	PaperRows = 2_500_000
)

func (c Config) withDefaults() Config {
	if c.SampleRows <= 0 {
		c.SampleRows = DefaultSampleRows
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Selectivity == 0 {
		c.Selectivity = DefaultSelectivity
	}
	if c.MeasuredRows <= 0 {
		c.MeasuredRows = DefaultMeasuredRows
	}
	if c.Clients <= 0 {
		c.Clients = DefaultClients
	}
	return c
}

// scaleWork extrapolates sampled work to n rows.
func scaleWork(w perf.Work, sample, n int) perf.Work {
	if sample <= 0 {
		return perf.Work{}
	}
	f := float64(n) / float64(sample)
	return perf.Work{
		Rows:        n,
		Bytes:       uint64(float64(w.Bytes) * f),
		Comparisons: uint64(float64(w.Comparisons) * f),
		Steps:       uint64(float64(w.Steps) * f),
		RegexRows:   int(float64(w.RegexRows) * f),
		Postings:    uint64(float64(w.Postings) * f),
	}
}

// fpgaQueryTime returns the simulated FPGA response time for scanning n
// strings of the workload layout, partitioned over the deployment's
// engines, plus the fixed UDF-path overheads; ideal=true removes the QPI
// bottleneck (the dashed FPGA(ideal) lines of Figure 9).
func fpgaQueryTime(model perf.Model, n, strLen, engines int, ideal bool) sim.Time {
	params := memmodel.Default()
	if ideal {
		// Next-generation platform: the link feeds the engines at
		// their aggregate capacity (§7.5's dashed line).
		params.QPIBandwidth = float64(engines) * params.EngineBandwidth
		params.SwitchLatency = 0
	}
	stride := bat.EntryStride(strLen)
	per := n / engines
	queues := make([][]memmodel.Job, engines)
	for e := 0; e < engines; e++ {
		cnt := per
		if e == engines-1 {
			cnt = n - per*(engines-1)
		}
		queues[e] = []memmodel.Job{memmodel.JobForStrings(cnt, strLen, bat.OffsetWidth, stride, 2)}
	}
	res := memmodel.Simulate(params, queues)
	return res.Finish + model.DatabaseOverhead + model.UDFOverhead + model.ConfigGenTime
}

// fpgaThroughput returns queries/s for back-to-back FPGA queries over n
// strings using `engines` engines, with jobs spread one-per-engine (the
// Figure 8 setup: 10 clients keep every engine busy).
func fpgaThroughput(n, strLen, engines, queries int) float64 {
	params := memmodel.Default()
	stride := bat.EntryStride(strLen)
	queues := make([][]memmodel.Job, engines)
	for q := 0; q < queries; q++ {
		e := q % engines
		queues[e] = append(queues[e], memmodel.JobForStrings(n, strLen, bat.OffsetWidth, stride, 2))
	}
	res := memmodel.Simulate(params, queues)
	if res.Finish <= 0 {
		return 0
	}
	return float64(queries) / res.Finish.Seconds()
}

// genTable produces sample rows for a query kind.
func genTable(cfg Config, kind workload.HitKind) ([]string, int) {
	g := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen)
	return g.Table(cfg.SampleRows, kind, cfg.Selectivity)
}

// fmtSeconds renders a simulated time in seconds for the reports.
func fmtSeconds(t sim.Time) string { return fmt.Sprintf("%.3f", t.Seconds()) }
