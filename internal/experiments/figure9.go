package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/workload"
)

// queryDef describes one of the evaluation queries.
type queryDef struct {
	Name    string
	Kind    workload.HitKind
	Pattern string // regex form
	Like    string // non-empty: Q1 runs via LIKE on the CPU engines
}

// evalQueries are Q1–Q4 of §7.1.1.
func evalQueries() []queryDef {
	return []queryDef{
		{Name: "Q1", Kind: workload.HitQ1, Pattern: workload.Q1Regex, Like: workload.Q1Like},
		{Name: "Q2", Kind: workload.HitQ2, Pattern: workload.Q2},
		{Name: "Q3", Kind: workload.HitQ3, Pattern: workload.Q3},
		{Name: "Q4", Kind: workload.HitQ4, Pattern: workload.Q4},
	}
}

// figure9Sizes is the x axis: 320 k to 10 M records.
var figure9Sizes = []int{320_000, 625_000, 1_250_000, 2_500_000, 5_000_000, 10_000_000}

// Figure9Point is one (query, size) cell.
type Figure9Point struct {
	Query     string
	Records   int
	MonetDB   float64 // seconds
	DBx       float64
	FPGA      float64
	FPGAIdeal float64
}

// Figure9Result reproduces Figures 9a/9b: response time vs input size and
// complexity.
type Figure9Result struct {
	Points []Figure9Point
}

// perRowWork measures the per-row software work of a query on sampled data.
func perRowWork(cfg Config, q queryDef) (perf.Work, error) {
	rows, _ := genTable(cfg, q.Kind)
	db := mdb.New(nil)
	tbl, err := db.LoadAddressTable("address_table", rows)
	if err != nil {
		return perf.Work{}, err
	}
	var sel *mdb.Selection
	if q.Like != "" {
		sel, err = db.SelectLike(tbl, "address_string", q.Like, false)
	} else {
		sel, err = db.SelectRegexp(tbl, "address_string", q.Pattern, false)
	}
	if err != nil {
		return perf.Work{}, err
	}
	return sel.Work, nil
}

// Figure9 runs the experiment. The same work model drives both the MonetDB
// and DBx lines (they run identical matching code; the engines differ in
// per-row overhead and parallelism).
func Figure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()
	out := &Figure9Result{}
	for _, q := range evalQueries() {
		work, err := perRowWork(cfg, q)
		if err != nil {
			return nil, err
		}
		for _, n := range figure9Sizes {
			scaled := scaleWork(work, cfg.SampleRows, n)
			out.Points = append(out.Points, Figure9Point{
				Query:     q.Name,
				Records:   n,
				MonetDB:   model.MonetDBScan(scaled, true).Seconds(),
				DBx:       model.DBXScan(scaled).Seconds(),
				FPGA:      fpgaQueryTime(model, n, workload.DefaultStrLen, 4, false).Seconds(),
				FPGAIdeal: fpgaQueryTime(model, n, workload.DefaultStrLen, 4, true).Seconds(),
			})
		}
	}
	return out, nil
}

// Render prints both panels.
func (r *Figure9Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: response time vs input size and complexity (seconds)")
	fmt.Fprintf(w, "  %-4s %10s %12s %12s %12s %12s\n",
		"Q", "records", "MonetDB", "DBx", "FPGA", "FPGA(ideal)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-4s %10d %12.3f %12.3f %12.4f %12.4f\n",
			p.Query, p.Records, p.MonetDB, p.DBx, p.FPGA, p.FPGAIdeal)
	}
}
