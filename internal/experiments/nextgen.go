package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/bat"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/perf"
	"doppiodb/internal/workload"
)

// NextGenRow is one platform generation's Q1/Q2 response at 2.5 M rows.
type NextGenRow struct {
	Platform    string
	LinkGBs     float64
	Q1Sec       float64 // simple query (MonetDB's best case)
	Q2Sec       float64 // complex query
	Q1VsMonetDB float64 // FPGA/MonetDB ratio (<1: FPGA wins)
}

// NextGenResult projects the §9 discussion: "the next generation
// Xeon+FPGA architecture ... will address the issues of memory bandwidth
// by providing both a QPI and PCIe link to the FPGA". It compares the
// prototype link, the announced QPI+2×PCIe configuration, and the
// bandwidth-unconstrained limit (the engines' 25.6 GB/s capacity).
type NextGenResult struct {
	Rows           []NextGenRow
	MonetDBQ1      float64
	MonetDBQ2      float64
	StringLenSweep []StringLenRow
}

// StringLenRow shows how string length moves the offset/heap mix and the
// FPGA response (longer strings amortize the 4 B offset per row).
type StringLenRow struct {
	StrLen    int
	FPGASec   float64
	UsefulGBs float64
}

// NextGen runs the projection.
func NextGen(cfg Config) (*NextGenResult, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()

	// Software reference at 2.5 M rows.
	q1work, err := perRowWork(cfg, evalQueries()[0])
	if err != nil {
		return nil, err
	}
	q2work, err := perRowWork(cfg, evalQueries()[1])
	if err != nil {
		return nil, err
	}
	out := &NextGenResult{
		MonetDBQ1: model.MonetDBScan(scaleWork(q1work, cfg.SampleRows, PaperRows), true).Seconds(),
		MonetDBQ2: model.MonetDBScan(scaleWork(q2work, cfg.SampleRows, PaperRows), true).Seconds(),
	}

	platforms := []struct {
		name string
		bw   float64
		sw   bool // keep the prototype's switch stalls
	}{
		{"HARP v1 (QPI)", 6.5e9, true},
		{"next-gen (QPI + 2x PCIe)", 6.5e9 + 2*8e9, false},
		{"unconstrained (engine capacity)", 25.6e9, false},
	}
	stride := bat.EntryStride(workload.DefaultStrLen)
	for _, p := range platforms {
		params := memmodel.Default()
		params.QPIBandwidth = p.bw
		if !p.sw {
			params.SwitchLatency = 0
		}
		mk := func() float64 {
			per := PaperRows / 4
			queues := make([][]memmodel.Job, 4)
			for e := 0; e < 4; e++ {
				queues[e] = []memmodel.Job{memmodel.JobForStrings(per, workload.DefaultStrLen, bat.OffsetWidth, stride, 2)}
			}
			return memmodel.Simulate(params, queues).Finish.Seconds()
		}
		t := mk()
		out.Rows = append(out.Rows, NextGenRow{
			Platform:    p.name,
			LinkGBs:     p.bw / 1e9,
			Q1Sec:       t,
			Q2Sec:       t, // complexity independent
			Q1VsMonetDB: t / out.MonetDBQ1,
		})
	}

	// String-length sweep on the prototype link.
	for _, sl := range []int{16, 32, 64, 128, 256} {
		params := memmodel.Default()
		st := bat.EntryStride(sl)
		per := PaperRows / 4
		queues := make([][]memmodel.Job, 4)
		for e := 0; e < 4; e++ {
			queues[e] = []memmodel.Job{memmodel.JobForStrings(per, sl, bat.OffsetWidth, st, 2)}
		}
		res := memmodel.Simulate(params, queues)
		t := res.Finish.Seconds()
		out.StringLenSweep = append(out.StringLenSweep, StringLenRow{
			StrLen:    sl,
			FPGASec:   t,
			UsefulGBs: float64(PaperRows) * float64(sl) / t / 1e9,
		})
	}
	return out, nil
}

// Render prints the projection.
func (r *NextGenResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Next-generation platform projection (§9) — 2.5M rows")
	fmt.Fprintf(w, "  MonetDB reference: Q1 %.3fs, Q2 %.3fs\n", r.MonetDBQ1, r.MonetDBQ2)
	fmt.Fprintf(w, "  %-34s %10s %10s %14s\n", "platform", "link GB/s", "query s", "vs MonetDB Q1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-34s %10.1f %10.4f %13.2fx\n",
			row.Platform, row.LinkGBs, row.Q1Sec, row.Q1VsMonetDB)
	}
	fmt.Fprintln(w, "  string-length sweep (prototype link):")
	fmt.Fprintf(w, "  %-8s %10s %12s\n", "strlen", "query s", "useful GB/s")
	for _, row := range r.StringLenSweep {
		fmt.Fprintf(w, "  %-8d %10.4f %12.2f\n", row.StrLen, row.FPGASec, row.UsefulGBs)
	}
	fmt.Fprintln(w, "  (short strings pay proportionally more offset+metadata overhead)")
}
