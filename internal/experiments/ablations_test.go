package experiments

import (
	"bytes"
	"testing"
)

func TestAblationGapHold(t *testing.T) {
	r, err := AblationGapHold(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.StatesSaved <= 0 {
		t.Error("gap-hold should save states across the corpus")
	}
	for _, row := range r.Rows {
		if row.StatesNoHold < row.States {
			t.Errorf("%s: no-hold uses fewer states (%d < %d)?",
				row.Pattern, row.StatesNoHold, row.States)
		}
		if row.CharsNoHold < row.Chars {
			t.Errorf("%s: no-hold uses fewer chars?", row.Pattern)
		}
	}
	// The multi-gap pattern shows the largest saving: three `.*` saved.
	var multi *GapHoldRow
	for i := range r.Rows {
		if r.Rows[i].Pattern == `one.*two.*three.*four` {
			multi = &r.Rows[i]
		}
	}
	if multi == nil || multi.StatesNoHold-multi.States != 3 {
		t.Errorf("multi-gap pattern should save 3 states: %+v", multi)
	}
}

func TestAblationArbiter(t *testing.T) {
	r, err := AblationArbiter(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Throughput is QPI-bound: within a few percent across batch sizes.
	base := r.Rows[2].QPS // batch 16
	for _, row := range r.Rows {
		if row.QPS < 0.9*base || row.QPS > 1.1*base {
			t.Errorf("batch %d: q/s %.1f strays from %.1f", row.GrantLines, row.QPS, base)
		}
	}
	// Latency penalty grows with the batch.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].LatencyPenaltyUS <= r.Rows[i-1].LatencyPenaltyUS {
			t.Error("latency penalty not increasing with batch size")
		}
	}
}

func TestAblationEngineConfig(t *testing.T) {
	r, err := AblationEngineConfig(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// All three are QPI-bound: batch throughput within 10%.
	for _, row := range r.Rows[1:] {
		if row.BatchQPS < 0.9*r.Rows[0].BatchQPS || row.BatchQPS > 1.1*r.Rows[0].BatchQPS {
			t.Errorf("%s: batch q/s %.1f vs 4x16 %.1f", row.Label, row.BatchQPS, r.Rows[0].BatchQPS)
		}
	}
	if r.Rows[0].ConcurrentQueries != 4 || r.Rows[2].ConcurrentQueries != 1 {
		t.Error("concurrency column wrong")
	}
}

func TestAblationSoftEngines(t *testing.T) {
	r, err := AblationSoftEngines(Config{SampleRows: 1000, Seed: 2, Selectivity: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BacktrackNS <= 0 || row.ThompsonNS <= 0 || row.DFANS <= 0 {
			t.Errorf("%s: missing timings %+v", row.Query, row)
		}
		if row.DFAStates <= 0 {
			t.Errorf("%s: no DFA states", row.Query)
		}
	}
}

func TestAblationSubstring(t *testing.T) {
	r, err := AblationSubstring(Config{SampleRows: 2000, Seed: 2, Selectivity: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// BM must examine far fewer bytes than the 64 B row.
		if row.BMComparisons >= 64 {
			t.Errorf("%q: BM comparisons %d per 64 B row — not skipping",
				row.Needle, row.BMComparisons)
		}
	}
	// Longer needles skip more.
	if r.Rows[2].BMComparisons >= r.Rows[0].BMComparisons {
		t.Errorf("longer needle should compare less: %d vs %d",
			r.Rows[2].BMComparisons, r.Rows[0].BMComparisons)
	}
}

func TestAblationRenders(t *testing.T) {
	var buf bytes.Buffer
	if r, err := AblationGapHold(quickCfg()); err == nil {
		r.Render(&buf)
	}
	if r, err := AblationArbiter(quickCfg()); err == nil {
		r.Render(&buf)
	}
	if r, err := AblationEngineConfig(quickCfg()); err == nil {
		r.Render(&buf)
	}
	if buf.Len() == 0 {
		t.Error("no render output")
	}
}

func TestAblationPrescan(t *testing.T) {
	r, err := AblationPrescan(Config{SampleRows: 3000, Seed: 4, Selectivity: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Prefix == "" {
			t.Errorf("%s: no prefix found", row.Query)
		}
		if row.StepsPrescan*3 > row.StepsPlain {
			t.Errorf("%s: prescan %f not ≪ plain %f", row.Query, row.StepsPrescan, row.StepsPlain)
		}
		if row.MonetDBFast >= row.MonetDBPlain {
			t.Errorf("%s: modelled time did not improve", row.Query)
		}
	}
}
