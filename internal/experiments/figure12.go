package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/mdb"
	"doppiodb/internal/sim"
	"doppiodb/internal/sql"
	"doppiodb/internal/workload"
)

// Figure-12 scale calibration (fitted to the figure's absolute values at
// SF 0.1; the preserved shapes are the 2× LIKE→ILIKE slowdown in MonetDB
// and the FPGA operator's ~30 % win with collation for free, §7.7).
const (
	q13ParallelBase = 1 * sim.Second          // join+aggregate, default pipeline
	q13SeqPipeBase  = 10500 * sim.Millisecond // join+aggregate under sequential_pipe (HUDF mode)
	q13ScanPerOrder = 93_333 * sim.Nanosecond // o_comment LIKE scan per order row
	q13FPGAScan     = 3 * sim.Millisecond     // comment column through the regex engines
)

// q13SF is the paper's scale factor.
const q13SF = 0.1

// Figure12Row is one variant's response time.
type Figure12Row struct {
	Variant string
	MonetDB float64 // seconds
	FPGA    float64
}

// Figure12Result reproduces Figure 12: TPC-H Q13 with LIKE vs ILIKE.
type Figure12Result struct {
	Rows []Figure12Row
	// Groups is the number of (c_count, custdist) result groups — the
	// functional answer, identical across variants by construction.
	Groups int
}

const q13LIKE = `
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON c_custkey = o_custkey
    AND o_comment NOT LIKE '%special%requests%'
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`

const q13ILIKE = `
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON c_custkey = o_custkey
    AND NOT o_comment ILIKE '%special%requests%'
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`

const q13FPGA = `
SELECT c_count, COUNT(*) AS custdist
FROM (
  SELECT c_custkey, count(o_orderkey)
  FROM customer
  LEFT OUTER JOIN orders ON c_custkey = o_custkey
    AND REGEXP_FPGA('special.*requests', o_comment) = 0
  GROUP BY c_custkey
) AS c_orders (c_custkey, c_count)
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC`

// Figure12 runs TPC-H Q13 functionally at a reduced scale factor and
// reports response times at the paper's SF 0.1 through the calibrated
// model.
func Figure12(cfg Config) (*Figure12Result, error) {
	cfg = cfg.withDefaults()
	// Functional execution at a small SF keeps the experiment quick; the
	// reported times are at the paper's SF 0.1.
	funcSF := 0.01
	tp := workload.GenerateTPCH(cfg.Seed, funcSF, 0.01)
	db := mdb.New(nil)
	eng := sql.NewEngine(db)
	cust, err := db.CreateTable("customer", mdb.ColSpec{Name: "c_custkey", Kind: mdb.KindInt})
	if err != nil {
		return nil, err
	}
	for _, c := range tp.Customers {
		if err := cust.AppendRow(c.CustKey); err != nil {
			return nil, err
		}
	}
	ord, err := db.CreateTable("orders",
		mdb.ColSpec{Name: "o_orderkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_custkey", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "o_comment", Kind: mdb.KindString})
	if err != nil {
		return nil, err
	}
	for _, o := range tp.Orders {
		if err := ord.AppendRow(o.OrderKey, o.CustKey, o.Comment); err != nil {
			return nil, err
		}
	}

	like, err := eng.Query(q13LIKE)
	if err != nil {
		return nil, err
	}
	ilike, err := eng.Query(q13ILIKE)
	if err != nil {
		return nil, err
	}
	hw, err := eng.Query(q13FPGA)
	if err != nil {
		return nil, err
	}
	if len(like.Rows) != len(hw.Rows) || len(like.Rows) != len(ilike.Rows) {
		return nil, fmt.Errorf("experiments: Q13 group counts disagree: LIKE %d, ILIKE %d, FPGA %d",
			len(like.Rows), len(ilike.Rows), len(hw.Rows))
	}

	orders := int(float64(workload.OrdersPerSF) * q13SF)
	scan := sim.Time(orders) * q13ScanPerOrder
	out := &Figure12Result{Groups: len(like.Rows)}
	out.Rows = append(out.Rows,
		Figure12Row{
			Variant: "Original (LIKE)",
			MonetDB: (q13ParallelBase + scan).Seconds(),
			FPGA:    (q13SeqPipeBase + q13FPGAScan).Seconds(),
		},
		Figure12Row{
			Variant: "Case-Insensitive (ILIKE)",
			MonetDB: (q13ParallelBase + 2*scan).Seconds(),
			// Collation costs nothing on the FPGA (§6.4).
			FPGA: (q13SeqPipeBase + q13FPGAScan).Seconds(),
		},
	)
	return out, nil
}

// Render prints the comparison.
func (r *Figure12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 12: TPC-H Query 13, SF 0.1 (seconds)")
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "variant", "MonetDB", "FPGA")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-28s %10.1f %10.1f\n", row.Variant, row.MonetDB, row.FPGA)
	}
	fmt.Fprintf(w, "  result groups: %d; paper shape: ILIKE doubles MonetDB, FPGA ~30%% faster than LIKE and case-insensitive for free\n", r.Groups)
}
