package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/bat"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/workload"
)

// PlatformResult reproduces the §2.2 platform microbenchmarks: the CPU and
// FPGA read bandwidths, the single-engine plateau, and the QPI saturation
// point.
type PlatformResult struct {
	CPUReadGBs       float64 // CPU-side read bandwidth
	QPIReadGBs       float64 // FPGA-side effective read bandwidth
	SingleEngineGBs  float64 // one engine with switch stalls
	TwoEngineGBs     float64 // latency hidden by a second engine
	EnginePeakGBs    float64 // 16 PU x 400 MHz
	AggregatePeakGBs float64 // 4 engines
	NUMABandwidthGap float64 // CPU/QPI ratio — the §1 limitation note
}

// Platform runs the microbenchmarks on the memory model.
func Platform(cfg Config) (*PlatformResult, error) {
	params := memmodel.Default()
	out := &PlatformResult{
		CPUReadGBs:       params.CPUBandwidth / 1e9,
		QPIReadGBs:       params.QPIBandwidth / 1e9,
		EnginePeakGBs:    params.EngineBandwidth / 1e9,
		AggregatePeakGBs: 4 * params.EngineBandwidth / 1e9,
	}
	out.NUMABandwidthGap = out.CPUReadGBs / out.QPIReadGBs

	job := memmodel.JobForStrings(PaperRows, workload.DefaultStrLen,
		bat.OffsetWidth, bat.EntryStride(workload.DefaultStrLen), 2)
	one := memmodel.Simulate(params, [][]memmodel.Job{{job, job, job}})
	out.SingleEngineGBs = float64(one.BytesMoved) / one.Finish.Seconds() / 1e9
	two := memmodel.Simulate(params, [][]memmodel.Job{{job, job}, {job, job}})
	out.TwoEngineGBs = float64(two.BytesMoved) / two.Finish.Seconds() / 1e9
	return out, nil
}

// Render prints the microbenchmarks.
func (r *PlatformResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Platform microbenchmarks (§2.2, §7.3)")
	fmt.Fprintf(w, "  CPU read bandwidth:        %6.1f GB/s (paper: ~25, below the theoretical 59.7)\n", r.CPUReadGBs)
	fmt.Fprintf(w, "  FPGA read over QPI:        %6.1f GB/s (paper: ~6.5)\n", r.QPIReadGBs)
	fmt.Fprintf(w, "  one engine sustained:      %6.2f GB/s (paper: ~5.89; switch stalls)\n", r.SingleEngineGBs)
	fmt.Fprintf(w, "  two engines sustained:     %6.2f GB/s (latency hidden, QPI-bound)\n", r.TwoEngineGBs)
	fmt.Fprintf(w, "  engine processing peak:    %6.1f GB/s (16 PU x 400 MB/s)\n", r.EnginePeakGBs)
	fmt.Fprintf(w, "  4-engine processing peak:  %6.1f GB/s (the paper's 25.6 headroom)\n", r.AggregatePeakGBs)
	fmt.Fprintf(w, "  NUMA bandwidth gap:        %6.1fx (the §1 'NUMA bandwidth too low' limitation)\n", r.NUMABandwidthGap)
}
