package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps functional sampling small for unit tests.
func quickCfg() Config { return Config{SampleRows: 4000, Seed: 3, Selectivity: 0.2} }

func TestTable1Shape(t *testing.T) {
	r, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	contains, like, regexp := r.Rows[0], r.Rows[1], r.Rows[2]
	// The trend of Table 1: each operator an order of magnitude apart.
	if !(contains.MonetDB < like.MonetDB && like.MonetDB < regexp.MonetDB) {
		t.Errorf("MonetDB ordering broken: %v %v %v",
			contains.MonetDB, like.MonetDB, regexp.MonetDB)
	}
	if regexp.MonetDB/like.MonetDB < 8 {
		t.Errorf("REGEXP/LIKE = %.1f, want ≥8", regexp.MonetDB/like.MonetDB)
	}
	// CONTAINS and LIKE land within 2x of the published values; the
	// regex constants trade Table 1's absolute for Figures 9/11's
	// relative shapes (~3x off, see internal/perf).
	for _, row := range []Table1Row{contains, like} {
		ratio := row.MonetDB / row.PaperMonetDB
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: measured %.3f vs paper %.3f (ratio %.2f)",
				row.Query, row.MonetDB, row.PaperMonetDB, ratio)
		}
	}
	if ratio := regexp.MonetDB / regexp.PaperMonetDB; ratio < 0.25 || ratio > 4 {
		t.Errorf("REGEXP: measured %.3f vs paper %.3f (ratio %.2f)",
			regexp.MonetDB, regexp.PaperMonetDB, ratio)
	}
	if r.IndexCost < 20*60 {
		t.Errorf("index rebuild %.0fs, want >20min", r.IndexCost)
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points: %d", len(r.Points))
	}
	for _, p := range r.Points {
		// Within 10% of the figure's values — the closed-form model and
		// the measured concurrent run both.
		if p.PaperQPS > 0 {
			if ratio := p.QPS / p.PaperQPS; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%d engines: modeled %.1f q/s vs paper %.1f", p.Engines, p.QPS, p.PaperQPS)
			}
			if ratio := p.Measured / p.PaperQPS; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%d engines: measured %.1f q/s vs paper %.1f", p.Engines, p.Measured, p.PaperQPS)
			}
		}
	}
	// Saturation: 2 -> 4 engines adds (almost) nothing.
	if diff := r.Points[3].QPS - r.Points[1].QPS; diff > 1.5 {
		t.Errorf("4 engines gained %.1f q/s over 2; QPI should bound", diff)
	}
	if diff := r.Points[3].Measured - r.Points[1].Measured; diff > 1.5 {
		t.Errorf("measured: 4 engines gained %.1f q/s over 2; QPI should bound", diff)
	}
	// Capacity line scales linearly with engines.
	if r.Points[3].Capacity < 3.9*r.Points[0].Capacity {
		t.Error("capacity line not linear")
	}
	if r.SingleEngineRawGBs < 5.4 || r.SingleEngineRawGBs > 6.3 {
		t.Errorf("single-engine raw %.2f GB/s, want ≈5.89", r.SingleEngineRawGBs)
	}
	if r.MeasuredRawGBs < 5.4 || r.MeasuredRawGBs > 6.3 {
		t.Errorf("measured single-engine raw %.2f GB/s, want ≈5.89", r.MeasuredRawGBs)
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byQ := map[string][]Figure9Point{}
	for _, p := range r.Points {
		byQ[p.Query] = append(byQ[p.Query], p)
	}
	// FPGA lines are complexity-independent: identical across queries.
	for i := range byQ["Q1"] {
		if byQ["Q1"][i].FPGA != byQ["Q3"][i].FPGA {
			t.Error("FPGA time depends on query complexity")
		}
	}
	// Q1: the cheap substring query is where software is competitive
	// (the paper reports MonetDB slightly ahead; our Table-1-calibrated
	// LIKE cost leaves the FPGA ahead by ~10x — the smallest gap of the
	// four queries, recorded in EXPERIMENTS.md).
	last := len(figure9Sizes) - 1
	q1 := byQ["Q1"][3] // 2.5M records
	if r := q1.MonetDB / q1.FPGA; r < 1 || r > 15 {
		t.Errorf("Q1 at 2.5M: MonetDB/FPGA = %.1f, want the closest race of all queries", r)
	}
	for _, q := range []string{"Q2", "Q3", "Q4"} {
		p := byQ[q][3]
		su := p.MonetDB / p.FPGA
		if su < 30 || su > 400 {
			t.Errorf("%s at 2.5M: speedup %.1f, want one to two orders of magnitude", q, su)
		}
		if su < 3*q1.MonetDB/q1.FPGA {
			t.Errorf("%s speedup %.1f should dwarf Q1's", q, su)
		}
	}
	// MonetDB flat region: Q1 response equal at 320k and 1.25M (the
	// parallelization floor), then growing.
	if byQ["Q1"][0].MonetDB != byQ["Q1"][2].MonetDB {
		t.Errorf("Q1 MonetDB not flat in the floor region: %.3f vs %.3f",
			byQ["Q1"][0].MonetDB, byQ["Q1"][2].MonetDB)
	}
	if byQ["Q1"][last].MonetDB <= byQ["Q1"][2].MonetDB {
		t.Error("Q1 MonetDB does not grow past the floor")
	}
	// DBx scales linearly with size for every query.
	for q, pts := range byQ {
		r41 := pts[3].DBx / pts[0].DBx
		if r41 < 7 || r41 > 8.5 { // 2.5M / 320k ≈ 7.8
			t.Errorf("%s: DBx not linear: %.2f", q, r41)
		}
		// FPGA also linear in size.
		rf := pts[last].FPGA / pts[3].FPGA
		if rf < 3.5 || rf > 4.5 { // 10M / 2.5M
			t.Errorf("%s: FPGA not linear: %.2f", q, rf)
		}
		// FPGA(ideal) strictly faster than FPGA.
		for _, p := range pts {
			if p.FPGAIdeal >= p.FPGA {
				t.Errorf("%s@%d: ideal %.4f not faster than %.4f",
					q, p.Records, p.FPGAIdeal, p.FPGA)
			}
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	r, err := Figure10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ConfigGen > 0.001 { // <1µs in ms
			t.Errorf("%s: config gen %.6f ms, want <1µs", row.Query, row.ConfigGen)
		}
		if row.Hardware <= 0 || row.Total < row.Hardware {
			t.Errorf("%s: breakdown inconsistent: %+v", row.Query, row)
		}
		// 10k tuples: total well under a millisecond... the paper's
		// plot tops at ~0.25 ms; ours should be the same order.
		if row.Total > 1.0 {
			t.Errorf("%s: total %.3f ms too large for 10k tuples", row.Query, row.Total)
		}
		// Identical across queries: complexity-independent.
		if row.Hardware != r.Rows[0].Hardware {
			t.Errorf("hardware time differs across queries: %v vs %v",
				row.Hardware, r.Rows[0].Hardware)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	r, err := Figure11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byQC := map[string]map[int]Figure11Point{}
	for _, p := range r.Points {
		if byQC[p.Query] == nil {
			byQC[p.Query] = map[int]Figure11Point{}
		}
		byQC[p.Query][p.Clients] = p
	}
	// MonetDB and FPGA flat in clients; DBx linear then capped.
	for q, m := range byQC {
		if m[1].MonetDB != m[10].MonetDB {
			t.Errorf("%s: MonetDB not flat", q)
		}
		if m[1].FPGA != m[10].FPGA {
			t.Errorf("%s: FPGA not flat", q)
		}
		// The measured line comes from live concurrent runs, so it is
		// flat only within tolerance (paper shape: QPI-bound at every
		// client count). 10% per acceptance.
		lo, hi := m[1].MeasuredFPGA, m[1].MeasuredFPGA
		for c := 1; c <= 10; c++ {
			v := m[c].MeasuredFPGA
			if v <= 0 {
				t.Fatalf("%s: no measured FPGA rate at %d clients", q, c)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi/lo > 1.1 {
			t.Errorf("%s: measured FPGA not flat in clients: min %.1f max %.1f", q, lo, hi)
		}
		// And it lands near the modeled QPI-bound rate.
		if ratio := m[10].MeasuredFPGA / m[10].FPGA; ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: measured FPGA %.1f vs modeled %.1f", q, m[10].MeasuredFPGA, m[10].FPGA)
		}
		if r5 := m[5].DBx / m[1].DBx; r5 < 4.9 || r5 > 5.1 {
			t.Errorf("%s: DBx not linear in clients: %.2f", q, r5)
		}
	}
	// Q1: DBx at 10 clients can match the FPGA (§7.6).
	q1 := byQC["Q1"]
	if q1[10].DBx < 0.3*q1[10].FPGA {
		t.Errorf("Q1 DBx@10 %.1f should approach FPGA %.1f", q1[10].DBx, q1[10].FPGA)
	}
	// Complex queries: MonetDB 5-30x slower than its Q1.
	for _, q := range []string{"Q2", "Q3", "Q4"} {
		ratio := byQC["Q1"][1].MonetDB / byQC[q][1].MonetDB
		if ratio < 5 || ratio > 40 {
			t.Errorf("%s: MonetDB Q1/complex throughput ratio %.1f", q, ratio)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	like, ilike := r.Rows[0], r.Rows[1]
	if f := ilike.MonetDB / like.MonetDB; f < 1.7 || f > 2.2 {
		t.Errorf("ILIKE/LIKE = %.2f, want ≈2 (paper)", f)
	}
	if ilike.FPGA != like.FPGA {
		t.Error("FPGA collation should be free")
	}
	if f := like.FPGA / like.MonetDB; f < 0.55 || f > 0.85 {
		t.Errorf("FPGA/MonetDB = %.2f, want ≈0.7 (30%% faster)", f)
	}
	if r.Groups == 0 {
		t.Error("no functional result groups")
	}
}

func TestFigure13Shape(t *testing.T) {
	r, err := Figure13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points: %d", len(r.Points))
	}
	// Hybrid throughput declines monotonically with selectivity.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].HybridQPS >= r.Points[i-1].HybridQPS {
			t.Errorf("hybrid not declining at sel %.1f: %.2f -> %.2f",
				r.Points[i].Selectivity, r.Points[i-1].HybridQPS, r.Points[i].HybridQPS)
		}
	}
	// At selectivity 0 the hybrid runs at the FPGA-bound rate.
	if r.Points[0].HybridQPS < 20 {
		t.Errorf("hybrid at sel=0: %.1f q/s, want ≈FPGA rate", r.Points[0].HybridQPS)
	}
	// MonetDB flat across selectivities; hybrid always wins.
	for _, p := range r.Points {
		if p.HybridQPS <= p.MonetDBQPS {
			t.Errorf("hybrid %.2f not above MonetDB %.2f at sel %.1f",
				p.HybridQPS, p.MonetDBQPS, p.Selectivity)
		}
	}
	if r.MaxSpeedup < 13 {
		t.Errorf("max speedup %.1f, want ≥ the paper's 13x", r.MaxSpeedup)
	}
}

func TestFigure14Shapes(t *testing.T) {
	a, err := Figure14a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var def, five *Figure14aRow
	for i := range a.Rows {
		switch a.Rows[i].Label {
		case "4x16":
			def = &a.Rows[i]
		case "5x16":
			five = &a.Rows[i]
		}
	}
	if def == nil || five == nil {
		t.Fatal("missing configs")
	}
	if def.Total < 78 || def.Total > 82 || !def.TimingMet {
		t.Errorf("4x16: %.1f%% met=%v, want ~80%% met", def.Total, def.TimingMet)
	}
	if five.TimingMet {
		t.Error("5x16 must fail timing")
	}
	if def.Bandwidth != 25.6 {
		t.Errorf("4x16 bandwidth %.1f, want 25.6", def.Bandwidth)
	}

	b, err := Figure14b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b.Rows); i++ {
		if b.Rows[i].Total <= b.Rows[i-1].Total {
			t.Error("14b not increasing")
		}
		if b.Rows[i].BRAM != b.Rows[0].BRAM {
			t.Error("14b BRAM should be constant")
		}
	}
	if b.Rows[0].BRAM < 41 || b.Rows[0].BRAM > 43 {
		t.Errorf("BRAM %.1f, want 42", b.Rows[0].BRAM)
	}

	c, err := Figure14c(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Quadratic: increments grow.
	d1 := c.Rows[1].Total - c.Rows[0].Total
	d3 := c.Rows[3].Total - c.Rows[2].Total
	if d3 <= d1 {
		t.Errorf("14c not super-linear: %.2f vs %.2f", d1, d3)
	}
}

func TestFigure15Shape(t *testing.T) {
	r, err := Figure15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible400 == 0 {
		t.Fatal("no feasible 400 MHz configurations")
	}
	if r.Feasible200 < 2*r.Feasible400 {
		t.Errorf("200 MHz space %d not ≫ 400 MHz %d", r.Feasible200, r.Feasible400)
	}
	// Every 400 MHz-feasible cell is 200 MHz-feasible (monotone).
	feasible := map[[2]int]map[int]bool{}
	for _, c := range r.Cells {
		k := [2]int{c.States, c.Chars}
		if feasible[k] == nil {
			feasible[k] = map[int]bool{}
		}
		feasible[k][c.ClockMHz] = c.Feasible
	}
	for k, m := range feasible {
		if m[400] && !m[200] {
			t.Errorf("cell %v feasible at 400 but not 200 MHz", k)
		}
	}
}

func TestRenderAll(t *testing.T) {
	// Every renderer must produce non-empty output without panicking.
	cfg := quickCfg()
	var buf bytes.Buffer
	if r, err := Table1(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure8(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure10(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure12(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure14a(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure15(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Figure 8", "Figure 10", "Figure 12", "Figure 14a", "Figure 15"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestPlatformMicrobench(t *testing.T) {
	r, err := Platform(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUReadGBs != 25 || r.QPIReadGBs != 6.5 {
		t.Errorf("platform constants: %+v", r)
	}
	if r.SingleEngineGBs < 5.4 || r.SingleEngineGBs > 6.2 {
		t.Errorf("single engine %.2f GB/s, want ≈5.89", r.SingleEngineGBs)
	}
	if r.TwoEngineGBs <= r.SingleEngineGBs {
		t.Error("second engine should lift sustained bandwidth")
	}
	if r.AggregatePeakGBs != 25.6 {
		t.Errorf("aggregate peak %.1f, want 25.6", r.AggregatePeakGBs)
	}
	if r.NUMABandwidthGap < 3.5 || r.NUMABandwidthGap > 4.2 {
		t.Errorf("NUMA gap %.1f, want ~3.8x", r.NUMABandwidthGap)
	}
}

func TestNextGenProjection(t *testing.T) {
	r, err := NextGen(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("platforms: %d", len(r.Rows))
	}
	// Each generation strictly improves the response time.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Q1Sec >= r.Rows[i-1].Q1Sec {
			t.Errorf("%s (%.4fs) not faster than %s (%.4fs)",
				r.Rows[i].Platform, r.Rows[i].Q1Sec,
				r.Rows[i-1].Platform, r.Rows[i-1].Q1Sec)
		}
	}
	// §9's point: with more bandwidth the FPGA wins Q1 decisively.
	if last := r.Rows[2]; last.Q1VsMonetDB > 0.1 {
		t.Errorf("unconstrained platform should crush MonetDB Q1: ratio %.2f", last.Q1VsMonetDB)
	}
	// String-length sweep: useful bandwidth grows with string length.
	sw := r.StringLenSweep
	if len(sw) != 5 {
		t.Fatalf("sweep points: %d", len(sw))
	}
	for i := 1; i < len(sw); i++ {
		if sw[i].UsefulGBs <= sw[i-1].UsefulGBs {
			t.Errorf("useful bandwidth not increasing with string length: %v", sw)
		}
	}
}

func TestRemainingRenders(t *testing.T) {
	cfg := quickCfg()
	var buf bytes.Buffer
	if r, err := Figure9(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure11(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure13(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure14b(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Figure14c(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := Platform(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := NextGen(cfg); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := AblationSoftEngines(Config{SampleRows: 500}); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	if r, err := AblationSubstring(Config{SampleRows: 500}); err != nil {
		t.Fatal(err)
	} else {
		r.Render(&buf)
	}
	for _, want := range []string{"Figure 9", "Figure 11", "Figure 13", "Platform", "Next-generation"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in renders", want)
		}
	}
}
