package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"doppiodb/internal/bat"
	"doppiodb/internal/core"
	"doppiodb/internal/fpga"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// This file drives the throughput experiments the way the paper ran them:
// N concurrent database clients hammering the shared FPGA, rather than a
// closed-form batch simulation. Each client goroutine issues back-to-back
// REGEXP_FPGA queries through the full stack (operator, HAL, device
// runtime); the device runtime's admission layer merges their jobs into
// shared arbitration rounds, and throughput is read off the simulated
// device timeline. The functional engines scan MeasuredRows per query and
// the rate is volume-normalized to the paper's 2.5 M-row query, which is
// sound because the device consumes input at a constant per-byte rate
// (property II of the PU design, §5).

// MeasuredRate is one concurrent throughput measurement.
type MeasuredRate struct {
	Engines int
	Clients int
	Queries int
	Rows    int
	// RawGBs is the QPI traffic the device runtime moved divided by the
	// simulated span of the run — the achieved link rate.
	RawGBs float64
	// PaperQPS is the rate expressed in paper-sized queries per second
	// (2.5 M tuples each), directly comparable to Figures 8 and 11.
	PaperQPS float64
	// MaxQueueWait is the longest admission-queue delay any query saw.
	MaxQueueWaitSeconds float64
}

// paperQueryVolume is the QPI data volume of one paper-sized query:
// 2.5 M strings in the BAT wire layout.
func paperQueryVolume() float64 {
	return float64(PaperRows) * float64(bat.EntryStride(workload.DefaultStrLen)+bat.OffsetWidth+2)
}

// measureThroughput runs clients concurrent goroutines, each issuing
// perClient hardware queries over a MeasuredRows-row table on a fresh
// system with the given engine count, and reports the achieved rate on
// the simulated device timeline.
func measureThroughput(cfg Config, engines, clients, perClient int) (*MeasuredRate, error) {
	dep := fpga.DefaultDeployment()
	dep.Engines = engines
	s, err := core.NewSystem(core.Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	g := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen)
	rows, _ := g.Table(cfg.MeasuredRows, workload.HitQ1, cfg.Selectivity)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		return nil, err
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		return nil, err
	}

	start := s.HAL.SimEpoch()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		bytes    int64
		maxWait  float64
		firstErr error
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				res, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				bytes += res.HW.Bytes
				if w := res.HW.QueueWait.Seconds(); w > maxWait {
					maxWait = w
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	span := s.HAL.SimEpoch() - start
	if span <= 0 {
		return nil, fmt.Errorf("experiments: measured run advanced no simulated time")
	}
	rate := float64(bytes) / span.Seconds()
	return &MeasuredRate{
		Engines:             engines,
		Clients:             clients,
		Queries:             clients * perClient,
		Rows:                cfg.MeasuredRows,
		RawGBs:              rate / 1e9,
		PaperQPS:            rate / paperQueryVolume(),
		MaxQueueWaitSeconds: maxWait,
	}, nil
}

// ThroughputResult is the measured concurrent-throughput sweep
// (doppiobench -experiment throughput -clients N): achieved device rates
// for 1..Clients concurrent client goroutines on the default deployment.
type ThroughputResult struct {
	Rates []MeasuredRate
}

// Throughput sweeps the client count from 1 to cfg.Clients, measuring each
// point with live concurrent sessions through the device runtime.
func Throughput(cfg Config) (*ThroughputResult, error) {
	cfg = cfg.withDefaults()
	out := &ThroughputResult{}
	for clients := 1; clients <= cfg.Clients; clients++ {
		m, err := measureThroughput(cfg, 4, clients, 3)
		if err != nil {
			return nil, err
		}
		out.Rates = append(out.Rates, *m)
	}
	return out, nil
}

// Render prints the sweep.
func (r *ThroughputResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Measured concurrent throughput (paper-sized queries/s, live sessions)")
	fmt.Fprintf(w, "  %-8s %10s %12s %12s %16s\n", "clients", "queries", "q/s", "raw GB/s", "max queue wait")
	for _, m := range r.Rates {
		fmt.Fprintf(w, "  %-8d %10d %12.1f %12.2f %15.6fs\n",
			m.Clients, m.Queries, m.PaperQPS, m.RawGBs, m.MaxQueueWaitSeconds)
	}
}
