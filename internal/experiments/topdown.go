package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"doppiodb/internal/core"
	"doppiodb/internal/fpga"
	"doppiodb/internal/token"
	"doppiodb/internal/topdown"
	"doppiodb/internal/workload"
)

// This file is the bottleneck-attribution sweep: the same query on fresh
// 1..4-engine fabrics, read through the topdown accounting instead of the
// throughput counters. It reproduces §7.3's saturation story as verdicts:
// a lone engine cannot outrun the QPI link (compute-bound, link near 90%
// busy), while four engines contending for the same link spend most of
// their cycles waiting on grants (memory-bound, link pinned ~99%).
//
// The sweep runs a single client issuing back-to-back queries — concurrency
// would push every query into the admission queue and turn the sweep
// queue-bound, hiding the fabric-side flip the experiment is after — and
// everything downstream is simulated time, so reruns are bit-identical.

// topdownEngineSweep is the engine counts the sweep visits.
var topdownEngineSweep = []int{1, 2, 3, 4}

// topdownQueries is how many back-to-back queries each point issues: enough
// for the cumulative fabric ledgers to dwarf the first query's config
// generation, small enough to keep the sweep in tier-1 time.
const topdownQueries = 6

// TopdownPoint is one engine count's verdict plus the fabric ledger shares
// behind it.
type TopdownPoint struct {
	Engines int `json:"engines"`
	Queries int `json:"queries"`
	// Verdict is the sweep point's consensus per-query verdict (plurality;
	// deterministic). Verdicts is the full tally.
	Verdict  string           `json:"verdict"`
	Verdicts map[string]int64 `json:"verdicts"`
	// Fabric ledger shares, in percent of the cumulative engine walls.
	BusyPct        float64 `json:"busy_pct"`
	StallInputPct  float64 `json:"stall_input_pct"`
	StallSwitchPct float64 `json:"stall_switch_pct"`
	StallOutputPct float64 `json:"stall_output_pct"`
	ConfigPct      float64 `json:"config_pct"`
	IdlePct        float64 `json:"idle_pct"`
	// LinkBusyPct is the QPI link's busy share of its wall.
	LinkBusyPct float64 `json:"link_busy_pct"`
	// RawGBs is the achieved link rate over the run's simulated span.
	RawGBs float64 `json:"raw_gbs"`
	// Conserved reports the hard invariant: every engine ledger and the
	// link ledger summed exactly to their walls.
	Conserved bool `json:"conserved"`
}

// TopdownResult is the sweep: one point per engine count.
type TopdownResult struct {
	Points []TopdownPoint `json:"points"`
}

// Topdown runs the bottleneck-attribution sweep.
func Topdown(cfg Config) (*TopdownResult, error) {
	cfg = cfg.withDefaults()
	out := &TopdownResult{}
	for _, engines := range topdownEngineSweep {
		p, err := topdownPoint(cfg, engines)
		if err != nil {
			return nil, fmt.Errorf("experiments: topdown %d engine(s): %w", engines, err)
		}
		out.Points = append(out.Points, *p)
	}
	return out, nil
}

func topdownPoint(cfg Config, engines int) (*TopdownPoint, error) {
	dep := fpga.DefaultDeployment()
	dep.Engines = engines
	s, err := core.NewSystem(core.Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	g := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen)
	rows, _ := g.Table(cfg.MeasuredRows, workload.HitQ1, cfg.Selectivity)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		return nil, err
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		return nil, err
	}

	start := s.HAL.SimEpoch()
	verdicts := make(map[string]int64)
	var bytes int64
	for q := 0; q < topdownQueries; q++ {
		res, err := s.Exec(context.Background(), col.Strs, workload.Q1Regex, token.Options{})
		if err != nil {
			return nil, err
		}
		bytes += res.HW.Bytes
		if res.Topdown != nil {
			verdicts[string(res.Topdown.Verdict)]++
		}
	}
	span := s.HAL.SimEpoch() - start

	fabric := s.HAL.Topdown()
	total := fabric.Total()
	p := &TopdownPoint{
		Engines:        engines,
		Queries:        topdownQueries,
		Verdict:        pluralityVerdict(verdicts),
		Verdicts:       verdicts,
		BusyPct:        topdown.Pct(total.Busy, total.Wall),
		StallInputPct:  topdown.Pct(total.StallInput, total.Wall),
		StallSwitchPct: topdown.Pct(total.StallSwitch, total.Wall),
		StallOutputPct: topdown.Pct(total.StallOutput, total.Wall),
		ConfigPct:      topdown.Pct(total.Config, total.Wall),
		IdlePct:        topdown.Pct(total.Idle, total.Wall),
		LinkBusyPct:    fabric.Link.BusyPct(),
		Conserved:      fabric.Conserved(),
	}
	if span > 0 {
		p.RawGBs = float64(bytes) / span.Seconds() / 1e9
	}
	return p, nil
}

// pluralityVerdict picks the most frequent verdict, breaking count ties by
// name so the result is deterministic.
func pluralityVerdict(tally map[string]int64) string {
	names := make([]string, 0, len(tally))
	for v := range tally {
		names = append(names, v)
	}
	sort.Strings(names)
	best := ""
	var n int64 = -1
	for _, v := range names {
		if tally[v] > n {
			best, n = v, tally[v]
		}
	}
	return best
}

// Render prints the sweep next to §7.3's expectation.
func (r *TopdownResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Topdown bottleneck attribution (1 client, back-to-back Q1, fresh fabric per point)")
	fmt.Fprintf(w, "  %-7s %-14s %6s %9s %8s %7s %8s  %s\n",
		"engines", "verdict", "busy%", "stall-in%", "config%", "idle%", "qpi-b%", "conservation")
	for _, p := range r.Points {
		cons := "exact"
		if !p.Conserved {
			cons = "VIOLATED"
		}
		fmt.Fprintf(w, "  %-7d %-14s %6.2f %9.2f %8.2f %7.2f %8.2f  %s\n",
			p.Engines, p.Verdict, p.BusyPct, p.StallInputPct,
			p.ConfigPct, p.IdlePct, p.LinkBusyPct, cons)
	}
	fmt.Fprintln(w, "  expected: compute-bound at 1 engine (link has headroom), memory-bound by 4 (QPI saturated, §7.3)")
}
