package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/rowdb"
	"doppiodb/internal/workload"
)

// Table1Row is one operator's response times (seconds).
type Table1Row struct {
	Query        string
	MonetDB      float64
	DBx          float64
	PaperMonetDB float64 // published value; 0 = not published
	PaperDBx     float64
}

// Table1Result reproduces Table 1: string matching with CONTAINS, LIKE and
// REGEXP_LIKE on 2.5 M records.
type Table1Result struct {
	Rows      []Table1Row
	IndexCost float64 // CONTAINS index (re)build, seconds (§7.2: >20 min)
}

// Table1 runs the experiment.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()
	rows, _ := genTable(cfg, workload.HitTable1)

	// MonetDB side.
	mdbDB := mdb.New(nil)
	mt, err := mdbDB.LoadAddressTable("address_table", rows)
	if err != nil {
		return nil, err
	}
	// DBx side.
	rdb := rowdb.New()
	rt, err := rdb.CreateTable("address_table",
		rowdb.ColDef{Name: "id", Kind: rowdb.KindInt},
		rowdb.ColDef{Name: "address_string", Kind: rowdb.KindString})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if err := rt.Insert(int32(i), r); err != nil {
			return nil, err
		}
	}
	if _, err := rdb.BuildContainsIndex(rt, "address_string"); err != nil {
		return nil, err
	}

	out := &Table1Result{IndexCost: model.IndexBuild(PaperRows).Seconds()}

	// CONTAINS.
	cSel, err := mdbDB.SelectContains(mt, "address_string", workload.Table1Contains)
	if err != nil {
		return nil, err
	}
	_, cWork, err := rdb.ContainsCount(rt, "address_string", workload.Table1Contains)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Table1Row{
		Query:        "CONTAINS('Alan & Turing & Cheshire')",
		MonetDB:      model.ContainsLookup(scaleWork(cSel.Work, cfg.SampleRows, PaperRows), true).Seconds(),
		DBx:          model.ContainsLookup(scaleWork(cWork, cfg.SampleRows, PaperRows), false).Seconds(),
		PaperMonetDB: 0.033, PaperDBx: 0.021,
	})

	// LIKE.
	lSel, err := mdbDB.SelectLike(mt, "address_string", workload.Table1Like, false)
	if err != nil {
		return nil, err
	}
	lPred, err := rowdb.Like("address_string", workload.Table1Like, false)
	if err != nil {
		return nil, err
	}
	_, lWork, err := rdb.SelectCount(rt, lPred)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Table1Row{
		Query:        "LIKE '%Alan%Turing%Cheshire%'",
		MonetDB:      model.MonetDBScan(scaleWork(lSel.Work, cfg.SampleRows, PaperRows), true).Seconds(),
		DBx:          model.DBXScan(scaleWork(lWork, cfg.SampleRows, PaperRows)).Seconds(),
		PaperMonetDB: 0.431, PaperDBx: 0.361,
	})

	// REGEXP_LIKE (the paper leaves DBx's cell blank; we publish ours).
	rSel, err := mdbDB.SelectRegexp(mt, "address_string", workload.Table1Regex, false)
	if err != nil {
		return nil, err
	}
	rPred, err := rowdb.Regexp("address_string", workload.Table1Regex, false)
	if err != nil {
		return nil, err
	}
	_, rWork, err := rdb.SelectCount(rt, rPred)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, Table1Row{
		Query:        "REGEXP_LIKE('Alan.*Turing.*Cheshire')",
		MonetDB:      model.MonetDBScan(scaleWork(rSel.Work, cfg.SampleRows, PaperRows), true).Seconds(),
		DBx:          model.DBXScan(scaleWork(rWork, cfg.SampleRows, PaperRows)).Seconds(),
		PaperMonetDB: 8.864, PaperDBx: 0,
	})
	return out, nil
}

// Render prints the table next to the paper's values.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: string matching operators, 2.5 Mio. records (seconds)")
	fmt.Fprintf(w, "  %-42s %10s %10s %10s %10s\n",
		"Query (WHERE clause)", "MonetDB", "paper", "DBx", "paper")
	for _, row := range r.Rows {
		paperM, paperD := "-", "-"
		if row.PaperMonetDB > 0 {
			paperM = fmt.Sprintf("%.3f", row.PaperMonetDB)
		}
		if row.PaperDBx > 0 {
			paperD = fmt.Sprintf("%.3f", row.PaperDBx)
		}
		fmt.Fprintf(w, "  %-42s %10.3f %10s %10.3f %10s\n",
			row.Query, row.MonetDB, paperM, row.DBx, paperD)
	}
	fmt.Fprintf(w, "  CONTAINS index rebuild for 2.5M tuples: %.0f s (paper: >20 min)\n",
		r.IndexCost)
}
