package experiments

import (
	"fmt"
	"io"
	"sync"

	"doppiodb/internal/core"
	"doppiodb/internal/sim"
	"doppiodb/internal/sql"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/workload"
)

// The repeated-pattern experiment is the acceptance run for the physical-
// plan layer's two caches. A fleet of clients issues the same REGEXP_LIKE
// query through the SQL engine against one hardware-backed system, in
// three passes:
//
//   - cold: one query on a fresh system — the plan cache misses, the cost
//     model prices the candidates, and config generation compiles the
//     Glushkov automaton into a 512-bit vector.
//   - warm: clients × rounds repeats of the same statement — every plan
//     compiles from the cache (placement decision reused, zero simulated
//     config-generation time via the core config cache).
//   - shared: a fresh system with the shared-scan coalescer on; every
//     round barrier-starts all clients on the same pattern, so concurrent
//     scans merge into fewer HAL job groups than queries while each query
//     still gets its own attributed result.
//
// CI gates on warm.plan_cache_hits > 0, warm.compile_ns < cold.compile_ns,
// shared.job_groups < shared.queries, shared.followers >= 1, and the
// ledger identity shared.leaders + shared.followers == shared.queries.

// RepeatPass is one pass's ledger.
type RepeatPass struct {
	Label   string `json:"label"`
	Queries int64  `json:"queries"`
	// Matches is the per-query match count (identical across the pass by
	// construction; divergence fails the experiment).
	Matches int `json:"matches"`
	// Plan-cache and config-cache counter deltas over the pass.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	ConfigCacheHits int64 `json:"config_cache_hits"`
	// CompileNS is the summed simulated config-generation time of the
	// pass's queries, in nanoseconds: the phase a cached plan skips.
	CompileNS int64 `json:"compile_ns"`
	// JobGroups is the HAL dispatch delta: with coalescing, fewer groups
	// than queries.
	JobGroups int64 `json:"job_groups"`
	// Leaders/Followers is the shared-scan ledger (leaders + followers ==
	// queries when every query offloads).
	Leaders   int64 `json:"leaders"`
	Followers int64 `json:"followers"`
}

// RepeatResult is the three-pass report.
type RepeatResult struct {
	Clients int    `json:"clients"`
	Rounds  int    `json:"rounds"`
	Rows    int    `json:"rows"`
	Pattern string `json:"pattern"`

	Cold   RepeatPass `json:"cold"`
	Warm   RepeatPass `json:"warm"`
	Shared RepeatPass `json:"shared"`
}

// repeatRounds is the per-client round count of the warm and shared
// passes: enough repeats that cache effects dominate the ledger.
const repeatRounds = 3

// repeatSystem boots a hardware-backed system with a private telemetry
// registry (so counter deltas are the pass's own) and a SQL engine wired
// to its cost-model advisor.
func repeatSystem(cfg Config, shared bool) (*core.System, *sql.Engine, []string, int, error) {
	s, err := core.NewSystem(core.Options{
		RegionBytes: 1 << 30,
		Telemetry:   telemetry.NewRegistry(),
		SharedScans: shared,
	})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	rows, hits := genTable(cfg, workload.HitQ2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		return nil, nil, nil, 0, err
	}
	e := sql.NewEngine(s.DB)
	e.Advisor = s
	return s, e, rows, hits, nil
}

// repeatQuery is the workload statement: the paper's Q2 as a REGEXP_LIKE
// predicate, the shape the placement advisor offloads at experiment scale.
func repeatQuery() string {
	return `SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` +
		workload.Q2 + `')`
}

// runRepeatPass issues clients×rounds queries (barrier-starting each round
// when concurrent) and returns the pass ledger from counter deltas.
func runRepeatPass(s *core.System, e *sql.Engine, label string, clients, rounds int, concurrent bool) (RepeatPass, error) {
	q := repeatQuery()
	base := s.Tel.Snapshot().Counters
	groupsBefore := s.HAL.DispatchedGroups()

	var mu sync.Mutex
	var compile sim.Time
	matches := -1
	var firstErr error
	runOne := func() {
		res, err := e.Query(q)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		n := int(res.Rows[0][0].(int64))
		if matches == -1 {
			matches = n
		} else if matches != n {
			firstErr = fmt.Errorf("repeat: %s pass diverged: %d matches vs %d", label, n, matches)
		}
		if res.UDF != nil {
			compile += sim.FromSeconds(res.UDF.Breakdown[core.PhaseConfigGen])
		}
	}

	for r := 0; r < rounds; r++ {
		if concurrent {
			start := make(chan struct{})
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					runOne()
				}()
			}
			close(start)
			wg.Wait()
		} else {
			for c := 0; c < clients; c++ {
				runOne()
			}
		}
		if firstErr != nil {
			return RepeatPass{}, firstErr
		}
	}

	snap := s.Tel.Snapshot()
	delta := func(name string) int64 { return snap.Counter(name) - base[name] }
	return RepeatPass{
		Label:           label,
		Queries:         int64(clients * rounds),
		Matches:         matches,
		PlanCacheHits:   delta("plan.cache_hits"),
		PlanCacheMisses: delta("plan.cache_misses"),
		ConfigCacheHits: delta("core.config_cache_hits"),
		CompileNS:       int64(compile / sim.Nanosecond),
		JobGroups:       s.HAL.DispatchedGroups() - groupsBefore,
		Leaders:         delta("core.sharedscan.leaders"),
		Followers:       delta("core.sharedscan.followers"),
	}, nil
}

// Repeat runs the three-pass repeated-pattern workload.
func Repeat(cfg Config) (*RepeatResult, error) {
	cfg = cfg.withDefaults()
	res := &RepeatResult{
		Clients: cfg.Clients,
		Rounds:  repeatRounds,
		Rows:    cfg.SampleRows,
		Pattern: workload.Q2,
	}

	// Cold + warm share one system: the cold pass pays the one compile,
	// the warm pass must never pay it again.
	s, e, _, _, err := repeatSystem(cfg, false)
	if err != nil {
		return nil, err
	}
	if res.Cold, err = runRepeatPass(s, e, "cold", 1, 1, false); err != nil {
		return nil, err
	}
	if res.Warm, err = runRepeatPass(s, e, "warm", cfg.Clients, repeatRounds, false); err != nil {
		return nil, err
	}

	// The shared pass boots its own coalescing system so its dispatch
	// ledger starts at zero.
	ss, se, _, _, err := repeatSystem(cfg, true)
	if err != nil {
		return nil, err
	}
	if res.Shared, err = runRepeatPass(ss, se, "shared", cfg.Clients, repeatRounds, true); err != nil {
		return nil, err
	}

	if res.Cold.Matches != res.Warm.Matches || res.Cold.Matches != res.Shared.Matches {
		return nil, fmt.Errorf("repeat: passes disagree on matches: cold=%d warm=%d shared=%d",
			res.Cold.Matches, res.Warm.Matches, res.Shared.Matches)
	}
	return res, nil
}

// Render prints the three-pass table.
func (r *RepeatResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Repeated-pattern workload (plan cache + shared scans): %d clients x %d rounds, %d rows, pattern %s\n",
		r.Clients, r.Rounds, r.Rows, r.Pattern)
	fmt.Fprintf(w, "%-8s %8s %8s %10s %10s %12s %12s %10s %8s %10s\n",
		"pass", "queries", "matches", "plan_hits", "plan_miss", "config_hits", "compile_ns", "groups", "leaders", "followers")
	for _, p := range []RepeatPass{r.Cold, r.Warm, r.Shared} {
		fmt.Fprintf(w, "%-8s %8d %8d %10d %10d %12d %12d %10d %8d %10d\n",
			p.Label, p.Queries, p.Matches, p.PlanCacheHits, p.PlanCacheMisses,
			p.ConfigCacheHits, p.CompileNS, p.JobGroups, p.Leaders, p.Followers)
	}
}
