package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"doppiodb/internal/core"
	"doppiodb/internal/explain"
	"doppiodb/internal/faults"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/hal"
	"doppiodb/internal/obs"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// The soak experiment is the overload-protection layer's acceptance run: N
// concurrent clients hammer one system through the full stack while the
// fault injector drops engines, wedges done bits, and degrades the QPI
// link, with the admission caps set tight enough that load shedding
// actually fires and every query carrying a simulated deadline budget.
// Every query must end in exactly one ledger bucket — completed, degraded,
// shed, or failed — with zero stuck and zero leaked goroutines, and the
// ledger must balance: shed + completed + degraded (+ failed, expected 0)
// == submitted. CI runs it on every push and gates on that identity.

// SoakSpec is the default fault cocktail of the soak run: occasional wedged
// done bits (the HAL's watchdog + query retry recover these), one engine
// drop that heals after two readmission probes, and a mildly degraded QPI
// link so cost-model ETAs run hot against the deadline budgets.
const SoakSpec = "stuck-done=0.02,engine-drop=2@6+2,qpi=0.9"

// Soak knobs: caps sized so ~10 clients genuinely collide with the
// backlog, a per-query budget a few healthy service times wide, and a
// wall-clock watchdog that only trips when something is truly stuck.
const (
	soakPerClient      = 12
	soakMaxGroups      = 4
	soakMaxJobs        = 16
	soakBudget         = 800 * sim.Microsecond
	soakWallTimeout    = 120 * time.Second
	soakGoroutineGrace = 2 * time.Second
	// The chaos thread's choke cadence: the device is paused for
	// soakChokeFor, then resumed for soakOpenFor, in a loop for the whole
	// run. The choke window is sized to outlast several clients'
	// CPU-side query prep so dispatches genuinely pile into the capped
	// backlog (shed fires); on resume the deep backlog drains at degraded
	// QPI rate, so cost-model ETAs overrun the budget (admission
	// refusals) and queued groups outlive their deadlines (round-boundary
	// aborts).
	soakChokeFor = 25 * time.Millisecond
	soakOpenFor  = 5 * time.Millisecond
)

// SoakResult is the run's ledger.
type SoakResult struct {
	Clients   int    `json:"clients"`
	PerClient int    `json:"per_client"`
	Spec      string `json:"fault_spec"`

	// The query ledger. Submitted is clients × per_client; every query
	// lands in exactly one of the next four buckets.
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Degraded  int64 `json:"degraded"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	// Stuck counts queries that had not returned when the wall-clock
	// watchdog fired (must be 0).
	Stuck int64 `json:"stuck"`

	// Recovery machinery accounting, from the run's private registry.
	Retries          int64 `json:"retries"`
	Recovered        int64 `json:"recovered"`
	FabricResets     int64 `json:"fabric_resets"`
	ShedAtCap        int64 `json:"shed_at_cap"`
	DeadlineRefused  int64 `json:"deadline_refused"`
	DeadlineExpired  int64 `json:"deadline_expired"`
	SoftwareFallback int64 `json:"software_fallback"`

	// Backlog bounds: the observed peak must respect the configured cap.
	BacklogPeakGroups int64 `json:"backlog_peak_groups"`
	BacklogCapGroups  int64 `json:"backlog_cap_groups"`

	// Leak detection: goroutine count before the system booted and after
	// it closed and the scheduler settled.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	// FinalState is the /health state machine verdict after Close-side
	// recovery: "ok" unless the injector left engines quarantined.
	FinalState string `json:"final_state"`

	// SLO verdicts from the run's private observer: the multi-window
	// burn-rate alert must latch under the fault cocktail (the shed mass
	// torches the 99% error budget), and the wide-event log must have
	// retained every notable (non-completed) query.
	SLOAlertActive  bool    `json:"slo_alert_active"`
	SLOAlertsFired  int64   `json:"slo_alerts_fired"`
	SLOFastBurn     float64 `json:"slo_fast_burn"`
	SLOSlowBurn     float64 `json:"slo_slow_burn"`
	QueryLogKept    uint64  `json:"querylog_kept"`
	QueryLogNotable uint64  `json:"querylog_notable"`
}

// Balanced reports whether the ledger accounts for every submitted query.
func (r *SoakResult) Balanced() bool {
	return r.Completed+r.Degraded+r.Shed+r.Failed == r.Submitted && r.Stuck == 0
}

// Soak runs the chaos soak: cfg.Clients concurrent clients, soakPerClient
// queries each, against a system with SoakSpec faults (seeded from
// cfg.Seed), shed-policy admission caps, and a per-query simulated
// deadline. The run uses private telemetry/recorder/auditor instances so a
// `-experiment all` sweep's other measurements stay untouched.
func Soak(cfg Config) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	spec := fmt.Sprintf("%s,seed=%d", SoakSpec, cfg.Seed)
	inj, err := faults.NewFromSpec(spec)
	if err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	rec := flightrec.New(4096)
	aud := explain.NewAuditor(explain.Options{})
	ob := obs.New(obs.Options{})

	before := runtime.NumGoroutine()
	s, err := core.NewSystem(core.Options{
		RegionBytes: 1 << 30,
		Telemetry:   reg,
		Faults:      inj,
		Recorder:    rec,
		Auditor:     aud,
		Obs:         ob,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.HAL.SetAdmission(hal.AdmissionLimits{
		MaxGroups: soakMaxGroups,
		MaxJobs:   soakMaxJobs,
		Policy:    hal.PolicyShed,
	})

	g := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen)
	rows, _ := g.Table(cfg.MeasuredRows, workload.HitQ1, cfg.Selectivity)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		return nil, err
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		return nil, err
	}

	res := &SoakResult{
		Clients:          cfg.Clients,
		PerClient:        soakPerClient,
		Spec:             spec,
		Submitted:        int64(cfg.Clients) * soakPerClient,
		BacklogCapGroups: soakMaxGroups,
		GoroutinesBefore: before,
	}
	// The chaos thread chokes the device on a fixed cadence so overload is
	// reproducibly reached regardless of how fast the host machine runs
	// the clients' CPU-side work.
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for {
			s.HAL.Pause()
			select {
			case <-stopChaos:
				s.HAL.Resume()
				return
			case <-time.After(soakChokeFor):
			}
			s.HAL.Resume()
			select {
			case <-stopChaos:
				return
			case <-time.After(soakOpenFor):
			}
		}
	}()

	var wg sync.WaitGroup
	var completed, degraded, shed, failed, returned atomic.Int64
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := hal.WithBudget(context.Background(), soakBudget)
			for q := 0; q < soakPerClient; q++ {
				r, err := s.Exec(ctx, col.Strs, workload.Q1Regex, token.Options{})
				switch {
				case err == nil && r.Degraded:
					degraded.Add(1)
				case err == nil:
					completed.Add(1)
				case errors.Is(err, hal.ErrOverload),
					errors.Is(err, hal.ErrDeadlineExceeded):
					shed.Add(1)
				default:
					failed.Add(1)
				}
				returned.Add(1)
			}
		}()
	}
	// The wall-clock watchdog is the stuck-query detector: the entire run
	// is simulated time, so two minutes of wall clock only elapse if a
	// query's Await never returns.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(soakWallTimeout):
		res.Stuck = res.Submitted - returned.Load()
	}
	close(stopChaos)
	chaosWG.Wait()
	res.Completed = completed.Load()
	res.Degraded = degraded.Load()
	res.Shed = shed.Load()
	res.Failed = failed.Load()

	res.Retries = reg.Counter("core.retry.attempts").Value()
	res.Recovered = reg.Counter("core.retry.recovered").Value()
	res.FabricResets = reg.Counter("hal.fabric_resets").Value()
	res.ShedAtCap = reg.Counter("hal.admission.shed").Value()
	res.DeadlineRefused = reg.Counter("hal.admission.deadline_refused").Value()
	res.DeadlineExpired = reg.Counter("hal.admission.deadline_expired").Value()
	res.SoftwareFallback = reg.Counter("core.fallback.software").Value()
	res.BacklogPeakGroups = reg.Gauge("hal.backlog_peak_groups").Value()
	res.FinalState = s.HAL.State()
	slo := ob.SLO.Report()
	res.SLOAlertActive = slo.AlertActive
	res.SLOAlertsFired = slo.AlertsFired
	res.SLOFastBurn = slo.FastBurn
	res.SLOSlowBurn = slo.SlowBurn
	ql := ob.Log.Stats()
	res.QueryLogKept = ql.Kept
	res.QueryLogNotable = ql.Notable

	s.Close()
	// Give the runtime's goroutines (event loop, watchdog timers) a
	// moment to unwind before counting leaks.
	deadline := time.Now().Add(soakGoroutineGrace)
	for {
		res.GoroutinesAfter = runtime.NumGoroutine()
		if res.GoroutinesAfter <= before || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	return res, nil
}

// Render prints the soak transcript.
func (r *SoakResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Overload/recovery soak (concurrent clients + fault injection + admission caps)")
	fmt.Fprintf(w, "  clients %d × %d queries, faults %q, caps %d groups/%d jobs (shed), budget per query\n",
		r.Clients, r.PerClient, r.Spec, r.BacklogCapGroups, soakMaxJobs)
	fmt.Fprintf(w, "  %-12s %6d\n", "submitted", r.Submitted)
	fmt.Fprintf(w, "  %-12s %6d\n", "completed", r.Completed)
	fmt.Fprintf(w, "  %-12s %6d   (software fallback after retries exhausted)\n", "degraded", r.Degraded)
	fmt.Fprintf(w, "  %-12s %6d   (%d at cap, %d ETA-refused, %d expired in queue)\n",
		"shed", r.Shed, r.ShedAtCap, r.DeadlineRefused, r.DeadlineExpired)
	fmt.Fprintf(w, "  %-12s %6d\n", "failed", r.Failed)
	fmt.Fprintf(w, "  %-12s %6d\n", "stuck", r.Stuck)
	balance := "BALANCED"
	if !r.Balanced() {
		balance = "UNBALANCED"
	}
	fmt.Fprintf(w, "  ledger: %d + %d + %d + %d = %d  [%s]\n",
		r.Completed, r.Degraded, r.Shed, r.Failed, r.Submitted, balance)
	fmt.Fprintf(w, "  recovery: %d retries (%d queries recovered), %d fabric reset(s)\n",
		r.Retries, r.Recovered, r.FabricResets)
	alert := "quiet"
	if r.SLOAlertActive {
		alert = "FIRING"
	}
	fmt.Fprintf(w, "  slo: burn fast %.1fx / slow %.1fx, alert %s (%d fired); query log kept %d (%d notable)\n",
		r.SLOFastBurn, r.SLOSlowBurn, alert, r.SLOAlertsFired, r.QueryLogKept, r.QueryLogNotable)
	fmt.Fprintf(w, "  backlog peak %d group(s) vs cap %d; goroutines %d -> %d; final state %q\n",
		r.BacklogPeakGroups, r.BacklogCapGroups, r.GoroutinesBefore, r.GoroutinesAfter, r.FinalState)
}
