package experiments

import (
	"fmt"
	"io"
	"time"

	"doppiodb/internal/bat"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/perf"
	"doppiodb/internal/softregex"
	"doppiodb/internal/strmatch"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: the token/gap-hold compiler optimizations (§6.2/§6.3), the
// arbiter batch size (§4.2.2), the engine/PU partitioning alternatives
// (§7.9), and the software regex engine choice (§8.2).

// GapHoldRow compares state/char demand with and without the compiler's
// `.*`→hold shortcut for one pattern.
type GapHoldRow struct {
	Pattern                 string
	States, StatesNoHold    int
	Chars, CharsNoHold      int
	FitsDefault, FitsNoHold bool
}

// AblationGapHoldResult quantifies what Figure 6's self-loop trick saves.
type AblationGapHoldResult struct {
	Rows        []GapHoldRow
	StatesSaved int
}

// AblationGapHold runs the corpus.
func AblationGapHold(cfg Config) (*AblationGapHoldResult, error) {
	patterns := []string{
		workload.Q1Regex, workload.Q2, workload.Q3, workload.Q4,
		workload.QH, workload.Table1Regex,
		`(a|b).*c`, `(Blue|Gray).*skies`,
		`one.*two.*three.*four`,
	}
	out := &AblationGapHoldResult{}
	for _, pat := range patterns {
		with, err := token.CompilePattern(pat, token.Options{})
		if err != nil {
			return nil, err
		}
		without, err := token.CompilePattern(pat, token.Options{NoGapHold: true})
		if err != nil {
			return nil, err
		}
		row := GapHoldRow{
			Pattern:      pat,
			States:       with.NumStates(),
			StatesNoHold: without.NumStates(),
			Chars:        with.NumChars(),
			CharsNoHold:  without.NumChars(),
			FitsDefault:  with.NumStates() <= 16 && with.NumChars() <= 32,
			FitsNoHold:   without.NumStates() <= 16 && without.NumChars() <= 32,
		}
		out.StatesSaved += row.StatesNoHold - row.States
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationGapHoldResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: `.*`->hold shortcut (the paper's Figure 6 self-loop)")
	fmt.Fprintf(w, "  %-38s %8s %8s %8s %8s\n", "pattern", "states", "no-hold", "chars", "no-hold")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-38s %8d %8d %8d %8d\n",
			row.Pattern, row.States, row.StatesNoHold, row.Chars, row.CharsNoHold)
	}
	fmt.Fprintf(w, "  total states saved across the corpus: %d\n", r.StatesSaved)
}

// ArbiterRow is one arbiter batch-size measurement.
type ArbiterRow struct {
	GrantLines int
	QPS        float64
	// LatencyPenalty is the extra per-grant delay smaller consumers see
	// while a large batch is in flight (grant transfer time, µs).
	LatencyPenaltyUS float64
}

// AblationArbiterResult sweeps the HAL arbiter's batch size (§4.2.2: "the
// batch size of 16 is small enough to ensure good throughput without
// increasing memory access latency too much").
type AblationArbiterResult struct{ Rows []ArbiterRow }

// AblationArbiter runs the sweep on the Figure 8 workload with 4 engines.
func AblationArbiter(cfg Config) (*AblationArbiterResult, error) {
	out := &AblationArbiterResult{}
	for _, grant := range []int{1, 4, 16, 64, 256} {
		params := memmodel.Default()
		params.GrantLines = grant
		queues := make([][]memmodel.Job, 4)
		const queries = 20
		for q := 0; q < queries; q++ {
			queues[q%4] = append(queues[q%4],
				memmodel.JobForStrings(PaperRows, workload.DefaultStrLen,
					bat.OffsetWidth, bat.EntryStride(workload.DefaultStrLen), 2))
		}
		res := memmodel.Simulate(params, queues)
		out.Rows = append(out.Rows, ArbiterRow{
			GrantLines:       grant,
			QPS:              float64(queries) / res.Finish.Seconds(),
			LatencyPenaltyUS: float64(grant) * 64 / 6.5e9 * 1e6,
		})
	}
	return out, nil
}

// Render prints the sweep.
func (r *AblationArbiterResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: arbiter batch size (4 engines, Q1 workload)")
	fmt.Fprintf(w, "  %-12s %10s %22s\n", "batch lines", "q/s", "per-grant latency (µs)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-12d %10.1f %22.3f\n", row.GrantLines, row.QPS, row.LatencyPenaltyUS)
	}
	fmt.Fprintln(w, "  (throughput is flat — QPI-bound — while latency grows with the batch;")
	fmt.Fprintln(w, "   16 lines keeps the penalty under a quarter microsecond, §4.2.2)")
}

// EngineConfigRow compares the §7.9 partitioning alternatives.
type EngineConfigRow struct {
	Label             string
	ConcurrentQueries int
	SingleQuerySec    float64 // one query over 2.5M rows
	BatchQPS          float64 // many queries
}

// AblationEngineConfigResult compares 4×16 vs 2×32 vs 1×64: same aggregate
// PU bandwidth, different concurrency.
type AblationEngineConfigResult struct{ Rows []EngineConfigRow }

// AblationEngineConfig runs the comparison.
func AblationEngineConfig(cfg Config) (*AblationEngineConfigResult, error) {
	out := &AblationEngineConfigResult{}
	for _, c := range []struct {
		label   string
		engines int
		pus     int
	}{
		{"4x16", 4, 16}, {"2x32", 2, 32}, {"1x64", 1, 64},
	} {
		params := memmodel.Default()
		params.EngineBandwidth = float64(c.pus) * 400e6
		stride := bat.EntryStride(workload.DefaultStrLen)
		// Single query partitioned across all engines.
		per := PaperRows / c.engines
		queues := make([][]memmodel.Job, c.engines)
		for e := 0; e < c.engines; e++ {
			queues[e] = []memmodel.Job{memmodel.JobForStrings(per, workload.DefaultStrLen, bat.OffsetWidth, stride, 2)}
		}
		single := memmodel.Simulate(params, queues).Finish.Seconds()
		// A batch of 20 queries, one per engine at a time.
		queues = make([][]memmodel.Job, c.engines)
		const queries = 20
		for q := 0; q < queries; q++ {
			queues[q%c.engines] = append(queues[q%c.engines],
				memmodel.JobForStrings(PaperRows, workload.DefaultStrLen, bat.OffsetWidth, stride, 2))
		}
		batch := memmodel.Simulate(params, queues)
		out.Rows = append(out.Rows, EngineConfigRow{
			Label:             c.label,
			ConcurrentQueries: c.engines,
			SingleQuerySec:    single,
			BatchQPS:          float64(queries) / batch.Finish.Seconds(),
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationEngineConfigResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: engine/PU partitioning (§7.9 alternatives, 2.5M rows)")
	fmt.Fprintf(w, "  %-8s %12s %16s %12s\n", "config", "concurrent", "single query s", "batch q/s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8s %12d %16.4f %12.1f\n",
			row.Label, row.ConcurrentQueries, row.SingleQuerySec, row.BatchQPS)
	}
	fmt.Fprintln(w, "  (all QPI-bound: same throughput; 4x16 serves four queries concurrently)")
}

// SoftEngineRow compares the software regex engines on one query.
type SoftEngineRow struct {
	Query       string
	BacktrackNS float64 // wall ns/row, this host
	ThompsonNS  float64
	DFANS       float64
	DFAStates   int
}

// AblationSoftEnginesResult compares the three §8.2 software strategies on
// the evaluation queries (real wall times on the host — a regression bench,
// not a paper-scale claim).
type AblationSoftEnginesResult struct{ Rows []SoftEngineRow }

// AblationSoftEngines runs the comparison.
func AblationSoftEngines(cfg Config) (*AblationSoftEnginesResult, error) {
	cfg = cfg.withDefaults()
	out := &AblationSoftEnginesResult{}
	for _, q := range evalQueries() {
		rows, _ := genTable(cfg, q.Kind)
		bt, err := softregex.NewBacktracker(q.Pattern, false)
		if err != nil {
			return nil, err
		}
		th, err := softregex.NewThompson(q.Pattern, false)
		if err != nil {
			return nil, err
		}
		df, err := softregex.NewDFA(q.Pattern, false)
		if err != nil {
			return nil, err
		}
		timeIt := func(f func(s string)) float64 {
			start := time.Now()
			for _, r := range rows {
				f(r)
			}
			return float64(time.Since(start).Nanoseconds()) / float64(len(rows))
		}
		row := SoftEngineRow{Query: q.Name}
		row.BacktrackNS = timeIt(func(s string) { bt.MatchString(s) })
		row.ThompsonNS = timeIt(func(s string) { th.MatchString(s) })
		row.DFANS = timeIt(func(s string) { df.MatchString(s) })
		row.DFAStates = df.States()
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationSoftEnginesResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: software regex engines (host wall time, ns/row)")
	fmt.Fprintf(w, "  %-4s %14s %12s %10s %12s\n", "Q", "backtracker", "thompson", "DFA", "DFA states")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-4s %14.0f %12.0f %10.0f %12d\n",
			row.Query, row.BacktrackNS, row.ThompsonNS, row.DFANS, row.DFAStates)
	}
}

// SubstringRow compares Boyer-Moore and KMP.
type SubstringRow struct {
	Needle        string
	BMComparisons uint64
	KMPNS, BMNS   float64
}

// AblationSubstringResult compares the two classic algorithms §8.1 cites on
// the address workload.
type AblationSubstringResult struct{ Rows []SubstringRow }

// AblationSubstring runs the comparison.
func AblationSubstring(cfg Config) (*AblationSubstringResult, error) {
	cfg = cfg.withDefaults()
	rows, _ := genTable(cfg, workload.HitQ1)
	out := &AblationSubstringResult{}
	for _, needle := range []string{"Strasse", "Frankfurt", "Koblenzer Strasse"} {
		bm := strmatch.NewBoyerMoore([]byte(needle), false)
		km := strmatch.NewKMP([]byte(needle), false)
		startBM := time.Now()
		for _, r := range rows {
			bm.Find([]byte(r), 0)
		}
		bmNS := float64(time.Since(startBM).Nanoseconds()) / float64(len(rows))
		startKM := time.Now()
		for _, r := range rows {
			km.Find([]byte(r), 0)
		}
		kmNS := float64(time.Since(startKM).Nanoseconds()) / float64(len(rows))
		out.Rows = append(out.Rows, SubstringRow{
			Needle:        needle,
			BMComparisons: bm.Comparisons() / uint64(len(rows)),
			BMNS:          bmNS,
			KMPNS:         kmNS,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationSubstringResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: Boyer-Moore vs KMP on the address workload (per row)")
	fmt.Fprintf(w, "  %-20s %14s %10s %10s\n", "needle", "BM cmp/row", "BM ns", "KMP ns")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-20s %14d %10.0f %10.0f\n",
			row.Needle, row.BMComparisons, row.BMNS, row.KMPNS)
	}
	fmt.Fprintln(w, "  (BM examines a fraction of the input by skipping — §8.1's rationale)")
}

// PrescanRow compares backtracker cost with and without PCRE's literal
// start optimization on one query.
type PrescanRow struct {
	Query        string
	Prefix       string
	StepsPlain   float64 // steps/row without the optimization
	StepsPrescan float64 // steps/row with it
	MonetDBPlain float64 // modelled response at 2.5M rows, seconds
	MonetDBFast  float64
}

// AblationPrescanResult quantifies the literal-prefix start optimization —
// the PCRE feature whose absence in the default model explains the Figure
// 13 deviation recorded in EXPERIMENTS.md.
type AblationPrescanResult struct{ Rows []PrescanRow }

// AblationPrescan runs the comparison on the regex queries.
func AblationPrescan(cfg Config) (*AblationPrescanResult, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()
	out := &AblationPrescanResult{}
	patterns := []struct {
		name string
		kind workload.HitKind
		pat  string
	}{
		{"Q2", workload.HitQ2, workload.Q2},
		{"QH", workload.HitQH, workload.QH},
		{"Table1", workload.HitTable1, workload.Table1Regex},
	}
	for _, q := range patterns {
		rows, _ := workload.NewGenerator(cfg.Seed, 80).Table(cfg.SampleRows, q.kind, cfg.Selectivity)
		plain, err := softregex.NewBacktracker(q.pat, false)
		if err != nil {
			return nil, err
		}
		fast, err := softregex.NewBacktracker(q.pat, false)
		if err != nil {
			return nil, err
		}
		prefix := fast.SetStartOptimization(true)
		var sp, sf uint64
		for _, r := range rows {
			_, a := plain.MatchString(r)
			_, b := fast.MatchString(r)
			sp += a
			sf += b
		}
		n := float64(len(rows))
		mk := func(steps uint64) float64 {
			w := perf.Work{
				Rows:      PaperRows,
				RegexRows: PaperRows,
				Steps:     steps * uint64(PaperRows) / uint64(len(rows)),
			}
			return model.MonetDBScan(w, true).Seconds()
		}
		out.Rows = append(out.Rows, PrescanRow{
			Query:        q.name,
			Prefix:       prefix,
			StepsPlain:   float64(sp) / n,
			StepsPrescan: float64(sf) / n,
			MonetDBPlain: mk(sp),
			MonetDBFast:  mk(sf),
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *AblationPrescanResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation: PCRE literal start optimization (steps/row; modelled MonetDB s at 2.5M)")
	fmt.Fprintf(w, "  %-8s %8s %12s %12s %12s %12s\n",
		"query", "prefix", "plain", "prescan", "plain s", "prescan s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8s %8q %12.0f %12.0f %12.2f %12.2f\n",
			row.Query, row.Prefix, row.StepsPlain, row.StepsPrescan,
			row.MonetDBPlain, row.MonetDBFast)
	}
	fmt.Fprintln(w, "  (the prescan removes ~90% of the backtracking steps; the remaining")
	fmt.Fprintln(w, "   gap to the paper's QH baseline is the modelled per-row invocation")
	fmt.Fprintln(w, "   overhead — together they explain the Figure 13 deviation)")
}
