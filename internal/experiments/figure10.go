package experiments

import (
	"context"
	"fmt"
	"io"

	"doppiodb/internal/core"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// Figure10Row is one query's response-time breakdown (milliseconds).
type Figure10Row struct {
	Query     string
	Database  float64
	UDF       float64
	ConfigGen float64
	HAL       float64
	Hardware  float64
	Total     float64
}

// Figure10Result reproduces Figure 10: where the time goes for a small
// (10 k tuple) relation, so hardware execution does not dominate.
type Figure10Result struct {
	Rows []Figure10Row
}

// Figure10 runs the four queries through the full HUDF path on a 10 k-tuple
// table and reports the per-phase simulated times.
func Figure10(cfg Config) (*Figure10Result, error) {
	cfg = cfg.withDefaults()
	const tuples = 10_000
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		return nil, err
	}
	g := workload.NewGenerator(cfg.Seed, workload.DefaultStrLen)
	rows := g.MixedTable(tuples, cfg.Selectivity,
		workload.HitQ1, workload.HitQ2, workload.HitQ3, workload.HitQ4)
	tbl, err := s.DB.LoadAddressTable("address_table", rows)
	if err != nil {
		return nil, err
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		return nil, err
	}

	out := &Figure10Result{}
	for _, q := range evalQueries() {
		res, err := s.Exec(context.Background(), col.Strs, q.Pattern, token.Options{})
		if err != nil {
			return nil, err
		}
		ms := func(ph string) float64 { return res.Breakdown.Get(ph).Seconds() * 1e3 }
		out.Rows = append(out.Rows, Figure10Row{
			Query:     q.Name,
			Database:  ms(core.PhaseDatabase),
			UDF:       ms(core.PhaseUDF),
			ConfigGen: ms(core.PhaseConfigGen),
			HAL:       ms(core.PhaseHAL),
			Hardware:  ms(core.PhaseHardware),
			Total:     res.Total().Seconds() * 1e3,
		})
	}
	return out, nil
}

// Render prints the breakdown.
func (r *Figure10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 10: response-time breakdown, 10k tuples (milliseconds)")
	fmt.Fprintf(w, "  %-4s %10s %10s %12s %10s %12s %10s\n",
		"Q", "Database", "UDF(sw)", "Config.Gen", "HAL", "HW Proc.", "Total")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-4s %10.4f %10.4f %12.6f %10.4f %12.4f %10.4f\n",
			row.Query, row.Database, row.UDF, row.ConfigGen, row.HAL,
			row.Hardware, row.Total)
	}
	fmt.Fprintln(w, "  (paper: config generation <1µs, PU parametrization ~300ns,")
	fmt.Fprintln(w, "   totals ~0.1-0.25ms dominated by hardware processing)")
}
