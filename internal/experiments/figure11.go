package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/perf"
	"doppiodb/internal/workload"
)

// Figure11Point is one (query, client-count) throughput cell.
type Figure11Point struct {
	Query   string
	Clients int
	MonetDB float64 // queries/s
	DBx     float64
	FPGA    float64 // modeled: closed-form batch over the timing simulation
	// MeasuredFPGA is the rate this many concurrent client goroutines
	// actually achieved through the device runtime (query-independent,
	// like the modeled line: the device is complexity-insensitive).
	MeasuredFPGA float64
}

// Figure11Result reproduces Figures 11a/11b: throughput with increasing
// client count over the 2.5 M-tuple table.
type Figure11Result struct {
	Points []Figure11Point
}

// Figure11 runs the experiment: MonetDB is work-conserving (flat lines),
// DBx assigns one thread per query (linear until the cores run out), and
// the FPGA is QPI-bound at a constant rate. The FPGA line is produced
// both by the closed-form batch simulation and by actually running each
// client count as concurrent goroutines through the device runtime.
func Figure11(cfg Config) (*Figure11Result, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()
	out := &Figure11Result{}
	// The FPGA rate is the same for every query (complexity-independent)
	// and every client count (the QPI link is the only bottleneck).
	fpgaQPS := fpgaThroughput(PaperRows, workload.DefaultStrLen, 4, 40)
	measured := make(map[int]float64)
	for clients := 1; clients <= 10; clients++ {
		m, err := measureThroughput(cfg, 4, clients, 3)
		if err != nil {
			return nil, err
		}
		measured[clients] = m.PaperQPS
	}
	for _, q := range evalQueries() {
		work, err := perRowWork(cfg, q)
		if err != nil {
			return nil, err
		}
		scaled := scaleWork(work, cfg.SampleRows, PaperRows)
		mdbResp := model.MonetDBScan(scaled, true)
		dbxResp := model.DBXScan(scaled)
		for clients := 1; clients <= 10; clients++ {
			out.Points = append(out.Points, Figure11Point{
				Query:        q.Name,
				Clients:      clients,
				MonetDB:      model.MonetDBAggregateThroughput(mdbResp),
				DBx:          model.DBXThroughput(dbxResp, clients),
				FPGA:         fpgaQPS,
				MeasuredFPGA: measured[clients],
			})
		}
	}
	return out, nil
}

// Render prints both panels.
func (r *Figure11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 11: throughput vs number of clients, 2.5M records (queries/s)")
	fmt.Fprintf(w, "  %-4s %8s %12s %12s %12s %14s\n", "Q", "clients", "MonetDB", "DBx", "FPGA", "FPGA(meas)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-4s %8d %12.3f %12.3f %12.1f %14.1f\n",
			p.Query, p.Clients, p.MonetDB, p.DBx, p.FPGA, p.MeasuredFPGA)
	}
}
