package experiments

import (
	"context"
	"fmt"
	"io"

	"doppiodb/internal/config"
	"doppiodb/internal/core"
	"doppiodb/internal/fpga"
	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/sim"
	"doppiodb/internal/token"
	"doppiodb/internal/workload"
)

// Figure13Point is one selectivity measurement.
type Figure13Point struct {
	Selectivity float64
	HybridQPS   float64
	MonetDBQPS  float64
	Speedup     float64
}

// Figure13Result reproduces Figure 13: hybrid execution of query QH —
// (Strasse|Str\.).*(8[0-9]{4}).*delivery — whose tail is post-processed on
// the CPU. The selectivity equals the fraction of tuples needing
// post-processing (the dataset guarantees every prefix match carries the
// suffix, §7.8).
type Figure13Result struct {
	Points     []Figure13Point
	MaxSpeedup float64
	// PaperMaxSpeedup is the published "up to 13x". Our PCRE substitute
	// is slower on QH than the authors' PCRE, so our MonetDB baseline
	// is weaker and the ratio larger; the declining shape is preserved.
	PaperMaxSpeedup float64
}

// Figure13 runs the experiment over selectivities 0..1.
func Figure13(cfg Config) (*Figure13Result, error) {
	cfg = cfg.withDefaults()
	model := perf.Default()

	// Deploy a device that cannot hold QH so hybrid execution engages.
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	s, err := core.NewSystem(core.Options{Deployment: &dep, RegionBytes: 1 << 30})
	if err != nil {
		return nil, err
	}

	out := &Figure13Result{PaperMaxSpeedup: 13}
	for _, sel := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		// Functional sample run at this selectivity to obtain the
		// post-processing work per pre-selected row.
		rows, _ := workload.NewGenerator(cfg.Seed, 80).Table(cfg.SampleRows, workload.HitQH, sel)
		tbl, err := s.DB.LoadAddressTable(fmt.Sprintf("t_sel_%0.f", sel*100), rows)
		if err != nil {
			return nil, err
		}
		col, err := tbl.Column("address_string")
		if err != nil {
			return nil, err
		}
		res, err := s.Exec(context.Background(), col.Strs, workload.QH, token.Options{})
		if err != nil {
			return nil, err
		}
		if !res.Hybrid {
			return nil, fmt.Errorf("experiments: QH did not trigger hybrid execution")
		}
		// Scale the hardware and post-processing to the 2.5 M-row
		// table. The software side already priced the literal-tail
		// Boyer-Moore post-processing; it scales linearly with the
		// pre-selected row count.
		hw := fpgaQueryTime(model, PaperRows, 80, 4, false)
		postTime := res.Breakdown.Get(core.PhaseSoftware) *
			sim.Time(PaperRows/cfg.SampleRows)
		hybrid := 1.0 / (hw + postTime).Seconds()

		// MonetDB evaluates the full QH with REGEXP_LIKE.
		mdbWork, err := qhMonetDBWork(cfg)
		if err != nil {
			return nil, err
		}
		mdbQPS := model.MonetDBAggregateThroughput(
			model.MonetDBScan(scaleWork(mdbWork, cfg.SampleRows, PaperRows), true))

		speedup := hybrid / mdbQPS
		if speedup > out.MaxSpeedup {
			out.MaxSpeedup = speedup
		}
		out.Points = append(out.Points, Figure13Point{
			Selectivity: sel,
			HybridQPS:   hybrid,
			MonetDBQPS:  mdbQPS,
			Speedup:     speedup,
		})
	}
	return out, nil
}

// qhMonetDBWork measures the software cost of QH via REGEXP_LIKE.
func qhMonetDBWork(cfg Config) (perf.Work, error) {
	rows, _ := workload.NewGenerator(cfg.Seed+1, 80).Table(cfg.SampleRows, workload.HitQH, cfg.Selectivity)
	db := mdb.New(nil)
	tbl, err := db.LoadAddressTable("address_table", rows)
	if err != nil {
		return perf.Work{}, err
	}
	sel, err := db.SelectRegexp(tbl, "address_string", workload.QH, false)
	if err != nil {
		return perf.Work{}, err
	}
	return sel.Work, nil
}

// Render prints the sweep.
func (r *Figure13Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: hybrid execution of QH, 2.5M tuples (queries/s)")
	fmt.Fprintf(w, "  %-12s %12s %12s %10s\n", "selectivity", "Hybrid UDF", "MonetDB", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-12.1f %12.2f %12.3f %9.1fx\n",
			p.Selectivity, p.HybridQPS, p.MonetDBQPS, p.Speedup)
	}
	fmt.Fprintf(w, "  max speedup %.0fx (paper: up to %.0fx; our PCRE substitute lacks PCRE's literal start optimization, weakening the MonetDB baseline on QH)\n",
		r.MaxSpeedup, r.PaperMaxSpeedup)
}
