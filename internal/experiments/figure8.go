package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/bat"
	"doppiodb/internal/workload"
)

// Figure8Point is one engine-count measurement.
type Figure8Point struct {
	Engines  int
	QPS      float64 // modeled: closed-form batch over the timing simulation
	Measured float64 // measured: concurrent clients through the device runtime
	Capacity float64 // processing capacity in queries/s (the dashed line)
	PaperQPS float64 // read off Figure 8
}

// Figure8Result reproduces Figure 8: throughput scaling with the number of
// Regex Engines (Q1, 2.5 M tuples, 10 clients).
type Figure8Result struct {
	Points []Figure8Point
	// SingleEngineRawGBs / UsefulGBs echo §7.3's bandwidth accounting.
	SingleEngineRawGBs    float64
	SingleEngineUsefulGBs float64
	// MeasuredRawGBs is the single-engine link rate the concurrent run
	// achieved through the device runtime.
	MeasuredRawGBs float64
}

// Figure8 runs the experiment two ways: the closed-form batch simulation
// (QPS), and cfg.Clients concurrent client goroutines driving the full
// stack end to end (Measured) the way the paper's 10 clients did.
func Figure8(cfg Config) (*Figure8Result, error) {
	cfg = cfg.withDefaults()
	const queries = 40 // enough back-to-back queries to reach steady state
	paper := map[int]float64{1: 30.7, 2: 34.4, 3: 34.4, 4: 34.4}
	out := &Figure8Result{}
	volume := float64(PaperRows) * float64(bat.EntryStride(workload.DefaultStrLen)+bat.OffsetWidth+2)
	useful := float64(PaperRows) * float64(workload.DefaultStrLen)
	for engines := 1; engines <= 4; engines++ {
		qps := fpgaThroughput(PaperRows, workload.DefaultStrLen, engines, queries)
		m, err := measureThroughput(cfg, engines, cfg.Clients, 3)
		if err != nil {
			return nil, err
		}
		capacity := float64(engines) * 6.4e9 / volume
		out.Points = append(out.Points, Figure8Point{
			Engines:  engines,
			QPS:      qps,
			Measured: m.PaperQPS,
			Capacity: capacity,
			PaperQPS: paper[engines],
		})
		if engines == 1 {
			out.SingleEngineRawGBs = qps * volume / 1e9
			out.SingleEngineUsefulGBs = qps * useful / 1e9
			out.MeasuredRawGBs = m.RawGBs
		}
	}
	return out, nil
}

// Render prints the series.
func (r *Figure8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: throughput vs number of Regex Engines (Q1, 2.5M tuples, 10 clients)")
	fmt.Fprintf(w, "  %-8s %14s %14s %14s %18s\n", "engines", "modeled q/s", "measured q/s", "paper q/s", "capacity q/s")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-8d %14.1f %14.1f %14.1f %18.1f\n", p.Engines, p.QPS, p.Measured, p.PaperQPS, p.Capacity)
	}
	fmt.Fprintf(w, "  single engine: %.2f GB/s raw (paper ~5.89), %.2f GB/s useful (paper ~4.7); measured %.2f GB/s raw\n",
		r.SingleEngineRawGBs, r.SingleEngineUsefulGBs, r.MeasuredRawGBs)
}
