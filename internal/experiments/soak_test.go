package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestSoakLedgerBalances runs the full chaos soak and checks its hard
// invariants: every submitted query is accounted for in exactly one bucket,
// nothing wedges, nothing fails unclassified, the backlog respects its cap,
// and the system's goroutines unwind after Close.
func TestSoakLedgerBalances(t *testing.T) {
	r, err := Soak(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	t.Logf("\n%s", buf.String())

	if !r.Balanced() {
		t.Errorf("ledger unbalanced: %d+%d+%d+%d != %d (stuck %d)",
			r.Completed, r.Degraded, r.Shed, r.Failed, r.Submitted, r.Stuck)
	}
	if r.Stuck != 0 {
		t.Errorf("stuck queries: %d", r.Stuck)
	}
	if r.Failed != 0 {
		t.Errorf("unclassified failures: %d", r.Failed)
	}
	if r.Completed == 0 {
		t.Error("no query completed under the soak faults")
	}
	if r.BacklogPeakGroups > r.BacklogCapGroups {
		t.Errorf("backlog peak %d exceeds cap %d", r.BacklogPeakGroups, r.BacklogCapGroups)
	}
	if r.GoroutinesAfter > r.GoroutinesBefore {
		t.Errorf("goroutine leak: %d before, %d after close",
			r.GoroutinesBefore, r.GoroutinesAfter)
	}
	if r.FinalState != "ok" && r.FinalState != "degraded" {
		t.Errorf("final state = %q", r.FinalState)
	}
	if !strings.Contains(buf.String(), "BALANCED") {
		t.Error("transcript does not show the ledger verdict")
	}
	// The fault cocktail burns the 99% availability budget far past the
	// burn threshold on both SLO windows: the multi-window alert must have
	// latched at least once during the run.
	if r.SLOAlertsFired < 1 {
		t.Errorf("SLO burn-rate alert never fired under the fault cocktail (fast burn %.1fx, slow %.1fx)",
			r.SLOFastBurn, r.SLOSlowBurn)
	}
	if r.QueryLogKept == 0 || r.QueryLogNotable == 0 {
		t.Errorf("query log retained nothing notable: kept %d, notable %d",
			r.QueryLogKept, r.QueryLogNotable)
	}
}
