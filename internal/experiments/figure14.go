package experiments

import (
	"fmt"
	"io"

	"doppiodb/internal/config"
	"doppiodb/internal/fpga"
	"doppiodb/internal/sim"
)

// Figure14aRow is one engine/PU configuration.
type Figure14aRow struct {
	Label       string
	Engines     int
	PUs         int
	QPIEndpoint float64
	Arbitration float64
	PUsPct      float64
	Total       float64
	Bandwidth   float64 // aggregate GB/s
	TimingMet   bool
}

// Figure14aResult reproduces Figure 14a: logic usage vs engine and PU
// configuration, including the 5×16 timing failure.
type Figure14aResult struct{ Rows []Figure14aRow }

// Figure14a runs the sweep.
func Figure14a(cfg Config) (*Figure14aResult, error) {
	configs := []struct {
		engines, pus int
	}{
		{1, 16}, {2, 16}, {3, 16}, {4, 16}, {2, 32}, {1, 64}, {5, 16},
	}
	out := &Figure14aResult{}
	for _, c := range configs {
		d := fpga.DefaultDeployment()
		d.Engines = c.engines
		d.PUsPerEngine = c.pus
		u, err := fpga.Synthesize(d)
		timingMet := err == nil
		if err != nil && err != fpga.ErrTimingViolated && err != fpga.ErrOverCapacity {
			return nil, err
		}
		out.Rows = append(out.Rows, Figure14aRow{
			Label:       fmt.Sprintf("%dx%d", c.engines, c.pus),
			Engines:     c.engines,
			PUs:         c.pus,
			QPIEndpoint: u.QPIEndpoint,
			Arbitration: u.Arbitration,
			PUsPct:      u.PUs,
			Total:       u.LogicTotal,
			Bandwidth:   d.AggregateBandwidth() / 1e9,
			TimingMet:   timingMet,
		})
	}
	return out, nil
}

// Render prints the stacked-bar data.
func (r *Figure14aResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 14a: logic usage vs engines x PUs (percent of device)")
	fmt.Fprintf(w, "  %-6s %8s %8s %8s %8s %10s %s\n",
		"config", "QPI", "arb+SR", "PUs", "total", "GB/s", "timing")
	for _, row := range r.Rows {
		status := "met"
		if !row.TimingMet {
			status = "NOT MET (paper: 5x16 fails routing)"
		}
		fmt.Fprintf(w, "  %-6s %8.1f %8.1f %8.1f %8.1f %10.1f %s\n",
			row.Label, row.QPIEndpoint, row.Arbitration, row.PUsPct,
			row.Total, row.Bandwidth, status)
	}
	fmt.Fprintln(w, "  (paper: 4x16 uses ~80% logic at 25.6 GB/s capacity)")
}

// Figure14bRow is one character-budget point.
type Figure14bRow struct {
	Chars int
	Total float64
	BRAM  float64
}

// Figure14bResult reproduces Figure 14b: logic vs max characters (4×16,
// 8 states); BRAM stays constant.
type Figure14bResult struct{ Rows []Figure14bRow }

// Figure14b runs the sweep.
func Figure14b(cfg Config) (*Figure14bResult, error) {
	out := &Figure14bResult{}
	for chars := 16; chars <= 64; chars += 16 {
		d := fpga.DefaultDeployment()
		d.Limits = config.Limits{MaxStates: 8, MaxChars: chars}
		u := d.Resources()
		out.Rows = append(out.Rows, Figure14bRow{Chars: chars, Total: u.LogicTotal, BRAM: u.BRAMTotal})
	}
	return out, nil
}

// Render prints the series.
func (r *Figure14bResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 14b: logic vs max characters (4x16, 8 states)")
	fmt.Fprintf(w, "  %-8s %10s %10s\n", "chars", "logic %", "BRAM %")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %10.1f %10.1f\n", row.Chars, row.Total, row.BRAM)
	}
	fmt.Fprintln(w, "  (paper: linear in characters, BRAM constant at 42%)")
}

// Figure14cRow is one state-budget point.
type Figure14cRow struct {
	States int
	Total  float64
}

// Figure14cResult reproduces Figure 14c: logic vs max states (4×16, 16
// chars) — quadratic growth of the fully connected graph.
type Figure14cResult struct{ Rows []Figure14cRow }

// Figure14c runs the sweep.
func Figure14c(cfg Config) (*Figure14cResult, error) {
	out := &Figure14cResult{}
	for _, states := range []int{4, 8, 12, 16} {
		d := fpga.DefaultDeployment()
		d.Limits = config.Limits{MaxStates: states, MaxChars: 16}
		u := d.Resources()
		out.Rows = append(out.Rows, Figure14cRow{States: states, Total: u.LogicTotal})
	}
	return out, nil
}

// Render prints the series.
func (r *Figure14cResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 14c: logic vs max states (4x16, 16 chars)")
	fmt.Fprintf(w, "  %-8s %10s\n", "states", "logic %")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-8d %10.1f\n", row.States, row.Total)
	}
	fmt.Fprintln(w, "  (paper: quadratic in states — the fully connected state graph)")
}

// Figure15Cell is one (states, chars, clock) feasibility cell.
type Figure15Cell struct {
	States, Chars int
	ClockMHz      int
	Feasible      bool
	CriticalNS    float64
}

// Figure15Result reproduces Figure 15: the feasible complexity space at
// 400 MHz vs 200 MHz on the 2×16 deployment.
type Figure15Result struct {
	Cells []Figure15Cell
	// Feasible400/Feasible200 count feasible cells per clock.
	Feasible400, Feasible200 int
}

// Figure15 runs the sweep.
func Figure15(cfg Config) (*Figure15Result, error) {
	out := &Figure15Result{}
	for _, mhz := range []int{400, 200} {
		for states := 8; states <= 32; states += 4 {
			for chars := 16; chars <= 64; chars += 16 {
				d := fpga.DefaultDeployment()
				d.Engines = 2
				d.PUsPerEngine = 16
				d.Limits = config.Limits{MaxStates: states, MaxChars: chars}
				d.PUClock = sim.Clock{HZ: int64(mhz) * 1_000_000}
				_, err := fpga.Synthesize(d)
				cell := Figure15Cell{
					States:     states,
					Chars:      chars,
					ClockMHz:   mhz,
					Feasible:   err == nil,
					CriticalNS: float64(d.CriticalPath()) / 1e3,
				}
				if cell.Feasible {
					if mhz == 400 {
						out.Feasible400++
					} else {
						out.Feasible200++
					}
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// Render prints the two feasibility grids.
func (r *Figure15Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 15: valid PU configurations (2x16 deployment)")
	for _, mhz := range []int{400, 200} {
		fmt.Fprintf(w, "  %d MHz (y: chars, x: states; #=timing met, .=violated)\n", mhz)
		fmt.Fprint(w, "        ")
		for states := 8; states <= 32; states += 4 {
			fmt.Fprintf(w, "%4d", states)
		}
		fmt.Fprintln(w)
		for chars := 64; chars >= 16; chars -= 16 {
			fmt.Fprintf(w, "  %4d  ", chars)
			for states := 8; states <= 32; states += 4 {
				mark := "."
				for _, c := range r.Cells {
					if c.States == states && c.Chars == chars && c.ClockMHz == mhz && c.Feasible {
						mark = "#"
					}
				}
				fmt.Fprintf(w, "%4s", mark)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  feasible cells: %d at 400 MHz, %d at 200 MHz (paper: halving the clock greatly enlarges the space)\n",
		r.Feasible400, r.Feasible200)
}
