package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2.0", got)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v, want 500ms", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v, want 3ms", got)
	}
	if got := (1500 * Microsecond).Duration(); got != 1500*time.Microsecond {
		t.Errorf("Duration() = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{300 * Nanosecond, "300ns"},
		{2500 * Nanosecond, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{8864 * Millisecond, "8.864s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockPeriod(t *testing.T) {
	if got := FabricClock.Period(); got != 5*Nanosecond {
		t.Errorf("200MHz period = %v, want 5ns", got)
	}
	if got := PUClock.Period(); got != 2500*Picosecond {
		t.Errorf("400MHz period = %v, want 2.5ns", got)
	}
	var zero Clock
	if zero.Period() != 0 {
		t.Error("zero clock should have zero period")
	}
}

func TestClockCycles(t *testing.T) {
	// 512 cycles at 200 MHz = 2.56 µs: the String Reader's offset-batch
	// issue time used throughout the engine model.
	if got := FabricClock.Cycles(512); got != 2560*Nanosecond {
		t.Errorf("512 fabric cycles = %v, want 2.56µs", got)
	}
	if got := PUClock.Cycles(64); got != 160*Nanosecond {
		t.Errorf("64 PU cycles = %v, want 160ns", got)
	}
}

func TestCyclesFor(t *testing.T) {
	if got := FabricClock.CyclesFor(5 * Nanosecond); got != 1 {
		t.Errorf("CyclesFor(5ns) = %d, want 1", got)
	}
	if got := FabricClock.CyclesFor(6 * Nanosecond); got != 2 {
		t.Errorf("CyclesFor(6ns) = %d, want 2 (rounds up)", got)
	}
	if got := FabricClock.CyclesFor(0); got != 0 {
		t.Errorf("CyclesFor(0) = %d, want 0", got)
	}
	var zero Clock
	if zero.CyclesFor(Second) != 0 {
		t.Error("zero clock CyclesFor should be 0")
	}
}

func TestClockString(t *testing.T) {
	if got := FabricClock.String(); got != "200MHz" {
		t.Errorf("String() = %q", got)
	}
}

func TestCounterPhases(t *testing.T) {
	var ct Counter
	ct.Add("db", 3*Millisecond)
	ct.Add("hal", 1*Millisecond)
	ct.Add("db", 2*Millisecond)
	if got := ct.Get("db"); got != 5*Millisecond {
		t.Errorf("Get(db) = %v, want 5ms", got)
	}
	if got := ct.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %v, want 0", got)
	}
	if got := ct.Total(); got != 6*Millisecond {
		t.Errorf("Total = %v, want 6ms", got)
	}
	names := ct.Phases()
	if len(names) != 2 || names[0] != "db" || names[1] != "hal" {
		t.Errorf("Phases = %v, want [db hal] in first-use order", names)
	}
	ct.Reset()
	if ct.Total() != 0 || len(ct.Phases()) != 0 {
		t.Error("Reset did not clear counter")
	}
}

func TestCyclesRoundTripProperty(t *testing.T) {
	// For any non-negative cycle count, converting to Time and back must
	// be exact for clocks whose period divides a picosecond multiple.
	f := func(n uint16) bool {
		c := FabricClock
		return c.CyclesFor(c.Cycles(int64(n))) == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSecondsRoundTripProperty(t *testing.T) {
	f := func(ms uint16) bool {
		s := float64(ms) / 1000.0
		got := FromSeconds(s)
		want := Time(ms) * Millisecond
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= Nanosecond // float64 division of ms/1000 is not exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
