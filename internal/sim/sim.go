// Package sim provides the timing primitives shared by every simulated
// hardware component: picosecond-resolution time, clock domains, and cycle
// accounting. All FPGA-side latencies in the simulator are expressed as
// cycles of a Clock and converted to Time for aggregation, so that changing
// a clock frequency (as the paper does in §7.9 when trading throughput for
// state-graph size) consistently rescales every derived latency.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated duration or instant with picosecond resolution.
// Picoseconds in an int64 cover ~106 days of simulated time, far beyond any
// experiment in the paper (the longest run is a few hundred seconds).
type Time int64

// Common units.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (nanosecond resolution, rounding
// toward zero).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration to a Time.
func FromDuration(d time.Duration) Time { return Time(d) * Nanosecond }

func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", t/Nanosecond)
	case t < Millisecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Clock is a fixed-frequency clock domain. The prototype platform runs the
// QPI endpoint and most of the fabric at 200 MHz while the Processing Units
// are clocked at 400 MHz (§5.1).
type Clock struct {
	// HZ is the frequency in cycles per second.
	HZ int64
}

// Common clock domains of the prototype.
var (
	// FabricClock is the 200 MHz domain: QPI endpoint, String Reader,
	// arbitration logic, Output Collector.
	FabricClock = Clock{HZ: 200_000_000}
	// PUClock is the 400 MHz Processing Unit domain.
	PUClock = Clock{HZ: 400_000_000}
)

// Period returns the duration of one cycle.
func (c Clock) Period() Time {
	if c.HZ <= 0 {
		return 0
	}
	return Time(int64(Second) / c.HZ)
}

// Cycles converts a cycle count in this domain to a Time.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period() }

// CyclesFor returns the number of cycles (rounded up) that span d.
func (c Clock) CyclesFor(d Time) int64 {
	p := c.Period()
	if p <= 0 || d <= 0 {
		return 0
	}
	return int64((d + p - 1) / p)
}

func (c Clock) String() string {
	return fmt.Sprintf("%dMHz", c.HZ/1_000_000)
}

// Counter accumulates simulated time spent in named phases. Components use
// it to expose the breakdown the paper reports in Fig. 10 (database, UDF
// software part, HAL, hardware processing, config generation).
type Counter struct {
	phases []phase
}

type phase struct {
	name string
	t    Time
}

// Add accrues d to the named phase, creating it on first use. Phase order is
// first-use order, which the breakdown printers preserve.
func (ct *Counter) Add(name string, d Time) {
	for i := range ct.phases {
		if ct.phases[i].name == name {
			ct.phases[i].t += d
			return
		}
	}
	ct.phases = append(ct.phases, phase{name, d})
}

// Get returns the accumulated time of a phase (zero if absent).
func (ct *Counter) Get(name string) Time {
	for _, p := range ct.phases {
		if p.name == name {
			return p.t
		}
	}
	return 0
}

// Total returns the sum over all phases.
func (ct *Counter) Total() Time {
	var sum Time
	for _, p := range ct.phases {
		sum += p.t
	}
	return sum
}

// Phases returns the phase names in first-use order.
func (ct *Counter) Phases() []string {
	names := make([]string, len(ct.phases))
	for i, p := range ct.phases {
		names[i] = p.name
	}
	return names
}

// Reset clears all phases.
func (ct *Counter) Reset() { ct.phases = ct.phases[:0] }
