// Package rowdb is the commercial row store ("DBx") stand-in the paper
// compares against: rows are stored in packed record format, queries run
// row-at-a-time through a volcano-style iterator, and — unlike MonetDB —
// strictly one thread executes each query (§7.5: "DBx uses strictly one
// thread per query"). CONTAINS runs on a pre-built inverted index that must
// be rebuilt to see new rows (§7.2's >20-minute rebuild).
package rowdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"doppiodb/internal/invindex"
	"doppiodb/internal/perf"
	"doppiodb/internal/softregex"
	"doppiodb/internal/strmatch"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota
	KindString
)

// ColDef declares a column.
type ColDef struct {
	Name string
	Kind Kind
}

// Table is a row-format table: records are packed back to back in an
// arena; each record holds a 4-byte int or a uvarint-length-prefixed string
// per column.
type Table struct {
	Name string
	Cols []ColDef

	arena   []byte
	offsets []int // record start offsets
	byName  map[string]int

	indexes map[string]*invindex.Index // pre-built CONTAINS indexes
	indexed map[string]int             // rows covered at build time
}

// DB is the row-store instance.
type DB struct {
	tables map[string]*Table
}

// New creates an empty row store.
func New() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates a table.
func (db *DB) CreateTable(name string, cols ...ColDef) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("rowdb: table %q exists", name)
	}
	if len(cols) == 0 {
		return nil, errors.New("rowdb: table needs columns")
	}
	t := &Table{
		Name:    name,
		Cols:    cols,
		byName:  make(map[string]int),
		indexes: make(map[string]*invindex.Index),
		indexed: make(map[string]int),
	}
	for i, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("rowdb: duplicate column %q", c.Name)
		}
		t.byName[c.Name] = i
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("rowdb: no table %q", name)
	}
	return t, nil
}

// Rows returns the table's row count.
func (t *Table) Rows() int { return len(t.offsets) }

// Insert appends one row.
func (t *Table) Insert(vals ...any) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("rowdb: %d values for %d columns", len(vals), len(t.Cols))
	}
	start := len(t.arena)
	for i, v := range vals {
		switch t.Cols[i].Kind {
		case KindInt:
			var x int32
			switch n := v.(type) {
			case int32:
				x = n
			case int:
				x = int32(n)
			default:
				t.arena = t.arena[:start]
				return fmt.Errorf("rowdb: column %s wants int, got %T", t.Cols[i].Name, v)
			}
			t.arena = binary.LittleEndian.AppendUint32(t.arena, uint32(x))
		case KindString:
			s, ok := v.(string)
			if !ok {
				t.arena = t.arena[:start]
				return fmt.Errorf("rowdb: column %s wants string, got %T", t.Cols[i].Name, v)
			}
			t.arena = binary.AppendUvarint(t.arena, uint64(len(s)))
			t.arena = append(t.arena, s...)
		}
	}
	t.offsets = append(t.offsets, start)
	return nil
}

// Row is a decoded record view; string fields alias the arena.
type Row struct {
	Ints []int32
	Strs [][]byte
	// per-column value index into Ints/Strs
	t *Table
}

// Int returns the named int column's value.
func (r *Row) Int(name string) (int32, error) {
	i, ok := r.t.byName[name]
	if !ok || r.t.Cols[i].Kind != KindInt {
		return 0, fmt.Errorf("rowdb: no int column %q", name)
	}
	// Count preceding int columns.
	k := 0
	for j := 0; j < i; j++ {
		if r.t.Cols[j].Kind == KindInt {
			k++
		}
	}
	return r.Ints[k], nil
}

// Str returns the named string column's bytes.
func (r *Row) Str(name string) ([]byte, error) {
	i, ok := r.t.byName[name]
	if !ok || r.t.Cols[i].Kind != KindString {
		return nil, fmt.Errorf("rowdb: no string column %q", name)
	}
	k := 0
	for j := 0; j < i; j++ {
		if r.t.Cols[j].Kind == KindString {
			k++
		}
	}
	return r.Strs[k], nil
}

// Scan is the volcano iterator: it decodes records one at a time.
type Scan struct {
	t   *Table
	idx int
	row Row
}

// NewScan opens an iterator over the table.
func (t *Table) NewScan() *Scan {
	return &Scan{t: t, row: Row{t: t}}
}

// Next decodes the next record; it returns nil at the end.
func (s *Scan) Next() *Row {
	if s.idx >= len(s.t.offsets) {
		return nil
	}
	off := s.t.offsets[s.idx]
	s.idx++
	r := &s.row
	r.Ints = r.Ints[:0]
	r.Strs = r.Strs[:0]
	buf := s.t.arena
	for _, c := range s.t.Cols {
		switch c.Kind {
		case KindInt:
			r.Ints = append(r.Ints, int32(binary.LittleEndian.Uint32(buf[off:])))
			off += 4
		case KindString:
			n, sz := binary.Uvarint(buf[off:])
			off += sz
			r.Strs = append(r.Strs, buf[off:off+int(n):off+int(n)])
			off += int(n)
		}
	}
	return r
}

// Predicate filters rows and reports per-row work.
type Predicate interface {
	Eval(r *Row) (bool, perf.Work, error)
}

// likePred implements LIKE/ILIKE.
type likePred struct {
	col string
	p   *strmatch.LikePattern
}

// Like builds a LIKE predicate over a string column.
func Like(col, pattern string, foldCase bool) (Predicate, error) {
	p, err := strmatch.CompileLike(pattern, foldCase)
	if err != nil {
		return nil, err
	}
	return &likePred{col: col, p: p}, nil
}

func (l *likePred) Eval(r *Row) (bool, perf.Work, error) {
	s, err := r.Str(l.col)
	if err != nil {
		return false, perf.Work{}, err
	}
	ok := l.p.Match(s)
	return ok, perf.Work{
		Bytes:       uint64(len(s)),
		Comparisons: uint64(len(s)/3 + 8*l.p.Segments()),
	}, nil
}

// regexpPred implements REGEXP_LIKE via the backtracking engine.
type regexpPred struct {
	col string
	bt  *softregex.Backtracker
}

// Regexp builds a REGEXP_LIKE predicate over a string column.
func Regexp(col, pattern string, foldCase bool) (Predicate, error) {
	bt, err := softregex.NewBacktracker(pattern, foldCase)
	if err != nil {
		return nil, err
	}
	return &regexpPred{col: col, bt: bt}, nil
}

func (p *regexpPred) Eval(r *Row) (bool, perf.Work, error) {
	s, err := r.Str(p.col)
	if err != nil {
		return false, perf.Work{}, err
	}
	pos, steps := p.bt.Match(s)
	return pos != 0, perf.Work{Bytes: uint64(len(s)), Steps: steps, RegexRows: 1}, nil
}

// SelectCount runs SELECT count(*) WHERE pred over the table with one
// thread (DBx's execution model), returning the count and the work
// performed.
func (db *DB) SelectCount(t *Table, pred Predicate) (int, perf.Work, error) {
	var work perf.Work
	count := 0
	sc := t.NewScan()
	for r := sc.Next(); r != nil; r = sc.Next() {
		ok, w, err := pred.Eval(r)
		if err != nil {
			return 0, work, err
		}
		work.Rows++
		work.Add(w)
		if ok {
			count++
		}
	}
	return count, work, nil
}

// BuildContainsIndex (re)builds the CONTAINS index over a string column,
// covering all current rows; the caller charges perf.Model.IndexBuild.
func (db *DB) BuildContainsIndex(t *Table, col string) (rows int, err error) {
	i, ok := t.byName[col]
	if !ok || t.Cols[i].Kind != KindString {
		return 0, fmt.Errorf("rowdb: no string column %q", col)
	}
	var all []string
	sc := t.NewScan()
	for r := sc.Next(); r != nil; r = sc.Next() {
		s, err := r.Str(col)
		if err != nil {
			return 0, err
		}
		all = append(all, string(s))
	}
	t.indexes[col] = invindex.Build(all, true)
	t.indexed[col] = len(all)
	return len(all), nil
}

// Contains errors.
var (
	ErrNoIndex    = errors.New("rowdb: CONTAINS requires a pre-built index")
	ErrStaleIndex = errors.New("rowdb: CONTAINS index is stale; rebuild it")
)

// ContainsCount answers SELECT count(*) WHERE CONTAINS(col, query) using
// the pre-built index. It fails when the index is missing or stale — the
// maintenance burden the paper's scan-based operator avoids.
func (db *DB) ContainsCount(t *Table, col, query string) (int, perf.Work, error) {
	ix, ok := t.indexes[col]
	if !ok {
		return 0, perf.Work{}, ErrNoIndex
	}
	if t.indexed[col] != t.Rows() {
		return 0, perf.Work{}, ErrStaleIndex
	}
	oids, lookups, err := ix.Search(query)
	if err != nil {
		return 0, perf.Work{}, err
	}
	st := ix.Stats()
	var postings uint64
	if st.Words > 0 {
		postings = uint64(lookups) * uint64(st.Postings/st.Words)
	}
	return len(oids), perf.Work{Rows: len(oids), Postings: postings}, nil
}
