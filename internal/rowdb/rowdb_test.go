package rowdb

import (
	"testing"

	"doppiodb/internal/workload"
)

func loadAddresses(t *testing.T, n int, kind workload.HitKind, sel float64) (*DB, *Table, int) {
	t.Helper()
	db := New()
	tbl, err := db.CreateTable("address_table",
		ColDef{"id", KindInt}, ColDef{"address_string", KindString})
	if err != nil {
		t.Fatal(err)
	}
	rows, hits := workload.NewGenerator(8, 64).Table(n, kind, sel)
	for i, r := range rows {
		if err := tbl.Insert(int32(i), r); err != nil {
			t.Fatal(err)
		}
	}
	return db, tbl, hits
}

func TestInsertAndScan(t *testing.T) {
	db := New()
	tbl, _ := db.CreateTable("t", ColDef{"id", KindInt}, ColDef{"s", KindString}, ColDef{"n", KindInt})
	tbl.Insert(1, "alpha", 10)
	tbl.Insert(int32(2), "beta", 20)
	sc := tbl.NewScan()
	r := sc.Next()
	if v, _ := r.Int("id"); v != 1 {
		t.Errorf("id = %d", v)
	}
	if s, _ := r.Str("s"); string(s) != "alpha" {
		t.Errorf("s = %q", s)
	}
	if v, _ := r.Int("n"); v != 10 {
		t.Errorf("n = %d", v)
	}
	r = sc.Next()
	if s, _ := r.Str("s"); string(s) != "beta" {
		t.Errorf("s = %q", s)
	}
	if sc.Next() != nil {
		t.Error("scan did not end")
	}
	if _, err := r.Int("s"); err == nil {
		t.Error("Int over string column accepted")
	}
	if _, err := r.Str("missing"); err == nil {
		t.Error("missing column accepted")
	}
}

func TestInsertTypeErrors(t *testing.T) {
	db := New()
	tbl, _ := db.CreateTable("t", ColDef{"id", KindInt}, ColDef{"s", KindString})
	if err := tbl.Insert("x", "y"); err == nil {
		t.Error("bad int accepted")
	}
	if err := tbl.Insert(1, 2); err == nil {
		t.Error("bad string accepted")
	}
	if err := tbl.Insert(1); err == nil {
		t.Error("arity mismatch accepted")
	}
	if tbl.Rows() != 0 {
		t.Errorf("failed inserts left %d rows", tbl.Rows())
	}
	tbl.Insert(1, "ok")
	if tbl.Rows() != 1 {
		t.Error("good insert lost")
	}
}

func TestSelectCountLike(t *testing.T) {
	db, tbl, hits := loadAddresses(t, 10_000, workload.HitQ1, 0.2)
	pred, err := Like("address_string", workload.Q1Like, false)
	if err != nil {
		t.Fatal(err)
	}
	n, work, err := db.SelectCount(tbl, pred)
	if err != nil {
		t.Fatal(err)
	}
	if n != hits {
		t.Errorf("LIKE count = %d, want %d", n, hits)
	}
	if work.Rows != 10_000 || work.Comparisons == 0 {
		t.Errorf("work: %+v", work)
	}
}

func TestSelectCountRegexp(t *testing.T) {
	db, tbl, hits := loadAddresses(t, 8_000, workload.HitQ2, 0.2)
	pred, err := Regexp("address_string", workload.Q2, false)
	if err != nil {
		t.Fatal(err)
	}
	n, work, err := db.SelectCount(tbl, pred)
	if err != nil {
		t.Fatal(err)
	}
	if n != hits {
		t.Errorf("REGEXP count = %d, want %d", n, hits)
	}
	if work.Steps == 0 || work.RegexRows != 8_000 {
		t.Errorf("work: %+v", work)
	}
}

func TestContainsRequiresFreshIndex(t *testing.T) {
	db, tbl, hits := loadAddresses(t, 5_000, workload.HitTable1, 0.2)
	if _, _, err := db.ContainsCount(tbl, "address_string", workload.Table1Contains); err != ErrNoIndex {
		t.Errorf("err = %v, want ErrNoIndex", err)
	}
	rows, err := db.BuildContainsIndex(tbl, "address_string")
	if err != nil || rows != 5_000 {
		t.Fatalf("build: %d %v", rows, err)
	}
	n, work, err := db.ContainsCount(tbl, "address_string", workload.Table1Contains)
	if err != nil {
		t.Fatal(err)
	}
	if n != hits {
		t.Errorf("CONTAINS = %d, want %d", n, hits)
	}
	if work.Postings == 0 {
		t.Error("no postings counted")
	}
	// New rows make the index stale.
	tbl.Insert(9999, "Alan Turing Cheshire again")
	if _, _, err := db.ContainsCount(tbl, "address_string", workload.Table1Contains); err != ErrStaleIndex {
		t.Errorf("err = %v, want ErrStaleIndex", err)
	}
	if _, err := db.BuildContainsIndex(tbl, "id"); err == nil {
		t.Error("index over int column accepted")
	}
}

func TestRowAndColumnEnginesAgree(t *testing.T) {
	// The two database substrates must produce identical counts on
	// identical data for every operator class.
	db, tbl, hits := loadAddresses(t, 6_000, workload.HitQ4, 0.25)
	pred, _ := Regexp("address_string", workload.Q4, false)
	n, _, err := db.SelectCount(tbl, pred)
	if err != nil {
		t.Fatal(err)
	}
	if n != hits {
		t.Errorf("count = %d, want %d", n, hits)
	}
}

func TestCreateTableErrors(t *testing.T) {
	db := New()
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("no columns accepted")
	}
	db.CreateTable("t", ColDef{"a", KindInt})
	if _, err := db.CreateTable("t", ColDef{"a", KindInt}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable("u", ColDef{"a", KindInt}, ColDef{"a", KindInt}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table found")
	}
}
