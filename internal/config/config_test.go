package config

import (
	"math/rand"
	"strings"
	"testing"

	"doppiodb/internal/token"
)

var paperQueries = []string{
	`Strasse`,
	`(Strasse|Str\.).*(8[0-9]{4})`,
	`[0-9]+(USD|EUR|GBP)`,
	`[A-Za-z]{3}\:[0-9]{4}`,
	`(a|b).*c`,
	`(Blue|Gray).*skies`,
	`^a.*z$`,
	`a(b|.*c)d+`,
	`[^0-9]{2}x`,
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, pat := range paperQueries {
		prog, err := token.CompilePattern(pat, token.Options{})
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		buf, err := Encode(prog, DefaultLimits)
		if err != nil {
			t.Fatalf("encode %q: %v", pat, err)
		}
		if len(buf)%CacheLine != 0 {
			t.Errorf("%q: vector not cache-line padded: %d", pat, len(buf))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %q: %v", pat, err)
		}
		// Behavioural round trip: decoded program must match the
		// same strings at the same positions.
		inputs := []string{
			"", "Strasse", "Koblenzer Strasse 44", "Str. 80001",
			"100USD", "ABC:1234", "aXXcd", "abdd", "xxa123z",
			"zzx", "bc", "aXbz",
		}
		for _, in := range inputs {
			if a, b := prog.MatchString(in), got.MatchString(in); a != b {
				t.Errorf("%q on %q: original=%d decoded=%d", pat, in, a, b)
			}
		}
	}
}

func TestEncodeFoldCaseFlag(t *testing.T) {
	prog, _ := token.CompilePattern(`abc`, token.Options{FoldCase: true})
	buf, err := Encode(prog, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.FoldCase {
		t.Error("FoldCase flag lost")
	}
	if got.MatchString("xABCx") != 4 {
		t.Error("decoded folded program does not fold")
	}
}

func TestFitsLimits(t *testing.T) {
	prog, _ := token.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, token.Options{})
	if err := Fits(prog, DefaultLimits); err != nil {
		t.Errorf("Q2 should fit default deployment: %v", err)
	}
	if err := Fits(prog, Limits{MaxStates: 3, MaxChars: 32}); err != ErrTooManyStates {
		t.Errorf("want ErrTooManyStates, got %v", err)
	}
	if err := Fits(prog, Limits{MaxStates: 16, MaxChars: 10}); err != ErrTooManyChars {
		t.Errorf("want ErrTooManyChars, got %v", err)
	}
	if _, err := Encode(prog, Limits{MaxStates: 3, MaxChars: 32}); err != ErrTooManyStates {
		t.Errorf("Encode should propagate limit error, got %v", err)
	}
}

func TestWords(t *testing.T) {
	prog, _ := token.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, token.Options{})
	buf, err := Encode(prog, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	w := Words(buf)
	if w < 1 || w > 4 {
		t.Errorf("Q2 config vector = %d words, expected a handful of cache lines", w)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"short":         make([]byte, 4),
		"unaligned":     make([]byte, 65),
		"bad magic":     append([]byte{0xFF, 1}, make([]byte, 62)...),
		"bad version":   append([]byte{magic, 99}, make([]byte, 62)...),
		"truncated":     append([]byte{magic, version, 30, 200, 0, 0, 0, 0}, make([]byte, 56)...),
		"bad state ref": append([]byte{magic, version, 1, 1, 0, 0, 0, 0, 'a', 'a', entryChainEnd, 5}, make([]byte, 52)...),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: Decode succeeded, want error", name)
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	// Random small patterns: encode→decode must preserve match
	// behaviour exactly.
	r := rand.New(rand.NewSource(11))
	atoms := []string{"a", "b", "[ab]", "[^a]", "c"}
	randPat := func(depth int) string {
		var build func(d int) string
		build = func(d int) string {
			if d == 0 {
				return atoms[r.Intn(len(atoms))]
			}
			switch r.Intn(6) {
			case 0:
				return build(d-1) + build(d-1)
			case 1:
				return "(" + build(d-1) + "|" + build(d-1) + ")"
			case 2:
				return "(" + build(d-1) + ")+"
			case 3:
				return build(d-1) + ".*" + build(d-1)
			default:
				return build(d - 1)
			}
		}
		return build(depth)
	}
	for i := 0; i < 300; i++ {
		pat := randPat(3)
		prog, err := token.CompilePattern(pat, token.Options{})
		if err != nil {
			continue
		}
		buf, err := Encode(prog, Limits{MaxStates: 32, MaxChars: 64})
		if err != nil {
			continue // over budget is fine for this property
		}
		dec, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %q: %v", pat, err)
		}
		for k := 0; k < 20; k++ {
			var b strings.Builder
			for j := 0; j < r.Intn(12); j++ {
				b.WriteByte("abcx"[r.Intn(4)])
			}
			in := b.String()
			if a, d := prog.MatchString(in), dec.MatchString(in); a != d {
				t.Fatalf("%q on %q: %d vs %d", pat, in, a, d)
			}
		}
	}
}
