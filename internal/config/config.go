// Package config encodes a compiled token automaton into the configuration
// vector that parametrizes a Processing Unit at runtime (§6.1): the Tokens
// (character matcher registers), Triggers (token→state mapping), and State
// Transitions (the fully connected state graph's enable bits), plus the
// coupling flags that pair matchers into ranges and the collation flags.
//
// The vector is a sequence of 512-bit (64-byte) memory words — the QPI
// cache-line granularity — written to the job-parameter block in shared
// memory and loaded by the HAL hardware module in ~300 ns (§7.4). Encoding
// fails when the expression exceeds the deployed circuit's character or
// state budget, which is the trigger for hybrid execution (§7.8).
package config

import (
	"errors"
	"fmt"

	"doppiodb/internal/regex"
	"doppiodb/internal/token"
)

// CacheLine is the memory word size of the configuration vector.
const CacheLine = 64

// Wire-format constants.
const (
	magic   = 0xD0
	version = 1

	headerSize = 8
	entrySize  = 4 // one matcher-range entry: lo, hi, flags, state
	stateSize  = 5 // one state: flags byte + 32-bit transition row
)

// Matcher-entry flag bits.
const (
	entryContinues = 1 << 0 // ORed with the previous entry (same chain position)
	entryNegated   = 1 << 1
	entryChainEnd  = 1 << 2 // last chain position of its token
)

// Header flag bits.
const (
	flagAnchored    = 1 << 0
	flagEndAnchored = 1 << 1
	flagFoldCase    = 1 << 2
)

// State flag bits.
const (
	stateStart       = 1 << 0
	stateStartGapped = 1 << 1
	stateAccept      = 1 << 2
	stateHold        = 1 << 3
)

// Limits is the deployed circuit's capacity, fixed at FPGA synthesis time
// (§6.4, §7.9). MaxStates counts NFA states including the end state;
// MaxChars counts character-matcher registers (a range costs two).
type Limits struct {
	MaxStates int
	MaxChars  int
}

// DefaultLimits is the evaluation deployment: 16 states and 32 characters
// fit every query of §7.1.1 and close timing at 400 MHz (Fig. 15).
var DefaultLimits = Limits{MaxStates: 16, MaxChars: 32}

// Capacity errors: the HUDF catches these and falls back to hybrid or pure
// software execution.
var (
	ErrTooManyStates = errors.New("config: expression needs more NFA states than the deployed circuit provides")
	ErrTooManyChars  = errors.New("config: expression needs more character matchers than the deployed circuit provides")
)

// Fits reports whether prog fits the deployment, returning the specific
// capacity error when it does not.
func Fits(prog *token.Program, lim Limits) error {
	if prog.NumStates() > lim.MaxStates {
		return ErrTooManyStates
	}
	if prog.NumChars() > lim.MaxChars {
		return ErrTooManyChars
	}
	return nil
}

// Encode serializes prog into a configuration vector padded to whole
// 512-bit words.
func Encode(prog *token.Program, lim Limits) ([]byte, error) {
	if err := Fits(prog, lim); err != nil {
		return nil, err
	}
	if len(prog.Tokens) > 32 {
		return nil, ErrTooManyStates // transition rows are 32 bits wide
	}
	var entries []byte
	for j := range prog.Tokens {
		tok := &prog.Tokens[j]
		for k := range tok.Matchers {
			m := &tok.Matchers[k]
			for ri, r := range m.Ranges {
				flags := byte(0)
				if ri > 0 {
					flags |= entryContinues
				}
				if m.Negated {
					flags |= entryNegated
				}
				if k == len(tok.Matchers)-1 && ri == len(m.Ranges)-1 {
					flags |= entryChainEnd
				}
				entries = append(entries, r.Lo, r.Hi, flags, byte(j))
			}
		}
	}
	var states []byte
	for j := range prog.Tokens {
		flags := byte(0)
		if prog.Start[j] {
			flags |= stateStart
		}
		if prog.StartGapped[j] {
			flags |= stateStartGapped
		}
		if prog.Accept[j] {
			flags |= stateAccept
		}
		if prog.Hold[j] {
			flags |= stateHold
		}
		var row uint32
		for _, p := range prog.Preds[j] {
			row |= 1 << uint(p)
		}
		states = append(states, flags,
			byte(row), byte(row>>8), byte(row>>16), byte(row>>24))
	}

	hdrFlags := byte(0)
	if prog.Anchored {
		hdrFlags |= flagAnchored
	}
	if prog.EndAnchored {
		hdrFlags |= flagEndAnchored
	}
	if prog.FoldCase {
		hdrFlags |= flagFoldCase
	}
	nEntries := len(entries) / entrySize
	if nEntries > 255 {
		return nil, ErrTooManyChars
	}
	buf := make([]byte, 0, headerSize+len(entries)+len(states)+CacheLine)
	buf = append(buf, magic, version, byte(len(prog.Tokens)), byte(nEntries),
		hdrFlags, 0, 0, 0)
	buf = append(buf, entries...)
	buf = append(buf, states...)
	if pad := len(buf) % CacheLine; pad != 0 {
		buf = append(buf, make([]byte, CacheLine-pad)...)
	}
	return buf, nil
}

// Decode reconstructs the token automaton from a configuration vector, as
// the HAL hardware module does when parametrizing a PU.
func Decode(buf []byte) (*token.Program, error) {
	if len(buf) < headerSize || len(buf)%CacheLine != 0 {
		return nil, fmt.Errorf("config: bad vector length %d", len(buf))
	}
	if buf[0] != magic || buf[1] != version {
		return nil, fmt.Errorf("config: bad magic/version %#x/%d", buf[0], buf[1])
	}
	nTokens := int(buf[2])
	nEntries := int(buf[3])
	hdrFlags := buf[4]
	need := headerSize + nEntries*entrySize + nTokens*stateSize
	if len(buf) < need {
		return nil, fmt.Errorf("config: vector truncated: %d < %d", len(buf), need)
	}

	prog := &token.Program{
		Tokens:      make([]token.Token, nTokens),
		Preds:       make([][]int, nTokens),
		Start:       make([]bool, nTokens),
		StartGapped: make([]bool, nTokens),
		Accept:      make([]bool, nTokens),
		Hold:        make([]bool, nTokens),
		Anchored:    hdrFlags&flagAnchored != 0,
		EndAnchored: hdrFlags&flagEndAnchored != 0,
		FoldCase:    hdrFlags&flagFoldCase != 0,
	}

	off := headerSize
	for e := 0; e < nEntries; e++ {
		lo, hi, flags, st := buf[off], buf[off+1], buf[off+2], buf[off+3]
		off += entrySize
		if int(st) >= nTokens {
			return nil, fmt.Errorf("config: entry %d references state %d of %d", e, st, nTokens)
		}
		tok := &prog.Tokens[st]
		r := regex.Range{Lo: lo, Hi: hi}
		if flags&entryContinues != 0 && len(tok.Matchers) > 0 {
			last := &tok.Matchers[len(tok.Matchers)-1]
			last.Ranges = append(last.Ranges, r)
		} else {
			tok.Matchers = append(tok.Matchers, token.Matcher{
				Ranges:  []regex.Range{r},
				Negated: flags&entryNegated != 0,
			})
		}
	}
	for j := 0; j < nTokens; j++ {
		if len(prog.Tokens[j].Matchers) == 0 {
			return nil, fmt.Errorf("config: state %d has no matcher chain", j)
		}
	}
	for j := 0; j < nTokens; j++ {
		flags := buf[off]
		row := uint32(buf[off+1]) | uint32(buf[off+2])<<8 |
			uint32(buf[off+3])<<16 | uint32(buf[off+4])<<24
		off += stateSize
		prog.Start[j] = flags&stateStart != 0
		prog.StartGapped[j] = flags&stateStartGapped != 0
		prog.Accept[j] = flags&stateAccept != 0
		prog.Hold[j] = flags&stateHold != 0
		for p := 0; p < 32; p++ {
			if row&(1<<uint(p)) != 0 {
				if p >= nTokens {
					return nil, fmt.Errorf("config: state %d has predecessor %d of %d", j, p, nTokens)
				}
				prog.Preds[j] = append(prog.Preds[j], p)
			}
		}
	}
	return prog, nil
}

// Words returns the number of 512-bit memory words of an encoded vector.
func Words(buf []byte) int { return len(buf) / CacheLine }
