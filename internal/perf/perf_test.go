package perf

import (
	"testing"

	"doppiodb/internal/sim"
)

func TestMonetDBScanFloor(t *testing.T) {
	m := Default()
	// Tiny scans sit on the parallelization floor (Fig. 9a's flat
	// region).
	small := Work{Rows: 10_000, Comparisons: 200_000}
	if got := m.MonetDBScan(small, true); got != m.MDBFloor {
		t.Errorf("small parallel scan = %v, want floor %v", got, m.MDBFloor)
	}
	// Sequential mode has no floor.
	if got := m.MonetDBScan(small, false); got >= m.MDBFloor {
		t.Errorf("sequential scan %v should undercut the floor", got)
	}
}

func TestMonetDBScanScalesLinearlyBeyondFloor(t *testing.T) {
	m := Default()
	w10 := Work{Rows: 10_000_000, Comparisons: 300_000_000}
	w20 := Work{Rows: 20_000_000, Comparisons: 600_000_000}
	t10 := m.MonetDBScan(w10, true)
	t20 := m.MonetDBScan(w20, true)
	ratio := float64(t20) / float64(t10)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("scan not linear: %v -> %v (ratio %.2f)", t10, t20, ratio)
	}
}

func TestTable1Calibration(t *testing.T) {
	m := Default()
	// 2.5 M rows of 64 B. LIKE '%Alan%Turing%Cheshire%': the scan work
	// mdb reports is ~rows/3 + 8*segments comparisons per row.
	like := Work{Rows: 2_500_000, Comparisons: 2_500_000 * (64/3 + 8*3)}
	tl := m.MonetDBScan(like, true)
	if s := tl.Seconds(); s < 0.25 || s > 0.7 {
		t.Errorf("MonetDB LIKE = %.3fs, want ≈0.431 (Table 1)", s)
	}
	td := m.DBXScan(like)
	if s := td.Seconds(); s < 0.2 || s > 0.6 {
		t.Errorf("DBx LIKE = %.3fs, want ≈0.361 (Table 1)", s)
	}
	// REGEXP_LIKE('Alan.*Turing.*Cheshire'): ~150 backtracking steps per
	// 64 B row on this pattern (measured on the workload generator).
	// The model lands at ~3 s against the paper's 8.864 s — the regex
	// constants favour Figures 9/11's relative shapes (see perf.go).
	regex := Work{Rows: 2_500_000, RegexRows: 2_500_000, Steps: 2_500_000 * 150}
	tr := m.MonetDBScan(regex, true)
	if s := tr.Seconds(); s < 2 || s > 9 {
		t.Errorf("MonetDB REGEXP = %.3fs, want 2-9 (paper 8.864)", s)
	}
	// CONTAINS: an order of magnitude below LIKE.
	contains := Work{Postings: 1_500_000}
	tc := m.ContainsLookup(contains, true)
	if s := tc.Seconds(); s < 0.02 || s > 0.08 {
		t.Errorf("MonetDB CONTAINS = %.3fs, want ≈0.033 (Table 1)", s)
	}
	if m.ContainsLookup(contains, false) >= tc {
		t.Error("DBx CONTAINS should be cheaper than MonetDB's")
	}
	// Ordering: CONTAINS < LIKE < REGEXP by roughly an order of
	// magnitude each — the trend Table 1 highlights.
	if !(tc < tl && tl < tr) {
		t.Errorf("operator ordering broken: %v %v %v", tc, tl, tr)
	}
	if float64(tr)/float64(tl) < 6 {
		t.Errorf("REGEXP/LIKE ratio %.1f, want ≥ 6 (order-of-magnitude trend)", float64(tr)/float64(tl))
	}
}

func TestWorkAdd(t *testing.T) {
	a := Work{Rows: 1, Bytes: 2, Comparisons: 3, Steps: 4, Postings: 5}
	b := a
	a.Add(b)
	if a != (Work{Rows: 2, Bytes: 4, Comparisons: 6, Steps: 8, Postings: 10}) {
		t.Errorf("Add: %+v", a)
	}
}

func TestIndexBuildCost(t *testing.T) {
	m := Default()
	// §7.2: rebuilding the index for 2.5 M tuples takes >20 minutes.
	got := m.IndexBuild(2_500_000)
	if got < 20*60*sim.Second {
		t.Errorf("index build = %v, want > 20 min", got)
	}
}

func TestThroughputHelpers(t *testing.T) {
	m := Default()
	resp := 500 * sim.Millisecond
	if q := m.MonetDBAggregateThroughput(resp); q < 1.9 || q > 2.1 {
		t.Errorf("MonetDB throughput = %.2f, want 2", q)
	}
	// DBx scales linearly with clients up to the core count.
	one := m.DBXThroughput(resp, 1)
	five := m.DBXThroughput(resp, 5)
	twenty := m.DBXThroughput(resp, 20)
	if five < 4.9*one || five > 5.1*one {
		t.Errorf("DBx not linear: 1->%.2f 5->%.2f", one, five)
	}
	if twenty > 10.1*one {
		t.Errorf("DBx should cap at 10 threads: %.2f", twenty)
	}
	if m.MonetDBAggregateThroughput(0) != 0 || m.DBXThroughput(0, 3) != 0 {
		t.Error("zero response time should yield zero throughput")
	}
}
