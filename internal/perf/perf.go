// Package perf is the calibrated software-side performance model. The
// reproduction runs on whatever host executes the tests, so wall-clock
// measurements of our Go baselines cannot be compared against the paper's
// 10-core Xeon E5-2680 v2 numbers. Instead, every software operator counts
// the work it really performed (rows touched, byte comparisons, backtracking
// steps, postings scanned) and this package converts that work into
// simulated time with constants calibrated against the paper's published
// measurements:
//
//   - Table 1 (2.5 M rows of 64 B addresses): MonetDB CONTAINS 0.033 s,
//     LIKE 0.431 s, REGEXP_LIKE 8.864 s; DBx CONTAINS 0.021 s, LIKE 0.361 s.
//   - Figure 9a: MonetDB response time is flat (~0.43 s) until the 10-way
//     partitioning is saturated, then linear.
//   - Figure 10: the database + UDF software overheads for a 10 k-tuple
//     relation total a few tens of microseconds.
//
// Complexity-dependence is *emergent*: the regex cost is per backtracking
// step, so Q2–Q4 diverge exactly as PCRE's behaviour makes them, which is
// the effect the paper's evaluation highlights.
package perf

import (
	"doppiodb/internal/sim"
)

// Model holds the calibrated constants. All per-unit costs are single-thread
// costs; engines divide by their worker count.
type Model struct {
	// MonetDB (column store, intra-operator parallelism over Threads).
	MDBThreads     int      // worker threads (10-core machine)
	MDBRowOverhead sim.Time // per-row BAT iteration + string fetch, per thread
	MDBFloor       sim.Time // parallel-mode sync/partitioning floor (Fig. 9a's flat region)
	MDBSeqOverhead sim.Time // sequential_pipe per-query overhead (no parallel sync)

	// DBx (commercial row store, strictly one thread per query).
	DBXRowOverhead sim.Time // per-row volcano iteration + predicate dispatch

	// Matching work.
	CmpCost          sim.Time // per byte comparison (LIKE / Boyer-Moore)
	StepCost         sim.Time // per backtracking step (PCRE-style regex)
	RegexRowOverhead sim.Time // per-row PCRE invocation cost (REGEXP_LIKE)
	PostingCost      sim.Time // per posting-list entry touched (CONTAINS)

	// Fixed query-path overheads (Figure 10's breakdown for small
	// relations).
	DatabaseOverhead sim.Time // parsing, planning, BAT plumbing
	UDFOverhead      sim.Time // UDF invocation + result handover
	ConfigGenTime    sim.Time // regex → configuration vector ("less than 1 µs")

	// Index maintenance (the CONTAINS trade-off of §7.2).
	IndexBuildPerRow sim.Time // inverted-index build cost per row
}

// Default returns the calibrated model. See the package comment for the
// anchors; the individual derivations are commented inline.
func Default() Model {
	return Model{
		MDBThreads: 10,
		// Table 1 LIKE: 0.431 s for 2.5 M rows on 10 threads with the
		// floor subtracted ⇒ ~1.5 µs/row/thread dominated by string
		// materialization; comparisons add the rest.
		MDBRowOverhead: 1200 * sim.Nanosecond,
		// Figure 9a: the MonetDB lines are flat until the 10-way
		// partitioning is saturated; the floor also keeps Q1's
		// response near Table 1's 0.431 s at 2.5 M rows.
		MDBFloor:       200 * sim.Millisecond,
		MDBSeqOverhead: 2 * sim.Millisecond,
		// Table 1 DBx LIKE: 0.361 s / 2.5 M rows single-threaded
		// ⇒ ~144 ns/row total; most of it row iteration.
		DBXRowOverhead: 120 * sim.Nanosecond,
		// Boyer-Moore on 64 B addresses makes ~15–20 comparisons/row.
		CmpCost: 1 * sim.Nanosecond,
		// Regex costs balance three published anchors that are in
		// mild tension (PCRE's cost is pattern-specific in ways a
		// linear model cannot fully capture): Table 1's 8.864 s
		// REGEXP_LIKE at 2.5 M rows, Figure 9a's "about an order of
		// magnitude" over Q1 for Q2–Q4, and Figure 11a's "5-15x
		// slower than Q1" throughput. These values land Q2–Q4 at
		// ~4-5 s (FPGA speedup ≈130-160x, within the abstract's "one
		// to two orders of magnitude") and Table 1's pattern at
		// ~3 s (a 3x deviation, recorded in EXPERIMENTS.md).
		StepCost:         30 * sim.Nanosecond,
		RegexRowOverhead: 6 * sim.Microsecond,
		// Table 1 CONTAINS: tens of ms for ~1.5 M postings touched.
		PostingCost: 20 * sim.Nanosecond,

		DatabaseOverhead: 60 * sim.Microsecond,
		UDFOverhead:      25 * sim.Microsecond,
		ConfigGenTime:    800 * sim.Nanosecond,

		// §7.2: rebuilding the CONTAINS index takes >20 min for 2.5 M
		// tuples in DBx ⇒ ~0.5 ms/row.
		IndexBuildPerRow: 480 * sim.Microsecond,
	}
}

// Work counts the real work a software scan performed.
type Work struct {
	Rows        int    // rows touched
	Bytes       uint64 // payload bytes touched
	Comparisons uint64 // byte comparisons (LIKE)
	Steps       uint64 // backtracking steps (regex)
	RegexRows   int    // rows evaluated through the PCRE-style engine
	Postings    uint64 // posting entries touched (CONTAINS)
}

// Add accumulates other into w.
func (w *Work) Add(other Work) {
	w.Rows += other.Rows
	w.Bytes += other.Bytes
	w.Comparisons += other.Comparisons
	w.Steps += other.Steps
	w.RegexRows += other.RegexRows
	w.Postings += other.Postings
}

// scanCost is the single-threaded cost of the work under a per-row
// overhead.
func (m Model) scanCost(w Work, rowOverhead sim.Time) sim.Time {
	t := sim.Time(w.Rows) * rowOverhead
	t += sim.Time(w.Comparisons) * m.CmpCost
	t += sim.Time(w.Steps) * m.StepCost
	t += sim.Time(w.RegexRows) * m.RegexRowOverhead
	t += sim.Time(w.Postings) * m.PostingCost
	return t
}

// MonetDBScan converts scan work into MonetDB response time. parallel
// selects the default optimizer pipeline (10-way intra-operator
// parallelism with its synchronization floor); otherwise sequential_pipe.
func (m Model) MonetDBScan(w Work, parallel bool) sim.Time {
	single := m.scanCost(w, m.MDBRowOverhead)
	if parallel {
		t := single / sim.Time(m.MDBThreads)
		if t < m.MDBFloor {
			return m.MDBFloor
		}
		return t
	}
	return m.MDBSeqOverhead + single
}

// DBXScan converts scan work into DBx response time (one thread per
// query).
func (m Model) DBXScan(w Work) sim.Time {
	return m.scanCost(w, m.DBXRowOverhead)
}

// ContainsLookup is the response time of an index-backed CONTAINS.
func (m Model) ContainsLookup(w Work, monetdb bool) sim.Time {
	base := 18 * sim.Millisecond // query-path fixed cost
	if monetdb {
		base = 28 * sim.Millisecond
	}
	return base + sim.Time(w.Postings)*m.PostingCost
}

// IndexBuild is the time to (re)build the CONTAINS index over n rows.
func (m Model) IndexBuild(n int) sim.Time {
	return sim.Time(n) * m.IndexBuildPerRow
}

// MonetDBAggregateThroughput returns MonetDB's query throughput (queries/s)
// for a scan whose single-query response is t: the engine is
// work-conserving, so with many clients the aggregate stays 1/t (Fig. 11a's
// flat MonetDB lines).
func (m Model) MonetDBAggregateThroughput(t sim.Time) float64 {
	if t <= 0 {
		return 0
	}
	return 1.0 / t.Seconds()
}

// DBXThroughput returns DBx's aggregate throughput with `clients` parallel
// single-threaded queries of single-client response t, capped by the core
// count (Fig. 11b's linear-then-saturating shape).
func (m Model) DBXThroughput(t sim.Time, clients int) float64 {
	if t <= 0 {
		return 0
	}
	if clients > m.MDBThreads {
		clients = m.MDBThreads
	}
	return float64(clients) / t.Seconds()
}
