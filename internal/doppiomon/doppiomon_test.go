package doppiomon

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/obs"
	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/workload"
)

// bootMon starts a monitoring server over a freshly booted System that has
// run one query, so every endpoint has real state to render. The system
// and server share a private observer so the query-log and SLO assertions
// see exactly this test's traffic.
func bootMon(t *testing.T) (*Server, *telemetry.Registry, *flightrec.Recorder) {
	t.Helper()
	reg := telemetry.NewRegistry()
	rec := flightrec.New(1024)
	ob := obs.New(obs.Options{Log: obs.LogOptions{SampleEvery: 1}})
	sys, err := core.NewSystem(core.Options{
		RegionBytes: 64 << 20,
		Telemetry:   reg,
		Recorder:    rec,
		Obs:         ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(7, 64).Table(2000, workload.HitQ1, 0.1)
	tbl, err := sys.DB.LoadAddressTable("t", rows)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tbl.Column("address_string")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ExecLike(context.Background(), col.Strs, workload.Q1Like, false); err != nil {
		t.Fatal(err)
	}
	srv, err := Start("127.0.0.1:0", Config{Registry: reg, Recorder: rec, Health: sys.HAL, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, reg, rec
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// parsePrometheus reads the exposition text into name→value samples,
// failing on any malformed line — the "parseable Prometheus" check.
func parsePrometheus(t *testing.T, text []byte) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	sc := bufio.NewScanner(strings.NewReader(string(text)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q in %q", fields[3], line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		// Counters and raw gauges are integers; derived *_pct gauges
		// render basis points with two decimals (still valid Prometheus).
		f, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		v := int64(f)
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = name[:i]
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("invalid metric name char %q in %q", c, line)
			}
		}
		out[name] += 0 // presence even when value collides below
		out[name] = v
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	srv, reg, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	samples := parsePrometheus(t, body)

	// Counter values match a registry snapshot taken now (the system is
	// idle, so the values are stable).
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 {
		t.Fatal("no counters in registry after a query")
	}
	for name, want := range snap.Counters {
		got, ok := samples[strings.NewReplacer(".", "_", "-", "_").Replace(name)]
		if !ok {
			t.Fatalf("counter %s missing from /metrics", name)
		}
		if got != want {
			t.Fatalf("counter %s = %d on /metrics, registry has %d", name, got, want)
		}
	}
	if samples["core_queries"] != 1 {
		t.Fatalf("core_queries = %d, want 1", samples["core_queries"])
	}
	if samples["hal_engines_total"] == 0 {
		t.Fatal("hal_engines_total missing or zero")
	}

	// JSON variant parses back into the identical snapshot.
	_, jbody := get(t, "http://"+srv.Addr()+"/metrics?format=json")
	parsed, err := telemetry.ParseSnapshot(jbody)
	if err != nil {
		t.Fatalf("/metrics?format=json did not parse: %v", err)
	}
	if parsed.Counter("core.queries") != 1 {
		t.Fatalf("json snapshot core.queries = %d", parsed.Counter("core.queries"))
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv, _, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/health")
	if code != http.StatusOK {
		t.Fatalf("/health status = %d: %s", code, body)
	}
	var doc struct {
		Status     string `json:"status"`
		State      string `json:"state"`
		AFUPresent bool   `json:"afu_present"`
		Engines    []struct {
			Engine      int   `json:"engine"`
			Quarantined bool  `json:"quarantined"`
			Jobs        int64 `json:"jobs"`
		} `json:"engines"`
		Counters struct {
			EnginesTotal   int64 `json:"engines_total"`
			EnginesHealthy int64 `json:"engines_healthy"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/health is not JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" || !doc.AFUPresent {
		t.Fatalf("healthy system reported %+v", doc)
	}
	if doc.State != "ok" {
		t.Fatalf("idle healthy system state = %q, want ok", doc.State)
	}
	if len(doc.Engines) == 0 {
		t.Fatal("no engines in /health")
	}
	if doc.Counters.EnginesTotal != int64(len(doc.Engines)) {
		t.Fatalf("counters.engines_total = %d for %d engines", doc.Counters.EnginesTotal, len(doc.Engines))
	}
	var jobs int64
	for _, e := range doc.Engines {
		jobs += e.Jobs
	}
	if jobs == 0 {
		t.Fatal("no completed jobs visible in /health after a query")
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv, _, rec := bootMon(t)
	if rec.Len() == 0 {
		t.Fatal("flight recorder empty after a query")
	}
	code, body := get(t, "http://"+srv.Addr()+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var doc struct {
		Events []struct {
			Type string   `json:"type"`
			Sim  sim.Time `json:"sim_ps"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if len(doc.Events) != rec.Len() {
		t.Fatalf("/trace has %d events, recorder %d", len(doc.Events), rec.Len())
	}
	kinds := map[string]bool{}
	for _, e := range doc.Events {
		kinds[e.Type] = true
	}
	for _, want := range []string{"job-submit", "job-exec", "pu-busy", "grant-burst"} {
		if !kinds[want] {
			t.Fatalf("/trace missing %s events; has %v", want, kinds)
		}
	}

	// Perfetto variant is valid Chrome-trace JSON.
	_, pbody := get(t, "http://"+srv.Addr()+"/trace?format=perfetto")
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(pbody, &trace); err != nil {
		t.Fatalf("/trace?format=perfetto is not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("perfetto trace empty")
	}

	// Text variant mentions the retained count.
	_, tbody := get(t, "http://"+srv.Addr()+"/trace?format=text")
	if !strings.Contains(string(tbody), fmt.Sprintf("%d event(s) retained", rec.Len())) {
		t.Fatalf("/trace?format=text header missing:\n%.200s", tbody)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv, _, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline status = %d, %d bytes", code, len(body))
	}
}

func TestQueryLogEndpoint(t *testing.T) {
	srv, _, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/querylog")
	if code != http.StatusOK {
		t.Fatalf("/querylog status = %d", code)
	}
	var doc struct {
		Stats struct {
			Submitted uint64 `json:"submitted"`
			Kept      uint64 `json:"kept"`
		} `json:"stats"`
		Events []struct {
			Seq     uint64 `json:"seq"`
			Outcome string `json:"outcome"`
			Rows    int    `json:"rows"`
			TotalNS int64  `json:"total_ns"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/querylog is not JSON: %v\n%s", err, body)
	}
	if doc.Stats.Submitted != 1 || doc.Stats.Kept != 1 {
		t.Fatalf("stats after one query: %+v", doc.Stats)
	}
	if len(doc.Events) != 1 || doc.Events[0].Outcome != "completed" ||
		doc.Events[0].Rows != 2000 || doc.Events[0].TotalNS <= 0 {
		t.Fatalf("events: %+v", doc.Events)
	}

	// JSONL variant: one parseable JSON object per line.
	_, lbody := get(t, "http://"+srv.Addr()+"/querylog?format=jsonl")
	lines := strings.Split(strings.TrimSpace(string(lbody)), "\n")
	if len(lines) != 1 {
		t.Fatalf("jsonl lines: got %d, want 1", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("jsonl line not JSON: %v", err)
	}

	// ?n bounds the window.
	_, nb := get(t, "http://"+srv.Addr()+"/querylog?n=0")
	if err := json.Unmarshal(nb, &doc); err != nil || len(doc.Events) != 1 {
		t.Fatalf("?n=0 (whole window): %v, %d events", err, len(doc.Events))
	}

	// Text variant carries the table header.
	_, tb := get(t, "http://"+srv.Addr()+"/querylog?format=text")
	if !strings.Contains(string(tb), "placement") {
		t.Fatalf("/querylog?format=text missing header:\n%.200s", tb)
	}
}

func TestSLOEndpoint(t *testing.T) {
	srv, _, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo status = %d", code)
	}
	var doc struct {
		Targets struct {
			AvailabilityPct float64 `json:"availability_pct"`
			LatencyP99NS    int64   `json:"latency_p99_ns"`
		} `json:"targets"`
		Submitted   int64 `json:"submitted"`
		Errors      int64 `json:"errors"`
		AlertActive bool  `json:"alert_active"`
		Classes     []struct {
			Class string `json:"class"`
			Count int64  `json:"count"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/slo is not JSON: %v\n%s", err, body)
	}
	if doc.Targets.AvailabilityPct < 99 || doc.Targets.LatencyP99NS <= 0 {
		t.Fatalf("targets: %+v", doc.Targets)
	}
	if doc.Submitted != 1 || doc.Errors != 0 || doc.AlertActive {
		t.Fatalf("clean single-query SLIs: %+v", doc)
	}
	if len(doc.Classes) != 1 || doc.Classes[0].Count != 1 {
		t.Fatalf("classes: %+v", doc.Classes)
	}

	_, tb := get(t, "http://"+srv.Addr()+"/slo?format=text")
	if !strings.Contains(string(tb), "SLO targets") {
		t.Fatalf("/slo?format=text missing header:\n%.200s", tb)
	}

	// The clean system's /health must not carry the SLO alert flag.
	hcode, hbody := get(t, "http://"+srv.Addr()+"/health")
	if hcode != http.StatusOK || strings.Contains(string(hbody), `"slo_alert": true`) {
		t.Fatalf("/health carries an SLO alert on a clean run: %d\n%s", hcode, hbody)
	}
}

// The SLO burn-rate alert must flip /health to degraded/503.
func TestHealthFlipsOnSLOAlert(t *testing.T) {
	ob := obs.New(obs.Options{})
	srv, err := Start("127.0.0.1:0", Config{Registry: telemetry.NewRegistry(),
		Recorder: flightrec.New(16), Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	for i := 0; i < 16; i++ {
		ob.ObserveQuery(obs.Event{SimNS: int64(i * 1000), Outcome: obs.OutcomeShed, Cause: "overload"})
	}
	if !ob.Alerting() {
		t.Fatal("observer not alerting after 16 consecutive sheds")
	}
	code, body := get(t, "http://"+srv.Addr()+"/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/health status = %d under a latched burn alert, want 503", code)
	}
	var doc struct {
		Status   string `json:"status"`
		SLOAlert bool   `json:"slo_alert"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "degraded" || !doc.SLOAlert {
		t.Fatalf("health doc under alert: %+v", doc)
	}
}

// Every endpoint must declare its Content-Type, JSON documents as
// application/json — the consistency contract dashboards rely on.
func TestEndpointsSetContentType(t *testing.T) {
	srv, _, _ := bootMon(t)
	cases := []struct {
		path string
		want string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics?format=json", "application/json"},
		{"/health", "application/json"},
		{"/trace", "application/json"},
		{"/trace?format=perfetto", "application/json"},
		{"/trace?format=text", "text/plain; charset=utf-8"},
		{"/calibration", "application/json"},
		{"/calibration?format=text", "text/plain; charset=utf-8"},
		{"/querylog", "application/json"},
		{"/querylog?format=jsonl", "application/x-ndjson"},
		{"/querylog?format=text", "text/plain; charset=utf-8"},
		{"/slo", "application/json"},
		{"/slo?format=text", "text/plain; charset=utf-8"},
		{"/utilization", "application/json"},
		{"/utilization?format=text", "text/plain; charset=utf-8"},
	}
	for _, tc := range cases {
		resp, err := http.Get("http://" + srv.Addr() + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Header.Get("Content-Type")
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
		if got != tc.want {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestUtilizationEndpoint(t *testing.T) {
	srv, _, _ := bootMon(t)
	code, body := get(t, "http://"+srv.Addr()+"/utilization")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var doc struct {
		Engines []struct {
			Engine int   `json:"engine"`
			BusyPS int64 `json:"busy_ps"`
			WallPS int64 `json:"wall_ps"`
		} `json:"engines"`
		Link struct {
			BusyPS int64 `json:"busy_ps"`
			WallPS int64 `json:"wall_ps"`
		} `json:"link"`
		Rounds    int64            `json:"rounds"`
		Conserved bool             `json:"conserved"`
		Verdicts  map[string]int64 `json:"verdicts"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(doc.Engines) == 0 || doc.Rounds == 0 {
		t.Fatalf("no fabric accounting rendered: %s", body)
	}
	if !doc.Conserved {
		t.Errorf("conservation violated: %s", body)
	}
	if doc.Link.WallPS == 0 || doc.Link.BusyPS == 0 {
		t.Errorf("link ledger empty: %+v", doc.Link)
	}
	if len(doc.Verdicts) == 0 {
		t.Error("no verdicts tallied after a query")
	}

	code, text := get(t, "http://"+srv.Addr()+"/utilization?format=text")
	if code != http.StatusOK {
		t.Fatalf("text status = %d", code)
	}
	if !strings.Contains(string(text), "cycle conservation: exact") {
		t.Errorf("text form missing conservation line:\n%s", text)
	}
	if !strings.Contains(string(text), "qpi") {
		t.Errorf("text form missing link line:\n%s", text)
	}
}

// Without a utilization source the endpoint stays clean: empty engines,
// trivially conserved, valid JSON.
func TestUtilizationEndpointNilSource(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	code, body := get(t, "http://"+srv.Addr()+"/utilization")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var doc struct {
		Engines   []any `json:"engines"`
		Conserved bool  `json:"conserved"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(doc.Engines) != 0 || !doc.Conserved {
		t.Errorf("empty fabric rendered wrong: %s", body)
	}
}
