// Package doppiomon is the live monitoring endpoint of a running doppioDB
// process: a small HTTP listener (opt-in via the CLIs' -mon flag) serving
//
//	/metrics      the telemetry registry in the Prometheus text exposition
//	              format (?format=json for the WriteJSON snapshot)
//	/health       engine-health JSON: AFU presence, per-engine circuit
//	              breaker state, and the aggregated health counters
//	/trace        the flight recorder's retained window (JSON events;
//	              ?format=perfetto for the Chrome-trace document,
//	              ?format=text for the dump format)
//	/calibration  the cost-model calibration auditor's rolling report:
//	              per-term prediction error statistics, drift alarms, and
//	              (?records=N) the most recent decision records
//	/querylog     the wide-event query log's retained window (?n=N most
//	              recent events; ?format=jsonl for JSON Lines export,
//	              ?format=text for the \querylog table)
//	/slo          the windowed SLO engine's report: per-class latency
//	              quantiles, availability SLIs, burn rates and the alert
//	              state (?format=text for the \slo rendering)
//	/utilization  the topdown fabric accounting: per-engine cycle buckets
//	              (busy, stalls, config, idle), the QPI link ledger, PU
//	              occupancy, the conservation check and the verdict tally
//	              (?format=text for the \topdown table)
//	/debug/pprof  the standard Go profiling handlers
//
// The server holds references, not copies: every request renders the state
// at request time, so a dashboard can watch a long doppiobench run live.
package doppiomon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"doppiodb/internal/explain"
	"doppiodb/internal/flightrec"
	"doppiodb/internal/hal"
	"doppiodb/internal/obs"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/topdown"
)

// HealthSource is the live view /health renders. *hal.HAL satisfies it; nil
// reports a system that has not booted hardware.
type HealthSource interface {
	AFUPresent() bool
	Health() []hal.EngineHealth
	// State is the runtime's overload/recovery state machine verdict:
	// "ok", "overloaded", "degraded", or "resetting".
	State() string
}

// UtilizationSource is the live view /utilization renders: the cumulative
// topdown fabric report. *hal.HAL satisfies it.
type UtilizationSource interface {
	Topdown() topdown.FabricReport
}

// Config wires the server to the process's observability state. Nil fields
// render as empty sections rather than failing.
type Config struct {
	// Registry backs /metrics (nil: the process default).
	Registry *telemetry.Registry
	// Recorder backs /trace (nil: the process default).
	Recorder *flightrec.Recorder
	// Health backs /health's per-engine section.
	Health HealthSource
	// Calibration backs /calibration (nil: the process default auditor).
	Calibration *explain.Auditor
	// Obs backs /querylog and /slo, and its burn-rate alert flips /health
	// (nil: the process default observer).
	Obs *obs.Observer
	// Utilization backs /utilization's fabric section. Left nil, Start
	// derives it from Health when that source also serves topdown reports
	// (*hal.HAL does); nil at serve time renders an empty fabric.
	Utilization UtilizationSource
}

// Server is a running monitoring endpoint.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (host:port; port 0 picks a free one) and serves the
// monitoring endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Recorder == nil {
		cfg.Recorder = flightrec.Default()
	}
	if cfg.Calibration == nil {
		cfg.Calibration = explain.Default()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	if cfg.Utilization == nil {
		if u, ok := cfg.Health.(UtilizationSource); ok {
			cfg.Utilization = u
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("doppiomon: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/calibration", s.handleCalibration)
	mux.HandleFunc("/querylog", s.handleQueryLog)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/utilization", s.handleUtilization)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleMetrics serves the registry: Prometheus text by default, the
// WriteJSON snapshot with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		s.cfg.Registry.WriteJSON(w) //nolint:errcheck // best-effort response write
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Registry.WritePrometheus(w)
	telemetry.WritePrometheusBuildInfo(w)
}

// healthDoc is /health's wire form.
type healthDoc struct {
	Status     string `json:"status"`          // "ok" or "degraded"
	State      string `json:"state,omitempty"` // runtime state machine: ok/overloaded/degraded/resetting
	AFUPresent bool   `json:"afu_present"`
	// SLOAlert mirrors the SLO engine's latched burn-rate alert; while it
	// is set the endpoint reports degraded (the error budget is burning
	// too fast for the instance to keep taking unshielded traffic).
	SLOAlert bool               `json:"slo_alert"`
	Engines  []engineHealthJSON `json:"engines,omitempty"`
	Counters hal.HealthCounters `json:"counters"`
	Recorder recorderStatusJSON `json:"recorder"`
}

type engineHealthJSON struct {
	Engine       int   `json:"engine"`
	Quarantined  bool  `json:"quarantined"`
	ConsecFails  int   `json:"consec_fails"`
	Jobs         int64 `json:"jobs"`
	Fails        int64 `json:"fails"`
	Readmissions int64 `json:"readmissions"`
}

type recorderStatusJSON struct {
	Events  int    `json:"events"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
	Dumps   uint64 `json:"dumps"`
}

// handleHealth serves the engine-health document. The HTTP status mirrors
// the verdict: 200 while every engine is admitted, 503 when quarantines, a
// lost handshake, or an in-flight fabric reset degrade the system. The
// "overloaded" state stays 200 — a saturated backlog is load, not damage —
// but is reported so load balancers can steer around the instance.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	doc := healthDoc{
		Status:   "ok",
		Counters: hal.SummaryFromMetrics(s.cfg.Registry.Snapshot()),
		Recorder: recorderStatusJSON{
			Events:  s.cfg.Recorder.Len(),
			Total:   s.cfg.Recorder.Total(),
			Dropped: s.cfg.Recorder.Dropped(),
			Dumps:   s.cfg.Recorder.Dumps(),
		},
	}
	if s.cfg.Health != nil {
		doc.AFUPresent = s.cfg.Health.AFUPresent()
		doc.State = s.cfg.Health.State()
		if doc.State == "degraded" || doc.State == "resetting" {
			doc.Status = "degraded"
		}
		for _, e := range s.cfg.Health.Health() {
			doc.Engines = append(doc.Engines, engineHealthJSON{
				Engine:       e.Engine,
				Quarantined:  e.Quarantined,
				ConsecFails:  e.ConsecFails,
				Jobs:         e.Jobs,
				Fails:        e.Fails,
				Readmissions: e.Readmissions,
			})
			if e.Quarantined {
				doc.Status = "degraded"
			}
		}
		if !doc.AFUPresent {
			doc.Status = "degraded"
		}
	}
	if s.cfg.Obs.Alerting() {
		doc.SLOAlert = true
		doc.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	if doc.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort response write
}

// handleCalibration serves the calibration auditor's rolling report as
// JSON (?format=text for the \health-style table). ?records=N appends the
// N most recent decision records to the JSON document.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	aud := s.cfg.Calibration
	rep := aud.Stats()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	doc := struct {
		explain.Report
		Records []*explain.Record `json:"records,omitempty"`
	}{Report: rep}
	if n, err := strconv.Atoi(r.URL.Query().Get("records")); err == nil && n > 0 {
		doc.Records = aud.Records(n)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort response write
}

// handleQueryLog serves the wide-event query log's retained window: a JSON
// document ({stats, events}) by default, JSON Lines with ?format=jsonl,
// the \querylog table with ?format=text. ?n=N limits to the N most recent
// events (default 100; n=0 returns the whole window).
func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	log := s.cfg.Obs.Log
	n := 100
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v >= 0 {
		n = v
	}
	switch r.URL.Query().Get("format") {
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		log.WriteJSONL(w, n) //nolint:errcheck // best-effort response write
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		log.WriteText(w, n)
	default:
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Stats  obs.LogStats `json:"stats"`
			Events []obs.Event  `json:"events"`
		}{Stats: log.Stats(), Events: log.Window(n)}
		if doc.Events == nil {
			doc.Events = []obs.Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc) //nolint:errcheck // best-effort response write
	}
}

// handleSLO serves the windowed SLO engine's report: JSON by default, the
// \slo rendering with ?format=text.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	rep := s.cfg.Obs.SLO.Report()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep) //nolint:errcheck // best-effort response write
}

// handleUtilization serves the topdown fabric accounting: the per-engine
// and link cycle ledgers as JSON — with the conservation verdict and the
// per-query bottleneck tally from telemetry — or the \topdown table with
// ?format=text. A system that never booted hardware renders an empty,
// trivially conserved fabric.
func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	var rep topdown.FabricReport
	if s.cfg.Utilization != nil {
		rep = s.cfg.Utilization.Topdown()
	}
	snap := s.cfg.Registry.Snapshot()
	if bp := snap.Gauge("topdown.pu_occupancy_bp"); bp > 0 {
		rep.PUOccupancyPct = float64(bp) / 100
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
		return
	}
	doc := struct {
		topdown.FabricReport
		Conserved bool             `json:"conserved"`
		Verdicts  map[string]int64 `json:"verdicts,omitempty"`
	}{
		FabricReport: rep,
		Conserved:    rep.Conserved(),
		Verdicts:     topdown.SummaryFromMetrics(snap).Verdicts,
	}
	if doc.Engines == nil {
		doc.Engines = []topdown.EngineReport{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort response write
}

// handleTrace serves the flight-recorder window: structured JSON events by
// default, the Chrome-trace document with ?format=perfetto, the dump text
// with ?format=text.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Recorder
	switch r.URL.Query().Get("format") {
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		if err := flightrec.WriteChromeTrace(w, rec.Window()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rec.WriteText(w)
	default:
		w.Header().Set("Content-Type", "application/json")
		doc := struct {
			Events  []flightrec.Event `json:"events"`
			Dropped uint64            `json:"dropped"`
		}{Events: rec.Window(), Dropped: rec.Dropped()}
		if doc.Events == nil {
			doc.Events = []flightrec.Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(doc) //nolint:errcheck // best-effort response write
	}
}
