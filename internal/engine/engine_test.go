package engine

import (
	"fmt"
	"testing"

	"doppiodb/internal/bat"
	"doppiodb/internal/config"
	"doppiodb/internal/fpga"
	"doppiodb/internal/token"
)

func mkEngine(t *testing.T) *Engine {
	t.Helper()
	dev, err := fpga.NewDevice(fpga.DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, 0)
}

func mkParams(t *testing.T, pattern string, rows []string) (JobParams, *bat.Shorts) {
	t.Helper()
	prog, err := token.CompilePattern(pattern, token.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := config.Encode(prog, config.DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	col, err := bat.NewStrings(nil, len(rows), len(rows)*80)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		col.Append(r)
	}
	res, _ := bat.NewShorts(nil, len(rows))
	res.SetLen(len(rows))
	return JobParams{
		Config:      vec,
		Offsets:     col.OffsetBytes(),
		OffsetWidth: bat.OffsetWidth,
		Heap:        col.HeapBytes(),
		Count:       col.Count(),
		Result:      res.Bytes(),
	}, res
}

func TestExecuteMatchesExpectedPositions(t *testing.T) {
	rows := []string{
		"John|Smith|44 Koblenzer Strasse|60327|Frankfurt",
		"Anna|Miller|9 Lindenweg|80331|Muenchen",
		"",
		"Strasse",
	}
	e := mkEngine(t)
	p, res := mkParams(t, `Strasse`, rows)
	st, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Strings != 4 || st.Matches != 2 {
		t.Errorf("stats: %+v", st)
	}
	want := []uint16{31, 0, 0, 7}
	for i, w := range want {
		if got := res.Get(i); got != w {
			t.Errorf("result[%d] = %d, want %d", i, got, w)
		}
	}
	// Heap volume: strides of the four strings.
	wantHeap := 0
	for _, r := range rows {
		wantHeap += bat.EntryStride(len(r))
	}
	if st.HeapBytes != wantHeap {
		t.Errorf("HeapBytes = %d, want %d", st.HeapBytes, wantHeap)
	}
}

func TestExecuteParallelConsistency(t *testing.T) {
	// Large inputs stripe across PU workers; results must be identical
	// to the sequential path and land at the right indexes.
	rows := make([]string, 10_000)
	for i := range rows {
		if i%7 == 0 {
			rows[i] = fmt.Sprintf("row %d Koblenzer Strasse 8%04d", i, i%10000)
		} else {
			rows[i] = fmt.Sprintf("row %d Lindenweg %d", i, i)
		}
	}
	e := mkEngine(t)
	p, res := mkParams(t, `(Strasse|Str\.).*(8[0-9]{4})`, rows)
	st, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	wantMatches := 0
	prog, _ := token.CompilePattern(`(Strasse|Str\.).*(8[0-9]{4})`, token.Options{})
	for i, r := range rows {
		want := uint16(prog.MatchString(r))
		if got := res.Get(i); got != want {
			t.Fatalf("row %d: engine=%d reference=%d", i, got, want)
		}
		if want != 0 {
			wantMatches++
		}
	}
	if st.Matches != wantMatches {
		t.Errorf("Matches = %d, want %d", st.Matches, wantMatches)
	}
}

func TestValidateRejects(t *testing.T) {
	e := mkEngine(t)
	good, _ := mkParams(t, `abc`, []string{"abc"})

	p := good
	p.Config = nil
	if _, err := e.Execute(p); err == nil {
		t.Error("missing config accepted")
	}
	p = good
	p.OffsetWidth = 8
	if _, err := e.Execute(p); err == nil {
		t.Error("bad offset width accepted")
	}
	p = good
	p.Count = 100
	if _, err := e.Execute(p); err == nil {
		t.Error("short offsets accepted")
	}
	p = good
	p.Result = make([]byte, 0)
	if _, err := e.Execute(p); err == nil {
		t.Error("short result accepted")
	}
	p = good
	p.Config = make([]byte, 64) // garbage vector
	if _, err := e.Execute(p); err == nil {
		t.Error("garbage config accepted")
	}
}

func TestBadOffsetFaults(t *testing.T) {
	e := mkEngine(t)
	p, _ := mkParams(t, `abc`, []string{"abc", "def"})
	// Corrupt the second offset to point outside the heap: the engine
	// must fail like the hardware would on an unmapped access.
	p.Offsets[4] = 0xFF
	p.Offsets[5] = 0xFF
	p.Offsets[6] = 0xFF
	p.Offsets[7] = 0x7F
	if _, err := e.Execute(p); err == nil {
		t.Error("out-of-heap offset accepted")
	}
}

func TestTimingJob(t *testing.T) {
	p := JobParams{OffsetWidth: 4}
	st := Stats{Strings: 1000, HeapBytes: 72_000}
	j := TimingJob(p, st)
	if j.OffsetBytes != 4000 || j.HeapBytes != 72000 || j.ResultBytes != 2000 {
		t.Errorf("TimingJob = %+v", j)
	}
}
