// Package engine implements the Regex Engine of §5: a String Reader that
// scatter-gathers strings through the offset column and string heap, a bank
// of Processing Units fed round-robin through input FIFOs, and an Output
// Collector that writes 16-bit match indexes back in input order, packed 32
// to a cache line.
//
// Execution here is *functional*: the engine computes the exact result BAT
// the hardware would produce (all PUs carry the same configuration, so
// round-robin dispatch only affects timing, which internal/memmodel
// simulates from the job's data volume). To exploit the host's cores the
// way the hardware exploits its 16 PUs, large jobs are striped across one
// goroutine per PU.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"doppiodb/internal/config"
	"doppiodb/internal/fpga"
	"doppiodb/internal/memmodel"
	"doppiodb/internal/pu"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/token"
)

// JobParams is the parameter structure the UDF writes to shared memory
// (§4.2.2): the configuration vector, a pointer to the offset BAT, a
// pointer to the string heap, a pointer to the result BAT, the offset width
// and the string count. In the simulator, resolved shared-memory pointers
// are byte slices.
type JobParams struct {
	Config      []byte // encoded configuration vector
	Offsets     []byte // offset column (little-endian, OffsetWidth each)
	OffsetWidth int    // bytes per offset (4 in this deployment)
	Heap        []byte // string heap (strings are null-terminated)
	Count       int    // number of input strings
	Result      []byte // result column, 2 bytes per string, len >= 2*Count
}

// Validate checks structural consistency of the parameters.
func (p *JobParams) Validate() error {
	switch {
	case len(p.Config) == 0:
		return errors.New("engine: missing configuration vector")
	case p.OffsetWidth != 4:
		return fmt.Errorf("engine: unsupported offset width %d", p.OffsetWidth)
	case p.Count < 0 || len(p.Offsets) < p.Count*p.OffsetWidth:
		return fmt.Errorf("engine: offset column too short: %d for %d strings",
			len(p.Offsets), p.Count)
	case len(p.Result) < p.Count*2:
		return fmt.Errorf("engine: result column too short: %d for %d strings",
			len(p.Result), p.Count)
	}
	return nil
}

// Stats summarizes one executed job, mirroring the statistics the hardware
// writes to the status structure (§3 step 8). It is the per-job view; the
// same numbers accumulate in the engine's telemetry counters
// (engine.jobs/strings/matches/heap_bytes, pu.cycles).
type Stats struct {
	Strings   int
	Matches   int
	HeapBytes int    // heap volume the String Reader covered
	PUCycles  uint64 // PU cycles consumed (one input byte per 400 MHz cycle)
}

// Engine is one Regex Engine instance of a programmed device.
type Engine struct {
	ID  int
	dev *fpga.Device
	tel *telemetry.Registry
}

// New creates engine id of the device, reporting into the process-wide
// telemetry registry until SetTelemetry rewires it.
func New(dev *fpga.Device, id int) *Engine {
	return &Engine{ID: id, dev: dev, tel: telemetry.Default()}
}

// SetTelemetry rebinds the engine's work counters to reg.
func (e *Engine) SetTelemetry(reg *telemetry.Registry) { e.tel = reg }

// Execute runs one job functionally and returns its stats. The error paths
// mirror the hardware's: an invalid configuration vector or an expression
// over the deployed capacity cannot be loaded into the PUs.
func (e *Engine) Execute(p JobParams) (Stats, error) {
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	prog, err := config.Decode(p.Config)
	if err != nil {
		return Stats{}, err
	}
	if err := config.Fits(prog, e.dev.Deployment.Limits); err != nil {
		return Stats{}, err
	}
	st, err := e.run(prog, p)
	if err == nil {
		e.tel.Counter("engine.jobs").Inc()
		e.tel.Counter("engine.strings").Add(int64(st.Strings))
		e.tel.Counter("engine.matches").Add(int64(st.Matches))
		e.tel.Counter("engine.heap_bytes").Add(int64(st.HeapBytes))
		e.tel.Counter("pu.cycles").Add(int64(st.PUCycles))
	}
	return st, err
}

// run dispatches the strings over PU workers and collects results in input
// order.
func (e *Engine) run(prog *token.Program, p JobParams) (Stats, error) {
	workers := e.dev.Deployment.PUsPerEngine
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if p.Count < 4096 || workers < 2 {
		workers = 1
	}
	stats := make([]Stats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (p.Count + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > p.Count {
			hi = p.Count
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			stats[w], errs[w] = e.runRange(prog, p, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total Stats
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return total, errs[w]
		}
		total.Strings += stats[w].Strings
		total.Matches += stats[w].Matches
		total.HeapBytes += stats[w].HeapBytes
		total.PUCycles += stats[w].PUCycles
	}
	return total, nil
}

// runRange processes strings [lo, hi) with one PU.
func (e *Engine) runRange(prog *token.Program, p JobParams, lo, hi int) (Stats, error) {
	unit, err := pu.New(prog)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	for i := lo; i < hi; i++ {
		off := binary.LittleEndian.Uint32(p.Offsets[i*p.OffsetWidth:])
		if off >= uint32(len(p.Heap)) {
			return st, fmt.Errorf("engine: offset %d of string %d outside heap (%d)",
				off, i, len(p.Heap))
		}
		s := p.Heap[off:]
		// Strings are null-terminated (§2.3.1); the String Reader
		// parses up to the terminator.
		end := 0
		for end < len(s) && s[end] != 0 {
			end++
		}
		s = s[:end]
		res := unit.Match(s)
		binary.LittleEndian.PutUint16(p.Result[i*2:], res)
		st.Strings++
		if res != 0 {
			st.Matches++
		}
		st.HeapBytes += heapSpan(end)
	}
	st.PUCycles = unit.Stats().Bytes
	return st, nil
}

// heapSpan is the heap footprint of one string: metadata, bytes, NUL, and
// alignment padding — what the String Reader actually transfers.
func heapSpan(strLen int) int {
	const meta, align = 4, 8
	return (meta + strLen + 1 + align - 1) / align * align
}

// TimingJob converts executed job parameters into the memory-model job that
// drives the cycle simulation.
func TimingJob(p JobParams, st Stats) memmodel.Job {
	return memmodel.Job{
		Strings:     st.Strings,
		OffsetBytes: st.Strings * p.OffsetWidth,
		HeapBytes:   st.HeapBytes,
		ResultBytes: st.Strings * 2,
	}
}
