// Package strmatch provides the software string-matching substrate used by
// the CPU baselines: a SQL LIKE/ILIKE pattern compiler, Boyer-Moore and
// Knuth-Morris-Pratt single-pattern searchers, and the multi-substring
// matcher that MonetDB-style engines use for %a%b%c% patterns (§8.1 of the
// paper discusses both algorithms; Boyer-Moore generally wins because it
// skips input).
package strmatch

import (
	"sync/atomic"
)

// BoyerMoore is a compiled Boyer-Moore searcher (bad-character and
// good-suffix rules) with optional ASCII case folding.
type BoyerMoore struct {
	needle     []byte
	badChar    [256]int
	goodSuffix []int
	fold       bool

	// comparisons counts byte comparisons across Find calls; exported
	// through Comparisons for tests and the efficiency benches.
	comparisons atomic.Uint64
}

// NewBoyerMoore compiles needle. An empty needle matches at any position.
func NewBoyerMoore(needle []byte, foldCase bool) *BoyerMoore {
	n := make([]byte, len(needle))
	copy(n, needle)
	if foldCase {
		for i := range n {
			n[i] = asciiLower(n[i])
		}
	}
	bm := &BoyerMoore{needle: n, fold: foldCase}
	bm.buildBadChar()
	bm.buildGoodSuffix()
	return bm
}

// Needle returns the compiled (possibly case-folded) needle.
func (bm *BoyerMoore) Needle() []byte { return bm.needle }

// Comparisons returns the total byte comparisons performed so far.
func (bm *BoyerMoore) Comparisons() uint64 { return bm.comparisons.Load() }

func (bm *BoyerMoore) buildBadChar() {
	m := len(bm.needle)
	for i := range bm.badChar {
		bm.badChar[i] = m
	}
	for i := 0; i < m-1; i++ {
		bm.badChar[bm.needle[i]] = m - 1 - i
		if bm.fold {
			bm.badChar[asciiUpper(bm.needle[i])] = m - 1 - i
		}
	}
}

// buildGoodSuffix computes the classic good-suffix shift table.
func (bm *BoyerMoore) buildGoodSuffix() {
	m := len(bm.needle)
	bm.goodSuffix = make([]int, m+1)
	if m == 0 {
		return
	}
	// border[i]: start of the widest border of needle[i:].
	border := make([]int, m+1)
	i, j := m, m+1
	border[i] = j
	for i > 0 {
		for j <= m && bm.needle[i-1] != bm.needle[j-1] {
			if bm.goodSuffix[j] == 0 {
				bm.goodSuffix[j] = j - i
			}
			j = border[j]
		}
		i--
		j--
		border[i] = j
	}
	j = border[0]
	for i = 0; i <= m; i++ {
		if bm.goodSuffix[i] == 0 {
			bm.goodSuffix[i] = j
		}
		if i == j {
			j = border[j]
		}
	}
}

// Find returns the index of the first occurrence of the needle in haystack
// at or after from, or -1.
func (bm *BoyerMoore) Find(haystack []byte, from int) int {
	m := len(bm.needle)
	if m == 0 {
		if from <= len(haystack) {
			return from
		}
		return -1
	}
	var comps uint64
	defer func() { bm.comparisons.Add(comps) }()
	s := from
	for s+m <= len(haystack) {
		j := m - 1
		for j >= 0 {
			comps++
			h := haystack[s+j]
			if bm.fold {
				h = asciiLower(h)
			}
			if h != bm.needle[j] {
				break
			}
			j--
		}
		if j < 0 {
			return s
		}
		h := haystack[s+j]
		shift := bm.badChar[h] - (m - 1 - j)
		if g := bm.goodSuffix[j+1]; g > shift {
			shift = g
		}
		if shift < 1 {
			shift = 1
		}
		s += shift
	}
	return -1
}

// Contains reports whether the needle occurs in haystack.
func (bm *BoyerMoore) Contains(haystack []byte) bool {
	return bm.Find(haystack, 0) >= 0
}

func asciiLower(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

func asciiUpper(b byte) byte {
	if 'a' <= b && b <= 'z' {
		return b - ('a' - 'A')
	}
	return b
}
