package strmatch

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBoyerMooreFind(t *testing.T) {
	cases := []struct {
		needle, hay string
		from, want  int
	}{
		{"Strasse", "Koblenzer Strasse 44", 0, 10},
		{"Strasse", "Koblenzer Strasse 44", 11, -1},
		{"abc", "abc", 0, 0},
		{"abc", "ababc", 0, 2},
		{"aaa", "aaaa", 0, 0},
		{"aaa", "aaaa", 1, 1},
		{"x", "", 0, -1},
		{"", "abc", 1, 1},
		{"", "abc", 5, -1},
		{"needle", "haystack", 0, -1},
		{"ana", "banana", 0, 1},
	}
	for _, c := range cases {
		bm := NewBoyerMoore([]byte(c.needle), false)
		if got := bm.Find([]byte(c.hay), c.from); got != c.want {
			t.Errorf("BM(%q).Find(%q,%d) = %d, want %d", c.needle, c.hay, c.from, got, c.want)
		}
	}
}

func TestBoyerMooreFold(t *testing.T) {
	bm := NewBoyerMoore([]byte("StrASSE"), true)
	if got := bm.Find([]byte("koblenzer strasse"), 0); got != 10 {
		t.Errorf("folded find = %d, want 10", got)
	}
	if !bm.Contains([]byte("STRASSE")) {
		t.Error("folded Contains failed")
	}
}

func TestBoyerMooreSkips(t *testing.T) {
	// On a long haystack with no needle characters, BM must examine far
	// fewer bytes than the haystack length — the reason it beats KMP.
	bm := NewBoyerMoore([]byte("Strasse"), false)
	hay := bytes.Repeat([]byte("x"), 10000)
	bm.Find(hay, 0)
	if c := bm.Comparisons(); c > 2500 {
		t.Errorf("BM made %d comparisons on 10000 bytes; should skip", c)
	}
}

func TestKMPFind(t *testing.T) {
	cases := []struct {
		needle, hay string
		from, want  int
	}{
		{"Strasse", "Koblenzer Strasse 44", 0, 10},
		{"abab", "aababab", 0, 1},
		{"aaa", "aaaa", 1, 1},
		{"", "abc", 2, 2},
		{"zz", "zaz", 0, -1},
	}
	for _, c := range cases {
		k := NewKMP([]byte(c.needle), false)
		if got := k.Find([]byte(c.hay), c.from); got != c.want {
			t.Errorf("KMP(%q).Find(%q,%d) = %d, want %d", c.needle, c.hay, c.from, got, c.want)
		}
	}
	k := NewKMP([]byte("abc"), true)
	if !k.Contains([]byte("xxABCxx")) {
		t.Error("folded KMP failed")
	}
}

func TestBMandKMPAgreeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	alphabet := []byte("abAB")
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return b
	}
	for i := 0; i < 2000; i++ {
		needle := randBytes(r.Intn(5) + 1)
		hay := randBytes(r.Intn(40))
		fold := r.Intn(2) == 0
		from := r.Intn(len(hay) + 1)
		bm := NewBoyerMoore(needle, fold).Find(hay, from)
		km := NewKMP(needle, fold).Find(hay, from)
		if bm != km {
			t.Fatalf("needle=%q hay=%q from=%d fold=%v: BM=%d KMP=%d",
				needle, hay, from, fold, bm, km)
		}
		// Oracle: bytes.Index on folded copies.
		n2, h2 := needle, hay
		if fold {
			n2, h2 = bytes.ToLower(needle), bytes.ToLower(hay)
		}
		want := bytes.Index(h2[from:], n2)
		if want >= 0 {
			want += from
		}
		if bm != want {
			t.Fatalf("needle=%q hay=%q from=%d fold=%v: BM=%d oracle=%d",
				needle, hay, from, fold, bm, want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, in string
		want    bool
	}{
		{`%Strasse%`, "Koblenzer Strasse 44", true},
		{`%Strasse%`, "Koblenzer Weg 44", false},
		{`%Alan%Turing%Cheshire%`, "x Alan y Turing z Cheshire w", true},
		{`%Alan%Turing%Cheshire%`, "x Turing y Alan z Cheshire w", false},
		{`abc`, "abc", true},
		{`abc`, "abcd", false},
		{`abc%`, "abcd", true},
		{`abc%`, "xabc", false},
		{`%abc`, "xabc", true},
		{`%abc`, "abcx", false},
		{`a_c`, "abc", true},
		{`a_c`, "ac", false},
		{`a_c`, "abbc", false},
		{`a%c`, "ac", true},
		{`a%c`, "abbbc", true},
		{`a%c`, "abbbd", false},
		{`%`, "", true},
		{`%`, "anything", true},
		{``, "", true},
		{``, "x", false},
		{`%%`, "x", true},
		{`\%`, "%", true},
		{`\%`, "x", false},
		{`100\%%`, "100% sure", true},
		{`_`, "a", true},
		{`_`, "", false},
		{`_`, "ab", false},
		{`%a_c%`, "zzabczz", true},
		{`%ab%b`, "ab", false},
		{`%ab%b`, "abb", true},
		{`a%bc`, "abc", true},
		{`%special%requests%`, "this order has special delivery requests attached", true},
	}
	for _, c := range cases {
		p, err := CompileLike(c.pat, false)
		if err != nil {
			t.Fatalf("CompileLike(%q): %v", c.pat, err)
		}
		if got := p.MatchString(c.in); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pat, c.in, got, c.want)
		}
	}
}

func TestILike(t *testing.T) {
	p, err := CompileLike(`%special%Requests%`, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.MatchString("SPECIAL delivery REQUESTS") {
		t.Error("ILIKE should fold case")
	}
	if !p.FoldCase() {
		t.Error("FoldCase not recorded")
	}
}

func TestLikeBadEscape(t *testing.T) {
	if _, err := CompileLike(`abc\`, false); err != ErrBadEscape {
		t.Errorf("err = %v, want ErrBadEscape", err)
	}
}

func TestLikeToRegex(t *testing.T) {
	cases := []struct {
		pat, want string
	}{
		{`%Strasse%`, `Strasse`},
		{`%a%b%`, `a.*b`},
		{`abc`, `^abc$`},
		{`ab%`, `^ab`},
		{`%ab`, `ab$`},
		{`a_c%`, `^a.c`},
		{`%100\%%`, `100%`},
		{`%a.b%`, `a\.b`},
	}
	for _, c := range cases {
		p, err := CompileLike(c.pat, false)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.ToRegex(); got != c.want {
			t.Errorf("ToRegex(%q) = %q, want %q", c.pat, got, c.want)
		}
	}
}

// likeRef is an exponential but obviously-correct LIKE matcher used as the
// property-test oracle.
func likeRef(pat, s string, fold bool) bool {
	if fold {
		pat, s = string(bytes.ToLower([]byte(pat))), string(bytes.ToLower([]byte(s)))
	}
	var rec func(pi, si int) bool
	rec = func(pi, si int) bool {
		if pi == len(pat) {
			return si == len(s)
		}
		switch pat[pi] {
		case '%':
			for k := si; k <= len(s); k++ {
				if rec(pi+1, k) {
					return true
				}
			}
			return false
		case '_':
			return si < len(s) && rec(pi+1, si+1)
		case '\\':
			if pi+1 >= len(pat) {
				return false
			}
			return si < len(s) && s[si] == pat[pi+1] && rec(pi+2, si+1)
		default:
			return si < len(s) && s[si] == pat[pi] && rec(pi+1, si+1)
		}
	}
	return rec(0, 0)
}

func TestLikeAgainstReferenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	patAlpha := []byte("ab%_")
	inAlpha := []byte("abAB")
	for i := 0; i < 3000; i++ {
		pb := make([]byte, r.Intn(8))
		for j := range pb {
			pb[j] = patAlpha[r.Intn(len(patAlpha))]
		}
		pat := string(pb)
		in := make([]byte, r.Intn(12))
		for j := range in {
			in[j] = inAlpha[r.Intn(len(inAlpha))]
		}
		fold := r.Intn(2) == 0
		p, err := CompileLike(pat, fold)
		if err != nil {
			t.Fatalf("CompileLike(%q): %v", pat, err)
		}
		got := p.Match(in)
		want := likeRef(pat, string(in), fold)
		if got != want {
			t.Fatalf("LIKE %q on %q fold=%v: got %v, want %v", pat, in, fold, got, want)
		}
	}
}

func BenchmarkBoyerMooreAddress(b *testing.B) {
	bm := NewBoyerMoore([]byte("Strasse"), false)
	hay := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(hay)))
	for i := 0; i < b.N; i++ {
		bm.Find(hay, 0)
	}
}

func BenchmarkKMPAddress(b *testing.B) {
	k := NewKMP([]byte("Strasse"), false)
	hay := []byte("John|Smith|44 Koblenzer Weg|60327|Frankfurt am Main padding..")
	b.SetBytes(int64(len(hay)))
	for i := 0; i < b.N; i++ {
		k.Find(hay, 0)
	}
}
