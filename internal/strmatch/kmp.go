package strmatch

// KMP is a compiled Knuth-Morris-Pratt searcher. The paper (§8.1) notes
// that Boyer-Moore usually beats KMP because it can skip input; both are
// provided so the ablation bench can quantify that on the address workload.
type KMP struct {
	needle []byte
	fail   []int
	fold   bool
}

// NewKMP compiles needle.
func NewKMP(needle []byte, foldCase bool) *KMP {
	n := make([]byte, len(needle))
	copy(n, needle)
	if foldCase {
		for i := range n {
			n[i] = asciiLower(n[i])
		}
	}
	k := &KMP{needle: n, fold: foldCase, fail: make([]int, len(n))}
	if len(n) > 0 {
		k.fail[0] = 0
		j := 0
		for i := 1; i < len(n); i++ {
			for j > 0 && n[i] != n[j] {
				j = k.fail[j-1]
			}
			if n[i] == n[j] {
				j++
			}
			k.fail[i] = j
		}
	}
	return k
}

// Find returns the index of the first occurrence of the needle in haystack
// at or after from, or -1.
func (k *KMP) Find(haystack []byte, from int) int {
	m := len(k.needle)
	if m == 0 {
		if from <= len(haystack) {
			return from
		}
		return -1
	}
	j := 0
	for i := from; i < len(haystack); i++ {
		c := haystack[i]
		if k.fold {
			c = asciiLower(c)
		}
		for j > 0 && c != k.needle[j] {
			j = k.fail[j-1]
		}
		if c == k.needle[j] {
			j++
		}
		if j == m {
			return i - m + 1
		}
	}
	return -1
}

// Contains reports whether the needle occurs in haystack.
func (k *KMP) Contains(haystack []byte) bool {
	return k.Find(haystack, 0) >= 0
}
