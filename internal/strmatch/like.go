package strmatch

import (
	"errors"
	"strings"
)

// LikePattern is a compiled SQL LIKE / ILIKE pattern: `%` matches any
// (possibly empty) sequence, `_` matches exactly one byte, and a backslash
// escapes the next character.
type LikePattern struct {
	source   string
	segments []likeSegment
	// openStart/openEnd: the pattern begins/ends with %.
	openStart, openEnd bool
	fold               bool
}

// likeSegment is a literal chunk between % wildcards; wild marks `_`
// positions inside the chunk. Chunks without wildcards get a Boyer-Moore
// searcher.
type likeSegment struct {
	chunk []byte
	wild  []bool
	bm    *BoyerMoore // nil when the chunk contains `_`
}

// ErrBadEscape reports a trailing backslash in a LIKE pattern.
var ErrBadEscape = errors.New("strmatch: trailing escape in LIKE pattern")

// CompileLike compiles a LIKE pattern; foldCase selects ILIKE semantics.
func CompileLike(pattern string, foldCase bool) (*LikePattern, error) {
	p := &LikePattern{source: pattern, fold: foldCase}
	var chunk []byte
	var wild []bool
	flush := func() {
		if len(chunk) == 0 {
			return
		}
		seg := likeSegment{chunk: chunk, wild: wild}
		if !anyTrue(wild) {
			seg.bm = NewBoyerMoore(chunk, foldCase)
		}
		p.segments = append(p.segments, seg)
		chunk, wild = nil, nil
	}
	lastWasPercent := false
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '%' {
			if i == 0 {
				p.openStart = true
			}
			flush()
			lastWasPercent = true
			continue
		}
		lastWasPercent = false
		switch c {
		case '_':
			chunk = append(chunk, 0)
			wild = append(wild, true)
		case '\\':
			if i+1 >= len(pattern) {
				return nil, ErrBadEscape
			}
			i++
			chunk = append(chunk, pattern[i])
			wild = append(wild, false)
		default:
			chunk = append(chunk, c)
			wild = append(wild, false)
		}
	}
	flush()
	p.openEnd = lastWasPercent
	if pattern == "" {
		p.openStart, p.openEnd = false, false
	}
	return p, nil
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// Source returns the original pattern text.
func (p *LikePattern) Source() string { return p.source }

// Segments returns the number of literal segments (between % wildcards).
func (p *LikePattern) Segments() int { return len(p.segments) }

// Match reports whether s matches the LIKE pattern (entire-value semantics,
// as in SQL).
func (p *LikePattern) Match(s []byte) bool {
	if len(p.segments) == 0 {
		return p.openStart || len(s) == 0
	}
	pos := 0
	first, last := 0, len(p.segments)-1

	if !p.openStart {
		seg := &p.segments[first]
		if !p.segmentAt(seg, s, 0) {
			return false
		}
		pos = len(seg.chunk)
		first++
		if first > last {
			// Single anchored segment: with a trailing % any
			// remainder is fine, otherwise it must consume all.
			return p.openEnd || pos == len(s)
		}
	}
	end := len(s)
	var lastSeg *likeSegment
	if !p.openEnd {
		lastSeg = &p.segments[last]
		end = len(s) - len(lastSeg.chunk)
		last--
	}
	for i := first; i <= last; i++ {
		seg := &p.segments[i]
		at := p.findSegment(seg, s, pos)
		if at < 0 {
			return false
		}
		pos = at + len(seg.chunk)
	}
	if lastSeg != nil {
		if end < pos {
			return false
		}
		if !p.segmentAt(lastSeg, s, end) {
			return false
		}
	} else if pos > len(s) {
		return false
	}
	return true
}

// MatchString is Match over a string.
func (p *LikePattern) MatchString(s string) bool { return p.Match([]byte(s)) }

// segmentAt reports whether seg's chunk matches s starting exactly at off.
func (p *LikePattern) segmentAt(seg *likeSegment, s []byte, off int) bool {
	if off < 0 || off+len(seg.chunk) > len(s) {
		return false
	}
	for i, c := range seg.chunk {
		if seg.wild[i] {
			continue
		}
		h := s[off+i]
		if p.fold {
			h = asciiLower(h)
			c = asciiLower(c)
		}
		if h != c {
			return false
		}
	}
	return true
}

// findSegment finds the first occurrence of seg at or after from.
func (p *LikePattern) findSegment(seg *likeSegment, s []byte, from int) int {
	if seg.bm != nil {
		return seg.bm.Find(s, from)
	}
	for at := from; at+len(seg.chunk) <= len(s); at++ {
		if p.segmentAt(seg, s, at) {
			return at
		}
	}
	return -1
}

// ToRegex translates the LIKE pattern into the regex dialect so that it can
// be offloaded to the FPGA's regex engines (the HUDF path for Q1): `%`
// becomes `.*`, `_` becomes `.`, literal bytes are escaped, and the
// entire-value semantics become ^…$ anchors where the pattern is closed.
func (p *LikePattern) ToRegex() string {
	var b strings.Builder
	if !p.openStart {
		b.WriteByte('^')
	}
	for i, seg := range p.segments {
		if i > 0 {
			b.WriteString(".*")
		}
		for k, c := range seg.chunk {
			if seg.wild[k] {
				b.WriteByte('.')
				continue
			}
			if strings.IndexByte(`.*+?()[]{}|\^$`, c) >= 0 {
				b.WriteByte('\\')
			}
			b.WriteByte(c)
		}
	}
	if !p.openEnd {
		b.WriteByte('$')
	}
	return b.String()
}

// FoldCase reports whether the pattern uses ILIKE semantics.
func (p *LikePattern) FoldCase() bool { return p.fold }
