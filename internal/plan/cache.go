package plan

import (
	"container/list"
	"sync"

	"doppiodb/internal/telemetry"
)

// Cache is a bounded LRU used for compiled artifacts along the query path:
// the SQL engine keys it by normalized statement + table versions to cache
// parsed plans and placement decisions, and core keys it by pattern to
// cache compiled regex config vectors. All methods are nil-receiver safe so
// callers can leave caching unwired.
type Cache struct {
	mu  sync.Mutex
	cap int
	lru *list.List
	idx map[string]*list.Element

	hits, misses, evictions *telemetry.Counter
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds an LRU holding up to capacity entries and registers
// prefix_{hits,misses,evictions} counters on tel (tel may be nil).
func NewCache(capacity int, tel *telemetry.Registry, prefix string) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:       capacity,
		lru:       list.New(),
		idx:       make(map[string]*list.Element),
		hits:      tel.Counter(prefix + "_hits"),
		misses:    tel.Counter(prefix + "_misses"),
		evictions: tel.Counter(prefix + "_evictions"),
	}
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes an entry, evicting the least-recently-used
// entry when the cache is full.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		tail := c.lru.Back()
		if tail != nil {
			c.lru.Remove(tail)
			delete(c.idx, tail.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
	}
	c.idx[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
}

// Len reports the live entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
