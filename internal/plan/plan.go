// Package plan is doppioDB's physical-plan layer: the explicit operator
// boundary between the SQL planner and the execution engines. A statement
// compiles into a tree of vectorized operators with a uniform
// Open/Next(batch)/Close contract; leaf scans carry the placement the cost
// model chose for them (fpga, hybrid, software), so "where does this
// predicate run" is a property of the plan, not a side effect buried in the
// executor.
//
// The package is a leaf: it depends only on telemetry, so sql, core and the
// CLIs can all share the operator and plan-tree types without import
// cycles. Operators hold closures bound by the planner — the plan layer
// owns control flow (batching, draining, tree shape) while the binding
// layer owns the semantics (expression evaluation, BAT scans, UDF calls).
package plan

import (
	"context"
	"fmt"
	"strings"
)

// BatchSize is the row count of one vectorized batch.
const BatchSize = 1024

// Batch is one unit of data flow between operators. Rows carries
// materialized tuples; Tally carries counted-but-never-materialized rows
// (the fast count(*) paths), so a count query stays a pure BAT operation
// all the way up the tree.
type Batch struct {
	Rows  [][]any
	Tally int64
}

// Info describes one operator for plan rendering: the EXPLAIN tree, the
// \plan command, and the golden plan-shape tests all read it.
type Info struct {
	// Name is the operator type (Scan, FPGARegexScan, Filter, ...).
	Name string
	// Detail names the operator's target (table, predicate, key).
	Detail string
	// Placement is the execution site of a leaf scan: "fpga", "hybrid" or
	// "software" ("" for operators that have no placement choice).
	Placement string
	// Cache is the plan-cache status stamped by the planner: "hit",
	// "miss", or "" when the statement shape is not cacheable.
	Cache string
	// Shared marks a scan that was coalesced with concurrent identical
	// scans into one HAL job group.
	Shared bool
	// RowsOut counts the rows (or tallied rows) this operator emitted.
	RowsOut int64
}

// Operator is the uniform physical-operator contract. Next returns nil at
// end of stream. Operators are single-consumer and not safe for concurrent
// use — one query drives one tree.
type Operator interface {
	Open(ctx context.Context) error
	Next(ctx context.Context) (*Batch, error)
	Close() error
	Info() *Info
	Children() []Operator
}

// Run opens op, drains every batch, and closes it: the root-level drive
// loop of a query. It returns the materialized rows and the accumulated
// tally.
func Run(ctx context.Context, op Operator) ([][]any, int64, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, 0, err
	}
	var rows [][]any
	var tally int64
	for {
		b, err := op.Next(ctx)
		if err != nil {
			op.Close()
			return nil, 0, err
		}
		if b == nil {
			break
		}
		tally += b.Tally
		rows = append(rows, b.Rows...)
	}
	return rows, tally, op.Close()
}

// Node is an immutable snapshot of one operator for rendering: the plan
// tree survives after the operator state is gone.
type Node struct {
	Name      string  `json:"name"`
	Detail    string  `json:"detail,omitempty"`
	Placement string  `json:"placement,omitempty"`
	Cache     string  `json:"cache,omitempty"`
	Shared    bool    `json:"shared,omitempty"`
	Rows      int64   `json:"rows"`
	Children  []*Node `json:"children,omitempty"`
}

// Snapshot captures the operator tree as Nodes. A Scan over a derived
// table exposes its subquery's plan as an extra child.
func Snapshot(op Operator) *Node {
	if op == nil {
		return nil
	}
	in := op.Info()
	n := &Node{
		Name:      in.Name,
		Detail:    in.Detail,
		Placement: in.Placement,
		Cache:     in.Cache,
		Shared:    in.Shared,
		Rows:      in.RowsOut,
	}
	for _, c := range op.Children() {
		n.Children = append(n.Children, Snapshot(c))
	}
	if s, ok := op.(*Scan); ok && s.Sub != nil {
		n.Children = append(n.Children, s.Sub)
	}
	return n
}

// Lines renders the tree, one operator per line, children indented. With
// executed set, each line carries the observed row count; without it the
// tree is the pure plan shape (EXPLAIN before execution, golden tests).
func (n *Node) Lines(executed bool) []string {
	if n == nil {
		return nil
	}
	var out []string
	n.walk("", executed, &out)
	return out
}

func (n *Node) walk(indent string, executed bool, out *[]string) {
	line := indent + n.Name
	if n.Detail != "" {
		line += ": " + n.Detail
	}
	var attrs []string
	if n.Placement != "" {
		attrs = append(attrs, "placement="+n.Placement)
	}
	if n.Cache != "" {
		attrs = append(attrs, "cache="+n.Cache)
	}
	if n.Shared {
		attrs = append(attrs, "shared")
	}
	if executed {
		attrs = append(attrs, fmt.Sprintf("rows=%d", n.Rows))
	}
	if len(attrs) > 0 {
		line += " [" + strings.Join(attrs, " ") + "]"
	}
	*out = append(*out, line)
	for _, c := range n.Children {
		c.walk(indent+"  ", executed, out)
	}
}

// String renders the executed tree.
func (n *Node) String() string { return strings.Join(n.Lines(true), "\n") }
