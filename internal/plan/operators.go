package plan

import (
	"context"
	"fmt"
)

// ScanOut is what a leaf's bound run closure produces: either materialized
// rows or a pure tally (count-only scans that never leave the BAT layer).
type ScanOut struct {
	Rows      [][]any
	Tally     int64
	TallyOnly bool
}

// leaf is the shared chassis for source operators. The planner binds a run
// closure that performs the actual scan (BAT select, UDF offload, software
// regex, ...); the leaf handles batching and row accounting.
type leaf struct {
	info Info
	run  func(ctx context.Context) (ScanOut, error)

	out  ScanOut
	pos  int
	done bool
}

func (l *leaf) Open(ctx context.Context) error {
	out, err := l.run(ctx)
	if err != nil {
		return err
	}
	l.out, l.pos, l.done = out, 0, false
	return nil
}

func (l *leaf) Next(ctx context.Context) (*Batch, error) {
	if l.done {
		return nil, nil
	}
	if l.out.TallyOnly {
		l.done = true
		l.info.RowsOut += l.out.Tally
		return &Batch{Tally: l.out.Tally}, nil
	}
	if l.pos >= len(l.out.Rows) {
		l.done = true
		return nil, nil
	}
	end := l.pos + BatchSize
	if end > len(l.out.Rows) {
		end = len(l.out.Rows)
	}
	b := &Batch{Rows: l.out.Rows[l.pos:end]}
	l.pos = end
	l.info.RowsOut += int64(len(b.Rows))
	return b, nil
}

func (l *leaf) Close() error         { l.out = ScanOut{}; return nil }
func (l *leaf) Info() *Info          { return &l.info }
func (l *leaf) Children() []Operator { return nil }

// Scan materializes a base table or a derived (subquery) table. For a
// derived table the planner stores the subquery's plan in Sub so the full
// tree renders through the scan.
type Scan struct {
	leaf
	// Sub is the snapshot of a derived table's own plan, if any.
	Sub *Node
}

// NewScan builds a table scan leaf.
func NewScan(detail string, run func(ctx context.Context) (ScanOut, error)) *Scan {
	return &Scan{leaf: leaf{info: Info{Name: "Scan", Detail: detail, Placement: "software"}, run: run}}
}

// FPGARegexScan is a scan whose regex predicate was offloaded to the FPGA
// (or split hybrid FPGA+CPU). Placement comes from the cost model.
type FPGARegexScan struct{ leaf }

// NewFPGARegexScan builds an offloaded regex scan leaf.
func NewFPGARegexScan(detail, placement string, run func(ctx context.Context) (ScanOut, error)) *FPGARegexScan {
	return &FPGARegexScan{leaf{info: Info{Name: "FPGARegexScan", Detail: detail, Placement: placement}, run: run}}
}

// SoftRegexFilter is a scan whose string predicate (LIKE or regex) runs on
// the CPU over the BAT.
type SoftRegexFilter struct{ leaf }

// NewSoftRegexFilter builds a software string-predicate scan leaf.
func NewSoftRegexFilter(detail string, run func(ctx context.Context) (ScanOut, error)) *SoftRegexFilter {
	return &SoftRegexFilter{leaf{info: Info{Name: "SoftRegexFilter", Detail: detail, Placement: "software"}, run: run}}
}

// IndexLookup is a dictionary/index-backed predicate scan (CONTAINS).
type IndexLookup struct{ leaf }

// NewIndexLookup builds an index-backed scan leaf.
func NewIndexLookup(detail string, run func(ctx context.Context) (ScanOut, error)) *IndexLookup {
	return &IndexLookup{leaf{info: Info{Name: "IndexLookup", Detail: detail, Placement: "software"}, run: run}}
}

// Filter applies a row predicate bound by the planner.
type Filter struct {
	Child Operator
	Pred  func(row []any) (bool, error)
	info  Info
}

// NewFilter wraps child with a predicate.
func NewFilter(child Operator, detail string, pred func(row []any) (bool, error)) *Filter {
	return &Filter{Child: child, Pred: pred, info: Info{Name: "Filter", Detail: detail}}
}

func (f *Filter) Open(ctx context.Context) error { return f.Child.Open(ctx) }

func (f *Filter) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := f.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		if b.Tally != 0 {
			return nil, fmt.Errorf("plan: Filter cannot evaluate a tally-only batch")
		}
		out := b.Rows[:0:0]
		for _, row := range b.Rows {
			ok, err := f.Pred(row)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		if len(out) == 0 {
			continue
		}
		f.info.RowsOut += int64(len(out))
		return &Batch{Rows: out}, nil
	}
}

func (f *Filter) Close() error         { return f.Child.Close() }
func (f *Filter) Info() *Info          { return &f.info }
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// HashJoin joins two inputs on an equi-key: the right side is drained into
// a hash table at Open, the left side streams through Next in input order
// (preserving the legacy executor's ordering guarantees).
type HashJoin struct {
	Left, Right Operator
	// LeftKey / RightKey extract the join key; a nil key never matches.
	LeftKey, RightKey func(row []any) (any, error)
	// RightWidth is the right relation's column count, used for LEFT OUTER
	// null padding.
	RightWidth int
	LeftOuter  bool
	// RightPre filters right rows before they enter the hash table
	// (pushdown of right-only residual conjuncts).
	RightPre func(row []any) (bool, error)
	// Pair evaluates mixed residual conjuncts on a joined pair.
	Pair func(pair []any) (bool, error)
	// Account reports input cardinalities once both sides are drained, so
	// the planner can keep legacy Work bookkeeping.
	Account func(leftRows, rightRows int)

	info      Info
	table     map[any][]([]any)
	leftRows  int
	rightRows int
}

// NewHashJoin builds an equi-join operator; the planner fills the key and
// residual closures after construction.
func NewHashJoin(left, right Operator, detail string) *HashJoin {
	return &HashJoin{Left: left, Right: right, info: Info{Name: "HashJoin", Detail: detail}}
}

func (j *HashJoin) Open(ctx context.Context) error {
	// Open left before draining right: derived tables execute in the same
	// order as the legacy executor, so UDF/trace side effects line up.
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[any][]([]any))
	for {
		b, err := j.Right.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows {
			j.rightRows++
			if j.RightPre != nil {
				ok, err := j.RightPre(row)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			k, err := j.RightKey(row)
			if err != nil {
				return err
			}
			if k == nil {
				continue
			}
			j.table[k] = append(j.table[k], row)
		}
	}
	return nil
}

func (j *HashJoin) Next(ctx context.Context) (*Batch, error) {
	for {
		b, err := j.Left.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.Account != nil {
				j.Account(j.leftRows, j.rightRows)
				j.Account = nil
			}
			return nil, nil
		}
		var out [][]any
		for _, lrow := range b.Rows {
			j.leftRows++
			matched := false
			k, err := j.LeftKey(lrow)
			if err != nil {
				return nil, err
			}
			if k != nil {
				for _, rrow := range j.table[k] {
					pair := make([]any, 0, len(lrow)+len(rrow))
					pair = append(pair, lrow...)
					pair = append(pair, rrow...)
					if j.Pair != nil {
						ok, err := j.Pair(pair)
						if err != nil {
							return nil, err
						}
						if !ok {
							continue
						}
					}
					matched = true
					out = append(out, pair)
				}
			}
			if !matched && j.LeftOuter {
				pair := make([]any, 0, len(lrow)+j.RightWidth)
				pair = append(pair, lrow...)
				for i := 0; i < j.RightWidth; i++ {
					pair = append(pair, nil)
				}
				out = append(out, pair)
			}
		}
		if len(out) == 0 {
			continue
		}
		j.info.RowsOut += int64(len(out))
		return &Batch{Rows: out}, nil
	}
}

func (j *HashJoin) Close() error {
	j.table = nil
	err := j.Left.Close()
	if e := j.Right.Close(); err == nil {
		err = e
	}
	return err
}
func (j *HashJoin) Info() *Info          { return &j.info }
func (j *HashJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// GroupAggregate blocks: it drains its child and folds the rows. CountStar
// handles the count(*) fast shapes (tally batches fold straight into the
// count); general grouping goes through the planner-bound Fold.
type GroupAggregate struct {
	Child     Operator
	CountStar bool
	Fold      func(rows [][]any) ([][]any, error)

	info Info
	out  [][]any
	pos  int
	done bool
}

// NewGroupAggregate builds the blocking aggregation operator.
func NewGroupAggregate(child Operator, detail string) *GroupAggregate {
	return &GroupAggregate{Child: child, info: Info{Name: "GroupAggregate", Detail: detail}}
}

func (g *GroupAggregate) Open(ctx context.Context) error { return g.Child.Open(ctx) }

func (g *GroupAggregate) Next(ctx context.Context) (*Batch, error) {
	if g.done {
		return nil, nil
	}
	if g.out == nil {
		var rows [][]any
		var tally int64
		for {
			b, err := g.Child.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			tally += b.Tally
			rows = append(rows, b.Rows...)
		}
		if g.CountStar {
			g.out = [][]any{{tally + int64(len(rows))}}
		} else {
			out, err := g.Fold(rows)
			if err != nil {
				return nil, err
			}
			g.out = out
			if g.out == nil {
				g.out = [][]any{}
			}
		}
	}
	if g.pos >= len(g.out) {
		g.done = true
		return nil, nil
	}
	end := g.pos + BatchSize
	if end > len(g.out) {
		end = len(g.out)
	}
	b := &Batch{Rows: g.out[g.pos:end]}
	g.pos = end
	g.info.RowsOut += int64(len(b.Rows))
	return b, nil
}

func (g *GroupAggregate) Close() error         { g.out = nil; return g.Child.Close() }
func (g *GroupAggregate) Info() *Info          { return &g.info }
func (g *GroupAggregate) Children() []Operator { return []Operator{g.Child} }

// Project maps each input row through the projection. OnEmpty runs once if
// the input produced no rows, so projection-list validation (unknown
// columns) still fires on empty tables.
type Project struct {
	Child   Operator
	Map     func(row []any) ([]any, error)
	OnEmpty func() error

	info Info
	any_ bool
	eof  bool
}

// NewProject builds the projection operator.
func NewProject(child Operator, detail string) *Project {
	return &Project{Child: child, info: Info{Name: "Project", Detail: detail}}
}

func (p *Project) Open(ctx context.Context) error { return p.Child.Open(ctx) }

func (p *Project) Next(ctx context.Context) (*Batch, error) {
	if p.eof {
		return nil, nil
	}
	for {
		b, err := p.Child.Next(ctx)
		if err != nil {
			return nil, err
		}
		if b == nil {
			p.eof = true
			if !p.any_ && p.OnEmpty != nil {
				if err := p.OnEmpty(); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		if b.Tally != 0 {
			return nil, fmt.Errorf("plan: Project cannot evaluate a tally-only batch")
		}
		if len(b.Rows) == 0 {
			continue
		}
		p.any_ = true
		out := make([][]any, 0, len(b.Rows))
		for _, row := range b.Rows {
			mapped, err := p.Map(row)
			if err != nil {
				return nil, err
			}
			out = append(out, mapped)
		}
		p.info.RowsOut += int64(len(out))
		return &Batch{Rows: out}, nil
	}
}

func (p *Project) Close() error         { return p.Child.Close() }
func (p *Project) Info() *Info          { return &p.info }
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// OrderBy blocks: drains its child and sorts via the planner-bound Sort.
// Sort always runs, even on zero rows, so ORDER BY validation fires on
// empty inputs exactly like the legacy executor.
type OrderBy struct {
	Child Operator
	Sort  func(rows [][]any) ([][]any, error)

	info Info
	out  [][]any
	pos  int
	done bool
}

// NewOrderBy builds the blocking sort operator.
func NewOrderBy(child Operator, detail string) *OrderBy {
	return &OrderBy{Child: child, info: Info{Name: "OrderBy", Detail: detail}}
}

func (o *OrderBy) Open(ctx context.Context) error { return o.Child.Open(ctx) }

func (o *OrderBy) Next(ctx context.Context) (*Batch, error) {
	if o.done {
		return nil, nil
	}
	if o.out == nil {
		var rows [][]any
		for {
			b, err := o.Child.Next(ctx)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			rows = append(rows, b.Rows...)
		}
		sorted, err := o.Sort(rows)
		if err != nil {
			return nil, err
		}
		o.out = sorted
		if o.out == nil {
			o.out = [][]any{}
		}
	}
	if o.pos >= len(o.out) {
		o.done = true
		return nil, nil
	}
	end := o.pos + BatchSize
	if end > len(o.out) {
		end = len(o.out)
	}
	b := &Batch{Rows: o.out[o.pos:end]}
	o.pos = end
	o.info.RowsOut += int64(len(b.Rows))
	return b, nil
}

func (o *OrderBy) Close() error         { o.out = nil; return o.Child.Close() }
func (o *OrderBy) Info() *Info          { return &o.info }
func (o *OrderBy) Children() []Operator { return []Operator{o.Child} }

// Limit truncates the stream after N rows.
type Limit struct {
	Child Operator
	N     int64

	info    Info
	emitted int64
}

// NewLimit builds the truncation operator.
func NewLimit(child Operator, n int64) *Limit {
	return &Limit{Child: child, N: n, info: Info{Name: "Limit", Detail: fmt.Sprintf("%d", n)}}
}

func (l *Limit) Open(ctx context.Context) error { return l.Child.Open(ctx) }

func (l *Limit) Next(ctx context.Context) (*Batch, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	for {
		b, err := l.Child.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		if len(b.Rows) == 0 && b.Tally == 0 {
			continue
		}
		rows := b.Rows
		if rem := l.N - l.emitted; int64(len(rows)) > rem {
			rows = rows[:rem]
		}
		l.emitted += int64(len(rows))
		l.info.RowsOut += int64(len(rows))
		return &Batch{Rows: rows}, nil
	}
}

func (l *Limit) Close() error         { return l.Child.Close() }
func (l *Limit) Info() *Info          { return &l.info }
func (l *Limit) Children() []Operator { return []Operator{l.Child} }
