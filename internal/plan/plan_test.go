package plan

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"doppiodb/internal/telemetry"
)

// rowsLeaf builds a Scan over fixed rows.
func rowsLeaf(detail string, rows [][]any) *Scan {
	return NewScan(detail, func(ctx context.Context) (ScanOut, error) {
		return ScanOut{Rows: rows}, nil
	})
}

func intRows(n int) [][]any {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i)}
	}
	return rows
}

func TestLeafBatchesLargeInput(t *testing.T) {
	n := 2*BatchSize + 7
	op := rowsLeaf("t", intRows(n))
	if err := op.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	batches, total := 0, 0
	for {
		b, err := op.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if len(b.Rows) > BatchSize {
			t.Errorf("batch of %d rows exceeds BatchSize", len(b.Rows))
		}
		batches++
		total += len(b.Rows)
	}
	if batches != 3 || total != n {
		t.Errorf("batches=%d total=%d, want 3/%d", batches, total, n)
	}
	if op.Info().RowsOut != int64(n) {
		t.Errorf("RowsOut = %d, want %d", op.Info().RowsOut, n)
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTallyOnlyLeafAndCountStar(t *testing.T) {
	leafOp := NewSoftRegexFilter("t: pred", func(ctx context.Context) (ScanOut, error) {
		return ScanOut{Tally: 41, TallyOnly: true}, nil
	})
	agg := NewGroupAggregate(leafOp, "count(*)")
	agg.CountStar = true
	rows, tally, err := Run(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if tally != 0 || len(rows) != 1 || rows[0][0].(int64) != 41 {
		t.Errorf("count plan: rows=%v tally=%d", rows, tally)
	}
}

func TestFilterRejectsTallyBatch(t *testing.T) {
	leafOp := NewSoftRegexFilter("t", func(ctx context.Context) (ScanOut, error) {
		return ScanOut{Tally: 5, TallyOnly: true}, nil
	})
	f := NewFilter(leafOp, "x", func(row []any) (bool, error) { return true, nil })
	if _, _, err := Run(context.Background(), f); err == nil {
		t.Error("Filter accepted a tally-only batch")
	}
}

func TestFilterKeepsMatching(t *testing.T) {
	f := NewFilter(rowsLeaf("t", intRows(10)), "even", func(row []any) (bool, error) {
		return row[0].(int64)%2 == 0, nil
	})
	rows, _, err := Run(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || f.Info().RowsOut != 5 {
		t.Errorf("filter kept %d rows (RowsOut=%d)", len(rows), f.Info().RowsOut)
	}
}

func TestHashJoinInnerAndOuter(t *testing.T) {
	left := [][]any{{int64(0)}, {int64(1)}, {int64(2)}, {int64(3)}}
	right := [][]any{{int64(1), "one"}, {int64(3), "three"}, {int64(3), "tres"}}
	for _, outer := range []bool{false, true} {
		j := NewHashJoin(rowsLeaf("l", left), rowsLeaf("r", right), "l.k = r.rk")
		j.LeftKey = func(row []any) (any, error) { return row[0], nil }
		j.RightKey = func(row []any) (any, error) { return row[0], nil }
		j.RightWidth = 2
		j.LeftOuter = outer
		var gotL, gotR int
		j.Account = func(l, r int) { gotL, gotR = l, r }
		rows, _, err := Run(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		want := 3 // 1 match for k=1, 2 for k=3
		if outer {
			want = 5 // plus null-padded rows for k=0 and k=2
		}
		if len(rows) != want {
			t.Errorf("outer=%v: %d rows, want %d", outer, len(rows), want)
		}
		if outer {
			for _, row := range rows {
				if len(row) != 3 {
					t.Fatalf("outer row width %d", len(row))
				}
				if row[0].(int64)%2 == 0 && (row[1] != nil || row[2] != nil) {
					t.Errorf("unmatched row not null-padded: %v", row)
				}
			}
		}
		if gotL != 4 || gotR != 3 {
			t.Errorf("Account(%d, %d), want (4, 3)", gotL, gotR)
		}
	}
}

func TestHashJoinRightPreAndPair(t *testing.T) {
	left := [][]any{{int64(1)}, {int64(2)}}
	right := [][]any{{int64(1), int64(10)}, {int64(1), int64(99)}, {int64(2), int64(20)}}
	j := NewHashJoin(rowsLeaf("l", left), rowsLeaf("r", right), "k")
	j.LeftKey = func(row []any) (any, error) { return row[0], nil }
	j.RightKey = func(row []any) (any, error) { return row[0], nil }
	j.RightWidth = 2
	j.RightPre = func(row []any) (bool, error) { return row[1].(int64) < 50, nil }
	j.Pair = func(pair []any) (bool, error) { return pair[2].(int64) != 20, nil }
	rows, _, err := Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].(int64) != 10 {
		t.Errorf("residual filtering: %v", rows)
	}
}

func TestProjectOnEmptyValidation(t *testing.T) {
	called := false
	p := NewProject(rowsLeaf("t", nil), "a")
	p.Map = func(row []any) ([]any, error) { return row, nil }
	p.OnEmpty = func() error { called = true; return fmt.Errorf("bad column") }
	if _, _, err := Run(context.Background(), p); err == nil || !called {
		t.Errorf("OnEmpty not honored: called=%v err=%v", called, err)
	}
}

func TestOrderBySortsAndValidatesEmpty(t *testing.T) {
	o := NewOrderBy(rowsLeaf("t", intRows(5)), "v DESC")
	o.Sort = func(rows [][]any) ([][]any, error) {
		for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
			rows[i], rows[j] = rows[j], rows[i]
		}
		return rows, nil
	}
	rows, _, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].(int64) != 4 {
		t.Errorf("sort not applied: %v", rows)
	}
	// Sort must run even with zero input rows (validation parity).
	ran := false
	o2 := NewOrderBy(rowsLeaf("t", nil), "v")
	o2.Sort = func(rows [][]any) ([][]any, error) { ran = true; return rows, nil }
	if _, _, err := Run(context.Background(), o2); err != nil || !ran {
		t.Errorf("empty sort: ran=%v err=%v", ran, err)
	}
}

func TestLimitStopsEarly(t *testing.T) {
	l := NewLimit(rowsLeaf("t", intRows(3*BatchSize)), 10)
	rows, _, err := Run(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || l.Info().RowsOut != 10 {
		t.Errorf("limit emitted %d rows", len(rows))
	}
}

func TestSnapshotAndLines(t *testing.T) {
	f := NewFilter(rowsLeaf("t", intRows(4)), "v > 1", func(row []any) (bool, error) {
		return row[0].(int64) > 1, nil
	})
	f.Child.Info().Cache = "miss"
	if _, _, err := Run(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	n := Snapshot(f)
	wantPlan := []string{
		"Filter: v > 1",
		"  Scan: t [placement=software cache=miss]",
	}
	if got := n.Lines(false); !reflect.DeepEqual(got, wantPlan) {
		t.Errorf("plan lines:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(wantPlan, "\n"))
	}
	exec := n.Lines(true)
	if !strings.Contains(exec[0], "rows=2") || !strings.Contains(exec[1], "rows=4") {
		t.Errorf("executed lines missing row counts:\n%s", strings.Join(exec, "\n"))
	}
}

func TestCacheLRUAndCounters(t *testing.T) {
	tel := telemetry.NewRegistry()
	c := NewCache(2, tel, "plan.cache")
	if _, ok := c.Get("a"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Error("a not cached")
	}
	c.Put("c", 3) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	snap := tel.Snapshot()
	if snap.Counter("plan.cache_hits") != 1 ||
		snap.Counter("plan.cache_misses") != 2 ||
		snap.Counter("plan.cache_evictions") != 1 {
		t.Errorf("counters: hits=%d misses=%d evictions=%d",
			snap.Counter("plan.cache_hits"),
			snap.Counter("plan.cache_misses"),
			snap.Counter("plan.cache_evictions"))
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	// Nil cache is inert.
	var nilCache *Cache
	nilCache.Put("x", 1)
	if _, ok := nilCache.Get("x"); ok || nilCache.Len() != 0 {
		t.Error("nil cache not inert")
	}
}
