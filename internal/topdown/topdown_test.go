package topdown

import (
	"strings"
	"testing"

	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

func TestAnalyzeVerdicts(t *testing.T) {
	hw := Buckets{Busy: us(90), StallInput: us(8), StallSwitch: us(2)}
	hw.Wall = hw.Sum()
	stalled := Buckets{Busy: us(20), StallInput: us(70), StallSwitch: us(6), StallOutput: us(4)}
	stalled.Wall = stalled.Sum()
	cases := []struct {
		name string
		q    QueryCycles
		want Verdict
	}{
		{"compute", QueryCycles{Placement: "fpga", Hardware: us(100), Total: us(120),
			Software: us(20), LinkBusy: us(80), Buckets: hw}, ComputeBound},
		{"memory-by-stalls", QueryCycles{Placement: "fpga", Hardware: us(100), Total: us(120),
			Software: us(20), LinkBusy: us(80), Buckets: stalled}, MemoryBound},
		{"memory-by-saturation", QueryCycles{Placement: "fpga", Hardware: us(100), Total: us(120),
			Software: us(20), LinkBusy: us(98), Buckets: hw}, MemoryBound},
		{"queue", QueryCycles{Placement: "fpga", Hardware: us(100), Queue: us(500),
			Total: us(620), Software: us(20), Buckets: hw}, QueueBound},
		{"config", QueryCycles{Placement: "fpga", Hardware: us(100), ConfigGen: us(150),
			Total: us(270), Software: us(20), Buckets: hw}, ConfigBound},
		{"software-placement", QueryCycles{Placement: "software", Software: us(300),
			Total: us(300)}, SoftwareBound},
		{"software-dominant", QueryCycles{Placement: "hybrid", Hardware: us(100),
			Software: us(400), Total: us(520), Buckets: hw}, SoftwareBound},
		{"degraded", QueryCycles{Placement: "fpga", Degraded: true, Hardware: us(100),
			Software: us(50), Total: us(170), Buckets: hw}, SoftwareBound},
	}
	for _, tc := range cases {
		if got := Analyze(tc.q); got.Verdict != tc.want {
			t.Errorf("%s: verdict %q, want %q (%+v)", tc.name, got.Verdict, tc.want, got)
		}
	}
}

func TestAttributionLineNamesVerdict(t *testing.T) {
	a := Analyze(QueryCycles{Placement: "software", Software: us(10), Total: us(10)})
	if !strings.Contains(a.Line(), "software-bound") {
		t.Errorf("Line() = %q", a.Line())
	}
}

// Pct must stay pure integer math: basis-point resolution, no float drift.
func TestPct(t *testing.T) {
	if got := Pct(us(9063), us(10000)); got != 90.63 {
		t.Errorf("Pct = %v, want 90.63", got)
	}
	if got := Pct(us(1), 0); got != 0 {
		t.Errorf("Pct with zero whole = %v", got)
	}
}

// The counter round-trip: what the HAL emits per round, SummaryFromMetrics
// reads back with the conservation check still exact.
func TestSummaryFromMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	b := Buckets{Busy: us(50), StallInput: us(30), StallSwitch: us(10),
		StallOutput: us(5), Config: us(3), Idle: us(2)}
	b.Wall = b.Sum()
	reg.Counter("topdown.busy_ps").Add(int64(b.Busy))
	reg.Counter("topdown.stall_input_ps").Add(int64(b.StallInput))
	reg.Counter("topdown.stall_switch_ps").Add(int64(b.StallSwitch))
	reg.Counter("topdown.stall_output_ps").Add(int64(b.StallOutput))
	reg.Counter("topdown.config_ps").Add(int64(b.Config))
	reg.Counter("topdown.idle_ps").Add(int64(b.Idle))
	reg.Counter("topdown.wall_ps").Add(int64(b.Wall))
	reg.Counter("topdown.link.busy_ps").Add(int64(us(95)))
	reg.Counter("topdown.link.arbitration_ps").Add(int64(us(5)))
	reg.Counter("topdown.link.idle_ps").Add(0)
	reg.Counter("topdown.link.wall_ps").Add(int64(us(100)))
	reg.Counter("topdown.rounds").Inc()
	reg.Counter("topdown.verdict.memory-bound").Inc()

	s := SummaryFromMetrics(reg.Snapshot())
	if s.Buckets != b {
		t.Errorf("buckets round-trip: %+v != %+v", s.Buckets, b)
	}
	if !s.Conserved {
		t.Error("round-trip lost conservation")
	}
	if s.Rounds != 1 || s.Verdicts["memory-bound"] != 1 {
		t.Errorf("rounds/verdicts wrong: %+v", s)
	}
	var sb strings.Builder
	s.WriteText(&sb)
	if !strings.Contains(sb.String(), "cycle conservation: exact") {
		t.Errorf("summary text:\n%s", sb.String())
	}
}

// A conservation violation must be loud, not rounded away.
func TestWriteTextFlagsViolation(t *testing.T) {
	rep := FabricReport{Engines: []EngineReport{{Engine: 0,
		Buckets: Buckets{Busy: us(10), Wall: us(11)}}}}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "VIOLATED") {
		t.Errorf("violation not flagged:\n%s", sb.String())
	}
}
