// Package topdown is the cycle-conserving utilization accounting and
// bottleneck-attribution layer over the simulated fabric. Every simulated
// engine cycle is classified into exactly one bucket — busy (PU compute),
// stall-input (waiting on QPI grants), stall-switch (offset↔heap
// turnaround), stall-output (result write-back drain), config
// (reconfiguration), idle — with the hard invariant that per-engine
// buckets sum exactly to wall cycles. The QPI link keeps a parallel
// busy/arbitration/idle ledger. On top of the raw ledgers a per-query
// analyzer folds the per-job buckets into a verdict (memory-bound /
// compute-bound / config-bound / queue-bound / software-bound) with the
// dominant-bucket percentages.
//
// All quantities are simulated picoseconds (sim.Time); nothing here reads
// the wall clock, so topdown records are bit-identical across reruns.
package topdown

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"doppiodb/internal/sim"
	"doppiodb/internal/telemetry"
)

// Buckets classifies a span of engine cycles. The conservation invariant
// Busy+StallInput+StallSwitch+StallOutput+Config+Idle == Wall holds
// exactly for ledgers built by the HAL; per-job buckets set Wall to their
// own sum (jobs do not own idle time).
type Buckets struct {
	Busy        sim.Time `json:"busy_ps"`
	StallInput  sim.Time `json:"stall_input_ps"`
	StallSwitch sim.Time `json:"stall_switch_ps"`
	StallOutput sim.Time `json:"stall_output_ps"`
	Config      sim.Time `json:"config_ps"`
	Idle        sim.Time `json:"idle_ps"`
	Wall        sim.Time `json:"wall_ps"`
}

// Add accumulates o into b, field-wise (walls add too: the cumulative
// ledger of rounds is conserved iff every round was).
func (b *Buckets) Add(o Buckets) {
	b.Busy += o.Busy
	b.StallInput += o.StallInput
	b.StallSwitch += o.StallSwitch
	b.StallOutput += o.StallOutput
	b.Config += o.Config
	b.Idle += o.Idle
	b.Wall += o.Wall
}

// Sum returns the bucket total.
func (b Buckets) Sum() sim.Time {
	return b.Busy + b.StallInput + b.StallSwitch + b.StallOutput + b.Config + b.Idle
}

// Stalled returns the memory-side stall total (input + switch + output).
func (b Buckets) Stalled() sim.Time { return b.StallInput + b.StallSwitch + b.StallOutput }

// Active returns everything but idle.
func (b Buckets) Active() sim.Time { return b.Sum() - b.Idle }

// Conserved reports whether the buckets sum exactly to the wall.
func (b Buckets) Conserved() bool { return b.Sum() == b.Wall }

// LinkBuckets is the QPI link's ledger: transferring, waiting on engine
// turnaround while work is pending, or idle.
type LinkBuckets struct {
	Busy        sim.Time `json:"busy_ps"`
	Arbitration sim.Time `json:"arbitration_ps"`
	Idle        sim.Time `json:"idle_ps"`
	Wall        sim.Time `json:"wall_ps"`
}

// Add accumulates o into l.
func (l *LinkBuckets) Add(o LinkBuckets) {
	l.Busy += o.Busy
	l.Arbitration += o.Arbitration
	l.Idle += o.Idle
	l.Wall += o.Wall
}

// Sum returns the bucket total.
func (l LinkBuckets) Sum() sim.Time { return l.Busy + l.Arbitration + l.Idle }

// Conserved reports whether the buckets sum exactly to the wall.
func (l LinkBuckets) Conserved() bool { return l.Sum() == l.Wall }

// BusyPct returns the link's busy share of its wall in percent.
func (l LinkBuckets) BusyPct() float64 { return Pct(l.Busy, l.Wall) }

// Pct returns part's share of whole in percent with basis-point
// resolution, via integer math so repeated runs render identically.
func Pct(part, whole sim.Time) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part*10000/whole) / 100
}

// EngineReport is one engine's cumulative ledger.
type EngineReport struct {
	Engine int `json:"engine"`
	Buckets
}

// FabricReport is the fabric-wide utilization accounting: one ledger per
// engine plus the link, accumulated across simulation rounds.
type FabricReport struct {
	Engines []EngineReport `json:"engines"`
	Link    LinkBuckets    `json:"link"`
	Rounds  int64          `json:"rounds"`
	// PUOccupancyPct is the PU layer's occupancy (active PUs per
	// engine-cycle) in percent, when the caller has it.
	PUOccupancyPct float64 `json:"pu_occupancy_pct,omitempty"`
}

// Conserved reports whether every engine ledger and the link ledger sum
// exactly to their walls.
func (r FabricReport) Conserved() bool {
	for _, e := range r.Engines {
		if !e.Buckets.Conserved() {
			return false
		}
	}
	return r.Link.Conserved()
}

// Total returns the sum of all engine ledgers.
func (r FabricReport) Total() Buckets {
	var t Buckets
	for _, e := range r.Engines {
		t.Add(e.Buckets)
	}
	return t
}

// WriteText renders the report as an aligned utilization table.
func (r FabricReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "topdown utilization (simulated cycles, %d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "  %-6s %7s %9s %9s %9s %8s %7s  %s\n",
		"unit", "busy%", "stall-in%", "stall-sw%", "stall-out%", "config%", "idle%", "wall")
	for _, e := range r.Engines {
		b := e.Buckets
		fmt.Fprintf(w, "  e%-5d %7.2f %9.2f %9.2f %9.2f %8.2f %7.2f  %s\n",
			e.Engine, Pct(b.Busy, b.Wall), Pct(b.StallInput, b.Wall),
			Pct(b.StallSwitch, b.Wall), Pct(b.StallOutput, b.Wall),
			Pct(b.Config, b.Wall), Pct(b.Idle, b.Wall), b.Wall)
	}
	fmt.Fprintf(w, "  qpi    busy %.2f%%  arbitration %.2f%%  idle %.2f%%  wall %s\n",
		r.Link.BusyPct(), Pct(r.Link.Arbitration, r.Link.Wall),
		Pct(r.Link.Idle, r.Link.Wall), r.Link.Wall)
	if r.PUOccupancyPct > 0 {
		fmt.Fprintf(w, "  pu occupancy %.2f%% (active PUs per engine-cycle)\n", r.PUOccupancyPct)
	}
	if r.Conserved() {
		fmt.Fprintln(w, "  cycle conservation: exact")
	} else {
		fmt.Fprintln(w, "  cycle conservation: VIOLATED")
	}
}

// Summary is the process-wide topdown view reconstructed from telemetry
// counters — the cross-system aggregate doppiobench reports after running
// experiments that boot and tear down many fabrics.
type Summary struct {
	Buckets   Buckets          `json:"buckets"`
	Link      LinkBuckets      `json:"link"`
	Rounds    int64            `json:"rounds"`
	Verdicts  map[string]int64 `json:"verdicts,omitempty"`
	Conserved bool             `json:"conserved"`
}

// Counter names the HAL emits per simulation round; SummaryFromMetrics
// reads them back. Picosecond resolution keeps the conservation check
// exact across the counter round-trip.
const (
	verdictCounterPrefix = "topdown.verdict."
)

// SummaryFromMetrics rebuilds the cumulative topdown accounting from a
// telemetry snapshot.
func SummaryFromMetrics(snap telemetry.Snapshot) Summary {
	c := func(name string) sim.Time { return sim.Time(snap.Counters[name]) }
	s := Summary{
		Buckets: Buckets{
			Busy:        c("topdown.busy_ps"),
			StallInput:  c("topdown.stall_input_ps"),
			StallSwitch: c("topdown.stall_switch_ps"),
			StallOutput: c("topdown.stall_output_ps"),
			Config:      c("topdown.config_ps"),
			Idle:        c("topdown.idle_ps"),
			Wall:        c("topdown.wall_ps"),
		},
		Link: LinkBuckets{
			Busy:        c("topdown.link.busy_ps"),
			Arbitration: c("topdown.link.arbitration_ps"),
			Idle:        c("topdown.link.idle_ps"),
			Wall:        c("topdown.link.wall_ps"),
		},
		Rounds: snap.Counters["topdown.rounds"],
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, verdictCounterPrefix) {
			if s.Verdicts == nil {
				s.Verdicts = make(map[string]int64)
			}
			s.Verdicts[strings.TrimPrefix(name, verdictCounterPrefix)] = v
		}
	}
	s.Conserved = s.Buckets.Conserved() && s.Link.Conserved()
	return s
}

// WriteText renders the summary.
func (s Summary) WriteText(w io.Writer) {
	b := s.Buckets
	fmt.Fprintf(w, "topdown summary (%d rounds, all engines)\n", s.Rounds)
	fmt.Fprintf(w, "  engine cycles: busy %.2f%%  stall-in %.2f%%  stall-sw %.2f%%  stall-out %.2f%%  config %.2f%%  idle %.2f%%\n",
		Pct(b.Busy, b.Wall), Pct(b.StallInput, b.Wall), Pct(b.StallSwitch, b.Wall),
		Pct(b.StallOutput, b.Wall), Pct(b.Config, b.Wall), Pct(b.Idle, b.Wall))
	fmt.Fprintf(w, "  qpi link: busy %.2f%%  arbitration %.2f%%  idle %.2f%%\n",
		s.Link.BusyPct(), Pct(s.Link.Arbitration, s.Link.Wall), Pct(s.Link.Idle, s.Link.Wall))
	if len(s.Verdicts) > 0 {
		keys := make([]string, 0, len(s.Verdicts))
		for k := range s.Verdicts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "  verdicts:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, s.Verdicts[k])
		}
		fmt.Fprintln(w)
	}
	if s.Conserved {
		fmt.Fprintln(w, "  cycle conservation: exact")
	} else {
		fmt.Fprintln(w, "  cycle conservation: VIOLATED")
	}
}
