package topdown

import (
	"fmt"

	"doppiodb/internal/sim"
)

// Verdict names the dominant reason a query spent its time.
type Verdict string

// The five verdicts of the per-query bottleneck analyzer.
const (
	// MemoryBound: the engines spent more cycles waiting on the QPI link
	// (grants, phase turnarounds, result drain) than computing, or the
	// link itself was saturated — adding engines will not help (§7.3).
	MemoryBound Verdict = "memory-bound"
	// ComputeBound: the engines' PU compute dominated and the link had
	// headroom — another engine would raise throughput.
	ComputeBound Verdict = "compute-bound"
	// ConfigBound: reconfiguration (config generation + per-job engine
	// parametrization) dominated the query.
	ConfigBound Verdict = "config-bound"
	// QueueBound: the query mostly waited for fabric admission.
	QueueBound Verdict = "queue-bound"
	// SoftwareBound: the CPU-side work (scan, UDF, software regex or a
	// degraded fallback) dominated.
	SoftwareBound Verdict = "software-bound"
)

// LinkSaturationPct is the QPI busy share above which the fabric counts
// as saturated regardless of the busy/stall split: a lone engine tops out
// near 90% link busy (5.89 of 6.5 GB/s), two or more pin it at ~99%.
const LinkSaturationPct = 97.0

// QueryCycles are the analyzer's inputs: the query's phase breakdown plus
// the engine-cycle buckets summed over its hardware jobs.
type QueryCycles struct {
	// Placement is the executed plan: "fpga", "hybrid" or "software".
	Placement string
	// Degraded marks a hardware query that fell back to software.
	Degraded bool
	// Software is the CPU-side time: scan setup, UDF, software regex
	// (hybrid post-pass or full fallback) and retry backoff.
	Software sim.Time
	// ConfigGen is the regex→config-vector generation time. Zero when the
	// compiled-config cache hit — the golden "cached rerun" signature.
	ConfigGen sim.Time
	// Queue is the fabric admission wait.
	Queue sim.Time
	// Hardware is the admission→completion window of the slowest job.
	Hardware sim.Time
	// Total is the query's end-to-end simulated time.
	Total sim.Time
	// LinkBusy is the link service time attributable to this query's jobs.
	LinkBusy sim.Time
	// Buckets is the engine-cycle classification summed over the query's
	// jobs (per-job Completion buckets).
	Buckets Buckets
}

// Attribution is the analyzer's verdict record, stamped onto the EXPLAIN
// ANALYZE record and the wide-event query log. Deterministic: every field
// derives from simulated time via integer math.
type Attribution struct {
	Verdict Verdict `json:"verdict"`
	// DominantPct is the dominant bucket's share in percent: of engine
	// cycles for memory/compute verdicts, of query time otherwise.
	DominantPct float64 `json:"dominant_pct"`
	// LinkBusyPct is the QPI link's busy share of the query's hardware
	// window.
	LinkBusyPct float64  `json:"link_busy_pct"`
	Software    sim.Time `json:"software_ps"`
	ConfigGen   sim.Time `json:"config_gen_ps"`
	Queue       sim.Time `json:"queue_ps"`
	Hardware    sim.Time `json:"hardware_ps"`
	Total       sim.Time `json:"total_ps"`
	Buckets     Buckets  `json:"buckets"`
}

// Analyze folds a query's cycle accounting into a bottleneck verdict.
func Analyze(q QueryCycles) *Attribution {
	a := &Attribution{
		Software:  q.Software,
		ConfigGen: q.ConfigGen,
		Queue:     q.Queue,
		Hardware:  q.Hardware,
		Total:     q.Total,
		Buckets:   q.Buckets,
	}
	if q.Hardware > 0 {
		a.LinkBusyPct = Pct(q.LinkBusy, q.Hardware)
	}
	if q.Placement == "software" || q.Degraded || q.Hardware == 0 {
		a.Verdict = SoftwareBound
		a.DominantPct = Pct(q.Software, q.Total)
		return a
	}
	// Reconfiguration cost is generation (software) plus the per-job
	// engine parametrization the hardware charged.
	config := q.ConfigGen + q.Buckets.Config
	// The dominant component of the query total decides the verdict
	// family; ties go to hardware so the cycle buckets break them.
	switch {
	case q.Queue > q.Hardware && q.Queue >= q.Software && q.Queue >= config:
		a.Verdict = QueueBound
		a.DominantPct = Pct(q.Queue, q.Total)
	case q.Software > q.Hardware && q.Software >= config:
		a.Verdict = SoftwareBound
		a.DominantPct = Pct(q.Software, q.Total)
	case config > q.Hardware:
		a.Verdict = ConfigBound
		a.DominantPct = Pct(config, q.Total)
	default:
		active := q.Buckets.Active()
		stalled := q.Buckets.Stalled()
		if stalled > q.Buckets.Busy || a.LinkBusyPct >= LinkSaturationPct {
			a.Verdict = MemoryBound
			a.DominantPct = Pct(stalled, active)
		} else {
			a.Verdict = ComputeBound
			a.DominantPct = Pct(q.Buckets.Busy, active)
		}
	}
	return a
}

// Line renders the attribution as a single human-readable line (the form
// EXPLAIN ANALYZE and the CLIs print).
func (a *Attribution) Line() string {
	switch a.Verdict {
	case MemoryBound:
		return fmt.Sprintf("bottleneck: memory-bound (stalled %.2f%% of engine cycles; qpi %.2f%% busy)",
			a.DominantPct, a.LinkBusyPct)
	case ComputeBound:
		return fmt.Sprintf("bottleneck: compute-bound (busy %.2f%% of engine cycles; qpi %.2f%% busy)",
			a.DominantPct, a.LinkBusyPct)
	case ConfigBound:
		return fmt.Sprintf("bottleneck: config-bound (reconfiguration %.2f%% of query time)", a.DominantPct)
	case QueueBound:
		return fmt.Sprintf("bottleneck: queue-bound (admission wait %.2f%% of query time)", a.DominantPct)
	default:
		return fmt.Sprintf("bottleneck: software-bound (cpu path %.2f%% of query time)", a.DominantPct)
	}
}
