package fpga

import (
	"errors"
	"fmt"

	"doppiodb/internal/sim"
)

// Partial reconfiguration (§9): "Combined with partial reconfiguration of
// the FPGA, the database engine could deploy multiple different hardware
// operators at runtime according to characteristics of the current
// workload." This file models that future system: the fabric is split into
// operator slots (each the size of one Regex Engine region) that can be
// re-flashed with a different operator bitstream at runtime, at a cost —
// unlike the runtime parametrization of the regex engines, which is free.

// OperatorKind identifies a hardware operator type. The alternatives come
// from the related work the paper surveys (§8.4).
type OperatorKind int

// Operator kinds.
const (
	// OpRegex is the paper's regular-expression engine.
	OpRegex OperatorKind = iota
	// OpSelection is predicate evaluation ([31, 23]).
	OpSelection
	// OpAggregation is group-by aggregation ([5]).
	OpAggregation
	// OpHistogram is histogram building ([14]).
	OpHistogram
)

var operatorNames = [...]string{"regex", "selection", "aggregation", "histogram"}

func (k OperatorKind) String() string {
	if int(k) < len(operatorNames) {
		return operatorNames[k]
	}
	return fmt.Sprintf("operator(%d)", int(k))
}

// PartialReconfigTime is the cost of re-flashing one partial region.
// Stratix-V-class partial bitstreams of an engine-sized region take on the
// order of a hundred milliseconds to load.
const PartialReconfigTime = 100 * sim.Millisecond

// ReconfigurableDevice is a programmed device whose engine regions are
// independent partial-reconfiguration slots.
type ReconfigurableDevice struct {
	*Device
	slots []OperatorKind
	// Reconfigurations counts slot re-flashes (for tests and stats).
	Reconfigurations int
}

// NewReconfigurableDevice programs the deployment with every slot holding
// the regex operator (the paper's configuration).
func NewReconfigurableDevice(dep Deployment) (*ReconfigurableDevice, error) {
	dev, err := NewDevice(dep)
	if err != nil {
		return nil, err
	}
	slots := make([]OperatorKind, dep.Engines)
	for i := range slots {
		slots[i] = OpRegex
	}
	return &ReconfigurableDevice{Device: dev, slots: slots}, nil
}

// ErrBadSlot reports a slot index outside the deployment.
var ErrBadSlot = errors.New("fpga: no such operator slot")

// Slots returns the current operator of each slot.
func (d *ReconfigurableDevice) Slots() []OperatorKind {
	out := make([]OperatorKind, len(d.slots))
	copy(out, d.slots)
	return out
}

// SlotsOf counts the slots currently holding kind.
func (d *ReconfigurableDevice) SlotsOf(kind OperatorKind) int {
	n := 0
	for _, k := range d.slots {
		if k == kind {
			n++
		}
	}
	return n
}

// Reconfigure re-flashes one slot with a different operator and returns the
// simulated reconfiguration time (zero if the slot already holds the
// operator — switching *expressions* within the regex operator never needs
// reconfiguration, which is the paper's core point).
func (d *ReconfigurableDevice) Reconfigure(slot int, kind OperatorKind) (sim.Time, error) {
	if slot < 0 || slot >= len(d.slots) {
		return 0, ErrBadSlot
	}
	if d.slots[slot] == kind {
		return 0, nil
	}
	d.slots[slot] = kind
	d.Reconfigurations++
	return PartialReconfigTime, nil
}

// WorthReconfiguring is the planner-side rule of thumb: re-flashing a slot
// for an operator pays off when the hardware saving over the remaining
// software plan exceeds the reconfiguration cost.
func WorthReconfiguring(swTime, hwTime sim.Time) bool {
	return swTime-hwTime > PartialReconfigTime
}
