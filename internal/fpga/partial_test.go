package fpga

import (
	"testing"

	"doppiodb/internal/sim"
)

func TestReconfigurableDevice(t *testing.T) {
	d, err := NewReconfigurableDevice(DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.SlotsOf(OpRegex); got != 4 {
		t.Fatalf("initial regex slots = %d, want 4", got)
	}
	// Re-flashing to the same operator is free: runtime parametrization
	// covers new expressions (§6.1).
	cost, err := d.Reconfigure(0, OpRegex)
	if err != nil || cost != 0 {
		t.Errorf("same-operator reconfig: %v %v", cost, err)
	}
	if d.Reconfigurations != 0 {
		t.Error("no-op reconfig counted")
	}
	// Swapping one slot to aggregation costs a partial reconfiguration.
	cost, err = d.Reconfigure(3, OpAggregation)
	if err != nil || cost != PartialReconfigTime {
		t.Errorf("reconfig cost %v, err %v", cost, err)
	}
	if d.SlotsOf(OpRegex) != 3 || d.SlotsOf(OpAggregation) != 1 {
		t.Errorf("slots after reconfig: %v", d.Slots())
	}
	if d.Reconfigurations != 1 {
		t.Errorf("Reconfigurations = %d", d.Reconfigurations)
	}
	if _, err := d.Reconfigure(7, OpHistogram); err != ErrBadSlot {
		t.Errorf("bad slot err = %v", err)
	}
	// Mutating the returned slice must not touch device state.
	s := d.Slots()
	s[0] = OpHistogram
	if d.SlotsOf(OpHistogram) != 0 {
		t.Error("Slots() leaked internal state")
	}
}

func TestWorthReconfiguring(t *testing.T) {
	// A 4.5s software aggregation vs 0.03s hardware: re-flash (saves
	// ≫100ms). A 120ms software plan vs 30ms hardware: keep in software.
	if !WorthReconfiguring(4500*sim.Millisecond, 30*sim.Millisecond) {
		t.Error("large saving should justify reconfiguration")
	}
	if WorthReconfiguring(120*sim.Millisecond, 30*sim.Millisecond) {
		t.Error("90ms saving cannot pay a 100ms reconfiguration")
	}
}

func TestOperatorKindString(t *testing.T) {
	if OpRegex.String() != "regex" || OpAggregation.String() != "aggregation" {
		t.Error("kind names")
	}
	if OperatorKind(42).String() == "" {
		t.Error("unknown kind")
	}
}
