package fpga

import (
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/sim"
)

func dep(engines, pus, states, chars int, puHZ int64) Deployment {
	d := DefaultDeployment()
	d.Engines = engines
	d.PUsPerEngine = pus
	d.Limits = config.Limits{MaxStates: states, MaxChars: chars}
	d.PUClock = sim.Clock{HZ: puHZ}
	return d
}

func TestDefaultDeploymentMatchesPaper(t *testing.T) {
	d := DefaultDeployment()
	u, err := Synthesize(d)
	if err != nil {
		t.Fatalf("default deployment must synthesize: %v", err)
	}
	// §7.9: "Our default configuration ... using 80% of the available
	// logic resources"; QPI endpoint 28% logic / 4% BRAM; BRAM constant
	// at 42%.
	if u.LogicTotal < 78 || u.LogicTotal > 82 {
		t.Errorf("default logic = %.1f%%, want ~80%%", u.LogicTotal)
	}
	if u.QPIEndpoint != 28.0 {
		t.Errorf("QPI endpoint = %.1f%%, want 28%%", u.QPIEndpoint)
	}
	if u.BRAMTotal < 41 || u.BRAMTotal > 43 {
		t.Errorf("BRAM = %.1f%%, want ~42%%", u.BRAMTotal)
	}
	if got := d.AggregateBandwidth(); got != 25.6e9 {
		t.Errorf("aggregate bandwidth = %g, want 25.6 GB/s", got)
	}
	if got := d.EngineBandwidth(); got != 6.4e9 {
		t.Errorf("engine bandwidth = %g, want 6.4 GB/s", got)
	}
}

func TestFiveEnginesFailRouting(t *testing.T) {
	// Fig. 14a: five engines fit the area but the router cannot meet
	// timing.
	d := dep(5, 16, 16, 32, 400_000_000)
	u, err := Synthesize(d)
	if err != ErrTimingViolated {
		t.Fatalf("5x16: err = %v, want ErrTimingViolated", err)
	}
	if u.LogicTotal > 100 {
		t.Errorf("5x16 should fit the area (%.1f%%)", u.LogicTotal)
	}
}

func TestAlternativeConfigurations(t *testing.T) {
	// §7.9's alternatives to 4×16: 2×32 and 1×64 both synthesize.
	for _, d := range []Deployment{
		dep(2, 32, 16, 32, 400_000_000),
		dep(1, 64, 16, 32, 400_000_000),
		dep(1, 16, 16, 32, 400_000_000),
		dep(2, 16, 16, 32, 400_000_000),
		dep(3, 16, 16, 32, 400_000_000),
	} {
		if _, err := Synthesize(d); err != nil {
			t.Errorf("%dx%d: %v", d.Engines, d.PUsPerEngine, err)
		}
	}
}

func TestCharScalingLinear(t *testing.T) {
	// Fig. 14b: 4×16 with 8 states, chars 16..64: linear logic growth,
	// all configurations fit; BRAM constant.
	var prev Usage
	var deltas []float64
	for chars := 16; chars <= 64; chars += 16 {
		d := dep(4, 16, 8, chars, 400_000_000)
		u := d.Resources()
		if u.LogicTotal > 100 {
			t.Errorf("4x16 %d chars does not fit: %.1f%%", chars, u.LogicTotal)
		}
		if chars > 16 {
			deltas = append(deltas, u.LogicTotal-prev.LogicTotal)
			if u.BRAMTotal != prev.BRAMTotal {
				t.Errorf("BRAM changed with chars: %.1f vs %.1f", u.BRAMTotal, prev.BRAMTotal)
			}
		}
		prev = u
	}
	for i := 1; i < len(deltas); i++ {
		if diff := deltas[i] - deltas[0]; diff > 0.01 || diff < -0.01 {
			t.Errorf("char scaling not linear: deltas %v", deltas)
		}
	}
}

func TestStateScalingQuadratic(t *testing.T) {
	// Fig. 14c: state growth is quadratic — doubling states from 8 to 16
	// must cost more than twice the 8-state graph increment.
	base := dep(4, 16, 2, 16, 400_000_000).Resources().LogicTotal
	at8 := dep(4, 16, 8, 16, 400_000_000).Resources().LogicTotal
	at16 := dep(4, 16, 16, 16, 400_000_000).Resources().LogicTotal
	grow8 := at8 - base
	grow16 := at16 - base
	if grow16 < 3*grow8 {
		t.Errorf("state cost not quadratic: +%.2f at 8, +%.2f at 16", grow8, grow16)
	}
}

func TestFrequencyComplexityTradeoff(t *testing.T) {
	// Fig. 15 (2×16 deployment): halving the PU clock significantly
	// enlarges the feasible states×chars space.
	feasible := func(hz int64) int {
		n := 0
		for states := 8; states <= 32; states += 4 {
			for chars := 16; chars <= 64; chars += 16 {
				d := dep(2, 16, states, chars, hz)
				if _, err := Synthesize(d); err == nil {
					n++
				}
			}
		}
		return n
	}
	f400 := feasible(400_000_000)
	f200 := feasible(200_000_000)
	if f400 == 0 {
		t.Fatal("no feasible configuration at 400 MHz")
	}
	if f200 < 2*f400 {
		t.Errorf("200 MHz space (%d) not ≫ 400 MHz space (%d)", f200, f400)
	}
	// The default 16-state/32-char point must close timing at 400 MHz.
	if _, err := Synthesize(dep(2, 16, 16, 32, 400_000_000)); err != nil {
		t.Errorf("16 states/32 chars at 400 MHz: %v", err)
	}
	// A 32-state graph must not close timing at 400 MHz but must at 200.
	if _, err := Synthesize(dep(2, 16, 32, 16, 400_000_000)); err != ErrTimingViolated {
		t.Errorf("32 states at 400 MHz: err = %v, want timing violation", err)
	}
	if _, err := Synthesize(dep(2, 16, 32, 16, 200_000_000)); err != nil {
		t.Errorf("32 states at 200 MHz: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Deployment{
		dep(0, 16, 16, 32, 400_000_000),
		dep(4, 0, 16, 32, 400_000_000),
		dep(4, 16, 1, 32, 400_000_000),
		dep(4, 16, 16, 0, 400_000_000),
		dep(4, 16, 16, 32, 0),
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad deployment", i)
		}
	}
	if err := DefaultDeployment().Validate(); err != nil {
		t.Errorf("default: %v", err)
	}
}

func TestNewDevice(t *testing.T) {
	dev, err := NewDevice(DefaultDeployment())
	if err != nil {
		t.Fatal(err)
	}
	if dev.String() == "" {
		t.Error("empty String()")
	}
	if _, err := NewDevice(dep(5, 16, 16, 32, 400_000_000)); err == nil {
		t.Error("5x16 device should not program")
	}
}

func TestMonotonicResourcesProperty(t *testing.T) {
	// More engines, states or chars never reduces usage.
	prevLogic := 0.0
	for engines := 1; engines <= 5; engines++ {
		u := dep(engines, 16, 16, 32, 400_000_000).Resources()
		if u.LogicTotal <= prevLogic {
			t.Errorf("logic not monotonic in engines at %d", engines)
		}
		prevLogic = u.LogicTotal
	}
	prevLogic = 0
	for states := 2; states <= 32; states *= 2 {
		u := dep(2, 16, states, 32, 400_000_000).Resources()
		if u.LogicTotal <= prevLogic {
			t.Errorf("logic not monotonic in states at %d", states)
		}
		prevLogic = u.LogicTotal
	}
}
