// Package fpga models the Altera Stratix V device of the Xeon+FPGA
// prototype at the level the paper evaluates it (§7.9): how much logic and
// BRAM a deployment consumes as a function of its engine count, PUs per
// engine, character-matcher budget, and state-graph size — and whether the
// routing tools can close timing for it.
//
// The model is analytic, fitted to the data points the paper publishes:
// the QPI endpoint costs a constant 28 % of logic and 4 % of BRAM; the
// arbitration and String Reader logic scale with the engine count; PU logic
// is linear in characters and quadratic in states (the fully connected
// state graph); the default 4×16 deployment lands at 80 % logic and 42 %
// BRAM; five engines fit the area but fail routing (Fig. 14a); and halving
// the PU clock roughly doubles the feasible states×chars space (Fig. 15).
package fpga

import (
	"errors"
	"fmt"

	"doppiodb/internal/config"
	"doppiodb/internal/sim"
)

// Deployment describes one synthesized bitstream configuration. The
// parameters are fixed at synthesis time; everything else about a query is
// runtime-parameterizable (§6.1).
type Deployment struct {
	// Engines is the number of Regex Engines (1..5 explored).
	Engines int
	// PUsPerEngine is the Processing Unit count per engine (16 default).
	PUsPerEngine int
	// Limits is the per-PU expression capacity (states, characters).
	Limits config.Limits
	// PUClock is the Processing Unit clock (400 MHz default; 200 MHz
	// trades throughput for a larger state graph, Fig. 15).
	PUClock sim.Clock
	// FabricClock is the QPI endpoint / String Reader clock (200 MHz).
	FabricClock sim.Clock
	// CollationWays is the number of extra comparison registers per
	// character matcher for case-insensitive or accent collations
	// (§6.4); 1 means one extra register (the default build).
	CollationWays int
}

// DefaultDeployment is the evaluation configuration: four engines of 16 PUs
// at 400 MHz, 16 states and 32 characters per expression.
func DefaultDeployment() Deployment {
	return Deployment{
		Engines:       4,
		PUsPerEngine:  16,
		Limits:        config.DefaultLimits,
		PUClock:       sim.PUClock,
		FabricClock:   sim.FabricClock,
		CollationWays: 1,
	}
}

// Validate checks structural sanity (not resources or timing).
func (d Deployment) Validate() error {
	switch {
	case d.Engines < 1:
		return errors.New("fpga: need at least one engine")
	case d.PUsPerEngine < 1:
		return errors.New("fpga: need at least one PU per engine")
	case d.Limits.MaxStates < 2:
		return errors.New("fpga: need at least two states")
	case d.Limits.MaxChars < 1:
		return errors.New("fpga: need at least one character matcher")
	case d.PUClock.HZ <= 0 || d.FabricClock.HZ <= 0:
		return errors.New("fpga: clocks must be positive")
	}
	return nil
}

// EngineBandwidth returns one engine's consumption rate: each PU eats one
// byte per PU cycle.
func (d Deployment) EngineBandwidth() float64 {
	return float64(d.PUsPerEngine) * float64(d.PUClock.HZ)
}

// AggregateBandwidth returns the deployment's total processing capacity
// (the 25.6 GB/s "capacity" line of Figure 8 for 4×16 at 400 MHz).
func (d Deployment) AggregateBandwidth() float64 {
	return float64(d.Engines) * d.EngineBandwidth()
}

// Usage is a synthesis resource report in percent of the device.
type Usage struct {
	// Logic breakdown, percent of device ALMs.
	QPIEndpoint float64
	Arbitration float64 // arbiter + String Readers, scales with engines
	PUs         float64 // all processing units
	LogicTotal  float64
	// BRAM, percent of device block RAM.
	BRAMTotal float64
}

// Model constants, fitted to Fig. 14's published points (see package doc).
const (
	qpiLogicPct    = 28.0
	qpiBRAMPct     = 4.0
	engLogicPct    = 1.5      // arbitration + String Reader per engine
	engBRAMPct     = 9.5      // FIFOs + config storage per engine
	puBasePct      = 0.1      // fixed per-PU overhead
	puCharPct      = 0.005672 // per character-matcher register per collation way
	puStatePct     = 0.001    // per state², the fully connected graph
	deviceArea     = 100.0
	routingCeiling = 91.5 // above this, the router cannot close timing
)

// Resources estimates the synthesis report for d.
func (d Deployment) Resources() Usage {
	pus := float64(d.Engines * d.PUsPerEngine)
	perPU := puBasePct +
		puCharPct*float64(d.Limits.MaxChars)*float64(1+d.CollationWays) +
		puStatePct*float64(d.Limits.MaxStates)*float64(d.Limits.MaxStates)
	u := Usage{
		QPIEndpoint: qpiLogicPct,
		Arbitration: engLogicPct * float64(d.Engines),
		PUs:         pus * perPU,
	}
	u.LogicTotal = u.QPIEndpoint + u.Arbitration + u.PUs
	u.BRAMTotal = qpiBRAMPct + engBRAMPct*float64(d.Engines)
	return u
}

// Timing-model constants: the critical path through the fully connected
// state graph must settle within one PU clock period. Fitted to Fig. 15's
// 200 vs 400 MHz frontiers.
const (
	delayBaseNS      = 0.70 // routing + matcher mux base delay
	delayPerStateNS  = 0.09 // per state of fan-in on the graph
	delayPerChar16NS = 0.10 // per 16 character matchers of chain routing
)

// CriticalPath returns the modelled state-graph settle time.
func (d Deployment) CriticalPath() sim.Time {
	ns := delayBaseNS +
		delayPerStateNS*float64(d.Limits.MaxStates) +
		delayPerChar16NS*float64(d.Limits.MaxChars)/16.0
	return sim.Time(ns * float64(sim.Nanosecond))
}

// Synthesis errors.
var (
	// ErrOverCapacity means the configuration does not fit the device.
	ErrOverCapacity = errors.New("fpga: configuration exceeds device logic resources")
	// ErrTimingViolated means the router cannot meet the clock target —
	// either the device is too full (Fig. 14a's 5×16 case) or the state
	// graph is too large for the PU clock (Fig. 15's frontier).
	ErrTimingViolated = errors.New("fpga: timing requirements not met")
)

// Synthesize checks whether d fits the device and closes timing, mirroring
// what the vendor tool chain decides. The returned Usage is valid even on
// error.
func Synthesize(d Deployment) (Usage, error) {
	u := d.Resources()
	if err := d.Validate(); err != nil {
		return u, err
	}
	if u.LogicTotal > deviceArea {
		return u, ErrOverCapacity
	}
	if u.LogicTotal > routingCeiling {
		// The area fits but routing congestion kills timing — the
		// paper's five-engine observation.
		return u, ErrTimingViolated
	}
	if d.CriticalPath() > d.PUClock.Period() {
		return u, ErrTimingViolated
	}
	return u, nil
}

// Device is a programmed FPGA: a deployment that passed synthesis plus the
// runtime constants the rest of the simulator needs. It corresponds to the
// bitstream loaded at system start; it is never reprogrammed per query.
type Device struct {
	Deployment Deployment
	Usage      Usage
}

// NewDevice synthesizes and "programs" a deployment.
func NewDevice(d Deployment) (*Device, error) {
	u, err := Synthesize(d)
	if err != nil {
		return nil, fmt.Errorf("fpga: cannot program device: %w", err)
	}
	return &Device{Deployment: d, Usage: u}, nil
}

// String summarizes the device.
func (dev *Device) String() string {
	d := dev.Deployment
	return fmt.Sprintf("FPGA{%dx%d PUs @%s, %d states/%d chars, logic %.1f%%, BRAM %.1f%%}",
		d.Engines, d.PUsPerEngine, d.PUClock, d.Limits.MaxStates,
		d.Limits.MaxChars, dev.Usage.LogicTotal, dev.Usage.BRAMTotal)
}
