// Package faults is the fault-injection side of the robustness story: a
// deterministic, seedable Injector that models the hardware trouble the
// paper's platform design implies but its prototype never exercises. The
// HUDF busy-waits on a done bit because HARP has no FPGA-to-CPU interrupts
// (§4.2.2), and the AAL handshake is the only evidence that the right
// bitstream is loaded (§2.2) — so a wedged Regex Engine, a bit flip on the
// config vector in transit, or a clobbered Device Status Memory page would
// hang or corrupt a stock implementation. The injector produces exactly
// those events; internal/hal carries the defenses (checksums, watchdog,
// per-engine circuit breaker) and internal/core the graceful degradation to
// the software operator.
//
// A nil *Injector is valid and means "no injection": every hook is
// nil-safe and returns the no-fault answer without touching any state, so
// the production path is bit-identical with injection disabled.
//
// Injection decisions are driven by a splitmix64 stream seeded from
// Options.Seed, so a fault scenario replays exactly given the same
// submission order. Configuration comes from Options directly, from a spec
// string (the -faults flag of doppiobench), or from the DOPPIO_FAULTS
// environment variable (the CI fault matrix).
package faults

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// StuckDone wedges a job: the engine never writes its status block,
	// so the done bit the UDF busy-waits on never sets.
	StuckDone Class = iota
	// ConfigCorrupt flips a bit of the configuration vector between
	// parametrize and engine ingest.
	ConfigCorrupt
	// StatusCorrupt flips a byte of the status block after the engine
	// wrote it.
	StatusCorrupt
	// HandshakeLoss clobbers the DSM handshake words before a submit, as
	// if the AFU lost its AAL session.
	HandshakeLoss
	// EngineDrop wedges one Regex Engine: it stops accepting jobs
	// mid-batch.
	EngineDrop
	// QPIDegrade scales the simulated QPI bandwidth down for the whole
	// batch.
	QPIDegrade

	numClasses
)

// String names the class the way the spec grammar and telemetry do.
func (c Class) String() string {
	switch c {
	case StuckDone:
		return "stuck-done"
	case ConfigCorrupt:
		return "config-corrupt"
	case StatusCorrupt:
		return "status-corrupt"
	case HandshakeLoss:
		return "handshake-loss"
	case EngineDrop:
		return "engine-drop"
	case QPIDegrade:
		return "qpi-degrade"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Options configures an Injector. The zero value injects nothing.
type Options struct {
	// Seed selects the deterministic decision stream.
	Seed uint64
	// Per-opportunity probabilities in [0,1].
	StuckDone     float64
	ConfigCorrupt float64
	StatusCorrupt float64
	HandshakeLoss float64
	// QPIFactor scales the simulated QPI bandwidth when in (0,1); 0 or 1
	// disables the class.
	QPIFactor float64
	// DropEnabled turns the engine drop-out on; DropEngine is the engine
	// that wedges after accepting DropAfter jobs. It recovers after
	// DropRecover readmission probes (0: never).
	DropEnabled bool
	DropEngine  int
	DropAfter   int
	DropRecover int
}

// enabled reports whether any class can fire.
func (o Options) enabled() bool {
	return o.StuckDone > 0 || o.ConfigCorrupt > 0 || o.StatusCorrupt > 0 ||
		o.HandshakeLoss > 0 || (o.QPIFactor > 0 && o.QPIFactor < 1) || o.DropEnabled
}

// Injector is a deterministic fault source. All methods are safe for
// concurrent use and nil-safe (a nil injector never fires).
type Injector struct {
	mu       sync.Mutex
	opts     Options
	rng      uint64
	injected [numClasses]int64
	drop     struct {
		accepted int // jobs the drop engine has accepted so far
		down     bool
		probes   int // readmission probes seen while down
	}
}

// New creates an injector for o.
func New(o Options) *Injector {
	return &Injector{opts: o, rng: o.Seed}
}

// NewFromSpec parses a spec string (see Parse) and creates the injector.
func NewFromSpec(spec string) (*Injector, error) {
	o, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(o), nil
}

// Enabled reports whether any fault class can fire. A nil injector is
// disabled.
func (in *Injector) Enabled() bool { return in != nil && in.opts.enabled() }

// next advances the splitmix64 stream. Caller holds in.mu.
func (in *Injector) next() uint64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// chance draws a deterministic bernoulli with probability p. p <= 0 never
// fires and consumes no stream state, so a zero-rate class leaves the
// decision sequence of the others untouched.
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(in.next()>>11)/(1<<53) < p
}

// rate returns the configured probability of a probabilistic class.
func (in *Injector) rate(c Class) float64 {
	switch c {
	case StuckDone:
		return in.opts.StuckDone
	case ConfigCorrupt:
		return in.opts.ConfigCorrupt
	case StatusCorrupt:
		return in.opts.StatusCorrupt
	case HandshakeLoss:
		return in.opts.HandshakeLoss
	}
	return 0
}

// Hit decides whether probabilistic class c fires at this opportunity,
// counting the injection when it does.
func (in *Injector) Hit(c Class) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.chance(in.rate(c)) {
		return false
	}
	in.injected[c]++
	return true
}

// QPIFactor returns the bandwidth degradation factor, or 0 when the class
// is off. The first call that reports a degraded batch counts it.
func (in *Injector) QPIFactor() float64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.opts.QPIFactor
	if f <= 0 || f >= 1 {
		return 0
	}
	in.injected[QPIDegrade]++
	return f
}

// EngineAccepts models the drop engine's job-accept handshake: it accepts
// DropAfter jobs, then wedges and rejects everything until readmitted.
func (in *Injector) EngineAccepts(e int) bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.opts.DropEnabled || e != in.opts.DropEngine {
		return true
	}
	if in.drop.down {
		return false
	}
	if in.drop.accepted >= in.opts.DropAfter {
		in.drop.down = true
		in.injected[EngineDrop]++
		return false
	}
	in.drop.accepted++
	return true
}

// ProbeEngine is the health tracker's readmission probe. A wedged engine
// recovers after DropRecover probes (never, when 0); a recovered engine may
// accept another DropAfter jobs before wedging again.
func (in *Injector) ProbeEngine(e int) bool {
	if in == nil {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.opts.DropEnabled || e != in.opts.DropEngine || !in.drop.down {
		return true
	}
	in.drop.probes++
	if in.opts.DropRecover > 0 && in.drop.probes >= in.opts.DropRecover {
		in.drop.down = false
		in.drop.probes = 0
		in.drop.accepted = 0
		return true
	}
	return false
}

// CorruptCopy returns buf with one deterministic bit flipped, leaving the
// original untouched (the fault hits the in-flight copy, not the UDF's
// buffer).
func (in *Injector) CorruptCopy(buf []byte) []byte {
	if in == nil || len(buf) == 0 {
		return buf
	}
	out := append([]byte(nil), buf...)
	in.mu.Lock()
	r := in.next()
	in.mu.Unlock()
	out[int(r%uint64(len(out)))] ^= 1 << ((r >> 32) % 8)
	return out
}

// FlipByte flips one deterministic byte of buf in place (never to the same
// value).
func (in *Injector) FlipByte(buf []byte) {
	if in == nil || len(buf) == 0 {
		return
	}
	in.mu.Lock()
	r := in.next()
	in.mu.Unlock()
	buf[int(r%uint64(len(buf)))] ^= 0x55
}

// Clobber overwrites buf with recognizably-wrong bytes (every byte changes).
func (in *Injector) Clobber(buf []byte) {
	for i := range buf {
		buf[i] ^= 0xA5
	}
}

// Injected returns how many times class c has fired.
func (in *Injector) Injected(c Class) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[c]
}

// Parse decodes the -faults / DOPPIO_FAULTS spec grammar:
//
//	SPEC  := item (',' item)*
//	item  := 'seed=' N
//	       | ('stuck-done' | 'config-corrupt' | 'status-corrupt'
//	         | 'handshake-loss') ['=' P]      (bare class: P = 1)
//	       | 'qpi=' F                         (bandwidth factor in (0,1))
//	       | 'engine-drop=' E ['@' AFTER] ['+' RECOVER]
//
// Example: "stuck-done=0.2,engine-drop=1@8+3,qpi=0.5,seed=42" wedges 20 %
// of jobs, drops engine 1 after its 8th job (recovering after 3 readmission
// probes), and halves QPI bandwidth, all under seed 42.
func Parse(spec string) (Options, error) {
	var o Options
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return o, errors.New("faults: empty spec")
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val := item, ""
		if i := strings.IndexAny(item, "=:"); i >= 0 {
			key, val = item[:i], item[i+1:]
		}
		prob := func() (float64, error) {
			if val == "" {
				return 1, nil
			}
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return 0, fmt.Errorf("faults: bad probability %q for %s", val, key)
			}
			return p, nil
		}
		var err error
		switch key {
		case "seed":
			o.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return o, fmt.Errorf("faults: bad seed %q", val)
			}
		case "stuck-done":
			o.StuckDone, err = prob()
		case "config-corrupt":
			o.ConfigCorrupt, err = prob()
		case "status-corrupt":
			o.StatusCorrupt, err = prob()
		case "handshake-loss":
			o.HandshakeLoss, err = prob()
		case "qpi":
			f, ferr := strconv.ParseFloat(val, 64)
			if ferr != nil || f <= 0 || f >= 1 {
				return o, fmt.Errorf("faults: qpi factor %q must be in (0,1)", val)
			}
			o.QPIFactor = f
		case "engine-drop":
			if err := parseDrop(val, &o); err != nil {
				return o, err
			}
		default:
			return o, fmt.Errorf("faults: unknown spec item %q", key)
		}
		if err != nil {
			return o, err
		}
	}
	return o, nil
}

// parseDrop decodes E['@'AFTER]['+'RECOVER].
func parseDrop(val string, o *Options) error {
	rest := val
	rec := 0
	if i := strings.IndexByte(rest, '+'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 0 {
			return fmt.Errorf("faults: bad engine-drop recover %q", rest[i+1:])
		}
		rec, rest = n, rest[:i]
	}
	after := 0
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 0 {
			return fmt.Errorf("faults: bad engine-drop job count %q", rest[i+1:])
		}
		after, rest = n, rest[:i]
	}
	e, err := strconv.Atoi(rest)
	if err != nil || e < 0 {
		return fmt.Errorf("faults: bad engine-drop engine %q", val)
	}
	o.DropEnabled = true
	o.DropEngine = e
	o.DropAfter = after
	o.DropRecover = rec
	return nil
}

// EnvVar is the environment variable the process default injector is read
// from (the CI fault matrix sets it).
const EnvVar = "DOPPIO_FAULTS"

var (
	defMu     sync.Mutex
	defInj    *Injector
	defLoaded bool
)

// SetDefault installs the process default injector (doppiobench -faults).
func SetDefault(in *Injector) {
	defMu.Lock()
	defer defMu.Unlock()
	defInj, defLoaded = in, true
}

// Default returns the process default injector: the one installed by
// SetDefault, else one parsed from DOPPIO_FAULTS on first use, else nil (no
// injection).
func Default() *Injector {
	defMu.Lock()
	defer defMu.Unlock()
	if !defLoaded {
		defLoaded = true
		if spec := os.Getenv(EnvVar); spec != "" {
			in, err := NewFromSpec(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faults: ignoring %s: %v\n", EnvVar, err)
			} else {
				defInj = in
			}
		}
	}
	return defInj
}

// FromEnv parses DOPPIO_FAULTS directly, bypassing the Default cache (tests
// use it with t.Setenv). It returns nil when the variable is unset.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	return NewFromSpec(spec)
}
