package faults

import (
	"bytes"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
	if in.Hit(StuckDone) || in.Hit(ConfigCorrupt) {
		t.Error("nil injector fired")
	}
	if !in.EngineAccepts(0) || !in.ProbeEngine(0) {
		t.Error("nil injector rejected an engine")
	}
	if in.QPIFactor() != 0 {
		t.Error("nil injector degraded QPI")
	}
	buf := []byte{1, 2, 3}
	if got := in.CorruptCopy(buf); !bytes.Equal(got, buf) {
		t.Error("nil injector corrupted a vector")
	}
	in.FlipByte(buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Error("nil injector flipped a byte")
	}
	if in.Injected(StuckDone) != 0 {
		t.Error("nil injector counted an injection")
	}
}

func TestDeterministicReplay(t *testing.T) {
	draw := func() []bool {
		in := New(Options{Seed: 42, StuckDone: 0.5, StatusCorrupt: 0.3})
		var seq []bool
		for i := 0; i < 64; i++ {
			seq = append(seq, in.Hit(StuckDone), in.Hit(StatusCorrupt))
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical seeds", i)
		}
	}
	fired := false
	for _, v := range a {
		fired = fired || v
	}
	if !fired {
		t.Error("0.5-rate class never fired in 64 draws")
	}
}

func TestZeroRateConsumesNoStream(t *testing.T) {
	// A disabled class must not perturb the decision sequence of enabled
	// ones: stuck-done decisions are identical whether or not a zero-rate
	// class is interleaved.
	with := New(Options{Seed: 7, StuckDone: 0.5})
	without := New(Options{Seed: 7, StuckDone: 0.5})
	for i := 0; i < 32; i++ {
		with.Hit(ConfigCorrupt) // rate 0
		if with.Hit(StuckDone) != without.Hit(StuckDone) {
			t.Fatalf("zero-rate class perturbed the stream at draw %d", i)
		}
	}
}

func TestEngineDropLifecycle(t *testing.T) {
	in := New(Options{DropEnabled: true, DropEngine: 1, DropAfter: 2, DropRecover: 3})
	if !in.Enabled() {
		t.Fatal("drop-only injector reports disabled")
	}
	// Other engines are never affected.
	for i := 0; i < 10; i++ {
		if !in.EngineAccepts(0) || !in.EngineAccepts(2) {
			t.Fatal("non-drop engine rejected a job")
		}
	}
	// Engine 1 accepts DropAfter jobs, then wedges.
	if !in.EngineAccepts(1) || !in.EngineAccepts(1) {
		t.Fatal("drop engine rejected before DropAfter")
	}
	if in.EngineAccepts(1) {
		t.Fatal("drop engine accepted past DropAfter")
	}
	if in.Injected(EngineDrop) != 1 {
		t.Errorf("EngineDrop injections = %d", in.Injected(EngineDrop))
	}
	// Recovers on the third readmission probe, then runs again.
	if in.ProbeEngine(1) || in.ProbeEngine(1) {
		t.Fatal("engine recovered too early")
	}
	if !in.ProbeEngine(1) {
		t.Fatal("engine did not recover after DropRecover probes")
	}
	if !in.EngineAccepts(1) {
		t.Fatal("recovered engine rejected a job")
	}
}

func TestEngineDropNeverRecovers(t *testing.T) {
	in := New(Options{DropEnabled: true, DropEngine: 0})
	if in.EngineAccepts(0) {
		t.Fatal("DropAfter=0 engine accepted a job")
	}
	for i := 0; i < 100; i++ {
		if in.ProbeEngine(0) {
			t.Fatal("DropRecover=0 engine recovered")
		}
	}
}

func TestCorruptionPrimitives(t *testing.T) {
	in := New(Options{Seed: 3})
	orig := bytes.Repeat([]byte{0xAB}, 64)
	cp := in.CorruptCopy(orig)
	if bytes.Equal(cp, orig) {
		t.Error("CorruptCopy changed nothing")
	}
	diff := 0
	for i := range orig {
		if cp[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("CorruptCopy changed %d bytes, want 1 (single bit flip)", diff)
	}
	buf := bytes.Repeat([]byte{0xCD}, 24)
	in.FlipByte(buf)
	if bytes.Equal(buf, bytes.Repeat([]byte{0xCD}, 24)) {
		t.Error("FlipByte changed nothing")
	}
	dsm := []byte{0x31, 0x4C, 0x41, 0x48}
	in.Clobber(dsm)
	for i, b := range dsm {
		if b == []byte{0x31, 0x4C, 0x41, 0x48}[i] {
			t.Errorf("Clobber left byte %d unchanged", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	o, err := Parse("stuck-done=0.2,config-corrupt,status-corrupt=0.1,handshake-loss=0.5,qpi=0.5,engine-drop=1@8+3,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Options{
		Seed: 42, StuckDone: 0.2, ConfigCorrupt: 1, StatusCorrupt: 0.1,
		HandshakeLoss: 0.5, QPIFactor: 0.5,
		DropEnabled: true, DropEngine: 1, DropAfter: 8, DropRecover: 3,
	}
	if o != want {
		t.Errorf("Parse = %+v, want %+v", o, want)
	}
	// Colon separator and bare drop engine also work.
	o, err = Parse("stuck-done:1,engine-drop:2")
	if err != nil {
		t.Fatal(err)
	}
	if o.StuckDone != 1 || !o.DropEnabled || o.DropEngine != 2 || o.DropAfter != 0 {
		t.Errorf("colon form = %+v", o)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "stuck-done=2", "stuck-done=x", "qpi=0", "qpi=1",
		"qpi=nope", "seed=abc", "engine-drop=-1", "engine-drop=1@x",
		"engine-drop=1+x",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if in, err := FromEnv(); err != nil || in != nil {
		t.Errorf("empty env: %v %v", in, err)
	}
	t.Setenv(EnvVar, "stuck-done=0.5,seed=9")
	in, err := FromEnv()
	if err != nil || in == nil || !in.Enabled() {
		t.Fatalf("FromEnv: %v %v", in, err)
	}
	t.Setenv(EnvVar, "garbage=1")
	if _, err := FromEnv(); err == nil {
		t.Error("bad env spec accepted")
	}
}
