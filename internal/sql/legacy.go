package sql

import (
	"context"
	"fmt"
	"strings"

	"doppiodb/internal/explain"
	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/telemetry"
)

// This file is the pre-operator reference executor: the inline query path
// (fast-count shortcuts + materialize/filter/aggregate pipeline) that
// predates the internal/plan operator layer. The live query path compiles
// through planner.go; this one is retained verbatim so the old-vs-new
// equivalence sweep (plan_equivalence_test.go) can assert bit-identical
// results and EXPLAIN cost terms against it. Derived tables recurse through
// execLegacy, keeping the reference path closed under itself.

// execLegacy executes a statement on the reference inline executor.
func (e *Engine) execLegacy(ctx context.Context, stmt *SelectStmt, root *telemetry.Span) (*Result, error) {
	e.Tel.Counter("sql.queries_legacy").Inc()
	if res, ok, err := e.tryFastCount(ctx, stmt, root); err != nil || ok {
		if err != nil {
			return nil, err
		}
		return e.finish(res, root), nil
	}
	rel, work, udf, err := e.evalFrom(ctx, stmt.From)
	if err != nil {
		return nil, err
	}
	res, err := e.runPipeline(stmt, rel, root)
	if err != nil {
		return nil, err
	}
	res.Work.Add(work)
	if udf != nil {
		res.UDF = udf
	}
	return e.finish(res, root), nil
}

// tryFastCount recognizes SELECT count(*) FROM t WHERE <single string
// predicate> — the paper's microbenchmark shape — and runs it directly on
// the column engine without materializing rows.
func (e *Engine) tryFastCount(ctx context.Context, stmt *SelectStmt, root *telemetry.Span) (*Result, bool, error) {
	bt, ok := stmt.From.(*BaseTable)
	if !ok || stmt.Where == nil || len(stmt.GroupBy) != 0 ||
		len(stmt.OrderBy) != 0 || len(stmt.Items) != 1 || stmt.Items[0].Star {
		return nil, false, nil
	}
	cnt, ok := stmt.Items[0].Expr.(*FuncCall)
	if !ok || cnt.Name != "COUNT" || !cnt.Star {
		return nil, false, nil
	}
	tbl, err := e.DB.Table(bt.Name)
	if err != nil {
		return nil, false, err
	}
	alias := strings.ToLower(bt.Alias)
	if alias == "" {
		alias = strings.ToLower(bt.Name)
	}
	mk := func(n int, work perf.Work, path string, udf *mdb.UDFResult) *Result {
		return &Result{
			Cols:     []string{colAlias(stmt.Items[0], "count")},
			Rows:     [][]any{{int64(n)}},
			Work:     work,
			FastPath: path,
			UDF:      udf,
		}
	}
	// scan wraps a software column scan in a bat-scan span.
	scan := func(f func() (*mdb.Selection, error)) (*mdb.Selection, error) {
		sp := root.StartChild("bat-scan")
		sel, err := f()
		sp.End()
		sp.SetAttr("rows", int64(tbl.Rows()))
		if sel != nil {
			sp.SetAttr("selected", int64(sel.Count()))
		}
		return sel, err
	}
	switch w := stmt.Where.(type) {
	case *LikeExpr:
		col, ok := likeColumn(w, alias)
		if !ok {
			return nil, false, nil
		}
		sel, err := scan(func() (*mdb.Selection, error) {
			return e.DB.SelectLike(tbl, col, w.Pattern, w.Fold)
		})
		if err != nil {
			return nil, false, err
		}
		n := sel.Count()
		if w.Negated {
			n = tbl.Rows() - n
		}
		return mk(n, sel.Work, "like", nil), true, nil
	case *FuncCall:
		switch w.Name {
		case "REGEXP_LIKE":
			colExpr, pat, err := regexpArgs(w)
			if err != nil {
				return nil, false, err
			}
			ref, ok := colExpr.(*ColumnRef)
			if !ok {
				return nil, false, nil
			}
			// Cost-based placement (§9): route to the hardware
			// operator when the advisor predicts a win. The decision
			// record travels down the context so the core layer fills
			// its actuals instead of building a second record.
			var rec *explain.Record
			if e.Advisor != nil {
				if _, hasUDF := e.DB.UDF("regexp_fpga"); hasUDF {
					var offload bool
					rec, offload = e.adviseRecord(pat, tbl.Rows(), avgStringLen(tbl, ref.Column))
					if offload {
						out, err := e.DB.CallUDF(explain.WithRecord(ctx, rec),
							"regexp_fpga", tbl, ref.Column, pat)
						if err != nil {
							return nil, false, err
						}
						n := 0
						for i := 0; i < out.Result.Count(); i++ {
							if out.Result.Get(i) != 0 {
								n++
							}
						}
						res := mk(n, out.Work, "regexp->udf", out)
						res.Decision = out.Decision
						return res, true, nil
					}
				}
			}
			sel, err := scan(func() (*mdb.Selection, error) {
				return e.DB.SelectRegexp(tbl, ref.Column, pat, false)
			})
			if err != nil {
				return nil, false, err
			}
			if rec != nil {
				// The predicate stayed in software: the realized cost is
				// the scan's own work, priced by the calibrated model.
				if ex, ok := e.Advisor.(Explainer); ok {
					ex.FinishSoftware(rec, sel.Work)
				}
			}
			res := mk(sel.Count(), sel.Work, "regexp", nil)
			res.Decision = rec
			return res, true, nil
		case "CONTAINS":
			col, q, err := containsArgs(w, tbl)
			if err != nil {
				return nil, false, err
			}
			sel, err := scan(func() (*mdb.Selection, error) {
				return e.DB.SelectContains(tbl, col, q)
			})
			if err != nil {
				return nil, false, err
			}
			return mk(sel.Count(), sel.Work, "contains", nil), true, nil
		}
		return nil, false, nil
	case *BinaryExpr:
		// REGEXP_FPGA(pattern, col) <> 0 — the HUDF predicate.
		call, zero := fpgaPredicate(w)
		if call == nil {
			return nil, false, nil
		}
		colExpr, pat, err := regexpFPGAArgs(call)
		if err != nil {
			return nil, false, err
		}
		ref, ok := colExpr.(*ColumnRef)
		if !ok {
			return nil, false, nil
		}
		if _, hasUDF := e.DB.UDF("regexp_fpga"); !hasUDF {
			// No hardware attached: the general evaluator runs the
			// hardware-equivalent automaton row by row.
			return nil, false, nil
		}
		out, err := e.DB.CallUDF(ctx, "regexp_fpga", tbl, ref.Column, pat)
		if err != nil {
			return nil, false, err
		}
		n := 0
		for i := 0; i < out.Result.Count(); i++ {
			if out.Result.Get(i) != 0 {
				n++
			}
		}
		if zero { // `= 0`: non-matching rows
			n = out.Result.Count() - n
		}
		res := mk(n, out.Work, "udf", out)
		res.Decision = out.Decision
		return res, true, nil
	}
	return nil, false, nil
}

// evalFrom materializes a table reference.
func (e *Engine) evalFrom(ctx context.Context, ref TableRef) (*relation, perf.Work, *mdb.UDFResult, error) {
	switch t := ref.(type) {
	case *BaseTable:
		rel, err := e.materializeBase(t)
		return rel, perf.Work{}, nil, err
	case *SubqueryTable:
		sub, err := e.execLegacy(ctx, t.Query, telemetry.StartSpan("query"))
		if err != nil {
			return nil, perf.Work{}, nil, err
		}
		rel := &relation{rows: sub.Rows}
		names := sub.Cols
		if len(t.Columns) > 0 {
			if len(t.Columns) != len(sub.Cols) {
				return nil, perf.Work{}, nil, fmt.Errorf(
					"sql: derived table %s has %d column aliases for %d columns",
					t.Alias, len(t.Columns), len(sub.Cols))
			}
			names = t.Columns
		}
		for _, n := range names {
			rel.cols = append(rel.cols, colMeta{
				table: strings.ToLower(t.Alias),
				name:  strings.ToLower(n),
			})
		}
		return rel, sub.Work, sub.UDF, nil
	case *JoinTable:
		return e.evalJoin(ctx, t)
	}
	return nil, perf.Work{}, nil, fmt.Errorf("sql: unsupported table reference %T", ref)
}

// evalJoin runs a hash join, honoring LEFT OUTER semantics and evaluating
// residual ON conjuncts per candidate pair.
func (e *Engine) evalJoin(ctx context.Context, j *JoinTable) (*relation, perf.Work, *mdb.UDFResult, error) {
	left, lw, ludf, err := e.evalFrom(ctx, j.Left)
	if err != nil {
		return nil, perf.Work{}, nil, err
	}
	right, rw, rudf, err := e.evalFrom(ctx, j.Right)
	if err != nil {
		return nil, perf.Work{}, nil, err
	}
	work := lw
	work.Add(rw)
	udf := ludf
	if udf == nil {
		udf = rudf
	}

	out := &relation{cols: append(append([]colMeta{}, left.cols...), right.cols...)}
	conjuncts := splitConjuncts(j.On)
	lk, rk, residual, err := findEquiKey(left, right, conjuncts)
	if err != nil {
		return nil, work, udf, err
	}

	// Pre-evaluate residual predicates on the probe (right) side where
	// they only touch right columns — the Q13 NOT LIKE case. This keeps
	// the filter work linear instead of per candidate pair.
	rightOK := make([]bool, len(right.rows))
	rightEval := newEvaluator(right)
	var rightOnly, mixed []Expr
	for _, c := range residual {
		if exprUsesOnly(c, right) {
			rightOnly = append(rightOnly, c)
		} else {
			mixed = append(mixed, c)
		}
	}
	for i, row := range right.rows {
		ok := true
		for _, c := range rightOnly {
			v, err := rightEval.evalBool(c, row)
			if err != nil {
				return nil, work, udf, err
			}
			if !v {
				ok = false
				break
			}
		}
		rightOK[i] = ok
	}
	work.Add(rightEval.work)

	// Build the hash table on the right side.
	build := make(map[any][]int, len(right.rows))
	for i, row := range right.rows {
		if !rightOK[i] {
			continue
		}
		k := row[rk]
		if k == nil {
			continue
		}
		build[k] = append(build[k], i)
	}

	pairEval := newEvaluator(out)
	nulls := make([]any, len(right.cols))
	for _, lrow := range left.rows {
		matched := false
		k := lrow[lk]
		if k != nil {
			for _, ri := range build[k] {
				pair := append(append(make([]any, 0, len(out.cols)), lrow...), right.rows[ri]...)
				ok := true
				for _, c := range mixed {
					v, err := pairEval.evalBool(c, pair)
					if err != nil {
						return nil, work, udf, err
					}
					if !v {
						ok = false
						break
					}
				}
				if ok {
					out.rows = append(out.rows, pair)
					matched = true
				}
			}
		}
		if !matched && j.LeftOuter {
			out.rows = append(out.rows, append(append(make([]any, 0, len(out.cols)), lrow...), nulls...))
		}
	}
	work.Add(pairEval.work)
	work.Rows += len(left.rows) + len(right.rows)
	return out, work, udf, nil
}

// runPipeline applies WHERE, GROUP BY, projection, ORDER BY and LIMIT.
func (e *Engine) runPipeline(stmt *SelectStmt, rel *relation, root *telemetry.Span) (*Result, error) {
	ev := newEvaluator(rel)
	if stmt.Where != nil {
		sp := root.StartChild("where")
		sp.SetAttr("rows_in", int64(len(rel.rows)))
		var kept [][]any
		for _, row := range rel.rows {
			ok, err := ev.evalBool(stmt.Where, row)
			if err != nil {
				return nil, err
			}
			ev.work.Rows++
			if ok {
				kept = append(kept, row)
			}
		}
		rel = &relation{cols: rel.cols, rows: kept}
		ev.rel = rel
		sp.End()
		sp.SetAttr("rows_out", int64(len(kept)))
	}

	var res *Result
	var err error
	var sp *telemetry.Span
	if len(stmt.GroupBy) > 0 || hasAggregate(stmt.Items) {
		sp = root.StartChild("aggregate")
		res, err = e.aggregate(stmt, rel, ev)
	} else {
		sp = root.StartChild("project")
		res, err = e.project(stmt, rel, ev)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	sp.SetAttr("rows_in", int64(len(rel.rows)))
	sp.SetAttr("rows_out", int64(len(res.Rows)))
	res.Work.Add(ev.work)

	if len(stmt.OrderBy) > 0 {
		ob := root.StartChild("order-by")
		err := orderBy(res, stmt.OrderBy)
		ob.End()
		ob.SetAttr("rows", int64(len(res.Rows)))
		if err != nil {
			return nil, err
		}
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return res, nil
}

// project evaluates a plain projection.
func (e *Engine) project(stmt *SelectStmt, rel *relation, ev *evaluator) (*Result, error) {
	res := &Result{}
	for i, it := range stmt.Items {
		if it.Star {
			for _, c := range rel.cols {
				res.Cols = append(res.Cols, c.name)
			}
			continue
		}
		res.Cols = append(res.Cols, colAlias(it, fmt.Sprintf("col%d", i+1)))
	}
	if len(rel.rows) == 0 {
		// Validate column references even on empty input so that
		// typos fail deterministically.
		nilRow := make([]any, len(rel.cols))
		for _, it := range stmt.Items {
			if it.Star {
				continue
			}
			if _, err := ev.eval(it.Expr, nilRow); err != nil {
				return nil, err
			}
		}
	}
	for _, row := range rel.rows {
		var out []any
		for _, it := range stmt.Items {
			if it.Star {
				out = append(out, row...)
				continue
			}
			v, err := ev.eval(it.Expr, row)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
