package sql

import (
	"context"
	"fmt"
	"strings"

	"doppiodb/internal/explain"
	"doppiodb/internal/mdb"
	"doppiodb/internal/perf"
	"doppiodb/internal/plan"
	"doppiodb/internal/telemetry"
)

// This file is the physical planner: it compiles a parsed statement into a
// tree of internal/plan operators. The plan layer owns control flow
// (batching, draining); the closures bound here own the semantics (BAT
// scans, UDF offload, expression evaluation), so operator trees stay free
// of SQL types and the plan package stays a leaf.

// planEntry is what the plan cache stores per normalized statement: the
// cost model's placement decision, so a repeat pattern skips re-estimation
// (and, via the core layer's config cache, Glushkov construction and the
// 512-bit encode). Entries are immutable once published.
type planEntry struct {
	// advised is set once the REGEXP_LIKE placement was decided.
	advised bool
	// rec is the decision-record template; hits hand out Clones.
	rec *explain.Record
	// offload is the decision: route to the hardware UDF or stay soft.
	offload bool
}

// planState collects what the bound closures produce during execution:
// work accounting, the UDF result, the placement decision, and every
// evaluator whose work counters must fold into the result.
type planState struct {
	work     perf.Work
	udf      *mdb.UDFResult
	decision *explain.Record
	evs      []*evaluator
}

// physical is one compiled statement: the operator tree plus everything
// execPlan needs to reassemble the legacy Result contract.
type physical struct {
	root plan.Operator
	stmt *SelectStmt
	st   *planState
	cols []string
	// fastPath carries the BAT-shortcut label ("like", "regexp",
	// "regexp->udf", "contains", "udf") or "" for the general pipeline.
	fastPath string
	// cacheStatus is "hit", "miss", or "" (uncacheable shape).
	cacheStatus string
	entry       *planEntry
	hit         bool
	// Operator handles for post-execution span synthesis (general path).
	srcOp    plan.Operator
	filterOp *plan.Filter
	aggOp    plan.Operator
	aggName  string
	orderOp  *plan.OrderBy
}

// plan compiles stmt, consulting the plan cache first. The key folds in
// every base table's version, so appends invalidate naturally; advisor and
// UDF availability are part of the key because they change the plan.
func (e *Engine) plan(stmt *SelectStmt, root *telemetry.Span) (*physical, error) {
	key := e.planKey(stmt)
	var cached *planEntry
	status := ""
	if key != "" && e.Plans != nil {
		if v, ok := e.Plans.Get(key); ok {
			cached = v.(*planEntry)
			status = "hit"
		} else {
			status = "miss"
		}
	}
	p, err := e.buildPlan(stmt, root, cached)
	if err != nil {
		return nil, err
	}
	p.cacheStatus = status
	stampCache(p.root, status)
	if status == "miss" {
		e.Plans.Put(key, p.entry)
	}
	return p, nil
}

// planKey renders the cache key: advisor/UDF availability flags, each base
// table's name:version, and the canonical statement text. An unknown table
// makes the statement uncacheable ("") — the build will surface the error.
func (e *Engine) planKey(stmt *SelectStmt) string {
	var tables []string
	var walk func(TableRef) bool
	walk = func(r TableRef) bool {
		switch t := r.(type) {
		case *BaseTable:
			tbl, err := e.DB.Table(t.Name)
			if err != nil {
				return false
			}
			tables = append(tables, fmt.Sprintf("%s:%d", strings.ToLower(t.Name), tbl.Version()))
			return true
		case *SubqueryTable:
			return walk(t.Query.From)
		case *JoinTable:
			return walk(t.Left) && walk(t.Right)
		}
		return false
	}
	if stmt.From == nil || !walk(stmt.From) {
		return ""
	}
	_, hasUDF := e.DB.UDF("regexp_fpga")
	return fmt.Sprintf("adv=%t;udf=%t;%s|%s",
		e.Advisor != nil, hasUDF, strings.Join(tables, ","), formatStmt(stmt))
}

// stampCache writes the cache status onto every leaf operator so the plan
// tree renders it (\plan, EXPLAIN).
func stampCache(op plan.Operator, status string) {
	if op == nil || status == "" {
		return
	}
	children := op.Children()
	if len(children) == 0 {
		op.Info().Cache = status
	}
	for _, c := range children {
		stampCache(c, status)
	}
}

func (e *Engine) buildPlan(stmt *SelectStmt, root *telemetry.Span, cached *planEntry) (*physical, error) {
	p := &physical{stmt: stmt, st: &planState{}, entry: cached, hit: cached != nil}
	if p.entry == nil {
		p.entry = &planEntry{}
	}
	ok, err := e.planFastCount(p, root)
	if err != nil {
		return nil, err
	}
	if ok {
		return p, nil
	}
	if err := e.planGeneral(p); err != nil {
		return nil, err
	}
	return p, nil
}

// countPlan tops a count-producing leaf with the count(*) aggregate.
func (p *physical) countPlan(src plan.Operator, path string) {
	agg := plan.NewGroupAggregate(src, "count(*)")
	agg.CountStar = true
	p.root = agg
	p.srcOp = src
	p.cols = []string{colAlias(p.stmt.Items[0], "count")}
	p.fastPath = path
}

// planFastCount recognizes SELECT count(*) FROM t WHERE <single string
// predicate> — the paper's microbenchmark shape — and compiles it to a
// tally-only leaf under a CountStar aggregate: the scan never materializes
// rows, exactly like the legacy fast path.
func (e *Engine) planFastCount(p *physical, root *telemetry.Span) (bool, error) {
	stmt, st := p.stmt, p.st
	bt, ok := stmt.From.(*BaseTable)
	if !ok || stmt.Where == nil || len(stmt.GroupBy) != 0 ||
		len(stmt.OrderBy) != 0 || len(stmt.Items) != 1 || stmt.Items[0].Star {
		return false, nil
	}
	cnt, ok := stmt.Items[0].Expr.(*FuncCall)
	if !ok || cnt.Name != "COUNT" || !cnt.Star {
		return false, nil
	}
	tbl, err := e.DB.Table(bt.Name)
	if err != nil {
		return false, err
	}
	alias := strings.ToLower(bt.Alias)
	if alias == "" {
		alias = strings.ToLower(bt.Name)
	}
	detail := strings.ToLower(bt.Name) + ": " + formatExpr(stmt.Where)
	// scan wraps a software column scan in a bat-scan span at run time.
	scan := func(f func() (*mdb.Selection, error)) (*mdb.Selection, error) {
		sp := root.StartChild("bat-scan")
		sel, err := f()
		sp.End()
		sp.SetAttr("rows", int64(tbl.Rows()))
		if sel != nil {
			sp.SetAttr("selected", int64(sel.Count()))
		}
		return sel, err
	}
	switch w := stmt.Where.(type) {
	case *LikeExpr:
		col, ok := likeColumn(w, alias)
		if !ok {
			return false, nil
		}
		op := plan.NewSoftRegexFilter(detail, func(ctx context.Context) (plan.ScanOut, error) {
			sel, err := scan(func() (*mdb.Selection, error) {
				return e.DB.SelectLike(tbl, col, w.Pattern, w.Fold)
			})
			if err != nil {
				return plan.ScanOut{}, err
			}
			n := sel.Count()
			if w.Negated {
				n = tbl.Rows() - n
			}
			st.work.Add(sel.Work)
			return plan.ScanOut{Tally: int64(n), TallyOnly: true}, nil
		})
		p.countPlan(op, "like")
		return true, nil
	case *FuncCall:
		switch w.Name {
		case "REGEXP_LIKE":
			colExpr, pat, err := regexpArgs(w)
			if err != nil {
				return false, err
			}
			ref, ok := colExpr.(*ColumnRef)
			if !ok {
				return false, nil
			}
			// Cost-based placement (§9): the decision is made at plan
			// time and cached — a plan-cache hit reuses the recorded
			// choice instead of re-running the estimator.
			var rec *explain.Record
			var offload bool
			if e.Advisor != nil {
				if _, hasUDF := e.DB.UDF("regexp_fpga"); hasUDF {
					if p.hit && p.entry.advised {
						rec = p.entry.rec.Clone()
						offload = p.entry.offload
					} else {
						rec, offload = e.adviseRecord(pat, tbl.Rows(), avgStringLen(tbl, ref.Column))
						p.entry.advised = true
						p.entry.offload = offload
						if rec != nil {
							p.entry.rec = rec.Clone()
						}
					}
				}
			}
			if offload {
				placement := "fpga"
				if rec != nil && rec.Chosen != "" {
					placement = rec.Chosen
				}
				var op *plan.FPGARegexScan
				op = plan.NewFPGARegexScan(detail, placement, func(ctx context.Context) (plan.ScanOut, error) {
					out, err := e.DB.CallUDF(explain.WithRecord(ctx, rec),
						"regexp_fpga", tbl, ref.Column, pat)
					if err != nil {
						return plan.ScanOut{}, err
					}
					n := 0
					for i := 0; i < out.Result.Count(); i++ {
						if out.Result.Get(i) != 0 {
							n++
						}
					}
					st.work.Add(out.Work)
					st.udf = out
					st.decision = out.Decision
					if out.Decision != nil && out.Decision.SharedScan {
						op.Info().Shared = true
					}
					return plan.ScanOut{Tally: int64(n), TallyOnly: true}, nil
				})
				st.decision = rec
				p.countPlan(op, "regexp->udf")
				return true, nil
			}
			op := plan.NewSoftRegexFilter(detail, func(ctx context.Context) (plan.ScanOut, error) {
				sel, err := scan(func() (*mdb.Selection, error) {
					return e.DB.SelectRegexp(tbl, ref.Column, pat, false)
				})
				if err != nil {
					return plan.ScanOut{}, err
				}
				if rec != nil {
					// The predicate stayed in software: the realized cost
					// is the scan's own work, priced by the calibrated
					// model.
					if ex, ok := e.Advisor.(Explainer); ok {
						ex.FinishSoftware(rec, sel.Work)
					}
				}
				st.work.Add(sel.Work)
				return plan.ScanOut{Tally: int64(sel.Count()), TallyOnly: true}, nil
			})
			st.decision = rec
			p.countPlan(op, "regexp")
			return true, nil
		case "CONTAINS":
			col, q, err := containsArgs(w, tbl)
			if err != nil {
				return false, err
			}
			op := plan.NewIndexLookup(detail, func(ctx context.Context) (plan.ScanOut, error) {
				sel, err := scan(func() (*mdb.Selection, error) {
					return e.DB.SelectContains(tbl, col, q)
				})
				if err != nil {
					return plan.ScanOut{}, err
				}
				st.work.Add(sel.Work)
				return plan.ScanOut{Tally: int64(sel.Count()), TallyOnly: true}, nil
			})
			p.countPlan(op, "contains")
			return true, nil
		}
		return false, nil
	case *BinaryExpr:
		// REGEXP_FPGA(pattern, col) <> 0 — the HUDF predicate, forced to
		// hardware by construction.
		call, zero := fpgaPredicate(w)
		if call == nil {
			return false, nil
		}
		colExpr, pat, err := regexpFPGAArgs(call)
		if err != nil {
			return false, err
		}
		ref, ok := colExpr.(*ColumnRef)
		if !ok {
			return false, nil
		}
		if _, hasUDF := e.DB.UDF("regexp_fpga"); !hasUDF {
			// No hardware attached: the general evaluator runs the
			// hardware-equivalent automaton row by row.
			return false, nil
		}
		var op *plan.FPGARegexScan
		op = plan.NewFPGARegexScan(detail, "fpga", func(ctx context.Context) (plan.ScanOut, error) {
			out, err := e.DB.CallUDF(ctx, "regexp_fpga", tbl, ref.Column, pat)
			if err != nil {
				return plan.ScanOut{}, err
			}
			n := 0
			for i := 0; i < out.Result.Count(); i++ {
				if out.Result.Get(i) != 0 {
					n++
				}
			}
			if zero { // `= 0`: non-matching rows
				n = out.Result.Count() - n
			}
			st.work.Add(out.Work)
			st.udf = out
			st.decision = out.Decision
			if out.Decision != nil {
				if out.Decision.Chosen == "hybrid" {
					op.Info().Placement = "hybrid"
				}
				if out.Decision.SharedScan {
					op.Info().Shared = true
				}
			}
			return plan.ScanOut{Tally: int64(n), TallyOnly: true}, nil
		})
		p.countPlan(op, "udf")
		return true, nil
	}
	return false, nil
}

// planGeneral compiles the general pipeline: Scan/HashJoin source, Filter,
// GroupAggregate or Project, OrderBy, Limit. One evaluator is shared by the
// filter, projection and aggregation closures so compiled-matcher caches
// and work counters behave exactly like the legacy single-evaluator
// pipeline.
func (e *Engine) planGeneral(p *physical) error {
	stmt, st := p.stmt, p.st
	src, cols, err := e.planFrom(p, stmt.From)
	if err != nil {
		return err
	}
	pipeEv := newEvaluator(&relation{cols: cols})
	st.evs = append(st.evs, pipeEv)
	var cur plan.Operator = src
	p.srcOp = src

	if stmt.Where != nil {
		f := plan.NewFilter(cur, formatExpr(stmt.Where), func(row []any) (bool, error) {
			ok, err := pipeEv.evalBool(stmt.Where, row)
			if err != nil {
				return false, err
			}
			pipeEv.work.Rows++
			return ok, nil
		})
		p.filterOp = f
		cur = f
	}

	agg := len(stmt.GroupBy) > 0 || hasAggregate(stmt.Items)
	var outCols []string
	if agg {
		for i, it := range stmt.Items {
			outCols = append(outCols, colAlias(it, fmt.Sprintf("col%d", i+1)))
		}
		detail := "global"
		if len(stmt.GroupBy) > 0 {
			var keys []string
			for _, g := range stmt.GroupBy {
				keys = append(keys, formatExpr(g))
			}
			detail = "group by " + strings.Join(keys, ", ")
		}
		g := plan.NewGroupAggregate(cur, detail)
		g.Fold = func(rows [][]any) ([][]any, error) {
			res, err := e.aggregate(stmt, &relation{cols: cols, rows: rows}, pipeEv)
			if err != nil {
				return nil, err
			}
			return res.Rows, nil
		}
		p.aggOp, p.aggName = g, "aggregate"
		cur = g
	} else {
		for i, it := range stmt.Items {
			if it.Star {
				for _, c := range cols {
					outCols = append(outCols, c.name)
				}
				continue
			}
			outCols = append(outCols, colAlias(it, fmt.Sprintf("col%d", i+1)))
		}
		pr := plan.NewProject(cur, strings.Join(outCols, ", "))
		pr.Map = func(row []any) ([]any, error) {
			var out []any
			for _, it := range stmt.Items {
				if it.Star {
					out = append(out, row...)
					continue
				}
				v, err := pipeEv.eval(it.Expr, row)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		}
		pr.OnEmpty = func() error {
			// Validate column references even on empty input so that
			// typos fail deterministically.
			nilRow := make([]any, len(cols))
			for _, it := range stmt.Items {
				if it.Star {
					continue
				}
				if _, err := pipeEv.eval(it.Expr, nilRow); err != nil {
					return err
				}
			}
			return nil
		}
		p.aggOp, p.aggName = pr, "project"
		cur = pr
	}

	if len(stmt.OrderBy) > 0 {
		var keys []string
		for _, o := range stmt.OrderBy {
			k := formatExpr(o.Expr)
			if o.Desc {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		ob := plan.NewOrderBy(cur, strings.Join(keys, ", "))
		ob.Sort = func(rows [][]any) ([][]any, error) {
			tmp := &Result{Cols: outCols, Rows: rows}
			if err := orderBy(tmp, stmt.OrderBy); err != nil {
				return nil, err
			}
			return tmp.Rows, nil
		}
		p.orderOp = ob
		cur = ob
	}
	if stmt.Limit >= 0 {
		cur = plan.NewLimit(cur, int64(stmt.Limit))
	}
	p.root = cur
	p.cols = outCols
	return nil
}

// planFrom compiles a table reference into a source operator and its
// plan-time column layout.
func (e *Engine) planFrom(p *physical, ref TableRef) (plan.Operator, []colMeta, error) {
	st := p.st
	switch t := ref.(type) {
	case *BaseTable:
		cols, err := e.fromColMetas(t)
		if err != nil {
			return nil, nil, err
		}
		op := plan.NewScan(strings.ToLower(t.Name), func(ctx context.Context) (plan.ScanOut, error) {
			rel, err := e.materializeBase(t)
			if err != nil {
				return plan.ScanOut{}, err
			}
			return plan.ScanOut{Rows: rel.rows}, nil
		})
		return op, cols, nil
	case *SubqueryTable:
		cols, err := e.fromColMetas(t)
		if err != nil {
			return nil, nil, err
		}
		var op *plan.Scan
		op = plan.NewScan(strings.ToLower(t.Alias)+" (subquery)", func(ctx context.Context) (plan.ScanOut, error) {
			sub, err := e.exec(ctx, t.Query, telemetry.StartSpan("query"))
			if err != nil {
				return plan.ScanOut{}, err
			}
			st.work.Add(sub.Work)
			if st.udf == nil {
				st.udf = sub.UDF
			}
			op.Sub = sub.Plan
			return plan.ScanOut{Rows: sub.Rows}, nil
		})
		return op, cols, nil
	case *JoinTable:
		return e.planJoin(p, t)
	}
	return nil, nil, fmt.Errorf("sql: unsupported table reference %T", ref)
}

// planJoin compiles a hash join. The ON tree is normalized before conjunct
// splitting, so nested or negated conjunctions still surface their
// equi-key and their pushable right-side residuals.
func (e *Engine) planJoin(p *physical, j *JoinTable) (plan.Operator, []colMeta, error) {
	st := p.st
	leftOp, leftCols, err := e.planFrom(p, j.Left)
	if err != nil {
		return nil, nil, err
	}
	rightOp, rightCols, err := e.planFrom(p, j.Right)
	if err != nil {
		return nil, nil, err
	}
	leftRel := &relation{cols: leftCols}
	rightRel := &relation{cols: rightCols}
	outCols := append(append([]colMeta{}, leftCols...), rightCols...)
	outRel := &relation{cols: outCols}

	conjuncts := splitConjuncts(normalizePredicate(j.On))
	lk, rk, residual, err := findEquiKey(leftRel, rightRel, conjuncts)
	if err != nil {
		return nil, nil, err
	}
	// Push residual predicates that only touch the build (right) side
	// below the hash table — the Q13 NOT LIKE case. Mixed residuals
	// evaluate per joined pair.
	var rightOnly, mixed []Expr
	for _, c := range residual {
		if exprUsesOnly(c, rightRel) {
			rightOnly = append(rightOnly, c)
		} else {
			mixed = append(mixed, c)
		}
	}
	rightEval := newEvaluator(rightRel)
	pairEval := newEvaluator(outRel)
	st.evs = append(st.evs, rightEval, pairEval)

	detail := metaName(leftCols[lk]) + " = " + metaName(rightCols[rk])
	if j.LeftOuter {
		detail = "left outer " + detail
	}
	op := plan.NewHashJoin(leftOp, rightOp, detail)
	op.LeftKey = func(row []any) (any, error) { return row[lk], nil }
	op.RightKey = func(row []any) (any, error) { return row[rk], nil }
	op.RightWidth = len(rightCols)
	op.LeftOuter = j.LeftOuter
	if len(rightOnly) > 0 {
		op.RightPre = func(row []any) (bool, error) {
			for _, c := range rightOnly {
				v, err := rightEval.evalBool(c, row)
				if err != nil || !v {
					return false, err
				}
			}
			return true, nil
		}
	}
	if len(mixed) > 0 {
		op.Pair = func(pair []any) (bool, error) {
			for _, c := range mixed {
				v, err := pairEval.evalBool(c, pair)
				if err != nil || !v {
					return false, err
				}
			}
			return true, nil
		}
	}
	op.Account = func(l, r int) { st.work.Rows += l + r }
	return op, outCols, nil
}

// normalizePredicate rewrites the boolean skeleton of a predicate into
// conjunction-friendly form before conjunct splitting: double negations
// drop and De Morgan pushes NOT through AND/OR, so a parenthesized or
// negated conjunction still yields its individual conjuncts for pushdown
// and equi-key extraction. Only rewrites that are exact under the
// evaluator's two-valued semantics (NULL collapses to false) are applied;
// leaves are returned by identity so compiled-matcher caches keyed on AST
// nodes keep working.
func normalizePredicate(e Expr) Expr {
	switch x := e.(type) {
	case *NotExpr:
		sub := normalizePredicate(x.Sub)
		switch s := sub.(type) {
		case *NotExpr:
			return s.Sub
		case *BinaryExpr:
			switch s.Op {
			case "AND":
				return &BinaryExpr{Op: "OR",
					Left:  normalizePredicate(&NotExpr{Sub: s.Left}),
					Right: normalizePredicate(&NotExpr{Sub: s.Right})}
			case "OR":
				return &BinaryExpr{Op: "AND",
					Left:  normalizePredicate(&NotExpr{Sub: s.Left}),
					Right: normalizePredicate(&NotExpr{Sub: s.Right})}
			}
		}
		return &NotExpr{Sub: sub}
	case *BinaryExpr:
		if x.Op == "AND" || x.Op == "OR" {
			return &BinaryExpr{Op: x.Op,
				Left:  normalizePredicate(x.Left),
				Right: normalizePredicate(x.Right)}
		}
	}
	return e
}

// outputColNames computes a statement's output column names without
// executing it — the plan-time view of what the legacy project/aggregate
// stages would emit.
func (e *Engine) outputColNames(stmt *SelectStmt) ([]string, error) {
	agg := len(stmt.GroupBy) > 0 || hasAggregate(stmt.Items)
	var out []string
	for i, it := range stmt.Items {
		if it.Star && !agg {
			metas, err := e.fromColMetas(stmt.From)
			if err != nil {
				return nil, err
			}
			for _, m := range metas {
				out = append(out, m.name)
			}
			continue
		}
		out = append(out, colAlias(it, fmt.Sprintf("col%d", i+1)))
	}
	return out, nil
}

// fromColMetas computes a table reference's column layout statically.
func (e *Engine) fromColMetas(ref TableRef) ([]colMeta, error) {
	switch t := ref.(type) {
	case *BaseTable:
		tbl, err := e.DB.Table(t.Name)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = strings.ToLower(t.Name)
		}
		var cols []colMeta
		for _, c := range tbl.Columns() {
			cols = append(cols, colMeta{table: alias, name: strings.ToLower(c.Name)})
		}
		return cols, nil
	case *SubqueryTable:
		names, err := e.outputColNames(t.Query)
		if err != nil {
			return nil, err
		}
		if len(t.Columns) > 0 {
			if len(t.Columns) != len(names) {
				return nil, fmt.Errorf(
					"sql: derived table %s has %d column aliases for %d columns",
					t.Alias, len(t.Columns), len(names))
			}
			names = t.Columns
		}
		var cols []colMeta
		for _, n := range names {
			cols = append(cols, colMeta{
				table: strings.ToLower(t.Alias),
				name:  strings.ToLower(n),
			})
		}
		return cols, nil
	case *JoinTable:
		l, err := e.fromColMetas(t.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.fromColMetas(t.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	return nil, fmt.Errorf("sql: unsupported table reference %T", ref)
}

func metaName(m colMeta) string {
	if m.table != "" {
		return m.table + "." + m.name
	}
	return m.name
}
