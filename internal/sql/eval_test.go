package sql

import (
	"testing"

	"doppiodb/internal/mdb"
)

// evalEngine builds a small mixed-type table for expression tests.
func evalEngine(t *testing.T) *Engine {
	t.Helper()
	db := mdb.New(nil)
	tbl, err := db.CreateTable("t",
		mdb.ColSpec{Name: "id", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "name", Kind: mdb.KindString},
		mdb.ColSpec{Name: "n", Kind: mdb.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id   int
		name string
		n    int
	}{
		{1, "alpha", 10},
		{2, "beta", 20},
		{3, "gamma", 30},
		{4, "Straße 80123", 40},
		{5, "Strasse 80123", 50},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.name, r.n); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(db)
}

func ids(t *testing.T, e *Engine, q string) []int64 {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	var out []int64
	for _, row := range res.Rows {
		out = append(out, row[0].(int64))
	}
	return out
}

func eqInts(a []int64, b ...int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWhereOperators(t *testing.T) {
	e := evalEngine(t)
	cases := []struct {
		q    string
		want []int64
	}{
		{`SELECT id FROM t WHERE n > 20 AND n < 50 ORDER BY id`, []int64{3, 4}},
		{`SELECT id FROM t WHERE n >= 40 OR id = 1 ORDER BY id`, []int64{1, 4, 5}},
		{`SELECT id FROM t WHERE NOT (n <= 30) ORDER BY id`, []int64{4, 5}},
		{`SELECT id FROM t WHERE n <> 10 AND n != 20 AND n < 40 ORDER BY id`, []int64{3}},
		{`SELECT id FROM t WHERE name = 'beta'`, []int64{2}},
		{`SELECT id FROM t WHERE name > 'b' AND name < 'c' ORDER BY id`, []int64{2}},
		{`SELECT id FROM t WHERE t.n = 30`, []int64{3}},
		{`SELECT id FROM t WHERE name LIKE '%80123' ORDER BY id`, []int64{4, 5}},
		// ß is two UTF-8 bytes; the byte-wise dialect matches them as a
		// two-byte literal sequence, so both spellings hit.
		{`SELECT id FROM t WHERE REGEXP_LIKE(name, 'Stra(ss|ß)e') ORDER BY id`, []int64{4, 5}},
		{`SELECT id FROM t WHERE REGEXP_LIKE(name, 'Strasse.*8[0-9]{4}')`, []int64{5}},
		{`SELECT id FROM t WHERE REGEXP_FPGA('gamma', name) <> 0`, []int64{3}},
		{`SELECT id FROM t WHERE name IS NOT NULL AND n IS NULL`, nil},
		{`SELECT id FROM t WHERE (id = 1 OR id = 2) AND NOT id = 2`, []int64{1}},
	}
	for _, c := range cases {
		got := ids(t, e, c.q)
		if !eqInts(got, c.want...) {
			t.Errorf("%s: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSQLComments(t *testing.T) {
	e := evalEngine(t)
	got := ids(t, e, `SELECT id FROM t -- trailing comment
		WHERE id = 3 -- another
	`)
	if !eqInts(got, 3) {
		t.Errorf("comments broke parsing: %v", got)
	}
}

func TestEscapedQuotesInLiterals(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "id", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "s", Kind: mdb.KindString})
	tbl.AppendRow(1, "it's")
	tbl.AppendRow(2, "its")
	e := NewEngine(db)
	got := ids(t, e, `SELECT id FROM t WHERE s = 'it''s'`)
	if !eqInts(got, 1) {
		t.Errorf("quote escape: %v", got)
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	e := evalEngine(t)
	bad := []string{
		`SELECT id FROM t WHERE n = 'x'`,
		`SELECT id FROM t WHERE name < 5`,
		`SELECT id FROM t WHERE name AND n`,
		`SELECT id FROM t WHERE nosuchfunc(n) = 1`,
		`SELECT id FROM t WHERE n LIKE '%x%'`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%s: accepted", q)
		}
	}
}

func TestContainsTwoArgForm(t *testing.T) {
	e := evalEngine(t)
	res, err := e.Query(`SELECT count(*) FROM t WHERE CONTAINS(name, 'Strasse & 80123')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 1 {
		t.Errorf("CONTAINS(col, q) = %v", res.Rows[0][0])
	}
	if res.FastPath != "contains" {
		t.Errorf("path %q", res.FastPath)
	}
}

func TestFPGAPredicateVariants(t *testing.T) {
	// The predicate matcher accepts the literal on either side and both
	// comparison directions.
	e := evalEngine(t)
	for _, q := range []string{
		`SELECT count(*) FROM t WHERE REGEXP_FPGA('beta', name) <> 0`,
		`SELECT count(*) FROM t WHERE 0 <> REGEXP_FPGA('beta', name)`,
		`SELECT count(*) FROM t WHERE REGEXP_FPGA(name, 'beta') <> 0`,
	} {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if res.Rows[0][0].(int64) != 1 {
			t.Errorf("%s = %v", q, res.Rows[0][0])
		}
	}
}

func TestQualifiedAndAliasedTables(t *testing.T) {
	e := evalEngine(t)
	got := ids(t, e, `SELECT x.id FROM t AS x WHERE x.n = 20`)
	if !eqInts(got, 2) {
		t.Errorf("alias: %v", got)
	}
	got = ids(t, e, `SELECT x.id FROM t x WHERE x.n = 20`)
	if !eqInts(got, 2) {
		t.Errorf("bare alias: %v", got)
	}
	if _, err := e.Query(`SELECT y.id FROM t AS x WHERE x.n = 20`); err == nil {
		t.Error("wrong qualifier accepted")
	}
}

func TestGroupByStringKey(t *testing.T) {
	db := mdb.New(nil)
	tbl, _ := db.CreateTable("t",
		mdb.ColSpec{Name: "city", Kind: mdb.KindString},
		mdb.ColSpec{Name: "v", Kind: mdb.KindInt})
	for _, r := range []struct {
		c string
		v int
	}{{"a b", 1}, {"a", 2}, {"a b", 3}} {
		tbl.AppendRow(r.c, r.v)
	}
	e := NewEngine(db)
	res, err := e.Query(`SELECT city, sum(v) AS s FROM t GROUP BY city ORDER BY s DESC`)
	if err != nil {
		t.Fatal(err)
	}
	// Keys "a b" (sum 4) and "a" (sum 2) must not collide.
	if len(res.Rows) != 2 || res.Rows[0][1].(int64) != 4 || res.Rows[1][1].(int64) != 2 {
		t.Errorf("string group keys: %v", res.Rows)
	}
}

func TestSubqueryColumnAliasMismatch(t *testing.T) {
	e := evalEngine(t)
	if _, err := e.Query(`SELECT a FROM (SELECT id, n FROM t) AS s (a)`); err == nil {
		t.Error("alias arity mismatch accepted")
	}
	res, err := e.Query(`SELECT a, b FROM (SELECT id, n FROM t) AS s (a, b) WHERE a = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) != 20 {
		t.Errorf("derived aliases: %v", res.Rows)
	}
}

func TestJoinRequiresEquality(t *testing.T) {
	e := evalEngine(t)
	if _, err := e.Query(`SELECT t.id FROM t JOIN t AS u ON t.n > u.n`); err == nil {
		t.Error("join without equality accepted")
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	e := evalEngine(t)
	res, err := e.Query(
		`SELECT a.id, b.id FROM t AS a JOIN t AS b ON a.n = b.n WHERE a.id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].(int64) != 3 {
		t.Errorf("self join: %v", res.Rows)
	}
}

func TestArithmeticExpressions(t *testing.T) {
	e := evalEngine(t)
	res, err := e.Query(`SELECT id, n * 2 + 1 AS x, n / 10 - id AS y FROM t WHERE id <= 2 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	// id=1: n=10 -> x=21, y=0; id=2: n=20 -> x=41, y=0
	if res.Rows[0][1].(int64) != 21 || res.Rows[1][1].(int64) != 41 {
		t.Errorf("arithmetic: %v", res.Rows)
	}
	if res.Rows[0][2].(int64) != 0 || res.Rows[1][2].(int64) != 0 {
		t.Errorf("precedence: %v", res.Rows)
	}
	// Precedence: 2+3*4 = 14, (2+3)*4 = 20; unary minus.
	res, err = e.Query(`SELECT 2 + 3 * 4 AS a, (2 + 3) * 4 AS b, -5 + n AS c FROM t WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].(int64) != 14 || row[1].(int64) != 20 || row[2].(int64) != 5 {
		t.Errorf("precedence/unary: %v", row)
	}
	// In predicates.
	got := ids(t, e, `SELECT id FROM t WHERE n - id * 10 = 0 ORDER BY id`)
	if len(got) == 0 {
		t.Errorf("arithmetic predicate: %v", got)
	}
	// Errors.
	if _, err := e.Query(`SELECT n / 0 FROM t`); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := e.Query(`SELECT name + 1 FROM t`); err == nil {
		t.Error("string arithmetic accepted")
	}
	// Arithmetic in aggregates and GROUP BY.
	res, err = e.Query(`SELECT sum(n * 2) AS s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 300 {
		t.Errorf("sum of expression: %v", res.Rows[0][0])
	}
}
