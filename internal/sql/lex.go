// Package sql is the SQL front end over the column store: a lexer, a
// recursive-descent parser and a materializing executor covering the
// queries of the paper's evaluation — single-table predicate scans with
// LIKE / ILIKE / REGEXP_LIKE / CONTAINS / REGEXP_FPGA (§4.1, §7.1.1) and
// TPC-H Query 13's derived-table LEFT OUTER JOIN / GROUP BY / ORDER BY
// pipeline (§7.7).
//
// Predicate scans over a single table use the column engine's operators
// directly (MonetDB's BAT-algebra style, no row materialization); anything
// else is executed over materialized relations.
package sql

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkString
	tkNumber
	tkSymbol // ( ) , . * and operators
)

type tok struct {
	kind tokKind
	text string // keywords upper-cased; idents as written
	pos  int
}

// keywords recognized by the parser.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"LIKE": true, "ILIKE": true, "COUNT": true, "JOIN": true, "LEFT": true,
	"OUTER": true, "INNER": true, "ON": true, "DESC": true, "ASC": true,
	"NULL": true, "IS": true, "LIMIT": true, "DISTINCT": true,
	"HAVING": true, "EXPLAIN": true, "ANALYZE": true,
}

// Error is a SQL front-end error with a byte offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s at offset %d", e.Msg, e.Pos)
}

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the statement.
func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, tok{tkKeyword, up, start})
			} else {
				out = append(out, tok{tkIdent, word, start})
			}
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			out = append(out, tok{tkNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string literal")
			}
			out = append(out, tok{tkString, sb.String(), start})
		case strings.IndexByte("(),.*;+/", c) >= 0:
			out = append(out, tok{tkSymbol, string(c), i})
			i++
		case c == '-':
			// '--' comments are handled above; a single '-' is the
			// arithmetic operator.
			out = append(out, tok{tkSymbol, "-", i})
			i++
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '>' || src[i+1] == '=') {
				out = append(out, tok{tkSymbol, src[i : i+2], i})
				i += 2
			} else {
				out = append(out, tok{tkSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tkSymbol, ">=", i})
				i += 2
			} else {
				out = append(out, tok{tkSymbol, ">", i})
				i++
			}
		case c == '=':
			out = append(out, tok{tkSymbol, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tkSymbol, "<>", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!'")
			}
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	out = append(out, tok{tkEOF, "", len(src)})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
