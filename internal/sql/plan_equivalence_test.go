package sql

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/mdb"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/workload"
)

// The old-vs-new equivalence sweep: every paper query shape runs through
// both the retained pre-operator reference executor (legacy.go) and the
// physical-plan path, asserting bit-identical results and work accounting.
// Advisor-backed queries additionally compare the EXPLAIN decision's cost
// terms across two systems kept in lockstep.

// runLegacy parses and executes q on the reference inline executor.
func runLegacy(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%s): %v", q, err)
	}
	res, err := e.execLegacy(context.Background(), stmt, telemetry.StartSpan("query"))
	if err != nil {
		t.Fatalf("execLegacy(%s): %v", q, err)
	}
	return res
}

func assertEquivalent(t *testing.T, q string, legacy, modern *Result) {
	t.Helper()
	if !reflect.DeepEqual(legacy.Cols, modern.Cols) {
		t.Errorf("%s:\ncols legacy %v != new %v", q, legacy.Cols, modern.Cols)
	}
	if !reflect.DeepEqual(legacy.Rows, modern.Rows) {
		t.Errorf("%s:\nrows diverge\nlegacy: %v\nnew:    %v", q, legacy.Rows, modern.Rows)
	}
	if legacy.Work != modern.Work {
		t.Errorf("%s:\nwork legacy %+v != new %+v", q, legacy.Work, modern.Work)
	}
	if legacy.FastPath != modern.FastPath {
		t.Errorf("%s: fast path legacy %q != new %q", q, legacy.FastPath, modern.FastPath)
	}
}

func TestPlanEquivalenceSweepSoftware(t *testing.T) {
	for _, seed := range []int64{7, 21, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			db := mdb.New(nil)
			rows, _ := workload.NewGenerator(seed, 64).Table(4_000, workload.HitTable1, 0.2)
			if _, err := db.LoadAddressTable("address_table", rows); err != nil {
				t.Fatal(err)
			}
			e := NewEngine(db)
			queries := []string{
				`SELECT count(*) FROM address_table WHERE address_string LIKE '%Alan%'`,
				`SELECT count(*) FROM address_table WHERE address_string NOT LIKE '%Alan%'`,
				`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, 'Alan.*Turing')`,
				`SELECT count(*) FROM address_table WHERE CONTAINS('Alan & Turing & Cheshire')`,
				`SELECT address_string FROM address_table WHERE address_string LIKE '%Turing%' ORDER BY address_string`,
				`SELECT address_string FROM address_table WHERE address_string LIKE '%Turing%' ORDER BY address_string DESC LIMIT 5`,
				`SELECT count(*) AS n, min(address_string) AS lo FROM address_table WHERE address_string LIKE '%e%' GROUP BY address_string HAVING n > 0 ORDER BY lo LIMIT 10`,
			}
			for _, q := range queries {
				legacy := runLegacy(t, e, q)
				modern, err := e.Query(q)
				if err != nil {
					t.Fatalf("Query(%s): %v", q, err)
				}
				assertEquivalent(t, q, legacy, modern)
			}
		})
	}
}

func TestPlanEquivalenceSweepTPCHQ13(t *testing.T) {
	for _, seed := range []int64{7, 21, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tp := workload.GenerateTPCH(seed, 0.01, 0.01)
			e := NewEngine(mdb.New(nil))
			loadTPCH(t, e, tp)
			legacy := runLegacy(t, e, tpchQ13SQL)
			modern, err := e.Query(tpchQ13SQL)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, "Q13", legacy, modern)
		})
	}
}

func TestPlanEquivalenceSweepHardware(t *testing.T) {
	// Two fresh systems stay in lockstep: the same query sequence runs on
	// each, so the simulated HAL state (queue depth, epoch) is identical
	// and the EXPLAIN actuals must agree term for term.
	newSys := func(t *testing.T, seed int64) *Engine {
		t.Helper()
		s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		rows, _ := workload.NewGenerator(seed, 64).Table(10_000, workload.HitQ2, 0.2)
		if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
			t.Fatal(err)
		}
		e := NewEngine(s.DB)
		e.Advisor = s
		return e
	}
	queries := []string{
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`,
		`SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, 'Strasse')`,
		`SELECT count(*) FROM address_table WHERE REGEXP_FPGA('[0-9]+(USD|EUR|GBP)', address_string) <> 0`,
	}
	for _, seed := range []int64{7, 21, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eLegacy := newSys(t, seed)
			eNew := newSys(t, seed)
			for _, q := range queries {
				legacy := runLegacy(t, eLegacy, q)
				modern, err := eNew.Query(q)
				if err != nil {
					t.Fatalf("Query(%s): %v", q, err)
				}
				assertEquivalent(t, q, legacy, modern)
				ld, md := legacy.Decision, modern.Decision
				if (ld == nil) != (md == nil) {
					t.Fatalf("%s: decision presence legacy %v != new %v", q, ld != nil, md != nil)
				}
				if ld == nil {
					continue
				}
				if ld.Chosen != md.Chosen {
					t.Errorf("%s: chosen legacy %q != new %q", q, ld.Chosen, md.Chosen)
				}
				if (ld.Actual == nil) != (md.Actual == nil) {
					t.Fatalf("%s: actuals presence diverges", q)
				}
				if ld.Actual != nil && *ld.Actual != *md.Actual {
					t.Errorf("%s:\nactual cost terms diverge\nlegacy: %+v\nnew:    %+v",
						q, *ld.Actual, *md.Actual)
				}
			}
		})
	}
}

func TestNormalizedJoinPredicatePushdown(t *testing.T) {
	// The satellite fix: a nested/negated conjunction in the ON clause is
	// normalized (double-NOT elimination, De Morgan) before conjunct
	// splitting, so the equi-key and the pushable right-side residual
	// still surface. The legacy executor, which splits the raw tree,
	// cannot find the equality and errors out.
	db := mdb.New(nil)
	l, _ := db.CreateTable("l", mdb.ColSpec{Name: "k", Kind: mdb.KindInt})
	r, _ := db.CreateTable("r",
		mdb.ColSpec{Name: "rk", Kind: mdb.KindInt},
		mdb.ColSpec{Name: "val", Kind: mdb.KindString})
	for i := 0; i < 4; i++ {
		l.AppendRow(i)
	}
	r.AppendRow(1, "one")
	r.AppendRow(2, "xxx")
	r.AppendRow(3, "three")
	e := NewEngine(db)

	queries := []string{
		// Double negation around the whole conjunction.
		`SELECT k, count(val) AS n FROM l LEFT OUTER JOIN r ON NOT NOT (k = rk AND val NOT LIKE '%x%') GROUP BY k ORDER BY k`,
		// De Morgan: NOT (NOT a OR NOT b) == a AND b.
		`SELECT k, count(val) AS n FROM l LEFT OUTER JOIN r ON NOT (NOT (k = rk) OR NOT (val NOT LIKE '%x%')) GROUP BY k ORDER BY k`,
	}
	wantN := map[int64]int64{0: 0, 1: 1, 2: 0, 3: 1}
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
		if len(res.Rows) != 4 {
			t.Fatalf("%s: rows %v", q, res.Rows)
		}
		for _, row := range res.Rows {
			if wantN[row[0].(int64)] != row[1].(int64) {
				t.Errorf("%s: k=%v n=%v, want %v", q, row[0], row[1], wantN[row[0].(int64)])
			}
		}
		// The reference executor splits the raw tree and finds no equi-key.
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.execLegacy(context.Background(), stmt, telemetry.StartSpan("query")); err == nil {
			t.Errorf("legacy executor unexpectedly handled %s", q)
		}
	}
}

func TestNormalizePredicateRewrites(t *testing.T) {
	a := &BinaryExpr{Op: "=", Left: &ColumnRef{Column: "a"}, Right: &ColumnRef{Column: "b"}}
	like := &LikeExpr{Operand: &ColumnRef{Column: "c"}, Pattern: "%x%", Negated: true}
	cases := []struct {
		in   Expr
		want string
	}{
		{&NotExpr{Sub: &NotExpr{Sub: a}}, "(a = b)"},
		{
			&NotExpr{Sub: &BinaryExpr{Op: "OR",
				Left:  &NotExpr{Sub: a},
				Right: &NotExpr{Sub: like}}},
			"((a = b) AND (c NOT LIKE '%x%'))",
		},
		{
			&NotExpr{Sub: &BinaryExpr{Op: "AND", Left: a, Right: like}},
			"((NOT (a = b)) OR (NOT (c NOT LIKE '%x%')))",
		},
	}
	for _, c := range cases {
		if got := formatExpr(normalizePredicate(c.in)); got != c.want {
			t.Errorf("normalize(%s) = %s, want %s", formatExpr(c.in), got, c.want)
		}
	}
	// Leaves pass through by identity so compiled-matcher caches keyed on
	// AST nodes keep working.
	if normalizePredicate(like) != Expr(like) {
		t.Error("leaf not returned by identity")
	}
}
