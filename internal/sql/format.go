package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// formatStmt renders a parsed statement into a canonical normalized form —
// the plan cache's key material. Two statements that parse to the same AST
// format identically regardless of the whitespace, casing, or redundant
// parentheses of their source text.
func formatStmt(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
		} else {
			b.WriteString(formatExpr(it.Expr))
		}
		if it.Alias != "" {
			b.WriteString(" AS " + strings.ToLower(it.Alias))
		}
	}
	b.WriteString(" FROM " + formatTableRef(s.From))
	if s.Where != nil {
		b.WriteString(" WHERE " + formatExpr(s.Where))
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatExpr(g))
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + formatExpr(s.Having))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(formatExpr(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return b.String()
}

func formatTableRef(r TableRef) string {
	switch t := r.(type) {
	case *BaseTable:
		out := strings.ToLower(t.Name)
		if t.Alias != "" {
			out += " AS " + strings.ToLower(t.Alias)
		}
		return out
	case *SubqueryTable:
		out := "(" + formatStmt(t.Query) + ") AS " + strings.ToLower(t.Alias)
		if len(t.Columns) > 0 {
			cols := make([]string, len(t.Columns))
			for i, c := range t.Columns {
				cols[i] = strings.ToLower(c)
			}
			out += " (" + strings.Join(cols, ", ") + ")"
		}
		return out
	case *JoinTable:
		kind := " JOIN "
		if t.LeftOuter {
			kind = " LEFT OUTER JOIN "
		}
		return formatTableRef(t.Left) + kind + formatTableRef(t.Right) +
			" ON " + formatExpr(t.On)
	}
	return fmt.Sprintf("<%T>", r)
}

func formatExpr(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		return strings.ToLower(refString(x))
	case *StringLit:
		return "'" + strings.ReplaceAll(x.Val, "'", "''") + "'"
	case *IntLit:
		return strconv.FormatInt(x.Val, 10)
	case *NullLit:
		return "NULL"
	case *BinaryExpr:
		return "(" + formatExpr(x.Left) + " " + x.Op + " " + formatExpr(x.Right) + ")"
	case *NotExpr:
		return "(NOT " + formatExpr(x.Sub) + ")"
	case *LikeExpr:
		op := "LIKE"
		if x.Fold {
			op = "ILIKE"
		}
		if x.Negated {
			op = "NOT " + op
		}
		return "(" + formatExpr(x.Operand) + " " + op + " '" +
			strings.ReplaceAll(x.Pattern, "'", "''") + "')"
	case *IsNullExpr:
		op := " IS NULL"
		if x.Negated {
			op = " IS NOT NULL"
		}
		return "(" + formatExpr(x.Operand) + op + ")"
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = formatExpr(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	}
	return fmt.Sprintf("<%T>", e)
}
