package sql

// SelectStmt is a parsed SELECT, optionally prefixed with EXPLAIN
// [ANALYZE]: Explain asks for the placement decision record instead of the
// query's rows; Analyze additionally executes the query so the record
// carries actual figures and per-term prediction error.
type SelectStmt struct {
	Explain bool
	Analyze bool
	Items   []SelectItem
	From    TableRef
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1: none
}

// SelectItem is one projection.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS name
	Star  bool   // bare `*`
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM element.
type TableRef interface{ tableRef() }

// BaseTable references a stored table.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryTable is a derived table: (SELECT ...) AS alias (col, ...).
type SubqueryTable struct {
	Query   *SelectStmt
	Alias   string
	Columns []string // optional column alias list
}

// JoinTable is `left [LEFT OUTER] JOIN right ON cond`.
type JoinTable struct {
	Left, Right TableRef
	LeftOuter   bool
	On          Expr
}

func (*BaseTable) tableRef()     {}
func (*SubqueryTable) tableRef() {}
func (*JoinTable) tableRef()     {}

// Expr is an expression node.
type Expr interface{ expr() }

// ColumnRef is a (possibly qualified) column reference.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

// StringLit is a string literal.
type StringLit struct{ Val string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// NullLit is NULL.
type NullLit struct{}

// BinaryExpr covers AND, OR and comparisons (=, <>, <, <=, >, >=).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// NotExpr is NOT sub.
type NotExpr struct{ Sub Expr }

// LikeExpr is `col [NOT] LIKE/ILIKE 'pattern'`.
type LikeExpr struct {
	Operand Expr
	Pattern string
	Fold    bool // ILIKE
	Negated bool
}

// FuncCall is a function invocation (REGEXP_LIKE, CONTAINS, REGEXP_FPGA,
// COUNT).
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Operand Expr
	Negated bool
}

func (*ColumnRef) expr()  {}
func (*StringLit) expr()  {}
func (*IntLit) expr()     {}
func (*NullLit) expr()    {}
func (*BinaryExpr) expr() {}
func (*NotExpr) expr()    {}
func (*LikeExpr) expr()   {}
func (*FuncCall) expr()   {}
func (*IsNullExpr) expr() {}
