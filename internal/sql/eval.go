package sql

import (
	"fmt"
	"strings"

	"doppiodb/internal/perf"
	"doppiodb/internal/softregex"
	"doppiodb/internal/strmatch"
	"doppiodb/internal/token"
)

// colMeta names one column of a materialized relation.
type colMeta struct {
	table string // alias or table name, lower-cased
	name  string // column name, lower-cased
}

// relation is a materialized row set.
type relation struct {
	cols []colMeta
	rows [][]any // values: int64 | string | nil
}

func (r *relation) resolve(ref *ColumnRef) (int, error) {
	t := strings.ToLower(ref.Table)
	c := strings.ToLower(ref.Column)
	found := -1
	for i, m := range r.cols {
		if m.name != c {
			continue
		}
		if t != "" && m.table != t {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", ref.Column)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", refString(ref))
	}
	return found, nil
}

func refString(ref *ColumnRef) string {
	if ref.Table != "" {
		return ref.Table + "." + ref.Column
	}
	return ref.Column
}

// evaluator evaluates expressions over relation rows, caching compiled
// pattern matchers per AST node.
type evaluator struct {
	rel  *relation
	like map[*LikeExpr]*strmatch.LikePattern
	re   map[*FuncCall]*softregex.Backtracker
	hw   map[*FuncCall]*token.Program
	work perf.Work
}

func newEvaluator(rel *relation) *evaluator {
	return &evaluator{
		rel:  rel,
		like: make(map[*LikeExpr]*strmatch.LikePattern),
		re:   make(map[*FuncCall]*softregex.Backtracker),
		hw:   make(map[*FuncCall]*token.Program),
	}
}

// eval computes the value of e on row; aggregates are rejected here (they
// are handled by the grouping stage).
func (ev *evaluator) eval(e Expr, row []any) (any, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *StringLit:
		return x.Val, nil
	case *NullLit:
		return nil, nil
	case *ColumnRef:
		i, err := ev.rel.resolve(x)
		if err != nil {
			return nil, err
		}
		return row[i], nil
	case *BinaryExpr:
		return ev.evalBinary(x, row)
	case *NotExpr:
		v, err := ev.evalBool(x.Sub, row)
		if err != nil {
			return nil, err
		}
		return !v, nil
	case *IsNullExpr:
		v, err := ev.eval(x.Operand, row)
		if err != nil {
			return nil, err
		}
		isNull := v == nil
		if x.Negated {
			return !isNull, nil
		}
		return isNull, nil
	case *LikeExpr:
		return ev.evalLike(x, row)
	case *FuncCall:
		return ev.evalCall(x, row)
	}
	return nil, fmt.Errorf("sql: cannot evaluate %T", e)
}

// evalBool coerces to boolean (nil → false).
func (ev *evaluator) evalBool(e Expr, row []any) (bool, error) {
	v, err := ev.eval(e, row)
	if err != nil {
		return false, err
	}
	switch b := v.(type) {
	case bool:
		return b, nil
	case nil:
		return false, nil
	case int64:
		return b != 0, nil
	}
	return false, fmt.Errorf("sql: non-boolean predicate value %T", v)
}

func (ev *evaluator) evalBinary(x *BinaryExpr, row []any) (any, error) {
	switch x.Op {
	case "AND":
		l, err := ev.evalBool(x.Left, row)
		if err != nil || !l {
			return false, err
		}
		return ev.evalBool(x.Right, row)
	case "OR":
		l, err := ev.evalBool(x.Left, row)
		if err != nil || l {
			return l, err
		}
		return ev.evalBool(x.Right, row)
	}
	l, err := ev.eval(x.Left, row)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.Right, row)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/":
		if l == nil || r == nil {
			return nil, nil // arithmetic over NULL is NULL
		}
		li, ok1 := l.(int64)
		ri, ok2 := r.(int64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: arithmetic over %T and %T", l, r)
		}
		switch x.Op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		default:
			if ri == 0 {
				return nil, fmt.Errorf("sql: division by zero")
			}
			return li / ri, nil
		}
	}
	if l == nil || r == nil {
		return false, nil // SQL UNKNOWN collapsed to false
	}
	cmp, err := compare(l, r)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
}

func compare(a, b any) (int, error) {
	switch av := a.(type) {
	case int64:
		bv, ok := b.(int64)
		if !ok {
			return 0, fmt.Errorf("sql: comparing int with %T", b)
		}
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	case string:
		bv, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("sql: comparing string with %T", b)
		}
		return strings.Compare(av, bv), nil
	case bool:
		bv, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("sql: comparing bool with %T", b)
		}
		ai, bi := 0, 0
		if av {
			ai = 1
		}
		if bv {
			bi = 1
		}
		return ai - bi, nil
	}
	return 0, fmt.Errorf("sql: cannot compare %T", a)
}

func (ev *evaluator) evalLike(x *LikeExpr, row []any) (any, error) {
	p, ok := ev.like[x]
	if !ok {
		var err error
		p, err = strmatch.CompileLike(x.Pattern, x.Fold)
		if err != nil {
			return nil, err
		}
		ev.like[x] = p
	}
	v, err := ev.eval(x.Operand, row)
	if err != nil {
		return nil, err
	}
	s, ok := v.(string)
	if !ok {
		if v == nil {
			return false, nil
		}
		return nil, fmt.Errorf("sql: LIKE over %T", v)
	}
	ev.work.Comparisons += uint64(len(s)/3 + 8*p.Segments())
	ev.work.Bytes += uint64(len(s))
	m := p.MatchString(s)
	if x.Negated {
		return !m, nil
	}
	return m, nil
}

func (ev *evaluator) evalCall(x *FuncCall, row []any) (any, error) {
	switch x.Name {
	case "REGEXP_LIKE":
		col, pat, err := regexpArgs(x)
		if err != nil {
			return nil, err
		}
		bt, ok := ev.re[x]
		if !ok {
			bt, err = softregex.NewBacktracker(pat, false)
			if err != nil {
				return nil, err
			}
			ev.re[x] = bt
		}
		v, err := ev.eval(col, row)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return false, nil
		}
		pos, steps := bt.MatchString(s)
		ev.work.Steps += steps
		ev.work.RegexRows++
		ev.work.Bytes += uint64(len(s))
		return pos != 0, nil
	case "REGEXP_FPGA":
		// Row-at-a-time fallback (the BAT-level fast path is in
		// exec.go): evaluate with the hardware-equivalent token
		// automaton and return the match index as the UDF would.
		col, pat, err := regexpFPGAArgs(x)
		if err != nil {
			return nil, err
		}
		prog, ok := ev.hw[x]
		if !ok {
			prog, err = token.CompilePattern(pat, token.Options{})
			if err != nil {
				return nil, err
			}
			ev.hw[x] = prog
		}
		v, err := ev.eval(col, row)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return int64(0), nil
		}
		return int64(prog.MatchString(s)), nil
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return nil, fmt.Errorf("sql: aggregate %s outside GROUP BY context", x.Name)
	}
	return nil, fmt.Errorf("sql: unknown function %q", x.Name)
}

// regexpArgs extracts (column, pattern) from REGEXP_LIKE's arguments, which
// the paper writes in both orders.
func regexpArgs(x *FuncCall) (Expr, string, error) {
	if len(x.Args) != 2 {
		return nil, "", fmt.Errorf("sql: REGEXP_LIKE wants 2 arguments")
	}
	if s, ok := x.Args[1].(*StringLit); ok {
		return x.Args[0], s.Val, nil
	}
	if s, ok := x.Args[0].(*StringLit); ok {
		return x.Args[1], s.Val, nil
	}
	return nil, "", fmt.Errorf("sql: REGEXP_LIKE needs a pattern literal")
}

// regexpFPGAArgs extracts (column, pattern) from REGEXP_FPGA(pattern, col).
func regexpFPGAArgs(x *FuncCall) (Expr, string, error) {
	if len(x.Args) != 2 {
		return nil, "", fmt.Errorf("sql: REGEXP_FPGA wants 2 arguments")
	}
	if s, ok := x.Args[0].(*StringLit); ok {
		return x.Args[1], s.Val, nil
	}
	if s, ok := x.Args[1].(*StringLit); ok {
		return x.Args[0], s.Val, nil
	}
	return nil, "", fmt.Errorf("sql: REGEXP_FPGA needs a pattern literal")
}
