package sql

import (
	"reflect"
	"strings"
	"testing"

	"doppiodb/internal/core"
	"doppiodb/internal/workload"
)

// The plan-cache gates: a repeated statement hits the cache (leaf stamped
// cache=hit, plan.cache_hits counter moves), an append to a base table
// invalidates via the version in the key, and on the hardware path a hit
// reuses the recorded placement decision and — together with the core
// config cache — spends zero simulated config-generation time.

func leafLine(t *testing.T, res *Result) string {
	t.Helper()
	lines := planLines(t, res)
	return lines[len(lines)-1]
}

// cacheDelta reads the plan-cache counters relative to a baseline: engines
// share the process-wide telemetry registry, so absolute values accumulate
// across tests.
func cacheDelta(e *Engine, base map[string]int64) (hits, misses int64) {
	snap := e.Tel.Snapshot()
	return snap.Counter("plan.cache_hits") - base["plan.cache_hits"],
		snap.Counter("plan.cache_misses") - base["plan.cache_misses"]
}

func TestPlanCacheHitOnRepeat(t *testing.T) {
	e, _ := addressEngine(t, 2_000, workload.HitQ1, 0.2)
	base := e.Tel.Snapshot().Counters
	const q = `SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(leafLine(t, first), "cache=miss") {
		t.Errorf("first run leaf: %s", leafLine(t, first))
	}
	if !strings.Contains(leafLine(t, second), "cache=hit") {
		t.Errorf("second run leaf: %s", leafLine(t, second))
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Errorf("cached plan changed the answer: %v vs %v", first.Rows, second.Rows)
	}
	if hits, misses := cacheDelta(e, base); hits != 1 || misses != 1 {
		t.Errorf("counters: hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestPlanCacheInvalidatedByAppend(t *testing.T) {
	e, _ := addressEngine(t, 1_000, workload.HitQ1, 0.2)
	base := e.Tel.Snapshot().Counters
	const q = `SELECT count(*) FROM address_table WHERE address_string LIKE '%Strasse%'`
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	tbl, err := e.DB.Table("address_table")
	if err != nil {
		t.Fatal(err)
	}
	// The append bumps the table version, which is folded into the key:
	// the stale entry can never be served again.
	if err := tbl.AppendRow(int32(tbl.Rows()), "Bahnhofstrasse 1, 8001 Zurich"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(leafLine(t, res), "cache=miss") {
		t.Errorf("post-append leaf: %s", leafLine(t, res))
	}
	if hits, misses := cacheDelta(e, base); hits != 1 || misses != 2 {
		t.Errorf("counters: hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestPlanCacheReusesPlacementAndSkipsCompile(t *testing.T) {
	s, err := core.NewSystem(core.Options{RegionBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(55, 64).Table(20_000, workload.HitQ2, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	e.Advisor = s
	base := e.Tel.Snapshot().Counters
	const q = `SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Str\.).*(8[0-9]{4})')`

	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.FastPath != "regexp->udf" || first.UDF == nil {
		t.Fatalf("first run did not offload: path=%q", first.FastPath)
	}
	if first.Decision.PlanCacheHit {
		t.Error("first run marked as plan-cache hit")
	}
	if first.UDF.Breakdown[core.PhaseConfigGen] <= 0 {
		t.Error("first run spent no config-gen time")
	}

	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Errorf("cached plan changed the answer: %v vs %v", first.Rows, second.Rows)
	}
	if second.Decision == nil || !second.Decision.PlanCacheHit {
		t.Error("second run decision not marked plan-cache hit")
	}
	if second.Decision.Chosen != first.Decision.Chosen {
		t.Errorf("cached placement %q != original %q",
			second.Decision.Chosen, first.Decision.Chosen)
	}
	// The zero-compile gate: the plan cache skipped re-estimation and the
	// core config cache skipped Glushkov construction + the 512-bit
	// encode, so the config-gen phase costs nothing the second time.
	if got := second.UDF.Breakdown[core.PhaseConfigGen]; got != 0 {
		t.Errorf("second run config-gen = %v s, want 0 (cached)", got)
	}
	if !second.Decision.ConfigCached {
		t.Error("second run decision not marked config-cached")
	}
	snap := e.Tel.Snapshot()
	if hits := snap.Counter("plan.cache_hits") - base["plan.cache_hits"]; hits < 1 {
		t.Errorf("plan.cache_hits delta = %d", hits)
	}
	if hits := snap.Counter("core.config_cache_hits") - base["core.config_cache_hits"]; hits < 1 {
		t.Errorf("core.config_cache_hits delta = %d", hits)
	}
}
