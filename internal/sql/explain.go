package sql

import (
	"context"

	"doppiodb/internal/explain"
	"doppiodb/internal/perf"
	"doppiodb/internal/plan"
	"doppiodb/internal/telemetry"
)

// Explainer is the richer face of the placement advisor: it returns the
// full decision record instead of a boolean, and closes records for
// predicates the engine keeps in software. internal/core's System
// implements it; a PlacementAdvisor without it still works, just without
// EXPLAIN output.
type Explainer interface {
	// ExplainCost prices every candidate plan for the predicate and
	// returns the decision record (chosen plan + reason included).
	ExplainCost(pattern string, rows, avgLen int) (*explain.Record, error)
	// FinishSoftware fills a record's actuals for a predicate that ran on
	// the CPU scan path, from the scan's realized work.
	FinishSoftware(rec *explain.Record, w perf.Work)
}

// adviseRecord runs the cost model for a predicate, preferring the
// Explainer's full record over the boolean advisor. Estimation errors
// conservatively keep the predicate in software (matching AdviseOffload).
func (e *Engine) adviseRecord(pattern string, rows, avgLen int) (*explain.Record, bool) {
	if ex, ok := e.Advisor.(Explainer); ok {
		rec, err := ex.ExplainCost(pattern, rows, avgLen)
		if err != nil {
			return nil, false
		}
		return rec, rec.Offloads()
	}
	return nil, e.Advisor.AdviseOffload(pattern, rows, avgLen)
}

// explainQuery serves EXPLAIN [ANALYZE] <select>: one "plan" output column,
// one row per line of the decision record. Plain EXPLAIN prices the
// candidates without executing; ANALYZE executes the inner statement and
// appends the predicted-vs-actual table with per-term relative error.
func (e *Engine) explainQuery(ctx context.Context, stmt *SelectStmt, root *telemetry.Span) (*Result, error) {
	e.Tel.Counter("sql.explain").Inc()
	inner := *stmt
	inner.Explain, inner.Analyze = false, false

	var rec *explain.Record
	res := &Result{Cols: []string{"plan"}, FastPath: "explain"}
	if stmt.Analyze {
		out, err := e.exec(ctx, &inner, root.StartChild("analyze-exec"))
		if err != nil {
			return nil, err
		}
		rec = out.Decision
		res.UDF = out.UDF
		res.Work = out.Work
		res.Plan = out.Plan
	} else {
		// Compile without executing: the operator tree plus the
		// plan-time placement decision. Statement shapes whose decision
		// only exists at run time (the forced REGEXP_FPGA operator) fall
		// back to pricing the predicate directly.
		pl, err := e.plan(&inner, root)
		if err != nil {
			return nil, err
		}
		rec = pl.st.decision
		if rec == nil {
			r, err := e.planOnlyRecord(&inner)
			if err != nil {
				return nil, err
			}
			rec = r
		}
		res.Plan = plan.Snapshot(pl.root)
	}
	res.Decision = rec

	recLines := rec.Lines()
	if len(recLines) == 0 {
		recLines = []string{"no decision record: the predicate is not hardware-eligible, or no cost-model advisor is attached"}
	}
	if stmt.Analyze {
		recLines = append(recLines, rec.AnalyzeLines()...)
	}
	var lines []string
	if res.Plan != nil {
		lines = append(lines, res.Plan.Lines(stmt.Analyze)...)
		lines = append(lines, "")
	}
	lines = append(lines, recLines...)
	for _, l := range lines {
		res.Rows = append(res.Rows, []any{l})
	}
	return e.finish(res, root), nil
}

// planOnlyRecord prices the candidates of a statement's hardware-eligible
// predicate without executing it. Statements outside the recognized shapes
// (or engines without an Explainer advisor) yield a nil record, which
// explainQuery renders as an explanatory line.
func (e *Engine) planOnlyRecord(stmt *SelectStmt) (*explain.Record, error) {
	ex, ok := e.Advisor.(Explainer)
	if !ok {
		return nil, nil
	}
	pat, forced, rows, avgLen, ok, err := e.explainTarget(stmt)
	if err != nil || !ok {
		return nil, err
	}
	rec, err := ex.ExplainCost(pat, rows, avgLen)
	if err != nil {
		return nil, err
	}
	if forced && !rec.Offloads() {
		rec.ForceHardware("REGEXP_FPGA invoked explicitly; cost model preferred software")
	}
	return rec, nil
}

// explainTarget extracts the explainable predicate of a statement: a
// REGEXP_LIKE(col, pattern) or REGEXP_FPGA(pattern, col) <> 0 WHERE clause
// over a base table (the shapes the placement machinery prices). forced
// marks the explicit hardware operator.
func (e *Engine) explainTarget(stmt *SelectStmt) (pat string, forced bool, rows, avgLen int, ok bool, err error) {
	bt, isBase := stmt.From.(*BaseTable)
	if !isBase || stmt.Where == nil {
		return "", false, 0, 0, false, nil
	}
	tbl, err := e.DB.Table(bt.Name)
	if err != nil {
		return "", false, 0, 0, false, err
	}
	switch w := stmt.Where.(type) {
	case *FuncCall:
		if w.Name != "REGEXP_LIKE" {
			return "", false, 0, 0, false, nil
		}
		colExpr, p, err := regexpArgs(w)
		if err != nil {
			return "", false, 0, 0, false, err
		}
		ref, isRef := colExpr.(*ColumnRef)
		if !isRef {
			return "", false, 0, 0, false, nil
		}
		return p, false, tbl.Rows(), avgStringLen(tbl, ref.Column), true, nil
	case *BinaryExpr:
		call, _ := fpgaPredicate(w)
		if call == nil {
			return "", false, 0, 0, false, nil
		}
		colExpr, p, err := regexpFPGAArgs(call)
		if err != nil {
			return "", false, 0, 0, false, err
		}
		ref, isRef := colExpr.(*ColumnRef)
		if !isRef {
			return "", false, 0, 0, false, nil
		}
		return p, true, tbl.Rows(), avgStringLen(tbl, ref.Column), true, nil
	}
	return "", false, 0, 0, false, nil
}
