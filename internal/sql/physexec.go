package sql

import (
	"context"

	"doppiodb/internal/plan"
	"doppiodb/internal/telemetry"
)

// execPlan drives a compiled physical plan: open/drain/close the operator
// tree, then reassemble the Result contract — columns from the planner,
// rows from the tree, work from the bound evaluators and scan closures, and
// the pipeline spans synthesized from the operators' observed row counts so
// traces keep the shape the legacy executor produced.
func (e *Engine) execPlan(ctx context.Context, p *physical, root *telemetry.Span) (*Result, error) {
	rows, _, err := plan.Run(ctx, p.root)
	if err != nil {
		return nil, err
	}
	st := p.st
	res := &Result{
		Cols:     p.cols,
		Rows:     rows,
		FastPath: p.fastPath,
		UDF:      st.udf,
		Decision: st.decision,
		Work:     st.work,
	}
	for _, ev := range st.evs {
		res.Work.Add(ev.work)
	}
	res.Plan = plan.Snapshot(p.root)
	if p.fastPath == "" {
		synthesizeSpans(p, root)
	}
	return res, nil
}

// synthesizeSpans rebuilds the general pipeline's where/aggregate/order-by
// spans from operator row counts. The fast-count paths emit their bat-scan
// spans inside the leaf closures instead.
func synthesizeSpans(p *physical, root *telemetry.Span) {
	var rowsIn int64
	if p.srcOp != nil {
		rowsIn = p.srcOp.Info().RowsOut
	}
	if p.filterOp != nil {
		sp := root.StartChild("where")
		sp.SetAttr("rows_in", rowsIn)
		sp.End()
		sp.SetAttr("rows_out", p.filterOp.Info().RowsOut)
		rowsIn = p.filterOp.Info().RowsOut
	}
	if p.aggOp != nil {
		sp := root.StartChild(p.aggName)
		sp.End()
		sp.SetAttr("rows_in", rowsIn)
		sp.SetAttr("rows_out", p.aggOp.Info().RowsOut)
	}
	if p.orderOp != nil {
		sp := root.StartChild("order-by")
		sp.End()
		sp.SetAttr("rows", p.orderOp.Info().RowsOut)
	}
}
