package sql

import (
	"strings"
	"testing"

	"doppiodb/internal/config"
	"doppiodb/internal/core"
	"doppiodb/internal/explain"
	"doppiodb/internal/fpga"
	"doppiodb/internal/telemetry"
	"doppiodb/internal/workload"
)

func TestParseExplainFlags(t *testing.T) {
	cases := []struct {
		q                string
		explain, analyze bool
	}{
		{`SELECT count(*) FROM t WHERE REGEXP_LIKE(c, 'x')`, false, false},
		{`EXPLAIN SELECT count(*) FROM t WHERE REGEXP_LIKE(c, 'x')`, true, false},
		{`EXPLAIN ANALYZE SELECT count(*) FROM t WHERE REGEXP_LIKE(c, 'x')`, true, true},
	}
	for _, c := range cases {
		sel, err := Parse(c.q)
		if err != nil {
			t.Fatalf("Parse(%s): %v", c.q, err)
		}
		if sel.Explain != c.explain || sel.Analyze != c.analyze {
			t.Errorf("Parse(%s): explain=%v analyze=%v, want %v/%v",
				c.q, sel.Explain, sel.Analyze, c.explain, c.analyze)
		}
	}
	if _, err := Parse(`ANALYZE SELECT count(*) FROM t`); err == nil {
		t.Error("bare ANALYZE parsed")
	}
}

// hybridEngine builds a SQL engine over a core system whose device is too
// small for the hybrid query QH, so the cost model picks the hybrid split.
func hybridEngine(t *testing.T) (*Engine, *core.System) {
	t.Helper()
	dep := fpga.DefaultDeployment()
	dep.Limits = config.Limits{MaxStates: 8, MaxChars: 24}
	s, err := core.NewSystem(core.Options{
		RegionBytes: 1 << 30,
		Deployment:  &dep,
		Telemetry:   telemetry.NewRegistry(),
		Auditor:     explain.NewAuditor(explain.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := workload.NewGenerator(77, 64).Table(20_000, workload.HitQH, 0.2)
	if _, err := s.DB.LoadAddressTable("address_table", rows); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(s.DB)
	e.Advisor = s
	return e, s
}

// planText joins the single-column rows of an EXPLAIN result.
func planText(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Cols) != 1 || res.Cols[0] != "plan" {
		t.Fatalf("cols = %v, want [plan]", res.Cols)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].(string))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestExplainSelect(t *testing.T) {
	e, _ := hybridEngine(t)
	res, err := e.Query(`EXPLAIN SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` + workload.QH + `')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPath != "explain" {
		t.Errorf("fast path = %q, want explain", res.FastPath)
	}
	text := planText(t, res)
	for _, want := range []string{
		"candidate fpga", "infeasible",
		"candidate hybrid", "candidate software",
		"chosen: hybrid",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "actual") {
		t.Errorf("plain EXPLAIN printed actuals:\n%s", text)
	}
	if res.Decision == nil || res.Decision.Executed {
		t.Errorf("plain EXPLAIN decision = %+v, want unexecuted record", res.Decision)
	}
}

func TestExplainAnalyzeSelect(t *testing.T) {
	e, s := hybridEngine(t)
	res, err := e.Query(`EXPLAIN ANALYZE SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '` + workload.QH + `')`)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(t, res)
	for _, want := range []string{
		"chosen: hybrid", "predicted", "actual", "error",
		explain.TermEngineBusy, explain.TermQPITransfer, explain.TermScanBytes,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, text)
		}
	}
	rec := res.Decision
	if rec == nil || !rec.Executed || rec.Actual == nil {
		t.Fatalf("decision record not executed: %+v", rec)
	}
	if len(rec.Errors) == 0 {
		t.Error("no per-term prediction errors")
	}
	// The executed query feeds the system's calibration auditor.
	if rep := s.Audit.Stats(); rep.Samples != 1 {
		t.Errorf("auditor retained %d records, want 1", rep.Samples)
	}
}

func TestExplainAnalyzeSoftwarePath(t *testing.T) {
	// A predicate the cost model keeps in software still explains: the
	// actual side is the calibrated scan cost of the work performed. On the
	// constrained device this alternation exceeds the character matchers and
	// has no `.*` split point, so software is the only feasible plan.
	e, _ := hybridEngine(t)
	res, err := e.Query(`EXPLAIN ANALYZE SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, '(Strasse|Strasze|Strassen|Strassler)')`)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Decision
	if rec == nil || !rec.Executed {
		t.Fatalf("software-path decision not executed: %+v", rec)
	}
	if rec.Offloads() {
		t.Fatalf("trivial literal offloaded: chosen=%q", rec.Chosen)
	}
	if rec.Actual.SoftwareNS <= 0 {
		t.Errorf("software actuals missing: %+v", rec.Actual)
	}
}

func TestExplainWithoutAdvisor(t *testing.T) {
	e, _ := addressEngine(t, 1_000, workload.HitQ2, 0.2)
	res, err := e.Query(`EXPLAIN SELECT count(*) FROM address_table WHERE REGEXP_LIKE(address_string, 'Strasse')`)
	if err != nil {
		t.Fatal(err)
	}
	text := planText(t, res)
	if !strings.Contains(text, "no decision record") {
		t.Errorf("advisor-less EXPLAIN output:\n%s", text)
	}
}
